package cpm

import (
	"reflect"
	"testing"
)

// TestMonitorRebalanceSurface exercises the public resize API: a manual
// Rebalance must keep every result identical, emit no events on an active
// subscription, and leave the stream fully live afterwards.
func TestMonitorRebalanceSurface(t *testing.T) {
	for _, shards := range []int{1, 4} {
		m := NewMonitor(Options{GridSize: 16, Shards: shards})
		m.Bootstrap(seedObjects())
		if err := m.RegisterQuery(1, Point{X: 0.5, Y: 0.5}, 2); err != nil {
			t.Fatal(err)
		}
		if err := m.RegisterRangeQuery(2, Point{X: 0.55, Y: 0.55}, 0.2); err != nil {
			t.Fatal(err)
		}
		sub := m.Subscribe()
		before1, before2 := m.Result(1), m.Result(2)

		if err := m.Rebalance(0); err == nil {
			t.Fatal("Rebalance(0) accepted")
		}
		if err := m.Rebalance(48); err != nil {
			t.Fatal(err)
		}
		if got := m.GridSize(); got != 48 {
			t.Fatalf("GridSize = %d, want 48", got)
		}
		if got := m.Rebalances(); got != 1 {
			t.Fatalf("Rebalances = %d, want 1", got)
		}
		if got := m.Result(1); !reflect.DeepEqual(got, before1) {
			t.Fatalf("Rebalance changed q1: %v -> %v", before1, got)
		}
		if got := m.Result(2); !reflect.DeepEqual(got, before2) {
			t.Fatalf("Rebalance changed q2: %v -> %v", before2, got)
		}
		select {
		case ev := <-sub.Events():
			t.Fatalf("Rebalance pushed an event: %+v", ev)
		default:
		}

		// The stream stays live on the new geometry.
		m.MoveObject(4, Point{X: 0.50, Y: 0.51})
		ev := <-sub.Events()
		if ev.Query != 1 || ev.Result[0].ID != 4 {
			t.Fatalf("post-rebalance event = %+v", ev)
		}
		m.Close()
	}
}

// TestMonitorAutoRebalanceOption checks the Options plumbing: with
// AutoRebalance on, a density shift triggers a resize through plain Ticks.
func TestMonitorAutoRebalanceOption(t *testing.T) {
	m := NewMonitor(Options{GridSize: 8, AutoRebalance: true, RebalanceCheckEvery: 1})
	defer m.Close()
	objs := make(map[ObjectID]Point, 600)
	for i := 0; i < 600; i++ {
		// Everything inside one crowded corner cell of the 8x8 grid.
		objs[ObjectID(i)] = Point{X: float64(i%25) / 25 * 0.12, Y: float64(i/25) / 24 * 0.12}
	}
	m.Bootstrap(objs)
	if err := m.RegisterQuery(1, Point{X: 0.06, Y: 0.06}, 4); err != nil {
		t.Fatal(err)
	}
	before := m.Result(1)
	m.Tick(Batch{})
	if m.Rebalances() == 0 || m.GridSize() <= 8 {
		t.Fatalf("auto-rebalance did not trigger: %d resizes, grid %d", m.Rebalances(), m.GridSize())
	}
	if got := m.Result(1); !reflect.DeepEqual(got, before) {
		t.Fatalf("auto-rebalance changed the result: %v -> %v", before, got)
	}
}
