// Serving CPM over the network, end to end in one process: a TCP server
// hosts the monitor, one client feeds it the update stream (remote
// ingest), another subscribes to pushed result diffs — and survives a
// dropped connection without missing a transition, thanks to the
// resume-from-Seq re-sync (gap marker + snapshots) of the serving layer.
//
//	go run ./examples/remote
package main

import (
	"fmt"
	"log"
	"net"
	"time"

	"cpm"
	"cpm/client"
	"cpm/internal/server"
	"cpm/workload"
)

const nQueries = 12

// view is the watcher's world model, maintained purely from the stream.
type view struct {
	state     map[cpm.QueryID][]cpm.Neighbor
	diffs     int
	snapshots int
	gaps      int
}

// apply folds one stream event into the view.
func (v *view) apply(ev client.Event) {
	switch ev.Type {
	case client.EventDiff:
		v.diffs++
		v.state[ev.Query] = ev.Result
	case client.EventSnapshot:
		v.snapshots++
		v.state[ev.Query] = ev.Result
	case client.EventGap:
		v.gaps++
		fmt.Printf("  stream gap (next seq %d): re-sync follows\n", ev.Seq)
	}
}

// drain consumes events until the stream goes briefly quiet.
func (v *view) drain(sub *client.Subscription) {
	for {
		select {
		case ev := <-sub.Events():
			v.apply(ev)
		case <-time.After(300 * time.Millisecond):
			return
		}
	}
}

func main() {
	// A monitor served on a loopback listener — in production this is
	// cmd/cpmserver on its own host.
	mon := cpm.NewMonitor(cpm.Options{GridSize: 64})
	srv := server.New(mon, server.Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		log.Fatal(err)
	}
	go srv.Serve(ln)
	addr := ln.Addr().String()
	fmt.Printf("serving a CPM monitor on %s\n", addr)

	// The ingest client: owns the object stream and the queries.
	ingest, err := client.Dial(addr, client.Options{})
	if err != nil {
		log.Fatal(err)
	}
	w, err := workload.New(
		workload.CityOptions{Width: 24, Height: 24, Seed: 7},
		workload.Params{
			N: 3000, NumQueries: nQueries,
			ObjectSpeed: workload.Medium, QuerySpeed: workload.Slow,
			ObjectAgility: 0.5, QueryAgility: 0.2,
			Seed: 8,
		},
	)
	if err != nil {
		log.Fatal(err)
	}
	if err := ingest.Bootstrap(w.InitialObjects()); err != nil {
		log.Fatal(err)
	}
	for i, q := range w.InitialQueries() {
		if err := ingest.RegisterQuery(cpm.QueryID(i), q, 6); err != nil {
			log.Fatal(err)
		}
	}

	// The watcher: a second connection that only consumes the stream.
	// Snapshot:true opens it with the full current state of every query,
	// so the watcher never polls.
	watcher, err := client.Dial(addr, client.Options{})
	if err != nil {
		log.Fatal(err)
	}
	sub, err := watcher.SubscribeWith(client.SubscribeOptions{Buffer: 256, Snapshot: true})
	if err != nil {
		log.Fatal(err)
	}
	v := &view{state: make(map[cpm.QueryID][]cpm.Neighbor)}
	for i := 0; i < nQueries; i++ {
		v.apply(<-sub.Events()) // the initial snapshots
	}

	for cycle := 1; cycle <= 10; cycle++ {
		if err := ingest.Tick(w.Advance()); err != nil {
			log.Fatal(err)
		}
	}
	v.drain(sub)
	fmt.Printf("after 10 cycles: %d diffs, %d snapshots, %d gaps; q0 tracks %d neighbors\n",
		v.diffs, v.snapshots, v.gaps, len(v.state[0]))

	// Sever the watcher's connection mid-run. The client reconnects by
	// itself and resumes with its last-seen Seq: the stream re-opens with
	// an explicit gap marker and fresh snapshots — no silent loss.
	fmt.Println("breaking the watcher's connection...")
	watcher.Redial()
	for cycle := 11; cycle <= 15; cycle++ {
		if err := ingest.Tick(w.Advance()); err != nil {
			log.Fatal(err)
		}
	}
	v.drain(sub)
	fmt.Printf("after reconnect: %d diffs, %d snapshots, %d gaps (the loss was announced, never silent)\n",
		v.diffs, v.snapshots, v.gaps)

	// The watcher's replayed state matches the authoritative server state.
	for q := cpm.QueryID(0); q < nQueries; q++ {
		want, err := ingest.Result(q)
		if err != nil {
			log.Fatal(err)
		}
		if len(want) != len(v.state[q]) {
			log.Fatalf("q%d: replay has %d neighbors, server %d", q, len(v.state[q]), len(want))
		}
		for i := range want {
			if v.state[q][i] != want[i] {
				log.Fatalf("q%d: replay diverged", q)
			}
		}
	}
	fmt.Printf("replayed state equals the server's results for all %d queries\n", nQueries)

	watcher.Close()
	ingest.Close()
	srv.Close()
	mon.Close()
}
