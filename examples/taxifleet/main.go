// Taxi fleet dispatch: the paper's motivating scenario at city scale.
//
// Two thousand taxis drive a synthetic road network. Passengers — some
// standing still, some walking — each monitor their k=3 nearest taxis. The
// example runs a 40-timestamp simulation, reports dispatch changes for one
// passenger, and closes with the monitoring cost summary that makes CPM's
// point: almost all taxi updates are irrelevant to every passenger and are
// never touched.
//
//	go run ./examples/taxifleet
package main

import (
	"fmt"
	"time"

	"cpm"
	"cpm/workload"
)

func main() {
	// A city with 1024 intersections; 2000 taxis at medium speed, half of
	// them moving per timestamp. The 40 "queries" of the workload are our
	// passengers: 30% walk somewhere each timestamp.
	w, err := workload.New(
		workload.CityOptions{Width: 32, Height: 32, Seed: 2026},
		workload.Params{
			N:             2000,
			NumQueries:    40,
			ObjectSpeed:   workload.Medium,
			QuerySpeed:    workload.Slow,
			ObjectAgility: 0.5,
			QueryAgility:  0.3,
			Seed:          7,
		},
	)
	if err != nil {
		panic(err)
	}

	m := cpm.NewMonitor(cpm.Options{GridSize: 128})
	m.Bootstrap(w.InitialObjects())

	const k = 3
	passengers := w.InitialQueries()
	for i, at := range passengers {
		if err := m.RegisterQuery(cpm.QueryID(i), at, k); err != nil {
			panic(err)
		}
	}
	fmt.Printf("dispatching %d taxis for %d passengers (k=%d)\n\n", m.ObjectCount(), len(passengers), k)

	const watched = cpm.QueryID(0)
	last := fingerprint(m.Result(watched))
	fmt.Printf("t=0   passenger 0 -> %s\n", describe(m.Result(watched)))

	var busy time.Duration
	for ts := 1; ts <= 40; ts++ {
		batch := w.Advance()
		start := time.Now()
		m.Tick(batch)
		busy += time.Since(start)

		if fp := fingerprint(m.Result(watched)); fp != last {
			last = fp
			fmt.Printf("t=%-3d passenger 0 -> %s\n", ts, describe(m.Result(watched)))
		}
	}

	s := m.Stats()
	fmt.Printf("\n40 cycles in %v (%v per cycle)\n", busy.Round(time.Microsecond),
		(busy / 40).Round(time.Microsecond))
	fmt.Printf("cell accesses: %d (%.2f per passenger per cycle)\n",
		s.CellAccesses, float64(s.CellAccesses)/float64(len(passengers)*40))
	fmt.Printf("results maintained without touching the grid: %d times\n", s.ShortCircuits)
	fmt.Printf("re-computations from stored state: %d; full searches: %d\n",
		s.Recomputations, s.FullSearches)
}

func describe(res []cpm.Neighbor) string {
	out := ""
	for i, n := range res {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprintf("taxi %d (%.3f)", n.ID, n.Dist)
	}
	return out
}

func fingerprint(res []cpm.Neighbor) string {
	out := ""
	for _, n := range res {
		out += fmt.Sprintf("%d,", n.ID)
	}
	return out
}
