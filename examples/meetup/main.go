// Meet-up planning with aggregate NN monitoring (paper Section 5).
//
// Four friends move through the city and continuously monitor the best
// café to gather at, under two different goals:
//
//   - sum: minimize the total distance everyone travels;
//   - max: minimize the latest arrival (the farthest friend's distance).
//
// Cafés are static objects; the friends are a moving aggregate query. The
// example shows the two goals choosing different cafés and the choices
// evolving as the group walks.
//
//	go run ./examples/meetup
package main

import (
	"fmt"
	"math/rand"

	"cpm"
)

func main() {
	rng := rand.New(rand.NewSource(42))

	// Eighty cafés scattered over the city.
	cafes := make(map[cpm.ObjectID]cpm.Point, 80)
	for i := 0; i < 80; i++ {
		cafes[cpm.ObjectID(i)] = cpm.Point{X: rng.Float64(), Y: rng.Float64()}
	}
	m := cpm.NewMonitor(cpm.Options{GridSize: 64})
	m.Bootstrap(cafes)

	// The four friends start in different quarters.
	friends := []cpm.Point{
		{X: 0.15, Y: 0.20},
		{X: 0.85, Y: 0.25},
		{X: 0.80, Y: 0.80},
		{X: 0.20, Y: 0.75},
	}
	const (
		bySum = cpm.QueryID(1)
		byMax = cpm.QueryID(2)
	)
	if err := m.RegisterAggQuery(bySum, friends, 1, cpm.AggSum); err != nil {
		panic(err)
	}
	if err := m.RegisterAggQuery(byMax, friends, 1, cpm.AggMax); err != nil {
		panic(err)
	}

	report := func(step int) {
		s := m.Result(bySum)[0]
		x := m.Result(byMax)[0]
		fmt.Printf("step %d:\n", step)
		fmt.Printf("  least total travel:  café %2d (sum of distances %.3f)\n", s.ID, s.Dist)
		fmt.Printf("  earliest full group: café %2d (farthest friend %.3f)\n", x.ID, x.Dist)
	}
	report(0)

	// The friends walk for a few steps; each step moves every friend a bit
	// toward the east side of town. Query moves re-anchor the conceptual
	// partitioning around the group's new bounding rectangle.
	for step := 1; step <= 3; step++ {
		for i := range friends {
			friends[i].X = clamp(friends[i].X + 0.08 + 0.04*rng.Float64())
			friends[i].Y = clamp(friends[i].Y + (rng.Float64()-0.5)*0.1)
		}
		if err := m.MoveQuery(bySum, friends...); err != nil {
			panic(err)
		}
		if err := m.MoveQuery(byMax, friends...); err != nil {
			panic(err)
		}
		report(step)
	}

	// A new café opens right in the middle of the group — both goals
	// notice it through normal update handling, no re-registration needed.
	center := cpm.Point{}
	for _, f := range friends {
		center.X += f.X / 4
		center.Y += f.Y / 4
	}
	m.InsertObject(500, center)
	fmt.Println("a new café opens at the group's centroid:")
	report(4)
}

func clamp(v float64) float64 {
	if v < 0.02 {
		return 0.02
	}
	if v > 0.98 {
		return 0.98
	}
	return v
}
