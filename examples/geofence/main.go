// Geofencing with continuous range monitoring.
//
// A logistics hub alerts when trucks come within unloading distance, and a
// second, wider fence tracks everything in the approach zone. Range
// queries are this repository's extension of the CPM substrate to the
// continuous range monitoring problem of the paper's related work
// (Q-index, SINA); they share the grid and influence lists with k-NN
// queries but need no search state at all.
//
//	go run ./examples/geofence
package main

import (
	"fmt"

	"cpm"
	"cpm/workload"
)

func main() {
	// 800 trucks on a road network.
	w, err := workload.New(
		workload.CityOptions{Width: 24, Height: 24, Seed: 99},
		workload.Params{
			N:             800,
			ObjectSpeed:   workload.Fast,
			ObjectAgility: 0.8,
			Seed:          100,
		},
	)
	if err != nil {
		panic(err)
	}

	m := cpm.NewMonitor(cpm.Options{GridSize: 96})
	m.Bootstrap(w.InitialObjects())

	hub := cpm.Point{X: 0.5, Y: 0.5}
	const (
		dock     = cpm.QueryID(1) // unloading distance
		approach = cpm.QueryID(2) // wider awareness zone
	)
	if err := m.RegisterRangeQuery(dock, hub, 0.03); err != nil {
		panic(err)
	}
	if err := m.RegisterRangeQuery(approach, hub, 0.10); err != nil {
		panic(err)
	}
	// A k-NN query coexists on the same monitor: the three nearest trucks,
	// fenced or not.
	if err := m.RegisterQuery(3, hub, 3); err != nil {
		panic(err)
	}

	atDock := map[cpm.ObjectID]bool{}
	for _, n := range m.Result(dock) {
		atDock[n.ID] = true
	}
	fmt.Printf("hub online: %d trucks at the dock, %d in the approach zone\n",
		len(m.Result(dock)), len(m.Result(approach)))

	for ts := 1; ts <= 25; ts++ {
		m.Tick(w.Advance())
		now := map[cpm.ObjectID]bool{}
		for _, n := range m.Result(dock) {
			now[n.ID] = true
			if !atDock[n.ID] {
				fmt.Printf("t=%-3d truck %d arrived at the dock (%.3f away)\n", ts, n.ID, n.Dist)
			}
		}
		for id := range atDock {
			if !now[id] {
				fmt.Printf("t=%-3d truck %d left the dock\n", ts, id)
			}
		}
		atDock = now
	}
	fmt.Printf("\nfinal: %d at dock, %d approaching; nearest overall: %s\n",
		len(m.Result(dock)), len(m.Result(approach)), describe(m.Result(3)))
}

func describe(res []cpm.Neighbor) string {
	out := ""
	for i, n := range res {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprintf("truck %d (%.3f)", n.ID, n.Dist)
	}
	return out
}
