// Quickstart: the smallest complete use of the cpm package.
//
// A handful of delivery couriers move around a city block; we continuously
// monitor the two couriers nearest to a customer, printing every change.
//
//	go run ./examples/quickstart
package main

import (
	"fmt"

	"cpm"
)

func main() {
	// A monitor over the unit square with a 64×64 grid.
	m := cpm.NewMonitor(cpm.Options{GridSize: 64})

	// Five couriers at their current positions.
	m.Bootstrap(map[cpm.ObjectID]cpm.Point{
		1: {X: 0.12, Y: 0.10},
		2: {X: 0.48, Y: 0.52},
		3: {X: 0.55, Y: 0.45},
		4: {X: 0.90, Y: 0.88},
		5: {X: 0.30, Y: 0.70},
	})

	// The customer stands at the city center; monitor their 2 nearest
	// couriers from now on.
	customer := cpm.Point{X: 0.5, Y: 0.5}
	const query = cpm.QueryID(1)
	if err := m.RegisterQuery(query, customer, 2); err != nil {
		panic(err)
	}
	show := func(when string) {
		fmt.Printf("%-28s", when)
		for _, n := range m.Result(query) {
			fmt.Printf("  courier %d (%.3f away)", n.ID, n.Dist)
		}
		fmt.Println()
	}
	show("initially:")

	// Courier 4 drives toward the center — the result updates without any
	// search: CPM notices the incomer through the cell's influence list.
	m.MoveObject(4, cpm.Point{X: 0.52, Y: 0.49})
	show("courier 4 arrives downtown:")

	// Courier 2 goes off-line (shift over). A deleted nearest neighbor is
	// an outgoing one; CPM re-computes from its stored visit list.
	m.DeleteObject(2)
	show("courier 2 signs off:")

	// A whole batch at once: one processing cycle, as a server would run
	// per timestamp.
	m.Tick(cpm.Batch{
		Objects: []cpm.Update{
			cpm.MoveUpdate(5, cpm.Point{X: 0.30, Y: 0.70}, cpm.Point{X: 0.50, Y: 0.54}),
			cpm.InsertUpdate(6, cpm.Point{X: 0.47, Y: 0.47}),
		},
	})
	show("after the next cycle:")

	// The customer walks away; moving a query re-computes it from scratch
	// at the new location.
	if err := m.MoveQuery(query, cpm.Point{X: 0.1, Y: 0.1}); err != nil {
		panic(err)
	}
	show("customer moved to (0.1,0.1):")

	s := m.Stats()
	fmt.Printf("\nwork done: %d cell accesses, %d heap ops, %d re-computations, %d short-circuits\n",
		s.CellAccesses, s.HeapOps, s.Recomputations, s.ShortCircuits)
}
