// Constrained NN monitoring (paper Figure 5.3): restrict results to a
// region of the data space.
//
// A ferry terminal dispatches boats, but only boats already on the north
// side of the river may be assigned (the rest can't cross in time). We
// monitor the nearest boats overall and the nearest boats north of the
// river side by side, and watch a boat switch eligibility as it crosses.
//
//	go run ./examples/constrained
package main

import (
	"fmt"

	"cpm"
)

func main() {
	m := cpm.NewMonitor(cpm.Options{GridSize: 64})

	// The river runs along y = 0.5; the terminal sits on the bank.
	terminal := cpm.Point{X: 0.5, Y: 0.5}
	northside := cpm.Rect{Lo: cpm.Point{X: 0, Y: 0.5}, Hi: cpm.Point{X: 1, Y: 1}}

	m.Bootstrap(map[cpm.ObjectID]cpm.Point{
		1: {X: 0.52, Y: 0.45}, // very close, but south of the river
		2: {X: 0.55, Y: 0.60}, // north
		3: {X: 0.40, Y: 0.75}, // north, farther
		4: {X: 0.45, Y: 0.40}, // south
	})

	const (
		nearestAny   = cpm.QueryID(1)
		nearestNorth = cpm.QueryID(2)
	)
	if err := m.RegisterQuery(nearestAny, terminal, 2); err != nil {
		panic(err)
	}
	if err := m.RegisterConstrainedQuery(nearestNorth, terminal, 2, northside); err != nil {
		panic(err)
	}

	show := func(when string) {
		fmt.Println(when)
		fmt.Printf("  nearest overall:    %s\n", describe(m.Result(nearestAny)))
		fmt.Printf("  nearest north bank: %s\n", describe(m.Result(nearestNorth)))
	}
	show("initially (boat 1 is closest but on the wrong bank):")

	// Boat 1 crosses the river: it enters the constraint region and the
	// constrained query picks it up through ordinary update handling.
	m.MoveObject(1, cpm.Point{X: 0.52, Y: 0.55})
	show("boat 1 crosses to the north bank:")

	// Boat 2 docks on the south side: it leaves the constrained result
	// even though its distance barely changed.
	m.MoveObject(2, cpm.Point{X: 0.55, Y: 0.42})
	show("boat 2 crosses south:")
}

func describe(res []cpm.Neighbor) string {
	if len(res) == 0 {
		return "(none)"
	}
	out := ""
	for i, n := range res {
		if i > 0 {
			out += ", "
		}
		out += fmt.Sprintf("boat %d (%.3f)", n.ID, n.Dist)
	}
	return out
}
