// Fleet dispatch on push notifications: the pub/sub counterpart of the
// taxifleet example.
//
// A fleet of vehicles drives a synthetic road network while dispatch
// centers each monitor their k=4 nearest vehicles. Instead of re-reading
// every result every cycle, a dispatcher goroutine subscribes to the
// monitor's result-diff stream and reacts only to churn: a vehicle
// entering a center's k-NN set becomes dispatchable there, a vehicle
// exiting is released, and a re-rank merely reorders the center's call
// list. The monitor runs sharded, so per-shard diff streams are fanned
// into the one ordered stream the dispatcher consumes.
//
//	go run ./examples/dispatch
package main

import (
	"fmt"
	"sync"

	"cpm"
	"cpm/workload"
)

// board is the dispatcher's view of the world, maintained purely from
// pushed diffs — it never polls the monitor.
type board struct {
	mu        sync.Mutex
	callList  map[cpm.QueryID][]cpm.Neighbor // per-center dispatch order
	assigns   int                            // vehicles that became dispatchable
	releases  int                            // vehicles released from a center
	reorders  int                            // call-list reorders without churn
	delivered int
}

// react folds one pushed event into the board.
func (bd *board) react(ev cpm.ResultEvent) {
	bd.mu.Lock()
	defer bd.mu.Unlock()
	bd.delivered++
	bd.assigns += len(ev.Entered)
	bd.releases += len(ev.Exited)
	if len(ev.Entered) == 0 && len(ev.Exited) == 0 && len(ev.Reranked) > 0 {
		bd.reorders++
	}
	if ev.Kind == cpm.DiffRemove {
		delete(bd.callList, ev.Query)
		return
	}
	bd.callList[ev.Query] = ev.Result
}

func main() {
	w, err := workload.New(
		workload.CityOptions{Width: 32, Height: 32, Seed: 2026},
		workload.Params{
			N:             3000,
			NumQueries:    25,
			ObjectSpeed:   workload.Medium,
			QuerySpeed:    workload.Slow,
			ObjectAgility: 0.5,
			QueryAgility:  0.2,
			Seed:          11,
		},
	)
	if err != nil {
		panic(err)
	}

	m := cpm.NewMonitor(cpm.Options{GridSize: 128, Shards: 4})
	m.Bootstrap(w.InitialObjects())

	// Subscribe before installing the centers: the dispatcher then builds
	// its board from the install events alone.
	sub := m.SubscribeWith(cpm.SubscribeOptions{Buffer: 256})
	bd := &board{callList: make(map[cpm.QueryID][]cpm.Neighbor)}
	var done sync.WaitGroup
	done.Add(1)
	go func() {
		defer done.Done()
		for ev := range sub.Events() {
			bd.react(ev)
		}
	}()

	const k = 4
	centers := w.InitialQueries()
	for i, at := range centers {
		if err := m.RegisterQuery(cpm.QueryID(i), at, k); err != nil {
			panic(err)
		}
	}
	fmt.Printf("dispatching %d vehicles for %d centers (k=%d), 4 shards, push-based\n\n",
		m.ObjectCount(), len(centers), k)

	const cycles = 30
	for ts := 1; ts <= cycles; ts++ {
		m.Tick(w.Advance())
	}
	// One center shuts down mid-operation; its stream ends with a
	// DiffRemove event.
	m.RemoveQuery(0)

	// Drain: Close stops intake and lets the subscriber finish the buffer.
	m.Close()
	done.Wait()

	bd.mu.Lock()
	defer bd.mu.Unlock()
	fmt.Printf("%d cycles, %d events delivered (%d dropped)\n", cycles, bd.delivered, sub.Dropped())
	fmt.Printf("dispatch churn: %d vehicles assigned, %d released, %d pure reorders\n",
		bd.assigns, bd.releases, bd.reorders)
	fmt.Printf("boards live for %d centers (center 0 decommissioned)\n\n", len(bd.callList))
	for _, qid := range []cpm.QueryID{1, 2} {
		fmt.Printf("center %d call list:", qid)
		for _, n := range bd.callList[qid] {
			fmt.Printf("  vehicle %d (%.3f)", n.ID, n.Dist)
		}
		fmt.Println()
	}
}
