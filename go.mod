module cpm

go 1.24
