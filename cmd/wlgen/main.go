// Command wlgen generates reusable workload traces — the update streams of
// the paper's evaluation — and replays them into a monitoring method.
// Traces make experiments repeatable across processes and let external
// tools consume the same streams. The file format lives in internal/trace.
//
// Usage:
//
//	wlgen gen -out trace.gob -n 10000 -queries 100 -ts 50
//	wlgen info -in trace.gob
//	wlgen replay -in trace.gob -method CPM -k 8
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"cpm/internal/bench"
	"cpm/internal/generator"
	"cpm/internal/model"
	"cpm/internal/network"
	"cpm/internal/trace"
)

func main() {
	if len(os.Args) < 2 {
		usage()
	}
	switch os.Args[1] {
	case "gen":
		cmdGen(os.Args[2:])
	case "info":
		cmdInfo(os.Args[2:])
	case "replay":
		cmdReplay(os.Args[2:])
	default:
		usage()
	}
}

func usage() {
	fmt.Fprintln(os.Stderr, "usage: wlgen gen|info|replay [flags]")
	os.Exit(2)
}

func cmdGen(args []string) {
	fs := flag.NewFlagSet("gen", flag.ExitOnError)
	var (
		out     = fs.String("out", "trace.gob", "output trace file")
		n       = fs.Int("n", 10000, "object population")
		queries = fs.Int("queries", 100, "number of queries")
		ts      = fs.Int("ts", 50, "timestamps")
		seed    = fs.Int64("seed", 1, "seed")
		fobj    = fs.Float64("fobj", 0.5, "object agility")
		fqry    = fs.Float64("fqry", 0.3, "query agility")
	)
	must(fs.Parse(args))

	netOpts := network.GenOptions{Width: 32, Height: 32, Seed: *seed}
	net, err := network.Generate(netOpts)
	must(err)
	params := generator.Params{
		N: *n, NumQueries: *queries,
		ObjectSpeed: generator.Medium, QuerySpeed: generator.Medium,
		ObjectAgility: *fobj, QueryAgility: *fqry, Seed: *seed + 1,
	}
	w, err := generator.New(net, params)
	must(err)

	f, err := os.Create(*out)
	must(err)
	defer f.Close()
	hdr := trace.Header{
		Params:     params,
		Net:        netOpts,
		Timestamps: *ts,
		Objects:    w.InitialObjects(),
		Queries:    w.InitialQueries(),
	}
	updates, err := trace.Record(f, hdr, w)
	must(err)
	fmt.Printf("wrote %s: %d objects, %d queries, %d timestamps, %d updates\n",
		*out, len(hdr.Objects), len(hdr.Queries), *ts, updates)
}

func openTrace(path string) (*trace.Reader, *os.File) {
	f, err := os.Open(path)
	must(err)
	r, err := trace.NewReader(f)
	must(err)
	return r, f
}

func cmdInfo(args []string) {
	fs := flag.NewFlagSet("info", flag.ExitOnError)
	in := fs.String("in", "trace.gob", "trace file")
	must(fs.Parse(args))
	r, f := openTrace(*in)
	defer f.Close()
	hdr := r.Header()
	moves, inserts, deletes, qmoves := 0, 0, 0, 0
	for {
		b, err := r.Next()
		if err == io.EOF {
			break
		}
		must(err)
		for _, u := range b.Objects {
			switch u.Kind {
			case model.Move:
				moves++
			case model.Insert:
				inserts++
			case model.Delete:
				deletes++
			}
		}
		qmoves += len(b.Queries)
	}
	fmt.Printf("%s: N=%d queries=%d ts=%d f_obj=%.0f%% f_qry=%.0f%%\n",
		*in, hdr.Params.N, len(hdr.Queries), hdr.Timestamps,
		hdr.Params.ObjectAgility*100, hdr.Params.QueryAgility*100)
	fmt.Printf("stream: %d moves, %d inserts, %d deletes, %d query moves\n",
		moves, inserts, deletes, qmoves)
}

func cmdReplay(args []string) {
	fs := flag.NewFlagSet("replay", flag.ExitOnError)
	var (
		in         = fs.String("in", "trace.gob", "trace file")
		methodName = fs.String("method", "CPM", "CPM | YPK | SEA")
		k          = fs.Int("k", 8, "neighbors per query")
		gridSize   = fs.Int("grid", 128, "grid size")
	)
	must(fs.Parse(args))
	var method bench.Method
	switch *methodName {
	case "CPM":
		method = bench.CPM
	case "YPK":
		method = bench.YPK
	case "SEA":
		method = bench.SEA
	default:
		fmt.Fprintf(os.Stderr, "wlgen: unknown method %q\n", *methodName)
		os.Exit(2)
	}

	r, f := openTrace(*in)
	defer f.Close()
	hdr := r.Header()
	mon := method.New(*gridSize)
	mon.Bootstrap(hdr.Objects)
	for i, q := range hdr.Queries {
		must(mon.RegisterQuery(model.QueryID(i), q, *k))
	}
	start := time.Now()
	cycles, err := trace.Replay(r, mon)
	must(err)
	elapsed := time.Since(start)
	s := mon.Stats()
	fmt.Printf("%s replayed %d cycles in %v (%v/cycle); %d cell accesses\n",
		mon.Name(), cycles, elapsed.Round(time.Microsecond),
		(elapsed / time.Duration(max(cycles, 1))).Round(time.Microsecond), s.CellAccesses)
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func must(err error) {
	if err != nil {
		fmt.Fprintf(os.Stderr, "wlgen: %v\n", err)
		os.Exit(1)
	}
}
