// Command cpmsim runs an interactive-scale monitoring simulation and
// prints per-cycle progress: result changes, work counters and timing. It
// is the quickest way to watch CPM (or a baseline) operate on a live
// network workload.
//
// Usage:
//
//	cpmsim -method CPM -n 5000 -queries 50 -k 8 -ts 30 -watch 3
//	cpmsim -method CPM -shards 4 -n 20000 -queries 500
//	cpmsim -rebalance -n 20000 -queries 200
//	cpmsim -follow -shards 4 -n 20000 -queries 500
//	cpmsim -connect 127.0.0.1:7845 -n 5000 -queries 50 -ts 30
//	cpmsim -connect 127.0.0.1:7845 -follow -ts 30
//
// -watch selects how many queries get their results printed each cycle.
// -shards > 1 runs the CPM method as a sharded parallel monitor (results
// are identical; cycles run one goroutine per shard). -rebalance turns on
// online grid rebalancing: as the object density drifts, the monitor
// resizes the grid between cycles (a line is printed per resize) while
// results stay exact. -follow switches from polling to streaming: the
// simulation subscribes to the monitor's result-diff stream and prints,
// per cycle, the pushed events — entered / exited / re-ranked neighbors
// per changed query — instead of re-reading results (CPM only).
//
// -connect drives a remote monitor instead of an in-process one: the
// simulation dials a cpmserver, bootstraps the generated population over
// the wire, registers its queries remotely and ticks the update stream
// across the socket (remote ingest). Polling and -follow both work; the
// streaming mode consumes the server's pushed diff events, including
// reconnect/resume re-syncs if the link drops mid-run.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"
	"time"

	"cpm"
	"cpm/client"
	"cpm/internal/bench"
	"cpm/internal/generator"
	"cpm/internal/model"
	"cpm/internal/network"
)

func main() {
	var (
		methodName = flag.String("method", "CPM", "CPM | YPK | SEA")
		n          = flag.Int("n", 5000, "object population")
		queries    = flag.Int("queries", 50, "number of k-NN queries")
		k          = flag.Int("k", 8, "neighbors per query")
		gridSize   = flag.Int("grid", 128, "grid cells per dimension")
		ts         = flag.Int("ts", 30, "timestamps to simulate")
		seed       = flag.Int64("seed", 1, "workload seed")
		speed      = flag.String("speed", "medium", "object/query speed: slow | medium | fast")
		fobj       = flag.Float64("fobj", 0.5, "object agility (fraction updating per timestamp)")
		fqry       = flag.Float64("fqry", 0.3, "query agility")
		watch      = flag.Int("watch", 2, "queries whose results are printed each cycle")
		shards     = flag.Int("shards", 1, "CPM worker shards (>1 parallelizes each cycle; 0 = all usable cores)")
		follow     = flag.Bool("follow", false, "stream pushed result diffs instead of polling (CPM only)")
		connect    = flag.String("connect", "", "drive a remote cpmserver at this address instead of an in-process monitor")
		rebalance  = flag.Bool("rebalance", false, "auto-rebalance the grid online as object density drifts (CPM only)")
	)
	flag.Parse()

	if *shards < 0 {
		fmt.Fprintf(os.Stderr, "cpmsim: -shards must be non-negative (0 = all usable cores)\n")
		os.Exit(2)
	}
	nShards := bench.ResolveShards(*shards)
	if *rebalance && *methodName != "CPM" {
		fmt.Fprintf(os.Stderr, "cpmsim: -rebalance applies to the CPM method only\n")
		os.Exit(2)
	}
	if *connect != "" {
		if *methodName != "CPM" {
			fmt.Fprintf(os.Stderr, "cpmsim: -connect drives a remote CPM monitor; -method does not apply\n")
			os.Exit(2)
		}
		if *rebalance {
			// Rebalancing is a server-side property of the hosted monitor;
			// silently dropping the flag would mislead.
			fmt.Fprintf(os.Stderr, "cpmsim: -rebalance configures an in-process monitor; start the server with `cpmserver -rebalance` instead\n")
			os.Exit(2)
		}
		runRemote(*connect, *n, *queries, *k, *ts, *seed, *speed, *fobj, *fqry, *watch, *follow)
		return
	}
	if *follow {
		if *methodName != "CPM" {
			fmt.Fprintf(os.Stderr, "cpmsim: -follow applies to the CPM method only\n")
			os.Exit(2)
		}
		runFollow(*n, *queries, *k, *gridSize, *ts, *seed, *speed, *fobj, *fqry, *watch, nShards, *rebalance)
		return
	}
	var method bench.Method
	switch *methodName {
	case "CPM":
		method = bench.CPM
		if nShards > 1 {
			method = bench.CPMSharded
		}
	case "YPK":
		method = bench.YPK
	case "SEA":
		method = bench.SEA
	default:
		fmt.Fprintf(os.Stderr, "cpmsim: unknown method %q\n", *methodName)
		os.Exit(2)
	}
	if nShards > 1 && method != bench.CPMSharded {
		fmt.Fprintf(os.Stderr, "cpmsim: -shards applies to the CPM method only\n")
		os.Exit(2)
	}
	net, w := makeWorkload(*n, *queries, *seed, *speed, *fobj, *fqry)

	var mon model.Monitor
	var rebalMon *cpm.Monitor
	if *rebalance {
		// -rebalance routes through the public monitor so the auto policy
		// (and a visible grid size) come along.
		rebalMon = cpm.NewMonitor(cpm.Options{GridSize: *gridSize, Shards: nShards, AutoRebalance: true})
		mon = rebalAdapter{rebalMon}
	} else {
		mon = method.NewMonitor(*gridSize, nShards)
	}
	mon.Bootstrap(w.InitialObjects())
	start := time.Now()
	for i, q := range w.InitialQueries() {
		if err := mon.RegisterQuery(model.QueryID(i), q, *k); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("%s: %d objects, %d queries (k=%d) on a %d-node road network; initial evaluation %v\n",
		mon.Name(), *n, *queries, *k, net.NumNodes(), time.Since(start).Round(time.Microsecond))

	if *watch > *queries {
		*watch = *queries
	}
	prev := make([][]model.Neighbor, *watch)
	for i := 0; i < *watch; i++ {
		prev[i] = mon.Result(model.QueryID(i))
	}

	var total time.Duration
	statsBase := mon.Stats()
	lastGrid := *gridSize
	for cycle := 1; cycle <= *ts; cycle++ {
		b := w.Advance()
		t0 := time.Now()
		mon.ProcessBatch(b)
		d := time.Since(t0)
		total += d
		fmt.Printf("cycle %3d: %5d object updates, %4d query updates, %8v\n",
			cycle, len(b.Objects), len(b.Queries), d.Round(time.Microsecond))
		if rebalMon != nil {
			if gs := rebalMon.GridSize(); gs != lastGrid {
				fmt.Printf("           grid rebalanced %dx%d -> %dx%d (δ %.5f)\n",
					lastGrid, lastGrid, gs, gs, 1/float64(gs))
				lastGrid = gs
			}
		}
		for i := 0; i < *watch; i++ {
			cur := mon.Result(model.QueryID(i))
			if changed(prev[i], cur) {
				fmt.Printf("           q%d -> %s\n", i, formatResult(cur))
				prev[i] = cur
			}
		}
	}
	s := mon.Stats().Sub(statsBase)
	if rebalMon != nil {
		fmt.Printf("\n%d grid rebalances; final grid %dx%d\n", rebalMon.Rebalances(), lastGrid, lastGrid)
	}
	fmt.Printf("\ntotal processing %v (%v per cycle)\n", total.Round(time.Microsecond),
		(total / time.Duration(*ts)).Round(time.Microsecond))
	fmt.Printf("cell accesses %d (%.2f per query per cycle), heap ops %d, re-computations %d, full searches %d, short-circuits %d\n",
		s.CellAccesses, float64(s.CellAccesses)/float64(*queries**ts),
		s.HeapOps, s.Recomputations, s.FullSearches, s.ShortCircuits)
}

// rebalAdapter drives a public cpm.Monitor through the model.Monitor
// surface so the -rebalance run shares the polling loop with the bench
// method monitors.
type rebalAdapter struct{ m *cpm.Monitor }

func (r rebalAdapter) Name() string                                { return "CPM-rebalance" }
func (r rebalAdapter) Bootstrap(objs map[model.ObjectID]cpm.Point) { r.m.Bootstrap(objs) }
func (r rebalAdapter) ProcessBatch(b model.Batch)                  { r.m.Tick(b) }
func (r rebalAdapter) RemoveQuery(id model.QueryID)                { r.m.RemoveQuery(id) }
func (r rebalAdapter) Result(id model.QueryID) []model.Neighbor    { return r.m.Result(id) }
func (r rebalAdapter) Stats() model.Stats                          { return r.m.Stats() }
func (r rebalAdapter) RegisterQuery(id model.QueryID, q cpm.Point, k int) error {
	return r.m.RegisterQuery(id, q, k)
}

// makeWorkload builds the road network and the update-stream generator
// shared by the polling and the streaming mode.
func makeWorkload(n, queries int, seed int64, speed string, fobj, fqry float64) (*network.Graph, *generator.Workload) {
	var spd generator.Speed
	switch speed {
	case "slow":
		spd = generator.Slow
	case "medium":
		spd = generator.Medium
	case "fast":
		spd = generator.Fast
	default:
		fmt.Fprintf(os.Stderr, "cpmsim: unknown speed %q\n", speed)
		os.Exit(2)
	}
	net, err := network.Generate(network.GenOptions{Width: 32, Height: 32, Seed: seed})
	if err != nil {
		fatal(err)
	}
	w, err := generator.New(net, generator.Params{
		N: n, NumQueries: queries,
		ObjectSpeed: spd, QuerySpeed: spd,
		ObjectAgility: fobj, QueryAgility: fqry,
		Seed: seed + 1,
	})
	if err != nil {
		fatal(err)
	}
	return net, w
}

// runFollow is the -follow streaming mode: instead of polling results each
// cycle it subscribes to the monitor's result-diff stream and prints the
// pushed events. The read is deterministic: every cycle publishes exactly
// one event per changed query, so the loop takes len(ChangedQueries())
// events off the stream after each Tick.
func runFollow(n, queries, k, gridSize, ts int, seed int64, speed string, fobj, fqry float64, watch, nShards int, rebalance bool) {
	net, w := makeWorkload(n, queries, seed, speed, fobj, fqry)

	mon := cpm.NewMonitor(cpm.Options{GridSize: gridSize, Shards: nShards, AutoRebalance: rebalance})
	mon.Bootstrap(w.InitialObjects())
	sub := mon.SubscribeWith(cpm.SubscribeOptions{Buffer: 2*queries + 16})

	start := time.Now()
	for i, q := range w.InitialQueries() {
		if err := mon.RegisterQuery(cpm.QueryID(i), q, k); err != nil {
			fatal(err)
		}
	}
	for i := 0; i < queries; i++ { // the registrations' install events
		<-sub.Events()
	}
	shardNote := ""
	if nShards > 1 {
		shardNote = fmt.Sprintf(", %d shards", nShards)
	}
	fmt.Printf("CPM -follow%s: streaming %d queries (k=%d) over %d objects on a %d-node road network; initial evaluation %v\n",
		shardNote, queries, k, n, net.NumNodes(), time.Since(start).Round(time.Microsecond))

	var total time.Duration
	for cycle := 1; cycle <= ts; cycle++ {
		b := w.Advance()
		t0 := time.Now()
		mon.Tick(b)
		d := time.Since(t0)
		total += d

		pushed := len(mon.ChangedQueries())
		var entered, exited, reranked int
		details := make([]string, 0, watch)
		for i := 0; i < pushed; i++ {
			ev := <-sub.Events()
			entered += len(ev.Entered)
			exited += len(ev.Exited)
			reranked += len(ev.Reranked)
			if len(details) < watch {
				details = append(details, fmt.Sprintf("           q%d %s", ev.Query, formatEvent(ev.ResultDiff)))
			}
		}
		fmt.Printf("cycle %3d: %4d events pushed (+%d −%d ~%d) for %d object updates, %8v\n",
			cycle, pushed, entered, exited, reranked, len(b.Objects), d.Round(time.Microsecond))
		for _, line := range details {
			fmt.Println(line)
		}
	}
	mon.Close()
	if _, open := <-sub.Events(); open {
		fatal(fmt.Errorf("stream not closed after Close"))
	}
	fmt.Printf("\ntotal processing %v (%v per cycle), %d events dropped by the subscriber buffer\n",
		total.Round(time.Microsecond), (total / time.Duration(ts)).Round(time.Microsecond), sub.Dropped())
}

// runRemote is the -connect mode: the identical simulation, but every
// operation — bootstrap, registration, tick, result poll, subscription —
// crosses a TCP socket to a cpmserver.
func runRemote(addr string, n, queries, k, ts int, seed int64, speed string, fobj, fqry float64, watch int, follow bool) {
	net, w := makeWorkload(n, queries, seed, speed, fobj, fqry)
	c, err := client.Dial(addr, client.Options{})
	if err != nil {
		fatal(err)
	}
	defer c.Close()

	var sub *client.Subscription
	if follow {
		sub, err = c.SubscribeWith(client.SubscribeOptions{Buffer: 2*queries + 16})
		if err != nil {
			fatal(err)
		}
	}

	start := time.Now()
	if err := c.Bootstrap(w.InitialObjects()); err != nil {
		fatal(err)
	}
	for i, q := range w.InitialQueries() {
		if err := c.RegisterQuery(cpm.QueryID(i), q, k); err != nil {
			fatal(err)
		}
	}
	if follow {
		for i := 0; i < queries; i++ { // the registrations' install events
			<-sub.Events()
		}
	}
	fmt.Printf("CPM remote (%s): %d objects, %d queries (k=%d) on a %d-node road network; initial load %v\n",
		addr, n, queries, k, net.NumNodes(), time.Since(start).Round(time.Microsecond))

	if watch > queries {
		watch = queries
	}
	var total time.Duration
	for cycle := 1; cycle <= ts; cycle++ {
		b := w.Advance()
		t0 := time.Now()
		if err := c.Tick(b); err != nil {
			fatal(err)
		}
		d := time.Since(t0)
		total += d

		if follow {
			// The remote side does not expose the changed-query count, so
			// drain pushed events until the stream goes briefly quiet.
			pushed, entered, exited, reranked, resyncs := 0, 0, 0, 0, 0
			details := make([]string, 0, watch)
		drain:
			for {
				select {
				case ev := <-sub.Events():
					switch ev.Type {
					case client.EventDiff:
						pushed++
						entered += len(ev.Entered)
						exited += len(ev.Exited)
						reranked += len(ev.Reranked)
						if len(details) < watch {
							details = append(details, fmt.Sprintf("           q%d %s", ev.Query, formatEvent(ev.ResultDiff)))
						}
					case client.EventSnapshot, client.EventGap:
						resyncs++
					}
				case <-time.After(150 * time.Millisecond):
					break drain
				}
			}
			note := ""
			if resyncs > 0 {
				note = fmt.Sprintf(" (%d re-sync frames)", resyncs)
			}
			fmt.Printf("cycle %3d: %4d events pushed (+%d −%d ~%d) for %d object updates, %8v rtt%s\n",
				cycle, pushed, entered, exited, reranked, len(b.Objects), d.Round(time.Microsecond), note)
			for _, line := range details {
				fmt.Println(line)
			}
		} else {
			fmt.Printf("cycle %3d: %5d object updates, %4d query updates, %8v rtt\n",
				cycle, len(b.Objects), len(b.Queries), d.Round(time.Microsecond))
			for i := 0; i < watch; i++ {
				res, err := c.Result(cpm.QueryID(i))
				if err != nil {
					fatal(err)
				}
				fmt.Printf("           q%d -> %s\n", i, formatResult(res))
			}
		}
	}
	if follow && sub.Gaps() > 0 {
		fmt.Printf("\n%d gap markers (drops or reconnects) were announced on the stream\n", sub.Gaps())
	}
	fmt.Printf("\ntotal round-trip %v (%v per cycle)\n", total.Round(time.Microsecond),
		(total / time.Duration(ts)).Round(time.Microsecond))
}

// formatEvent renders one pushed diff like "+[12@0.031] −[7] ~1 → 8@0.031 40@0.044 …".
func formatEvent(ev cpm.ResultDiff) string {
	if ev.Kind == cpm.DiffRemove {
		return "terminated"
	}
	var b strings.Builder
	if ev.Kind == cpm.DiffInstall {
		b.WriteString("installed ")
	}
	if len(ev.Entered) > 0 {
		b.WriteString("+[")
		for i, n := range ev.Entered {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%d@%.4f", n.ID, n.Dist)
		}
		b.WriteString("] ")
	}
	if len(ev.Exited) > 0 {
		b.WriteString("−[")
		for i, id := range ev.Exited {
			if i > 0 {
				b.WriteByte(' ')
			}
			fmt.Fprintf(&b, "%d", id)
		}
		b.WriteString("] ")
	}
	if len(ev.Reranked) > 0 {
		fmt.Fprintf(&b, "~%d ", len(ev.Reranked))
	}
	b.WriteString("→ ")
	b.WriteString(formatResult(ev.Result))
	return b.String()
}

func changed(a, b []model.Neighbor) bool {
	if len(a) != len(b) {
		return true
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			return true
		}
	}
	return false
}

func formatResult(res []model.Neighbor) string {
	out := ""
	for i, n := range res {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%d@%.4f", n.ID, n.Dist)
		if i == 5 && len(res) > 6 {
			out += fmt.Sprintf(" …(+%d)", len(res)-6)
			break
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "cpmsim: %v\n", err)
	os.Exit(1)
}
