// Command cpmsim runs an interactive-scale monitoring simulation and
// prints per-cycle progress: result changes, work counters and timing. It
// is the quickest way to watch CPM (or a baseline) operate on a live
// network workload.
//
// Usage:
//
//	cpmsim -method CPM -n 5000 -queries 50 -k 8 -ts 30 -watch 3
//	cpmsim -method CPM -shards 4 -n 20000 -queries 500
//
// -watch selects how many queries get their results printed each cycle.
// -shards > 1 runs the CPM method as a sharded parallel monitor (results
// are identical; cycles run one goroutine per shard).
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"cpm/internal/bench"
	"cpm/internal/generator"
	"cpm/internal/model"
	"cpm/internal/network"
)

func main() {
	var (
		methodName = flag.String("method", "CPM", "CPM | YPK | SEA")
		n          = flag.Int("n", 5000, "object population")
		queries    = flag.Int("queries", 50, "number of k-NN queries")
		k          = flag.Int("k", 8, "neighbors per query")
		gridSize   = flag.Int("grid", 128, "grid cells per dimension")
		ts         = flag.Int("ts", 30, "timestamps to simulate")
		seed       = flag.Int64("seed", 1, "workload seed")
		speed      = flag.String("speed", "medium", "object/query speed: slow | medium | fast")
		fobj       = flag.Float64("fobj", 0.5, "object agility (fraction updating per timestamp)")
		fqry       = flag.Float64("fqry", 0.3, "query agility")
		watch      = flag.Int("watch", 2, "queries whose results are printed each cycle")
		shards     = flag.Int("shards", 1, "CPM worker shards (>1 parallelizes each cycle; 0 = all usable cores)")
	)
	flag.Parse()

	if *shards < 0 {
		fmt.Fprintf(os.Stderr, "cpmsim: -shards must be non-negative (0 = all usable cores)\n")
		os.Exit(2)
	}
	nShards := bench.ResolveShards(*shards)
	var method bench.Method
	switch *methodName {
	case "CPM":
		method = bench.CPM
		if nShards > 1 {
			method = bench.CPMSharded
		}
	case "YPK":
		method = bench.YPK
	case "SEA":
		method = bench.SEA
	default:
		fmt.Fprintf(os.Stderr, "cpmsim: unknown method %q\n", *methodName)
		os.Exit(2)
	}
	if nShards > 1 && method != bench.CPMSharded {
		fmt.Fprintf(os.Stderr, "cpmsim: -shards applies to the CPM method only\n")
		os.Exit(2)
	}
	var spd generator.Speed
	switch *speed {
	case "slow":
		spd = generator.Slow
	case "medium":
		spd = generator.Medium
	case "fast":
		spd = generator.Fast
	default:
		fmt.Fprintf(os.Stderr, "cpmsim: unknown speed %q\n", *speed)
		os.Exit(2)
	}

	net, err := network.Generate(network.GenOptions{Width: 32, Height: 32, Seed: *seed})
	if err != nil {
		fatal(err)
	}
	w, err := generator.New(net, generator.Params{
		N: *n, NumQueries: *queries,
		ObjectSpeed: spd, QuerySpeed: spd,
		ObjectAgility: *fobj, QueryAgility: *fqry,
		Seed: *seed + 1,
	})
	if err != nil {
		fatal(err)
	}

	mon := method.NewMonitor(*gridSize, nShards)
	mon.Bootstrap(w.InitialObjects())
	start := time.Now()
	for i, q := range w.InitialQueries() {
		if err := mon.RegisterQuery(model.QueryID(i), q, *k); err != nil {
			fatal(err)
		}
	}
	fmt.Printf("%s: %d objects, %d queries (k=%d) on a %d-node road network; initial evaluation %v\n",
		mon.Name(), *n, *queries, *k, net.NumNodes(), time.Since(start).Round(time.Microsecond))

	if *watch > *queries {
		*watch = *queries
	}
	prev := make([][]model.Neighbor, *watch)
	for i := 0; i < *watch; i++ {
		prev[i] = mon.Result(model.QueryID(i))
	}

	var total time.Duration
	statsBase := mon.Stats()
	for cycle := 1; cycle <= *ts; cycle++ {
		b := w.Advance()
		t0 := time.Now()
		mon.ProcessBatch(b)
		d := time.Since(t0)
		total += d
		fmt.Printf("cycle %3d: %5d object updates, %4d query updates, %8v\n",
			cycle, len(b.Objects), len(b.Queries), d.Round(time.Microsecond))
		for i := 0; i < *watch; i++ {
			cur := mon.Result(model.QueryID(i))
			if changed(prev[i], cur) {
				fmt.Printf("           q%d -> %s\n", i, formatResult(cur))
				prev[i] = cur
			}
		}
	}
	s := mon.Stats().Sub(statsBase)
	fmt.Printf("\ntotal processing %v (%v per cycle)\n", total.Round(time.Microsecond),
		(total / time.Duration(*ts)).Round(time.Microsecond))
	fmt.Printf("cell accesses %d (%.2f per query per cycle), heap ops %d, re-computations %d, full searches %d, short-circuits %d\n",
		s.CellAccesses, float64(s.CellAccesses)/float64(*queries**ts),
		s.HeapOps, s.Recomputations, s.FullSearches, s.ShortCircuits)
}

func changed(a, b []model.Neighbor) bool {
	if len(a) != len(b) {
		return true
	}
	for i := range a {
		if a[i].ID != b[i].ID {
			return true
		}
	}
	return false
}

func formatResult(res []model.Neighbor) string {
	out := ""
	for i, n := range res {
		if i > 0 {
			out += " "
		}
		out += fmt.Sprintf("%d@%.4f", n.ID, n.Dist)
		if i == 5 && len(res) > 6 {
			out += fmt.Sprintf(" …(+%d)", len(res)-6)
			break
		}
	}
	return out
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "cpmsim: %v\n", err)
	os.Exit(1)
}
