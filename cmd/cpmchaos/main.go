// Command cpmchaos is a fault-injecting TCP proxy for CPM failure
// drills: put it between a coordinator and a worker (or a client and a
// server) and drive faults against the link — by hand over a control
// endpoint, or replayably from a seeded schedule.
//
//	cpmserver -addr :7901 &
//	cpmchaos  -addr :7999 -target localhost:7901 -seed 42 \
//	          -schedule '10s+5s:partition, 30s:latency=150ms~50ms, 60s+2s:corrupt=0.5'
//	cpmcoord  -addr :7845 -workers localhost:7999,localhost:7902
//
// Every probabilistic decision (corrupt which bits, reset which write)
// draws from the -seed RNG, so a drill that found a weakness replays
// bit-for-bit from its seed and schedule. Without -schedule the proxy
// starts healthy and faults are driven interactively over -control:
//
//	cpmchaos -addr :7999 -target localhost:7901 -control :7998 &
//	curl -s 'localhost:7998/fault?set=partition'     # blackhole the link
//	curl -s 'localhost:7998/fault?set=none'          # heal it
//	curl -s 'localhost:7998/fault'                   # current fault + fire counters
//	curl -s 'localhost:7998/metrics'                 # fired counters, metrics-page shape
//
// The accepted fault specs are the schedule DSL classes: none, partition,
// reset[=PROB], latency=DELAY[~JITTER], throttle=BYTES_PER_SEC,
// slowloris=CHUNK/STALL, corrupt[=PROB], truncate[=PROB]. See
// docs/OPERATIONS.md for drill recipes and the metric signatures each
// fault class should produce on the coordinator.
//
// The /metrics page renders the per-class fired counters as the same
// "name value" plain text the cpmserver/cpmcoord pages use
// (cpm_chaos_fired_<class>_total), so a drill harness scrapes the proxy
// and the system under test with one code path.
//
// On SIGINT/SIGTERM (or when the schedule ends with -exit) the proxy
// prints a per-class report of how many times each fault actually fired,
// so a drill can prove its faults were exercised rather than hope.
package main

import (
	"context"
	"flag"
	"fmt"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"cpm/internal/chaos"
	"cpm/internal/cmdutil"
)

func main() {
	var (
		addr     = flag.String("addr", ":7999", "listen address (the faulted side)")
		target   = flag.String("target", "", "upstream address to proxy to (required)")
		seed     = flag.Int64("seed", 1, "RNG seed for every probabilistic fault decision")
		schedule = flag.String("schedule", "", "fault schedule to replay: 'AFTER[+DUR]:CLASS[=ARGS], ...' (empty = start healthy)")
		control  = flag.String("control", "", "serve the /fault control and /metrics endpoints over HTTP on this address (empty = off)")
		exit     = flag.Bool("exit", false, "exit after the schedule finishes instead of staying up healthy")
		verbose  = flag.Bool("v", false, "shorthand for -log-level debug")
		logLevel = flag.String("log-level", "info", "log verbosity: debug, info, warn or error")
	)
	flag.Parse()
	if *verbose && *logLevel == "info" {
		*logLevel = "debug"
	}
	logger := cmdutil.Logger("cpmchaos", *logLevel)

	if *target == "" {
		fmt.Fprintln(os.Stderr, "cpmchaos: -target is required")
		os.Exit(2)
	}
	var windows []chaos.Window
	if *schedule != "" {
		var err error
		if windows, err = chaos.ParseSchedule(*schedule); err != nil {
			fmt.Fprintf(os.Stderr, "cpmchaos: %v\n", err)
			os.Exit(2)
		}
	}
	if *exit && len(windows) == 0 {
		fmt.Fprintln(os.Stderr, "cpmchaos: -exit needs a -schedule to finish")
		os.Exit(2)
	}

	link := chaos.NewLink(*seed)
	proxy, err := chaos.NewProxy(*addr, *target, link)
	if err != nil {
		cmdutil.Fatal(logger, "proxy startup failed", "err", err)
	}
	logger.Info("proxying", "addr", proxy.Addr(), "target", *target, "seed", *seed)

	if *control != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/fault", func(w http.ResponseWriter, r *http.Request) {
			if spec := r.URL.Query().Get("set"); spec != "" {
				f, err := chaos.ParseFault(spec)
				if err != nil {
					http.Error(w, err.Error(), http.StatusBadRequest)
					return
				}
				link.Set(f)
				logger.Info("fault set", "class", f.Class.String())
			}
			fmt.Fprintf(w, "fault: %s\nfired: %s\n",
				link.Fault().Class, chaos.FormatCounters(link.Counters()))
		})
		mux.HandleFunc("/metrics", func(w http.ResponseWriter, r *http.Request) {
			w.Header().Set("Content-Type", "text/plain; charset=utf-8")
			writeCounters(w, link.Counters())
		})
		go func() {
			logger.Info("control endpoint up", "url", "http://"+*control+"/fault")
			if err := http.ListenAndServe(*control, mux); err != nil {
				cmdutil.Fatal(logger, "control endpoint failed", "err", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	done := make(chan struct{})
	go func() {
		defer close(done)
		if len(windows) > 0 {
			logger.Info("replaying schedule", "windows", len(windows))
			chaos.RunSchedule(ctx, link, windows)
			logger.Info("schedule done, link healed")
		}
		if !*exit {
			<-ctx.Done()
		}
	}()
	<-done

	proxy.Close()
	logger.Info("faults fired", "counters", chaos.FormatCounters(link.Counters()))
}

// writeCounters renders the per-class fired counters in the "name value"
// plain-text shape the other binaries' metrics pages use. Every class is
// listed (zeros included), so scrapers see a stable set of series.
func writeCounters(w http.ResponseWriter, counts [chaos.NumClasses]int64) {
	for c := 1; c < chaos.NumClasses; c++ { // skip None: it never fires
		fmt.Fprintf(w, "cpm_chaos_fired_%s_total %d\n", chaos.Class(c), counts[c])
	}
}
