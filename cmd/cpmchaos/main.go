// Command cpmchaos is a fault-injecting TCP proxy for CPM failure
// drills: put it between a coordinator and a worker (or a client and a
// server) and drive faults against the link — by hand over a control
// endpoint, or replayably from a seeded schedule.
//
//	cpmserver -addr :7901 &
//	cpmchaos  -addr :7999 -target localhost:7901 -seed 42 \
//	          -schedule '10s+5s:partition, 30s:latency=150ms~50ms, 60s+2s:corrupt=0.5'
//	cpmcoord  -addr :7845 -workers localhost:7999,localhost:7902
//
// Every probabilistic decision (corrupt which bits, reset which write)
// draws from the -seed RNG, so a drill that found a weakness replays
// bit-for-bit from its seed and schedule. Without -schedule the proxy
// starts healthy and faults are driven interactively over -control:
//
//	cpmchaos -addr :7999 -target localhost:7901 -control :7998 &
//	curl -s 'localhost:7998/fault?set=partition'     # blackhole the link
//	curl -s 'localhost:7998/fault?set=none'          # heal it
//	curl -s 'localhost:7998/fault'                   # current fault + fire counters
//
// The accepted fault specs are the schedule DSL classes: none, partition,
// reset[=PROB], latency=DELAY[~JITTER], throttle=BYTES_PER_SEC,
// slowloris=CHUNK/STALL, corrupt[=PROB], truncate[=PROB]. See
// docs/OPERATIONS.md for drill recipes and the metric signatures each
// fault class should produce on the coordinator.
//
// On SIGINT/SIGTERM (or when the schedule ends with -exit) the proxy
// prints a per-class report of how many times each fault actually fired,
// so a drill can prove its faults were exercised rather than hope.
package main

import (
	"context"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"

	"cpm/internal/chaos"
)

func main() {
	var (
		addr     = flag.String("addr", ":7999", "listen address (the faulted side)")
		target   = flag.String("target", "", "upstream address to proxy to (required)")
		seed     = flag.Int64("seed", 1, "RNG seed for every probabilistic fault decision")
		schedule = flag.String("schedule", "", "fault schedule to replay: 'AFTER[+DUR]:CLASS[=ARGS], ...' (empty = start healthy)")
		control  = flag.String("control", "", "serve the /fault control endpoint over HTTP on this address (empty = off)")
		exit     = flag.Bool("exit", false, "exit after the schedule finishes instead of staying up healthy")
	)
	flag.Parse()

	if *target == "" {
		fmt.Fprintln(os.Stderr, "cpmchaos: -target is required")
		os.Exit(2)
	}
	var windows []chaos.Window
	if *schedule != "" {
		var err error
		if windows, err = chaos.ParseSchedule(*schedule); err != nil {
			fmt.Fprintf(os.Stderr, "cpmchaos: %v\n", err)
			os.Exit(2)
		}
	}
	if *exit && len(windows) == 0 {
		fmt.Fprintln(os.Stderr, "cpmchaos: -exit needs a -schedule to finish")
		os.Exit(2)
	}

	link := chaos.NewLink(*seed)
	proxy, err := chaos.NewProxy(*addr, *target, link)
	if err != nil {
		log.Fatalf("cpmchaos: %v", err)
	}
	log.Printf("cpmchaos: proxying %s -> %s (seed %d)", proxy.Addr(), *target, *seed)

	if *control != "" {
		mux := http.NewServeMux()
		mux.HandleFunc("/fault", func(w http.ResponseWriter, r *http.Request) {
			if spec := r.URL.Query().Get("set"); spec != "" {
				f, err := chaos.ParseFault(spec)
				if err != nil {
					http.Error(w, err.Error(), http.StatusBadRequest)
					return
				}
				link.Set(f)
				log.Printf("cpmchaos: fault set to %s", f.Class)
			}
			fmt.Fprintf(w, "fault: %s\nfired: %s\n",
				link.Fault().Class, chaos.FormatCounters(link.Counters()))
		})
		go func() {
			log.Printf("cpmchaos: control endpoint on %s/fault", *control)
			if err := http.ListenAndServe(*control, mux); err != nil {
				log.Fatalf("cpmchaos: control: %v", err)
			}
		}()
	}

	ctx, stop := signal.NotifyContext(context.Background(), syscall.SIGINT, syscall.SIGTERM)
	defer stop()

	done := make(chan struct{})
	go func() {
		defer close(done)
		if len(windows) > 0 {
			log.Printf("cpmchaos: replaying %d-window schedule", len(windows))
			chaos.RunSchedule(ctx, link, windows)
			log.Printf("cpmchaos: schedule done, link healed")
		}
		if !*exit {
			<-ctx.Done()
		}
	}()
	<-done

	proxy.Close()
	log.Printf("cpmchaos: faults fired: %s", chaos.FormatCounters(link.Counters()))
}
