// Command cpmserver hosts a CPM monitor behind the TCP serving layer
// (internal/server): remote clients — the client package, cpmsim -connect,
// or anything speaking internal/wire — feed it object streams, register
// continuous queries, poll results and subscribe to pushed result diffs
// with reconnect/resume semantics.
//
// Two modes:
//
//	cpmserver -addr :7845
//	    An empty monitor. Clients bring everything: bootstrap, queries,
//	    update ticks (remote ingest).
//
//	cpmserver -addr :7845 -drive -n 20000 -queries 500 -interval 250ms
//	    Self-driving: the server generates a Brinkhoff-style network
//	    workload, registers the queries itself and ticks continuously at
//	    the given interval. Clients subscribe (and may register further
//	    queries of their own) — a one-process demo of the push pipeline.
//
// The monitor can run sharded (-shards) and with online grid rebalancing
// (-rebalance) exactly like the embedded library. With -metrics the server
// additionally exposes its runtime counters as a plain-text HTTP page
// ("name value" lines, curl-able; see docs/METRICS.md):
//
//	cpmserver -addr :7845 -metrics :9100
//	curl -s localhost:9100/metrics
//
// Stop with SIGINT/SIGTERM; connections drain and the process exits.
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cpm"
	"cpm/internal/bench"
	"cpm/internal/generator"
	"cpm/internal/model"
	"cpm/internal/network"
	"cpm/internal/server"
)

func main() {
	var (
		addr        = flag.String("addr", ":7845", "listen address")
		metricsAddr = flag.String("metrics", "", "serve plain-text metrics over HTTP on this address (empty = off)")
		gridSize    = flag.Int("grid", 128, "grid cells per dimension")
		shards      = flag.Int("shards", 1, "CPM worker shards (>1 parallelizes each cycle; 0 = all usable cores)")
		rebalance   = flag.Bool("rebalance", false, "auto-rebalance the grid online as object density drifts")
		verbose     = flag.Bool("v", false, "log connection events")

		writeTimeout     = flag.Duration("write-timeout", 10*time.Second, "per-flush socket write deadline (slow-consumer reap; <0 disables)")
		handshakeTimeout = flag.Duration("handshake-timeout", 10*time.Second, "deadline for the client's Hello frame (<0 disables)")

		drive    = flag.Bool("drive", false, "self-drive a generated workload instead of waiting for remote ingest")
		n        = flag.Int("n", 10000, "object population (-drive)")
		queries  = flag.Int("queries", 100, "number of k-NN queries (-drive)")
		k        = flag.Int("k", 8, "neighbors per query (-drive)")
		ts       = flag.Int("ts", 0, "timestamps to simulate, 0 = run until stopped (-drive)")
		interval = flag.Duration("interval", 250*time.Millisecond, "delay between cycles (-drive)")
		seed     = flag.Int64("seed", 1, "workload seed (-drive)")
	)
	flag.Parse()

	if *shards < 0 {
		fmt.Fprintln(os.Stderr, "cpmserver: -shards must be non-negative")
		os.Exit(2)
	}
	mon := cpm.NewMonitor(cpm.Options{
		GridSize:      *gridSize,
		Shards:        bench.ResolveShards(*shards),
		AutoRebalance: *rebalance,
	})
	opts := server.Options{
		WriteTimeout:     *writeTimeout,
		HandshakeTimeout: *handshakeTimeout,
	}
	if *verbose {
		opts.Logf = log.Printf
	}
	srv := server.New(mon, opts)

	// The startup line carries every resolved option, so operator logs
	// identify the configuration a running instance was launched with.
	log.Printf("cpmserver: starting: addr=%s metrics=%s grid=%d shards=%d rebalance=%v write-timeout=%v handshake-timeout=%v drive=%v",
		*addr, orOff(*metricsAddr), *gridSize, bench.ResolveShards(*shards), *rebalance, *writeTimeout, *handshakeTimeout, *drive)

	if *metricsAddr != "" {
		go serveMetrics(srv, *metricsAddr)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	quit := make(chan struct{})
	done := make(chan struct{})
	if *drive {
		go driveWorkload(srv, *n, *queries, *k, *ts, *seed, *interval, quit, done)
	} else {
		close(done)
	}

	go func() {
		<-stop
		log.Printf("cpmserver: shutting down")
		close(quit)
		srv.Close()
	}()

	if err := srv.ListenAndServe(*addr); err != nil && err != server.ErrClosed {
		log.Fatalf("cpmserver: %v", err)
	}
	<-done
	mon.Close()
}

// orOff renders an optional address for the startup line.
func orOff(addr string) string {
	if addr == "" {
		return "off"
	}
	return addr
}

// serveMetrics exposes the server's registry as a plain-text HTTP page on
// /metrics (and on /, for curl convenience).
func serveMetrics(srv *server.Server, addr string) {
	mux := http.NewServeMux()
	handler := func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		srv.Metrics().WriteText(w)
	}
	mux.HandleFunc("/metrics", handler)
	mux.HandleFunc("/", handler)
	log.Printf("cpmserver: metrics on http://%s/metrics", addr)
	if err := http.ListenAndServe(addr, mux); err != nil {
		log.Printf("cpmserver: metrics endpoint: %v", err)
	}
}

// driveWorkload bootstraps a generated workload into the served monitor
// and ticks it forever (or for ts cycles), sharing the monitor with the
// network via the server's lock.
func driveWorkload(srv *server.Server, n, queries, k, ts int, seed int64, interval time.Duration, quit <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	net, err := network.Generate(network.GenOptions{Width: 32, Height: 32, Seed: seed})
	if err != nil {
		log.Fatalf("cpmserver: %v", err)
	}
	w, err := generator.New(net, generator.Params{
		N: n, NumQueries: queries,
		ObjectSpeed: generator.Medium, QuerySpeed: generator.Medium,
		ObjectAgility: 0.5, QueryAgility: 0.3,
		Seed: seed + 1,
	})
	if err != nil {
		log.Fatalf("cpmserver: %v", err)
	}
	srv.Locked(func(m server.Backend) {
		m.Bootstrap(w.InitialObjects())
		for i, q := range w.InitialQueries() {
			if err := m.RegisterQuery(model.QueryID(i), q, k); err != nil {
				log.Fatalf("cpmserver: register q%d: %v", i, err)
			}
		}
	})
	log.Printf("cpmserver: driving %d objects, %d queries (k=%d), one cycle per %v", n, queries, k, interval)

	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for cycle := 1; ts == 0 || cycle <= ts; cycle++ {
		select {
		case <-ticker.C:
		case <-quit:
			return
		}
		b := w.Advance()
		var changed int
		var cycleNs int64
		srv.Locked(func(m server.Backend) {
			m.Tick(b)
			changed = len(m.ChangedQueries())
			cycleNs = m.LastCycleNanos()
		})
		srv.ObserveCycle(time.Duration(cycleNs))
		if cycle%20 == 0 {
			log.Printf("cpmserver: cycle %d: %d updates, %d results changed", cycle, len(b.Objects), changed)
		}
	}
}
