// Command cpmserver hosts a CPM monitor behind the TCP serving layer
// (internal/server): remote clients — the client package, cpmsim -connect,
// or anything speaking internal/wire — feed it object streams, register
// continuous queries, poll results and subscribe to pushed result diffs
// with reconnect/resume semantics.
//
// Two modes:
//
//	cpmserver -addr :7845
//	    An empty monitor. Clients bring everything: bootstrap, queries,
//	    update ticks (remote ingest).
//
//	cpmserver -addr :7845 -drive -n 20000 -queries 500 -interval 250ms
//	    Self-driving: the server generates a Brinkhoff-style network
//	    workload, registers the queries itself and ticks continuously at
//	    the given interval. Clients subscribe (and may register further
//	    queries of their own) — a one-process demo of the push pipeline.
//
// The monitor can run sharded (-shards) and with online grid rebalancing
// (-rebalance) exactly like the embedded library. With -metrics the server
// additionally exposes its runtime counters as a plain-text HTTP page
// ("name value" lines, curl-able; see docs/METRICS.md):
//
//	cpmserver -addr :7845 -metrics :9100
//	curl -s localhost:9100/metrics
//
// The same address carries the debug surfaces: the distributed-tracing
// flight recorder on /debug/traces (enabled by -trace-sample and/or
// -slow-op; see docs/TRACING.md) and, with -pprof, the standard profiling
// handlers on /debug/pprof/.
//
// Stop with SIGINT/SIGTERM; connections drain and the process exits.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cpm"
	"cpm/internal/bench"
	"cpm/internal/cmdutil"
	"cpm/internal/generator"
	"cpm/internal/model"
	"cpm/internal/network"
	"cpm/internal/server"
	"cpm/internal/tracing"
)

func main() {
	var (
		addr        = flag.String("addr", ":7845", "listen address")
		metricsAddr = flag.String("metrics", "", "serve plain-text metrics over HTTP on this address (empty = off)")
		gridSize    = flag.Int("grid", 128, "grid cells per dimension")
		shards      = flag.Int("shards", 1, "CPM worker shards (>1 parallelizes each cycle; 0 = all usable cores)")
		rebalance   = flag.Bool("rebalance", false, "auto-rebalance the grid online as object density drifts")
		verbose     = flag.Bool("v", false, "shorthand for -log-level debug")
		logLevel    = flag.String("log-level", "info", "log verbosity: debug, info, warn or error")

		writeTimeout     = flag.Duration("write-timeout", 10*time.Second, "per-flush socket write deadline (slow-consumer reap; <0 disables)")
		handshakeTimeout = flag.Duration("handshake-timeout", 10*time.Second, "deadline for the client's Hello frame (<0 disables)")

		traceSample = flag.Float64("trace-sample", 0, "trace head-sampling probability in [0,1] (0 = off)")
		slowOp      = flag.Duration("slow-op", 0, "force-record any op at least this slow into the flight recorder (0 = off)")
		traceCap    = flag.Int("trace-cap", 256, "flight-recorder capacity in traces")
		pprofOn     = flag.Bool("pprof", false, "expose /debug/pprof/ on the -metrics address")

		drive    = flag.Bool("drive", false, "self-drive a generated workload instead of waiting for remote ingest")
		n        = flag.Int("n", 10000, "object population (-drive)")
		queries  = flag.Int("queries", 100, "number of k-NN queries (-drive)")
		k        = flag.Int("k", 8, "neighbors per query (-drive)")
		ts       = flag.Int("ts", 0, "timestamps to simulate, 0 = run until stopped (-drive)")
		interval = flag.Duration("interval", 250*time.Millisecond, "delay between cycles (-drive)")
		seed     = flag.Int64("seed", 1, "workload seed (-drive)")
	)
	flag.Parse()
	if *verbose && *logLevel == "info" {
		*logLevel = "debug"
	}
	logger := cmdutil.Logger("cpmserver", *logLevel)

	if *shards < 0 {
		fmt.Fprintln(os.Stderr, "cpmserver: -shards must be non-negative")
		os.Exit(2)
	}
	mon := cpm.NewMonitor(cpm.Options{
		GridSize:      *gridSize,
		Shards:        bench.ResolveShards(*shards),
		AutoRebalance: *rebalance,
	})
	tracer := cmdutil.TraceConfig{Sample: *traceSample, SlowOp: *slowOp, Cap: *traceCap}.Build(logger)
	opts := server.Options{
		WriteTimeout:     *writeTimeout,
		HandshakeTimeout: *handshakeTimeout,
		Logf:             cmdutil.Logf(logger),
		Tracer:           tracer,
	}
	srv := server.New(mon, opts)

	// The startup line carries every resolved option, so operator logs
	// identify the configuration a running instance was launched with.
	logger.Info("starting",
		"addr", *addr, "metrics", orOff(*metricsAddr),
		"grid", *gridSize, "shards", bench.ResolveShards(*shards), "rebalance", *rebalance,
		"write_timeout", *writeTimeout, "handshake_timeout", *handshakeTimeout,
		"trace_sample", *traceSample, "slow_op", *slowOp, "pprof", *pprofOn,
		"drive", *drive)

	if *metricsAddr != "" {
		go serveMetrics(logger, srv, tracer, *metricsAddr, *pprofOn)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	quit := make(chan struct{})
	done := make(chan struct{})
	if *drive {
		go driveWorkload(logger, srv, *n, *queries, *k, *ts, *seed, *interval, quit, done)
	} else {
		close(done)
	}

	go func() {
		<-stop
		logger.Info("shutting down")
		close(quit)
		srv.Close()
	}()

	if err := srv.ListenAndServe(*addr); err != nil && err != server.ErrClosed {
		cmdutil.Fatal(logger, "serve failed", "err", err)
	}
	<-done
	mon.Close()
}

// orOff renders an optional address for the startup line.
func orOff(addr string) string {
	if addr == "" {
		return "off"
	}
	return addr
}

// serveMetrics exposes the server's registry as a plain-text HTTP page on
// /metrics (and on /, for curl convenience), plus the debug surfaces:
// /debug/traces always, /debug/pprof/ behind -pprof.
func serveMetrics(logger *slog.Logger, srv *server.Server, tracer *tracing.Tracer, addr string, pprofOn bool) {
	mux := http.NewServeMux()
	handler := func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		srv.Metrics().WriteText(w)
	}
	mux.HandleFunc("/metrics", handler)
	mux.HandleFunc("/", handler)
	cmdutil.MountDebug(mux, tracer, pprofOn)
	logger.Info("metrics endpoint up", "url", "http://"+addr+"/metrics")
	if err := http.ListenAndServe(addr, mux); err != nil {
		logger.Error("metrics endpoint failed", "err", err)
	}
}

// driveWorkload bootstraps a generated workload into the served monitor
// and ticks it forever (or for ts cycles), sharing the monitor with the
// network via the server's lock.
func driveWorkload(logger *slog.Logger, srv *server.Server, n, queries, k, ts int, seed int64, interval time.Duration, quit <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	net, err := network.Generate(network.GenOptions{Width: 32, Height: 32, Seed: seed})
	if err != nil {
		cmdutil.Fatal(logger, "network generation failed", "err", err)
	}
	w, err := generator.New(net, generator.Params{
		N: n, NumQueries: queries,
		ObjectSpeed: generator.Medium, QuerySpeed: generator.Medium,
		ObjectAgility: 0.5, QueryAgility: 0.3,
		Seed: seed + 1,
	})
	if err != nil {
		cmdutil.Fatal(logger, "workload generation failed", "err", err)
	}
	srv.Locked(func(m server.Backend) {
		m.Bootstrap(w.InitialObjects())
		for i, q := range w.InitialQueries() {
			if err := m.RegisterQuery(model.QueryID(i), q, k); err != nil {
				cmdutil.Fatal(logger, "query registration failed", "query", i, "err", err)
			}
		}
	})
	logger.Info("driving workload", "objects", n, "queries", queries, "k", k, "interval", interval)

	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for cycle := 1; ts == 0 || cycle <= ts; cycle++ {
		select {
		case <-ticker.C:
		case <-quit:
			return
		}
		b := w.Advance()
		var changed int
		var cycleNs int64
		srv.Locked(func(m server.Backend) {
			m.Tick(b)
			changed = len(m.ChangedQueries())
			cycleNs = m.LastCycleNanos()
		})
		srv.ObserveCycle(time.Duration(cycleNs))
		if cycle%20 == 0 {
			logger.Info("drive progress", "cycle", cycle, "updates", len(b.Objects), "changed", changed)
		}
	}
}
