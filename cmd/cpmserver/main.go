// Command cpmserver hosts a CPM monitor behind the TCP serving layer
// (internal/server): remote clients — the client package, cpmsim -connect,
// or anything speaking internal/wire — feed it object streams, register
// continuous queries, poll results and subscribe to pushed result diffs
// with reconnect/resume semantics.
//
// Two modes:
//
//	cpmserver -addr :7845
//	    An empty monitor. Clients bring everything: bootstrap, queries,
//	    update ticks (remote ingest).
//
//	cpmserver -addr :7845 -drive -n 20000 -queries 500 -interval 250ms
//	    Self-driving: the server generates a Brinkhoff-style network
//	    workload, registers the queries itself and ticks continuously at
//	    the given interval. Clients subscribe (and may register further
//	    queries of their own) — a one-process demo of the push pipeline.
//
// The monitor can run sharded (-shards) and with online grid rebalancing
// (-rebalance) exactly like the embedded library.
// Stop with SIGINT/SIGTERM; connections drain and the process exits.
package main

import (
	"flag"
	"fmt"
	"log"
	"os"
	"os/signal"
	"syscall"
	"time"

	"cpm"
	"cpm/internal/bench"
	"cpm/internal/generator"
	"cpm/internal/model"
	"cpm/internal/network"
	"cpm/internal/server"
)

func main() {
	var (
		addr      = flag.String("addr", ":7845", "listen address")
		gridSize  = flag.Int("grid", 128, "grid cells per dimension")
		shards    = flag.Int("shards", 1, "CPM worker shards (>1 parallelizes each cycle; 0 = all usable cores)")
		rebalance = flag.Bool("rebalance", false, "auto-rebalance the grid online as object density drifts")
		verbose   = flag.Bool("v", false, "log connection events")

		drive    = flag.Bool("drive", false, "self-drive a generated workload instead of waiting for remote ingest")
		n        = flag.Int("n", 10000, "object population (-drive)")
		queries  = flag.Int("queries", 100, "number of k-NN queries (-drive)")
		k        = flag.Int("k", 8, "neighbors per query (-drive)")
		ts       = flag.Int("ts", 0, "timestamps to simulate, 0 = run until stopped (-drive)")
		interval = flag.Duration("interval", 250*time.Millisecond, "delay between cycles (-drive)")
		seed     = flag.Int64("seed", 1, "workload seed (-drive)")
	)
	flag.Parse()

	if *shards < 0 {
		fmt.Fprintln(os.Stderr, "cpmserver: -shards must be non-negative")
		os.Exit(2)
	}
	mon := cpm.NewMonitor(cpm.Options{
		GridSize:      *gridSize,
		Shards:        bench.ResolveShards(*shards),
		AutoRebalance: *rebalance,
	})
	opts := server.Options{}
	if *verbose {
		opts.Logf = log.Printf
	}
	srv := server.New(mon, opts)

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)

	quit := make(chan struct{})
	done := make(chan struct{})
	if *drive {
		go driveWorkload(srv, *n, *queries, *k, *ts, *seed, *interval, quit, done)
	} else {
		close(done)
	}

	go func() {
		<-stop
		log.Printf("cpmserver: shutting down")
		close(quit)
		srv.Close()
	}()

	mode := ""
	if *rebalance {
		mode = ", auto-rebalance"
	}
	log.Printf("cpmserver: serving CPM monitor (grid %d, shards %d%s) on %s", *gridSize, bench.ResolveShards(*shards), mode, *addr)
	if err := srv.ListenAndServe(*addr); err != nil && err != server.ErrClosed {
		log.Fatalf("cpmserver: %v", err)
	}
	<-done
	mon.Close()
}

// driveWorkload bootstraps a generated workload into the served monitor
// and ticks it forever (or for ts cycles), sharing the monitor with the
// network via the server's lock.
func driveWorkload(srv *server.Server, n, queries, k, ts int, seed int64, interval time.Duration, quit <-chan struct{}, done chan<- struct{}) {
	defer close(done)
	net, err := network.Generate(network.GenOptions{Width: 32, Height: 32, Seed: seed})
	if err != nil {
		log.Fatalf("cpmserver: %v", err)
	}
	w, err := generator.New(net, generator.Params{
		N: n, NumQueries: queries,
		ObjectSpeed: generator.Medium, QuerySpeed: generator.Medium,
		ObjectAgility: 0.5, QueryAgility: 0.3,
		Seed: seed + 1,
	})
	if err != nil {
		log.Fatalf("cpmserver: %v", err)
	}
	srv.Locked(func(m *cpm.Monitor) {
		m.Bootstrap(w.InitialObjects())
		for i, q := range w.InitialQueries() {
			if err := m.RegisterQuery(model.QueryID(i), q, k); err != nil {
				log.Fatalf("cpmserver: register q%d: %v", i, err)
			}
		}
	})
	log.Printf("cpmserver: driving %d objects, %d queries (k=%d), one cycle per %v", n, queries, k, interval)

	ticker := time.NewTicker(interval)
	defer ticker.Stop()
	for cycle := 1; ts == 0 || cycle <= ts; cycle++ {
		select {
		case <-ticker.C:
		case <-quit:
			return
		}
		b := w.Advance()
		var changed int
		srv.Locked(func(m *cpm.Monitor) {
			m.Tick(b)
			changed = len(m.ChangedQueries())
		})
		if cycle%20 == 0 {
			log.Printf("cpmserver: cycle %d: %d updates, %d results changed", cycle, len(b.Objects), changed)
		}
	}
}
