// Command benchdiff compares two cpmbench -json reports and fails on time
// or allocation regressions — the CI bench-trajectory gate.
//
// Usage:
//
//	benchdiff -baseline BENCH_prev.json -current BENCH_now.json
//	benchdiff -baseline old.json -current new.json -threshold 0.25 -summary "$GITHUB_STEP_SUMMARY"
//
// For every method present in both reports the ns columns (total_ns,
// ns_per_cycle, register_ns) and the allocation columns (mallocs,
// alloc_bytes) are compared; any column exceeding the baseline by more
// than -threshold (default 0.25 = +25%) fails the run with exit code 1,
// unless the baseline reading is below the metric's noise floor (100µs for
// timings; 1000 mallocs / 256KiB for allocations). The comparison table is
// printed to stdout and, with -summary, appended to the given file (pass
// $GITHUB_STEP_SUMMARY in CI). Exit codes: 0 ok, 1 regression, 2 usage or
// I/O error.
package main

import (
	"flag"
	"fmt"
	"os"

	"cpm/internal/bench"
)

func main() {
	var (
		baseline  = flag.String("baseline", "", "baseline BENCH_*.json report (required)")
		current   = flag.String("current", "", "current BENCH_*.json report (required)")
		threshold = flag.Float64("threshold", 0.25, "allowed relative slowdown before failing (0.25 = +25%)")
		summary   = flag.String("summary", "", "append the markdown comparison to this file (e.g. $GITHUB_STEP_SUMMARY)")
	)
	flag.Parse()

	if *baseline == "" || *current == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -baseline and -current are required")
		flag.Usage()
		os.Exit(2)
	}
	if *threshold <= 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: -threshold must be positive")
		os.Exit(2)
	}

	base, err := bench.ReadReport(*baseline)
	if err != nil {
		fatal(err)
	}
	cur, err := bench.ReadReport(*current)
	if err != nil {
		fatal(err)
	}

	cmp := bench.Compare(base, cur, *threshold)
	md := cmp.Markdown()
	fmt.Print(md)
	if *summary != "" {
		f, err := os.OpenFile(*summary, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
		if err != nil {
			fatal(err)
		}
		if _, err := f.WriteString(md); err != nil {
			f.Close()
			fatal(err)
		}
		if err := f.Close(); err != nil {
			fatal(err)
		}
	}
	if cmp.Regressed() {
		os.Exit(1)
	}
}

func fatal(err error) {
	fmt.Fprintf(os.Stderr, "benchdiff: %v\n", err)
	os.Exit(2)
}
