// Command benchdiff compares two cpmbench -json (or cpmload -json) reports
// and fails on time, allocation or latency-percentile regressions — the CI
// bench-trajectory and load-SLO gate.
//
// Usage:
//
//	benchdiff -baseline BENCH_prev.json -current BENCH_now.json
//	benchdiff -baseline old.json -current new.json -threshold 0.25 -summary "$GITHUB_STEP_SUMMARY"
//	benchdiff -baseline LOAD_prev.json -current LOAD_now.json
//
// For every method present in both reports the ns columns (total_ns,
// ns_per_cycle, register_ns) and the allocation columns (mallocs,
// alloc_bytes) are compared; any column exceeding the baseline by more
// than -threshold (default 0.25 = +25%) fails the run with exit code 1,
// unless the baseline reading is below the metric's noise floor (100µs for
// timings; 1000 mallocs / 256KiB for allocations). Rows produced by
// cpmload additionally carry per-op latency percentiles (p50_ns, p99_ns,
// p999_ns) gated the same way — the open-loop SLO trajectory; those
// columns are skipped on rows that lack them in both reports, so
// closed-loop benchmark reports keep their historical delta set. The
// comparison table is printed to stdout and, with -summary, appended to
// the given file (pass $GITHUB_STEP_SUMMARY in CI).
//
// A missing baseline FILE is not an error: on the first CI run on a
// branch, on forks, and after artifact expiry there is nothing to compare
// against, so benchdiff prints (and appends to -summary) a "no baseline,
// gate skipped" note and exits 0 — the gate arms itself on the next run.
//
// Exit codes: 0 ok (including the skipped gate), 1 regression, 2 usage or
// I/O error.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"

	"cpm/internal/bench"
)

func main() {
	var (
		baseline  = flag.String("baseline", "", "baseline BENCH_*.json report (required; a missing file skips the gate)")
		current   = flag.String("current", "", "current BENCH_*.json report (required)")
		threshold = flag.Float64("threshold", 0.25, "allowed relative slowdown before failing (0.25 = +25%)")
		summary   = flag.String("summary", "", "append the markdown comparison to this file (e.g. $GITHUB_STEP_SUMMARY)")
	)
	flag.Parse()

	if *baseline == "" || *current == "" {
		fmt.Fprintln(os.Stderr, "benchdiff: -baseline and -current are required")
		flag.Usage()
		os.Exit(2)
	}
	if *threshold <= 0 {
		fmt.Fprintln(os.Stderr, "benchdiff: -threshold must be positive")
		os.Exit(2)
	}
	os.Exit(run(*baseline, *current, *threshold, *summary, os.Stdout, os.Stderr))
}

// run executes the gate and returns the process exit code (separated from
// main for the missing-baseline regression test).
func run(baseline, current string, threshold float64, summary string, stdout, stderr io.Writer) int {
	cur, err := bench.ReadReport(current)
	if err != nil {
		return fatal(stderr, err)
	}

	base, err := bench.ReadReport(baseline)
	if os.IsNotExist(err) {
		// First run / fork / expired artifact: nothing to gate against.
		// Report the skip loudly but exit clean, so fresh pipelines pass.
		md := fmt.Sprintf("### Bench trajectory\n\nNo baseline at `%s` — gate skipped (first run or expired artifact); %d method rows recorded for the next run.\n",
			baseline, len(cur.Methods))
		fmt.Fprint(stdout, md)
		if err := appendSummary(summary, md); err != nil {
			return fatal(stderr, err)
		}
		return 0
	}
	if err != nil {
		return fatal(stderr, err)
	}

	cmp := bench.Compare(base, cur, threshold)
	md := cmp.Markdown()
	fmt.Fprint(stdout, md)
	if err := appendSummary(summary, md); err != nil {
		return fatal(stderr, err)
	}
	if cmp.Regressed() {
		return 1
	}
	return 0
}

// appendSummary appends md to the summary file, if one was requested.
func appendSummary(path, md string) error {
	if path == "" {
		return nil
	}
	f, err := os.OpenFile(path, os.O_APPEND|os.O_CREATE|os.O_WRONLY, 0o644)
	if err != nil {
		return err
	}
	if _, err := f.WriteString(md); err != nil {
		f.Close()
		return err
	}
	return f.Close()
}

func fatal(stderr io.Writer, err error) int {
	fmt.Fprintf(stderr, "benchdiff: %v\n", err)
	return 2
}
