package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cpm/internal/bench"
)

// writeReport materializes a minimal BENCH_*.json fixture.
func writeReport(t *testing.T, path string, totalNs int64) {
	t.Helper()
	rep := bench.Report{
		Scale: 0.01, Timestamps: 5,
		Methods: []bench.MethodResult{{
			Method:     "CPM",
			TotalNs:    totalNs,
			NsPerCycle: totalNs / 5,
			RegisterNs: totalNs / 10,
		}},
	}
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, data, 0o644); err != nil {
		t.Fatal(err)
	}
}

// TestMissingBaselineSkipsGate is the first-run / fork path: an absent
// baseline artifact must not fail the gate — benchdiff exits 0 with a
// "gate skipped" note on stdout and in the -summary file.
func TestMissingBaselineSkipsGate(t *testing.T) {
	dir := t.TempDir()
	current := filepath.Join(dir, "BENCH_now.json")
	summary := filepath.Join(dir, "summary.md")
	writeReport(t, current, 50_000_000)

	var out, errOut strings.Builder
	code := run(filepath.Join(dir, "does-not-exist", "BENCH_prev.json"),
		current, 0.25, summary, &out, &errOut)
	if code != 0 {
		t.Fatalf("exit code %d with missing baseline, want 0 (stderr: %s)", code, errOut.String())
	}
	for _, text := range []string{out.String(), readFile(t, summary)} {
		if !strings.Contains(text, "gate skipped") {
			t.Fatalf("skip note missing from output:\n%s", text)
		}
	}
}

// TestMissingCurrentIsAnError distinguishes the skip from real I/O
// failures: the current report is produced by the same job, so its absence
// is a broken pipeline, not a fresh one.
func TestMissingCurrentIsAnError(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "BENCH_prev.json")
	writeReport(t, baseline, 50_000_000)

	var out, errOut strings.Builder
	code := run(baseline, filepath.Join(dir, "missing.json"), 0.25, "", &out, &errOut)
	if code != 2 {
		t.Fatalf("exit code %d with missing current report, want 2", code)
	}
}

// TestGateStillFailsOnRegression pins that the graceful skip did not
// soften the armed gate.
func TestGateStillFailsOnRegression(t *testing.T) {
	dir := t.TempDir()
	baseline := filepath.Join(dir, "BENCH_prev.json")
	current := filepath.Join(dir, "BENCH_now.json")
	writeReport(t, baseline, 50_000_000)
	writeReport(t, current, 90_000_000) // +80%

	var out, errOut strings.Builder
	if code := run(baseline, current, 0.25, "", &out, &errOut); code != 1 {
		t.Fatalf("exit code %d on a +80%% regression, want 1\n%s", code, out.String())
	}
	writeReport(t, current, 52_000_000) // +4%: within threshold
	out.Reset()
	if code := run(baseline, current, 0.25, "", &out, &errOut); code != 0 {
		t.Fatalf("exit code %d on a +4%% drift, want 0\n%s", code, out.String())
	}
}

func readFile(t *testing.T, path string) string {
	t.Helper()
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}
