// Command cpmcoord is the CPM cluster coordinator: it shards continuous
// queries across a fleet of cpmserver workers and presents the whole
// cluster as one ordinary CPM server — the client package, cpmload and
// cpmsim -connect work against it unmodified.
//
//	cpmserver -addr :7901 &
//	cpmserver -addr :7902 &
//	cpmcoord  -addr :7845 -workers localhost:7901,localhost:7902
//
// Queries are hash-partitioned across the workers (the same partitioning
// internal/shard uses in-process); each tick's object updates fan out to
// every worker concurrently and the per-worker result diffs merge back
// into one id-ordered stream. A worker that fails or stalls past
// -op-timeout is dropped from the fan-out, its subscribers see explicit
// Gap frames, and it is rebuilt in the background from the coordinator's
// state mirror; see docs/CLUSTER.md for the full semantics.
//
// With -metrics the coordinator serves both its own counters
// (cpm_coord_*, per-worker RTT/reconnects) and its upstream serving-layer
// counters (cpm_server_*) on one plain-text page:
//
//	cpmcoord -addr :7845 -workers ... -metrics :9101
//	curl -s localhost:9101/metrics
//
// The same address carries the debug surfaces: /debug/traces (enabled by
// -trace-sample and/or -slow-op) shows end-to-end traces — one coordinator
// op with per-worker fan-out child spans and the workers' reported tick
// phases; see docs/TRACING.md — and -pprof adds /debug/pprof/.
//
// Stop with SIGINT/SIGTERM; connections drain and the process exits.
package main

import (
	"flag"
	"fmt"
	"log/slog"
	"net/http"
	"os"
	"os/signal"
	"strings"
	"syscall"
	"time"

	"cpm/internal/cluster"
	"cpm/internal/cmdutil"
	"cpm/internal/server"
	"cpm/internal/tracing"
)

func main() {
	var (
		addr        = flag.String("addr", ":7845", "listen address")
		workers     = flag.String("workers", "", "comma-separated worker addresses (required)")
		metricsAddr = flag.String("metrics", "", "serve plain-text metrics over HTTP on this address (empty = off)")
		verbose     = flag.Bool("v", false, "shorthand for -log-level debug")
		logLevel    = flag.String("log-level", "info", "log verbosity: debug, info, warn or error")

		opTimeout        = flag.Duration("op-timeout", 5*time.Second, "per-operation worker answer deadline (miss = desync + background re-sync; <0 disables)")
		writeTimeout     = flag.Duration("write-timeout", 10*time.Second, "per-flush socket write deadline on client connections (<0 disables)")
		handshakeTimeout = flag.Duration("handshake-timeout", 10*time.Second, "deadline for a client's Hello frame (<0 disables)")

		traceSample = flag.Float64("trace-sample", 0, "trace head-sampling probability in [0,1] (0 = off)")
		slowOp      = flag.Duration("slow-op", 0, "force-record any op at least this slow into the flight recorder (0 = off)")
		traceCap    = flag.Int("trace-cap", 256, "flight-recorder capacity in traces")
		pprofOn     = flag.Bool("pprof", false, "expose /debug/pprof/ on the -metrics address")
	)
	flag.Parse()
	if *verbose && *logLevel == "info" {
		*logLevel = "debug"
	}
	logger := cmdutil.Logger("cpmcoord", *logLevel)

	addrs := splitWorkers(*workers)
	if len(addrs) == 0 {
		fmt.Fprintln(os.Stderr, "cpmcoord: -workers is required (comma-separated addresses)")
		os.Exit(2)
	}

	copts := cluster.Options{Workers: addrs, OpTimeout: *opTimeout, Logf: cmdutil.Logf(logger)}
	coord, err := cluster.New(copts)
	if err != nil {
		cmdutil.Fatal(logger, "cluster startup failed", "err", err)
	}

	tracer := cmdutil.TraceConfig{Sample: *traceSample, SlowOp: *slowOp, Cap: *traceCap}.Build(logger)
	sopts := server.Options{
		WriteTimeout:     *writeTimeout,
		HandshakeTimeout: *handshakeTimeout,
		Logf:             cmdutil.Logf(logger),
		Tracer:           tracer,
	}
	srv := server.New(coord, sopts)

	// The startup line carries every resolved option, so operator logs
	// identify the configuration a running instance was launched with.
	logger.Info("starting",
		"addr", *addr, "workers", strings.Join(addrs, ","), "metrics", orOff(*metricsAddr),
		"op_timeout", *opTimeout, "write_timeout", *writeTimeout, "handshake_timeout", *handshakeTimeout,
		"trace_sample", *traceSample, "slow_op", *slowOp, "pprof", *pprofOn)

	if *metricsAddr != "" {
		go serveMetrics(logger, srv, coord, tracer, *metricsAddr, *pprofOn)
	}

	stop := make(chan os.Signal, 1)
	signal.Notify(stop, os.Interrupt, syscall.SIGTERM)
	go func() {
		<-stop
		logger.Info("shutting down")
		srv.Close()
	}()

	if err := srv.ListenAndServe(*addr); err != nil && err != server.ErrClosed {
		cmdutil.Fatal(logger, "serve failed", "err", err)
	}
	coord.Close()
}

// splitWorkers parses the -workers flag, tolerating blanks.
func splitWorkers(s string) []string {
	var out []string
	for _, a := range strings.Split(s, ",") {
		if a = strings.TrimSpace(a); a != "" {
			out = append(out, a)
		}
	}
	return out
}

// orOff renders an optional address for the startup line.
func orOff(addr string) string {
	if addr == "" {
		return "off"
	}
	return addr
}

// serveMetrics exposes both registries — the serving layer's and the
// coordinator's own — as one plain-text page on /metrics (and /), plus
// the debug surfaces: /debug/traces always, /debug/pprof/ behind -pprof.
func serveMetrics(logger *slog.Logger, srv *server.Server, coord *cluster.Coordinator, tracer *tracing.Tracer, addr string, pprofOn bool) {
	mux := http.NewServeMux()
	handler := func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("Content-Type", "text/plain; charset=utf-8")
		srv.Metrics().WriteText(w)
		coord.Metrics().WriteText(w)
	}
	mux.HandleFunc("/metrics", handler)
	mux.HandleFunc("/", handler)
	cmdutil.MountDebug(mux, tracer, pprofOn)
	logger.Info("metrics endpoint up", "url", "http://"+addr+"/metrics")
	if err := http.ListenAndServe(addr, mux); err != nil {
		logger.Error("metrics endpoint failed", "err", err)
	}
}
