// Command cpmload drives open-loop load against a running cpmserver and
// reports per-operation end-to-end latency percentiles.
//
// It schedules Poisson arrivals at -rate across -conns connections — a mix
// of batched object-move ticks (remote ingest), empty ticks, ephemeral
// query registrations and delivery-probe toggles — and measures each
// operation from its scheduled arrival time, so server stalls surface as
// queueing latency instead of silently throttling the driver (no
// coordinated omission). The probe ops additionally measure the push
// pipeline: the time from a probe object's toggle to the resulting diff
// arriving on a subscription.
//
//	cpmserver -addr :7845 &
//	cpmload -addr localhost:7845 -rate 500 -duration 10s -json LOAD.json
//
// The summary prints one row per op type (ingest, tick, register,
// deliver) with completed-op counts and p50/p99/p999. With -json the run
// is written in the BENCH_*.json report shape, so two runs gate against
// each other exactly like benchmark trajectories:
//
//	benchdiff -base LOAD_old.json -current LOAD.json
//
// With -trace every driven op is stamped with a trace context, and the
// report ends with the -trace-top slowest ops: the client-observed
// latency plus the server-side span breakdown (tick phases; behind a
// coordinator, per-worker fan-out and merge) pulled from the server's
// flight recorder — see docs/TRACING.md. The server must run with
// tracing enabled (-trace-sample/-slow-op) for the breakdowns to appear.
//
// See docs/OPERATIONS.md for how the load harness fits the serving
// deployment story.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"sort"
	"time"

	"cpm/internal/cmdutil"
	"cpm/internal/load"
	"cpm/internal/tracing"
)

func main() {
	var (
		addr     = flag.String("addr", "", "cpmserver address to drive (required)")
		conns    = flag.Int("conns", 4, "concurrent client connections")
		rate     = flag.Float64("rate", 200, "aggregate scheduled arrival rate (ops/sec)")
		duration = flag.Duration("duration", 5*time.Second, "scheduling window")
		maxOps   = flag.Int64("max-ops", 0, "additional cap on scheduled operations (0 = none)")
		objects  = flag.Int("n", 2000, "bootstrapped object population")
		queries  = flag.Int("queries", 50, "standing k-NN queries registered before the run")
		k        = flag.Int("k", 8, "neighbors per standing query")
		batch    = flag.Int("batch", 16, "object moves per ingest operation")
		seed     = flag.Int64("seed", 1, "workload and arrival-process seed")
		jsonPath = flag.String("json", "", "write the run as a bench report to this file")
		trace    = flag.Bool("trace", false, "stamp ops with trace contexts and report the slowest with server-side breakdowns")
		traceTop = flag.Int("trace-top", 5, "slowest traced ops to report (-trace)")
		verbose  = flag.Bool("v", false, "shorthand for -log-level debug")
		logLevel = flag.String("log-level", "info", "log verbosity: debug, info, warn or error")
	)
	flag.Parse()
	if *verbose && *logLevel == "info" {
		*logLevel = "debug"
	}
	logger := cmdutil.Logger("cpmload", *logLevel)
	if *addr == "" {
		fmt.Fprintln(os.Stderr, "cpmload: -addr is required")
		flag.Usage()
		os.Exit(2)
	}

	opts := load.Options{
		Addr:     *addr,
		Conns:    *conns,
		Rate:     *rate,
		Duration: *duration,
		MaxOps:   *maxOps,
		Objects:  *objects,
		Queries:  *queries,
		K:        *k,
		Batch:    *batch,
		Seed:     *seed,
		Trace:    *trace,
		Logf:     cmdutil.Logf(logger),
	}
	res, err := load.Run(opts)
	if err != nil {
		cmdutil.Fatal(logger, "run failed", "err", err)
	}

	rep := res.Report()
	fmt.Printf("cpmload: %s for %v at %g ops/s over %d conns (errors=%d shed=%d gaps=%d)\n",
		*addr, res.Elapsed.Round(time.Millisecond), *rate, *conns, res.Errors, res.Shed, res.Gaps)
	fmt.Printf("%-14s %8s %12s %12s %12s %12s\n", "op", "ops", "mean", "p50", "p99", "p999")
	for _, m := range rep.Methods {
		fmt.Printf("%-14s %8d %12v %12v %12v %12v\n", m.Method, m.Ops,
			time.Duration(m.NsPerCycle), time.Duration(m.P50Ns),
			time.Duration(m.P99Ns), time.Duration(m.P999Ns))
	}
	if *trace {
		printTraceReport(res, *traceTop)
	}

	if *jsonPath != "" {
		data, err := json.MarshalIndent(rep, "", "  ")
		if err != nil {
			cmdutil.Fatal(logger, "report marshal failed", "err", err)
		}
		if err := os.WriteFile(*jsonPath, append(data, '\n'), 0o644); err != nil {
			cmdutil.Fatal(logger, "report write failed", "err", err)
		}
	}

	if res.Errors > 0 {
		os.Exit(1)
	}
}

// printTraceReport prints the k slowest traced ops with their server-side
// span breakdowns: each client-observed latency (scheduled arrival to
// completion, queueing included) above the spans the server recorded for
// that trace id — tick phases on a single server, per-worker fan-out and
// merge behind a coordinator. The difference between the client latency
// and the server's root span is queueing plus the network.
func printTraceReport(res *load.Result, k int) {
	byID := make(map[uint64]tracing.RecordedTrace, len(res.ServerTraces))
	for _, tr := range res.ServerTraces {
		byID[tr.TraceID] = tr
	}
	fmt.Printf("\nslowest traced ops (%d of %d traced, %d server traces):\n",
		min(k, len(res.Traced)), len(res.Traced), len(res.ServerTraces))
	for i, op := range res.Traced {
		if i >= k {
			break
		}
		fmt.Printf("%2d. %-9s trace=%016x latency=%v\n", i+1, op.Kind, op.TraceID, time.Duration(op.DurNs))
		tr, ok := byID[op.TraceID]
		if !ok {
			fmt.Printf("    (no server trace recorded — evicted from the ring, or tracing disabled server-side)\n")
			continue
		}
		spans := append([]tracing.RecordedSpan(nil), tr.Spans...)
		sort.Slice(spans, func(a, b int) bool { return spans[a].OffsetNs < spans[b].OffsetNs })
		for _, s := range spans {
			fmt.Printf("    %-24s %12v  (+%v)\n", s.Name, time.Duration(s.DurNs), time.Duration(s.OffsetNs))
		}
	}
}
