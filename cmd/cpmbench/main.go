// Command cpmbench regenerates the paper's evaluation (Section 6 of
// Mouratidis et al., SIGMOD 2005): one table per figure, comparing CPM
// against YPK-CNN and SEA-CNN over identical network workloads, plus this
// repository's model-validation, ANN and ablation experiments.
//
// Usage:
//
//	cpmbench -list
//	cpmbench -exp fig6.1,fig6.3b -scale 0.05 -ts 20
//	cpmbench -exp all -scale 0.02 -csvdir results/
//	cpmbench -exp none -json BENCH_main.json -shards 8
//
// -shards sets the worker count of the CPM-shard method column (default:
// all usable cores). -json additionally runs the default-setting method
// comparison and writes machine-readable results (time/ns, cell accesses,
// allocs per method) for benchmark trajectory tracking; combine with
// -exp none to write only the JSON.
//
// -scale multiplies the paper's population sizes (1.0 = N=100K objects and
// n=5K queries; the default 0.05 runs every experiment on a laptop in
// minutes). Shapes — which method wins, how curves trend — are preserved
// across scales; absolute milliseconds are not comparable to the paper's
// 2005 hardware.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"cpm/internal/bench"
)

func main() {
	var (
		list     = flag.Bool("list", false, "list available experiments and exit")
		exp      = flag.String("exp", "all", "comma-separated experiment ids, 'all', or 'none'")
		scale    = flag.Float64("scale", 0.05, "population scale (1.0 = paper's N=100K, n=5K)")
		ts       = flag.Int("ts", 20, "timestamps per simulation (paper: 100)")
		seed     = flag.Int64("seed", 1, "workload seed")
		grid     = flag.Int("grid", 128, "default grid size (cells per dimension)")
		csvdir   = flag.String("csvdir", "", "directory for per-experiment CSV output (optional)")
		shards   = flag.Int("shards", 0, "CPM-shard worker count (0 = all usable cores)")
		jsonPath = flag.String("json", "", "write the method comparison as machine-readable JSON to this file")
	)
	flag.Parse()

	if *shards < 0 {
		fmt.Fprintf(os.Stderr, "cpmbench: -shards must be non-negative (0 = all usable cores)\n")
		os.Exit(2)
	}

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-20s %s\n", e.ID, e.Title)
		}
		return
	}

	var selected []bench.Experiment
	switch *exp {
	case "all":
		selected = bench.All()
	case "none":
		if *jsonPath == "" {
			fmt.Fprintf(os.Stderr, "cpmbench: -exp none without -json runs nothing\n")
			os.Exit(2)
		}
	default:
		for _, id := range strings.Split(*exp, ",") {
			e, ok := bench.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "cpmbench: unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	opts := bench.Options{Scale: *scale, Timestamps: *ts, Seed: *seed, GridSize: *grid, Shards: *shards}
	fmt.Printf("cpmbench: scale=%.3g ts=%d grid=%d seed=%d shards=%d (%d experiments)\n\n",
		*scale, *ts, *grid, *seed, bench.ResolveShards(*shards), len(selected))

	if *jsonPath != "" {
		fmt.Fprintf(os.Stderr, "running method comparison for %s ...\n", *jsonPath)
		if err := bench.WriteReport(*jsonPath, opts, bench.AllMethods); err != nil {
			fmt.Fprintf(os.Stderr, "cpmbench: json report: %v\n", err)
			os.Exit(1)
		}
	}

	for _, e := range selected {
		fmt.Fprintf(os.Stderr, "running %s ...\n", e.ID)
		table, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpmbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		if err := table.Render(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "cpmbench: render: %v\n", err)
			os.Exit(1)
		}
		if *csvdir != "" {
			if err := os.MkdirAll(*csvdir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "cpmbench: %v\n", err)
				os.Exit(1)
			}
			path := filepath.Join(*csvdir, e.ID+".csv")
			if err := os.WriteFile(path, []byte(table.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "cpmbench: %v\n", err)
				os.Exit(1)
			}
		}
	}
}
