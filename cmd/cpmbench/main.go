// Command cpmbench regenerates the paper's evaluation (Section 6 of
// Mouratidis et al., SIGMOD 2005): one table per figure, comparing CPM
// against YPK-CNN and SEA-CNN over identical network workloads, plus this
// repository's model-validation, ANN and ablation experiments.
//
// Usage:
//
//	cpmbench -list
//	cpmbench -exp fig6.1,fig6.3b -scale 0.05 -ts 20
//	cpmbench -exp all -scale 0.02 -csvdir results/
//
// -scale multiplies the paper's population sizes (1.0 = N=100K objects and
// n=5K queries; the default 0.05 runs every experiment on a laptop in
// minutes). Shapes — which method wins, how curves trend — are preserved
// across scales; absolute milliseconds are not comparable to the paper's
// 2005 hardware.
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"strings"

	"cpm/internal/bench"
)

func main() {
	var (
		list   = flag.Bool("list", false, "list available experiments and exit")
		exp    = flag.String("exp", "all", "comma-separated experiment ids, or 'all'")
		scale  = flag.Float64("scale", 0.05, "population scale (1.0 = paper's N=100K, n=5K)")
		ts     = flag.Int("ts", 20, "timestamps per simulation (paper: 100)")
		seed   = flag.Int64("seed", 1, "workload seed")
		grid   = flag.Int("grid", 128, "default grid size (cells per dimension)")
		csvdir = flag.String("csvdir", "", "directory for per-experiment CSV output (optional)")
	)
	flag.Parse()

	if *list {
		for _, e := range bench.All() {
			fmt.Printf("%-20s %s\n", e.ID, e.Title)
		}
		return
	}

	var selected []bench.Experiment
	if *exp == "all" {
		selected = bench.All()
	} else {
		for _, id := range strings.Split(*exp, ",") {
			e, ok := bench.ByID(strings.TrimSpace(id))
			if !ok {
				fmt.Fprintf(os.Stderr, "cpmbench: unknown experiment %q (try -list)\n", id)
				os.Exit(2)
			}
			selected = append(selected, e)
		}
	}

	opts := bench.Options{Scale: *scale, Timestamps: *ts, Seed: *seed, GridSize: *grid}
	fmt.Printf("cpmbench: scale=%.3g ts=%d grid=%d seed=%d (%d experiments)\n\n",
		*scale, *ts, *grid, *seed, len(selected))

	for _, e := range selected {
		fmt.Fprintf(os.Stderr, "running %s ...\n", e.ID)
		table, err := e.Run(opts)
		if err != nil {
			fmt.Fprintf(os.Stderr, "cpmbench: %s: %v\n", e.ID, err)
			os.Exit(1)
		}
		if err := table.Render(os.Stdout); err != nil {
			fmt.Fprintf(os.Stderr, "cpmbench: render: %v\n", err)
			os.Exit(1)
		}
		if *csvdir != "" {
			if err := os.MkdirAll(*csvdir, 0o755); err != nil {
				fmt.Fprintf(os.Stderr, "cpmbench: %v\n", err)
				os.Exit(1)
			}
			path := filepath.Join(*csvdir, e.ID+".csv")
			if err := os.WriteFile(path, []byte(table.CSV()), 0o644); err != nil {
				fmt.Fprintf(os.Stderr, "cpmbench: %v\n", err)
				os.Exit(1)
			}
		}
	}
}
