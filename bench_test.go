// Benchmarks regenerating the paper's evaluation, one per table/figure
// (DESIGN.md §6 maps ids to the paper). Each benchmark iteration runs a
// complete scaled-down simulation — workload generation excluded from the
// timed section via the harness, which times only ProcessBatch.
//
// go test -bench=. -benchmem runs everything at laptop scale in a few
// minutes; cmd/cpmbench runs the same experiments at larger scales and
// prints the paper-style tables. Reported custom metrics:
//
//	ms/cycle    mean processing time per timestamp
//	cells/q/ts  cell accesses per query per timestamp (Figure 6.3b's metric)
package cpm_test

import (
	"testing"

	"cpm/internal/bench"
	"cpm/internal/generator"
	"cpm/internal/geom"
	"cpm/internal/network"
)

// benchScale keeps `go test -bench=.` quick: 2K objects, 100 queries.
const benchScale = 0.02

func benchConfig(mutate func(*bench.Config)) bench.Config {
	gen := generator.Defaults(benchScale)
	gen.Seed = 11
	cfg := bench.Config{
		GridSize:   64,
		K:          16,
		Timestamps: 10,
		Net:        network.GenOptions{Width: 16, Height: 16, Seed: 7},
		Gen:        gen,
	}
	if mutate != nil {
		mutate(&cfg)
	}
	return cfg
}

func runSim(b *testing.B, method bench.Method, cfg bench.Config) {
	b.Helper()
	var last bench.Measurement
	for i := 0; i < b.N; i++ {
		meas, err := bench.RunMethod(method, cfg)
		if err != nil {
			b.Fatal(err)
		}
		last = meas
	}
	b.ReportMetric(float64(last.PerCycle().Microseconds())/1000, "ms/cycle")
	b.ReportMetric(last.CellsPerQueryPerCycle(), "cells/q/ts")
}

func perMethod(b *testing.B, methods []bench.Method, cfg bench.Config) {
	b.Helper()
	for _, m := range methods {
		b.Run(m.String(), func(b *testing.B) { runSim(b, m, cfg) })
	}
}

// BenchmarkFig61Grid: CPU time versus grid granularity (paper Figure 6.1).
func BenchmarkFig61Grid(b *testing.B) {
	for _, grid := range []int{32, 128, 512} {
		b.Run(bench.CPM.String()+"/grid="+itoa(grid), func(b *testing.B) {
			runSim(b, bench.CPM, benchConfig(func(c *bench.Config) { c.GridSize = grid }))
		})
		b.Run(bench.YPK.String()+"/grid="+itoa(grid), func(b *testing.B) {
			runSim(b, bench.YPK, benchConfig(func(c *bench.Config) { c.GridSize = grid }))
		})
		b.Run(bench.SEA.String()+"/grid="+itoa(grid), func(b *testing.B) {
			runSim(b, bench.SEA, benchConfig(func(c *bench.Config) { c.GridSize = grid }))
		})
	}
}

// BenchmarkFig62aPopulation: CPU time versus N (paper Figure 6.2a).
func BenchmarkFig62aPopulation(b *testing.B) {
	for _, n := range []int{1000, 4000} {
		cfg := benchConfig(func(c *bench.Config) { c.Gen.N = n })
		b.Run("N="+itoa(n), func(b *testing.B) { perMethod(b, bench.AllMethods, cfg) })
	}
}

// BenchmarkFig62bQueries: CPU time versus n (paper Figure 6.2b).
func BenchmarkFig62bQueries(b *testing.B) {
	for _, n := range []int{50, 200} {
		cfg := benchConfig(func(c *bench.Config) { c.Gen.NumQueries = n })
		b.Run("n="+itoa(n), func(b *testing.B) { perMethod(b, bench.AllMethods, cfg) })
	}
}

// BenchmarkFig63K: CPU time and cell accesses versus k (paper Figures 6.3a
// and 6.3b — both metrics are reported on every run).
func BenchmarkFig63K(b *testing.B) {
	for _, k := range []int{1, 16, 64} {
		cfg := benchConfig(func(c *bench.Config) { c.K = k })
		b.Run("k="+itoa(k), func(b *testing.B) { perMethod(b, bench.AllMethods, cfg) })
	}
}

// BenchmarkFig64aObjectSpeed: CPU time versus object speed (Figure 6.4a).
func BenchmarkFig64aObjectSpeed(b *testing.B) {
	for _, s := range []generator.Speed{generator.Slow, generator.Fast} {
		cfg := benchConfig(func(c *bench.Config) { c.Gen.ObjectSpeed = s })
		b.Run(s.String(), func(b *testing.B) { perMethod(b, bench.AllMethods, cfg) })
	}
}

// BenchmarkFig64bQuerySpeed: CPU time versus query speed (Figure 6.4b).
func BenchmarkFig64bQuerySpeed(b *testing.B) {
	for _, s := range []generator.Speed{generator.Slow, generator.Fast} {
		cfg := benchConfig(func(c *bench.Config) { c.Gen.QuerySpeed = s })
		b.Run(s.String(), func(b *testing.B) { perMethod(b, bench.AllMethods, cfg) })
	}
}

// BenchmarkFig65aObjectAgility: CPU time versus f_obj (Figure 6.5a).
func BenchmarkFig65aObjectAgility(b *testing.B) {
	for _, f := range []float64{0.1, 0.5} {
		cfg := benchConfig(func(c *bench.Config) { c.Gen.ObjectAgility = f })
		b.Run("fobj="+pct(f), func(b *testing.B) { perMethod(b, bench.AllMethods, cfg) })
	}
}

// BenchmarkFig65bQueryAgility: CPU time versus f_qry (Figure 6.5b).
func BenchmarkFig65bQueryAgility(b *testing.B) {
	for _, f := range []float64{0.1, 0.5} {
		cfg := benchConfig(func(c *bench.Config) { c.Gen.QueryAgility = f })
		b.Run("fqry="+pct(f), func(b *testing.B) { perMethod(b, bench.AllMethods, cfg) })
	}
}

// BenchmarkFig66aMovingQueries: constantly moving queries isolate the NN
// computation modules; CPM versus YPK-CNN as in the paper (Figure 6.6a).
func BenchmarkFig66aMovingQueries(b *testing.B) {
	cfg := benchConfig(func(c *bench.Config) { c.Gen.QueryAgility = 1 })
	perMethod(b, []bench.Method{bench.CPM, bench.YPK}, cfg)
}

// BenchmarkFig66bStaticQueries: pure result-maintenance cost (Figure 6.6b).
func BenchmarkFig66bStaticQueries(b *testing.B) {
	cfg := benchConfig(func(c *bench.Config) { c.Gen.QueryAgility = 0 })
	perMethod(b, bench.AllMethods, cfg)
}

// BenchmarkAblationRecompute: X1 — visit-list replay versus the
// memory-pressure from-scratch fallback.
func BenchmarkAblationRecompute(b *testing.B) {
	cfg := benchConfig(nil)
	perMethod(b, []bench.Method{bench.CPM, bench.CPMDropBookkeeping}, cfg)
}

// BenchmarkAblationBatch: X2 — batched cycles versus per-update handling.
func BenchmarkAblationBatch(b *testing.B) {
	cfg := benchConfig(nil)
	perMethod(b, []bench.Method{bench.CPM, bench.CPMPerUpdate}, cfg)
}

func itoa(v int) string {
	if v == 0 {
		return "0"
	}
	var buf [8]byte
	i := len(buf)
	for v > 0 {
		i--
		buf[i] = byte('0' + v%10)
		v /= 10
	}
	return string(buf[i:])
}

func pct(f float64) string { return itoa(int(f*100)) + "%" }

// BenchmarkANN: X3 — aggregate NN monitoring (Section 5 extension), per
// aggregate function.
func BenchmarkANN(b *testing.B) {
	cfg := benchConfig(func(c *bench.Config) { c.Gen.NumQueries = 0 })
	for _, agg := range []geom.Agg{geom.AggSum, geom.AggMin, geom.AggMax} {
		b.Run(agg.String(), func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				if _, err := bench.RunANN(cfg, 100, 4, agg, 13); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}
