package cpm

import (
	"math"
	"testing"
)

func seedObjects() map[ObjectID]Point {
	return map[ObjectID]Point{
		1: {X: 0.10, Y: 0.10},
		2: {X: 0.52, Y: 0.50},
		3: {X: 0.60, Y: 0.58},
		4: {X: 0.90, Y: 0.90},
		5: {X: 0.48, Y: 0.52},
	}
}

func TestMonitorQuickstartFlow(t *testing.T) {
	m := NewMonitor(Options{GridSize: 32})
	m.Bootstrap(seedObjects())
	if m.ObjectCount() != 5 {
		t.Fatalf("ObjectCount = %d", m.ObjectCount())
	}
	if err := m.RegisterQuery(1, Point{X: 0.5, Y: 0.5}, 2); err != nil {
		t.Fatal(err)
	}
	res := m.Result(1)
	if len(res) != 2 || res[0].ID != 2 || res[1].ID != 5 {
		t.Fatalf("initial result = %v", res)
	}
	// Object 4 drives by and becomes the nearest neighbor.
	m.MoveObject(4, Point{X: 0.50, Y: 0.51})
	res = m.Result(1)
	if res[0].ID != 4 {
		t.Fatalf("result after move = %v", res)
	}
	// It leaves again; the old pair returns.
	m.MoveObject(4, Point{X: 0.95, Y: 0.95})
	res = m.Result(1)
	if res[0].ID != 2 || res[1].ID != 5 {
		t.Fatalf("result after departure = %v", res)
	}
	m.DeleteObject(2)
	if res = m.Result(1); res[0].ID != 5 || res[1].ID != 3 {
		t.Fatalf("result after delete = %v", res)
	}
	m.InsertObject(10, Point{X: 0.5, Y: 0.5})
	if res = m.Result(1); res[0].ID != 10 {
		t.Fatalf("result after insert = %v", res)
	}
	if m.InvalidUpdates() != 0 {
		t.Fatalf("InvalidUpdates = %d", m.InvalidUpdates())
	}
}

func TestMonitorDefaultOptions(t *testing.T) {
	m := NewMonitor(Options{})
	m.Bootstrap(seedObjects())
	if err := m.RegisterQuery(1, Point{X: 0.5, Y: 0.5}, 1); err != nil {
		t.Fatal(err)
	}
	if got := m.Result(1); len(got) != 1 || got[0].ID != 2 {
		t.Fatalf("result = %v", got)
	}
	if m.MemoryFootprint() <= 0 {
		t.Error("MemoryFootprint not positive")
	}
	if m.Stats().FullSearches != 1 {
		t.Errorf("FullSearches = %d", m.Stats().FullSearches)
	}
}

func TestMonitorAggQuery(t *testing.T) {
	m := NewMonitor(Options{GridSize: 16})
	m.Bootstrap(seedObjects())
	pts := []Point{{X: 0.1, Y: 0.1}, {X: 0.9, Y: 0.9}}
	if err := m.RegisterAggQuery(7, pts, 1, AggSum); err != nil {
		t.Fatal(err)
	}
	// The sum-optimal object lies on the segment between the two users:
	// object 1 sits exactly on the first of them.
	res := m.Result(7)
	if len(res) != 1 || res[0].ID != 1 {
		t.Fatalf("agg result = %v", res)
	}
	if math.Abs(res[0].Dist-math.Hypot(0.8, 0.8)) > 1e-12 {
		t.Fatalf("agg dist = %v, want the users' separation", res[0].Dist)
	}
	// Moving one query point relocates the query; object 4 — exactly on
	// the second user — now edges out the middle objects.
	if err := m.MoveQuery(7, Point{X: 0.1, Y: 0.2}, Point{X: 0.9, Y: 0.9}); err != nil {
		t.Fatal(err)
	}
	if got := m.Result(7); len(got) != 1 || got[0].ID != 4 {
		t.Fatalf("agg result after move = %v", got)
	}
}

func TestMonitorConstrainedQuery(t *testing.T) {
	m := NewMonitor(Options{GridSize: 16})
	m.Bootstrap(seedObjects())
	ne := Rect{Lo: Point{X: 0.55, Y: 0.55}, Hi: Point{X: 1, Y: 1}}
	if err := m.RegisterConstrainedQuery(3, Point{X: 0.5, Y: 0.5}, 1, ne); err != nil {
		t.Fatal(err)
	}
	if got := m.Result(3); len(got) != 1 || got[0].ID != 3 {
		t.Fatalf("constrained result = %v", got)
	}
}

func TestMonitorTickBatch(t *testing.T) {
	m := NewMonitor(Options{GridSize: 16})
	m.Bootstrap(seedObjects())
	if err := m.RegisterQuery(1, Point{X: 0.5, Y: 0.5}, 1); err != nil {
		t.Fatal(err)
	}
	m.Tick(Batch{
		Objects: []Update{
			MoveUpdate(2, Point{X: 0.52, Y: 0.50}, Point{X: 0.05, Y: 0.05}),
			MoveUpdate(4, Point{X: 0.90, Y: 0.90}, Point{X: 0.50, Y: 0.50}),
		},
		Queries: []QueryUpdate{},
	})
	if got := m.Result(1); got[0].ID != 4 {
		t.Fatalf("result after batch = %v", got)
	}
	// Query terminates via the stream.
	m.Tick(Batch{Queries: []QueryUpdate{{ID: 1, Kind: QueryTerminate}}})
	if m.Result(1) != nil {
		t.Error("terminated query still present")
	}
}

func TestMonitorBestDist(t *testing.T) {
	m := NewMonitor(Options{GridSize: 16})
	m.Bootstrap(seedObjects())
	if err := m.RegisterQuery(1, Point{X: 0.52, Y: 0.5}, 1); err != nil {
		t.Fatal(err)
	}
	if d := m.BestDist(1); math.Abs(d) > 1e-12 {
		t.Errorf("BestDist = %v, want 0 (object 2 sits on the query)", d)
	}
	if err := m.RegisterQuery(2, Point{X: 0.5, Y: 0.5}, 100); err != nil {
		t.Fatal(err)
	}
	if !math.IsInf(m.BestDist(2), 1) {
		t.Errorf("BestDist with k>population = %v, want +Inf", m.BestDist(2))
	}
}

func TestMonitorObjectPosition(t *testing.T) {
	m := NewMonitor(Options{GridSize: 16})
	m.Bootstrap(seedObjects())
	if p, ok := m.ObjectPosition(1); !ok || p != (Point{X: 0.1, Y: 0.1}) {
		t.Errorf("ObjectPosition = %v, %v", p, ok)
	}
	if _, ok := m.ObjectPosition(99); ok {
		t.Error("unknown object reported present")
	}
}

func TestBaselineConstructors(t *testing.T) {
	objs := seedObjects()
	for _, method := range []Method{
		NewYPKMonitor(Options{GridSize: 16}),
		NewSEAMonitor(Options{GridSize: 16}),
	} {
		method.Bootstrap(objs)
		if err := method.RegisterQuery(1, Point{X: 0.5, Y: 0.5}, 2); err != nil {
			t.Fatal(err)
		}
		got := method.Result(1)
		if len(got) != 2 || got[0].ID != 2 || got[1].ID != 5 {
			t.Fatalf("%s result = %v", method.Name(), got)
		}
	}
}

func TestMonitorCustomWorkspace(t *testing.T) {
	ws := Rect{Lo: Point{X: -10, Y: -10}, Hi: Point{X: 10, Y: 10}}
	m := NewMonitor(Options{GridSize: 64, Workspace: ws})
	m.Bootstrap(map[ObjectID]Point{
		1: {X: -8, Y: -8},
		2: {X: 3, Y: 4},
	})
	if err := m.RegisterQuery(1, Point{X: 0, Y: 0}, 1); err != nil {
		t.Fatal(err)
	}
	got := m.Result(1)
	if len(got) != 1 || got[0].ID != 2 || math.Abs(got[0].Dist-5) > 1e-12 {
		t.Fatalf("custom workspace result = %v", got)
	}
}

func TestMonitorRangeQuery(t *testing.T) {
	m := NewMonitor(Options{GridSize: 16})
	m.Bootstrap(seedObjects())
	center := Point{X: 0.5, Y: 0.5}
	if err := m.RegisterRangeQuery(1, center, 0.15); err != nil {
		t.Fatal(err)
	}
	got := m.Result(1)
	if len(got) != 3 || got[0].ID != 2 || got[1].ID != 5 || got[2].ID != 3 {
		t.Fatalf("range result = %v", got)
	}
	// Object 4 drives into the fence.
	m.MoveObject(4, Point{X: 0.5, Y: 0.55})
	if got = m.Result(1); len(got) != 4 {
		t.Fatalf("range result after arrival = %v", got)
	}
	// The fence moves; only object 1 is inside the new one.
	if err := m.MoveQuery(1, Point{X: 0.1, Y: 0.1}); err != nil {
		t.Fatal(err)
	}
	if got = m.Result(1); len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("range result after move = %v", got)
	}
	if err := m.MoveQuery(1, Point{X: 0.1, Y: 0.1}, Point{X: 0.2, Y: 0.2}); err == nil {
		t.Error("multi-point move of range query accepted")
	}
	m.RemoveQuery(1)
	if m.Result(1) != nil {
		t.Error("range query survives removal")
	}
}

func TestMonitorRangeValidation(t *testing.T) {
	m := NewMonitor(Options{GridSize: 16})
	m.Bootstrap(seedObjects())
	if err := m.RegisterRangeQuery(1, Point{X: 0.5, Y: 0.5}, -0.1); err == nil {
		t.Error("negative radius accepted")
	}
	if err := m.RegisterQuery(1, Point{X: 0.5, Y: 0.5}, 1); err != nil {
		t.Fatal(err)
	}
	if err := m.RegisterRangeQuery(1, Point{X: 0.5, Y: 0.5}, 0.1); err == nil {
		t.Error("range over existing kNN id accepted")
	}
}

// TestMonitorShardedAgreesWithSingle drives the whole public API surface —
// point, aggregate, constrained and range queries, ticks, single-object
// shortcuts and query moves — through a sharded monitor and a single-engine
// monitor, asserting identical observable behavior.
func TestMonitorShardedAgreesWithSingle(t *testing.T) {
	single := NewMonitor(Options{GridSize: 16})
	sharded := NewMonitor(Options{GridSize: 16, Shards: 4})
	both := []*Monitor{single, sharded}
	for _, m := range both {
		m.Bootstrap(seedObjects())
		if err := m.RegisterQuery(1, Point{X: 0.5, Y: 0.5}, 2); err != nil {
			t.Fatal(err)
		}
		if err := m.RegisterAggQuery(2, []Point{{X: 0.1, Y: 0.1}, {X: 0.9, Y: 0.9}}, 1, AggSum); err != nil {
			t.Fatal(err)
		}
		if err := m.RegisterConstrainedQuery(3, Point{X: 0.5, Y: 0.5}, 1,
			Rect{Lo: Point{X: 0.55, Y: 0.55}, Hi: Point{X: 1, Y: 1}}); err != nil {
			t.Fatal(err)
		}
		if err := m.RegisterRangeQuery(4, Point{X: 0.5, Y: 0.5}, 0.15); err != nil {
			t.Fatal(err)
		}
	}
	compare := func(stage string) {
		t.Helper()
		for qid := QueryID(1); qid <= 4; qid++ {
			a, b := single.Result(qid), sharded.Result(qid)
			if len(a) != len(b) {
				t.Fatalf("%s q%d: single %v, sharded %v", stage, qid, a, b)
			}
			for i := range a {
				if a[i] != b[i] {
					t.Fatalf("%s q%d: single %v, sharded %v", stage, qid, a, b)
				}
			}
			if single.BestDist(qid) != sharded.BestDist(qid) {
				t.Fatalf("%s q%d: BestDist %v vs %v", stage, qid, single.BestDist(qid), sharded.BestDist(qid))
			}
		}
		ca, cb := single.ChangedQueries(), sharded.ChangedQueries()
		if len(ca) != len(cb) {
			t.Fatalf("%s: changed %v vs %v", stage, ca, cb)
		}
		for i := range ca {
			if ca[i] != cb[i] {
				t.Fatalf("%s: changed %v vs %v", stage, ca, cb)
			}
		}
		if single.ObjectCount() != sharded.ObjectCount() {
			t.Fatalf("%s: ObjectCount %d vs %d", stage, single.ObjectCount(), sharded.ObjectCount())
		}
	}
	compare("initial")
	for _, m := range both {
		m.Tick(Batch{Objects: []Update{
			MoveUpdate(4, Point{X: 0.9, Y: 0.9}, Point{X: 0.52, Y: 0.53}),
			MoveUpdate(1, Point{X: 0.1, Y: 0.1}, Point{X: 0.12, Y: 0.12}),
		}})
	}
	compare("after tick")
	for _, m := range both {
		m.InsertObject(10, Point{X: 0.5, Y: 0.5})
		m.MoveObject(3, Point{X: 0.45, Y: 0.45})
		m.DeleteObject(2)
	}
	compare("after single-object ops")
	for _, m := range both {
		if err := m.MoveQuery(1, Point{X: 0.2, Y: 0.2}); err != nil {
			t.Fatal(err)
		}
		if err := m.MoveQuery(4, Point{X: 0.45, Y: 0.45}); err != nil {
			t.Fatal(err)
		}
		m.Tick(Batch{Queries: []QueryUpdate{{ID: 3, Kind: QueryTerminate}}})
	}
	compare("after query churn")
	if got := sharded.Result(3); got != nil {
		t.Fatalf("terminated query still answering: %v", got)
	}
	if single.InvalidUpdates() != sharded.InvalidUpdates() {
		t.Fatalf("InvalidUpdates: %d vs %d", single.InvalidUpdates(), sharded.InvalidUpdates())
	}
}
