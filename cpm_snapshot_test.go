package cpm

import (
	"reflect"
	"testing"
	"time"
)

// TestSnapshot exercises the multi-query snapshot helper: explicit ids,
// the no-ids "all installed queries" form, and unknown ids.
func TestSnapshot(t *testing.T) {
	m := NewMonitor(Options{GridSize: 16})
	m.Bootstrap(map[ObjectID]Point{
		1: {X: 0.10, Y: 0.10},
		2: {X: 0.20, Y: 0.20},
		3: {X: 0.80, Y: 0.80},
	})
	if err := m.RegisterQuery(7, Point{X: 0.15, Y: 0.15}, 2); err != nil {
		t.Fatal(err)
	}
	if err := m.RegisterRangeQuery(9, Point{X: 0.82, Y: 0.82}, 0.1); err != nil {
		t.Fatal(err)
	}

	all := m.Snapshot()
	if len(all) != 2 || all[0].Query != 7 || all[1].Query != 9 {
		t.Fatalf("Snapshot() = %+v, want queries [7 9]", all)
	}
	for _, s := range all {
		if !s.Live {
			t.Fatalf("q%d not live in snapshot", s.Query)
		}
		if !reflect.DeepEqual(s.Result, m.Result(s.Query)) {
			t.Fatalf("q%d snapshot %v != polled %v", s.Query, s.Result, m.Result(s.Query))
		}
	}
	if len(all[0].Result) != 2 || all[0].Result[0].ID != 1 {
		t.Fatalf("q7 snapshot result = %v", all[0].Result)
	}

	some := m.Snapshot(9, 42, 7)
	if len(some) != 3 {
		t.Fatalf("Snapshot(9, 42, 7) has %d entries", len(some))
	}
	if some[0].Query != 9 || !some[0].Live {
		t.Fatalf("explicit snapshot order/liveness wrong: %+v", some)
	}
	if some[1].Query != 42 || some[1].Live || some[1].Result != nil {
		t.Fatalf("unknown query snapshot = %+v, want dead and nil", some[1])
	}

	m.RemoveQuery(7)
	if s := m.Snapshot(7); s[0].Live || s[0].Result != nil {
		t.Fatalf("terminated query snapshot = %+v, want dead and nil", s[0])
	}
	if all := m.Snapshot(); len(all) != 1 || all[0].Query != 9 {
		t.Fatalf("Snapshot() after removal = %+v", all)
	}
}

// TestSnapshotSharded pins that the sharded monitor's snapshot matches the
// single engine's: same ids, same order, same results.
func TestSnapshotSharded(t *testing.T) {
	w := streamWorkload(t)
	single := NewMonitor(Options{GridSize: 16})
	sharded := NewMonitor(Options{GridSize: 16, Shards: 4})
	defer sharded.Close()
	objs := w.InitialObjects()
	single.Bootstrap(objs)
	sharded.Bootstrap(objs)
	for i, q := range w.InitialQueries() {
		for _, m := range []*Monitor{single, sharded} {
			if err := m.RegisterQuery(QueryID(i), q, 4); err != nil {
				t.Fatal(err)
			}
		}
	}
	for cycle := 0; cycle < 5; cycle++ {
		b := w.Advance()
		single.Tick(b)
		sharded.Tick(b)
	}
	a, b := single.Snapshot(), sharded.Snapshot()
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("snapshots diverge:\nsingle:  %+v\nsharded: %+v", a, b)
	}
}

// TestSubscribeAfterClose is the regression test for the post-Close guard:
// a Subscribe after Close must return an already-closed subscription — no
// fresh hub, no events, no race with the draining one.
func TestSubscribeAfterClose(t *testing.T) {
	for _, shards := range []int{1, 4} {
		m := NewMonitor(Options{GridSize: 16, Shards: shards})
		m.Bootstrap(map[ObjectID]Point{1: {X: 0.5, Y: 0.5}})
		live := m.Subscribe()
		if err := m.RegisterQuery(1, Point{X: 0.5, Y: 0.5}, 1); err != nil {
			t.Fatal(err)
		}
		m.Close()

		sub := m.Subscribe(1)
		select {
		case _, ok := <-sub.Events():
			if ok {
				t.Fatalf("shards=%d: event delivered on a post-Close subscription", shards)
			}
		case <-time.After(5 * time.Second):
			t.Fatalf("shards=%d: post-Close subscription not closed", shards)
		}
		sub.Close() // must be a safe no-op
		if sub.Dropped() != 0 {
			t.Fatalf("shards=%d: post-Close subscription dropped %d", shards, sub.Dropped())
		}

		// Mutations after Close must not publish to the dead subscription,
		// and polling must keep working.
		m.Tick(Batch{Objects: []Update{MoveUpdate(1, Point{X: 0.5, Y: 0.5}, Point{X: 0.6, Y: 0.6})}})
		if res := m.Result(1); len(res) != 1 || res[0].ID != 1 {
			t.Fatalf("shards=%d: polling broken after Close: %v", shards, res)
		}
		// The pre-Close subscription drains (install event) and closes.
		n := 0
		for range live.Events() {
			n++
		}
		if n != 1 {
			t.Fatalf("shards=%d: pre-Close subscription drained %d events, want 1", shards, n)
		}
	}
}
