package wire

import (
	"testing"

	"cpm/internal/model"
)

// benchDiff is a realistic steady-state diff: k=8 result, a couple of
// entries and exits, a few re-ranks — the shape the default workload
// produces for a changed query.
func benchDiff() model.ResultDiff {
	res := make([]model.Neighbor, 8)
	for i := range res {
		res[i] = model.Neighbor{ID: model.ObjectID(100 + i), Dist: 0.01 * float64(i+1)}
	}
	return model.ResultDiff{
		Query:    321,
		Kind:     model.DiffUpdate,
		Entered:  res[:2],
		Exited:   []model.ObjectID{55, 89},
		Reranked: res[2:5],
		Result:   res,
	}
}

// BenchmarkWireEncode measures the serving layer's hot path: encoding one
// pushed diff event into a reused buffer. Must report 0 allocs/op.
func BenchmarkWireEncode(b *testing.B) {
	d := benchDiff()
	buf := AppendEvent(nil, 1, 0, d)
	b.ReportAllocs()
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendEvent(buf[:0], 1, uint64(i), d)
	}
}

// BenchmarkWireDecode measures parsing + decoding the same event frame.
func BenchmarkWireDecode(b *testing.B) {
	frame := AppendEvent(nil, 1, 42, benchDiff())
	b.ReportAllocs()
	b.SetBytes(int64(len(frame)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_, payload, _, err := ParseFrame(frame)
		if err != nil {
			b.Fatal(err)
		}
		if _, err := DecodeEvent(payload); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkWireEncodeTick measures batch ingest encoding: a 512-update
// move batch into a reused buffer (also 0 allocs/op).
func BenchmarkWireEncodeTick(b *testing.B) {
	batch := model.Batch{Objects: make([]model.Update, 512)}
	for i := range batch.Objects {
		batch.Objects[i] = model.MoveUpdate(model.ObjectID(i),
			model.Update{}.Old, model.Update{}.New)
	}
	buf := AppendTick(nil, 0, batch)
	b.ReportAllocs()
	b.SetBytes(int64(len(buf)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf = AppendTick(buf[:0], uint64(i), batch)
	}
}
