// Package wire defines the compact length-prefixed binary protocol of the
// CPM network serving layer: the frames a client and an internal/server
// exchange to feed a remote monitor (bootstrap, update batches, query
// registrations) and to stream results back (acks, polled results, pushed
// diff events, re-sync snapshots and gap markers).
//
// Framing. Every frame is
//
//	uint32 LE  n        number of bytes following this field (2 ≤ n ≤ MaxFrame)
//	byte       version  ProtocolVersion
//	byte       type     FrameType
//	[n-2]byte  payload
//
// Payloads are built from varints (unsigned for counts and sequence
// numbers, zigzag for object and query ids), raw IEEE-754 bits for
// coordinates and distances, and length-prefixed byte strings. By default
// there is no per-frame checksum or compression: the protocol is designed
// for trusted links (TCP on a LAN or localhost) where the transport
// already provides integrity. Peers that cannot trust the link negotiate
// CRC32-C frame trailers with the HelloChecksum flag (see Seal and
// Reader.EnableChecksum); a damaged frame then fails with ErrChecksum
// instead of decoding to silently wrong values.
//
// Encoding is allocation-free by construction: every encoder is an
// append-style function on a caller-owned buffer, so a steady-state sender
// reuses one buffer for its whole lifetime (the acceptance bar is 0
// allocs/op for encoding a result diff). Decoding materializes slices and
// therefore allocates; decoders validate every length against the bytes
// actually present, so truncated or malicious frames are rejected with an
// error before any oversized allocation happens (fuzz-tested).
package wire

import (
	"errors"
	"fmt"

	"cpm/internal/geom"
	"cpm/internal/model"
)

// ProtocolVersion is the frame-header version this package speaks. A
// decoder rejects frames of any other version with ErrVersion; breaking
// payload changes must bump it.
const ProtocolVersion = 1

// MaxFrame caps the byte size of a single frame (length field value). A
// full 100K-object bootstrap is ~3.4 MB; 64 MiB leaves an order of
// magnitude of headroom while bounding what a broken peer can make a
// reader buffer.
const MaxFrame = 64 << 20

// headerLen is the fixed prefix of every frame: length + version + type.
const headerLen = 6

// Magic is the value carried by Hello/Welcome frames ("CPMW"), so a peer
// that dialed the wrong port fails fast instead of misparsing garbage.
const Magic = uint32('C') | uint32('P')<<8 | uint32('M')<<16 | uint32('W')<<24

// Decode errors. Wrapped errors carry frame context; test with errors.Is.
var (
	// ErrTruncated reports a frame ending mid-field.
	ErrTruncated = errors.New("wire: truncated frame")
	// ErrMalformed reports a structurally invalid frame (bad magic, kind,
	// count or trailing bytes).
	ErrMalformed = errors.New("wire: malformed frame")
	// ErrVersion reports an unsupported frame-header version.
	ErrVersion = errors.New("wire: unsupported protocol version")
	// ErrTooLarge reports a length prefix beyond MaxFrame.
	ErrTooLarge = errors.New("wire: frame exceeds size limit")
	// ErrChecksum reports a frame whose CRC trailer did not verify on a
	// checksum-negotiated connection: the bytes were damaged in transit.
	ErrChecksum = errors.New("wire: frame checksum mismatch")
)

// FrameType identifies a frame's payload layout.
type FrameType uint8

// The frame types of protocol version 1. Hello through Unsubscribe flow
// client→server; Welcome through Gap flow server→client.
const (
	frameInvalid FrameType = iota
	// FrameHello opens a connection: magic + the sender's version.
	FrameHello
	// FrameWelcome accepts a Hello: magic + the accepted version.
	FrameWelcome
	// FrameBootstrap loads the initial object population (remote ingest).
	FrameBootstrap
	// FrameTick carries one update batch — a processing cycle (remote
	// ingest).
	FrameTick
	// FrameRegister installs a query (point, aggregate, constrained or
	// range).
	FrameRegister
	// FrameMoveQuery relocates an installed query.
	FrameMoveQuery
	// FrameRemoveQuery terminates a query.
	FrameRemoveQuery
	// FrameResultReq polls one query's current result.
	FrameResultReq
	// FrameSubscribe opens (or, with resume points, re-opens) a diff
	// stream subscription.
	FrameSubscribe
	// FrameUnsubscribe closes one subscription.
	FrameUnsubscribe
	// FrameAck answers any request frame: ok or an error string.
	FrameAck
	// FrameResult answers a ResultReq with the full current result.
	FrameResult
	// FrameEvent pushes one subscription diff event.
	FrameEvent
	// FrameSnapshot pushes one query's full current result during re-sync.
	FrameSnapshot
	// FrameGap marks lost events: the stream resumed after a drop or a
	// reconnect, and the consumer must re-sync from the next full Result.
	FrameGap
	// FrameStatsReq polls the server's metrics registry (client→server).
	FrameStatsReq
	// FrameStats answers a StatsReq with a flat list of named counters —
	// the same stats the /metrics endpoint exposes as text.
	FrameStats
	// FrameDiffs answers a mutating request (Bootstrap/Tick/Register/
	// MoveQuery/RemoveQuery) on a sync-diffs connection: the result diffs
	// that operation produced, in query-id order. Only sent to peers whose
	// Hello carried HelloSyncDiffs; plain connections get a bare Ack.
	FrameDiffs
	// FrameReset wipes all server state — objects, queries, bootstrap
	// flag — so the peer can re-bootstrap from scratch. Used by a cluster
	// coordinator to re-sync a worker whose state is unknown.
	FrameReset
	// FrameTraceCtx carries distributed-trace context (trace id + parent
	// span id) applying to the next request frame on this connection. It
	// has no request id and gets no reply; a traced op is sent as a
	// TraceCtx frame immediately followed by the request it annotates.
	// Only valid on connections whose Hello carried HelloTrace.
	FrameTraceCtx
	// FrameTracesReq polls the server's trace flight recorder: every
	// recorded trace, or one by id (client→server, HelloTrace only).
	FrameTracesReq
	// FrameTraces answers a TracesReq with the recorded traces as the
	// JSON document the /debug/traces endpoint serves.
	FrameTraces
	frameMax // one past the last valid type
)

// Hello flag bits (the optional trailing byte of a Hello frame; a Hello
// without the byte means flags 0).
const (
	// HelloSyncDiffs asks the server to answer each successful mutating
	// request with a Diffs frame (the diffs that operation produced)
	// instead of a bare Ack. A cluster coordinator uses this to collect
	// per-worker diffs deterministically, request by request.
	HelloSyncDiffs uint8 = 1 << 0
	// HelloChecksum negotiates CRC32-C frame trailers: every frame either
	// peer sends after the handshake carries a 4-byte checksum (see Seal),
	// and the receiver verifies it before decoding. The Hello and Welcome
	// frames themselves are never checksummed — they complete before the
	// mode is agreed. Turn this on for links that may corrupt bytes (WAN
	// hops, chaos proxies); the default-off keeps LAN encoding 0-alloc
	// work identical to protocol version 1 peers.
	HelloChecksum uint8 = 1 << 1
	// HelloTrace negotiates the distributed-tracing extension: the client
	// may precede request frames with TraceCtx frames and poll the trace
	// flight recorder, the server echoes WelcomeTrace in a trailing
	// Welcome flags byte, and Diffs replies carry a tick-phase trailer.
	// Old servers ignore the unknown flag bit and old clients never set
	// it, so mixed-version peers interoperate (the Welcome grows its
	// flags byte only toward clients that asked).
	HelloTrace uint8 = 1 << 2
)

// Welcome flag bits (the optional trailing byte of a Welcome frame, sent
// only to clients whose Hello carried HelloTrace; absence means flags 0).
const (
	// WelcomeTrace confirms the server understands the tracing extension:
	// TraceCtx/TracesReq frames are accepted and Diffs replies carry the
	// phase trailer.
	WelcomeTrace uint8 = 1 << 0
)

// String returns a short name for the frame type.
func (t FrameType) String() string {
	switch t {
	case FrameHello:
		return "hello"
	case FrameWelcome:
		return "welcome"
	case FrameBootstrap:
		return "bootstrap"
	case FrameTick:
		return "tick"
	case FrameRegister:
		return "register"
	case FrameMoveQuery:
		return "movequery"
	case FrameRemoveQuery:
		return "removequery"
	case FrameResultReq:
		return "resultreq"
	case FrameSubscribe:
		return "subscribe"
	case FrameUnsubscribe:
		return "unsubscribe"
	case FrameAck:
		return "ack"
	case FrameResult:
		return "result"
	case FrameEvent:
		return "event"
	case FrameSnapshot:
		return "snapshot"
	case FrameGap:
		return "gap"
	case FrameStatsReq:
		return "statsreq"
	case FrameStats:
		return "stats"
	case FrameDiffs:
		return "diffs"
	case FrameReset:
		return "reset"
	case FrameTraceCtx:
		return "tracectx"
	case FrameTracesReq:
		return "tracesreq"
	case FrameTraces:
		return "traces"
	default:
		return fmt.Sprintf("frametype(%d)", uint8(t))
	}
}

// QueryKind selects the registration flavor of a Register frame.
type QueryKind uint8

// The query kinds a server can install; they map 1:1 onto the cpm.Monitor
// registration methods.
const (
	// KindPoint is a conventional k-NN query: one point, K.
	KindPoint QueryKind = iota
	// KindAgg is an aggregate k-NN query: m points, K, Agg.
	KindAgg
	// KindConstrained is a k-NN query restricted to Region: one point, K.
	KindConstrained
	// KindRange is a continuous range query: one point, Radius; K unused.
	KindRange
	kindMax
)

// BootstrapObject is one entry of the initial population.
type BootstrapObject struct {
	ID  model.ObjectID
	Pos geom.Point
}

// Register is the payload of a Register frame.
type Register struct {
	ID     model.QueryID
	Kind   QueryKind
	K      int
	Agg    geom.Agg // KindAgg only
	Points []geom.Point
	Radius float64   // KindRange only
	Region geom.Rect // KindConstrained only
}

// ResumePoint tells the server the last event sequence number a
// reconnecting subscriber saw for one query, so the server can mark the
// gap and replay a fresh snapshot.
type ResumePoint struct {
	Query model.QueryID
	Seq   uint64
}

// Subscribe is the payload of a Subscribe frame. SubID is chosen by the
// client and scopes every Event/Snapshot/Gap frame of this stream; Buffer
// and Policy configure the server-side notify hub subscription; Queries
// empty means every query.
//
// Three re-sync triggers, combinable: the Snapshot flag (a fresh
// subscription wanting current state) makes the server send full-result
// Snapshot frames before the live stream; the Reset flag (a reconnect)
// additionally makes it announce the stream restart with a reset Gap
// marker first; Resume points (a reconnect that had seen events) pin the
// per-query positions the subscriber last saw, which the server echoes in
// the snapshots. A reconnecting client always sets Reset, with or without
// resume points — Resume alone also implies the reset marker.
type Subscribe struct {
	SubID    uint32
	Buffer   uint32
	Policy   uint8 // notify.Policy: 0 DropOldest, 1 CoalesceLatest
	Snapshot bool
	Reset    bool
	Queries  []model.QueryID
	Resume   []ResumePoint
}

// Event is a decoded Event frame: one pushed result diff of subscription
// SubID, with the subscription's sequence number.
type Event struct {
	SubID uint32
	Seq   uint64
	Diff  model.ResultDiff
}

// Snapshot is a decoded Snapshot frame: one query's full current result,
// sent while (re-)syncing a subscription. Live false reports a query that
// is no longer installed (terminated while the subscriber was away).
// ResumeSeq echoes the resume point that triggered the snapshot (0 for
// snapshot-on-subscribe).
type Snapshot struct {
	SubID     uint32
	Query     model.QueryID
	Live      bool
	ResumeSeq uint64
	Result    []model.Neighbor
}

// Stat is one named integer metric reading of a Stats frame. Names are the
// expanded registry names (histograms appear as name_count, name_p50_ns,
// …); values are raw integers in the metric's documented unit.
type Stat struct {
	Name  string
	Value int64
}

// Gap is a decoded Gap frame: events of subscription SubID were lost. To
// is the sequence number of the next live event when known (in-stream
// drops under the DropOldest/CoalesceLatest policies, From the last
// delivered seq), or 0 when the stream restarted from scratch (reconnect
// resume: sequence numbering resets and snapshots follow).
type Gap struct {
	SubID    uint32
	From, To uint64
}
