package wire

import (
	"bytes"
	"errors"
	"testing"

	"cpm/internal/model"
)

// TestTraceFrames round-trips the tracing-extension frames.
func TestTraceFrames(t *testing.T) {
	ft, p, rest, err := ParseFrame(AppendTraceCtx(nil, 0xabc, 0xdef))
	if err != nil || ft != FrameTraceCtx || len(rest) != 0 {
		t.Fatalf("tracectx parse = (%v, %v)", ft, err)
	}
	tid, sid, err := DecodeTraceCtx(p)
	if err != nil || tid != 0xabc || sid != 0xdef {
		t.Fatalf("tracectx = (%x, %x, %v), want (abc, def, nil)", tid, sid, err)
	}
	// A zero trace id means "no trace" and must never appear on the wire.
	_, zp, _, _ := ParseFrame(AppendTraceCtx(nil, 0, 5))
	if _, _, err := DecodeTraceCtx(zp); !errors.Is(err, ErrMalformed) {
		t.Fatalf("zero trace id = %v, want ErrMalformed", err)
	}

	ft, p, _, err = ParseFrame(AppendTracesReq(nil, 42, 0x99))
	if err != nil || ft != FrameTracesReq {
		t.Fatalf("tracesreq parse = (%v, %v)", ft, err)
	}
	req, tid, err := DecodeTracesReq(p)
	if err != nil || req != 42 || tid != 0x99 {
		t.Fatalf("tracesreq = (%d, %x, %v)", req, tid, err)
	}

	doc := []byte(`[{"trace_id":"0000000000000abc"}]`)
	ft, p, _, err = ParseFrame(AppendTraces(nil, 42, doc))
	if err != nil || ft != FrameTraces {
		t.Fatalf("traces parse = (%v, %v)", ft, err)
	}
	req, got, err := DecodeTraces(p)
	if err != nil || req != 42 || !bytes.Equal(got, doc) {
		t.Fatalf("traces = (%d, %q, %v)", req, got, err)
	}
	if _, _, err := DecodeTraces(p[:len(p)-1]); err == nil {
		t.Fatal("truncated traces doc decoded")
	}
}

// TestWelcomeFlags checks the version-negotiated Welcome flags byte: the
// extended form round-trips, and the plain form (what an old server
// sends) still decodes with zero flags.
func TestWelcomeFlags(t *testing.T) {
	_, p, _, err := ParseFrame(AppendWelcomeFlags(nil, 7, WelcomeTrace))
	if err != nil {
		t.Fatal(err)
	}
	inst, flags, err := DecodeWelcome(p)
	if err != nil || inst != 7 || flags != WelcomeTrace {
		t.Fatalf("welcome+flags = (%d, %#x, %v), want (7, %#x, nil)", inst, flags, err, WelcomeTrace)
	}
	_, p, _, _ = ParseFrame(AppendWelcome(nil, 7))
	inst, flags, err = DecodeWelcome(p)
	if err != nil || inst != 7 || flags != 0 {
		t.Fatalf("plain welcome = (%d, %#x, %v), want (7, 0, nil)", inst, flags, err)
	}
}

// TestDiffsPhaseTrailer checks the tick-phase trailer on Diffs frames:
// the extended form carries the four phase nanos, and both decoders keep
// their contracts — DecodeDiffsPhases reads either form, the strict
// DecodeDiffs still rejects the trailer as trailing bytes.
func TestDiffsPhaseTrailer(t *testing.T) {
	diffs := []model.ResultDiff{{Query: 3, Kind: model.DiffUpdate,
		Entered: []model.Neighbor{{ID: 9, Dist: 0.5}},
		Result:  []model.Neighbor{{ID: 9, Dist: 0.5}}}}
	ph := model.PhaseNanos{Relocate: 100, Reeval: 200, QueryUpd: 30, Diff: 4}

	_, p, _, err := ParseFrame(AppendDiffsPhases(nil, 11, diffs, ph))
	if err != nil {
		t.Fatal(err)
	}
	req, got, gotPh, err := DecodeDiffsPhases(p)
	if err != nil || req != 11 || len(got) != 1 || gotPh != ph {
		t.Fatalf("diffs+phases = (%d, %v, %+v, %v)", req, got, gotPh, err)
	}
	if _, _, err := DecodeDiffs(p); err == nil {
		t.Fatal("strict DecodeDiffs accepted a phase trailer")
	}

	// Plain frame through the phase-aware decoder: zero phases.
	_, p, _, _ = ParseFrame(AppendDiffs(nil, 11, diffs))
	req, got, gotPh, err = DecodeDiffsPhases(p)
	if err != nil || req != 11 || len(got) != 1 || gotPh != (model.PhaseNanos{}) {
		t.Fatalf("plain diffs via phases decoder = (%d, %v, %+v, %v)", req, got, gotPh, err)
	}

	// A truncated trailer must error, not decode to garbage.
	full := AppendDiffsPhases(nil, 11, diffs, model.PhaseNanos{Relocate: 1 << 40})
	_, p, _, _ = ParseFrame(full)
	if _, _, _, err := DecodeDiffsPhases(p[:len(p)-2]); err == nil {
		t.Fatal("truncated phase trailer decoded")
	}
}
