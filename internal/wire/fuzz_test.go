package wire

import (
	"bytes"
	"testing"

	"cpm/internal/model"
)

// FuzzFrame is the decoder robustness target: arbitrary bytes must never
// panic the parser or any typed decoder, and every frame that decodes
// cleanly must survive a re-encode/re-decode round trip byte-for-byte
// (run with `go test -fuzz=FuzzFrame ./internal/wire`). The seed corpus —
// one valid frame of every type plus corrupted variants — is both in-code
// (f.Add) and checked in under testdata/fuzz.
func FuzzFrame(f *testing.F) {
	for _, frame := range sampleFrames() {
		f.Add(frame)
		// A truncated and a bit-flipped variant of each, so coverage
		// starts on the error paths too.
		f.Add(frame[:len(frame)-1])
		flipped := append([]byte(nil), frame...)
		flipped[len(flipped)/2] ^= 0x80
		f.Add(flipped)
	}
	f.Add([]byte{})
	f.Add([]byte{0xFF, 0xFF, 0xFF, 0xFF, 1, 1})

	f.Fuzz(func(t *testing.T, data []byte) {
		rest := data
		for depth := 0; depth < 16; depth++ { // bounded walk over a multi-frame input
			typ, payload, next, err := ParseFrame(rest)
			if err != nil {
				return
			}
			if err := decodeAny(typ, payload); err == nil {
				reencoded, ok := reencode(typ, payload)
				if ok && !bytes.Equal(reencoded, rest[:len(rest)-len(next)]) {
					t.Fatalf("%v: re-encode differs\n in: %x\nout: %x", typ, rest[:len(rest)-len(next)], reencoded)
				}
			}
			rest = next
		}
	})
}

// reencode decodes a valid payload and encodes it again. It reports ok =
// false for payloads whose wire form is legitimately non-canonical (the
// varint encodings this protocol emits are canonical, so in practice every
// accepted frame re-encodes identically; non-minimal varints produced by a
// fuzzer decode fine but re-encode shorter, which is fine — we only check
// equality when the input was canonical).
func reencode(t FrameType, p []byte) (frame []byte, ok bool) {
	switch t {
	case FrameHello:
		flags, err := DecodeHello(p)
		if err != nil {
			return nil, false
		}
		frame = AppendHello(nil, flags)
	case FrameWelcome:
		inst, flags, err := DecodeWelcome(p)
		if err != nil {
			return nil, false
		}
		if flags != 0 {
			frame = AppendWelcomeFlags(nil, inst, flags)
		} else {
			frame = AppendWelcome(nil, inst)
		}
	case FrameBootstrap:
		req, objs, err := DecodeBootstrap(p)
		if err != nil {
			return nil, false
		}
		frame = AppendBootstrap(nil, req, objs)
	case FrameTick:
		req, b, err := DecodeTick(p)
		if err != nil {
			return nil, false
		}
		frame = AppendTick(nil, req, b)
	case FrameRegister:
		req, r, err := DecodeRegister(p)
		if err != nil {
			return nil, false
		}
		frame = AppendRegister(nil, req, r)
	case FrameMoveQuery:
		req, id, pts, err := DecodeMoveQuery(p)
		if err != nil {
			return nil, false
		}
		frame = AppendMoveQuery(nil, req, id, pts)
	case FrameRemoveQuery:
		req, id, err := DecodeRemoveQuery(p)
		if err != nil {
			return nil, false
		}
		frame = AppendRemoveQuery(nil, req, id)
	case FrameResultReq:
		req, id, err := DecodeResultReq(p)
		if err != nil {
			return nil, false
		}
		frame = AppendResultReq(nil, req, id)
	case FrameSubscribe:
		req, s, err := DecodeSubscribe(p)
		if err != nil {
			return nil, false
		}
		frame = AppendSubscribe(nil, req, s)
	case FrameUnsubscribe:
		req, id, err := DecodeUnsubscribe(p)
		if err != nil {
			return nil, false
		}
		frame = AppendUnsubscribe(nil, req, id)
	case FrameAck:
		req, msg, err := DecodeAck(p)
		if err != nil {
			return nil, false
		}
		frame = AppendAck(nil, req, msg)
	case FrameResult:
		req, id, live, res, err := DecodeResult(p)
		if err != nil {
			return nil, false
		}
		frame = AppendResult(nil, req, id, live, res)
	case FrameEvent:
		ev, err := DecodeEvent(p)
		if err != nil {
			return nil, false
		}
		frame = AppendEvent(nil, ev.SubID, ev.Seq, ev.Diff)
	case FrameSnapshot:
		s, err := DecodeSnapshot(p)
		if err != nil {
			return nil, false
		}
		frame = AppendSnapshot(nil, s)
	case FrameGap:
		g, err := DecodeGap(p)
		if err != nil {
			return nil, false
		}
		frame = AppendGap(nil, g)
	case FrameStatsReq:
		req, err := DecodeStatsReq(p)
		if err != nil {
			return nil, false
		}
		frame = AppendStatsReq(nil, req)
	case FrameStats:
		req, stats, err := DecodeStats(p)
		if err != nil {
			return nil, false
		}
		frame = AppendStats(nil, req, stats)
	case FrameDiffs:
		req, diffs, err := DecodeDiffs(p)
		if err != nil {
			return nil, false
		}
		frame = AppendDiffs(nil, req, diffs)
	case FrameReset:
		req, err := DecodeReset(p)
		if err != nil {
			return nil, false
		}
		frame = AppendReset(nil, req)
	case FrameTraceCtx:
		tid, sid, err := DecodeTraceCtx(p)
		if err != nil {
			return nil, false
		}
		frame = AppendTraceCtx(nil, tid, sid)
	case FrameTracesReq:
		req, tid, err := DecodeTracesReq(p)
		if err != nil {
			return nil, false
		}
		frame = AppendTracesReq(nil, req, tid)
	case FrameTraces:
		req, doc, err := DecodeTraces(p)
		if err != nil {
			return nil, false
		}
		frame = AppendTraces(nil, req, doc)
	default:
		return nil, false
	}
	// Floats break byte-for-byte comparison only via NaN payload bits; the
	// encoder preserves exact bits (Float64bits round trip), so frames
	// containing any float still compare equal. Non-minimal varints do
	// not: detect them by length mismatch and skip the strict comparison.
	if len(frame) != len(p)+headerLen {
		return nil, false
	}
	return frame, true
}

// FuzzEventRoundTrip fuzzes the hot-path frame from structured inputs:
// whatever diff the fuzzer assembles must encode and decode to identical
// values (run with `go test -fuzz=FuzzEventRoundTrip ./internal/wire`).
func FuzzEventRoundTrip(f *testing.F) {
	f.Add(uint32(1), uint64(42), int32(7), uint8(0), int32(3), 0.25, int32(9), 3)
	f.Add(uint32(0), uint64(0), int32(-1), uint8(2), int32(0), -1.5, int32(1), 0)
	f.Add(uint32(1<<31), uint64(1)<<63, int32(1<<30), uint8(1), int32(-5), 1e300, int32(2), 7)

	f.Fuzz(func(t *testing.T, subID uint32, seq uint64, query int32, kind uint8, oid int32, dist float64, oid2 int32, n int) {
		if kind > uint8(model.DiffRemove) {
			kind = uint8(model.DiffRemove)
		}
		if n < 0 {
			n = -n
		}
		n %= 8
		d := model.ResultDiff{Query: model.QueryID(query), Kind: model.DiffKind(kind)}
		for i := 0; i < n; i++ {
			nb := model.Neighbor{ID: model.ObjectID(oid) + model.ObjectID(i), Dist: dist * float64(i+1)}
			d.Entered = append(d.Entered, nb)
			if d.Kind != model.DiffRemove {
				d.Result = append(d.Result, nb)
			}
		}
		if n > 0 {
			d.Exited = append(d.Exited, model.ObjectID(oid2))
		}
		frame := AppendEvent(nil, subID, seq, d)
		typ, payload, rest, err := ParseFrame(frame)
		if err != nil || typ != FrameEvent || len(rest) != 0 {
			t.Fatalf("ParseFrame = (%v, rest %d, %v)", typ, len(rest), err)
		}
		ev, err := DecodeEvent(payload)
		if err != nil {
			t.Fatalf("DecodeEvent: %v", err)
		}
		if ev.SubID != subID || ev.Seq != seq || ev.Diff.Query != d.Query || ev.Diff.Kind != d.Kind {
			t.Fatalf("header fields corrupted: %+v", ev)
		}
		if len(ev.Diff.Entered) != len(d.Entered) || len(ev.Diff.Exited) != len(d.Exited) {
			t.Fatalf("slice lengths corrupted: %+v", ev.Diff)
		}
		for i := range d.Entered {
			got, want := ev.Diff.Entered[i], d.Entered[i]
			// NaN-safe bitwise comparison.
			if got.ID != want.ID || (got.Dist != want.Dist && !(got.Dist != got.Dist && want.Dist != want.Dist)) {
				t.Fatalf("entered[%d] = %+v, want %+v", i, got, want)
			}
		}
	})
}
