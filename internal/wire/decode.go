package wire

import (
	"encoding/binary"
	"fmt"
	"hash/crc32"
	"io"
	"math"

	"cpm/internal/geom"
	"cpm/internal/model"
)

// Decoders. Each Decode* parses the payload of one frame (header already
// stripped by Reader.Next or ParseFrame) and rejects anything malformed:
// truncated fields, out-of-range ids and kinds, counts larger than the
// bytes present, trailing garbage. Every slice length is validated against
// a per-element minimum size before allocation, so a hostile 4-byte count
// cannot demand gigabytes.

// dec is a bounds-checked cursor over a frame payload.
type dec struct {
	b []byte
}

func (d *dec) uvarint() (uint64, error) {
	v, n := binary.Uvarint(d.b)
	if n <= 0 {
		return 0, ErrTruncated
	}
	d.b = d.b[n:]
	return v, nil
}

func (d *dec) varint() (int64, error) {
	v, n := binary.Varint(d.b)
	if n <= 0 {
		return 0, ErrTruncated
	}
	d.b = d.b[n:]
	return v, nil
}

func (d *dec) byte() (byte, error) {
	if len(d.b) < 1 {
		return 0, ErrTruncated
	}
	v := d.b[0]
	d.b = d.b[1:]
	return v, nil
}

func (d *dec) bool() (bool, error) {
	v, err := d.byte()
	if err != nil {
		return false, err
	}
	switch v {
	case 0:
		return false, nil
	case 1:
		return true, nil
	default:
		return false, fmt.Errorf("%w: bool byte %d", ErrMalformed, v)
	}
}

func (d *dec) uint32() (uint32, error) {
	if len(d.b) < 4 {
		return 0, ErrTruncated
	}
	v := binary.LittleEndian.Uint32(d.b)
	d.b = d.b[4:]
	return v, nil
}

func (d *dec) float() (float64, error) {
	if len(d.b) < 8 {
		return 0, ErrTruncated
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(d.b))
	d.b = d.b[8:]
	return v, nil
}

func (d *dec) point() (geom.Point, error) {
	x, err := d.float()
	if err != nil {
		return geom.Point{}, err
	}
	y, err := d.float()
	if err != nil {
		return geom.Point{}, err
	}
	return geom.Point{X: x, Y: y}, nil
}

// count reads an element count and validates it against the bytes left:
// every element occupies at least minSize bytes, so a count the remaining
// payload cannot possibly hold is malformed, not an allocation request.
func (d *dec) count(minSize int) (int, error) {
	v, err := d.uvarint()
	if err != nil {
		return 0, err
	}
	if v > uint64(len(d.b)/minSize) {
		return 0, fmt.Errorf("%w: count %d exceeds payload", ErrMalformed, v)
	}
	return int(v), nil
}

func (d *dec) objectID() (model.ObjectID, error) {
	v, err := d.varint()
	if err != nil {
		return 0, err
	}
	if v < math.MinInt32 || v > math.MaxInt32 {
		return 0, fmt.Errorf("%w: object id %d out of range", ErrMalformed, v)
	}
	return model.ObjectID(v), nil
}

func (d *dec) queryID() (model.QueryID, error) {
	v, err := d.varint()
	if err != nil {
		return 0, err
	}
	if v < math.MinInt32 || v > math.MaxInt32 {
		return 0, fmt.Errorf("%w: query id %d out of range", ErrMalformed, v)
	}
	return model.QueryID(v), nil
}

func (d *dec) string(maxLen int) (string, error) {
	n, err := d.uvarint()
	if err != nil {
		return "", err
	}
	if n > uint64(len(d.b)) {
		return "", ErrTruncated
	}
	if n > uint64(maxLen) {
		return "", fmt.Errorf("%w: string length %d", ErrMalformed, n)
	}
	s := string(d.b[:n])
	d.b = d.b[n:]
	return s, nil
}

// minNeighbor is the smallest wire size of one neighbor: 1-byte varint id
// + 8-byte distance.
const minNeighbor = 9

func (d *dec) neighbors() ([]model.Neighbor, error) {
	n, err := d.count(minNeighbor)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]model.Neighbor, n)
	for i := range out {
		id, err := d.objectID()
		if err != nil {
			return nil, err
		}
		dist, err := d.float()
		if err != nil {
			return nil, err
		}
		out[i] = model.Neighbor{ID: id, Dist: dist}
	}
	return out, nil
}

func (d *dec) objectIDs() ([]model.ObjectID, error) {
	n, err := d.count(1)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]model.ObjectID, n)
	for i := range out {
		id, err := d.objectID()
		if err != nil {
			return nil, err
		}
		out[i] = id
	}
	return out, nil
}

func (d *dec) points() ([]geom.Point, error) {
	n, err := d.count(16)
	if err != nil {
		return nil, err
	}
	if n == 0 {
		return nil, nil
	}
	out := make([]geom.Point, n)
	for i := range out {
		p, err := d.point()
		if err != nil {
			return nil, err
		}
		out[i] = p
	}
	return out, nil
}

func (d *dec) diff() (model.ResultDiff, error) {
	var out model.ResultDiff
	q, err := d.queryID()
	if err != nil {
		return out, err
	}
	kind, err := d.byte()
	if err != nil {
		return out, err
	}
	if kind > uint8(model.DiffRemove) {
		return out, fmt.Errorf("%w: diff kind %d", ErrMalformed, kind)
	}
	out.Query = q
	out.Kind = model.DiffKind(kind)
	if out.Entered, err = d.neighbors(); err != nil {
		return out, err
	}
	if out.Exited, err = d.objectIDs(); err != nil {
		return out, err
	}
	if out.Reranked, err = d.neighbors(); err != nil {
		return out, err
	}
	if out.Kind != model.DiffRemove {
		if out.Result, err = d.neighbors(); err != nil {
			return out, err
		}
	}
	return out, nil
}

// done rejects trailing bytes: a well-formed payload is consumed exactly.
func (d *dec) done() error {
	if len(d.b) != 0 {
		return fmt.Errorf("%w: %d trailing bytes", ErrMalformed, len(d.b))
	}
	return nil
}

// checkMagic consumes and validates the magic of a Hello/Welcome payload.
func checkMagic(d *dec) error {
	m, err := d.uint32()
	if err != nil {
		return err
	}
	if m != Magic {
		return fmt.Errorf("%w: bad magic %#x", ErrMalformed, m)
	}
	return nil
}

// DecodeHello validates a Hello payload and returns its flag bits. The
// flags byte is optional trailing data: frames from peers that predate it
// decode with flags 0.
func DecodeHello(p []byte) (flags uint8, err error) {
	d := dec{p}
	if err = checkMagic(&d); err != nil {
		return 0, err
	}
	if len(d.b) > 0 {
		if flags, err = d.byte(); err != nil {
			return 0, err
		}
	}
	return flags, d.done()
}

// DecodeWelcome validates a Welcome payload and returns the server's
// instance identifier. The field is optional trailing data: frames from
// servers that predate it decode with instance 0.
func DecodeWelcome(p []byte) (instance uint64, flags uint8, err error) {
	d := dec{p}
	if err = checkMagic(&d); err != nil {
		return 0, 0, err
	}
	if len(d.b) > 0 {
		if instance, err = d.uvarint(); err != nil {
			return 0, 0, err
		}
	}
	// Trailing flags byte: sent only to clients that asked for the
	// tracing extension (HelloTrace); its absence means flags 0.
	if len(d.b) > 0 {
		if flags, err = d.byte(); err != nil {
			return 0, 0, err
		}
	}
	return instance, flags, d.done()
}

// DecodeBootstrap parses an initial-population frame.
func DecodeBootstrap(p []byte) (reqID uint64, objs []BootstrapObject, err error) {
	d := dec{p}
	if reqID, err = d.uvarint(); err != nil {
		return 0, nil, err
	}
	n, err := d.count(17) // 1-byte id + 16-byte point
	if err != nil {
		return 0, nil, err
	}
	if n > 0 {
		objs = make([]BootstrapObject, n)
		for i := range objs {
			if objs[i].ID, err = d.objectID(); err != nil {
				return 0, nil, err
			}
			if objs[i].Pos, err = d.point(); err != nil {
				return 0, nil, err
			}
		}
	}
	return reqID, objs, d.done()
}

// DecodeTick parses an update-batch frame.
func DecodeTick(p []byte) (reqID uint64, b model.Batch, err error) {
	d := dec{p}
	if reqID, err = d.uvarint(); err != nil {
		return 0, b, err
	}
	n, err := d.count(18) // id + kind + one point
	if err != nil {
		return 0, b, err
	}
	if n > 0 {
		b.Objects = make([]model.Update, n)
		for i := range b.Objects {
			u := &b.Objects[i]
			if u.ID, err = d.objectID(); err != nil {
				return 0, b, err
			}
			kind, err := d.byte()
			if err != nil {
				return 0, b, err
			}
			if kind > uint8(model.Delete) {
				return 0, b, fmt.Errorf("%w: update kind %d", ErrMalformed, kind)
			}
			u.Kind = model.UpdateKind(kind)
			switch u.Kind {
			case model.Move:
				if u.Old, err = d.point(); err != nil {
					return 0, b, err
				}
				if u.New, err = d.point(); err != nil {
					return 0, b, err
				}
			case model.Insert:
				if u.New, err = d.point(); err != nil {
					return 0, b, err
				}
			case model.Delete:
				if u.Old, err = d.point(); err != nil {
					return 0, b, err
				}
			}
		}
	}
	m, err := d.count(3) // id + kind + empty point list
	if err != nil {
		return 0, b, err
	}
	if m > 0 {
		b.Queries = make([]model.QueryUpdate, m)
		for i := range b.Queries {
			qu := &b.Queries[i]
			if qu.ID, err = d.queryID(); err != nil {
				return 0, b, err
			}
			kind, err := d.byte()
			if err != nil {
				return 0, b, err
			}
			if kind > uint8(model.QueryTerminate) {
				return 0, b, fmt.Errorf("%w: query update kind %d", ErrMalformed, kind)
			}
			qu.Kind = model.QueryUpdateKind(kind)
			if qu.NewPoints, err = d.points(); err != nil {
				return 0, b, err
			}
		}
	}
	return reqID, b, d.done()
}

// DecodeRegister parses a query-registration frame.
func DecodeRegister(p []byte) (reqID uint64, r Register, err error) {
	d := dec{p}
	if reqID, err = d.uvarint(); err != nil {
		return 0, r, err
	}
	if r.ID, err = d.queryID(); err != nil {
		return 0, r, err
	}
	kind, err := d.byte()
	if err != nil {
		return 0, r, err
	}
	if kind >= uint8(kindMax) {
		return 0, r, fmt.Errorf("%w: query kind %d", ErrMalformed, kind)
	}
	r.Kind = QueryKind(kind)
	k, err := d.uvarint()
	if err != nil {
		return 0, r, err
	}
	if k > math.MaxInt32 {
		return 0, r, fmt.Errorf("%w: k %d", ErrMalformed, k)
	}
	r.K = int(k)
	agg, err := d.byte()
	if err != nil {
		return 0, r, err
	}
	if agg > uint8(geom.AggMax) {
		return 0, r, fmt.Errorf("%w: agg %d", ErrMalformed, agg)
	}
	r.Agg = geom.Agg(agg)
	if r.Points, err = d.points(); err != nil {
		return 0, r, err
	}
	switch r.Kind {
	case KindRange:
		if r.Radius, err = d.float(); err != nil {
			return 0, r, err
		}
	case KindConstrained:
		if r.Region.Lo, err = d.point(); err != nil {
			return 0, r, err
		}
		if r.Region.Hi, err = d.point(); err != nil {
			return 0, r, err
		}
	}
	return reqID, r, d.done()
}

// DecodeMoveQuery parses a query-relocation frame.
func DecodeMoveQuery(p []byte) (reqID uint64, id model.QueryID, pts []geom.Point, err error) {
	d := dec{p}
	if reqID, err = d.uvarint(); err != nil {
		return 0, 0, nil, err
	}
	if id, err = d.queryID(); err != nil {
		return 0, 0, nil, err
	}
	if pts, err = d.points(); err != nil {
		return 0, 0, nil, err
	}
	return reqID, id, pts, d.done()
}

// decodeReqQuery parses the shared (reqID, queryID) payload.
func decodeReqQuery(p []byte) (reqID uint64, id model.QueryID, err error) {
	d := dec{p}
	if reqID, err = d.uvarint(); err != nil {
		return 0, 0, err
	}
	if id, err = d.queryID(); err != nil {
		return 0, 0, err
	}
	return reqID, id, d.done()
}

// DecodeRemoveQuery parses a query-termination frame.
func DecodeRemoveQuery(p []byte) (reqID uint64, id model.QueryID, err error) {
	return decodeReqQuery(p)
}

// DecodeResultReq parses a result-poll request.
func DecodeResultReq(p []byte) (reqID uint64, id model.QueryID, err error) {
	return decodeReqQuery(p)
}

// DecodeSubscribe parses a subscription-open frame.
func DecodeSubscribe(p []byte) (reqID uint64, s Subscribe, err error) {
	d := dec{p}
	if reqID, err = d.uvarint(); err != nil {
		return 0, s, err
	}
	subID, err := d.uvarint()
	if err != nil {
		return 0, s, err
	}
	if subID > math.MaxUint32 {
		return 0, s, fmt.Errorf("%w: sub id %d", ErrMalformed, subID)
	}
	s.SubID = uint32(subID)
	buf, err := d.uvarint()
	if err != nil {
		return 0, s, err
	}
	if buf > math.MaxUint32 {
		return 0, s, fmt.Errorf("%w: buffer %d", ErrMalformed, buf)
	}
	s.Buffer = uint32(buf)
	if s.Policy, err = d.byte(); err != nil {
		return 0, s, err
	}
	if s.Policy > 1 {
		return 0, s, fmt.Errorf("%w: policy %d", ErrMalformed, s.Policy)
	}
	flags, err := d.byte()
	if err != nil {
		return 0, s, err
	}
	if flags > 3 {
		return 0, s, fmt.Errorf("%w: subscribe flags %d", ErrMalformed, flags)
	}
	s.Snapshot = flags&1 != 0
	s.Reset = flags&2 != 0
	n, err := d.count(1)
	if err != nil {
		return 0, s, err
	}
	if n > 0 {
		s.Queries = make([]model.QueryID, n)
		for i := range s.Queries {
			if s.Queries[i], err = d.queryID(); err != nil {
				return 0, s, err
			}
		}
	}
	m, err := d.count(2) // query id + seq
	if err != nil {
		return 0, s, err
	}
	if m > 0 {
		s.Resume = make([]ResumePoint, m)
		for i := range s.Resume {
			if s.Resume[i].Query, err = d.queryID(); err != nil {
				return 0, s, err
			}
			if s.Resume[i].Seq, err = d.uvarint(); err != nil {
				return 0, s, err
			}
		}
	}
	return reqID, s, d.done()
}

// DecodeUnsubscribe parses a subscription-close frame.
func DecodeUnsubscribe(p []byte) (reqID uint64, subID uint32, err error) {
	d := dec{p}
	if reqID, err = d.uvarint(); err != nil {
		return 0, 0, err
	}
	v, err := d.uvarint()
	if err != nil {
		return 0, 0, err
	}
	if v > math.MaxUint32 {
		return 0, 0, fmt.Errorf("%w: sub id %d", ErrMalformed, v)
	}
	return reqID, uint32(v), d.done()
}

// maxErrLen caps the error string an Ack may carry.
const maxErrLen = 4096

// DecodeAck parses an acknowledgment; errMsg empty means success.
func DecodeAck(p []byte) (reqID uint64, errMsg string, err error) {
	d := dec{p}
	if reqID, err = d.uvarint(); err != nil {
		return 0, "", err
	}
	if errMsg, err = d.string(maxErrLen); err != nil {
		return 0, "", err
	}
	return reqID, errMsg, d.done()
}

// DecodeResult parses the answer to a ResultReq.
func DecodeResult(p []byte) (reqID uint64, id model.QueryID, live bool, res []model.Neighbor, err error) {
	d := dec{p}
	if reqID, err = d.uvarint(); err != nil {
		return 0, 0, false, nil, err
	}
	if id, err = d.queryID(); err != nil {
		return 0, 0, false, nil, err
	}
	if live, err = d.bool(); err != nil {
		return 0, 0, false, nil, err
	}
	if res, err = d.neighbors(); err != nil {
		return 0, 0, false, nil, err
	}
	return reqID, id, live, res, d.done()
}

// DecodeEvent parses one pushed diff event.
func DecodeEvent(p []byte) (ev Event, err error) {
	d := dec{p}
	subID, err := d.uvarint()
	if err != nil {
		return ev, err
	}
	if subID > math.MaxUint32 {
		return ev, fmt.Errorf("%w: sub id %d", ErrMalformed, subID)
	}
	ev.SubID = uint32(subID)
	if ev.Seq, err = d.uvarint(); err != nil {
		return ev, err
	}
	if ev.Diff, err = d.diff(); err != nil {
		return ev, err
	}
	return ev, d.done()
}

// DecodeSnapshot parses one re-sync snapshot frame.
func DecodeSnapshot(p []byte) (s Snapshot, err error) {
	d := dec{p}
	subID, err := d.uvarint()
	if err != nil {
		return s, err
	}
	if subID > math.MaxUint32 {
		return s, fmt.Errorf("%w: sub id %d", ErrMalformed, subID)
	}
	s.SubID = uint32(subID)
	if s.Query, err = d.queryID(); err != nil {
		return s, err
	}
	if s.Live, err = d.bool(); err != nil {
		return s, err
	}
	if s.ResumeSeq, err = d.uvarint(); err != nil {
		return s, err
	}
	if s.Result, err = d.neighbors(); err != nil {
		return s, err
	}
	return s, d.done()
}

// DecodeGap parses a lost-events marker frame.
func DecodeGap(p []byte) (g Gap, err error) {
	d := dec{p}
	subID, err := d.uvarint()
	if err != nil {
		return g, err
	}
	if subID > math.MaxUint32 {
		return g, fmt.Errorf("%w: sub id %d", ErrMalformed, subID)
	}
	g.SubID = uint32(subID)
	if g.From, err = d.uvarint(); err != nil {
		return g, err
	}
	if g.To, err = d.uvarint(); err != nil {
		return g, err
	}
	return g, d.done()
}

// maxStatName caps the metric name length a Stats frame may carry.
const maxStatName = 256

// DecodeStatsReq parses a metrics-poll request.
func DecodeStatsReq(p []byte) (reqID uint64, err error) {
	d := dec{p}
	if reqID, err = d.uvarint(); err != nil {
		return 0, err
	}
	return reqID, d.done()
}

// DecodeStats parses the answer to a StatsReq.
func DecodeStats(p []byte) (reqID uint64, stats []Stat, err error) {
	d := dec{p}
	if reqID, err = d.uvarint(); err != nil {
		return 0, nil, err
	}
	n, err := d.count(2) // 1-byte name length + 1-byte value varint
	if err != nil {
		return 0, nil, err
	}
	if n > 0 {
		stats = make([]Stat, n)
		for i := range stats {
			if stats[i].Name, err = d.string(maxStatName); err != nil {
				return 0, nil, err
			}
			if stats[i].Value, err = d.varint(); err != nil {
				return 0, nil, err
			}
		}
	}
	return reqID, stats, d.done()
}

// minDiff is the smallest wire size of one diff: 1-byte query varint +
// kind byte + three (or, for DiffRemove, exactly three) 1-byte zero
// counts.
const minDiff = 5

// DecodeDiffs parses the sync-diffs answer to a mutating request.
func DecodeDiffs(p []byte) (reqID uint64, diffs []model.ResultDiff, err error) {
	d := dec{p}
	if reqID, err = d.uvarint(); err != nil {
		return 0, nil, err
	}
	n, err := d.count(minDiff)
	if err != nil {
		return 0, nil, err
	}
	if n > 0 {
		diffs = make([]model.ResultDiff, n)
		for i := range diffs {
			if diffs[i], err = d.diff(); err != nil {
				return 0, nil, err
			}
		}
	}
	return reqID, diffs, d.done()
}

// DecodeReset parses a state-wipe request frame.
func DecodeReset(p []byte) (reqID uint64, err error) {
	d := dec{p}
	if reqID, err = d.uvarint(); err != nil {
		return 0, err
	}
	return reqID, d.done()
}

// DecodeDiffsPhases parses a Diffs frame that may carry the tick-phase
// trailer of a HelloTrace-negotiated connection: four uvarints after the
// diff list, detected by the bytes remaining. A plain Diffs frame decodes
// with zero phases, so one dispatch path handles both forms.
func DecodeDiffsPhases(p []byte) (reqID uint64, diffs []model.ResultDiff, ph model.PhaseNanos, err error) {
	d := dec{p}
	if reqID, err = d.uvarint(); err != nil {
		return 0, nil, ph, err
	}
	n, err := d.count(minDiff)
	if err != nil {
		return 0, nil, ph, err
	}
	if n > 0 {
		diffs = make([]model.ResultDiff, n)
		for i := range diffs {
			if diffs[i], err = d.diff(); err != nil {
				return 0, nil, ph, err
			}
		}
	}
	if len(d.b) > 0 {
		var v [4]uint64
		for i := range v {
			if v[i], err = d.uvarint(); err != nil {
				return 0, nil, model.PhaseNanos{}, err
			}
		}
		ph = model.PhaseNanos{
			Relocate: int64(v[0]), Reeval: int64(v[1]),
			QueryUpd: int64(v[2]), Diff: int64(v[3]),
		}
	}
	return reqID, diffs, ph, d.done()
}

// DecodeTraceCtx parses a trace-context frame.
func DecodeTraceCtx(p []byte) (traceID, spanID uint64, err error) {
	d := dec{p}
	if traceID, err = d.uvarint(); err != nil {
		return 0, 0, err
	}
	if spanID, err = d.uvarint(); err != nil {
		return 0, 0, err
	}
	if traceID == 0 {
		return 0, 0, fmt.Errorf("%w: zero trace id", ErrMalformed)
	}
	return traceID, spanID, d.done()
}

// DecodeTracesReq parses a flight-recorder poll (traceID 0 = whole ring).
func DecodeTracesReq(p []byte) (reqID, traceID uint64, err error) {
	d := dec{p}
	if reqID, err = d.uvarint(); err != nil {
		return 0, 0, err
	}
	if traceID, err = d.uvarint(); err != nil {
		return 0, 0, err
	}
	return reqID, traceID, d.done()
}

// DecodeTraces parses the answer to a TracesReq. The returned doc aliases
// p — callers that outlive the read buffer must copy it.
func DecodeTraces(p []byte) (reqID uint64, doc []byte, err error) {
	d := dec{p}
	if reqID, err = d.uvarint(); err != nil {
		return 0, nil, err
	}
	n, err := d.uvarint()
	if err != nil {
		return 0, nil, err
	}
	if n > uint64(len(d.b)) {
		return 0, nil, ErrTruncated
	}
	doc = d.b[:n]
	d.b = d.b[n:]
	return reqID, doc, d.done()
}

// ParseFrame splits the first complete frame off b: it validates the
// header and returns the frame type, its payload and the bytes following
// the frame. Incomplete input is ErrTruncated — a stream reader retries
// with more bytes (or uses Reader, which blocks instead).
func ParseFrame(b []byte) (t FrameType, payload, rest []byte, err error) {
	if len(b) < headerLen {
		return 0, nil, nil, ErrTruncated
	}
	n := binary.LittleEndian.Uint32(b)
	if n < 2 {
		return 0, nil, nil, fmt.Errorf("%w: length %d", ErrMalformed, n)
	}
	if n > MaxFrame {
		return 0, nil, nil, fmt.Errorf("%w: %d bytes", ErrTooLarge, n)
	}
	if uint64(len(b)-4) < uint64(n) {
		return 0, nil, nil, ErrTruncated
	}
	if b[4] != ProtocolVersion {
		return 0, nil, nil, fmt.Errorf("%w: %d", ErrVersion, b[4])
	}
	t = FrameType(b[5])
	if t == frameInvalid || t >= frameMax {
		return 0, nil, nil, fmt.Errorf("%w: frame type %d", ErrMalformed, b[5])
	}
	end := 4 + int(n)
	return t, b[headerLen:end], b[end:], nil
}

// Reader reads frames off a byte stream, reusing one payload buffer: the
// slice Next returns is valid only until the following Next call. Header
// validation matches ParseFrame.
type Reader struct {
	r        io.Reader
	hdr      [headerLen]byte
	buf      []byte
	checksum bool
	armBody  func(owed bool)
}

// NewReader wraps a byte stream (typically a net.Conn or a bufio.Reader
// over one).
func NewReader(r io.Reader) *Reader { return &Reader{r: r} }

// EnableChecksum switches the reader to checksummed framing: every
// subsequent frame must end in the CRC32-C trailer Seal appends, which is
// verified and stripped before the payload is returned. Call it after the
// handshake once the peer's Hello/Welcome confirmed HelloChecksum (those
// two frames are never sealed). A bad trailer surfaces as ErrChecksum.
func (r *Reader) EnableChecksum() { r.checksum = true }

// ArmBody registers a hook called with owed=true once a frame header has
// arrived (a body is now due) and owed=false when the frame is complete.
// Callers use it to arm a read deadline on the underlying conn: the CRC
// trailer does not cover the length prefix, so a corrupted length that
// overstates the body would otherwise block ReadFull forever on a stream
// whose framing is already lost — the one corruption a checksum cannot
// turn into a prompt error.
func (r *Reader) ArmBody(f func(owed bool)) { r.armBody = f }

// Next reads one frame, blocking until it is complete. A clean EOF on a
// frame boundary is io.EOF; EOF mid-frame is io.ErrUnexpectedEOF.
func (r *Reader) Next() (FrameType, []byte, error) {
	if _, err := io.ReadFull(r.r, r.hdr[:]); err != nil {
		return 0, nil, err
	}
	n := binary.LittleEndian.Uint32(r.hdr[:])
	if n < 2 {
		return 0, nil, fmt.Errorf("%w: length %d", ErrMalformed, n)
	}
	if n > MaxFrame {
		return 0, nil, fmt.Errorf("%w: %d bytes", ErrTooLarge, n)
	}
	if r.hdr[4] != ProtocolVersion {
		return 0, nil, fmt.Errorf("%w: %d", ErrVersion, r.hdr[4])
	}
	t := FrameType(r.hdr[5])
	if t == frameInvalid || t >= frameMax {
		return 0, nil, fmt.Errorf("%w: frame type %d", ErrMalformed, r.hdr[5])
	}
	plen := int(n) - 2
	if cap(r.buf) < plen {
		r.buf = make([]byte, plen)
	}
	r.buf = r.buf[:plen]
	if r.armBody != nil {
		r.armBody(true)
	}
	if _, err := io.ReadFull(r.r, r.buf); err != nil {
		if err == io.EOF {
			err = io.ErrUnexpectedEOF
		}
		return 0, nil, err
	}
	if r.armBody != nil {
		r.armBody(false)
	}
	if r.checksum {
		if plen < 4 {
			return 0, nil, fmt.Errorf("%w: %s frame too short for trailer", ErrChecksum, t)
		}
		body := r.buf[:plen-4]
		want := binary.LittleEndian.Uint32(r.buf[plen-4:])
		sum := crc32.Checksum(r.hdr[4:6], castagnoli)
		sum = crc32.Update(sum, castagnoli, body)
		if sum != want {
			return 0, nil, fmt.Errorf("%w: %s frame", ErrChecksum, t)
		}
		return t, body, nil
	}
	return t, r.buf, nil
}
