package wire

import (
	"bytes"
	"encoding/binary"
	"errors"
	"io"
	"math"
	"reflect"
	"testing"

	"cpm/internal/geom"
	"cpm/internal/model"
)

// sampleDiff builds a representative result diff for round trips.
func sampleDiff() model.ResultDiff {
	return model.ResultDiff{
		Query: 42,
		Kind:  model.DiffUpdate,
		Entered: []model.Neighbor{
			{ID: 7, Dist: 0.125}, {ID: 9, Dist: 0.25},
		},
		Exited: []model.ObjectID{3, 11},
		Reranked: []model.Neighbor{
			{ID: 5, Dist: 0.3},
		},
		Result: []model.Neighbor{
			{ID: 7, Dist: 0.125}, {ID: 9, Dist: 0.25}, {ID: 5, Dist: 0.3},
		},
	}
}

// sampleFrames encodes one of every frame type, in order.
func sampleFrames() [][]byte {
	batch := model.Batch{
		Objects: []model.Update{
			model.MoveUpdate(1, geom.Point{X: 0.1, Y: 0.2}, geom.Point{X: 0.3, Y: 0.4}),
			model.InsertUpdate(2, geom.Point{X: 0.5, Y: 0.6}),
			model.DeleteUpdate(3, geom.Point{X: 0.7, Y: 0.8}),
		},
		Queries: []model.QueryUpdate{
			{ID: 4, Kind: model.QueryMove, NewPoints: []geom.Point{{X: 0.9, Y: 0.1}}},
			{ID: 5, Kind: model.QueryTerminate},
		},
	}
	return [][]byte{
		AppendHello(nil, HelloSyncDiffs),
		AppendWelcome(nil, 0xDEADBEEF),
		AppendBootstrap(nil, 1, []BootstrapObject{{ID: 1, Pos: geom.Point{X: 0.1, Y: 0.9}}, {ID: 2, Pos: geom.Point{X: 0.2, Y: 0.8}}}),
		AppendTick(nil, 2, batch),
		AppendRegister(nil, 3, Register{ID: 10, Kind: KindPoint, K: 8, Points: []geom.Point{{X: 0.4, Y: 0.4}}}),
		AppendRegister(nil, 4, Register{ID: 11, Kind: KindAgg, K: 4, Agg: geom.AggMax, Points: []geom.Point{{X: 0.1, Y: 0.1}, {X: 0.9, Y: 0.9}}}),
		AppendRegister(nil, 5, Register{ID: 12, Kind: KindConstrained, K: 2, Points: []geom.Point{{X: 0.5, Y: 0.5}}, Region: geom.Rect{Lo: geom.Point{X: 0.2, Y: 0.2}, Hi: geom.Point{X: 0.8, Y: 0.8}}}),
		AppendRegister(nil, 6, Register{ID: 13, Kind: KindRange, Points: []geom.Point{{X: 0.3, Y: 0.3}}, Radius: 0.05}),
		AppendMoveQuery(nil, 7, 10, []geom.Point{{X: 0.6, Y: 0.6}}),
		AppendRemoveQuery(nil, 8, 11),
		AppendResultReq(nil, 9, 10),
		AppendSubscribe(nil, 10, Subscribe{SubID: 1, Buffer: 64, Policy: 1, Snapshot: true, Queries: []model.QueryID{10, 12}, Resume: []ResumePoint{{Query: 10, Seq: 77}}}),
		AppendUnsubscribe(nil, 11, 1),
		AppendAck(nil, 12, ""),
		AppendAck(nil, 13, "cpm: some failure"),
		AppendResult(nil, 14, 10, true, []model.Neighbor{{ID: 1, Dist: 0.01}}),
		AppendEvent(nil, 1, 99, sampleDiff()),
		AppendSnapshot(nil, Snapshot{SubID: 1, Query: 10, Live: true, ResumeSeq: 77, Result: []model.Neighbor{{ID: 1, Dist: 0.01}}}),
		AppendGap(nil, Gap{SubID: 1, From: 5, To: 9}),
		AppendStatsReq(nil, 15),
		AppendStats(nil, 15, []Stat{{Name: "cpm_server_frames_in_total", Value: 12345}, {Name: "cpm_monitor_cycle_ns_p99_ns", Value: -1}}),
		AppendDiffs(nil, 16, []model.ResultDiff{sampleDiff(), {Query: 2, Kind: model.DiffRemove, Exited: []model.ObjectID{4}}}),
		AppendReset(nil, 17),
	}
}

// TestRoundTrip encodes every frame type, re-parses it and compares the
// decoded values field by field.
func TestRoundTrip(t *testing.T) {
	check := func(frame []byte, want FrameType, verify func(p []byte) error) {
		t.Helper()
		typ, payload, rest, err := ParseFrame(frame)
		if err != nil {
			t.Fatalf("%v: ParseFrame: %v", want, err)
		}
		if typ != want || len(rest) != 0 {
			t.Fatalf("ParseFrame = (%v, rest %d), want (%v, 0)", typ, len(rest), want)
		}
		if err := verify(payload); err != nil {
			t.Fatalf("%v: %v", want, err)
		}
	}

	for _, flags := range []uint8{0, HelloSyncDiffs, 0xFF} {
		check(AppendHello(nil, flags), FrameHello, func(p []byte) error {
			got, err := DecodeHello(p)
			if err != nil {
				return err
			}
			if got != flags {
				t.Fatalf("hello flags = %#x, want %#x", got, flags)
			}
			return nil
		})
	}
	for _, inst := range []uint64{0, 7, 1<<64 - 1} {
		check(AppendWelcome(nil, inst), FrameWelcome, func(p []byte) error {
			got, flags, err := DecodeWelcome(p)
			if err != nil {
				return err
			}
			if got != inst || flags != 0 {
				t.Fatalf("welcome = (%d, %#x), want (%d, 0)", got, flags, inst)
			}
			return nil
		})
	}
	// Legacy Hello/Welcome frames carry only the magic; the optional
	// trailing fields must decode as zero.
	legacy := beginFrame(nil, FrameHello)
	legacy = binary.LittleEndian.AppendUint32(legacy, Magic)
	legacy = endFrame(legacy, 0)
	check(legacy, FrameHello, func(p []byte) error {
		flags, err := DecodeHello(p)
		if err != nil {
			return err
		}
		if flags != 0 {
			t.Fatalf("legacy hello flags = %#x, want 0", flags)
		}
		if inst, wflags, err := DecodeWelcome(p); err != nil || inst != 0 || wflags != 0 {
			t.Fatalf("legacy welcome = (%d, %#x, %v), want (0, 0, nil)", inst, wflags, err)
		}
		return nil
	})

	objs := []BootstrapObject{{ID: 1, Pos: geom.Point{X: 0.1, Y: 0.9}}, {ID: -2, Pos: geom.Point{X: 0.2, Y: 0.8}}}
	check(AppendBootstrap(nil, 17, objs), FrameBootstrap, func(p []byte) error {
		req, got, err := DecodeBootstrap(p)
		if err != nil {
			return err
		}
		if req != 17 || !reflect.DeepEqual(got, objs) {
			t.Fatalf("bootstrap = (%d, %+v)", req, got)
		}
		return nil
	})

	batch := model.Batch{
		Objects: []model.Update{
			model.MoveUpdate(1, geom.Point{X: 0.1, Y: 0.2}, geom.Point{X: 0.3, Y: 0.4}),
			model.InsertUpdate(2, geom.Point{X: 0.5, Y: 0.6}),
			model.DeleteUpdate(3, geom.Point{X: 0.7, Y: 0.8}),
		},
		Queries: []model.QueryUpdate{
			{ID: 4, Kind: model.QueryMove, NewPoints: []geom.Point{{X: 0.9, Y: 0.1}, {X: 0.2, Y: 0.3}}},
			{ID: 5, Kind: model.QueryTerminate},
		},
	}
	check(AppendTick(nil, 18, batch), FrameTick, func(p []byte) error {
		req, got, err := DecodeTick(p)
		if err != nil {
			return err
		}
		if req != 18 || !reflect.DeepEqual(got, batch) {
			t.Fatalf("tick = (%d, %+v), want (18, %+v)", req, got, batch)
		}
		return nil
	})

	regs := []Register{
		{ID: 10, Kind: KindPoint, K: 8, Points: []geom.Point{{X: 0.4, Y: 0.4}}},
		{ID: 11, Kind: KindAgg, K: 4, Agg: geom.AggMax, Points: []geom.Point{{X: 0.1, Y: 0.1}, {X: 0.9, Y: 0.9}}},
		{ID: 12, Kind: KindConstrained, K: 2, Points: []geom.Point{{X: 0.5, Y: 0.5}}, Region: geom.Rect{Lo: geom.Point{X: 0.2, Y: 0.2}, Hi: geom.Point{X: 0.8, Y: 0.8}}},
		{ID: 13, Kind: KindRange, Points: []geom.Point{{X: 0.3, Y: 0.3}}, Radius: 0.05},
	}
	for _, reg := range regs {
		check(AppendRegister(nil, 19, reg), FrameRegister, func(p []byte) error {
			req, got, err := DecodeRegister(p)
			if err != nil {
				return err
			}
			if req != 19 || !reflect.DeepEqual(got, reg) {
				t.Fatalf("register = (%d, %+v), want (19, %+v)", req, got, reg)
			}
			return nil
		})
	}

	pts := []geom.Point{{X: 0.6, Y: 0.6}}
	check(AppendMoveQuery(nil, 20, 10, pts), FrameMoveQuery, func(p []byte) error {
		req, id, got, err := DecodeMoveQuery(p)
		if err != nil {
			return err
		}
		if req != 20 || id != 10 || !reflect.DeepEqual(got, pts) {
			t.Fatalf("movequery = (%d, %d, %v)", req, id, got)
		}
		return nil
	})

	check(AppendRemoveQuery(nil, 21, 11), FrameRemoveQuery, func(p []byte) error {
		req, id, err := DecodeRemoveQuery(p)
		if err != nil {
			return err
		}
		if req != 21 || id != 11 {
			t.Fatalf("removequery = (%d, %d)", req, id)
		}
		return nil
	})

	check(AppendResultReq(nil, 22, 12), FrameResultReq, func(p []byte) error {
		req, id, err := DecodeResultReq(p)
		if err != nil {
			return err
		}
		if req != 22 || id != 12 {
			t.Fatalf("resultreq = (%d, %d)", req, id)
		}
		return nil
	})

	sub := Subscribe{SubID: 3, Buffer: 128, Policy: 1, Snapshot: true, Reset: true,
		Queries: []model.QueryID{10, 12}, Resume: []ResumePoint{{Query: 10, Seq: 77}, {Query: 12, Seq: 3}}}
	check(AppendSubscribe(nil, 23, sub), FrameSubscribe, func(p []byte) error {
		req, got, err := DecodeSubscribe(p)
		if err != nil {
			return err
		}
		if req != 23 || !reflect.DeepEqual(got, sub) {
			t.Fatalf("subscribe = (%d, %+v), want (23, %+v)", req, got, sub)
		}
		return nil
	})

	check(AppendUnsubscribe(nil, 24, 3), FrameUnsubscribe, func(p []byte) error {
		req, id, err := DecodeUnsubscribe(p)
		if err != nil {
			return err
		}
		if req != 24 || id != 3 {
			t.Fatalf("unsubscribe = (%d, %d)", req, id)
		}
		return nil
	})

	for _, msg := range []string{"", "cpm: some failure"} {
		check(AppendAck(nil, 25, msg), FrameAck, func(p []byte) error {
			req, got, err := DecodeAck(p)
			if err != nil {
				return err
			}
			if req != 25 || got != msg {
				t.Fatalf("ack = (%d, %q), want (25, %q)", req, got, msg)
			}
			return nil
		})
	}

	res := []model.Neighbor{{ID: 1, Dist: 0.01}, {ID: 2, Dist: math.Inf(1)}}
	check(AppendResult(nil, 26, 10, true, res), FrameResult, func(p []byte) error {
		req, id, live, got, err := DecodeResult(p)
		if err != nil {
			return err
		}
		if req != 26 || id != 10 || !live || !reflect.DeepEqual(got, res) {
			t.Fatalf("result = (%d, %d, %v, %v)", req, id, live, got)
		}
		return nil
	})

	diffs := []model.ResultDiff{
		sampleDiff(),
		{Query: 1, Kind: model.DiffInstall, Entered: []model.Neighbor{{ID: 2, Dist: 0.5}}, Result: []model.Neighbor{{ID: 2, Dist: 0.5}}},
		{Query: 2, Kind: model.DiffRemove, Exited: []model.ObjectID{4, 5}},
		{Query: 3, Kind: model.DiffUpdate}, // empty delta, empty result
	}
	for _, d := range diffs {
		check(AppendEvent(nil, 9, 1234, d), FrameEvent, func(p []byte) error {
			ev, err := DecodeEvent(p)
			if err != nil {
				return err
			}
			want := Event{SubID: 9, Seq: 1234, Diff: d}
			if !reflect.DeepEqual(ev, want) {
				t.Fatalf("event = %+v, want %+v", ev, want)
			}
			return nil
		})
	}

	snap := Snapshot{SubID: 9, Query: 10, Live: true, ResumeSeq: 77, Result: res}
	check(AppendSnapshot(nil, snap), FrameSnapshot, func(p []byte) error {
		got, err := DecodeSnapshot(p)
		if err != nil {
			return err
		}
		if !reflect.DeepEqual(got, snap) {
			t.Fatalf("snapshot = %+v, want %+v", got, snap)
		}
		return nil
	})
	dead := Snapshot{SubID: 9, Query: 11, Live: false, ResumeSeq: 5}
	check(AppendSnapshot(nil, dead), FrameSnapshot, func(p []byte) error {
		got, err := DecodeSnapshot(p)
		if err != nil {
			return err
		}
		if !reflect.DeepEqual(got, dead) {
			t.Fatalf("dead snapshot = %+v, want %+v", got, dead)
		}
		return nil
	})

	gap := Gap{SubID: 9, From: 5, To: 9}
	check(AppendGap(nil, gap), FrameGap, func(p []byte) error {
		got, err := DecodeGap(p)
		if err != nil {
			return err
		}
		if got != gap {
			t.Fatalf("gap = %+v, want %+v", got, gap)
		}
		return nil
	})

	check(AppendStatsReq(nil, 27), FrameStatsReq, func(p []byte) error {
		req, err := DecodeStatsReq(p)
		if err != nil {
			return err
		}
		if req != 27 {
			t.Fatalf("statsreq = %d, want 27", req)
		}
		return nil
	})

	for _, stats := range [][]Stat{
		nil,
		{{Name: "cpm_server_connections_active", Value: 3}, {Name: "cpm_monitor_cycle_ns_p99_ns", Value: 1 << 40}, {Name: "", Value: -7}},
	} {
		check(AppendStats(nil, 28, stats), FrameStats, func(p []byte) error {
			req, got, err := DecodeStats(p)
			if err != nil {
				return err
			}
			if req != 28 || !reflect.DeepEqual(got, stats) {
				t.Fatalf("stats = (%d, %+v), want (28, %+v)", req, got, stats)
			}
			return nil
		})
	}

	for _, ds := range [][]model.ResultDiff{
		nil,
		{sampleDiff()},
		{{Query: 2, Kind: model.DiffRemove, Exited: []model.ObjectID{4, 5}}, sampleDiff()},
	} {
		check(AppendDiffs(nil, 29, ds), FrameDiffs, func(p []byte) error {
			req, got, err := DecodeDiffs(p)
			if err != nil {
				return err
			}
			if req != 29 || !reflect.DeepEqual(got, ds) {
				t.Fatalf("diffs = (%d, %+v), want (29, %+v)", req, got, ds)
			}
			return nil
		})
	}

	check(AppendReset(nil, 30), FrameReset, func(p []byte) error {
		req, err := DecodeReset(p)
		if err != nil {
			return err
		}
		if req != 30 {
			t.Fatalf("reset = %d, want 30", req)
		}
		return nil
	})
}

// TestReaderStream writes every sample frame into one stream and reads
// them back via Reader, checking types and clean EOF handling.
func TestReaderStream(t *testing.T) {
	frames := sampleFrames()
	var stream bytes.Buffer
	for _, f := range frames {
		stream.Write(f)
	}
	r := NewReader(&stream)
	for i, f := range frames {
		typ, payload, err := r.Next()
		if err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
		if want := FrameType(f[5]); typ != want {
			t.Fatalf("frame %d: type %v, want %v", i, typ, want)
		}
		if !bytes.Equal(payload, f[headerLen:]) {
			t.Fatalf("frame %d: payload mismatch", i)
		}
	}
	if _, _, err := r.Next(); err != io.EOF {
		t.Fatalf("end of stream: %v, want io.EOF", err)
	}

	// EOF mid-frame must be ErrUnexpectedEOF, both in the header and in
	// the payload.
	whole := AppendEvent(nil, 1, 2, sampleDiff())
	for _, cut := range []int{3, headerLen + 1} {
		r := NewReader(bytes.NewReader(whole[:cut]))
		if _, _, err := r.Next(); err != io.ErrUnexpectedEOF {
			t.Fatalf("cut at %d: %v, want ErrUnexpectedEOF", cut, err)
		}
	}
}

// TestMalformedRejected feeds structurally broken frames to the parser and
// decoders; every one must error, never panic, never mis-decode.
func TestMalformedRejected(t *testing.T) {
	// Truncations of every sample frame at every byte boundary.
	for _, f := range sampleFrames() {
		typ, payload, _, err := ParseFrame(f)
		if err != nil {
			t.Fatalf("sample frame invalid: %v", err)
		}
		for cut := 0; cut < len(f); cut++ {
			if _, _, _, err := ParseFrame(f[:cut]); err == nil {
				t.Fatalf("%v truncated to %d bytes accepted by ParseFrame", typ, cut)
			}
		}
		// Truncations of the payload must fail the typed decoder. One
		// exception: Hello/Welcome cut back to the bare 4-byte magic is
		// the valid legacy form (flags/instance are optional trailing
		// fields).
		for cut := 0; cut < len(payload); cut++ {
			if (typ == FrameHello || typ == FrameWelcome) && cut == 4 {
				continue
			}
			if err := decodeAny(typ, payload[:cut]); err == nil {
				t.Fatalf("%v payload truncated to %d bytes accepted", typ, cut)
			}
		}
		// Trailing garbage must be rejected too. Welcome and Diffs grew
		// optional trailing extensions (the flags byte; the phase
		// trailer), so for them the garbage must exceed what the
		// extension could absorb.
		garbage := []byte{0xFF}
		switch typ {
		case FrameWelcome:
			garbage = []byte{0xFF, 0xFF} // flags byte + one extra
		case FrameDiffs:
			garbage = bytes.Repeat([]byte{0x01}, 5) // 4 phase uvarints + one extra
		}
		if err := decodeAny(typ, append(append([]byte(nil), payload...), garbage...)); err == nil {
			t.Fatalf("%v payload with trailing bytes accepted", typ)
		}
	}

	// Header corruption.
	good := AppendGap(nil, Gap{SubID: 1, From: 2, To: 3})
	bad := append([]byte(nil), good...)
	bad[4] = 99 // version
	if _, _, _, err := ParseFrame(bad); !errors.Is(err, ErrVersion) {
		t.Fatalf("bad version: %v", err)
	}
	bad = append([]byte(nil), good...)
	bad[5] = 200 // frame type
	if _, _, _, err := ParseFrame(bad); !errors.Is(err, ErrMalformed) {
		t.Fatalf("bad type: %v", err)
	}
	bad = append([]byte(nil), good...)
	bad[0], bad[1], bad[2], bad[3] = 0xFF, 0xFF, 0xFF, 0x7F // enormous length
	if _, _, _, err := ParseFrame(bad); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("huge length: %v", err)
	}
	if _, _, _, err := ParseFrame([]byte{1, 0, 0, 0, 1, 1}); !errors.Is(err, ErrMalformed) {
		t.Fatal("length below minimum accepted")
	}

	// A count field larger than the remaining payload must be rejected
	// before allocation (here: a neighbors count of 2^40).
	p := []byte{26 /* reqID */, 20 /* query id 10 zigzag */, 1 /* live */}
	p = append(p, 0x80, 0x80, 0x80, 0x80, 0x80, 0x80, 0x01) // uvarint 2^42-ish
	if _, _, _, _, err := DecodeResult(p); !errors.Is(err, ErrMalformed) {
		t.Fatalf("oversized count: %v", err)
	}

	// Bad magic in Hello.
	h := AppendHello(nil, 0)
	h[headerLen] ^= 0xFF
	_, payload, _, _ := ParseFrame(h)
	if _, err := DecodeHello(payload); !errors.Is(err, ErrMalformed) {
		t.Fatalf("bad magic: %v", err)
	}
}

// decodeAny dispatches a payload to the decoder of its frame type — shared
// by the truncation sweep and the fuzz target.
func decodeAny(t FrameType, p []byte) error {
	switch t {
	case FrameHello:
		_, err := DecodeHello(p)
		return err
	case FrameWelcome:
		_, _, err := DecodeWelcome(p)
		return err
	case FrameBootstrap:
		_, _, err := DecodeBootstrap(p)
		return err
	case FrameTick:
		_, _, err := DecodeTick(p)
		return err
	case FrameRegister:
		_, _, err := DecodeRegister(p)
		return err
	case FrameMoveQuery:
		_, _, _, err := DecodeMoveQuery(p)
		return err
	case FrameRemoveQuery:
		_, _, err := DecodeRemoveQuery(p)
		return err
	case FrameResultReq:
		_, _, err := DecodeResultReq(p)
		return err
	case FrameSubscribe:
		_, _, err := DecodeSubscribe(p)
		return err
	case FrameUnsubscribe:
		_, _, err := DecodeUnsubscribe(p)
		return err
	case FrameAck:
		_, _, err := DecodeAck(p)
		return err
	case FrameResult:
		_, _, _, _, err := DecodeResult(p)
		return err
	case FrameEvent:
		_, err := DecodeEvent(p)
		return err
	case FrameSnapshot:
		_, err := DecodeSnapshot(p)
		return err
	case FrameGap:
		_, err := DecodeGap(p)
		return err
	case FrameStatsReq:
		_, err := DecodeStatsReq(p)
		return err
	case FrameStats:
		_, _, err := DecodeStats(p)
		return err
	case FrameDiffs:
		_, _, _, err := DecodeDiffsPhases(p)
		return err
	case FrameReset:
		_, err := DecodeReset(p)
		return err
	case FrameTraceCtx:
		_, _, err := DecodeTraceCtx(p)
		return err
	case FrameTracesReq:
		_, _, err := DecodeTracesReq(p)
		return err
	case FrameTraces:
		_, _, err := DecodeTraces(p)
		return err
	default:
		return ErrMalformed
	}
}

// TestEncodeSteadyStateAllocs is the acceptance bar of the serving layer's
// hot path: encoding a result diff into a reused buffer allocates nothing.
func TestEncodeSteadyStateAllocs(t *testing.T) {
	d := sampleDiff()
	buf := AppendEvent(nil, 1, 0, d) // warm the buffer
	var seq uint64
	allocs := testing.AllocsPerRun(200, func() {
		buf = AppendEvent(buf[:0], 1, seq, d)
		seq++
	})
	if allocs != 0 {
		t.Fatalf("steady-state AppendEvent allocates %.1f/op, want 0", allocs)
	}
}
