package wire

import (
	"fmt"
	"os"
	"path/filepath"
	"strconv"
	"strings"
	"testing"

	"cpm/internal/chaos"
)

// chaosCorpusDir holds decoder-rejection seeds minted by the chaos layer:
// valid frames put through the same bit-flip mutation the Corrupt fault
// applies on a live link, kept only when the decoder rejects the result.
// They feed FuzzFrame (the fuzzer mutates onward from real corruption
// shapes) and TestChaosCorpusRejected (the rejections stay rejections).
const chaosCorpusDir = "testdata/fuzz/FuzzFrame"

// mintChaosCorpus regenerates the seed-chaos-* files:
//
//	WIRE_MINT_CHAOS_CORPUS=1 go test ./internal/wire -run TestMintChaosCorpus
//
// Minting is deterministic (chaos.CorruptBytes is seeded), so a re-mint
// only changes the files when the frame encodings themselves change.
func TestMintChaosCorpus(t *testing.T) {
	if os.Getenv("WIRE_MINT_CHAOS_CORPUS") == "" {
		t.Skip("set WIRE_MINT_CHAOS_CORPUS=1 to regenerate the chaos corpus")
	}
	frames := sampleFrames()
	minted := 0
	for fi, frame := range frames {
		for seed := int64(1); seed <= 8 && minted < 24; seed++ {
			mut := chaos.CorruptBytes(seed*31+int64(fi), frame, 1+int(seed%3))
			if !frameRejected(mut) {
				continue // corruption survived decoding; not a rejection seed
			}
			name := filepath.Join(chaosCorpusDir, fmt.Sprintf("seed-chaos-%02d", minted))
			body := fmt.Sprintf("go test fuzz v1\n[]byte(%q)\n", mut)
			if err := os.WriteFile(name, []byte(body), 0o644); err != nil {
				t.Fatal(err)
			}
			minted++
			break // one rejection per source frame is plenty of shape variety
		}
	}
	t.Logf("minted %d chaos corpus files", minted)
	if minted == 0 {
		t.Fatal("no corruption was rejected — the decoder validates nothing?")
	}
}

// TestChaosCorpusRejected walks the checked-in seed-chaos-* corpus and
// asserts every entry still fails to decode — without panicking. A
// corruption the decoder once caught must never start passing silently.
func TestChaosCorpusRejected(t *testing.T) {
	files, err := filepath.Glob(filepath.Join(chaosCorpusDir, "seed-chaos-*"))
	if err != nil {
		t.Fatal(err)
	}
	if len(files) == 0 {
		t.Fatal("no seed-chaos-* corpus checked in; run TestMintChaosCorpus")
	}
	for _, name := range files {
		raw, err := os.ReadFile(name)
		if err != nil {
			t.Fatal(err)
		}
		data, err := parseCorpusFile(string(raw))
		if err != nil {
			t.Fatalf("%s: %v", name, err)
		}
		if !frameRejected(data) {
			t.Errorf("%s: corrupted frame now decodes cleanly — a rejection regressed", name)
		}
	}
}

// frameRejected reports whether b fails to parse as a frame or fails its
// typed decoder — the property the chaos corpus entries are selected for.
func frameRejected(b []byte) bool {
	typ, payload, _, err := ParseFrame(b)
	if err != nil {
		return true
	}
	return decodeAny(typ, payload) != nil
}

// parseCorpusFile extracts the byte literal from one Go fuzz corpus file
// ("go test fuzz v1" followed by []byte("...")).
func parseCorpusFile(s string) ([]byte, error) {
	lines := strings.Split(strings.TrimSpace(s), "\n")
	if len(lines) < 2 || strings.TrimSpace(lines[0]) != "go test fuzz v1" {
		return nil, fmt.Errorf("not a v1 fuzz corpus file")
	}
	lit := strings.TrimSpace(lines[1])
	lit = strings.TrimPrefix(lit, "[]byte(")
	lit = strings.TrimSuffix(lit, ")")
	str, err := strconv.Unquote(lit)
	if err != nil {
		return nil, fmt.Errorf("bad byte literal: %v", err)
	}
	return []byte(str), nil
}
