package wire

import (
	"bytes"
	"errors"
	"io"
	"testing"

	"cpm/internal/model"
)

// sealFrame encodes one Ack frame and seals it, returning the sealed bytes.
func sealFrame(t *testing.T, reqID uint64, msg string) []byte {
	t.Helper()
	buf := AppendAck(nil, reqID, msg)
	return Seal(buf, 0)
}

// TestSealRoundTrip: a sealed frame decodes identically through a
// checksum-enabled Reader, and the trailer is stripped before decoding.
func TestSealRoundTrip(t *testing.T) {
	plain := AppendAck(nil, 7, "boom")
	sealed := sealFrame(t, 7, "boom")
	if len(sealed) != len(plain)+4 {
		t.Fatalf("sealed frame is %d bytes, want plain %d + 4", len(sealed), len(plain))
	}

	r := NewReader(bytes.NewReader(sealed))
	r.EnableChecksum()
	ft, payload, err := r.Next()
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	if ft != FrameAck {
		t.Fatalf("frame type %v, want ack", ft)
	}
	reqID, errMsg, err := DecodeAck(payload)
	if err != nil {
		t.Fatalf("DecodeAck: %v", err)
	}
	if reqID != 7 || errMsg != "boom" {
		t.Fatalf("decoded (%d, %q), want (7, boom)", reqID, errMsg)
	}
}

// TestSealMidBuffer: Seal back-patches the right frame when the buffer
// already holds earlier frames (the server's coalescing writer).
func TestSealMidBuffer(t *testing.T) {
	buf := AppendAck(nil, 1, "")
	buf = Seal(buf, 0)
	mark := len(buf)
	buf = AppendResult(buf, 2, 9, true, []model.Neighbor{{ID: 3, Dist: 1.5}})
	buf = Seal(buf, mark)

	r := NewReader(bytes.NewReader(buf))
	r.EnableChecksum()
	for i := 0; i < 2; i++ {
		if _, _, err := r.Next(); err != nil {
			t.Fatalf("frame %d: %v", i, err)
		}
	}
	if _, _, err := r.Next(); err != io.EOF {
		t.Fatalf("after two frames: %v, want EOF", err)
	}
}

// TestChecksumDetectsCorruption: flipping any single bit of a sealed frame
// (header version/type, payload, or trailer) must surface an error from a
// checksum-enabled Reader — never a silently different decode.
func TestChecksumDetectsCorruption(t *testing.T) {
	sealed := sealFrame(t, 42, "ok")
	for i := 4 * 8; i < len(sealed)*8; i++ { // skip length prefix: covered below
		mut := append([]byte(nil), sealed...)
		mut[i/8] ^= 1 << (i % 8)
		r := NewReader(bytes.NewReader(mut))
		r.EnableChecksum()
		if _, _, err := r.Next(); err == nil {
			t.Fatalf("bit flip at offset %d.%d went undetected", i/8, i%8)
		}
	}
}

// TestChecksumMismatchIsErrChecksum: corruption confined to the payload
// region reports ErrChecksum specifically.
func TestChecksumMismatchIsErrChecksum(t *testing.T) {
	sealed := sealFrame(t, 42, "ok")
	sealed[headerLen+1] ^= 0x10
	r := NewReader(bytes.NewReader(sealed))
	r.EnableChecksum()
	if _, _, err := r.Next(); !errors.Is(err, ErrChecksum) {
		t.Fatalf("payload corruption: %v, want ErrChecksum", err)
	}
}

// TestChecksumRejectsUnsealed: a checksum-enabled Reader must reject plain
// frames (a peer that did not honor the negotiation), including ones too
// short to hold a trailer.
func TestChecksumRejectsUnsealed(t *testing.T) {
	plain := AppendStatsReq(nil, 1) // 1-byte payload: shorter than a trailer
	r := NewReader(bytes.NewReader(plain))
	r.EnableChecksum()
	if _, _, err := r.Next(); !errors.Is(err, ErrChecksum) {
		t.Fatalf("short unsealed frame: %v, want ErrChecksum", err)
	}

	plain = AppendAck(nil, 99, "long enough payload")
	r = NewReader(bytes.NewReader(plain))
	r.EnableChecksum()
	if _, _, err := r.Next(); !errors.Is(err, ErrChecksum) {
		t.Fatalf("unsealed frame: %v, want ErrChecksum", err)
	}
}

// TestPlainReaderSkipsVerification: without EnableChecksum the trailer is
// not stripped — sealed and plain framing are distinct modes, not
// auto-detected.
func TestPlainReaderSkipsVerification(t *testing.T) {
	sealed := sealFrame(t, 5, "")
	r := NewReader(bytes.NewReader(sealed))
	_, payload, err := r.Next()
	if err != nil {
		t.Fatalf("Next: %v", err)
	}
	if _, _, err := DecodeAck(payload); err == nil {
		t.Fatal("plain decode of sealed frame succeeded; trailer should look like trailing garbage")
	}
}
