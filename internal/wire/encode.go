package wire

import (
	"encoding/binary"
	"hash/crc32"
	"math"

	"cpm/internal/geom"
	"cpm/internal/model"
)

// Encoders. Every Append* function appends one complete frame — header and
// payload — to dst and returns the extended slice, allocating only when
// dst runs out of capacity. Senders that reuse one buffer (dst = dst[:0]
// between frames) therefore encode allocation-free in steady state; the
// frame's length prefix is back-patched once the payload size is known.

// beginFrame appends the header with a zero length placeholder.
func beginFrame(dst []byte, t FrameType) []byte {
	return append(dst, 0, 0, 0, 0, ProtocolVersion, byte(t))
}

// castagnoli is the CRC32-C polynomial table used for HelloChecksum frame
// trailers (hardware-accelerated on amd64/arm64).
var castagnoli = crc32.MakeTable(crc32.Castagnoli)

// Seal appends the CRC32-C trailer to the frame that starts at index mark
// in dst — covering version, type and payload — and re-patches the length
// prefix to include it. Call it once per frame, after the Append* encoder,
// on connections that negotiated HelloChecksum; the peer's Reader must
// have checksum verification enabled or it will reject the trailer as
// trailing garbage. Like the encoders it allocates only when dst runs out
// of capacity.
func Seal(dst []byte, mark int) []byte {
	sum := crc32.Checksum(dst[mark+4:], castagnoli)
	dst = binary.LittleEndian.AppendUint32(dst, sum)
	binary.LittleEndian.PutUint32(dst[mark:], uint32(len(dst)-mark-4))
	return dst
}

// endFrame back-patches the length field of the frame that started at
// index start in dst.
func endFrame(dst []byte, start int) []byte {
	binary.LittleEndian.PutUint32(dst[start:], uint32(len(dst)-start-4))
	return dst
}

func appendFloat(dst []byte, f float64) []byte {
	return binary.LittleEndian.AppendUint64(dst, math.Float64bits(f))
}

func appendPoint(dst []byte, p geom.Point) []byte {
	return appendFloat(appendFloat(dst, p.X), p.Y)
}

func appendBool(dst []byte, b bool) []byte {
	if b {
		return append(dst, 1)
	}
	return append(dst, 0)
}

func appendString(dst []byte, s string) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(s)))
	return append(dst, s...)
}

func appendPoints(dst []byte, pts []geom.Point) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(pts)))
	for _, p := range pts {
		dst = appendPoint(dst, p)
	}
	return dst
}

func appendNeighbors(dst []byte, ns []model.Neighbor) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(ns)))
	for _, n := range ns {
		dst = binary.AppendVarint(dst, int64(n.ID))
		dst = appendFloat(dst, n.Dist)
	}
	return dst
}

func appendObjectIDs(dst []byte, ids []model.ObjectID) []byte {
	dst = binary.AppendUvarint(dst, uint64(len(ids)))
	for _, id := range ids {
		dst = binary.AppendVarint(dst, int64(id))
	}
	return dst
}

// appendDiff encodes a result diff: query, kind, the three deltas and the
// full result. A DiffRemove carries no result (decoders restore nil).
func appendDiff(dst []byte, d model.ResultDiff) []byte {
	dst = binary.AppendVarint(dst, int64(d.Query))
	dst = append(dst, byte(d.Kind))
	dst = appendNeighbors(dst, d.Entered)
	dst = appendObjectIDs(dst, d.Exited)
	dst = appendNeighbors(dst, d.Reranked)
	if d.Kind != model.DiffRemove {
		dst = appendNeighbors(dst, d.Result)
	}
	return dst
}

// AppendHello appends the connection-opening frame a client sends first.
// flags is a bitmask of Hello* bits (HelloSyncDiffs); peers that predate
// the flags byte omit it, which decodes as 0.
func AppendHello(dst []byte, flags uint8) []byte {
	start := len(dst)
	dst = beginFrame(dst, FrameHello)
	dst = binary.LittleEndian.AppendUint32(dst, Magic)
	dst = append(dst, flags)
	return endFrame(dst, start)
}

// AppendWelcome appends the server's answer to a valid Hello. instance is
// a random per-server-lifetime identifier: a reconnecting peer that sees a
// different instance knows the server restarted and lost all state. Peers
// that predate the field omit it, which decodes as 0.
func AppendWelcome(dst []byte, instance uint64) []byte {
	start := len(dst)
	dst = beginFrame(dst, FrameWelcome)
	dst = binary.LittleEndian.AppendUint32(dst, Magic)
	dst = binary.AppendUvarint(dst, instance)
	return endFrame(dst, start)
}

// AppendWelcomeFlags appends a Welcome frame with a trailing flags byte
// (WelcomeTrace). Only sent to clients whose Hello carried HelloTrace —
// older clients reject trailing bytes, and they never ask.
func AppendWelcomeFlags(dst []byte, instance uint64, flags uint8) []byte {
	start := len(dst)
	dst = beginFrame(dst, FrameWelcome)
	dst = binary.LittleEndian.AppendUint32(dst, Magic)
	dst = binary.AppendUvarint(dst, instance)
	dst = append(dst, flags)
	return endFrame(dst, start)
}

// AppendBootstrap appends an initial-population frame.
func AppendBootstrap(dst []byte, reqID uint64, objs []BootstrapObject) []byte {
	start := len(dst)
	dst = beginFrame(dst, FrameBootstrap)
	dst = binary.AppendUvarint(dst, reqID)
	dst = binary.AppendUvarint(dst, uint64(len(objs)))
	for _, o := range objs {
		dst = binary.AppendVarint(dst, int64(o.ID))
		dst = appendPoint(dst, o.Pos)
	}
	return endFrame(dst, start)
}

// AppendTick appends one update batch. Move updates carry old and new
// positions, Insert only new, Delete only old — the canonical tuples of
// the paper's streams, nothing more.
func AppendTick(dst []byte, reqID uint64, b model.Batch) []byte {
	start := len(dst)
	dst = beginFrame(dst, FrameTick)
	dst = binary.AppendUvarint(dst, reqID)
	dst = binary.AppendUvarint(dst, uint64(len(b.Objects)))
	for _, u := range b.Objects {
		dst = binary.AppendVarint(dst, int64(u.ID))
		dst = append(dst, byte(u.Kind))
		switch u.Kind {
		case model.Move:
			dst = appendPoint(dst, u.Old)
			dst = appendPoint(dst, u.New)
		case model.Insert:
			dst = appendPoint(dst, u.New)
		case model.Delete:
			dst = appendPoint(dst, u.Old)
		}
	}
	dst = binary.AppendUvarint(dst, uint64(len(b.Queries)))
	for _, q := range b.Queries {
		dst = binary.AppendVarint(dst, int64(q.ID))
		dst = append(dst, byte(q.Kind))
		dst = appendPoints(dst, q.NewPoints)
	}
	return endFrame(dst, start)
}

// AppendRegister appends a query-registration frame.
func AppendRegister(dst []byte, reqID uint64, r Register) []byte {
	start := len(dst)
	dst = beginFrame(dst, FrameRegister)
	dst = binary.AppendUvarint(dst, reqID)
	dst = binary.AppendVarint(dst, int64(r.ID))
	dst = append(dst, byte(r.Kind))
	dst = binary.AppendUvarint(dst, uint64(r.K))
	dst = append(dst, byte(r.Agg))
	dst = appendPoints(dst, r.Points)
	switch r.Kind {
	case KindRange:
		dst = appendFloat(dst, r.Radius)
	case KindConstrained:
		dst = appendPoint(dst, r.Region.Lo)
		dst = appendPoint(dst, r.Region.Hi)
	}
	return endFrame(dst, start)
}

// AppendMoveQuery appends a query-relocation frame.
func AppendMoveQuery(dst []byte, reqID uint64, id model.QueryID, pts []geom.Point) []byte {
	start := len(dst)
	dst = beginFrame(dst, FrameMoveQuery)
	dst = binary.AppendUvarint(dst, reqID)
	dst = binary.AppendVarint(dst, int64(id))
	dst = appendPoints(dst, pts)
	return endFrame(dst, start)
}

// AppendRemoveQuery appends a query-termination frame.
func AppendRemoveQuery(dst []byte, reqID uint64, id model.QueryID) []byte {
	start := len(dst)
	dst = beginFrame(dst, FrameRemoveQuery)
	dst = binary.AppendUvarint(dst, reqID)
	dst = binary.AppendVarint(dst, int64(id))
	return endFrame(dst, start)
}

// AppendResultReq appends a result-poll request.
func AppendResultReq(dst []byte, reqID uint64, id model.QueryID) []byte {
	start := len(dst)
	dst = beginFrame(dst, FrameResultReq)
	dst = binary.AppendUvarint(dst, reqID)
	dst = binary.AppendVarint(dst, int64(id))
	return endFrame(dst, start)
}

// AppendSubscribe appends a subscription-open frame.
func AppendSubscribe(dst []byte, reqID uint64, s Subscribe) []byte {
	start := len(dst)
	dst = beginFrame(dst, FrameSubscribe)
	dst = binary.AppendUvarint(dst, reqID)
	dst = binary.AppendUvarint(dst, uint64(s.SubID))
	dst = binary.AppendUvarint(dst, uint64(s.Buffer))
	dst = append(dst, s.Policy)
	var flags byte
	if s.Snapshot {
		flags |= 1
	}
	if s.Reset {
		flags |= 2
	}
	dst = append(dst, flags)
	dst = binary.AppendUvarint(dst, uint64(len(s.Queries)))
	for _, id := range s.Queries {
		dst = binary.AppendVarint(dst, int64(id))
	}
	dst = binary.AppendUvarint(dst, uint64(len(s.Resume)))
	for _, rp := range s.Resume {
		dst = binary.AppendVarint(dst, int64(rp.Query))
		dst = binary.AppendUvarint(dst, rp.Seq)
	}
	return endFrame(dst, start)
}

// AppendUnsubscribe appends a subscription-close frame.
func AppendUnsubscribe(dst []byte, reqID uint64, subID uint32) []byte {
	start := len(dst)
	dst = beginFrame(dst, FrameUnsubscribe)
	dst = binary.AppendUvarint(dst, reqID)
	dst = binary.AppendUvarint(dst, uint64(subID))
	return endFrame(dst, start)
}

// AppendAck appends a request acknowledgment; errMsg empty means success.
func AppendAck(dst []byte, reqID uint64, errMsg string) []byte {
	start := len(dst)
	dst = beginFrame(dst, FrameAck)
	dst = binary.AppendUvarint(dst, reqID)
	dst = appendString(dst, errMsg)
	return endFrame(dst, start)
}

// AppendResult appends the answer to a ResultReq. Live false reports an
// uninstalled query (its result is nil).
func AppendResult(dst []byte, reqID uint64, id model.QueryID, live bool, res []model.Neighbor) []byte {
	start := len(dst)
	dst = beginFrame(dst, FrameResult)
	dst = binary.AppendUvarint(dst, reqID)
	dst = binary.AppendVarint(dst, int64(id))
	dst = appendBool(dst, live)
	dst = appendNeighbors(dst, res)
	return endFrame(dst, start)
}

// AppendEvent appends one pushed diff event — the wire hot path. With a
// reused dst it performs no allocation (BenchmarkWireEncode pins 0
// allocs/op).
func AppendEvent(dst []byte, subID uint32, seq uint64, d model.ResultDiff) []byte {
	start := len(dst)
	dst = beginFrame(dst, FrameEvent)
	dst = binary.AppendUvarint(dst, uint64(subID))
	dst = binary.AppendUvarint(dst, seq)
	dst = appendDiff(dst, d)
	return endFrame(dst, start)
}

// AppendSnapshot appends one re-sync snapshot frame.
func AppendSnapshot(dst []byte, s Snapshot) []byte {
	start := len(dst)
	dst = beginFrame(dst, FrameSnapshot)
	dst = binary.AppendUvarint(dst, uint64(s.SubID))
	dst = binary.AppendVarint(dst, int64(s.Query))
	dst = appendBool(dst, s.Live)
	dst = binary.AppendUvarint(dst, s.ResumeSeq)
	dst = appendNeighbors(dst, s.Result)
	return endFrame(dst, start)
}

// AppendStatsReq appends a metrics-poll request.
func AppendStatsReq(dst []byte, reqID uint64) []byte {
	start := len(dst)
	dst = beginFrame(dst, FrameStatsReq)
	dst = binary.AppendUvarint(dst, reqID)
	return endFrame(dst, start)
}

// AppendStats appends the answer to a StatsReq: a flat list of named
// counter readings.
func AppendStats(dst []byte, reqID uint64, stats []Stat) []byte {
	start := len(dst)
	dst = beginFrame(dst, FrameStats)
	dst = binary.AppendUvarint(dst, reqID)
	dst = binary.AppendUvarint(dst, uint64(len(stats)))
	for _, s := range stats {
		dst = appendString(dst, s.Name)
		dst = binary.AppendVarint(dst, s.Value)
	}
	return endFrame(dst, start)
}

// AppendDiffs appends the sync-diffs answer to a mutating request: the
// result diffs the operation produced, in query-id order.
func AppendDiffs(dst []byte, reqID uint64, diffs []model.ResultDiff) []byte {
	start := len(dst)
	dst = beginFrame(dst, FrameDiffs)
	dst = binary.AppendUvarint(dst, reqID)
	dst = binary.AppendUvarint(dst, uint64(len(diffs)))
	for _, d := range diffs {
		dst = appendDiff(dst, d)
	}
	return endFrame(dst, start)
}

// AppendDiffsPhases appends a Diffs frame extended with the tick-phase
// trailer: four uvarints (relocate, re-eval, query-update, diff
// nanoseconds) after the diff list. Only sent on HelloTrace-negotiated
// connections; DecodeDiffs detects the trailer by the bytes remaining, so
// both forms stay decodable by the same reader.
func AppendDiffsPhases(dst []byte, reqID uint64, diffs []model.ResultDiff, ph model.PhaseNanos) []byte {
	start := len(dst)
	dst = beginFrame(dst, FrameDiffs)
	dst = binary.AppendUvarint(dst, reqID)
	dst = binary.AppendUvarint(dst, uint64(len(diffs)))
	for _, d := range diffs {
		dst = appendDiff(dst, d)
	}
	dst = binary.AppendUvarint(dst, uint64(ph.Relocate))
	dst = binary.AppendUvarint(dst, uint64(ph.Reeval))
	dst = binary.AppendUvarint(dst, uint64(ph.QueryUpd))
	dst = binary.AppendUvarint(dst, uint64(ph.Diff))
	return endFrame(dst, start)
}

// AppendReset appends a state-wipe request frame.
func AppendReset(dst []byte, reqID uint64) []byte {
	start := len(dst)
	dst = beginFrame(dst, FrameReset)
	dst = binary.AppendUvarint(dst, reqID)
	return endFrame(dst, start)
}

// AppendGap appends a lost-events marker frame.
func AppendGap(dst []byte, g Gap) []byte {
	start := len(dst)
	dst = beginFrame(dst, FrameGap)
	dst = binary.AppendUvarint(dst, uint64(g.SubID))
	dst = binary.AppendUvarint(dst, g.From)
	dst = binary.AppendUvarint(dst, g.To)
	return endFrame(dst, start)
}

// AppendTraceCtx appends a trace-context frame: the trace id and parent
// span id that apply to the next request frame on this connection. No
// request id — the frame is positional and unacknowledged (HelloTrace
// connections only).
func AppendTraceCtx(dst []byte, traceID, spanID uint64) []byte {
	start := len(dst)
	dst = beginFrame(dst, FrameTraceCtx)
	dst = binary.AppendUvarint(dst, traceID)
	dst = binary.AppendUvarint(dst, spanID)
	return endFrame(dst, start)
}

// AppendTracesReq appends a flight-recorder poll. traceID 0 asks for the
// whole ring; non-zero asks for one trace.
func AppendTracesReq(dst []byte, reqID, traceID uint64) []byte {
	start := len(dst)
	dst = beginFrame(dst, FrameTracesReq)
	dst = binary.AppendUvarint(dst, reqID)
	dst = binary.AppendUvarint(dst, traceID)
	return endFrame(dst, start)
}

// AppendTraces appends the answer to a TracesReq: the recorder contents
// as a JSON document (the same bytes /debug/traces serves).
func AppendTraces(dst []byte, reqID uint64, doc []byte) []byte {
	start := len(dst)
	dst = beginFrame(dst, FrameTraces)
	dst = binary.AppendUvarint(dst, reqID)
	dst = binary.AppendUvarint(dst, uint64(len(doc)))
	dst = append(dst, doc...)
	return endFrame(dst, start)
}
