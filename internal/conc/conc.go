// Package conc implements the conceptual partitioning of the space around a
// query (paper Figure 3.1b, generalized to Section 5's aggregate queries).
//
// The grid cells around a center block B — the query's cell c_q for a point
// query, or the cells covering the MBR M of the query set for an aggregate
// query — are organized into direction strips DIR_lvl with DIR ∈ {U, D, L,
// R}. Strip DIR_lvl is one cell thick; lvl counts the strips between it and
// the block. The four directions pinwheel around B so that every cell of
// the (conceptually infinite) grid outside B belongs to exactly one strip:
//
//	            U2
//	   ┌─────────────────┐
//	L1 │        U0       │
//	   │   ┌─────────┐   │ R1
//	   │L0 │    B    │R0 │
//	   │   └─────────┘   │
//	   │        D0       │
//	   └─────────────────┘
//	            D1
//
// For a block [c_lo..c_hi] × [r_lo..r_hi] (cell coordinates, inclusive):
//
//	U_l: row r_hi+1+l, cols [c_lo-l   .. c_hi+1+l]
//	R_l: col c_hi+1+l, rows [r_lo-1-l .. r_hi+l  ]
//	D_l: row r_lo-1-l, cols [c_lo-1-l .. c_hi+l  ]
//	L_l: col c_lo-1-l, rows [r_lo-l   .. r_hi+1+l]
//
// The exact-tiling property (each cell in exactly one strip) is what makes
// the CPM search minimal: visiting strips in mindist order visits cells in
// mindist order without sorting the whole grid, and Lemma 3.1 / Corollaries
// 5.1–5.2 — mindist(DIR_{l+1}, q) = mindist(DIR_l, q) + δ (m·δ for sum) —
// follow from the strips being parallel lines δ apart. The package computes
// strip geometry exactly rather than incrementally, so the identities hold
// by construction and are verified by property tests.
package conc

import (
	"fmt"

	"cpm/internal/geom"
)

// Dir is a strip direction.
type Dir uint8

// The four directions of conceptual rectangles.
const (
	Up Dir = iota
	Down
	Left
	Right
)

// Dirs lists all directions, in the order the search seeds its heap.
var Dirs = [4]Dir{Up, Down, Left, Right}

// String returns the paper's single-letter name for the direction.
func (d Dir) String() string {
	switch d {
	case Up:
		return "U"
	case Down:
		return "D"
	case Left:
		return "L"
	case Right:
		return "R"
	default:
		return fmt.Sprintf("Dir(%d)", uint8(d))
	}
}

// Strip identifies the conceptual rectangle DIR_Level.
type Strip struct {
	Dir   Dir
	Level int32
}

// String formats the strip as in the paper, e.g. "U0" or "L2".
func (s Strip) String() string { return fmt.Sprintf("%s%d", s.Dir, s.Level) }

// Block is an inclusive rectangle of cells: the center of a partitioning.
type Block struct {
	ColLo, ColHi int
	RowLo, RowHi int
}

// CellBlock returns the 1×1 block of a point query's cell.
func CellBlock(col, row int) Block {
	return Block{ColLo: col, ColHi: col, RowLo: row, RowHi: row}
}

// Partition is the conceptual partitioning of a size×size grid around a
// block. It is pure geometry: it holds no per-query state, so one value can
// be recomputed cheaply whenever a query (re)starts a search.
type Partition struct {
	size   int
	delta  float64
	origin geom.Point // low-left corner of the workspace
	block  Block
}

// NewPartition builds the partitioning around block for a grid of
// size×size cells of side delta anchored at origin. The block must be
// non-empty and within the grid.
func NewPartition(size int, delta float64, origin geom.Point, block Block) Partition {
	if block.ColLo > block.ColHi || block.RowLo > block.RowHi {
		panic(fmt.Sprintf("conc: empty block %+v", block))
	}
	if block.ColLo < 0 || block.ColHi >= size || block.RowLo < 0 || block.RowHi >= size {
		panic(fmt.Sprintf("conc: block %+v outside %d×%d grid", block, size, size))
	}
	return Partition{size: size, delta: delta, origin: origin, block: block}
}

// Block returns the center block.
func (p Partition) Block() Block { return p.block }

// span returns the fixed coordinate of the strip and the inclusive range of
// its varying coordinate, in cell units, before grid clamping.
func (p Partition) span(s Strip) (fixed, lo, hi int) {
	l := int(s.Level)
	b := p.block
	switch s.Dir {
	case Up:
		return b.RowHi + 1 + l, b.ColLo - l, b.ColHi + 1 + l
	case Right:
		return b.ColHi + 1 + l, b.RowLo - 1 - l, b.RowHi + l
	case Down:
		return b.RowLo - 1 - l, b.ColLo - 1 - l, b.ColHi + l
	case Left:
		return b.ColLo - 1 - l, b.RowLo - l, b.RowHi + 1 + l
	default:
		panic("conc: unknown direction")
	}
}

// InGrid reports whether strip s contains at least one grid cell, i.e.
// whether its fixed coordinate lies inside the grid. Because each level
// moves the fixed coordinate one cell further from the block, once a strip
// leaves the grid all higher levels of that direction are outside too — the
// search uses this to stop en-heaping a direction.
func (p Partition) InGrid(s Strip) bool {
	fixed, _, _ := p.span(s)
	return fixed >= 0 && fixed < p.size
}

// Cells invokes fn for every grid cell of strip s, clamped to the grid, in
// ascending varying-coordinate order. It is a no-op when the strip lies
// outside the grid.
func (p Partition) Cells(s Strip, fn func(col, row int)) {
	fixed, lo, hi := p.span(s)
	if fixed < 0 || fixed >= p.size {
		return
	}
	if lo < 0 {
		lo = 0
	}
	if hi >= p.size {
		hi = p.size - 1
	}
	horizontal := s.Dir == Up || s.Dir == Down
	for v := lo; v <= hi; v++ {
		if horizontal {
			fn(v, fixed)
		} else {
			fn(fixed, v)
		}
	}
}

// Rect returns the geometric extent of strip s, unclamped: strips around a
// border block extend beyond the workspace. The mindist of the full strip
// lower-bounds the mindist of each of its in-grid cells, so using it as the
// strip's heap key preserves search correctness everywhere, including at
// the workspace border.
func (p Partition) Rect(s Strip) geom.Rect {
	fixed, lo, hi := p.span(s)
	horizontal := s.Dir == Up || s.Dir == Down
	var r geom.Rect
	if horizontal {
		r.Lo = p.cellCorner(lo, fixed)
		r.Hi = p.cellCorner(hi+1, fixed+1)
	} else {
		r.Lo = p.cellCorner(fixed, lo)
		r.Hi = p.cellCorner(fixed+1, hi+1)
	}
	return r
}

// BlockRect returns the geometric extent of the center block.
func (p Partition) BlockRect() geom.Rect {
	return geom.Rect{
		Lo: p.cellCorner(p.block.ColLo, p.block.RowLo),
		Hi: p.cellCorner(p.block.ColHi+1, p.block.RowHi+1),
	}
}

func (p Partition) cellCorner(col, row int) geom.Point {
	return geom.Point{
		X: p.origin.X + float64(col)*p.delta,
		Y: p.origin.Y + float64(row)*p.delta,
	}
}
