package conc

import (
	"math"
	"math/rand"
	"testing"

	"cpm/internal/geom"
)

func unitPartition(size int, b Block) Partition {
	return NewPartition(size, 1/float64(size), geom.Point{X: 0, Y: 0}, b)
}

func TestDirString(t *testing.T) {
	want := map[Dir]string{Up: "U", Down: "D", Left: "L", Right: "R", Dir(9): "Dir(9)"}
	for d, w := range want {
		if got := d.String(); got != w {
			t.Errorf("Dir(%d).String() = %q, want %q", d, got, w)
		}
	}
	if s := (Strip{Dir: Left, Level: 2}).String(); s != "L2" {
		t.Errorf("Strip.String() = %q, want L2", s)
	}
}

func TestNewPartitionPanics(t *testing.T) {
	cases := map[string]Block{
		"inverted cols": {ColLo: 3, ColHi: 2, RowLo: 0, RowHi: 0},
		"inverted rows": {ColLo: 0, ColHi: 0, RowLo: 5, RowHi: 4},
		"negative col":  {ColLo: -1, ColHi: 0, RowLo: 0, RowHi: 0},
		"col too big":   {ColLo: 0, ColHi: 8, RowLo: 0, RowHi: 0},
		"row too big":   {ColLo: 0, ColHi: 0, RowLo: 0, RowHi: 8},
	}
	for name, b := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			unitPartition(8, b)
		}()
	}
}

// TestLevelZeroCells pins the level-0 strips of a 1×1 block to the paper's
// figure: each contains exactly two cells and together they cover ring 1.
func TestLevelZeroCells(t *testing.T) {
	p := unitPartition(8, CellBlock(4, 4))
	want := map[Dir][][2]int{
		Up:    {{4, 5}, {5, 5}},
		Right: {{5, 3}, {5, 4}},
		Down:  {{3, 3}, {4, 3}},
		Left:  {{3, 4}, {3, 5}},
	}
	for dir, cells := range want {
		var got [][2]int
		p.Cells(Strip{Dir: dir, Level: 0}, func(c, r int) { got = append(got, [2]int{c, r}) })
		if len(got) != len(cells) {
			t.Fatalf("%v0: got %v, want %v", dir, got, cells)
		}
		for i := range cells {
			if got[i] != cells[i] {
				t.Fatalf("%v0: got %v, want %v", dir, got, cells)
			}
		}
	}
}

// TestPinwheelTiling is the core structural property: for random grids and
// blocks, the block plus all in-grid strips cover every grid cell exactly
// once.
func TestPinwheelTiling(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 100; trial++ {
		size := 2 + rng.Intn(14)
		b := randBlock(rng, size)
		p := unitPartition(size, b)
		counts := make([]int, size*size)
		for c := b.ColLo; c <= b.ColHi; c++ {
			for r := b.RowLo; r <= b.RowHi; r++ {
				counts[r*size+c]++
			}
		}
		for _, dir := range Dirs {
			for lvl := int32(0); ; lvl++ {
				s := Strip{Dir: dir, Level: lvl}
				if !p.InGrid(s) {
					break
				}
				p.Cells(s, func(c, r int) { counts[r*size+c]++ })
			}
		}
		for idx, n := range counts {
			if n != 1 {
				t.Fatalf("trial %d (size=%d block=%+v): cell (%d,%d) covered %d times",
					trial, size, b, idx%size, idx/size, n)
			}
		}
	}
}

func randBlock(rng *rand.Rand, size int) Block {
	c0 := rng.Intn(size)
	c1 := c0 + rng.Intn(size-c0)
	r0 := rng.Intn(size)
	r1 := r0 + rng.Intn(size-r0)
	return Block{ColLo: c0, ColHi: c1, RowLo: r0, RowHi: r1}
}

// TestLemma31 verifies mindist(DIR_{l+1}, q) = mindist(DIR_l, q) + δ for
// query points inside the block (Lemma 3.1), and Corollary 5.1's m·δ
// increment for the sum aggregate over points inside the block.
func TestLemma31(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		size := 4 + rng.Intn(12)
		delta := 1 / float64(size)
		b := randBlock(rng, size)
		p := NewPartition(size, delta, geom.Point{}, b)
		blockRect := p.BlockRect()
		q := geom.Point{
			X: blockRect.Lo.X + rng.Float64()*blockRect.Width(),
			Y: blockRect.Lo.Y + rng.Float64()*blockRect.Height(),
		}
		for _, dir := range Dirs {
			for lvl := int32(0); lvl < 6; lvl++ {
				d0 := p.Rect(Strip{Dir: dir, Level: lvl}).MinDist(q)
				d1 := p.Rect(Strip{Dir: dir, Level: lvl + 1}).MinDist(q)
				if math.Abs(d1-(d0+delta)) > 1e-12 {
					t.Fatalf("Lemma 3.1 violated: %v level %d→%d: %v vs %v+δ(%v)",
						dir, lvl, lvl+1, d1, d0, delta)
				}
			}
		}
		// Corollary 5.1: sum aggregate steps by m·δ.
		m := 1 + rng.Intn(4)
		qs := make([]geom.Point, m)
		for i := range qs {
			qs[i] = geom.Point{
				X: blockRect.Lo.X + rng.Float64()*blockRect.Width(),
				Y: blockRect.Lo.Y + rng.Float64()*blockRect.Height(),
			}
		}
		for _, dir := range Dirs {
			s0 := geom.AggMinDist(geom.AggSum, p.Rect(Strip{Dir: dir, Level: 2}), qs)
			s1 := geom.AggMinDist(geom.AggSum, p.Rect(Strip{Dir: dir, Level: 3}), qs)
			if math.Abs(s1-(s0+float64(m)*delta)) > 1e-12 {
				t.Fatalf("Corollary 5.1 violated for %v: %v vs %v+m·δ", dir, s1, s0)
			}
			// Corollary 5.2: min and max aggregates step by δ.
			for _, agg := range []geom.Agg{geom.AggMin, geom.AggMax} {
				a0 := geom.AggMinDist(agg, p.Rect(Strip{Dir: dir, Level: 2}), qs)
				a1 := geom.AggMinDist(agg, p.Rect(Strip{Dir: dir, Level: 3}), qs)
				if math.Abs(a1-(a0+delta)) > 1e-12 {
					t.Fatalf("Corollary 5.2 violated for %v/%v", dir, agg)
				}
			}
		}
	}
}

// TestStripRectCoversCells: the strip rect contains the rect of every
// in-grid cell of the strip, so mindist(strip) lower-bounds mindist(cell).
func TestStripRectCoversCells(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 50; trial++ {
		size := 3 + rng.Intn(10)
		delta := 1 / float64(size)
		b := randBlock(rng, size)
		p := NewPartition(size, delta, geom.Point{}, b)
		q := geom.Point{X: rng.Float64(), Y: rng.Float64()}
		for _, dir := range Dirs {
			for lvl := int32(0); lvl < 4; lvl++ {
				s := Strip{Dir: dir, Level: lvl}
				if !p.InGrid(s) {
					continue
				}
				stripRect := p.Rect(s)
				stripMin := stripRect.MinDist(q)
				p.Cells(s, func(c, r int) {
					cellRect := geom.Rect{
						Lo: geom.Point{X: float64(c) * delta, Y: float64(r) * delta},
						Hi: geom.Point{X: float64(c+1) * delta, Y: float64(r+1) * delta},
					}
					if !stripRect.Intersects(cellRect) {
						t.Fatalf("strip %v rect %v misses its cell (%d,%d)", s, stripRect, c, r)
					}
					if cellRect.MinDist(q) < stripMin-1e-12 {
						t.Fatalf("strip %v mindist %v not a lower bound for cell (%d,%d)",
							s, stripMin, c, r)
					}
				})
			}
		}
	}
}

// TestInGridMonotone: once a direction leaves the grid it never re-enters.
func TestInGridMonotone(t *testing.T) {
	p := unitPartition(6, CellBlock(1, 4))
	for _, dir := range Dirs {
		out := false
		for lvl := int32(0); lvl < 20; lvl++ {
			in := p.InGrid(Strip{Dir: dir, Level: lvl})
			if out && in {
				t.Fatalf("%v re-entered the grid at level %d", dir, lvl)
			}
			if !in {
				out = true
			}
		}
		if !out {
			t.Fatalf("%v never left a 6×6 grid within 20 levels", dir)
		}
	}
}

// TestCellsSortedWithinStrip verifies ascending enumeration order, which the
// engine relies on for deterministic heap payload tie-breaking.
func TestCellsSortedWithinStrip(t *testing.T) {
	p := unitPartition(10, CellBlock(5, 5))
	for _, dir := range Dirs {
		prev := -1
		p.Cells(Strip{Dir: dir, Level: 2}, func(c, r int) {
			v := c
			if dir == Left || dir == Right {
				v = r
			}
			if v <= prev {
				t.Fatalf("%v cells not in ascending order", dir)
			}
			prev = v
		})
	}
}

func TestBlockRect(t *testing.T) {
	p := unitPartition(4, Block{ColLo: 1, ColHi: 2, RowLo: 0, RowHi: 1})
	got := p.BlockRect()
	want := geom.Rect{Lo: geom.Point{X: 0.25, Y: 0}, Hi: geom.Point{X: 0.75, Y: 0.5}}
	if got != want {
		t.Errorf("BlockRect = %v, want %v", got, want)
	}
	if p.Block() != (Block{ColLo: 1, ColHi: 2, RowLo: 0, RowHi: 1}) {
		t.Errorf("Block() round-trip failed")
	}
}
