package core

import (
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"cpm/internal/geom"
	"cpm/internal/model"
)

// TestRebalancePreservesResults drives an engine through random cycles,
// resizes the grid (grow and shrink) mid-run, and checks after every
// resize and every subsequent cycle that (i) no result moved at the moment
// of the resize, (ii) results keep matching the brute-force oracle, and
// (iii) the engine's book-keeping invariants (visit/influence/heap
// consistency) hold on the new geometry.
func TestRebalancePreservesResults(t *testing.T) {
	for _, seed := range []int64{3, 17} {
		w := newWorld(seed)
		e := NewUnitEngine(16, Options{})
		e.Bootstrap(w.populate(300))

		defs := map[model.QueryID]Def{}
		for i := 0; i < 10; i++ {
			id := model.QueryID(i)
			def := PointQuery(w.randPoint(), 1+w.rng.Intn(8))
			if i%3 == 1 {
				c := w.randPoint()
				region := geom.Rect{
					Lo: geom.Point{X: c.X - 0.25, Y: c.Y - 0.25},
					Hi: geom.Point{X: c.X + 0.25, Y: c.Y + 0.25},
				}
				def.Constraint = &region
			}
			if i%3 == 2 {
				def = AggQuery([]geom.Point{w.randPoint(), w.randPoint()}, 1+w.rng.Intn(4), geom.AggSum)
			}
			defs[id] = def
			if err := e.Register(id, def); err != nil {
				t.Fatal(err)
			}
		}
		rangeCenter := w.randPoint()
		if err := e.RegisterRange(100, rangeCenter, 0.2); err != nil {
			t.Fatal(err)
		}

		checkAll := func(label string) {
			t.Helper()
			for id, def := range defs {
				checkResult(t, label, e.Result(id), oracle(e, def))
				checkInvariants(t, e, id)
			}
		}

		for cycle, sizes := 0, []int{40, 7, 16, 64}; cycle < 12; cycle++ {
			e.ProcessBatch(w.randomBatch(60, false))
			checkAll("post-cycle")

			if cycle%3 == 2 {
				newSize := sizes[cycle/3]
				before := make(map[model.QueryID][]model.Neighbor, len(defs))
				for id := range defs {
					before[id] = e.Result(id)
				}
				beforeRange := e.RangeResult(100)
				e.EnableDiffs(true) // diffs must stay empty across the resize

				e.Rebalance(newSize)

				if got := e.GridSize(); got != newSize {
					t.Fatalf("GridSize = %d after Rebalance(%d)", got, newSize)
				}
				if diffs := e.TakeDiffs(); len(diffs) != 0 {
					t.Fatalf("Rebalance(%d) emitted diffs: %v", newSize, diffs)
				}
				e.EnableDiffs(false)
				for id := range defs {
					if !reflect.DeepEqual(e.Result(id), before[id]) {
						t.Fatalf("Rebalance(%d) changed q%d result\nbefore %v\nafter  %v",
							newSize, id, before[id], e.Result(id))
					}
				}
				if got := e.RangeResult(100); !reflect.DeepEqual(got, beforeRange) {
					t.Fatalf("Rebalance(%d) changed range result\nbefore %v\nafter  %v",
						newSize, beforeRange, got)
				}
				checkAll("post-rebalance")
			}
		}
		if e.Rebalances() != 4 {
			t.Fatalf("Rebalances() = %d, want 4", e.Rebalances())
		}
	}
}

// TestRebalanceSameSizeIsNoop pins the fast path.
func TestRebalanceSameSizeIsNoop(t *testing.T) {
	e := NewUnitEngine(16, Options{})
	e.Bootstrap(map[model.ObjectID]geom.Point{1: {X: 0.5, Y: 0.5}})
	e.Rebalance(16)
	if e.Rebalances() != 0 {
		t.Fatalf("same-size Rebalance counted: %d", e.Rebalances())
	}
}

// TestOutOfWorkspaceObjects is the clamping property test: objects (and
// query points) beyond the workspace must not break mindist-ordered search
// pruning. Before stored positions were clamped onto the workspace, an
// object outside the border sat in a cell whose rectangle did not contain
// it, and a query point that was itself outside the workspace could prune
// the cell holding its true nearest neighbor. The test sweeps random
// populations spilling far outside the unit square with queries inside and
// outside, against the brute-force oracle, across updates and across a
// Rebalance.
func TestOutOfWorkspaceObjects(t *testing.T) {
	// The deterministic counterexample first: q outside the right border,
	// the true NN outside too, stored — pre-clamping — in a far cell whose
	// mindist exceeds another candidate's true distance.
	e := NewUnitEngine(16, Options{})
	e.Bootstrap(map[model.ObjectID]geom.Point{
		1: {X: 2.5, Y: 0.2}, // clamps to (1, 0.2)
		2: {X: 1.1, Y: 0.5}, // clamps to (1, 0.5)
	})
	q := geom.Point{X: 2, Y: 0.5}
	if err := e.RegisterQuery(1, q, 1); err != nil {
		t.Fatal(err)
	}
	checkResult(t, "deterministic counterexample", e.Result(1), oracle(e, PointQuery(q, 1)))

	for _, seed := range []int64{5, 23, 71} {
		rng := rand.New(rand.NewSource(seed))
		farPoint := func() geom.Point {
			// Mostly outside the unit square, up to 2 workspace-widths out.
			return geom.Point{X: rng.Float64()*5 - 2, Y: rng.Float64()*5 - 2}
		}
		e := NewUnitEngine(8, Options{})
		objs := make(map[model.ObjectID]geom.Point, 150)
		for i := 0; i < 150; i++ {
			objs[model.ObjectID(i)] = farPoint()
		}
		e.Bootstrap(objs)

		defs := map[model.QueryID]Def{}
		for i := 0; i < 12; i++ {
			def := PointQuery(farPoint(), 1+rng.Intn(6))
			defs[model.QueryID(i)] = def
			if err := e.Register(model.QueryID(i), def); err != nil {
				t.Fatal(err)
			}
		}
		// Clamping maps far-out objects onto identical border points, so
		// exact distance ties — vanishingly rare for in-workspace float
		// workloads — are the norm here. Under a tie CPM returns *a*
		// correct k-NN set (the paper breaks ties arbitrarily); the check
		// therefore compares the distance multiset against the oracle and
		// verifies every reported distance is the object's true one,
		// instead of demanding the oracle's canonical id choice.
		check := func(label string) {
			t.Helper()
			for id, def := range defs {
				got, want := e.Result(id), oracle(e, def)
				if len(got) != len(want) {
					t.Fatalf("%s q%d: %d neighbors %v, want %d %v",
						label, id, len(got), got, len(want), want)
				}
				for i := range got {
					if got[i].Dist != want[i].Dist {
						t.Fatalf("%s q%d: rank %d dist %v, want %v\ngot  %v\nwant %v",
							label, id, i, got[i].Dist, want[i].Dist, got, want)
					}
					p, ok := e.ObjectPosition(got[i].ID)
					if !ok || def.dist(p) != got[i].Dist {
						t.Fatalf("%s q%d: member %d reported dist %v, true %v",
							label, id, got[i].ID, got[i].Dist, def.dist(p))
					}
				}
				checkInvariants(t, e, id)
			}
		}
		check("initial")

		for cycle := 0; cycle < 6; cycle++ {
			var b model.Batch
			for i := 0; i < 40; i++ {
				id := model.ObjectID(rng.Intn(150))
				old, _ := e.ObjectPosition(id)
				b.Objects = append(b.Objects, model.MoveUpdate(id, old, farPoint()))
			}
			e.ProcessBatch(b)
			check("post-cycle")
			if cycle == 2 {
				e.Rebalance(32)
				check("post-grow")
			}
			if cycle == 4 {
				e.Rebalance(5)
				check("post-shrink")
			}
		}

		// The stored-position invariant itself (pinned here per the grid
		// package doc): everything the index holds lies inside the
		// workspace, border cells included.
		ws := e.Grid().Workspace()
		ids := make([]model.ObjectID, 0, 150)
		e.Grid().ForEachObject(func(id model.ObjectID, p geom.Point) {
			if !ws.Contains(p) {
				t.Fatalf("object %d stored at %v outside workspace", id, p)
			}
			ids = append(ids, id)
		})
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		if len(ids) != 150 {
			t.Fatalf("lost objects: %d live, want 150", len(ids))
		}
	}
}
