package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"cpm/internal/bruteforce"
	"cpm/internal/geom"
	"cpm/internal/model"
)

// world mirrors the engine's object population so tests can generate
// consistent update streams and run the brute-force oracle independently.
type world struct {
	rng    *rand.Rand
	pos    map[model.ObjectID]geom.Point
	nextID model.ObjectID
}

func newWorld(seed int64) *world {
	return &world{rng: rand.New(rand.NewSource(seed)), pos: map[model.ObjectID]geom.Point{}}
}

func (w *world) randPoint() geom.Point {
	return geom.Point{X: w.rng.Float64(), Y: w.rng.Float64()}
}

// populate creates n objects at random positions.
func (w *world) populate(n int) map[model.ObjectID]geom.Point {
	out := make(map[model.ObjectID]geom.Point, n)
	for i := 0; i < n; i++ {
		p := w.randPoint()
		w.pos[w.nextID] = p
		out[w.nextID] = p
		w.nextID++
	}
	return out
}

func (w *world) liveIDs() []model.ObjectID {
	ids := make([]model.ObjectID, 0, len(w.pos))
	for id := range w.pos {
		ids = append(ids, id)
	}
	// Sorted so batch generation is deterministic for a given seed (map
	// iteration order would otherwise leak into the stream).
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// randomBatch produces a batch of moves, inserts and deletes, keeping the
// mirror in sync. Moves may be long jumps or small steps; allowRepeats
// lets one object receive several updates in the same batch, which
// stresses the in_list/out_count bookkeeping.
func (w *world) randomBatch(size int, allowRepeats bool) model.Batch {
	var b model.Batch
	touched := map[model.ObjectID]bool{}
	for i := 0; i < size; i++ {
		r := w.rng.Float64()
		switch {
		case r < 0.70 && len(w.pos) > 0:
			id := w.pickID(touched, allowRepeats)
			if id < 0 {
				continue
			}
			old := w.pos[id]
			var to geom.Point
			if w.rng.Float64() < 0.5 {
				to = w.randPoint() // long jump
			} else { // local step
				to = geom.Point{
					X: clampUnit(old.X + (w.rng.Float64()-0.5)*0.1),
					Y: clampUnit(old.Y + (w.rng.Float64()-0.5)*0.1),
				}
			}
			w.pos[id] = to
			b.Objects = append(b.Objects, model.MoveUpdate(id, old, to))
			touched[id] = true
		case r < 0.85:
			p := w.randPoint()
			id := w.nextID
			w.nextID++
			w.pos[id] = p
			b.Objects = append(b.Objects, model.InsertUpdate(id, p))
			touched[id] = true
		case len(w.pos) > 1:
			id := w.pickID(touched, allowRepeats)
			if id < 0 {
				continue
			}
			old := w.pos[id]
			delete(w.pos, id)
			b.Objects = append(b.Objects, model.DeleteUpdate(id, old))
			touched[id] = true
		}
	}
	return b
}

func (w *world) pickID(touched map[model.ObjectID]bool, allowRepeats bool) model.ObjectID {
	ids := w.liveIDs()
	for attempts := 0; attempts < 20; attempts++ {
		id := ids[w.rng.Intn(len(ids))]
		if allowRepeats || !touched[id] {
			return id
		}
	}
	return -1
}

func clampUnit(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v >= 1 {
		return math.Nextafter(1, 0)
	}
	return v
}

// checkResult compares an engine result against the oracle. Distances must
// match per rank; IDs must match except across exact distance ties, where
// any tied id is accepted.
func checkResult(t *testing.T, label string, got, want []model.Neighbor) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %d neighbors %v, want %d %v", label, len(got), got, len(want), want)
	}
	const eps = 1e-9
	for i := range got {
		if math.Abs(got[i].Dist-want[i].Dist) > eps {
			t.Fatalf("%s: rank %d dist %v, want %v\ngot  %v\nwant %v",
				label, i, got[i].Dist, want[i].Dist, got, want)
		}
	}
	for i := range got {
		if got[i].ID == want[i].ID {
			continue
		}
		// Tolerate a differing id only within an exact-tie group.
		tied := false
		for j := range want {
			if want[j].ID == got[i].ID && math.Abs(want[j].Dist-got[i].Dist) <= eps {
				tied = true
				break
			}
		}
		if !tied {
			t.Fatalf("%s: rank %d id %d not in oracle result\ngot  %v\nwant %v",
				label, i, got[i].ID, got, want)
		}
	}
}

// oracle computes the ground-truth result for a query definition over the
// engine's grid.
func oracle(e *Engine, def Def) []model.Neighbor {
	sel := bruteforce.NewSelector(def.K)
	e.Grid().ForEachObject(func(id model.ObjectID, p geom.Point) {
		if !def.admits(p) {
			return
		}
		sel.Offer(id, def.dist(p))
	})
	return sel.Sorted()
}

// checkInvariants verifies the structural invariants of a query's
// book-keeping after any operation:
//   - the visit list is sorted by key;
//   - visit keys lower-bound the true mindist of their cells... they equal it;
//   - influence entries exist exactly for the influence prefix;
//   - every result member's current cell carries the query's influence.
func checkInvariants(t *testing.T, e *Engine, id model.QueryID) {
	t.Helper()
	qu, ok := e.queries[id]
	if !ok {
		t.Fatalf("query %d not installed", id)
	}
	for i := 1; i < len(qu.visit); i++ {
		if qu.visit[i].key < qu.visit[i-1].key {
			t.Fatalf("query %d: visit list unsorted at %d", id, i)
		}
	}
	if qu.influenceEnd > len(qu.visit) {
		t.Fatalf("query %d: influenceEnd %d > visit len %d", id, qu.influenceEnd, len(qu.visit))
	}
	seen := map[int64]bool{}
	for i, ve := range qu.visit {
		if seen[int64(ve.cell)] {
			t.Fatalf("query %d: cell %d appears twice in visit list", id, ve.cell)
		}
		seen[int64(ve.cell)] = true
		hasInf := e.HasInfluence(ve.cell, id)
		if i < qu.influenceEnd && !hasInf {
			t.Fatalf("query %d: influence missing for visit[%d] (cell %d)", id, i, ve.cell)
		}
		if i >= qu.influenceEnd && hasInf {
			t.Fatalf("query %d: stale influence for visit[%d] (cell %d)", id, i, ve.cell)
		}
	}
	bd := qu.best.kthDist()
	for i := 0; i < qu.influenceEnd; i++ {
		if qu.visit[i].key > bd {
			t.Fatalf("query %d: influence cell %d has key %v > best_dist %v",
				id, qu.visit[i].cell, qu.visit[i].key, bd)
		}
	}
	for _, n := range qu.best.snapshot() {
		p, ok := e.Grid().Position(n.ID)
		if !ok {
			t.Fatalf("query %d: result contains dead object %d", id, n.ID)
		}
		c := e.Grid().CellOf(p)
		if !e.HasInfluence(c, id) {
			t.Fatalf("query %d: result member %d's cell %d lacks influence", id, n.ID, c)
		}
		if math.Abs(qu.def.dist(p)-n.Dist) > 1e-9 {
			t.Fatalf("query %d: result member %d stored dist %v, actual %v",
				id, n.ID, n.Dist, qu.def.dist(p))
		}
	}
}
