package core

import (
	"time"

	"cpm/internal/geom"
	"cpm/internal/grid"
	"cpm/internal/model"
)

// ProcessBatch runs one processing cycle: the NN Monitoring loop of Figure
// 3.9. It first handles the object updates U_P (ignoring queries that have
// their own updates this cycle, whose results are obsolete anyway), then
// applies the query updates U_q — terminations, moves (a move is a
// termination plus a fresh installation, Section 3.3) — and leaves every
// installed query's result current.
//
// Inconsistent stream elements (moves or deletes of unknown objects,
// duplicate inserts, updates for unknown queries) are dropped and counted
// in InvalidUpdates; a monitoring server must outlive a misbehaving client.
//
// A steady-state cycle (moves only, warmed buffers) performs zero heap
// allocations: the per-cycle sets are generation-stamped reused slices, and
// all influence and cell scans iterate borrowed grid slices.
func (e *Engine) ProcessBatch(b model.Batch) {
	e.phases = model.PhaseNanos{}
	e.changeGen++
	e.changedIDs = e.changedIDs[:0]
	e.batchGen++
	for _, qu := range b.Queries {
		// Stamp the queries with their own updates this cycle; the
		// object-update scans skip them instead of consulting a map.
		if q, ok := e.queries[qu.ID]; ok {
			q.ignoreMark = e.batchGen
		} else if rq, ok := e.ranges[qu.ID]; ok {
			rq.ignoreMark = e.batchGen
		}
	}

	// Phase boundaries for the Section 4 cost-model decomposition
	// (model.PhaseNanos): time.Now() does not allocate, so the stamps are
	// compatible with the zero-alloc steady-state contract.
	if e.opts.PerUpdate {
		// Ablation X2: Section 3.2 semantics — each update is classified
		// and resolved on its own, so an outgoing NN triggers
		// re-computation even when a later update this cycle would have
		// compensated for it. Phase times accumulate across the
		// interleaved per-update rounds.
		for _, u := range b.Objects {
			e.cycle++
			t0 := time.Now()
			e.applyObjectUpdate(u)
			t1 := time.Now()
			e.resolveDirty()
			t2 := time.Now()
			e.phases.Relocate += t1.Sub(t0).Nanoseconds()
			e.phases.Reeval += t2.Sub(t1).Nanoseconds()
		}
	} else {
		e.cycle++
		t0 := time.Now()
		for _, u := range b.Objects {
			e.applyObjectUpdate(u)
		}
		t1 := time.Now()
		e.resolveDirty()
		t2 := time.Now()
		e.phases.Relocate = t1.Sub(t0).Nanoseconds()
		e.phases.Reeval = t2.Sub(t1).Nanoseconds()
	}

	qStart := time.Now()
	for _, qu := range b.Queries {
		switch qu.Kind {
		case model.QueryTerminate:
			_, isNN := e.queries[qu.ID]
			_, isRange := e.ranges[qu.ID]
			if !isNN && !isRange {
				e.invalidQueries++
				continue
			}
			e.RemoveQuery(qu.ID)
		case model.QueryMove:
			if _, isRange := e.ranges[qu.ID]; isRange {
				if len(qu.NewPoints) != 1 || e.MoveRange(qu.ID, qu.NewPoints[0]) != nil {
					e.invalidQueries++
				}
				continue
			}
			if err := e.MoveQuery(qu.ID, qu.NewPoints); err != nil {
				e.invalidQueries++
			}
		case model.QueryInstall:
			// Installations happen through Register, which computes the
			// initial result immediately; the stream entry is a no-op kept
			// for symmetry with the paper's U_q.
		default:
			e.invalidQueries++
		}
	}
	e.phases.QueryUpd = time.Since(qStart).Nanoseconds()
}

// touch lazily initializes a query's per-cycle update-handling state
// (Figure 3.8 lines 1–3) the first time an update concerns it, and records
// it for resolution. refDist freezes best_dist at its start-of-cycle value:
// incomer/outgoer classification must use the influence-region radius, not
// a value drifting as the result mutates mid-cycle.
func (e *Engine) touch(qu *query) {
	if qu.cycleMark == e.cycle {
		return
	}
	qu.cycleMark = e.cycle
	qu.refDist = qu.best.kthDist()
	qu.outCount = 0
	qu.inList.reset()
	qu.inDropped = false
	qu.forceRecompute = false
	e.dirty = append(e.dirty, qu)
}

// applyObjectUpdate applies one element of U_P to the grid and performs the
// influence-list scans of Figure 3.8 (lines 4–16), extended with insert and
// delete events: a deleted NN is an outgoing NN ("CPM trivially deals with
// off-line NNs by treating them as outgoing ones", Section 4.2).
func (e *Engine) applyObjectUpdate(u model.Update) {
	switch u.Kind {
	case model.Move:
		if !finitePoint(u.New) {
			e.invalidObjects++
			return
		}
		// The grid stores positions clamped onto the workspace; the scans
		// below must see the same point the index stores, or an object's
		// routed distance would disagree with its stored one.
		p := e.g.Clamp(u.New)
		oldCell, newCell, err := e.g.Move(u.ID, p)
		if err != nil {
			e.invalidObjects++
			return
		}
		// Affected-cell pre-filter: with both cells outside every influence
		// region the Figure 3.8 scans would iterate empty influence lists,
		// so only the index mutation above is needed. Under the sharded
		// monitor each shard's influence lists cover only its own queries,
		// which makes this the per-shard update routing filter.
		if e.g.InfluenceLen(oldCell) == 0 && e.g.InfluenceLen(newCell) == 0 {
			return
		}
		e.scanOldCell(u.ID, p, oldCell)
		e.scanNewCell(u.ID, p, newCell)
		e.rangeScan(oldCell, u.ID, p, true)
		if newCell != oldCell {
			e.rangeScan(newCell, u.ID, p, true)
		}
	case model.Insert:
		if !finitePoint(u.New) {
			e.invalidObjects++
			return
		}
		p := e.g.Clamp(u.New)
		if err := e.g.Insert(u.ID, p); err != nil {
			e.invalidObjects++
			return
		}
		newCell := e.g.CellOf(p)
		if e.g.InfluenceLen(newCell) == 0 {
			return
		}
		e.scanNewCell(u.ID, p, newCell)
		e.rangeScan(newCell, u.ID, p, true)
	case model.Delete:
		pos, ok := e.g.Position(u.ID)
		if !ok {
			e.invalidObjects++
			return
		}
		oldCell := e.g.CellOf(pos)
		if err := e.g.Delete(u.ID); err != nil {
			e.invalidObjects++
			return
		}
		if e.g.InfluenceLen(oldCell) == 0 {
			return
		}
		for _, qid := range e.g.Influence(oldCell) {
			qu := e.lookupActive(qid)
			if qu == nil {
				continue
			}
			e.touch(qu)
			if qu.best.remove(u.ID) {
				qu.outCount++
			}
			qu.dropIncomer(u.ID)
		}
		e.rangeScan(oldCell, u.ID, pos, false)
	default:
		e.invalidObjects++
	}
}

// scanOldCell handles lines 6–12 of Figure 3.8 for the cell the object
// left: a current NN either has its order updated (it stays within
// refDist) or becomes an outgoing NN. A pending incomer that moved again is
// dropped from in_list; scanNewCell re-admits it if it still qualifies.
// The influence list is iterated as a borrowed slice: the scans only
// mutate per-query result state, never the influence lists themselves.
func (e *Engine) scanOldCell(id model.ObjectID, newPos geom.Point, c grid.CellIndex) {
	for _, qid := range e.g.Influence(c) {
		qu := e.lookupActive(qid)
		if qu == nil {
			continue
		}
		e.touch(qu)
		if !qu.best.contains(id) {
			qu.dropIncomer(id)
			continue
		}
		d := qu.def.dist(newPos)
		if d <= qu.refDist && qu.def.admits(newPos) {
			qu.best.updateDist(id, d)
		} else {
			qu.best.remove(id)
			qu.outCount++
		}
	}
}

// scanNewCell handles lines 14–16 of Figure 3.8 for the cell the object
// entered: an object other than a current NN that lies within refDist (and
// inside the constraint region, if any) is an incoming object.
func (e *Engine) scanNewCell(id model.ObjectID, newPos geom.Point, c grid.CellIndex) {
	for _, qid := range e.g.Influence(c) {
		qu := e.lookupActive(qid)
		if qu == nil {
			continue
		}
		e.touch(qu)
		if qu.best.contains(id) {
			continue
		}
		d := qu.def.dist(newPos)
		if d <= qu.refDist && qu.def.admits(newPos) {
			qu.dropIncomer(id) // refresh a pending incomer's distance
			if qu.inList.full() {
				qu.inDropped = true // the offer will discard some incomer
			}
			qu.inList.offer(id, d)
		} else {
			qu.dropIncomer(id)
		}
	}
}

// dropIncomer removes a pending incomer. If the capped in_list previously
// discarded an incomer, the discarded one might have ranked better than
// what remains, so losing a retained entry afterwards makes the in_list an
// unreliable top-k and the query must re-compute (see the query struct).
func (qu *query) dropIncomer(id model.ObjectID) {
	if qu.inList.remove(id) && qu.inDropped {
		qu.forceRecompute = true
	}
}

// lookupActive resolves a k-NN query id routed through an influence list,
// skipping queries with their own update in the current batch.
func (e *Engine) lookupActive(qid model.QueryID) *query {
	qu := e.queries[qid]
	if qu == nil || qu.ignoreMark == e.batchGen {
		return nil
	}
	return qu
}

// resolveDirty performs lines 17–24 of Figure 3.8 for every query touched
// this cycle: if the incoming objects are at least as many as the outgoing
// NNs, the new result is the k best of best_NN ∪ in_list — the circle of
// radius refDist provably still holds k objects, so no grid access is
// needed. Otherwise the NN Re-Computation module runs. Either way the
// influence region is re-tightened to the new best_dist.
func (e *Engine) resolveDirty() {
	for _, qu := range e.dirty {
		if !qu.forceRecompute && qu.inList.len() >= qu.outCount {
			e.stats.ShortCircuits++
			for _, n := range qu.inList.items {
				qu.best.offer(n.ID, n.Dist)
			}
			e.shrinkInfluence(qu)
		} else {
			e.recompute(qu)
		}
		qu.outCount = 0
		qu.inList.reset()
		e.noteIfChanged(qu)
	}
	e.dirty = e.dirty[:0]
	for _, rq := range e.dirtyRanges {
		e.noteRangeIfChanged(rq)
	}
	e.dirtyRanges = e.dirtyRanges[:0]
}
