package core

import (
	"time"

	"cpm/internal/geom"
	"cpm/internal/grid"
	"cpm/internal/model"
)

// ProcessBatch runs one processing cycle: the NN Monitoring loop of Figure
// 3.9. It first handles the object updates U_P (ignoring queries that have
// their own updates this cycle, whose results are obsolete anyway), then
// applies the query updates U_q — terminations, moves (a move is a
// termination plus a fresh installation, Section 3.3) — and leaves every
// installed query's result current.
//
// Only the private-grid engine applies the object stream itself; it does so
// through grid.ApplyBatch — apply all index mutations, then scan the write
// log — which is exactly the cycle shape the sharded monitor drives
// externally over a shared grid (BeginCycle / ScanApplied /
// ApplyQueryUpdates). The log-then-scan split is lossless: the influence
// scans of Figure 3.8 classify objects by their logged position and cell
// transition and never read the grid's object data, so scanning after all
// writes observes exactly what interleaved scanning did.
//
// Inconsistent stream elements (moves or deletes of unknown objects,
// duplicate inserts, updates for unknown queries) are dropped and counted
// in InvalidUpdates; a monitoring server must outlive a misbehaving client.
//
// A steady-state cycle (moves only, warmed buffers) performs zero heap
// allocations: the write log and per-cycle sets are reused slices, and all
// influence and cell scans iterate borrowed slices.
func (e *Engine) ProcessBatch(b model.Batch) {
	if !e.ownsGrid {
		panic("core: ProcessBatch on a shared-grid engine (the monitor applies updates)")
	}
	e.BeginCycle(b.Queries)
	if e.opts.PerUpdate {
		// Ablation X2: Section 3.2 semantics — each update is applied,
		// classified and resolved on its own, so an outgoing NN triggers
		// re-computation even when a later update this cycle would have
		// compensated for it.
		for i := range b.Objects {
			var invalid int64
			e.applied, invalid = e.g.ApplyBatch(b.Objects[i:i+1], e.applied[:0])
			e.invalidObjects += invalid
			e.ScanApplied(e.applied)
		}
	} else {
		t0 := time.Now()
		var invalid int64
		e.applied, invalid = e.g.ApplyBatch(b.Objects, e.applied[:0])
		e.invalidObjects += invalid
		// Index maintenance is part of the relocation phase of the Section
		// 4 cost model; ScanApplied adds the scan share on top.
		e.phases.Relocate += time.Since(t0).Nanoseconds()
		e.ScanApplied(e.applied)
	}
	e.ApplyQueryUpdates(b.Queries)
}

// BeginCycle opens one processing cycle: it resets the phase decomposition
// and the notification window, and stamps the queries that have their own
// update in queries so the object-update scans skip them (the per-cycle
// "ignore" set of Figure 3.9, kept as generation marks instead of a map).
// The sharded monitor calls this on every engine before applying the
// tick's writes; ProcessBatch is BeginCycle + apply/ScanApplied +
// ApplyQueryUpdates.
func (e *Engine) BeginCycle(queries []model.QueryUpdate) {
	e.phases = model.PhaseNanos{}
	e.changeGen++
	e.changedIDs = e.changedIDs[:0]
	e.batchGen++
	for _, qu := range queries {
		if q, ok := e.queries[qu.ID]; ok {
			q.ignoreMark = e.batchGen
		} else if rq, ok := e.ranges[qu.ID]; ok {
			rq.ignoreMark = e.batchGen
		}
	}
}

// ScanApplied routes one write log — the grid mutations of a tick (or of a
// single update in per-update mode), already applied by the grid's owner —
// through the engine's influence indexes (Figure 3.8 scans) and resolves
// every touched query. The grid must be at a stable epoch: the scans read
// only the log and per-query state, and resolution (which does read the
// grid) runs after the fan-out barrier on a serial path. Phase times
// accumulate so per-update rounds compose.
func (e *Engine) ScanApplied(log []grid.Applied) {
	e.cycle++
	t0 := time.Now()
	if e.groups == 1 {
		e.scanGroup(0, log)
	} else if len(log) > 0 {
		e.ensureScanWorkers()
		e.scanWG.Add(e.groups)
		for _, ch := range e.scanFeed {
			ch <- log
		}
		e.scanWG.Wait()
	}
	t1 := time.Now()
	e.resolveDirty()
	t2 := time.Now()
	e.phases.Relocate += t1.Sub(t0).Nanoseconds()
	e.phases.Reeval += t2.Sub(t1).Nanoseconds()
}

// ApplyQueryUpdates applies the query stream U_q for the cycle opened by
// BeginCycle. The sharded monitor routes each query update to exactly one
// engine, so the updates seen here are a subset of the batch passed to
// BeginCycle.
func (e *Engine) ApplyQueryUpdates(queries []model.QueryUpdate) {
	qStart := time.Now()
	for _, qu := range queries {
		switch qu.Kind {
		case model.QueryTerminate:
			_, isNN := e.queries[qu.ID]
			_, isRange := e.ranges[qu.ID]
			if !isNN && !isRange {
				e.invalidQueries++
				continue
			}
			e.RemoveQuery(qu.ID)
		case model.QueryMove:
			if _, isRange := e.ranges[qu.ID]; isRange {
				if len(qu.NewPoints) != 1 || e.MoveRange(qu.ID, qu.NewPoints[0]) != nil {
					e.invalidQueries++
				}
				continue
			}
			if err := e.MoveQuery(qu.ID, qu.NewPoints); err != nil {
				e.invalidQueries++
			}
		case model.QueryInstall:
			// Installations happen through Register, which computes the
			// initial result immediately; the stream entry is a no-op kept
			// for symmetry with the paper's U_q.
		default:
			e.invalidQueries++
		}
	}
	e.phases.QueryUpd += time.Since(qStart).Nanoseconds()
}

// touch lazily initializes a query's per-cycle update-handling state
// (Figure 3.8 lines 1–3) the first time an update concerns it, and records
// it in its group's dirty set. refDist freezes best_dist at its
// start-of-cycle value: incomer/outgoer classification must use the
// influence-region radius, not a value drifting as the result mutates
// mid-cycle.
func (e *Engine) touch(qu *query) {
	if qu.cycleMark == e.cycle {
		return
	}
	qu.cycleMark = e.cycle
	qu.refDist = qu.best.kthDist()
	qu.outCount = 0
	qu.inList.reset()
	qu.inDropped = false
	qu.forceRecompute = false
	e.dirty[qu.group] = append(e.dirty[qu.group], qu)
}

// scanGroup performs the influence-list scans of Figure 3.8 (lines 4–16) for
// one scan group over a tick's write log, extended with insert and delete
// events: a deleted NN is an outgoing NN ("CPM trivially deals with off-line
// NNs by treating them as outgoing ones", Section 4.2). Group w reads only
// infls[w] and the per-query state of the queries homed there, so all groups
// can scan the same log concurrently.
func (e *Engine) scanGroup(w int, log []grid.Applied) {
	infl := e.infls[w]
	for i := range log {
		a := &log[i]
		switch a.Kind {
		case model.Move:
			// Affected-cell pre-filter: with both cells outside every
			// influence region of this group the Figure 3.8 scans would
			// iterate empty influence lists. Under the sharded monitor each
			// shard's influence lists cover only its own queries, which
			// makes this the per-shard (and per-group) update routing
			// filter.
			if infl.Len(a.Old) == 0 && infl.Len(a.New) == 0 {
				continue
			}
			e.scanOldCell(infl, a.ID, a.Pos, a.Old)
			e.scanNewCell(infl, a.ID, a.Pos, a.New)
			e.rangeScan(infl, a.Old, a.ID, a.Pos, true)
			if a.New != a.Old {
				e.rangeScan(infl, a.New, a.ID, a.Pos, true)
			}
		case model.Insert:
			if infl.Len(a.New) == 0 {
				continue
			}
			e.scanNewCell(infl, a.ID, a.Pos, a.New)
			e.rangeScan(infl, a.New, a.ID, a.Pos, true)
		case model.Delete:
			if infl.Len(a.Old) == 0 {
				continue
			}
			for _, qid := range infl.List(a.Old) {
				qu := e.lookupActive(qid)
				if qu == nil {
					continue
				}
				e.touch(qu)
				if qu.best.remove(a.ID) {
					qu.outCount++
				}
				qu.dropIncomer(a.ID)
			}
			e.rangeScan(infl, a.Old, a.ID, a.Pos, false)
		}
	}
}

// scanOldCell handles lines 6–12 of Figure 3.8 for the cell the object
// left: a current NN either has its order updated (it stays within
// refDist) or becomes an outgoing NN. A pending incomer that moved again is
// dropped from in_list; scanNewCell re-admits it if it still qualifies.
// The influence list is iterated as a borrowed slice: the scans only
// mutate per-query result state, never the influence lists themselves.
func (e *Engine) scanOldCell(infl *grid.Influence, id model.ObjectID, newPos geom.Point, c grid.CellIndex) {
	for _, qid := range infl.List(c) {
		qu := e.lookupActive(qid)
		if qu == nil {
			continue
		}
		e.touch(qu)
		if !qu.best.contains(id) {
			qu.dropIncomer(id)
			continue
		}
		d := qu.def.dist(newPos)
		if d <= qu.refDist && qu.def.admits(newPos) {
			qu.best.updateDist(id, d)
		} else {
			qu.best.remove(id)
			qu.outCount++
		}
	}
}

// scanNewCell handles lines 14–16 of Figure 3.8 for the cell the object
// entered: an object other than a current NN that lies within refDist (and
// inside the constraint region, if any) is an incoming object.
func (e *Engine) scanNewCell(infl *grid.Influence, id model.ObjectID, newPos geom.Point, c grid.CellIndex) {
	for _, qid := range infl.List(c) {
		qu := e.lookupActive(qid)
		if qu == nil {
			continue
		}
		e.touch(qu)
		if qu.best.contains(id) {
			continue
		}
		d := qu.def.dist(newPos)
		if d <= qu.refDist && qu.def.admits(newPos) {
			qu.dropIncomer(id) // refresh a pending incomer's distance
			if qu.inList.full() {
				qu.inDropped = true // the offer will discard some incomer
			}
			qu.inList.offer(id, d)
		} else {
			qu.dropIncomer(id)
		}
	}
}

// dropIncomer removes a pending incomer. If the capped in_list previously
// discarded an incomer, the discarded one might have ranked better than
// what remains, so losing a retained entry afterwards makes the in_list an
// unreliable top-k and the query must re-compute (see the query struct).
func (qu *query) dropIncomer(id model.ObjectID) {
	if qu.inList.remove(id) && qu.inDropped {
		qu.forceRecompute = true
	}
}

// lookupActive resolves a k-NN query id routed through an influence list,
// skipping queries with their own update in the current batch.
func (e *Engine) lookupActive(qid model.QueryID) *query {
	qu := e.queries[qid]
	if qu == nil || qu.ignoreMark == e.batchGen {
		return nil
	}
	return qu
}

// resolveDirty performs lines 17–24 of Figure 3.8 for every query touched
// this cycle: if the incoming objects are at least as many as the outgoing
// NNs, the new result is the k best of best_NN ∪ in_list — the circle of
// radius refDist provably still holds k objects, so no grid access is
// needed. Otherwise the NN Re-Computation module runs. Either way the
// influence region is re-tightened to the new best_dist. Groups are drained
// serially in group order; the effect per query is order-independent, and
// the change/diff stream is canonicalized downstream (ChangedQueries sorts,
// TakeDiffs consumers sort by query id), so grouping does not alter
// observable output.
func (e *Engine) resolveDirty() {
	for w := range e.dirty {
		for _, qu := range e.dirty[w] {
			if !qu.forceRecompute && qu.inList.len() >= qu.outCount {
				e.stats.ShortCircuits++
				for _, n := range qu.inList.items {
					qu.best.offer(n.ID, n.Dist)
				}
				e.shrinkInfluence(qu)
			} else {
				e.recompute(qu)
			}
			qu.outCount = 0
			qu.inList.reset()
			e.noteIfChanged(qu)
		}
		e.dirty[w] = e.dirty[w][:0]
	}
	for w := range e.dirtyRanges {
		for _, rq := range e.dirtyRanges[w] {
			e.noteRangeIfChanged(rq)
		}
		e.dirtyRanges[w] = e.dirtyRanges[w][:0]
	}
}
