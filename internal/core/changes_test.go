package core

import (
	"fmt"
	"testing"

	"cpm/internal/geom"
	"cpm/internal/model"
)

func TestChangedQueriesBasics(t *testing.T) {
	e := NewUnitEngine(16, Options{})
	e.Bootstrap(map[model.ObjectID]geom.Point{
		1: {X: 0.52, Y: 0.5},
		2: {X: 0.6, Y: 0.6},
		3: {X: 0.9, Y: 0.9},
	})
	if err := e.RegisterQuery(1, geom.Point{X: 0.5, Y: 0.5}, 1); err != nil {
		t.Fatal(err)
	}
	if got := e.ChangedQueries(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("changes after install = %v", got)
	}

	// A far-away move changes nothing.
	e.ProcessBatch(model.Batch{Objects: []model.Update{
		model.MoveUpdate(3, geom.Point{X: 0.9, Y: 0.9}, geom.Point{X: 0.85, Y: 0.85}),
	}})
	if got := e.ChangedQueries(); got != nil {
		t.Fatalf("changes after irrelevant move = %v", got)
	}

	// A new nearest neighbor is a change.
	e.ProcessBatch(model.Batch{Objects: []model.Update{
		model.MoveUpdate(2, geom.Point{X: 0.6, Y: 0.6}, geom.Point{X: 0.505, Y: 0.5}),
	}})
	if got := e.ChangedQueries(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("changes after new NN = %v", got)
	}

	// The NN moving within best_dist changes the reported distance — that
	// counts as a change too.
	e.ProcessBatch(model.Batch{Objects: []model.Update{
		model.MoveUpdate(2, geom.Point{X: 0.505, Y: 0.5}, geom.Point{X: 0.503, Y: 0.5}),
	}})
	if got := e.ChangedQueries(); len(got) != 1 {
		t.Fatalf("changes after in-place distance update = %v", got)
	}

	// Termination is a final change.
	e.ProcessBatch(model.Batch{Queries: []model.QueryUpdate{{ID: 1, Kind: model.QueryTerminate}}})
	if got := e.ChangedQueries(); len(got) != 1 || got[0] != 1 {
		t.Fatalf("changes after terminate = %v", got)
	}
	// And the set resets next cycle.
	e.ProcessBatch(model.Batch{})
	if got := e.ChangedQueries(); got != nil {
		t.Fatalf("changes after empty cycle = %v", got)
	}
}

func TestChangedQueriesRange(t *testing.T) {
	e := NewUnitEngine(16, Options{})
	e.Bootstrap(map[model.ObjectID]geom.Point{
		1: {X: 0.52, Y: 0.5},
		2: {X: 0.9, Y: 0.9},
	})
	if err := e.RegisterRange(7, geom.Point{X: 0.5, Y: 0.5}, 0.1); err != nil {
		t.Fatal(err)
	}
	e.ProcessBatch(model.Batch{Objects: []model.Update{
		model.MoveUpdate(2, geom.Point{X: 0.9, Y: 0.9}, geom.Point{X: 0.55, Y: 0.5}),
	}})
	if got := e.ChangedQueries(); len(got) != 1 || got[0] != 7 {
		t.Fatalf("changes after range entry = %v", got)
	}
	// Movement inside the fence that keeps membership still changes
	// distances; movement outside it entirely changes nothing.
	e.ProcessBatch(model.Batch{Objects: []model.Update{
		model.MoveUpdate(2, geom.Point{X: 0.55, Y: 0.5}, geom.Point{X: 0.56, Y: 0.5}),
	}})
	if got := e.ChangedQueries(); len(got) != 1 {
		t.Fatalf("changes after in-fence move = %v", got)
	}
}

// TestChangedQueriesMatchesDiff cross-checks the notification set against
// explicit before/after result diffs over random workloads.
func TestChangedQueriesMatchesDiff(t *testing.T) {
	for seed := int64(300); seed < 305; seed++ {
		w := newWorld(seed)
		e := NewUnitEngine(12, Options{})
		e.Bootstrap(w.populate(150))
		ids := []model.QueryID{}
		for i := 0; i < 6; i++ {
			id := model.QueryID(i)
			if err := e.RegisterQuery(id, w.randPoint(), 1+w.rng.Intn(5)); err != nil {
				t.Fatal(err)
			}
			ids = append(ids, id)
		}
		if err := e.RegisterRange(100, w.randPoint(), 0.2); err != nil {
			t.Fatal(err)
		}
		ids = append(ids, 100)
		for cycle := 0; cycle < 15; cycle++ {
			before := map[model.QueryID]string{}
			for _, id := range ids {
				before[id] = fingerprint(e, id)
			}
			e.ProcessBatch(w.randomBatch(30, false))
			notified := map[model.QueryID]bool{}
			for _, id := range e.ChangedQueries() {
				notified[id] = true
			}
			for _, id := range ids {
				changed := before[id] != fingerprint(e, id)
				if changed && !notified[id] {
					t.Fatalf("seed %d cycle %d: query %d changed but not notified", seed, cycle, id)
				}
				if !changed && notified[id] {
					t.Fatalf("seed %d cycle %d: query %d notified without change", seed, cycle, id)
				}
			}
		}
	}
}

func fingerprint(e *Engine, id model.QueryID) string {
	var res []model.Neighbor
	if e.IsRange(id) {
		res = e.RangeResult(id)
	} else {
		res = e.Result(id)
	}
	return fmt.Sprint(res)
}
