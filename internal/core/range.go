package core

import (
	"fmt"
	"math"
	"sort"

	"cpm/internal/geom"
	"cpm/internal/grid"
	"cpm/internal/model"
)

// Continuous range monitoring on the CPM substrate.
//
// The paper's related work (Q-index, MQM, Mobieyes, SINA — Section 2) is
// entirely about continuous *range* queries; CPM's machinery subsumes them
// naturally: a range query's influence region is simply the cells
// intersecting the disk (center, radius) — fixed while the query stands
// still — and its result is maintained purely from the updates routed
// through the influence lists. No search ever needs to resume: membership
// is decided per object by one distance comparison, so range monitoring
// needs neither a visit list nor a search heap.

// rangeQuery is the query-table entry of a continuous range query.
type rangeQuery struct {
	id     model.QueryID
	center geom.Point
	radius float64

	members map[model.ObjectID]float64 // current result: object -> distance
	cells   []grid.CellIndex           // influence cells (disk cover)

	reported  []model.Neighbor // result as last exposed through ChangedQueries
	cycleMark int64            // dedupe marker for the per-cycle touch list
}

// RegisterRange installs a continuous range query: it continuously reports
// every object within radius of center.
func (e *Engine) RegisterRange(id model.QueryID, center geom.Point, radius float64) error {
	if radius < 0 || math.IsNaN(radius) || math.IsInf(radius, 0) {
		return fmt.Errorf("core: invalid range radius %v", radius)
	}
	if !finitePoint(center) {
		return fmt.Errorf("core: non-finite range center %v", center)
	}
	if _, exists := e.queries[id]; exists {
		return fmt.Errorf("core: query %d already installed", id)
	}
	if _, exists := e.ranges[id]; exists {
		return fmt.Errorf("core: query %d already installed", id)
	}
	rq := &rangeQuery{
		id:      id,
		center:  center,
		radius:  radius,
		members: make(map[model.ObjectID]float64),
	}
	e.ranges[id] = rq
	e.evaluateRange(rq)
	rq.reported = e.RangeResult(id)
	e.changed[id] = true
	e.noteInstalled(id, rq.reported)
	return nil
}

// evaluateRange computes the result from scratch and installs the
// influence entries for the disk cover.
func (e *Engine) evaluateRange(rq *rangeQuery) {
	e.stats.FullSearches++
	e.g.CellsInCircle(rq.center, rq.radius, func(c grid.CellIndex) {
		e.g.AddInfluence(c, rq.id)
		rq.cells = append(rq.cells, c)
		e.g.ScanObjects(c, func(id model.ObjectID, p geom.Point) {
			e.stats.ObjectsProcessed++
			if d := geom.Dist(p, rq.center); d <= rq.radius {
				rq.members[id] = d
			}
		})
	})
}

// clearRange removes the query's influence entries and result.
func (e *Engine) clearRange(rq *rangeQuery) {
	for _, c := range rq.cells {
		e.g.RemoveInfluence(c, rq.id)
	}
	rq.cells = rq.cells[:0]
	for id := range rq.members {
		delete(rq.members, id)
	}
}

// MoveRange relocates a continuous range query. Like a moving k-NN query
// (Section 3.3), the move is a termination plus a fresh installation.
func (e *Engine) MoveRange(id model.QueryID, center geom.Point) error {
	rq, ok := e.ranges[id]
	if !ok {
		return fmt.Errorf("core: move of unknown range query %d", id)
	}
	if !finitePoint(center) {
		return fmt.Errorf("core: non-finite range center %v", center)
	}
	e.clearRange(rq)
	rq.center = center
	e.evaluateRange(rq)
	e.noteRangeIfChanged(rq)
	return nil
}

// rangeUpdate folds one object event into every range query whose
// influence lists route it here. leaving is the update's old cell (NoCell
// for inserts), entering the new one (NoCell for deletes).
func (e *Engine) rangeScan(c grid.CellIndex, id model.ObjectID, pos geom.Point, present bool, ignored map[model.QueryID]bool) {
	e.g.ForEachInfluence(c, func(qid model.QueryID) {
		rq, ok := e.ranges[qid]
		if !ok {
			return
		}
		if ignored != nil && ignored[qid] {
			return
		}
		if rq.cycleMark != e.cycle {
			rq.cycleMark = e.cycle
			e.dirtyRanges = append(e.dirtyRanges, rq)
		}
		if !present {
			delete(rq.members, id)
			return
		}
		if d := geom.Dist(pos, rq.center); d <= rq.radius {
			rq.members[id] = d
		} else {
			delete(rq.members, id)
		}
	})
}

// IsRange reports whether id names an installed range query.
func (e *Engine) IsRange(id model.QueryID) bool {
	_, ok := e.ranges[id]
	return ok
}

// RangeResult returns the current members of a range query ordered by
// (distance, id), or nil for unknown ids. The caller owns the slice.
func (e *Engine) RangeResult(id model.QueryID) []model.Neighbor {
	rq, ok := e.ranges[id]
	if !ok {
		return nil
	}
	out := make([]model.Neighbor, 0, len(rq.members))
	for oid, d := range rq.members {
		out = append(out, model.Neighbor{ID: oid, Dist: d})
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
	return out
}

func finitePoint(p geom.Point) bool {
	return !math.IsNaN(p.X) && !math.IsNaN(p.Y) && !math.IsInf(p.X, 0) && !math.IsInf(p.Y, 0)
}
