package core

import (
	"fmt"
	"math"
	"slices"

	"cpm/internal/geom"
	"cpm/internal/grid"
	"cpm/internal/model"
)

// Continuous range monitoring on the CPM substrate.
//
// The paper's related work (Q-index, MQM, Mobieyes, SINA — Section 2) is
// entirely about continuous *range* queries; CPM's machinery subsumes them
// naturally: a range query's influence region is simply the cells
// intersecting the disk (center, radius) — fixed while the query stands
// still — and its result is maintained purely from the updates routed
// through the influence lists. No search ever needs to resume: membership
// is decided per object by one distance comparison, so range monitoring
// needs neither a visit list nor a search heap.

// rangeQuery is the query-table entry of a continuous range query.
type rangeQuery struct {
	id     model.QueryID
	center geom.Point
	radius float64

	// group is the scan group holding this query's influence entries
	// (see query.group).
	group int32

	// members is the current result (object -> distance). Membership needs
	// O(1) keyed update from rangeScan, and unlike the grid's cell sets it
	// is only iterated when this query's result actually changed, so a map
	// stays the right structure here (see README "Design notes").
	members map[model.ObjectID]float64
	cells   []grid.CellIndex // influence cells (disk cover)

	reported    []model.Neighbor // result as last exposed through ChangedQueries
	cycleMark   int64            // dedupe marker for the per-cycle touch list
	changedMark int64            // dedupe marker for the notification set
	ignoreMark  int64            // == Engine.batchGen when updated this batch
}

// RegisterRange installs a continuous range query: it continuously reports
// every object within radius of center.
func (e *Engine) RegisterRange(id model.QueryID, center geom.Point, radius float64) error {
	if radius < 0 || math.IsNaN(radius) || math.IsInf(radius, 0) {
		return fmt.Errorf("core: invalid range radius %v", radius)
	}
	if !finitePoint(center) {
		return fmt.Errorf("core: non-finite range center %v", center)
	}
	if _, exists := e.queries[id]; exists {
		return fmt.Errorf("core: query %d already installed", id)
	}
	if _, exists := e.ranges[id]; exists {
		return fmt.Errorf("core: query %d already installed", id)
	}
	rq := &rangeQuery{
		id:      id,
		center:  center,
		radius:  radius,
		group:   e.groupOf(e.g.CellOf(center)),
		members: make(map[model.ObjectID]float64),
	}
	e.ranges[id] = rq
	e.evaluateRange(rq)
	rq.reported = e.RangeResult(id)
	e.markChanged(id, &rq.changedMark)
	if e.diffsOn {
		// A second snapshot: rq.reported's backing array is reused in place
		// by noteRangeIfChanged, so the install event must not alias it.
		e.noteInstalled(id, e.RangeResult(id))
	}
	return nil
}

// evaluateRange computes the result from scratch and installs the
// influence entries for the disk cover. The adds are unchecked: the query
// holds no influence entries on entry (fresh registration, or clearRange
// ran) and CellsInCircle enumerates distinct cells.
func (e *Engine) evaluateRange(rq *rangeQuery) {
	e.stats.FullSearches++
	infl := e.infls[rq.group]
	e.g.CellsInCircle(rq.center, rq.radius, func(c grid.CellIndex) {
		infl.AddUnchecked(c, rq.id)
		rq.cells = append(rq.cells, c)
		objs := e.g.Objects(c)
		e.stats.CellAccesses++
		e.stats.ObjectsProcessed += int64(len(objs))
		for _, id := range objs {
			if d := geom.Dist(e.g.Pos(id), rq.center); d <= rq.radius {
				rq.members[id] = d
			}
		}
	})
}

// clearRange removes the query's influence entries and result.
func (e *Engine) clearRange(rq *rangeQuery) {
	infl := e.infls[rq.group]
	for _, c := range rq.cells {
		infl.Remove(c, rq.id)
	}
	rq.cells = rq.cells[:0]
	clear(rq.members)
}

// MoveRange relocates a continuous range query. Like a moving k-NN query
// (Section 3.3), the move is a termination plus a fresh installation.
func (e *Engine) MoveRange(id model.QueryID, center geom.Point) error {
	rq, ok := e.ranges[id]
	if !ok {
		return fmt.Errorf("core: move of unknown range query %d", id)
	}
	if !finitePoint(center) {
		return fmt.Errorf("core: non-finite range center %v", center)
	}
	e.clearRange(rq)
	rq.center = center
	rq.group = e.groupOf(e.g.CellOf(center))
	e.evaluateRange(rq)
	e.noteRangeIfChanged(rq)
	return nil
}

// rangeScan folds one object event into every range query whose influence
// lists route it here. present is false for deletes; the influence list is
// iterated as a borrowed slice (membership updates never touch it). infl is
// the scan group's index, so concurrent groups only ever touch their own
// range queries.
func (e *Engine) rangeScan(infl *grid.Influence, c grid.CellIndex, id model.ObjectID, pos geom.Point, present bool) {
	for _, qid := range infl.List(c) {
		rq, ok := e.ranges[qid]
		if !ok || rq.ignoreMark == e.batchGen {
			continue
		}
		if rq.cycleMark != e.cycle {
			rq.cycleMark = e.cycle
			e.dirtyRanges[rq.group] = append(e.dirtyRanges[rq.group], rq)
		}
		if !present {
			delete(rq.members, id)
			continue
		}
		if d := geom.Dist(pos, rq.center); d <= rq.radius {
			rq.members[id] = d
		} else {
			delete(rq.members, id)
		}
	}
}

// IsRange reports whether id names an installed range query.
func (e *Engine) IsRange(id model.QueryID) bool {
	_, ok := e.ranges[id]
	return ok
}

// RangeResult returns the current members of a range query ordered by
// (distance, id), or nil for unknown ids. The caller owns the slice.
func (e *Engine) RangeResult(id model.QueryID) []model.Neighbor {
	rq, ok := e.ranges[id]
	if !ok {
		return nil
	}
	return appendRangeResult(make([]model.Neighbor, 0, len(rq.members)), rq)
}

// appendRangeResult appends rq's members to buf ordered by (distance, id)
// and returns the extended slice. slices.SortFunc keeps the pass
// allocation-free, so per-cycle change detection can run it on a pooled
// scratch buffer.
func appendRangeResult(buf []model.Neighbor, rq *rangeQuery) []model.Neighbor {
	start := len(buf)
	for oid, d := range rq.members {
		buf = append(buf, model.Neighbor{ID: oid, Dist: d})
	}
	slices.SortFunc(buf[start:], func(a, b model.Neighbor) int {
		if a.Less(b) {
			return -1
		}
		if b.Less(a) {
			return 1
		}
		return 0
	})
	return buf
}

func finitePoint(p geom.Point) bool {
	return !math.IsNaN(p.X) && !math.IsNaN(p.Y) && !math.IsInf(p.X, 0) && !math.IsInf(p.Y, 0)
}
