package core

import (
	"cpm/internal/conc"
	"cpm/internal/grid"
)

// Search-heap payload encoding. Cells and conceptual rectangles share one
// heap; the payload word distinguishes them and, through the heap's
// (key, payload) tie-break, fixes a deterministic processing order: on
// equal keys, cells pop before strips (cells have bit 63 clear) and lower
// cell indices pop first. Deterministic order makes search traces — and
// therefore visit lists and influence regions — reproducible across runs.

const stripFlag uint64 = 1 << 63

func cellPayload(c grid.CellIndex) uint64 {
	return uint64(uint32(c))
}

func stripPayload(s conc.Strip) uint64 {
	return stripFlag | uint64(s.Dir)<<32 | uint64(uint32(s.Level))
}

func isStrip(payload uint64) bool { return payload&stripFlag != 0 }

func payloadCell(payload uint64) grid.CellIndex {
	return grid.CellIndex(uint32(payload))
}

func payloadStrip(payload uint64) conc.Strip {
	return conc.Strip{
		Dir:   conc.Dir(payload >> 32 & 0x3),
		Level: int32(uint32(payload)),
	}
}
