package core

import (
	"math"
	"sort"

	"cpm/internal/model"
)

// resultList is the best_NN list of a query: the k best (distance, id)
// pairs found so far, sorted ascending by the repository-wide (Dist, ID)
// order.
//
// The paper's analysis assumes a red-black tree (log k probes); with the
// experiment range k ≤ 256 a sorted slice with binary-search insertion has
// the same asymptotics and far better constants, so that is what we use
// (documented substitution, DESIGN.md §5). The same structure implements
// the in_list of the batched update handler (Figure 3.8), which is "a
// sorted list of size k" with eviction.
type resultList struct {
	k     int
	items []model.Neighbor
}

func newResultList(k int) resultList {
	return resultList{k: k, items: make([]model.Neighbor, 0, min(k, 64))}
}

// kthDist returns the paper's best_dist: the distance of the kth neighbor,
// or +Inf while the list holds fewer than k entries.
func (r *resultList) kthDist() float64 {
	if len(r.items) < r.k {
		return math.Inf(1)
	}
	return r.items[len(r.items)-1].Dist
}

// full reports whether the list holds k entries.
func (r *resultList) full() bool { return len(r.items) == r.k }

// len returns the number of entries.
func (r *resultList) len() int { return len(r.items) }

// offer considers (id, dist), inserting it in order and evicting the worst
// entry when the list would exceed k. It reports whether the entry was
// retained.
func (r *resultList) offer(id model.ObjectID, dist float64) bool {
	n := model.Neighbor{ID: id, Dist: dist}
	if len(r.items) == r.k {
		if !n.Less(r.items[len(r.items)-1]) {
			return false
		}
		r.items = r.items[:len(r.items)-1]
	}
	pos := sort.Search(len(r.items), func(i int) bool { return n.Less(r.items[i]) })
	r.items = append(r.items, model.Neighbor{})
	copy(r.items[pos+1:], r.items[pos:])
	r.items[pos] = n
	return true
}

// contains reports whether id is in the list. Linear scan: k is small and
// the list is contiguous in cache.
func (r *resultList) contains(id model.ObjectID) bool {
	return r.indexOf(id) >= 0
}

func (r *resultList) indexOf(id model.ObjectID) int {
	for i := range r.items {
		if r.items[i].ID == id {
			return i
		}
	}
	return -1
}

// remove deletes id from the list, reporting whether it was present.
func (r *resultList) remove(id model.ObjectID) bool {
	i := r.indexOf(id)
	if i < 0 {
		return false
	}
	r.items = append(r.items[:i], r.items[i+1:]...)
	return true
}

// updateDist re-positions id with a new distance (paper Figure 3.8 line 9:
// "update the order in q.best_NN"). It reports whether id was present.
func (r *resultList) updateDist(id model.ObjectID, dist float64) bool {
	if !r.remove(id) {
		return false
	}
	n := model.Neighbor{ID: id, Dist: dist}
	pos := sort.Search(len(r.items), func(i int) bool { return n.Less(r.items[i]) })
	r.items = append(r.items, model.Neighbor{})
	copy(r.items[pos+1:], r.items[pos:])
	r.items[pos] = n
	return true
}

// reset empties the list, retaining storage.
func (r *resultList) reset() { r.items = r.items[:0] }

// snapshot returns a copy of the entries, ordered.
func (r *resultList) snapshot() []model.Neighbor {
	out := make([]model.Neighbor, len(r.items))
	copy(out, r.items)
	return out
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
