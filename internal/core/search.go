package core

import (
	"sort"

	"cpm/internal/conc"
	"cpm/internal/geom"
	"cpm/internal/grid"
)

// compute is the NN Computation module (paper Figure 3.4), extended to
// aggregate and constrained queries (Section 5). It computes the query's
// result from scratch, rebuilding the visit list, the leftover search heap
// and the influence-list entries.
//
// The search visits cells in ascending key order — key being mindist(c,q)
// for point queries and amindist(c,Q) for aggregate ones — which makes the
// set of processed cells minimal: exactly the cells that could contain a
// result object must be, and are, examined. Ascending order is guaranteed
// because every heap insertion carries a key no smaller than the entry that
// produced it: cells of a strip have mindist ≥ the strip's mindist, and the
// next-level strip adds δ (Lemma 3.1).
func (e *Engine) compute(qu *query) {
	e.stats.FullSearches++
	// Self-contained restart: drop any previous book-keeping first so no
	// stale influence entry can outlive the search that replaces it.
	e.clearInfluence(qu)
	qu.best.reset()

	part := e.partitionFor(qu.def)
	e.seedHeap(qu, part)
	e.runSearch(qu, part)
	e.finishSearch(qu, len(qu.visit), 0)

	if e.opts.DropBookkeeping {
		// Memory-pressure mode (end of Section 3.3): discard the search
		// state, keeping only the influence prefix that update handling
		// needs for notification and shrinking.
		qu.visit = qu.visit[:qu.influenceEnd]
		qu.heap.Reset()
	}
}

// seedHeap performs lines 3–5 of Figure 3.4: en-heap the center block's
// cells (the single cell c_q, or every cell intersecting the MBR M for an
// aggregate query) and the level-zero strip of each direction.
func (e *Engine) seedHeap(qu *query, part conc.Partition) {
	b := part.Block()
	for row := b.RowLo; row <= b.RowHi; row++ {
		for col := b.ColLo; col <= b.ColHi; col++ {
			e.pushCell(qu, col, row)
		}
	}
	for _, dir := range conc.Dirs {
		e.pushStrip(qu, part, conc.Strip{Dir: dir, Level: 0})
	}
}

func (e *Engine) pushCell(qu *query, col, row int) {
	rect := e.g.CellRect(col, row)
	if qu.def.prunesRect(rect) {
		return
	}
	qu.heap.Push(qu.def.minDist(rect), cellPayload(e.g.Index(col, row)))
	e.stats.HeapOps++
}

// pushStrip en-heaps a conceptual rectangle if it still holds grid cells
// and, for constrained queries, if its direction can still reach the
// constraint region. The strip's key is the mindist of its full
// (unclamped) extent — a lower bound for every cell inside it, so search
// correctness is preserved at the workspace border.
func (e *Engine) pushStrip(qu *query, part conc.Partition, s conc.Strip) {
	if !part.InGrid(s) {
		return
	}
	rect := part.Rect(s)
	if qu.def.Constraint != nil && !stripCanReach(s.Dir, rect, *qu.def.Constraint) {
		return
	}
	qu.heap.Push(qu.def.minDist(rect), stripPayload(s))
	e.stats.HeapOps++
}

// stripCanReach reports whether strip rect, or any higher level of the same
// direction, can intersect the constraint region. Levels move the strip
// monotonically away from the block along its fixed axis while widening
// along the other, so only the fixed axis can rule a direction out for
// good.
func stripCanReach(dir conc.Dir, rect, constraint geom.Rect) bool {
	switch dir {
	case conc.Up:
		return rect.Lo.Y <= constraint.Hi.Y
	case conc.Down:
		return rect.Hi.Y >= constraint.Lo.Y
	case conc.Left:
		return rect.Hi.X >= constraint.Lo.X
	case conc.Right:
		return rect.Lo.X <= constraint.Hi.X
	default:
		return true
	}
}

// runSearch is the de-heaping loop shared by computation (Figure 3.4 lines
// 7–17) and the heap-continuation phase of re-computation (Figure 3.6 line
// 8). It stops — leaving the heap intact for future re-computations — as
// soon as the next entry cannot improve the result.
func (e *Engine) runSearch(qu *query, part conc.Partition) {
	for {
		top, ok := qu.heap.Min()
		if !ok || top.Key >= qu.best.kthDist() {
			return
		}
		qu.heap.Pop()
		e.stats.HeapOps++
		if !isStrip(top.Payload) {
			c := payloadCell(top.Payload)
			e.scanCell(qu, c)
			qu.visit = append(qu.visit, visitEntry{cell: c, key: top.Key})
			continue
		}
		s := payloadStrip(top.Payload)
		part.Cells(s, func(col, row int) { e.pushCell(qu, col, row) })
		e.pushStrip(qu, part, conc.Strip{Dir: s.Dir, Level: s.Level + 1})
	}
}

// scanCell processes the objects of one cell against the query (Figure 3.4
// lines 10–11): each admissible object is offered to best_NN, and the query
// is recorded in the cell's influence list. The cell's object list is
// iterated as a borrowed slice — offering to best_NN never mutates the
// grid — so the scan allocates nothing. The influence add is unchecked:
// scanCell runs only for cells freshly de-heaped by a search, each of which
// enters the visit list exactly once while influence entries are always a
// prefix of that list, so the query cannot already be present.
func (e *Engine) scanCell(qu *query, c grid.CellIndex) {
	e.scanCellObjects(qu, c)
	e.infls[qu.group].AddUnchecked(c, qu.id)
}

// scanCellObjects is scanCell without the influence bookkeeping, for the
// re-computation replay, which knows per visit entry whether the influence
// entry already exists. The cell access is counted in the engine's own
// stats (not the grid's counter, which is unsynchronized on a shared grid).
func (e *Engine) scanCellObjects(qu *query, c grid.CellIndex) {
	def := &qu.def
	objs := e.g.Objects(c)
	e.stats.CellAccesses++
	e.stats.ObjectsProcessed += int64(len(objs))
	for _, id := range objs {
		p := e.g.Pos(id)
		if !def.admits(p) {
			continue
		}
		qu.best.offer(id, def.dist(p))
	}
}

// finishSearch trims influence-list entries down to the influence region:
// the prefix of the visit list with key ≤ best_dist. processedEnd is how
// many visit entries were scanned (and therefore carry influence entries)
// by the search that just ran; curInfluenceEnd is the previous influence
// prefix (entries that may still carry influence from before).
func (e *Engine) finishSearch(qu *query, processedEnd, curInfluenceEnd int) {
	newEnd := firstGreater(qu.visit, qu.best.kthDist())
	if newEnd > processedEnd {
		// Entries at exactly key == best_dist beyond the processed prefix
		// carry no influence entry; cap to what was actually scanned.
		newEnd = processedEnd
	}
	cur := processedEnd
	if curInfluenceEnd > cur {
		cur = curInfluenceEnd
	}
	infl := e.infls[qu.group]
	for i := newEnd; i < cur; i++ {
		infl.Remove(qu.visit[i].cell, qu.id)
	}
	qu.influenceEnd = newEnd
}

// firstGreater returns the index of the first visit entry with key
// strictly greater than limit (len(visit) when none is).
func firstGreater(visit []visitEntry, limit float64) int {
	return sort.Search(len(visit), func(i int) bool { return visit[i].key > limit })
}
