package core

import (
	"slices"

	"cpm/internal/model"
)

// Result-change notification — the "inform client for updated results"
// step of the monitoring cycle (Figure 3.9, line 10).
//
// The engine keeps, per query, the result as last reported to the client,
// and after each processing cycle exposes the set of queries whose current
// result differs. Only queries actually touched by a cycle are compared,
// so the check costs O(k) per *affected* query, not per installed query.
// The set itself is a reused slice deduped by generation stamp, so a
// steady-state cycle records changes without allocating.

// reportedEqual compares a stored snapshot with the live result.
func reportedEqual(reported, current []model.Neighbor) bool {
	if len(reported) != len(current) {
		return false
	}
	for i := range reported {
		if reported[i] != current[i] {
			return false
		}
	}
	return true
}

// markChanged records id in the notification set. mark is the owning
// query's dedupe stamp: a query already recorded in the current window is
// not appended again.
func (e *Engine) markChanged(id model.QueryID, mark *int64) {
	if *mark == e.changeGen {
		return
	}
	*mark = e.changeGen
	e.changedIDs = append(e.changedIDs, id)
}

// noteIfChanged compares a k-NN query's result against its reported
// snapshot, records a change (and, with diffs enabled, the exact delta)
// and refreshes the snapshot.
func (e *Engine) noteIfChanged(qu *query) {
	cur := qu.best.items
	if reportedEqual(qu.reported, cur) {
		return
	}
	if e.diffsOn {
		e.noteDiff(qu.id, qu.reported, cur)
	}
	qu.reported = append(qu.reported[:0], cur...)
	e.markChanged(qu.id, &qu.changedMark)
}

// noteRangeIfChanged does the same for a range query. The current sorted
// result is built into the engine's pooled scratch buffer, so the
// unchanged-fast-path comparison (and the snapshot refresh) allocates
// nothing once the buffers are warm.
func (e *Engine) noteRangeIfChanged(rq *rangeQuery) {
	cur := appendRangeResult(e.rangeScratch[:0], rq)
	e.rangeScratch = cur
	if reportedEqual(rq.reported, cur) {
		return
	}
	if e.diffsOn {
		e.noteDiff(rq.id, rq.reported, cur)
	}
	rq.reported = append(rq.reported[:0], cur...)
	e.markChanged(rq.id, &rq.changedMark)
}

// noteRemoved reports a query's disappearance as a final change;
// lastReported is the result as the engine last reported it. A pending
// diff for the query in the current window is composed away: the remove
// event lists what the subscriber actually saw (the pending diff's base),
// and a reinstall of the id later in the window starts a fresh event.
func (e *Engine) noteRemoved(id model.QueryID, lastReported []model.Neighbor) {
	// The query struct (and its dedupe stamp) is gone, so append
	// unconditionally; ChangedQueries dedupes on read.
	e.changedIDs = append(e.changedIDs, id)
	if !e.diffsOn {
		return
	}
	seen := lastReported
	at := len(e.diffs)
	if i, ok := e.diffAt[id]; ok {
		seen = e.diffBase[i]
		at = i
		delete(e.diffAt, id)
	}
	exited := make([]model.ObjectID, len(seen))
	for i := range seen {
		exited[i] = seen[i].ID
	}
	rm := model.ResultDiff{Query: id, Kind: model.DiffRemove, Exited: exited}
	if at < len(e.diffs) {
		e.diffs[at] = rm
	} else {
		e.diffs = append(e.diffs, rm)
	}
}

// ChangedQueries returns the ids of queries whose results changed during
// the last ProcessBatch (including queries that moved, were installed or
// were terminated by it), in ascending order. The set resets at the start
// of every cycle.
func (e *Engine) ChangedQueries() []model.QueryID {
	if len(e.changedIDs) == 0 {
		return nil
	}
	out := append([]model.QueryID(nil), e.changedIDs...)
	slices.Sort(out)
	// Terminations append without a dedupe stamp; compact duplicates.
	return slices.Compact(out)
}

// AppendChangedIDs appends the raw changed-id set — unsorted, possibly
// holding duplicate termination entries — to buf and returns the extended
// slice. The sharded monitor merges the raw sets of all engines into one
// reused buffer and sorts/compacts once, so the serving path allocates
// nothing beyond the shared buffer's warm capacity.
func (e *Engine) AppendChangedIDs(buf []model.QueryID) []model.QueryID {
	return append(buf, e.changedIDs...)
}
