// Package core implements CPM — the Conceptual Partitioning Monitoring
// method of Mouratidis, Hadjieleftheriou and Papadias (SIGMOD 2005) — for
// continuous (aggregate, optionally constrained) k nearest neighbor queries
// over streams of object location updates.
//
// The engine reads a grid index (internal/grid) — owned privately
// (NewEngine) or injected and shared with sibling engines (NewSharedEngine,
// used by internal/shard) — and owns a query table holding, per query: its
// definition, the best_NN result list, best_dist, the visit list and the
// leftover search heap (paper Figure 3.3a), plus the influence-list index
// for its queries (grid.Influence). Searches traverse the conceptual
// partitioning of internal/conc. The three paper modules map to three
// files:
//
//	search.go     — NN Computation        (Figure 3.4)
//	recompute.go  — NN Re-Computation     (Figure 3.6)
//	update.go     — Update Handling + the per-cycle NN Monitoring loop
//	                (Figures 3.8 and 3.9)
package core

import (
	"fmt"
	"slices"
	"sync"

	"cpm/internal/conc"
	"cpm/internal/geom"
	"cpm/internal/grid"
	"cpm/internal/model"
	"cpm/internal/qheap"
)

// Options tune engine behaviour. The zero value is the paper's CPM.
type Options struct {
	// PerUpdate processes object updates one at a time (Section 3.2)
	// instead of batching a whole cycle (Section 3.3 / Figure 3.8). It
	// exists for the ablation study: batching lets incoming objects cancel
	// outgoing NNs before any re-computation is triggered.
	PerUpdate bool

	// DropBookkeeping discards the search heap and visit list after every
	// search, as the paper suggests under memory pressure (end of Section
	// 3.3). Result maintenance then falls back to NN computation from
	// scratch whenever re-computation would have run.
	DropBookkeeping bool

	// ScanWorkers splits the engine's influence-scan work across a small
	// pool of persistent workers for update-heavy/query-light workloads.
	// Queries are partitioned into ScanWorkers groups by the cell range of
	// their home cell; each group owns a private influence index and dirty
	// set, so the parallel scan phase shares only read-only state (the
	// grid and the write log). Resolution stays serial, which keeps
	// results, diffs and statistics byte-identical to the serial engine.
	// Values below 2 mean serial scanning.
	ScanWorkers int
}

// Engine is the CPM monitor.
type Engine struct {
	g *grid.Grid
	// ownsGrid distinguishes a private grid (NewEngine: the engine applies
	// object updates itself) from an injected shared one (NewSharedEngine:
	// the owning monitor applies writes once per tick and feeds the engine
	// the resulting log; this engine must never mutate the grid).
	ownsGrid bool
	opts     Options
	queries  map[model.QueryID]*query
	ranges   map[model.QueryID]*rangeQuery

	// infls holds the influence-list index for this engine's queries — one
	// index per scan group (exactly one unless Options.ScanWorkers splits
	// the scan work). Influence lists are per-query book-keeping, so they
	// live with the engine, not in the (possibly shared) grid cells.
	infls  []*grid.Influence
	groups int

	// applied is the reused write log of the classic (private-grid) path:
	// ProcessBatch applies the object stream via grid.ApplyBatch and then
	// scans the log, exactly like the sharded monitor does externally.
	applied []grid.Applied

	// Persistent scan workers (ScanWorkers ≥ 2): group w scans the tick's
	// write log against infls[w]. Started lazily, stopped by Close.
	scanFeed []chan []grid.Applied
	scanWG   sync.WaitGroup

	stats model.Stats
	// Invalid stream elements are counted separately per stream. The
	// sharded monitor (internal/shard) applies the object stream once at
	// the coordinator but routes each query update to exactly one shard,
	// so it needs the two kinds apart to report a non-inflated total.
	invalidObjects int64
	invalidQueries int64
	rebalances     int64 // grid resizes performed (Rebalance/Reindex)
	cycle          int64
	// Per-group touched sets; group w is only appended to by the worker
	// scanning infls[w], and all groups are drained serially in order.
	dirty       [][]*query      // queries touched by the current cycle
	dirtyRanges [][]*rangeQuery // range queries touched by the current cycle

	// changedIDs collects the queries whose results changed since the last
	// ProcessBatch began — the notification set of Figure 3.9 line 10.
	// Instead of a per-cycle map, the set is a reused dense slice deduped
	// by generation stamp: a query appends itself at most once per
	// changeGen (terminated queries append unconditionally; ChangedQueries
	// dedupes on read). Steady-state cycles therefore allocate nothing.
	changedIDs []model.QueryID
	changeGen  int64 // bumped at the start of every ProcessBatch; starts at 1
	// batchGen stamps the queries that have their own update in the current
	// batch — the per-cycle "ignore" set of Figure 3.9 (their results are
	// rebuilt by the query update anyway), without a per-cycle map.
	batchGen int64
	// rangeScratch is the pooled buffer noteRangeIfChanged builds the
	// current sorted range result into, so per-cycle range-change checks
	// allocate nothing.
	rangeScratch []model.Neighbor

	// Result-diff collection (diff.go): with diffsOn the engine derives,
	// for every changed query, the entered/exited/re-ranked delta against
	// its reported snapshot and buffers it until TakeDiffs. diffAt maps a
	// query to its pending diff so repeated changes within one buffer
	// window compose into a single event (diffBase keeps each pending
	// diff's pre-change snapshot for that). diffIdx and diffSeen are the
	// O(k) diff pass's reusable scratch.
	diffsOn  bool
	diffs    []model.ResultDiff
	diffAt   map[model.QueryID]int
	diffBase [][]model.Neighbor
	diffIdx  map[model.ObjectID]int
	diffSeen []bool

	// phases is the wall-clock decomposition of the last ProcessBatch
	// into the paper's cost-model phases (tracing.go in this package).
	phases model.PhaseNanos
}

// query is one entry of the query table QT (Figure 3.3a).
type query struct {
	id  model.QueryID
	def Def

	// group is the scan group holding this query's influence entries —
	// derived from the home cell's position in the cell range (groupOf),
	// always 0 on a serial engine, recomputed on rebalance.
	group int32

	best resultList // best_NN; kthDist() is best_dist

	// visit is the visit list: every cell processed by search or
	// re-computation, in ascending key (mindist/amindist) order. It is a
	// superset of the influence region.
	visit []visitEntry
	// influenceEnd is one past the last visit entry whose cell currently
	// carries this query in its influence list. Influence cells are always
	// a prefix of the visit list (keys ≤ best_dist).
	influenceEnd int
	// heap holds the entries en-heaped but not de-heaped by the last
	// search: the cells/strips with key ≥ best_dist, including the four
	// boundary boxes.
	heap *qheap.Heap

	// reported is the result as last exposed through ChangedQueries.
	reported []model.Neighbor

	// changedMark dedupes the query's entry in the engine's changedIDs
	// list (== changeGen once recorded this notification window);
	// ignoreMark == batchGen marks a query with its own update in the
	// current batch, skipped by the object-update scans.
	changedMark int64
	ignoreMark  int64

	// Per-cycle update-handling state (Figure 3.8 lines 1–3), initialized
	// lazily by touch the first time a cycle's update concerns the query.
	cycleMark int64
	refDist   float64
	outCount  int
	inList    resultList
	// The paper caps in_list at the k best incomers, which is lossless
	// when each object issues at most one update per cycle (the stream
	// model of Section 3). With several updates per object in one batch an
	// incomer evicted by the cap is unrecoverable if a retained incomer is
	// later invalidated, so the engine tracks the two conditions and falls
	// back to re-computation — always correct — when both occur.
	inDropped      bool // the cap discarded at least one incomer
	forceRecompute bool // a retained incomer was removed after a discard
}

type visitEntry struct {
	cell grid.CellIndex
	key  float64
}

// NewEngine creates a CPM engine over a fresh private grid of
// gridSize×gridSize cells spanning the workspace.
func NewEngine(gridSize int, workspace geom.Rect, opts Options) *Engine {
	return newEngine(grid.New(gridSize, workspace), true, opts)
}

// NewSharedEngine creates a CPM engine over an injected grid owned by the
// caller (the sharded monitor). The engine keeps only per-query state and
// its influence indexes; it never mutates the grid. Object updates must be
// applied to the grid by the owner (grid.ApplyBatch) and fed to the engine
// as a write log via BeginCycle/ScanApplied/ApplyQueryUpdates.
func NewSharedEngine(g *grid.Grid, opts Options) *Engine {
	return newEngine(g, false, opts)
}

func newEngine(g *grid.Grid, ownsGrid bool, opts Options) *Engine {
	groups := opts.ScanWorkers
	if groups < 2 {
		groups = 1
	}
	e := &Engine{
		g:           g,
		ownsGrid:    ownsGrid,
		opts:        opts,
		queries:     make(map[model.QueryID]*query),
		ranges:      make(map[model.QueryID]*rangeQuery),
		infls:       make([]*grid.Influence, groups),
		groups:      groups,
		dirty:       make([][]*query, groups),
		dirtyRanges: make([][]*rangeQuery, groups),
		// Generations start at 1 so the zero-valued marks of fresh query
		// structs never collide with the current generation.
		changeGen: 1,
		batchGen:  1,
	}
	for w := range e.infls {
		e.infls[w] = grid.NewInfluence(g.Size() * g.Size())
	}
	return e
}

// groupOf maps a cell to the scan group owning queries homed there: groups
// partition the cell range [0, size²) into contiguous, equally sized
// stripes. With one group everything maps to 0.
func (e *Engine) groupOf(c grid.CellIndex) int32 {
	if e.groups == 1 {
		return 0
	}
	return int32(int(c) * e.groups / (e.g.Size() * e.g.Size()))
}

// homeGroup returns the scan group for a query definition — the group of
// the cell holding its (first) query point. Any deterministic cell works;
// the home cell keeps neighboring queries in the same group.
func (e *Engine) homeGroup(points []geom.Point) int32 {
	return e.groupOf(e.g.CellOf(points[0]))
}

// Close stops the persistent scan workers (if ScanWorkers started any).
// The engine stays usable: a later batch restarts them. Safe to call twice.
func (e *Engine) Close() {
	if e.scanFeed == nil {
		return
	}
	for _, ch := range e.scanFeed {
		close(ch)
	}
	e.scanFeed = nil
}

// ensureScanWorkers lazily starts one persistent goroutine per scan group,
// fed a write-log slice per tick over an unbuffered channel — the same
// zero-allocation fan-out shape as the sharded monitor's per-shard workers.
func (e *Engine) ensureScanWorkers() {
	if e.scanFeed != nil {
		return
	}
	e.scanFeed = make([]chan []grid.Applied, e.groups)
	for w := range e.scanFeed {
		ch := make(chan []grid.Applied)
		e.scanFeed[w] = ch
		go func(w int, ch chan []grid.Applied) {
			for log := range ch {
				e.scanGroup(w, log)
				e.scanWG.Done()
			}
		}(w, ch)
	}
}

// NewUnitEngine creates an engine over the unit-square workspace.
func NewUnitEngine(gridSize int, opts Options) *Engine {
	return NewEngine(gridSize, geom.Rect{Lo: geom.Point{X: 0, Y: 0}, Hi: geom.Point{X: 1, Y: 1}}, opts)
}

// Name implements model.Monitor.
func (e *Engine) Name() string { return "CPM" }

// Grid exposes the underlying index (read-mostly: tests, analysis and the
// harness use it; mutating it behind the engine's back voids the
// invariants).
func (e *Engine) Grid() *grid.Grid { return e.g }

// Bootstrap loads the initial object population. It panics if objects are
// already present: bootstrap happens once, before monitoring starts. On a
// shared-grid engine the grid's owner bootstraps instead.
func (e *Engine) Bootstrap(objs map[model.ObjectID]geom.Point) {
	if !e.ownsGrid {
		panic("core: Bootstrap on a shared-grid engine (the monitor owns the grid)")
	}
	if e.g.Count() > 0 {
		panic("core: Bootstrap on a non-empty engine")
	}
	for id, p := range objs {
		if err := e.g.Insert(id, p); err != nil {
			panic(fmt.Sprintf("core: bootstrap insert: %v", err))
		}
	}
}

// RegisterQuery installs a conventional k-NN query and computes its initial
// result (paper Figure 3.4).
func (e *Engine) RegisterQuery(id model.QueryID, q geom.Point, k int) error {
	return e.Register(id, PointQuery(q, k))
}

// Register installs a query of any supported definition and computes its
// initial result.
func (e *Engine) Register(id model.QueryID, def Def) error {
	if err := def.Validate(); err != nil {
		return err
	}
	if _, exists := e.queries[id]; exists {
		return fmt.Errorf("core: query %d already installed", id)
	}
	if _, exists := e.ranges[id]; exists {
		return fmt.Errorf("core: query %d already installed as a range query", id)
	}
	qu := &query{
		id:     id,
		def:    def,
		group:  e.homeGroup(def.Points),
		best:   newResultList(def.K),
		inList: newResultList(def.K),
		heap:   qheap.New(16),
	}
	e.queries[id] = qu
	e.compute(qu)
	qu.reported = qu.best.snapshot()
	e.markChanged(id, &qu.changedMark)
	if e.diffsOn {
		// A second snapshot: qu.reported's backing array is reused in place
		// by noteIfChanged, so the event must not alias it.
		e.noteInstalled(id, qu.best.snapshot())
	}
	return nil
}

// RemoveQuery uninstalls a query of either kind (k-NN or range), clearing
// its influence entries. Unknown IDs are a no-op.
func (e *Engine) RemoveQuery(id model.QueryID) {
	if qu, ok := e.queries[id]; ok {
		e.clearInfluence(qu)
		delete(e.queries, id)
		e.noteRemoved(id, qu.reported)
		return
	}
	if rq, ok := e.ranges[id]; ok {
		e.clearRange(rq)
		delete(e.ranges, id)
		e.noteRemoved(id, rq.reported)
	}
}

// MoveQuery relocates an installed query. Per Section 3.3 the move is a
// termination plus a re-installation at the new location(s); the query
// keeps its id, k, aggregate and constraint.
func (e *Engine) MoveQuery(id model.QueryID, points []geom.Point) error {
	qu, ok := e.queries[id]
	if !ok {
		return fmt.Errorf("core: move of unknown query %d", id)
	}
	if len(points) != len(qu.def.Points) {
		return fmt.Errorf("core: query %d move with %d points, want %d",
			id, len(points), len(qu.def.Points))
	}
	def := qu.def
	def.Points = points
	if err := def.Validate(); err != nil {
		return err
	}
	e.clearInfluence(qu)
	qu.def = def
	qu.group = e.homeGroup(def.Points)
	e.compute(qu)
	e.noteIfChanged(qu)
	return nil
}

// Result implements model.Monitor.
func (e *Engine) Result(id model.QueryID) []model.Neighbor {
	qu, ok := e.queries[id]
	if !ok {
		return nil
	}
	return qu.best.snapshot()
}

// BestDist returns the query's current best_dist (+Inf while the result
// holds fewer than k objects), for tests and the analysis harness.
func (e *Engine) BestDist(id model.QueryID) float64 {
	qu, ok := e.queries[id]
	if !ok {
		return 0
	}
	return qu.best.kthDist()
}

// QueryIDs returns the ids of all installed queries — k-NN (conventional,
// aggregate, constrained) and range alike — in ascending order.
func (e *Engine) QueryIDs() []model.QueryID {
	ids := make([]model.QueryID, 0, len(e.queries)+len(e.ranges))
	for id := range e.queries {
		ids = append(ids, id)
	}
	for id := range e.ranges {
		ids = append(ids, id)
	}
	slices.Sort(ids)
	return ids
}

// HasQuery reports whether id names an installed query of either kind.
func (e *Engine) HasQuery(id model.QueryID) bool {
	if _, ok := e.queries[id]; ok {
		return true
	}
	_, ok := e.ranges[id]
	return ok
}

// Stats implements model.Monitor. All counters — including cell accesses —
// are engine-local: a shared grid's counter would be written by concurrent
// shards, so each engine counts the cell scans it performs itself and the
// sharded monitor sums them.
func (e *Engine) Stats() model.Stats { return e.stats }

// InvalidUpdates returns how many stream updates were dropped as
// inconsistent (unknown ids, duplicate inserts, …).
func (e *Engine) InvalidUpdates() int64 { return e.invalidObjects + e.invalidQueries }

// InvalidObjectUpdates returns the object-stream share of InvalidUpdates.
func (e *Engine) InvalidObjectUpdates() int64 { return e.invalidObjects }

// InvalidQueryUpdates returns the query-stream share of InvalidUpdates.
func (e *Engine) InvalidQueryUpdates() int64 { return e.invalidQueries }

// LastPhases returns the wall-clock decomposition of the most recent
// ProcessBatch into the paper's cost-model phases. Zero before the first
// cycle.
func (e *Engine) LastPhases() model.PhaseNanos { return e.phases }

// ObjectPosition returns the current position of a live object.
func (e *Engine) ObjectPosition(id model.ObjectID) (geom.Point, bool) {
	return e.g.Position(id)
}

// ObjectCount returns the number of live objects.
func (e *Engine) ObjectCount() int { return e.g.Count() }

// Bookkeeping returns the sizes of a query's stored search state: the
// visit-list length, the leftover heap length, and the influence-region
// prefix length. Their sum corresponds to the paper's C_SH + C_inf terms;
// the analysis validation experiment compares them against the Section 4.1
// estimates.
func (e *Engine) Bookkeeping(id model.QueryID) (visit, heap, influence int) {
	qu, ok := e.queries[id]
	if !ok {
		return 0, 0, 0
	}
	return len(qu.visit), qu.heap.Len(), qu.influenceEnd
}

// MemoryFootprint returns the engine's size in the abstract memory units of
// Section 4.1: the grid term (3·N, counted here because this engine owns or
// co-reads the grid — the sharded monitor counts it ONCE via QueryMemoryUnits
// instead) plus the per-query terms.
func (e *Engine) MemoryFootprint() int64 {
	return e.g.MemoryFootprint() + e.QueryMemoryUnits()
}

// QueryMemoryUnits returns the engine's own share of the Section 4.1 memory
// model, excluding the grid term: Σ influence entries plus, per query, 3
// units for id and coordinates, 2·k for the result and 3 per visit-list or
// heap entry (+4 boundary boxes live in the heap itself). A sharded monitor
// sums this over its engines and adds the shared grid term once.
func (e *Engine) QueryMemoryUnits() int64 {
	var units int64
	for _, infl := range e.infls {
		units += infl.Entries()
	}
	for _, qu := range e.queries {
		units += int64(3*len(qu.def.Points) + 2*qu.def.K)
		units += int64(3 * (len(qu.visit) + qu.heap.Len()))
	}
	return units
}

// GridEpoch returns the grid's write epoch — the number of completed write
// batches applied to the index (see grid.Epoch).
func (e *Engine) GridEpoch() int64 { return e.g.Epoch() }

// HasInfluence reports whether query id currently holds an influence entry
// on cell c, in any scan group (tests and analysis).
func (e *Engine) HasInfluence(c grid.CellIndex, id model.QueryID) bool {
	for _, infl := range e.infls {
		if infl.Has(c, id) {
			return true
		}
	}
	return false
}

// clearInfluence removes the query from the influence lists of all cells in
// its influence prefix and resets its book-keeping.
func (e *Engine) clearInfluence(qu *query) {
	infl := e.infls[qu.group]
	for _, ve := range qu.visit[:qu.influenceEnd] {
		infl.Remove(ve.cell, qu.id)
	}
	qu.visit = qu.visit[:0]
	qu.influenceEnd = 0
	qu.heap.Reset()
}

// partitionFor builds the conceptual partitioning around the query's
// center block: the cell of the (single) query point, or the cells covering
// the MBR M of the point set (Section 5, Figure 5.1a).
func (e *Engine) partitionFor(def Def) conc.Partition {
	var block conc.Block
	if def.single() {
		col, row := e.g.ColRow(def.Points[0])
		block = conc.CellBlock(col, row)
	} else {
		m := geom.MBR(def.Points)
		cLo, rLo := e.g.ColRow(m.Lo)
		cHi, rHi := e.g.ColRow(m.Hi)
		block = conc.Block{ColLo: cLo, ColHi: cHi, RowLo: rLo, RowHi: rHi}
	}
	return conc.NewPartition(e.g.Size(), e.g.Delta(), e.g.Workspace().Lo, block)
}
