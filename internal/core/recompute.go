package core

// recompute is the NN Re-Computation module (paper Figure 3.6): it rebuilds
// the result of an affected query — one whose outgoing NNs outnumber its
// incoming objects — re-using the book-keeping stored in the query table.
//
// The stored visit list is already sorted by key, so it is replayed with
// O(1) "get next" operations and no mindist computations; only if the
// replay exhausts the list does the search fall through to the leftover
// heap (Figure 3.6 lines 7–8), which resumes exactly where the original
// search stopped. Compared to computation from scratch this saves both the
// mindist evaluations and the heap traffic — the benefit quantified by the
// ablation benchmark X1 (DESIGN.md).
//
// In DropBookkeeping mode the stored state does not exist, so the paper's
// fallback applies: compute from scratch.
func (e *Engine) recompute(qu *query) {
	if e.opts.DropBookkeeping {
		e.compute(qu)
		return
	}
	e.stats.Recomputations++

	oldInfluenceEnd := qu.influenceEnd
	qu.best.reset()

	// Replay the visit list (Figure 3.6 lines 2–6). Influence entries are
	// exactly the visit prefix [0, influenceEnd) — finishSearch and
	// shrinkInfluence maintain that invariant — so replayed cells inside
	// the prefix already carry their entry, and cells beyond it (trimmed by
	// earlier shrinks but needed again by the necessarily larger new
	// best_dist) get an unchecked O(1) append.
	processed := 0
	infl := e.infls[qu.group]
	for processed < len(qu.visit) {
		ve := qu.visit[processed]
		if ve.key >= qu.best.kthDist() {
			break
		}
		e.scanCellObjects(qu, ve.cell)
		if processed >= oldInfluenceEnd {
			infl.AddUnchecked(ve.cell, qu.id)
		}
		processed++
	}

	if processed == len(qu.visit) {
		// The whole stored prefix was consumed; continue with the leftover
		// heap (Figure 3.6 lines 7–8). Popped cells append to the visit
		// list, extending it for future replays.
		part := e.partitionFor(qu.def)
		e.runSearch(qu, part)
		processed = len(qu.visit)
	}

	e.finishSearch(qu, processed, oldInfluenceEnd)
}

// shrinkInfluence updates the influence prefix after result maintenance
// that can only tighten best_dist (the |I| ≥ |O| short-circuit of Figure
// 3.8, line 22): entries between the new and the old best_dist are removed
// from their cells' influence lists.
func (e *Engine) shrinkInfluence(qu *query) {
	newEnd := firstGreater(qu.visit, qu.best.kthDist())
	if newEnd > qu.influenceEnd {
		newEnd = qu.influenceEnd
	}
	infl := e.infls[qu.group]
	for i := newEnd; i < qu.influenceEnd; i++ {
		infl.Remove(qu.visit[i].cell, qu.id)
	}
	qu.influenceEnd = newEnd
}
