package core

import (
	"fmt"
	"testing"

	"cpm/internal/geom"
	"cpm/internal/model"
)

// runMonitoring drives an engine over random update batches, checking every
// installed query against the oracle after every cycle.
func runMonitoring(t *testing.T, seed int64, opts Options, cycles, batchSize int, allowRepeats bool) {
	t.Helper()
	w := newWorld(seed)
	e := NewUnitEngine(8+int(seed%3)*8, opts)
	e.Bootstrap(w.populate(150))

	defs := map[model.QueryID]Def{}
	for i := 0; i < 8; i++ {
		id := model.QueryID(i)
		var def Def
		switch i % 4 {
		case 0, 1:
			def = PointQuery(w.randPoint(), 1+w.rng.Intn(8))
		case 2:
			pts := []geom.Point{w.randPoint(), w.randPoint(), w.randPoint()}
			def = AggQuery(pts, 1+w.rng.Intn(4), geom.Agg(w.rng.Intn(3)))
		case 3:
			def = PointQuery(w.randPoint(), 1+w.rng.Intn(4))
			lo := geom.Point{X: w.rng.Float64() * 0.5, Y: w.rng.Float64() * 0.5}
			region := geom.Rect{Lo: lo, Hi: geom.Point{X: lo.X + 0.5, Y: lo.Y + 0.5}}
			def.Constraint = &region
		}
		defs[id] = def
		if err := e.Register(id, def); err != nil {
			t.Fatal(err)
		}
	}

	for cycle := 0; cycle < cycles; cycle++ {
		b := w.randomBatch(batchSize, allowRepeats)
		e.ProcessBatch(b)
		for id, def := range defs {
			label := fmt.Sprintf("seed %d cycle %d query %d", seed, cycle, id)
			checkResult(t, label, e.Result(id), oracle(e, def))
			checkInvariants(t, e, id)
		}
	}
	if e.InvalidUpdates() != 0 {
		t.Fatalf("engine flagged %d invalid updates on a clean stream", e.InvalidUpdates())
	}
}

func TestMonitoringMatchesOracle(t *testing.T) {
	for seed := int64(0); seed < 8; seed++ {
		runMonitoring(t, seed, Options{}, 25, 40, false)
	}
}

func TestMonitoringWithRepeatedUpdates(t *testing.T) {
	// Several updates for the same object within one batch stress the
	// in_list/out_count bookkeeping (stale-incomer removal).
	for seed := int64(20); seed < 26; seed++ {
		runMonitoring(t, seed, Options{}, 20, 60, true)
	}
}

func TestMonitoringPerUpdateAblation(t *testing.T) {
	for seed := int64(40); seed < 44; seed++ {
		runMonitoring(t, seed, Options{PerUpdate: true}, 12, 25, false)
	}
}

func TestMonitoringDropBookkeeping(t *testing.T) {
	for seed := int64(60); seed < 64; seed++ {
		runMonitoring(t, seed, Options{DropBookkeeping: true}, 15, 40, false)
	}
}

// TestShortCircuitNoGridAccess reproduces the Figure 4.3a scenario: when an
// object simply moves closer to the query than best_dist, CPM must update
// the result without visiting any cell.
func TestShortCircuitNoGridAccess(t *testing.T) {
	e := NewUnitEngine(8, Options{})
	e.Bootstrap(map[model.ObjectID]geom.Point{
		1: {X: 0.52, Y: 0.5}, // current NN
		2: {X: 0.9, Y: 0.9},
		3: {X: 0.1, Y: 0.9},
	})
	q := geom.Point{X: 0.5, Y: 0.5}
	if err := e.RegisterQuery(1, q, 1); err != nil {
		t.Fatal(err)
	}
	before := e.Stats().CellAccesses
	// Object 2 moves next to q: it becomes the NN via the incomer path.
	e.ProcessBatch(model.Batch{Objects: []model.Update{
		model.MoveUpdate(2, geom.Point{X: 0.9, Y: 0.9}, geom.Point{X: 0.505, Y: 0.5}),
	}})
	if got := e.Result(1); len(got) != 1 || got[0].ID != 2 {
		t.Fatalf("result = %v, want object 2", got)
	}
	if acc := e.Stats().CellAccesses - before; acc != 0 {
		t.Fatalf("short-circuit path accessed %d cells, want 0", acc)
	}
	if e.Stats().ShortCircuits == 0 {
		t.Error("ShortCircuits counter not incremented")
	}
}

// TestOutgoingTriggersRecomputation reproduces Figure 3.5b: the NN moves
// away, no incomer compensates, so re-computation must run and find the
// true new NN.
func TestOutgoingTriggersRecomputation(t *testing.T) {
	e := NewUnitEngine(8, Options{})
	e.Bootstrap(map[model.ObjectID]geom.Point{
		1: {X: 0.52, Y: 0.5},
		2: {X: 0.6, Y: 0.6},
	})
	q := geom.Point{X: 0.5, Y: 0.5}
	if err := e.RegisterQuery(1, q, 1); err != nil {
		t.Fatal(err)
	}
	e.ProcessBatch(model.Batch{Objects: []model.Update{
		model.MoveUpdate(1, geom.Point{X: 0.52, Y: 0.5}, geom.Point{X: 0.05, Y: 0.05}),
	}})
	if got := e.Result(1); len(got) != 1 || got[0].ID != 2 {
		t.Fatalf("result = %v, want object 2", got)
	}
	if e.Stats().Recomputations == 0 {
		t.Error("Recomputations counter not incremented")
	}
	checkInvariants(t, e, 1)
}

// TestOutgoingCancelledByIncomer reproduces Figure 3.7: the NN leaves but
// another object enters closer — the batched handler must avoid
// re-computation entirely.
func TestOutgoingCancelledByIncomer(t *testing.T) {
	e := NewUnitEngine(8, Options{})
	e.Bootstrap(map[model.ObjectID]geom.Point{
		1: {X: 0.52, Y: 0.5}, // p2 of the figure: the current NN
		2: {X: 0.9, Y: 0.9},  // p3: will move next to q
		3: {X: 0.3, Y: 0.8},
	})
	q := geom.Point{X: 0.5, Y: 0.5}
	if err := e.RegisterQuery(1, q, 1); err != nil {
		t.Fatal(err)
	}
	recomputeBefore := e.Stats().Recomputations
	e.ProcessBatch(model.Batch{Objects: []model.Update{
		model.MoveUpdate(1, geom.Point{X: 0.52, Y: 0.5}, geom.Point{X: 0.95, Y: 0.05}),
		model.MoveUpdate(2, geom.Point{X: 0.9, Y: 0.9}, geom.Point{X: 0.51, Y: 0.5}),
	}})
	if got := e.Result(1); len(got) != 1 || got[0].ID != 2 {
		t.Fatalf("result = %v, want object 2", got)
	}
	if e.Stats().Recomputations != recomputeBefore {
		t.Error("batched handler re-computed despite compensating incomer")
	}
	checkInvariants(t, e, 1)
}

// TestPerUpdateRecomputesWhereBatchWouldNot: the same Figure 3.7 scenario
// under the PerUpdate ablation must trigger a re-computation, demonstrating
// what batching saves.
func TestPerUpdateRecomputesWhereBatchWouldNot(t *testing.T) {
	e := NewUnitEngine(8, Options{PerUpdate: true})
	e.Bootstrap(map[model.ObjectID]geom.Point{
		1: {X: 0.52, Y: 0.5},
		2: {X: 0.9, Y: 0.9},
		3: {X: 0.3, Y: 0.8},
	})
	q := geom.Point{X: 0.5, Y: 0.5}
	if err := e.RegisterQuery(1, q, 1); err != nil {
		t.Fatal(err)
	}
	e.ProcessBatch(model.Batch{Objects: []model.Update{
		model.MoveUpdate(1, geom.Point{X: 0.52, Y: 0.5}, geom.Point{X: 0.95, Y: 0.05}),
		model.MoveUpdate(2, geom.Point{X: 0.9, Y: 0.9}, geom.Point{X: 0.51, Y: 0.5}),
	}})
	if got := e.Result(1); len(got) != 1 || got[0].ID != 2 {
		t.Fatalf("result = %v, want object 2", got)
	}
	if e.Stats().Recomputations == 0 {
		t.Error("per-update ablation should have re-computed")
	}
}

// TestDeleteOfNN: off-line NNs are outgoing NNs (Section 4.2).
func TestDeleteOfNN(t *testing.T) {
	e := NewUnitEngine(8, Options{})
	e.Bootstrap(map[model.ObjectID]geom.Point{
		1: {X: 0.52, Y: 0.5},
		2: {X: 0.6, Y: 0.6},
	})
	q := geom.Point{X: 0.5, Y: 0.5}
	if err := e.RegisterQuery(1, q, 1); err != nil {
		t.Fatal(err)
	}
	e.ProcessBatch(model.Batch{Objects: []model.Update{
		model.DeleteUpdate(1, geom.Point{X: 0.52, Y: 0.5}),
	}})
	if got := e.Result(1); len(got) != 1 || got[0].ID != 2 {
		t.Fatalf("result = %v, want object 2", got)
	}
	checkInvariants(t, e, 1)
}

// TestUpdateFarAwayIgnored: updates outside every influence region must not
// touch any query bookkeeping (the "handling location updates only from
// objects in the vicinity of some query" claim).
func TestUpdateFarAwayIgnored(t *testing.T) {
	e := NewUnitEngine(16, Options{})
	e.Bootstrap(map[model.ObjectID]geom.Point{
		1: {X: 0.51, Y: 0.5},
		2: {X: 0.52, Y: 0.5},
		3: {X: 0.95, Y: 0.95},
		4: {X: 0.05, Y: 0.95},
	})
	q := geom.Point{X: 0.5, Y: 0.5}
	if err := e.RegisterQuery(1, q, 2); err != nil {
		t.Fatal(err)
	}
	accBefore := e.Stats().CellAccesses
	scBefore := e.Stats().ShortCircuits
	e.ProcessBatch(model.Batch{Objects: []model.Update{
		model.MoveUpdate(3, geom.Point{X: 0.95, Y: 0.95}, geom.Point{X: 0.9, Y: 0.9}),
		model.MoveUpdate(4, geom.Point{X: 0.05, Y: 0.95}, geom.Point{X: 0.1, Y: 0.9}),
	}})
	if acc := e.Stats().CellAccesses - accBefore; acc != 0 {
		t.Errorf("far updates caused %d cell accesses", acc)
	}
	if sc := e.Stats().ShortCircuits - scBefore; sc != 0 {
		t.Errorf("far updates touched %d queries", sc)
	}
	if got := e.Result(1); len(got) != 2 || got[0].ID != 1 || got[1].ID != 2 {
		t.Fatalf("result changed: %v", got)
	}
}

func TestQueryMoveViaBatch(t *testing.T) {
	w := newWorld(11)
	e := NewUnitEngine(16, Options{})
	e.Bootstrap(w.populate(200))
	if err := e.RegisterQuery(1, geom.Point{X: 0.2, Y: 0.2}, 4); err != nil {
		t.Fatal(err)
	}
	to := geom.Point{X: 0.8, Y: 0.75}
	b := w.randomBatch(30, false)
	b.Queries = []model.QueryUpdate{
		{ID: 1, Kind: model.QueryMove, NewPoints: []geom.Point{to}},
	}
	e.ProcessBatch(b)
	checkResult(t, "batch move", e.Result(1), oracle(e, PointQuery(to, 4)))
	checkInvariants(t, e, 1)
}

func TestQueryTerminateViaBatch(t *testing.T) {
	w := newWorld(12)
	e := NewUnitEngine(16, Options{})
	e.Bootstrap(w.populate(100))
	if err := e.RegisterQuery(1, w.randPoint(), 4); err != nil {
		t.Fatal(err)
	}
	b := w.randomBatch(10, false)
	b.Queries = []model.QueryUpdate{{ID: 1, Kind: model.QueryTerminate}}
	e.ProcessBatch(b)
	if e.Result(1) != nil {
		t.Error("terminated query still has a result")
	}
	// Terminating an unknown query is flagged, not fatal.
	e.ProcessBatch(model.Batch{Queries: []model.QueryUpdate{{ID: 77, Kind: model.QueryTerminate}}})
	if e.InvalidUpdates() == 0 {
		t.Error("unknown query termination not flagged")
	}
}

func TestInvalidObjectUpdates(t *testing.T) {
	e := NewUnitEngine(8, Options{})
	e.Bootstrap(map[model.ObjectID]geom.Point{1: {X: 0.5, Y: 0.5}})
	if err := e.RegisterQuery(1, geom.Point{X: 0.4, Y: 0.4}, 1); err != nil {
		t.Fatal(err)
	}
	e.ProcessBatch(model.Batch{Objects: []model.Update{
		model.MoveUpdate(99, geom.Point{}, geom.Point{X: 0.1, Y: 0.1}),  // unknown
		model.DeleteUpdate(98, geom.Point{}),                            // unknown
		model.InsertUpdate(1, geom.Point{X: 0.2, Y: 0.2}),               // duplicate
		{ID: 5, Kind: model.UpdateKind(9), New: geom.Point{X: 1, Y: 1}}, // bad kind
	}})
	if e.InvalidUpdates() != 4 {
		t.Errorf("InvalidUpdates = %d, want 4", e.InvalidUpdates())
	}
	// The valid state is untouched.
	if got := e.Result(1); len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("result corrupted: %v", got)
	}
	checkInvariants(t, e, 1)
}

// TestChurnToEmptyAndBack drains the population below k and refills it.
func TestChurnToEmptyAndBack(t *testing.T) {
	e := NewUnitEngine(8, Options{})
	e.Bootstrap(map[model.ObjectID]geom.Point{
		0: {X: 0.1, Y: 0.1}, 1: {X: 0.2, Y: 0.2}, 2: {X: 0.3, Y: 0.3},
	})
	q := geom.Point{X: 0.5, Y: 0.5}
	if err := e.RegisterQuery(1, q, 2); err != nil {
		t.Fatal(err)
	}
	// Delete everything.
	e.ProcessBatch(model.Batch{Objects: []model.Update{
		model.DeleteUpdate(0, geom.Point{X: 0.1, Y: 0.1}),
		model.DeleteUpdate(1, geom.Point{X: 0.2, Y: 0.2}),
		model.DeleteUpdate(2, geom.Point{X: 0.3, Y: 0.3}),
	}})
	if len(e.Result(1)) != 0 {
		t.Fatalf("result on empty population: %v", e.Result(1))
	}
	checkInvariants(t, e, 1)
	// Refill.
	e.ProcessBatch(model.Batch{Objects: []model.Update{
		model.InsertUpdate(10, geom.Point{X: 0.55, Y: 0.5}),
		model.InsertUpdate(11, geom.Point{X: 0.45, Y: 0.5}),
		model.InsertUpdate(12, geom.Point{X: 0.9, Y: 0.9}),
	}})
	got := e.Result(1)
	if len(got) != 2 || got[0].ID != 11 || got[1].ID != 10 {
		t.Fatalf("result after refill = %v, want [11 10]", got)
	}
	checkInvariants(t, e, 1)
}

// TestManyQueriesSharedCells: queries with overlapping influence regions
// must not interfere through the shared influence lists.
func TestManyQueriesSharedCells(t *testing.T) {
	w := newWorld(13)
	e := NewUnitEngine(8, Options{})
	e.Bootstrap(w.populate(60))
	defs := map[model.QueryID]Def{}
	for i := 0; i < 10; i++ {
		id := model.QueryID(i)
		// All queries clustered so their regions overlap heavily.
		def := PointQuery(geom.Point{X: 0.45 + 0.01*float64(i), Y: 0.5}, 3)
		defs[id] = def
		if err := e.Register(id, def); err != nil {
			t.Fatal(err)
		}
	}
	for cycle := 0; cycle < 15; cycle++ {
		e.ProcessBatch(w.randomBatch(25, false))
		for id, def := range defs {
			checkResult(t, fmt.Sprintf("overlap c%d q%d", cycle, id), e.Result(id), oracle(e, def))
			checkInvariants(t, e, id)
		}
	}
}
