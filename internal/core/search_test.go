package core

import (
	"math"
	"testing"

	"cpm/internal/geom"
	"cpm/internal/grid"
	"cpm/internal/model"
)

func TestComputeMatchesOracleRandom(t *testing.T) {
	for seed := int64(0); seed < 30; seed++ {
		w := newWorld(seed)
		n := 1 + w.rng.Intn(300)
		objs := w.populate(n)
		gridSize := 1 << (1 + w.rng.Intn(5)) // 2..32
		e := NewUnitEngine(gridSize, Options{})
		e.Bootstrap(objs)
		for trial := 0; trial < 10; trial++ {
			k := 1 + w.rng.Intn(20)
			def := PointQuery(w.randPoint(), k)
			id := model.QueryID(trial)
			if err := e.Register(id, def); err != nil {
				t.Fatal(err)
			}
			checkResult(t, "compute", e.Result(id), oracle(e, def))
			checkInvariants(t, e, id)
		}
	}
}

func TestComputeKLargerThanPopulation(t *testing.T) {
	w := newWorld(1)
	e := NewUnitEngine(8, Options{})
	e.Bootstrap(w.populate(5))
	if err := e.RegisterQuery(1, geom.Point{X: 0.5, Y: 0.5}, 10); err != nil {
		t.Fatal(err)
	}
	res := e.Result(1)
	if len(res) != 5 {
		t.Fatalf("got %d results, want all 5 objects", len(res))
	}
	if !math.IsInf(e.BestDist(1), 1) {
		t.Errorf("BestDist = %v, want +Inf", e.BestDist(1))
	}
	checkInvariants(t, e, 1)
}

func TestComputeEmptyGrid(t *testing.T) {
	e := NewUnitEngine(8, Options{})
	if err := e.RegisterQuery(1, geom.Point{X: 0.5, Y: 0.5}, 3); err != nil {
		t.Fatal(err)
	}
	if len(e.Result(1)) != 0 {
		t.Errorf("result on empty grid = %v", e.Result(1))
	}
	checkInvariants(t, e, 1)
}

func TestComputeDuplicatePositions(t *testing.T) {
	e := NewUnitEngine(8, Options{})
	p := geom.Point{X: 0.31, Y: 0.47}
	objs := map[model.ObjectID]geom.Point{}
	for i := 0; i < 6; i++ {
		objs[model.ObjectID(i)] = p // all stacked on one point
	}
	objs[6] = geom.Point{X: 0.9, Y: 0.9}
	e.Bootstrap(objs)
	if err := e.RegisterQuery(1, p, 3); err != nil {
		t.Fatal(err)
	}
	res := e.Result(1)
	if len(res) != 3 {
		t.Fatalf("got %d results", len(res))
	}
	// Deterministic tie-break: lowest ids win.
	for i, want := range []model.ObjectID{0, 1, 2} {
		if res[i].ID != want || res[i].Dist != 0 {
			t.Fatalf("rank %d = %v, want id %d dist 0", i, res[i], want)
		}
	}
}

func TestComputeQueryAtCorners(t *testing.T) {
	w := newWorld(3)
	e := NewUnitEngine(16, Options{})
	e.Bootstrap(w.populate(100))
	corners := []geom.Point{
		{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 0, Y: 1}, {X: 1, Y: 1},
		{X: 0.5, Y: 0}, {X: 0, Y: 0.5}, {X: 1, Y: 0.5}, {X: 0.5, Y: 1},
	}
	for i, q := range corners {
		id := model.QueryID(i)
		def := PointQuery(q, 7)
		if err := e.Register(id, def); err != nil {
			t.Fatal(err)
		}
		checkResult(t, "corner", e.Result(id), oracle(e, def))
		checkInvariants(t, e, id)
	}
}

func TestComputeQueryOutsideWorkspace(t *testing.T) {
	w := newWorld(4)
	e := NewUnitEngine(8, Options{})
	e.Bootstrap(w.populate(60))
	// Query points outside the workspace clamp to border cells but
	// distances stay exact.
	for i, q := range []geom.Point{{X: -0.4, Y: 0.5}, {X: 1.3, Y: 1.2}, {X: 0.5, Y: -2}} {
		id := model.QueryID(i)
		def := PointQuery(q, 4)
		if err := e.Register(id, def); err != nil {
			t.Fatal(err)
		}
		checkResult(t, "outside", e.Result(id), oracle(e, def))
	}
}

func TestComputeGrid1x1(t *testing.T) {
	w := newWorld(5)
	e := NewUnitEngine(1, Options{})
	e.Bootstrap(w.populate(50))
	def := PointQuery(w.randPoint(), 5)
	if err := e.Register(1, def); err != nil {
		t.Fatal(err)
	}
	checkResult(t, "1x1", e.Result(1), oracle(e, def))
	checkInvariants(t, e, 1)
}

func TestANNMatchesOracle(t *testing.T) {
	for seed := int64(100); seed < 120; seed++ {
		w := newWorld(seed)
		e := NewUnitEngine(16, Options{})
		e.Bootstrap(w.populate(200))
		for trial, agg := range []geom.Agg{geom.AggSum, geom.AggMin, geom.AggMax} {
			m := 2 + w.rng.Intn(4)
			pts := make([]geom.Point, m)
			for i := range pts {
				pts[i] = w.randPoint()
			}
			def := AggQuery(pts, 1+w.rng.Intn(8), agg)
			id := model.QueryID(trial)
			if err := e.Register(id, def); err != nil {
				t.Fatal(err)
			}
			checkResult(t, "ann-"+agg.String(), e.Result(id), oracle(e, def))
			checkInvariants(t, e, id)
		}
	}
}

func TestConstrainedMatchesOracle(t *testing.T) {
	for seed := int64(200); seed < 220; seed++ {
		w := newWorld(seed)
		e := NewUnitEngine(16, Options{})
		e.Bootstrap(w.populate(200))
		for trial := 0; trial < 5; trial++ {
			lo := w.randPoint()
			region := geom.Rect{Lo: lo, Hi: geom.Point{
				X: lo.X + w.rng.Float64()*(1-lo.X),
				Y: lo.Y + w.rng.Float64()*(1-lo.Y),
			}}
			def := PointQuery(w.randPoint(), 1+w.rng.Intn(6))
			def.Constraint = &region
			id := model.QueryID(trial)
			if err := e.Register(id, def); err != nil {
				t.Fatal(err)
			}
			checkResult(t, "constrained", e.Result(id), oracle(e, def))
			for _, n := range e.Result(id) {
				p, _ := e.Grid().Position(n.ID)
				if !region.Contains(p) {
					t.Fatalf("constrained result %d outside region", n.ID)
				}
			}
			checkInvariants(t, e, id)
			e.RemoveQuery(id)
		}
	}
}

// TestConstrainedNortheast reproduces Figure 5.3: monitoring the NN to the
// northeast of q must skip the unconstrained NN on the other side.
func TestConstrainedNortheast(t *testing.T) {
	e := NewUnitEngine(8, Options{})
	q := geom.Point{X: 0.5, Y: 0.5}
	e.Bootstrap(map[model.ObjectID]geom.Point{
		1: {X: 0.45, Y: 0.5},  // unconstrained NN, to the west
		2: {X: 0.52, Y: 0.45}, // southeast
		3: {X: 0.7, Y: 0.7},   // northeast
	})
	region := geom.Rect{Lo: q, Hi: geom.Point{X: 1, Y: 1}}
	def := PointQuery(q, 1)
	def.Constraint = &region
	if err := e.Register(1, def); err != nil {
		t.Fatal(err)
	}
	res := e.Result(1)
	if len(res) != 1 || res[0].ID != 3 {
		t.Fatalf("constrained NN = %v, want object 3", res)
	}
}

func TestConstrainedEmptyRegion(t *testing.T) {
	w := newWorld(7)
	e := NewUnitEngine(8, Options{})
	e.Bootstrap(w.populate(50))
	// A region outside the workspace: no admissible objects.
	region := geom.Rect{Lo: geom.Point{X: 2, Y: 2}, Hi: geom.Point{X: 3, Y: 3}}
	def := PointQuery(geom.Point{X: 0.5, Y: 0.5}, 3)
	def.Constraint = &region
	if err := e.Register(1, def); err != nil {
		t.Fatal(err)
	}
	if len(e.Result(1)) != 0 {
		t.Fatalf("result in empty region = %v", e.Result(1))
	}
}

// TestSearchMinimality: the number of cell accesses of a fresh point-NN
// search must equal the number of cells intersecting the result circle,
// i.e. the influence region — the optimality argument of Section 3.1.
func TestSearchMinimality(t *testing.T) {
	for seed := int64(300); seed < 320; seed++ {
		w := newWorld(seed)
		e := NewUnitEngine(16, Options{})
		e.Bootstrap(w.populate(400))
		q := w.randPoint()
		before := e.Stats().CellAccesses
		if err := e.RegisterQuery(1, q, 4); err != nil {
			t.Fatal(err)
		}
		accesses := e.Stats().CellAccesses - before
		bd := e.BestDist(1)
		// Count cells with mindist(c,q) < bd; cells at exactly bd need not
		// be visited. Empty cells still count: a scan of an empty cell is
		// an access in our accounting only if scanned — which it is, CPM
		// visits cells not objects.
		minimal := int64(0)
		atBoundary := int64(0)
		for row := 0; row < 16; row++ {
			for col := 0; col < 16; col++ {
				d := e.Grid().CellRect(col, row).MinDist(q)
				switch {
				case d < bd:
					minimal++
				case d == bd:
					atBoundary++
				}
			}
		}
		if accesses < minimal || accesses > minimal+atBoundary {
			t.Fatalf("seed %d: %d accesses, minimal %d (+%d boundary)",
				seed, accesses, minimal, atBoundary)
		}
		e.RemoveQuery(1)
	}
}

// TestVisitListAscending is implied by checkInvariants but exercised here
// across many random configurations explicitly.
func TestVisitListAscendingHeavy(t *testing.T) {
	w := newWorld(31)
	e := NewUnitEngine(32, Options{})
	e.Bootstrap(w.populate(500))
	for i := 0; i < 50; i++ {
		id := model.QueryID(i)
		if err := e.RegisterQuery(id, w.randPoint(), 1+w.rng.Intn(32)); err != nil {
			t.Fatal(err)
		}
		checkInvariants(t, e, id)
	}
}

func TestRemoveQueryClearsInfluence(t *testing.T) {
	w := newWorld(8)
	e := NewUnitEngine(16, Options{})
	e.Bootstrap(w.populate(100))
	if err := e.RegisterQuery(1, w.randPoint(), 5); err != nil {
		t.Fatal(err)
	}
	e.RemoveQuery(1)
	for idx := 0; idx < 16*16; idx++ {
		if e.HasInfluence(grid.CellIndex(idx), 1) {
			t.Fatalf("influence left in cell %d after removal", idx)
		}
	}
	if e.Result(1) != nil {
		t.Error("result survives removal")
	}
	e.RemoveQuery(42) // unknown: no-op
}

func TestMoveQueryRecomputes(t *testing.T) {
	w := newWorld(9)
	e := NewUnitEngine(16, Options{})
	e.Bootstrap(w.populate(300))
	if err := e.RegisterQuery(1, geom.Point{X: 0.1, Y: 0.1}, 6); err != nil {
		t.Fatal(err)
	}
	to := geom.Point{X: 0.9, Y: 0.85}
	if err := e.MoveQuery(1, []geom.Point{to}); err != nil {
		t.Fatal(err)
	}
	checkResult(t, "moved", e.Result(1), oracle(e, PointQuery(to, 6)))
	checkInvariants(t, e, 1)
	if err := e.MoveQuery(99, []geom.Point{to}); err == nil {
		t.Error("move of unknown query accepted")
	}
	if err := e.MoveQuery(1, []geom.Point{to, to}); err == nil {
		t.Error("move with wrong point count accepted")
	}
}
