package core

import (
	"sort"
	"time"

	"cpm/internal/model"
)

// Result-diff collection — the engine side of push-based delivery.
//
// With diffs enabled the engine extends the change-notification bookkeeping
// of changes.go: whenever a cycle is found to have changed a query's result
// (against the per-query reported snapshot that is kept anyway), the exact
// entered/exited/re-ranked delta is derived in one O(k) pass over the two
// sorted lists, at the moment of the change, inside ProcessBatch. Unchanged
// queries are never diffed — the existing cheap equality check rejects them
// first — and nothing ever re-diffs full result sets after the fact.
//
// Diffs accumulate until TakeDiffs, which the owning monitor calls once
// after every mutating operation; the paired ordering contract with the
// sharded monitor (internal/shard) is that a take is stable-ordered by
// query id, so single-engine and sharded streams are byte-for-byte equal.
// Repeated changes to one query within a single buffer window — PerUpdate
// resolving the same query several times per batch, or several mutating
// calls between takes — compose into one event diffed against the first
// change's base, so a take carries at most one live diff per query and
// its ids match ChangedQueries when taken once per ProcessBatch.

// EnableDiffs switches per-cycle result-diff collection on or off.
// Disabling discards any diffs not yet taken.
func (e *Engine) EnableDiffs(on bool) {
	e.diffsOn = on
	if on && e.diffIdx == nil {
		e.diffIdx = make(map[model.ObjectID]int)
		e.diffAt = make(map[model.QueryID]int)
	}
	if !on {
		e.resetDiffs()
	}
}

func (e *Engine) resetDiffs() {
	e.diffs = nil
	e.diffBase = nil
	clear(e.diffAt)
}

// TakeDiffs returns the result diffs accumulated since the last call,
// stable-ordered by query id, and resets the buffer. It returns nil when
// diff collection is disabled or nothing changed. Callers that enable
// diffs must take them regularly (the monitors do, once per mutating
// operation); otherwise the buffer grows without bound.
func (e *Engine) TakeDiffs() []model.ResultDiff {
	out := e.diffs
	e.resetDiffs()
	if len(out) > 1 {
		sort.SliceStable(out, func(i, j int) bool { return out[i].Query < out[j].Query })
	}
	return out
}

// noteDiff records a changed query's delta: the first change in a window
// appends a fresh diff (remembering a copy of the pre-change snapshot as
// the base), further changes re-diff the current result against that base
// in place, keeping the window at one event per query. Both inputs are
// copied as needed; callers may keep mutating their storage.
func (e *Engine) noteDiff(id model.QueryID, base, cur []model.Neighbor) {
	start := time.Now()
	defer func() { e.phases.Diff += time.Since(start).Nanoseconds() }()
	if i, ok := e.diffAt[id]; ok {
		kind := e.diffs[i].Kind
		e.diffs[i] = e.diffResult(id, e.diffBase[i], cur)
		e.diffs[i].Kind = kind // a composed install stays an install
		if kind == model.DiffInstall {
			e.diffs[i].Entered = e.diffs[i].Result
		}
		return
	}
	e.diffAt[id] = len(e.diffs)
	e.diffBase = append(e.diffBase, append([]model.Neighbor(nil), base...))
	e.diffs = append(e.diffs, e.diffResult(id, base, cur))
}

// diffResult builds the delta between a query's previously reported result
// and its current one. Both inputs are ordered by (Dist, ID); the pass is
// O(k) with scratch space reused across calls. Only called when the two
// differ.
func (e *Engine) diffResult(id model.QueryID, old, cur []model.Neighbor) model.ResultDiff {
	idx := e.diffIdx
	for i := range old {
		idx[old[i].ID] = i
	}
	matched := e.diffSeen[:0]
	for range old {
		matched = append(matched, false)
	}
	d := model.ResultDiff{
		Query:  id,
		Kind:   model.DiffUpdate,
		Result: append([]model.Neighbor(nil), cur...),
	}
	for i := range cur {
		n := cur[i]
		if j, ok := idx[n.ID]; ok {
			matched[j] = true
			if old[j].Dist != n.Dist || j != i {
				d.Reranked = append(d.Reranked, n)
			}
		} else {
			d.Entered = append(d.Entered, n)
		}
	}
	for j := range old {
		if !matched[j] {
			d.Exited = append(d.Exited, old[j].ID)
		}
	}
	clear(idx)
	e.diffSeen = matched
	return d
}

// noteInstalled emits the DiffInstall event of a fresh registration; res is
// the initial result snapshot (shared by Entered and Result — diffs are
// read-only to consumers). The base of an installation is the empty set,
// so later changes in the same window compose into the install event.
func (e *Engine) noteInstalled(id model.QueryID, res []model.Neighbor) {
	if !e.diffsOn {
		return
	}
	start := time.Now()
	defer func() { e.phases.Diff += time.Since(start).Nanoseconds() }()
	e.diffAt[id] = len(e.diffs)
	e.diffBase = append(e.diffBase, nil)
	e.diffs = append(e.diffs, model.ResultDiff{
		Query:   id,
		Kind:    model.DiffInstall,
		Entered: res,
		Result:  res,
	})
}
