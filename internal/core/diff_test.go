package core

import (
	"reflect"
	"testing"

	"cpm/internal/geom"
	"cpm/internal/model"
)

func diffEngine(t *testing.T) *Engine {
	t.Helper()
	e := NewUnitEngine(16, Options{})
	e.EnableDiffs(true)
	e.Bootstrap(map[model.ObjectID]geom.Point{
		1: {X: 0.10, Y: 0.10},
		2: {X: 0.52, Y: 0.50},
		3: {X: 0.60, Y: 0.58},
		4: {X: 0.90, Y: 0.90},
		5: {X: 0.48, Y: 0.52},
	})
	return e
}

func TestDiffInstallUpdateRemove(t *testing.T) {
	e := diffEngine(t)
	if err := e.RegisterQuery(1, geom.Point{X: 0.5, Y: 0.5}, 2); err != nil {
		t.Fatal(err)
	}
	diffs := e.TakeDiffs()
	if len(diffs) != 1 {
		t.Fatalf("diffs after install = %v", diffs)
	}
	d := diffs[0]
	if d.Query != 1 || d.Kind != model.DiffInstall {
		t.Fatalf("install diff = %+v", d)
	}
	if len(d.Entered) != 2 || d.Entered[0].ID != 2 || d.Entered[1].ID != 5 {
		t.Fatalf("install Entered = %v", d.Entered)
	}
	if !reflect.DeepEqual(d.Result, d.Entered) {
		t.Fatalf("install Result %v != Entered %v", d.Result, d.Entered)
	}

	// Object 4 drives into the result; object 5 is displaced.
	e.ProcessBatch(model.Batch{Objects: []model.Update{
		model.MoveUpdate(4, geom.Point{X: 0.9, Y: 0.9}, geom.Point{X: 0.50, Y: 0.51}),
	}})
	diffs = e.TakeDiffs()
	if len(diffs) != 1 {
		t.Fatalf("diffs after move = %v", diffs)
	}
	d = diffs[0]
	if d.Kind != model.DiffUpdate {
		t.Fatalf("update diff kind = %v", d.Kind)
	}
	if len(d.Entered) != 1 || d.Entered[0].ID != 4 {
		t.Fatalf("update Entered = %v", d.Entered)
	}
	if len(d.Exited) != 1 || d.Exited[0] != 5 {
		t.Fatalf("update Exited = %v", d.Exited)
	}
	// Object 2 kept its distance and rank 2?  Rank 1 -> 2: re-ranked.
	if len(d.Reranked) != 1 || d.Reranked[0].ID != 2 {
		t.Fatalf("update Reranked = %v", d.Reranked)
	}
	if len(d.Result) != 2 || d.Result[0].ID != 4 || d.Result[1].ID != 2 {
		t.Fatalf("update Result = %v", d.Result)
	}

	e.RemoveQuery(1)
	diffs = e.TakeDiffs()
	if len(diffs) != 1 {
		t.Fatalf("diffs after remove = %v", diffs)
	}
	d = diffs[0]
	if d.Kind != model.DiffRemove || d.Result != nil {
		t.Fatalf("remove diff = %+v", d)
	}
	if len(d.Exited) != 2 || d.Exited[0] != 4 || d.Exited[1] != 2 {
		t.Fatalf("remove Exited = %v", d.Exited)
	}
}

func TestDiffRerankByDistanceChange(t *testing.T) {
	e := diffEngine(t)
	if err := e.RegisterQuery(1, geom.Point{X: 0.5, Y: 0.5}, 2); err != nil {
		t.Fatal(err)
	}
	e.TakeDiffs()
	// Object 2 moves but keeps rank 1: distance change alone must re-rank.
	e.ProcessBatch(model.Batch{Objects: []model.Update{
		model.MoveUpdate(2, geom.Point{X: 0.52, Y: 0.50}, geom.Point{X: 0.51, Y: 0.50}),
	}})
	diffs := e.TakeDiffs()
	if len(diffs) != 1 {
		t.Fatalf("diffs = %v", diffs)
	}
	d := diffs[0]
	if len(d.Entered) != 0 || len(d.Exited) != 0 {
		t.Fatalf("churn on pure re-rank: %+v", d)
	}
	if len(d.Reranked) != 1 || d.Reranked[0].ID != 2 {
		t.Fatalf("Reranked = %v", d.Reranked)
	}
}

func TestDiffRangeQuery(t *testing.T) {
	e := diffEngine(t)
	if err := e.RegisterRange(9, geom.Point{X: 0.5, Y: 0.5}, 0.15); err != nil {
		t.Fatal(err)
	}
	diffs := e.TakeDiffs()
	if len(diffs) != 1 || diffs[0].Kind != model.DiffInstall || len(diffs[0].Entered) != 3 {
		t.Fatalf("range install diffs = %v", diffs)
	}
	// Object 1 drives into the fence.
	e.ProcessBatch(model.Batch{Objects: []model.Update{
		model.MoveUpdate(1, geom.Point{X: 0.1, Y: 0.1}, geom.Point{X: 0.45, Y: 0.45}),
	}})
	diffs = e.TakeDiffs()
	if len(diffs) != 1 || len(diffs[0].Entered) != 1 || diffs[0].Entered[0].ID != 1 {
		t.Fatalf("range update diffs = %v", diffs)
	}
	if len(diffs[0].Result) != 4 {
		t.Fatalf("range Result = %v", diffs[0].Result)
	}
}

// TestDiffIdsMatchChangedQueries pins the pairing invariant: with diffs on,
// every batch's TakeDiffs ids equal ChangedQueries exactly (one event per
// changed query, sorted).
func TestDiffIdsMatchChangedQueries(t *testing.T) {
	e := diffEngine(t)
	for q := model.QueryID(0); q < 6; q++ {
		if err := e.RegisterQuery(q, geom.Point{X: 0.1 + 0.15*float64(q), Y: 0.5}, 2); err != nil {
			t.Fatal(err)
		}
	}
	e.TakeDiffs()
	batches := []model.Batch{
		{Objects: []model.Update{
			model.MoveUpdate(1, geom.Point{X: 0.1, Y: 0.1}, geom.Point{X: 0.3, Y: 0.5}),
			model.MoveUpdate(4, geom.Point{X: 0.9, Y: 0.9}, geom.Point{X: 0.7, Y: 0.5}),
		}},
		{Objects: []model.Update{model.DeleteUpdate(2, geom.Point{X: 0.52, Y: 0.50})}},
		{Queries: []model.QueryUpdate{
			{ID: 3, Kind: model.QueryMove, NewPoints: []geom.Point{{X: 0.9, Y: 0.1}}},
			{ID: 5, Kind: model.QueryTerminate},
		}},
		{Objects: []model.Update{model.InsertUpdate(50, geom.Point{X: 0.45, Y: 0.5})}},
		{}, // empty cycle: no diffs, no changes
	}
	for i, b := range batches {
		e.ProcessBatch(b)
		changed := e.ChangedQueries()
		diffs := e.TakeDiffs()
		ids := make([]model.QueryID, 0, len(diffs))
		for _, d := range diffs {
			ids = append(ids, d.Query)
		}
		if len(changed) == 0 && len(ids) == 0 {
			continue
		}
		if !reflect.DeepEqual(ids, changed) {
			t.Fatalf("batch %d: diff ids %v != changed %v", i, ids, changed)
		}
	}
}

// TestDiffPerUpdateComposesOneEventPerQuery pins the pairing invariant for
// the PerUpdate ablation: resolveDirty runs once per update there, so one
// query can change several times within a batch — the diffs must compose
// into a single event (diffed against the start-of-batch state) so that
// TakeDiffs ids still equal ChangedQueries.
func TestDiffPerUpdateComposesOneEventPerQuery(t *testing.T) {
	e := NewUnitEngine(16, Options{PerUpdate: true})
	e.EnableDiffs(true)
	e.Bootstrap(map[model.ObjectID]geom.Point{
		1: {X: 0.10, Y: 0.10},
		2: {X: 0.52, Y: 0.50},
		3: {X: 0.60, Y: 0.58},
		4: {X: 0.90, Y: 0.90},
		5: {X: 0.48, Y: 0.52},
	})
	if err := e.RegisterQuery(1, geom.Point{X: 0.5, Y: 0.5}, 2); err != nil {
		t.Fatal(err)
	}
	e.TakeDiffs()
	// Two updates, each changing query 1's result on its own: 4 drives in
	// (displacing 5), then 3 drives in (displacing 2).
	e.ProcessBatch(model.Batch{Objects: []model.Update{
		model.MoveUpdate(4, geom.Point{X: 0.90, Y: 0.90}, geom.Point{X: 0.50, Y: 0.51}),
		model.MoveUpdate(3, geom.Point{X: 0.60, Y: 0.58}, geom.Point{X: 0.50, Y: 0.50}),
	}})
	changed := e.ChangedQueries()
	diffs := e.TakeDiffs()
	if len(diffs) != len(changed) || len(diffs) != 1 {
		t.Fatalf("diffs %v vs changed %v: want exactly one composed event", diffs, changed)
	}
	d := diffs[0]
	// The composed delta is against the start-of-batch result {2, 5}.
	if len(d.Entered) != 2 || d.Entered[0].ID != 3 || d.Entered[1].ID != 4 {
		t.Fatalf("composed Entered = %v", d.Entered)
	}
	if len(d.Exited) != 2 || d.Exited[0] != 2 || d.Exited[1] != 5 {
		t.Fatalf("composed Exited = %v", d.Exited)
	}
	if len(d.Result) != 2 || d.Result[0].ID != 3 || d.Result[1].ID != 4 {
		t.Fatalf("composed Result = %v", d.Result)
	}
}

// TestDiffDisabledCollectsNothing checks the default-off contract and that
// disabling discards pending diffs.
func TestDiffDisabledCollectsNothing(t *testing.T) {
	e := NewUnitEngine(16, Options{})
	e.Bootstrap(map[model.ObjectID]geom.Point{1: {X: 0.5, Y: 0.5}})
	if err := e.RegisterQuery(1, geom.Point{X: 0.5, Y: 0.5}, 1); err != nil {
		t.Fatal(err)
	}
	if got := e.TakeDiffs(); got != nil {
		t.Fatalf("diffs while disabled = %v", got)
	}
	e.EnableDiffs(true)
	if err := e.RegisterQuery(2, geom.Point{X: 0.5, Y: 0.5}, 1); err != nil {
		t.Fatal(err)
	}
	e.EnableDiffs(false)
	if got := e.TakeDiffs(); got != nil {
		t.Fatalf("diffs survived disable: %v", got)
	}
}

// TestDiffReplayReconstructsResult applies each diff's delta to the
// previous result set and checks it rebuilds Result exactly, across a
// randomized multi-query run (the replay property subscribers rely on).
func TestDiffReplayReconstructsResult(t *testing.T) {
	e := diffEngine(t)
	for q := model.QueryID(0); q < 4; q++ {
		if err := e.RegisterQuery(q, geom.Point{X: 0.2 + 0.2*float64(q), Y: 0.4}, 3); err != nil {
			t.Fatal(err)
		}
	}
	replay := make(map[model.QueryID]map[model.ObjectID]float64)
	apply := func(d model.ResultDiff) {
		if d.Kind == model.DiffRemove {
			delete(replay, d.Query)
			return
		}
		set := replay[d.Query]
		if set == nil {
			set = make(map[model.ObjectID]float64)
			replay[d.Query] = set
		}
		for _, id := range d.Exited {
			delete(set, id)
		}
		for _, n := range d.Entered {
			set[n.ID] = n.Dist
		}
		for _, n := range d.Reranked {
			set[n.ID] = n.Dist
		}
		if len(set) != len(d.Result) {
			t.Fatalf("q%d: replay size %d, Result %v", d.Query, len(set), d.Result)
		}
		for _, n := range d.Result {
			if got, ok := set[n.ID]; !ok || got != n.Dist {
				t.Fatalf("q%d: replay missing %v (set %v)", d.Query, n, set)
			}
		}
	}
	for _, d := range e.TakeDiffs() {
		apply(d)
	}
	positions := map[model.ObjectID]geom.Point{
		1: {X: 0.10, Y: 0.10}, 2: {X: 0.52, Y: 0.50}, 3: {X: 0.60, Y: 0.58},
		4: {X: 0.90, Y: 0.90}, 5: {X: 0.48, Y: 0.52},
	}
	rng := uint64(12345)
	next := func() float64 { // tiny deterministic LCG; no test should need crypto
		rng = rng*6364136223846793005 + 1442695040888963407
		return float64(rng>>11) / float64(1<<53)
	}
	for cycle := 0; cycle < 40; cycle++ {
		var b model.Batch
		for id := model.ObjectID(1); id <= 5; id++ {
			if next() < 0.6 {
				to := geom.Point{X: next(), Y: next()}
				b.Objects = append(b.Objects, model.MoveUpdate(id, positions[id], to))
				positions[id] = to
			}
		}
		e.ProcessBatch(b)
		for _, d := range e.TakeDiffs() {
			apply(d)
		}
		for q := model.QueryID(0); q < 4; q++ {
			want := e.Result(q)
			set := replay[q]
			if len(set) != len(want) {
				t.Fatalf("cycle %d q%d: replay %v vs Result %v", cycle, q, set, want)
			}
			for _, n := range want {
				if got, ok := set[n.ID]; !ok || got != n.Dist {
					t.Fatalf("cycle %d q%d: replay %v vs Result %v", cycle, q, set, want)
				}
			}
		}
	}
}

// TestDiffEventsImmutableAfterDelivery pins the aliasing contract of taken
// diffs: the engine reuses its reported-snapshot buffers in place across
// cycles, so events handed out by TakeDiffs must never share backing arrays
// with them. A subscriber may hold an event indefinitely (and read it from
// another goroutine) while the engine keeps processing.
func TestDiffEventsImmutableAfterDelivery(t *testing.T) {
	e := diffEngine(t)
	if err := e.RegisterQuery(1, geom.Point{X: 0.5, Y: 0.5}, 2); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterRange(2, geom.Point{X: 0.5, Y: 0.5}, 0.1); err != nil {
		t.Fatal(err)
	}
	taken := e.TakeDiffs()
	if len(taken) != 2 {
		t.Fatalf("diffs after installs = %v", taken)
	}
	held := make([]model.ResultDiff, len(taken))
	copy(held, taken)
	want := make([][]model.Neighbor, len(held))
	for i, d := range held {
		want[i] = append([]model.Neighbor(nil), d.Result...)
	}
	// Swap the membership of both queries to a different non-empty set, so
	// the engine's in-place snapshot reuse rewrites every element slot the
	// held events would alias: object 2 leaves the neighborhood, object 3
	// enters it.
	e.ProcessBatch(model.Batch{Objects: []model.Update{
		model.MoveUpdate(2, geom.Point{}, geom.Point{X: 0.90, Y: 0.10}),
		model.MoveUpdate(3, geom.Point{}, geom.Point{X: 0.52, Y: 0.55}),
	}})
	e.TakeDiffs()
	for i, d := range held {
		if !reflect.DeepEqual([]model.Neighbor(d.Result), want[i]) {
			t.Errorf("held event %d (query %d) mutated: Result = %v, want %v",
				i, d.Query, d.Result, want[i])
		}
		if d.Kind == model.DiffInstall && !reflect.DeepEqual([]model.Neighbor(d.Entered), want[i]) {
			t.Errorf("held install event %d (query %d) mutated: Entered = %v, want %v",
				i, d.Query, d.Entered, want[i])
		}
	}
}
