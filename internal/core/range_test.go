package core

import (
	"fmt"
	"math"
	"testing"

	"cpm/internal/geom"
	"cpm/internal/model"
)

// rangeOracle computes the ground truth for a range query.
func rangeOracle(e *Engine, center geom.Point, radius float64) []model.Neighbor {
	var out []model.Neighbor
	e.Grid().ForEachObject(func(id model.ObjectID, p geom.Point) {
		if d := geom.Dist(p, center); d <= radius {
			out = append(out, model.Neighbor{ID: id, Dist: d})
		}
	})
	sortNeighbors(out)
	return out
}

func sortNeighbors(ns []model.Neighbor) {
	for i := 1; i < len(ns); i++ {
		for j := i; j > 0 && ns[j].Less(ns[j-1]); j-- {
			ns[j], ns[j-1] = ns[j-1], ns[j]
		}
	}
}

func TestRangeRegisterAndResult(t *testing.T) {
	w := newWorld(70)
	e := NewUnitEngine(16, Options{})
	e.Bootstrap(w.populate(200))
	center := geom.Point{X: 0.5, Y: 0.5}
	const radius = 0.2
	if err := e.RegisterRange(1, center, radius); err != nil {
		t.Fatal(err)
	}
	checkResult(t, "range initial", e.RangeResult(1), rangeOracle(e, center, radius))
	if !e.IsRange(1) || e.IsRange(2) {
		t.Error("IsRange wrong")
	}
	if e.RangeResult(99) != nil {
		t.Error("unknown range query has result")
	}
}

func TestRangeValidation(t *testing.T) {
	e := NewUnitEngine(8, Options{})
	if err := e.RegisterRange(1, geom.Point{X: 0.5, Y: 0.5}, -1); err == nil {
		t.Error("negative radius accepted")
	}
	if err := e.RegisterRange(1, geom.Point{X: 0.5, Y: 0.5}, math.Inf(1)); err == nil {
		t.Error("infinite radius accepted")
	}
	if err := e.RegisterRange(1, geom.Point{X: math.NaN(), Y: 0.5}, 0.1); err == nil {
		t.Error("NaN center accepted")
	}
	if err := e.RegisterRange(1, geom.Point{X: 0.5, Y: 0.5}, 0.1); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterRange(1, geom.Point{X: 0.5, Y: 0.5}, 0.1); err == nil {
		t.Error("duplicate range id accepted")
	}
	if err := e.RegisterQuery(1, geom.Point{X: 0.5, Y: 0.5}, 2); err == nil {
		t.Error("kNN registration over a range id accepted")
	}
	if err := e.Register(2, PointQuery(geom.Point{X: 0.5, Y: 0.5}, 2)); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterRange(2, geom.Point{X: 0.5, Y: 0.5}, 0.1); err == nil {
		t.Error("range registration over a kNN id accepted")
	}
	if err := e.MoveRange(42, geom.Point{}); err == nil {
		t.Error("move of unknown range query accepted")
	}
}

// TestRangeMonitoringMatchesOracle drives range queries through random
// update cycles alongside k-NN queries sharing the same cells.
func TestRangeMonitoringMatchesOracle(t *testing.T) {
	for seed := int64(80); seed < 86; seed++ {
		w := newWorld(seed)
		e := NewUnitEngine(12, Options{})
		e.Bootstrap(w.populate(150))
		type rdef struct {
			center geom.Point
			radius float64
		}
		rdefs := map[model.QueryID]rdef{}
		for i := 0; i < 5; i++ {
			id := model.QueryID(i)
			d := rdef{center: w.randPoint(), radius: 0.05 + w.rng.Float64()*0.3}
			rdefs[id] = d
			if err := e.RegisterRange(id, d.center, d.radius); err != nil {
				t.Fatal(err)
			}
		}
		// A k-NN query sharing the workspace ensures the two query kinds
		// coexist on the same influence lists.
		knnDef := PointQuery(w.randPoint(), 5)
		if err := e.Register(100, knnDef); err != nil {
			t.Fatal(err)
		}
		for cycle := 0; cycle < 20; cycle++ {
			e.ProcessBatch(w.randomBatch(40, true))
			for id, d := range rdefs {
				label := fmt.Sprintf("seed %d cycle %d range %d", seed, cycle, id)
				checkResult(t, label, e.RangeResult(id), rangeOracle(e, d.center, d.radius))
			}
			checkResult(t, "knn alongside ranges", e.Result(100), oracle(e, knnDef))
			checkInvariants(t, e, 100)
		}
	}
}

func TestRangeMoveAndTerminateViaBatch(t *testing.T) {
	w := newWorld(90)
	e := NewUnitEngine(12, Options{})
	e.Bootstrap(w.populate(120))
	if err := e.RegisterRange(1, w.randPoint(), 0.15); err != nil {
		t.Fatal(err)
	}
	to := geom.Point{X: 0.7, Y: 0.3}
	b := w.randomBatch(20, false)
	b.Queries = []model.QueryUpdate{
		{ID: 1, Kind: model.QueryMove, NewPoints: []geom.Point{to}},
	}
	e.ProcessBatch(b)
	checkResult(t, "moved range", e.RangeResult(1), rangeOracle(e, to, 0.15))

	e.ProcessBatch(model.Batch{Queries: []model.QueryUpdate{{ID: 1, Kind: model.QueryTerminate}}})
	if e.RangeResult(1) != nil || e.IsRange(1) {
		t.Error("terminated range query survives")
	}
	// Its influence entries are gone: a move in its old region triggers
	// nothing (and does not crash).
	e.ProcessBatch(w.randomBatch(10, false))
}

func TestRangeZeroRadius(t *testing.T) {
	e := NewUnitEngine(8, Options{})
	p := geom.Point{X: 0.31, Y: 0.47}
	e.Bootstrap(map[model.ObjectID]geom.Point{1: p, 2: {X: 0.5, Y: 0.5}})
	if err := e.RegisterRange(1, p, 0); err != nil {
		t.Fatal(err)
	}
	got := e.RangeResult(1)
	if len(got) != 1 || got[0].ID != 1 || got[0].Dist != 0 {
		t.Fatalf("zero-radius result = %v", got)
	}
}

func TestInvalidCoordinateUpdatesDropped(t *testing.T) {
	e := NewUnitEngine(8, Options{})
	e.Bootstrap(map[model.ObjectID]geom.Point{1: {X: 0.5, Y: 0.5}})
	if err := e.RegisterQuery(1, geom.Point{X: 0.5, Y: 0.5}, 1); err != nil {
		t.Fatal(err)
	}
	e.ProcessBatch(model.Batch{Objects: []model.Update{
		model.MoveUpdate(1, geom.Point{X: 0.5, Y: 0.5}, geom.Point{X: math.NaN(), Y: 0.1}),
		model.InsertUpdate(5, geom.Point{X: math.Inf(1), Y: 0.1}),
	}})
	if e.InvalidUpdates() != 2 {
		t.Errorf("InvalidUpdates = %d, want 2", e.InvalidUpdates())
	}
	// The object stays where it was; results intact.
	if p, _ := e.Grid().Position(1); p != (geom.Point{X: 0.5, Y: 0.5}) {
		t.Errorf("object moved to invalid position: %v", p)
	}
	if got := e.Result(1); len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("result corrupted: %v", got)
	}
}
