package core

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"cpm/internal/model"
)

func TestResultListBasics(t *testing.T) {
	r := newResultList(3)
	if r.full() || r.len() != 0 || !math.IsInf(r.kthDist(), 1) {
		t.Fatal("fresh list not empty/inf")
	}
	r.offer(1, 0.5)
	r.offer(2, 0.2)
	r.offer(3, 0.8)
	if !r.full() || r.kthDist() != 0.8 {
		t.Fatalf("kthDist = %v, want 0.8", r.kthDist())
	}
	if !r.offer(4, 0.1) {
		t.Error("better offer rejected")
	}
	if r.offer(5, 0.9) {
		t.Error("worse offer accepted on full list")
	}
	want := []model.Neighbor{{ID: 4, Dist: 0.1}, {ID: 2, Dist: 0.2}, {ID: 1, Dist: 0.5}}
	got := r.snapshot()
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("snapshot = %v, want %v", got, want)
		}
	}
}

func TestResultListMembership(t *testing.T) {
	r := newResultList(4)
	r.offer(10, 0.3)
	r.offer(20, 0.6)
	if !r.contains(10) || r.contains(99) {
		t.Error("contains wrong")
	}
	if r.indexOf(20) != 1 {
		t.Errorf("indexOf(20) = %d, want 1", r.indexOf(20))
	}
	if !r.remove(10) || r.remove(10) {
		t.Error("remove semantics wrong")
	}
	if r.len() != 1 {
		t.Errorf("len after remove = %d", r.len())
	}
}

func TestResultListUpdateDist(t *testing.T) {
	r := newResultList(3)
	r.offer(1, 0.1)
	r.offer(2, 0.2)
	r.offer(3, 0.3)
	if !r.updateDist(3, 0.05) {
		t.Fatal("updateDist failed")
	}
	if r.items[0].ID != 3 {
		t.Fatalf("updated entry not reordered: %v", r.items)
	}
	if r.updateDist(99, 0.5) {
		t.Error("updateDist of absent id reported true")
	}
	// Moving an entry to the back keeps kthDist consistent.
	r.updateDist(3, 0.9)
	if r.kthDist() != 0.9 {
		t.Errorf("kthDist = %v, want 0.9", r.kthDist())
	}
}

func TestResultListTieBreakByID(t *testing.T) {
	r := newResultList(2)
	r.offer(9, 0.5)
	r.offer(3, 0.5)
	r.offer(6, 0.5)
	got := r.snapshot()
	if got[0].ID != 3 || got[1].ID != 6 {
		t.Fatalf("tie-break wrong: %v", got)
	}
}

// TestResultListMatchesSort: random offers against a reference full sort.
func TestResultListMatchesSort(t *testing.T) {
	rng := rand.New(rand.NewSource(77))
	for trial := 0; trial < 200; trial++ {
		k := 1 + rng.Intn(8)
		r := newResultList(k)
		var all []model.Neighbor
		n := rng.Intn(40)
		for i := 0; i < n; i++ {
			d := rng.Float64()
			r.offer(model.ObjectID(i), d)
			all = append(all, model.Neighbor{ID: model.ObjectID(i), Dist: d})
		}
		sort.Slice(all, func(i, j int) bool { return all[i].Less(all[j]) })
		if len(all) > k {
			all = all[:k]
		}
		got := r.snapshot()
		if len(got) != len(all) {
			t.Fatalf("len = %d, want %d", len(got), len(all))
		}
		for i := range all {
			if got[i] != all[i] {
				t.Fatalf("trial %d: got %v, want %v", trial, got, all)
			}
		}
	}
}

func TestResultListReset(t *testing.T) {
	r := newResultList(2)
	r.offer(1, 0.1)
	r.reset()
	if r.len() != 0 {
		t.Error("reset did not empty list")
	}
	r.offer(2, 0.2)
	if r.items[0].ID != 2 {
		t.Error("list unusable after reset")
	}
}
