package core

import (
	"math"
	"testing"

	"cpm/internal/geom"
	"cpm/internal/model"
)

func TestRegisterValidation(t *testing.T) {
	e := NewUnitEngine(8, Options{})
	cases := map[string]Def{
		"no points": {K: 3},
		"zero k":    {Points: []geom.Point{{X: 0.5, Y: 0.5}}, K: 0},
		"neg k":     {Points: []geom.Point{{X: 0.5, Y: 0.5}}, K: -2},
		"bad agg":   {Points: []geom.Point{{X: 0.1, Y: 0.1}, {X: 0.2, Y: 0.2}}, K: 1, Agg: geom.Agg(7)},
		"nan point": {Points: []geom.Point{{X: math.NaN(), Y: 0.5}}, K: 1},
		"inf point": {Points: []geom.Point{{X: math.Inf(1), Y: 0.5}}, K: 1},
		"inverted constraint": {
			Points: []geom.Point{{X: 0.5, Y: 0.5}}, K: 1,
			Constraint: &geom.Rect{Lo: geom.Point{X: 1, Y: 1}, Hi: geom.Point{X: 0, Y: 0}},
		},
	}
	for name, def := range cases {
		if err := e.Register(1, def); err == nil {
			t.Errorf("%s: Register accepted invalid def", name)
		}
	}
	if err := e.RegisterQuery(1, geom.Point{X: 0.5, Y: 0.5}, 2); err != nil {
		t.Fatal(err)
	}
	if err := e.RegisterQuery(1, geom.Point{X: 0.6, Y: 0.6}, 2); err == nil {
		t.Error("duplicate query id accepted")
	}
}

func TestBootstrapPanicsWhenNonEmpty(t *testing.T) {
	e := NewUnitEngine(8, Options{})
	e.Bootstrap(map[model.ObjectID]geom.Point{1: {X: 0.5, Y: 0.5}})
	defer func() {
		if recover() == nil {
			t.Error("second Bootstrap did not panic")
		}
	}()
	e.Bootstrap(map[model.ObjectID]geom.Point{2: {X: 0.6, Y: 0.6}})
}

func TestNameAndQueryIDs(t *testing.T) {
	e := NewUnitEngine(8, Options{})
	if e.Name() != "CPM" {
		t.Errorf("Name = %q", e.Name())
	}
	e.Bootstrap(map[model.ObjectID]geom.Point{1: {X: 0.5, Y: 0.5}})
	for i := 0; i < 3; i++ {
		if err := e.RegisterQuery(model.QueryID(i), geom.Point{X: 0.5, Y: 0.5}, 1); err != nil {
			t.Fatal(err)
		}
	}
	if ids := e.QueryIDs(); len(ids) != 3 {
		t.Errorf("QueryIDs = %v", ids)
	}
	if e.BestDist(44) != 0 {
		t.Errorf("BestDist of unknown query = %v, want 0", e.BestDist(44))
	}
}

func TestStatsAccumulate(t *testing.T) {
	w := newWorld(50)
	e := NewUnitEngine(16, Options{})
	e.Bootstrap(w.populate(200))
	if err := e.RegisterQuery(1, w.randPoint(), 8); err != nil {
		t.Fatal(err)
	}
	s := e.Stats()
	if s.FullSearches != 1 {
		t.Errorf("FullSearches = %d, want 1", s.FullSearches)
	}
	if s.CellAccesses == 0 || s.HeapOps == 0 || s.ObjectsProcessed == 0 {
		t.Errorf("work counters empty: %+v", s)
	}
	// Stats arithmetic helpers.
	d := s.Sub(model.Stats{FullSearches: 1})
	if d.FullSearches != 0 {
		t.Errorf("Sub failed: %+v", d)
	}
	var acc model.Stats
	acc.Add(s)
	acc.Add(s)
	if acc.CellAccesses != 2*s.CellAccesses {
		t.Errorf("Add failed: %+v", acc)
	}
}

func TestMemoryFootprintGrows(t *testing.T) {
	w := newWorld(51)
	e := NewUnitEngine(16, Options{})
	base := e.MemoryFootprint()
	if base != 0 {
		t.Errorf("empty engine footprint = %d", base)
	}
	e.Bootstrap(w.populate(100))
	afterObjects := e.MemoryFootprint()
	if afterObjects != 300 {
		t.Errorf("footprint after 100 objects = %d, want 300", afterObjects)
	}
	if err := e.RegisterQuery(1, w.randPoint(), 4); err != nil {
		t.Fatal(err)
	}
	if e.MemoryFootprint() <= afterObjects {
		t.Error("footprint did not grow with a query")
	}
}

func TestDropBookkeepingShrinksFootprint(t *testing.T) {
	w := newWorld(52)
	objs := w.populate(500)
	full := NewUnitEngine(32, Options{})
	full.Bootstrap(objs)
	lean := NewUnitEngine(32, Options{DropBookkeeping: true})
	lean.Bootstrap(objs)
	for i := 0; i < 20; i++ {
		q := w.randPoint()
		if err := full.RegisterQuery(model.QueryID(i), q, 4); err != nil {
			t.Fatal(err)
		}
		if err := lean.RegisterQuery(model.QueryID(i), q, 4); err != nil {
			t.Fatal(err)
		}
	}
	if lean.MemoryFootprint() >= full.MemoryFootprint() {
		t.Errorf("DropBookkeeping footprint %d not below full %d",
			lean.MemoryFootprint(), full.MemoryFootprint())
	}
}

func TestResultIsACopy(t *testing.T) {
	e := NewUnitEngine(8, Options{})
	e.Bootstrap(map[model.ObjectID]geom.Point{1: {X: 0.5, Y: 0.5}, 2: {X: 0.6, Y: 0.6}})
	if err := e.RegisterQuery(1, geom.Point{X: 0.5, Y: 0.5}, 2); err != nil {
		t.Fatal(err)
	}
	r := e.Result(1)
	r[0].ID = 999
	if e.Result(1)[0].ID == 999 {
		t.Error("Result exposes internal storage")
	}
}
