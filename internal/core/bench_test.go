package core

import (
	"math/rand"
	"testing"

	"cpm/internal/geom"
	"cpm/internal/model"
)

// BenchmarkRelocate measures the pure index-maintenance path — the cost the
// paper's Section 4.1 model calls Time_ind. The queries (and therefore all
// influence regions) live in the lower-left quadrant while the moving
// objects are confined to the upper-right one, so every move passes the
// affected-cell pre-filter without scanning a single influence list: each
// update is exactly one grid relocation (swap-delete from the old cell's
// slice, append to the new one's).
func BenchmarkRelocate(b *testing.B) {
	const (
		nObjects = 4096 // moving population, upper-right quadrant
		nStatic  = 1024 // static population around the queries: keeps every
		// influence region inside the lower-left quadrant
		nQueries = 64
		batchLen = 1024
	)
	rng := rand.New(rand.NewSource(17))
	e := NewUnitEngine(64, Options{})
	objs := make(map[model.ObjectID]geom.Point, nObjects+nStatic)
	pos := make([]geom.Point, nObjects)
	for i := range pos {
		// Moving objects stay in [0.55,1)² — outside every query's reach.
		pos[i] = geom.Point{X: 0.55 + 0.45*rng.Float64(), Y: 0.55 + 0.45*rng.Float64()}
		objs[model.ObjectID(i)] = pos[i]
	}
	for i := 0; i < nStatic; i++ {
		objs[model.ObjectID(nObjects+i)] = geom.Point{X: 0.25 * rng.Float64(), Y: 0.25 * rng.Float64()}
	}
	e.Bootstrap(objs)
	for i := 0; i < nQueries; i++ {
		q := geom.Point{X: 0.2 * rng.Float64(), Y: 0.2 * rng.Float64()}
		if err := e.RegisterQuery(model.QueryID(i), q, 8); err != nil {
			b.Fatal(err)
		}
	}
	// A ring of pre-built move batches keeps generation out of the loop;
	// moves jitter within the upper-right quadrant so no influence region
	// is ever touched.
	clampHi := func(v float64) float64 {
		if v < 0.55 {
			return 0.55
		}
		if v > 0.999 {
			return 0.999
		}
		return v
	}
	batches := make([]model.Batch, 8)
	for c := range batches {
		upd := make([]model.Update, batchLen)
		for j := range upd {
			id := model.ObjectID(rng.Intn(nObjects))
			to := geom.Point{
				X: clampHi(pos[id].X + (rng.Float64()-0.5)*0.02),
				Y: clampHi(pos[id].Y + (rng.Float64()-0.5)*0.02),
			}
			upd[j] = model.MoveUpdate(id, pos[id], to)
			pos[id] = to
		}
		batches[c] = model.Batch{Objects: upd}
	}
	base := e.Stats()
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.ProcessBatch(batches[i%len(batches)])
	}
	b.StopTimer()
	if d := e.Stats().Sub(base); d.ObjectsProcessed != 0 || d.Recomputations != 0 {
		b.Fatalf("relocation touched query state: %+v", d)
	}
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/float64(b.N*batchLen), "ns/move")
}
