package core

import (
	"errors"
	"fmt"
	"math"

	"cpm/internal/geom"
)

// Def is the definition of a continuous query. A conventional k-NN query
// has a single point; an aggregate query (Section 5) has m points and an
// aggregate function; a constrained query (Figure 5.3) additionally limits
// results to a region of the data space. All combinations are legal: a
// constrained aggregate query works.
type Def struct {
	// Points holds the query point(s). Exactly one for conventional NN.
	Points []geom.Point
	// K is the number of neighbors to monitor.
	K int
	// Agg is the aggregate function; ignored when len(Points) == 1 (every
	// aggregate of a single distance is that distance).
	Agg geom.Agg
	// Constraint, when non-nil, restricts results to objects inside the
	// region.
	Constraint *geom.Rect
}

// PointQuery builds the definition of a conventional k-NN query.
func PointQuery(q geom.Point, k int) Def {
	return Def{Points: []geom.Point{q}, K: k}
}

// AggQuery builds the definition of an aggregate k-NN query.
func AggQuery(points []geom.Point, k int, agg geom.Agg) Def {
	return Def{Points: points, K: k, Agg: agg}
}

// Validate reports whether the definition is usable.
func (d Def) Validate() error {
	if len(d.Points) == 0 {
		return errors.New("core: query has no points")
	}
	if d.K <= 0 {
		return fmt.Errorf("core: non-positive k %d", d.K)
	}
	if !d.Agg.Valid() {
		return fmt.Errorf("core: invalid aggregate %d", d.Agg)
	}
	for _, p := range d.Points {
		if math.IsNaN(p.X) || math.IsNaN(p.Y) || math.IsInf(p.X, 0) || math.IsInf(p.Y, 0) {
			return fmt.Errorf("core: non-finite query point %v", p)
		}
	}
	if c := d.Constraint; c != nil && (c.Width() < 0 || c.Height() < 0) {
		return fmt.Errorf("core: inverted constraint region %v", *c)
	}
	return nil
}

// single reports whether this is a conventional single-point query, the
// fast path for distance evaluation.
func (d Def) single() bool { return len(d.Points) == 1 }

// dist returns the (aggregate) distance of an object at p from the query.
// Constraint filtering is separate (see admits): distance remains defined
// for every point.
func (d Def) dist(p geom.Point) float64 {
	if d.single() {
		return geom.Dist(p, d.Points[0])
	}
	return geom.AggDist(d.Agg, p, d.Points)
}

// minDist returns the (aggregate) mindist lower bound for rectangle r: for
// every object p in r, d.dist(p) >= d.minDist(r).
func (d Def) minDist(r geom.Rect) float64 {
	if d.single() {
		return r.MinDist(d.Points[0])
	}
	return geom.AggMinDist(d.Agg, r, d.Points)
}

// admits reports whether an object at p is eligible for the result
// (constraint region check).
func (d Def) admits(p geom.Point) bool {
	return d.Constraint == nil || d.Constraint.Contains(p)
}

// prunesRect reports whether rectangle r can be skipped entirely because it
// cannot contain an admissible object.
func (d Def) prunesRect(r geom.Rect) bool {
	return d.Constraint != nil && !d.Constraint.Intersects(r)
}
