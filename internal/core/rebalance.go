package core

import (
	"cpm/internal/conc"
	"cpm/internal/grid"
)

// Online grid rebalancing — the engine half of resizing δ at runtime.
//
// The paper picks the cell side δ once, from the cost model of Section 4
// evaluated at the *initial* object density. A drifting population (hotspot
// formation, churn) moves the density away from that optimum and the frozen
// grid degrades toward one of the two bad extremes the model analyzes: cells
// too coarse (every scan wades through huge object lists) or too fine
// (searches touch thousands of near-empty cells). Rebalance re-partitions
// the same workspace into a new cell count while the monitor keeps running.
//
// The key observation making this cheap: query RESULTS are δ-independent —
// the k nearest neighbors of a point do not care how the space is bucketed —
// so a resize only has to rebuild the index-resolution book-keeping (cell
// object lists, influence lists, visit lists, leftover heaps), never
// recompute an answer. Concretely, for every installed k-NN query the
// traversal of the conceptual partitioning is replayed on the new grid up to
// the query's current best_dist, WITHOUT scanning a single object: the cells
// popped below best_dist become the new visit list / influence prefix, and
// the heap is left holding exactly the frontier a search stopped at — the
// same shape of state a fresh computation would maintain, so all later
// update handling and re-computation proceeds unchanged. Range queries just
// re-enumerate their disk cover. The cell-access and objects-processed
// counters do not move — no object list is ever scanned — while heap
// operations count as in any search; both stay exactly partitionable across
// shards (all reindex work is per-query), so the sharded monitor's summed
// stats keep matching a single engine's.

// Rebalance re-partitions the grid into newSize×newSize cells and
// reinstalls every installed query's book-keeping on the new geometry,
// leaving every result — and therefore the reported snapshots and the diff
// stream — untouched. A no-op when newSize equals the current size. It must
// be called between processing cycles (same single-caller contract as
// ProcessBatch). On a shared grid the monitor owns the resize: it rebuilds
// the grid once and calls Reindex on every engine.
func (e *Engine) Rebalance(newSize int) {
	if newSize == e.g.Size() {
		return
	}
	if !e.ownsGrid {
		panic("core: Rebalance on a shared-grid engine (the monitor owns the grid)")
	}
	e.g.Rebuild(newSize)
	e.Reindex()
}

// Reindex rebuilds every installed query's book-keeping against the grid's
// current geometry — the engine half of a resize, runnable in parallel
// across the engines of a shared grid (all reindex work is per-query and
// scans no objects). The influence indexes are reset wholesale first; scan
// groups are re-derived because the home-cell → group mapping depends on
// the cell count.
func (e *Engine) Reindex() {
	e.rebalances++
	cellCount := e.g.Size() * e.g.Size()
	for _, infl := range e.infls {
		infl.Reset(cellCount)
	}
	for _, qu := range e.queries {
		qu.group = e.homeGroup(qu.def.Points)
		e.reindexQuery(qu)
	}
	for _, rq := range e.ranges {
		rq.group = e.groupOf(e.g.CellOf(rq.center))
		e.reindexRange(rq)
	}
}

// Rebalances returns how many grid resizes this engine has performed.
func (e *Engine) Rebalances() int64 { return e.rebalances }

// GridSize returns the current number of cells per dimension — a runtime
// property once rebalancing is on.
func (e *Engine) GridSize() int { return e.g.Size() }

// reindexQuery rebuilds a k-NN query's search book-keeping (visit list,
// influence entries, leftover heap) on the freshly rebuilt grid without
// touching its result. It runs the same conceptual-partitioning traversal
// as a search, bounded by the query's current best_dist, but never scans a
// cell's objects: the result is already exact.
//
// Cells with key <= best_dist are admitted to the influence prefix
// (inclusive, where a live search stops strictly below): an object at
// distance exactly best_dist can be a result member whose cell's mindist
// equals best_dist, and its update must keep routing to the query. The
// prefix is therefore a superset of a fresh search's — harmless, since
// influence routing is filtered by distance again at scan time.
func (e *Engine) reindexQuery(qu *query) {
	// The old geometry's influence entries died with the wholesale
	// Influence.Reset in Reindex; only the per-query state needs resetting.
	qu.visit = qu.visit[:0]
	qu.influenceEnd = 0
	qu.heap.Reset()

	part := e.partitionFor(qu.def)
	e.seedHeap(qu, part)
	bound := qu.best.kthDist()
	infl := e.infls[qu.group]
	for {
		top, ok := qu.heap.Min()
		if !ok || top.Key > bound {
			break
		}
		qu.heap.Pop()
		e.stats.HeapOps++
		if !isStrip(top.Payload) {
			c := payloadCell(top.Payload)
			infl.AddUnchecked(c, qu.id)
			qu.visit = append(qu.visit, visitEntry{cell: c, key: top.Key})
			continue
		}
		s := payloadStrip(top.Payload)
		part.Cells(s, func(col, row int) { e.pushCell(qu, col, row) })
		e.pushStrip(qu, part, conc.Strip{Dir: s.Dir, Level: s.Level + 1})
	}
	qu.influenceEnd = len(qu.visit)
	if e.opts.DropBookkeeping {
		// Memory-pressure mode stores no search state beyond the influence
		// prefix; match compute's post-search truncation.
		qu.heap.Reset()
	}
}

// reindexRange re-enumerates a range query's disk cover on the new grid.
// Membership is δ-independent, so the member set is untouched.
func (e *Engine) reindexRange(rq *rangeQuery) {
	rq.cells = rq.cells[:0]
	infl := e.infls[rq.group]
	e.g.CellsInCircle(rq.center, rq.radius, func(c grid.CellIndex) {
		infl.AddUnchecked(c, rq.id)
		rq.cells = append(rq.cells, c)
	})
}
