// Package analysis implements the cost and space model of the paper's
// Section 4.1: closed-form estimates — under uniformly distributed objects
// and queries in the unit square — for the radius best_dist, the cell and
// object counts of a query's influence region, the visit-list/search-heap
// size, the total memory of CPM, and the per-cycle running time. The
// benchmark harness compares these predictions against measurements on
// uniform data (experiment A4.1 of DESIGN.md).
package analysis

import (
	"fmt"
	"math"
)

// Model captures the problem parameters of Table 6.1 plus the grid cell
// side δ.
type Model struct {
	N     int     // object population
	NumQ  int     // number of queries n
	K     int     // neighbors per query
	Delta float64 // cell side δ (= 1/grid size in the unit square)
	FObj  float64 // object agility f_obj
	FQry  float64 // query agility f_qry
}

// Validate reports whether the model parameters are usable.
func (m Model) Validate() error {
	if m.N <= 0 || m.NumQ < 0 || m.K <= 0 {
		return fmt.Errorf("analysis: bad population/query/k (%d, %d, %d)", m.N, m.NumQ, m.K)
	}
	if m.Delta <= 0 || m.Delta > 1 {
		return fmt.Errorf("analysis: δ %v outside (0,1]", m.Delta)
	}
	if m.FObj < 0 || m.FObj > 1 || m.FQry < 0 || m.FQry > 1 {
		return fmt.Errorf("analysis: agility outside [0,1]")
	}
	return nil
}

// BestDist estimates the k-NN distance for uniform data: the circle Θ_q of
// radius best_dist holds k of the N objects of the unit square, so
// best_dist = sqrt(k / (π·N)).
func (m Model) BestDist() float64 {
	return math.Sqrt(float64(m.K) / (math.Pi * float64(m.N)))
}

// CInf estimates the number of cells in the influence region:
// C_inf = π·⌈best_dist/δ⌉².
func (m Model) CInf() float64 {
	r := math.Ceil(m.BestDist() / m.Delta)
	return math.Pi * r * r
}

// OInf estimates the number of objects in the influence region:
// O_inf = C_inf · N · δ² (each cell holds N·δ² objects on average).
func (m Model) OInf() float64 {
	return m.CInf() * float64(m.N) * m.Delta * m.Delta
}

// CSH estimates the combined size of the visit list and the search heap:
// the cells intersecting the circumscribed square of Θ_q,
// C_SH = 4·⌈best_dist/δ⌉².
func (m Model) CSH() float64 {
	r := math.Ceil(m.BestDist() / m.Delta)
	return 4 * r * r
}

// SpaceGrid estimates the grid index size in abstract memory units:
// 3·N for the objects plus one influence entry per query per influence
// cell: Space_G = 3·N + n·C_inf.
func (m Model) SpaceGrid() float64 {
	return 3*float64(m.N) + float64(m.NumQ)*m.CInf()
}

// SpaceQueryTable estimates the query table size:
// Space_QT = n·(15 + 2·k + 3·C_SH) — 3 units for the query point and id,
// 2·k for the result, 3 per visit/heap entry plus the four boundary boxes
// (3·(C_SH+4) = 3·C_SH + 12).
func (m Model) SpaceQueryTable() float64 {
	return float64(m.NumQ) * (15 + 2*float64(m.K) + 3*m.CSH())
}

// SpaceTotal is Space_G + Space_QT — the paper's Space_CPM.
func (m Model) SpaceTotal() float64 {
	return m.SpaceGrid() + m.SpaceQueryTable()
}

// TimeIndex estimates index-update work per cycle: 2·N·f_obj expected
// constant-time hash operations.
func (m Model) TimeIndex() float64 {
	return 2 * float64(m.N) * m.FObj
}

// TimeMovingQuery estimates the cost of one NN computation from scratch:
// C_SH·log C_SH (heap traffic) + O_inf·log k (result maintenance) +
// 2·C_inf (influence-list updates).
func (m Model) TimeMovingQuery() float64 {
	csh := m.CSH()
	logCsh := 0.0
	if csh > 1 {
		logCsh = math.Log2(csh)
	}
	return csh*logCsh + m.OInf()*log2k(m.K) + 2*m.CInf()
}

// TimeStaticQuery estimates per-cycle result maintenance for a static
// query: k·log k (re-ordering plus incomer insertion).
func (m Model) TimeStaticQuery() float64 {
	return float64(m.K) * log2k(m.K)
}

// TimeTotal is the paper's Time_CPM per processing cycle:
// 2·N·f_obj + n·f_qry·T_mq + n·(1−f_qry)·T_sq.
func (m Model) TimeTotal() float64 {
	n := float64(m.NumQ)
	return m.TimeIndex() + n*m.FQry*m.TimeMovingQuery() + n*(1-m.FQry)*m.TimeStaticQuery()
}

func log2k(k int) float64 {
	if k <= 1 {
		return 1 // a single comparison still happens
	}
	return math.Log2(float64(k))
}
