package analysis

import (
	"math"
	"math/rand"
	"testing"

	"cpm/internal/core"
	"cpm/internal/geom"
	"cpm/internal/model"
)

func defaultModel() Model {
	return Model{N: 100_000, NumQ: 5_000, K: 16, Delta: 1.0 / 128, FObj: 0.5, FQry: 0.3}
}

func TestValidate(t *testing.T) {
	if err := defaultModel().Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []Model{
		{N: 0, NumQ: 1, K: 1, Delta: 0.1},
		{N: 10, NumQ: 1, K: 0, Delta: 0.1},
		{N: 10, NumQ: 1, K: 1, Delta: 0},
		{N: 10, NumQ: 1, K: 1, Delta: 2},
		{N: 10, NumQ: 1, K: 1, Delta: 0.1, FObj: 1.5},
	}
	for _, m := range bad {
		if err := m.Validate(); err == nil {
			t.Errorf("model %+v accepted", m)
		}
	}
}

func TestBestDistFormula(t *testing.T) {
	m := defaultModel()
	want := math.Sqrt(16 / (math.Pi * 100_000))
	if got := m.BestDist(); math.Abs(got-want) > 1e-15 {
		t.Errorf("BestDist = %v, want %v", got, want)
	}
}

// TestBestDistMatchesUniformData: the estimate should land within ~25% of
// the measured mean k-NN distance on actual uniform data.
func TestBestDistMatchesUniformData(t *testing.T) {
	const n, k = 20_000, 16
	rng := rand.New(rand.NewSource(1))
	e := core.NewUnitEngine(64, core.Options{})
	objs := make(map[model.ObjectID]geom.Point, n)
	for i := 0; i < n; i++ {
		objs[model.ObjectID(i)] = geom.Point{X: rng.Float64(), Y: rng.Float64()}
	}
	e.Bootstrap(objs)
	sum := 0.0
	const trials = 200
	for i := 0; i < trials; i++ {
		// Keep queries off the border where the uniform-disk argument
		// breaks down.
		q := geom.Point{X: 0.2 + 0.6*rng.Float64(), Y: 0.2 + 0.6*rng.Float64()}
		if err := e.RegisterQuery(model.QueryID(i), q, k); err != nil {
			t.Fatal(err)
		}
		sum += e.BestDist(model.QueryID(i))
		e.RemoveQuery(model.QueryID(i))
	}
	measured := sum / trials
	est := Model{N: n, NumQ: 1, K: k, Delta: 1.0 / 64}.BestDist()
	if ratio := measured / est; ratio < 0.75 || ratio > 1.3 {
		t.Errorf("measured best_dist %v vs estimate %v (ratio %v)", measured, est, ratio)
	}
}

// TestCInfCSHMatchMeasurement validates the influence-region and
// visit/heap size estimates against the live engine on uniform data.
func TestCInfCSHMatchMeasurement(t *testing.T) {
	const n, k = 20_000, 16
	for _, gridSize := range []int{32, 64, 128} {
		rng := rand.New(rand.NewSource(7))
		e := core.NewUnitEngine(gridSize, core.Options{})
		objs := make(map[model.ObjectID]geom.Point, n)
		for i := 0; i < n; i++ {
			objs[model.ObjectID(i)] = geom.Point{X: rng.Float64(), Y: rng.Float64()}
		}
		e.Bootstrap(objs)
		mdl := Model{N: n, NumQ: 1, K: k, Delta: 1.0 / float64(gridSize)}
		sumAcc := 0.0
		const trials = 100
		accBase := e.Stats().CellAccesses
		for i := 0; i < trials; i++ {
			q := geom.Point{X: 0.2 + 0.6*rng.Float64(), Y: 0.2 + 0.6*rng.Float64()}
			if err := e.RegisterQuery(model.QueryID(i), q, k); err != nil {
				t.Fatal(err)
			}
			e.RemoveQuery(model.QueryID(i))
		}
		sumAcc = float64(e.Stats().CellAccesses - accBase)
		measuredCells := sumAcc / trials
		// The search visits the influence region; C_inf estimates its
		// cell count. Allow a factor-two band: the ceiling term is crude
		// for small best_dist/δ.
		est := mdl.CInf()
		if ratio := measuredCells / est; ratio < 0.3 || ratio > 2.5 {
			t.Errorf("grid %d: measured cells/search %v vs C_inf %v (ratio %v)",
				gridSize, measuredCells, est, ratio)
		}
	}
}

func TestMonotonicityInDelta(t *testing.T) {
	// Coarse versus fine grid (Figure 4.1's trade-off): a fine grid has
	// more influence cells but far fewer objects in them; O_inf tends to
	// its minimum k as δ→0 but never falls below it.
	coarse := defaultModel()
	coarse.Delta = 1.0 / 8
	fine := defaultModel()
	fine.Delta = 1.0 / 512
	if fine.CInf() <= coarse.CInf() {
		t.Error("C_inf did not grow with finer grid")
	}
	if fine.CSH() <= coarse.CSH() {
		t.Error("C_SH did not grow with finer grid")
	}
	if fine.OInf() >= coarse.OInf() {
		t.Error("O_inf did not shrink with finer grid")
	}
	if fine.OInf() < float64(fine.K) {
		t.Errorf("O_inf %v fell below its minimum k=%d", fine.OInf(), fine.K)
	}
}

func TestSpaceComposition(t *testing.T) {
	m := defaultModel()
	if m.SpaceTotal() != m.SpaceGrid()+m.SpaceQueryTable() {
		t.Error("SpaceTotal is not the sum of its parts")
	}
	if m.SpaceGrid() <= 3*float64(m.N) {
		t.Error("SpaceGrid missing influence-list term")
	}
	// More queries cost linearly more.
	m2 := m
	m2.NumQ = 2 * m.NumQ
	if math.Abs(m2.SpaceQueryTable()-2*m.SpaceQueryTable()) > 1e-6 {
		t.Error("SpaceQueryTable not linear in n")
	}
}

func TestTimeComposition(t *testing.T) {
	m := defaultModel()
	if m.TimeIndex() != 2*float64(m.N)*m.FObj {
		t.Error("TimeIndex formula wrong")
	}
	if m.TimeTotal() <= m.TimeIndex() {
		t.Error("TimeTotal missing query terms")
	}
	// Time grows with query agility: moving queries are costlier than
	// static maintenance.
	agile := m
	agile.FQry = 0.9
	if agile.TimeTotal() <= m.TimeTotal() {
		t.Error("TimeTotal did not grow with query agility")
	}
	// k=1 queries avoid a zero log factor.
	one := m
	one.K = 1
	if one.TimeStaticQuery() <= 0 {
		t.Error("TimeStaticQuery degenerate at k=1")
	}
}
