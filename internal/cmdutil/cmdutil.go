// Package cmdutil carries the observability plumbing the cmd/ binaries
// share: structured logging behind one -log-level convention, tracer
// construction from the -trace-sample/-slow-op/-trace-cap flag trio, and
// the debug HTTP handlers (/debug/traces, optional /debug/pprof) mounted
// on each binary's -metrics mux.
//
// Log lines use a consistent key vocabulary across binaries — worker,
// conn, trace_id, addr, op — so one grep (or one log pipeline) reads a
// whole deployment.
package cmdutil

import (
	"context"
	"fmt"
	"log/slog"
	"net/http"
	"net/http/pprof"
	"os"
	"time"

	"cpm/internal/tracing"
)

// ParseLevel maps a -log-level flag value onto a slog.Level.
func ParseLevel(s string) (slog.Level, error) {
	switch s {
	case "debug":
		return slog.LevelDebug, nil
	case "info", "":
		return slog.LevelInfo, nil
	case "warn":
		return slog.LevelWarn, nil
	case "error":
		return slog.LevelError, nil
	default:
		return 0, fmt.Errorf("unknown log level %q (want debug, info, warn or error)", s)
	}
}

// Logger builds the binary's logger: a text handler on stderr at the
// given -log-level, tagged with the program name, installed as the slog
// default. A bad level is flag misuse and exits 2, like flag.Parse.
func Logger(prog, level string) *slog.Logger {
	lvl, err := ParseLevel(level)
	if err != nil {
		fmt.Fprintf(os.Stderr, "%s: %v\n", prog, err)
		os.Exit(2)
	}
	l := slog.New(slog.NewTextHandler(os.Stderr, &slog.HandlerOptions{Level: lvl})).With("prog", prog)
	slog.SetDefault(l)
	return l
}

// Fatal logs one error-level line and exits 1 — the slog replacement for
// log.Fatalf in the binaries.
func Fatal(l *slog.Logger, msg string, args ...any) {
	l.Error(msg, args...)
	os.Exit(1)
}

// Logf adapts a slog logger to the printf-style Logf hooks internal/server
// and internal/cluster expose, at debug level: connection and worker
// lifecycle diagnostics appear under -log-level debug and cost nothing
// above it.
func Logf(l *slog.Logger) func(format string, args ...any) {
	return func(format string, args ...any) {
		if l.Enabled(context.Background(), slog.LevelDebug) {
			l.Debug(fmt.Sprintf(format, args...))
		}
	}
}

// TraceConfig is the tracer flag trio every serving binary exposes.
type TraceConfig struct {
	Sample float64       // -trace-sample: head-sampling probability
	SlowOp time.Duration // -slow-op: force-record ops at least this slow
	Cap    int           // -trace-cap: flight-recorder capacity
}

// Build constructs the tracer (nil when the config records nothing) with
// an OnSlow hook that logs each slow op with its trace id, so an operator
// can jump from the log line to /debug/traces?id=<trace_id>.
func (c TraceConfig) Build(l *slog.Logger) *tracing.Tracer {
	return tracing.New(tracing.Options{
		SampleRate: c.Sample,
		SlowOp:     c.SlowOp,
		Capacity:   c.Cap,
		OnSlow: func(tr tracing.RecordedTrace) {
			l.Warn("slow op recorded",
				"op", tr.Name,
				"trace_id", TraceID(tr.TraceID),
				"duration", time.Duration(tr.DurNs))
		},
	})
}

// TraceID renders a trace id the way the JSON surfaces do — fixed-width
// hex — so log lines and /debug/traces lookups agree.
func TraceID(id uint64) string { return fmt.Sprintf("%016x", id) }

// MountDebug mounts the debug surfaces on a -metrics mux: the flight
// recorder under /debug/traces (list, ?id=<hex>, /<hex>) and — only when
// the -pprof flag opted in — the net/http/pprof profiling handlers under
// /debug/pprof/. The pprof handlers are mounted explicitly rather than via
// the package's init side effect, so nothing leaks onto a mux that did not
// ask for it.
func MountDebug(mux *http.ServeMux, t *tracing.Tracer, pprofOn bool) {
	mux.Handle("/debug/traces", t.Handler())
	mux.Handle("/debug/traces/", t.Handler())
	if pprofOn {
		mux.HandleFunc("/debug/pprof/", pprof.Index)
		mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
		mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
		mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
		mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	}
}
