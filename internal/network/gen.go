package network

import (
	"fmt"
	"math/rand"

	"cpm/internal/geom"
)

// GenOptions configure the synthetic city generator.
type GenOptions struct {
	// Width and Height give the lattice dimensions in intersections. The
	// generated city has Width×Height nodes in the unit square.
	Width, Height int
	// Jitter displaces each intersection from its lattice position by up
	// to ±Jitter/2 lattice cells per axis, breaking the regular look.
	// 0 ≤ Jitter < 1; default 0.6.
	Jitter float64
	// ExtraStreets is the fraction of non-tree lattice edges kept in
	// addition to the random spanning tree that guarantees connectivity
	// (0 = tree city, 1 = full lattice). Default 0.6.
	ExtraStreets float64
	// Seed drives all randomness; the same options yield the same city.
	Seed int64
}

func (o *GenOptions) defaults() {
	if o.Width == 0 {
		o.Width = 32
	}
	if o.Height == 0 {
		o.Height = 32
	}
	if o.Jitter == 0 {
		o.Jitter = 0.6
	}
	if o.ExtraStreets == 0 {
		o.ExtraStreets = 0.6
	}
}

// Generate synthesizes a connected road network per the options. See the
// package comment for why this substitutes for the Oldenburg map.
func Generate(opts GenOptions) (*Graph, error) {
	opts.defaults()
	if opts.Width < 2 || opts.Height < 2 {
		return nil, fmt.Errorf("network: lattice %dx%d too small", opts.Width, opts.Height)
	}
	if opts.Jitter < 0 || opts.Jitter >= 1 {
		return nil, fmt.Errorf("network: jitter %v outside [0,1)", opts.Jitter)
	}
	if opts.ExtraStreets < 0 || opts.ExtraStreets > 1 {
		return nil, fmt.Errorf("network: extra streets %v outside [0,1]", opts.ExtraStreets)
	}
	rng := rand.New(rand.NewSource(opts.Seed))
	w, h := opts.Width, opts.Height
	g := NewGraph(w * h)

	// Jittered lattice nodes, kept inside the unit square with a half-cell
	// margin so trajectories stay in the workspace.
	dx, dy := 1.0/float64(w), 1.0/float64(h)
	for row := 0; row < h; row++ {
		for col := 0; col < w; col++ {
			jx := (rng.Float64() - 0.5) * opts.Jitter * dx
			jy := (rng.Float64() - 0.5) * opts.Jitter * dy
			g.AddNode(geom.Point{
				X: (float64(col)+0.5)*dx + jx,
				Y: (float64(row)+0.5)*dy + jy,
			})
		}
	}

	node := func(col, row int) NodeID { return NodeID(row*w + col) }

	// Candidate streets: the lattice's horizontal and vertical segments.
	type street struct{ a, b NodeID }
	var candidates []street
	for row := 0; row < h; row++ {
		for col := 0; col < w; col++ {
			if col+1 < w {
				candidates = append(candidates, street{node(col, row), node(col+1, row)})
			}
			if row+1 < h {
				candidates = append(candidates, street{node(col, row), node(col, row+1)})
			}
		}
	}
	rng.Shuffle(len(candidates), func(i, j int) {
		candidates[i], candidates[j] = candidates[j], candidates[i]
	})

	// Random spanning tree first (Kruskal over the shuffled streets with a
	// union-find), then a fraction of the remaining streets.
	uf := newUnionFind(w * h)
	var extras []street
	for _, s := range candidates {
		if uf.union(int(s.a), int(s.b)) {
			if err := g.AddEdge(s.a, s.b); err != nil {
				return nil, err
			}
		} else {
			extras = append(extras, s)
		}
	}
	keep := int(opts.ExtraStreets * float64(len(extras)))
	for _, s := range extras[:keep] {
		if err := g.AddEdge(s.a, s.b); err != nil {
			return nil, err
		}
	}
	return g, nil
}

// unionFind is a standard disjoint-set with path halving and union by size.
type unionFind struct {
	parent []int
	size   []int
}

func newUnionFind(n int) *unionFind {
	uf := &unionFind{parent: make([]int, n), size: make([]int, n)}
	for i := range uf.parent {
		uf.parent[i] = i
		uf.size[i] = 1
	}
	return uf
}

func (u *unionFind) find(x int) int {
	for u.parent[x] != x {
		u.parent[x] = u.parent[u.parent[x]]
		x = u.parent[x]
	}
	return x
}

// union merges the sets of a and b, reporting whether they were distinct.
func (u *unionFind) union(a, b int) bool {
	ra, rb := u.find(a), u.find(b)
	if ra == rb {
		return false
	}
	if u.size[ra] < u.size[rb] {
		ra, rb = rb, ra
	}
	u.parent[rb] = ra
	u.size[ra] += u.size[rb]
	return true
}
