package network

import (
	"math"
	"math/rand"
	"testing"

	"cpm/internal/geom"
)

func TestGraphBasics(t *testing.T) {
	g := NewGraph(4)
	a := g.AddNode(geom.Point{X: 0, Y: 0})
	b := g.AddNode(geom.Point{X: 1, Y: 0})
	c := g.AddNode(geom.Point{X: 1, Y: 1})
	if g.NumNodes() != 3 {
		t.Fatalf("NumNodes = %d", g.NumNodes())
	}
	if err := g.AddEdge(a, b); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(b, c); err != nil {
		t.Fatal(err)
	}
	if err := g.AddEdge(a, b); err != nil { // idempotent
		t.Fatal(err)
	}
	if g.NumEdges() != 2 {
		t.Fatalf("NumEdges = %d, want 2", g.NumEdges())
	}
	if err := g.AddEdge(a, a); err == nil {
		t.Error("self-loop accepted")
	}
	if err := g.AddEdge(a, 99); err == nil {
		t.Error("out-of-range edge accepted")
	}
	if !g.Connected() {
		t.Error("triangle path reported disconnected")
	}
	if math.Abs(g.TotalLength()-2) > 1e-12 {
		t.Errorf("TotalLength = %v, want 2", g.TotalLength())
	}
	if got := g.NearestNode(geom.Point{X: 0.9, Y: 0.9}); got != c {
		t.Errorf("NearestNode = %d, want %d", got, c)
	}
	if len(g.Neighbors(b)) != 2 {
		t.Errorf("Neighbors(b) = %v", g.Neighbors(b))
	}
}

func TestConnectedDetectsSplit(t *testing.T) {
	g := NewGraph(4)
	a := g.AddNode(geom.Point{X: 0, Y: 0})
	b := g.AddNode(geom.Point{X: 1, Y: 0})
	g.AddNode(geom.Point{X: 0.5, Y: 1}) // isolated
	if err := g.AddEdge(a, b); err != nil {
		t.Fatal(err)
	}
	if g.Connected() {
		t.Error("disconnected graph reported connected")
	}
	empty := NewGraph(0)
	if !empty.Connected() {
		t.Error("empty graph should be trivially connected")
	}
}

// floydWarshall is the independent oracle for Dijkstra.
func floydWarshall(g *Graph) [][]float64 {
	n := g.NumNodes()
	d := make([][]float64, n)
	for i := range d {
		d[i] = make([]float64, n)
		for j := range d[i] {
			if i != j {
				d[i][j] = math.Inf(1)
			}
		}
	}
	for i := 0; i < n; i++ {
		for _, e := range g.Neighbors(NodeID(i)) {
			d[i][e.To] = e.Length
		}
	}
	for k := 0; k < n; k++ {
		for i := 0; i < n; i++ {
			for j := 0; j < n; j++ {
				if nd := d[i][k] + d[k][j]; nd < d[i][j] {
					d[i][j] = nd
				}
			}
		}
	}
	return d
}

func TestDijkstraMatchesFloydWarshall(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		rng := rand.New(rand.NewSource(seed))
		g := NewGraph(20)
		n := 8 + rng.Intn(12)
		for i := 0; i < n; i++ {
			g.AddNode(geom.Point{X: rng.Float64(), Y: rng.Float64()})
		}
		// Random edges; possibly disconnected — both outcomes tested.
		for i := 0; i < 2*n; i++ {
			a := NodeID(rng.Intn(n))
			b := NodeID(rng.Intn(n))
			if a != b {
				if err := g.AddEdge(a, b); err != nil {
					t.Fatal(err)
				}
			}
		}
		want := floydWarshall(g)
		r := NewRouter(g)
		for src := 0; src < n; src++ {
			for dst := 0; dst < n; dst++ {
				path, length, ok := r.ShortestPath(NodeID(src), NodeID(dst))
				reachable := !math.IsInf(want[src][dst], 1)
				if ok != reachable {
					t.Fatalf("seed %d: (%d→%d) ok=%v, reachable=%v", seed, src, dst, ok, reachable)
				}
				if !ok {
					continue
				}
				if math.Abs(length-want[src][dst]) > 1e-9 {
					t.Fatalf("seed %d: (%d→%d) length %v, want %v", seed, src, dst, length, want[src][dst])
				}
				validatePath(t, g, path, NodeID(src), NodeID(dst), length)
			}
		}
	}
}

func validatePath(t *testing.T, g *Graph, path []NodeID, src, dst NodeID, length float64) {
	t.Helper()
	if len(path) == 0 || path[0] != src || path[len(path)-1] != dst {
		t.Fatalf("path %v does not run %d→%d", path, src, dst)
	}
	total := 0.0
	for i := 1; i < len(path); i++ {
		found := false
		for _, e := range g.Neighbors(path[i-1]) {
			if e.To == path[i] {
				total += e.Length
				found = true
				break
			}
		}
		if !found {
			t.Fatalf("path step %d→%d is not an edge", path[i-1], path[i])
		}
	}
	if math.Abs(total-length) > 1e-9 {
		t.Fatalf("path edge sum %v != reported length %v", total, length)
	}
}

func TestShortestPathTrivial(t *testing.T) {
	g := NewGraph(2)
	a := g.AddNode(geom.Point{X: 0, Y: 0})
	r := NewRouter(g)
	path, length, ok := r.ShortestPath(a, a)
	if !ok || length != 0 || len(path) != 1 {
		t.Fatalf("self path = %v,%v,%v", path, length, ok)
	}
	if _, _, ok := r.ShortestPath(a, 5); ok {
		t.Error("path to invalid node reported ok")
	}
}

func TestGenerateConnectivityAndBounds(t *testing.T) {
	for _, opts := range []GenOptions{
		{Seed: 1},
		{Width: 8, Height: 8, Seed: 2},
		{Width: 16, Height: 4, Jitter: 0.9, ExtraStreets: 0.1, Seed: 3},
		{Width: 3, Height: 40, ExtraStreets: 1.0, Seed: 4},
	} {
		g, err := Generate(opts)
		if err != nil {
			t.Fatalf("%+v: %v", opts, err)
		}
		if !g.Connected() {
			t.Fatalf("%+v: generated city disconnected", opts)
		}
		unit := geom.Rect{Lo: geom.Point{X: 0, Y: 0}, Hi: geom.Point{X: 1, Y: 1}}
		for i := 0; i < g.NumNodes(); i++ {
			if p := g.Node(NodeID(i)); !unit.Contains(p) {
				t.Fatalf("%+v: node %d at %v outside unit square", opts, i, p)
			}
		}
		// Tree edges = nodes-1; extras on top.
		minEdges := g.NumNodes() - 1
		if g.NumEdges() < minEdges {
			t.Fatalf("%+v: %d edges < spanning tree %d", opts, g.NumEdges(), minEdges)
		}
	}
}

func TestGenerateDeterministic(t *testing.T) {
	a, err := Generate(GenOptions{Width: 10, Height: 10, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	b, err := Generate(GenOptions{Width: 10, Height: 10, Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	if a.NumNodes() != b.NumNodes() || a.NumEdges() != b.NumEdges() {
		t.Fatal("same seed produced different cities")
	}
	for i := 0; i < a.NumNodes(); i++ {
		if a.Node(NodeID(i)) != b.Node(NodeID(i)) {
			t.Fatal("same seed produced different node positions")
		}
	}
	c, err := Generate(GenOptions{Width: 10, Height: 10, Seed: 43})
	if err != nil {
		t.Fatal(err)
	}
	same := true
	for i := 0; i < a.NumNodes(); i++ {
		if a.Node(NodeID(i)) != c.Node(NodeID(i)) {
			same = false
			break
		}
	}
	if same {
		t.Error("different seeds produced identical cities")
	}
}

func TestGenerateRejectsBadOptions(t *testing.T) {
	for name, opts := range map[string]GenOptions{
		"tiny":       {Width: 1, Height: 5},
		"bad jitter": {Width: 4, Height: 4, Jitter: 1.5},
		"bad extras": {Width: 4, Height: 4, ExtraStreets: 2},
	} {
		if _, err := Generate(opts); err == nil {
			t.Errorf("%s: accepted", name)
		}
	}
}

func TestRouterOnGeneratedCity(t *testing.T) {
	g, err := Generate(GenOptions{Width: 12, Height: 12, Seed: 7})
	if err != nil {
		t.Fatal(err)
	}
	r := NewRouter(g)
	rng := rand.New(rand.NewSource(9))
	for i := 0; i < 200; i++ {
		src := NodeID(rng.Intn(g.NumNodes()))
		dst := NodeID(rng.Intn(g.NumNodes()))
		path, length, ok := r.ShortestPath(src, dst)
		if !ok {
			t.Fatalf("connected city has unreachable pair %d→%d", src, dst)
		}
		validatePath(t, g, path, src, dst, length)
		// Shortest path length is at least the straight-line distance.
		if length < geom.Dist(g.Node(src), g.Node(dst))-1e-9 {
			t.Fatalf("path shorter than Euclidean distance")
		}
	}
}
