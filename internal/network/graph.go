// Package network provides the road-network substrate for the workload
// generator. The paper's evaluation (Section 6) uses the spatiotemporal
// generator of Brinkhoff [B02] on the road map of Oldenburg; that map is
// not redistributable, so this package synthesizes a comparable city
// network (DESIGN.md §5 documents the substitution): a jittered lattice of
// intersections connected by a random spanning tree plus a tunable fraction
// of extra streets, yielding an irregular but connected planar-ish graph in
// the unit square. Shortest paths (Dijkstra) give objects the piecewise
// linear, network-constrained trajectories that the monitoring algorithms
// observe through the update stream.
package network

import (
	"fmt"
	"math"

	"cpm/internal/geom"
)

// NodeID indexes a network node.
type NodeID int32

// Edge is a directed half-edge stored in a node's adjacency list.
type Edge struct {
	To     NodeID
	Length float64
}

// Graph is an undirected road network embedded in the unit square.
type Graph struct {
	nodes []geom.Point
	adj   [][]Edge
	edges int // undirected edge count
}

// NewGraph creates an empty graph with capacity hints.
func NewGraph(nodeHint int) *Graph {
	return &Graph{
		nodes: make([]geom.Point, 0, nodeHint),
		adj:   make([][]Edge, 0, nodeHint),
	}
}

// AddNode appends a node and returns its id.
func (g *Graph) AddNode(p geom.Point) NodeID {
	g.nodes = append(g.nodes, p)
	g.adj = append(g.adj, nil)
	return NodeID(len(g.nodes) - 1)
}

// AddEdge connects a and b bidirectionally with Euclidean length.
// Self-loops and out-of-range ids are rejected.
func (g *Graph) AddEdge(a, b NodeID) error {
	if a == b {
		return fmt.Errorf("network: self-loop on node %d", a)
	}
	if !g.valid(a) || !g.valid(b) {
		return fmt.Errorf("network: edge (%d,%d) out of range", a, b)
	}
	for _, e := range g.adj[a] {
		if e.To == b {
			return nil // already connected; idempotent
		}
	}
	length := geom.Dist(g.nodes[a], g.nodes[b])
	g.adj[a] = append(g.adj[a], Edge{To: b, Length: length})
	g.adj[b] = append(g.adj[b], Edge{To: a, Length: length})
	g.edges++
	return nil
}

func (g *Graph) valid(n NodeID) bool { return n >= 0 && int(n) < len(g.nodes) }

// NumNodes returns the node count.
func (g *Graph) NumNodes() int { return len(g.nodes) }

// NumEdges returns the undirected edge count.
func (g *Graph) NumEdges() int { return g.edges }

// Node returns the location of node n.
func (g *Graph) Node(n NodeID) geom.Point { return g.nodes[n] }

// Neighbors returns the adjacency list of n. Callers must not modify it.
func (g *Graph) Neighbors(n NodeID) []Edge { return g.adj[n] }

// Connected reports whether the graph is a single connected component.
func (g *Graph) Connected() bool {
	if len(g.nodes) == 0 {
		return true
	}
	seen := make([]bool, len(g.nodes))
	stack := []NodeID{0}
	seen[0] = true
	count := 1
	for len(stack) > 0 {
		n := stack[len(stack)-1]
		stack = stack[:len(stack)-1]
		for _, e := range g.adj[n] {
			if !seen[e.To] {
				seen[e.To] = true
				count++
				stack = append(stack, e.To)
			}
		}
	}
	return count == len(g.nodes)
}

// TotalLength returns the summed length of all edges — the "road kilometers"
// of the synthetic city, useful for sanity checks on generated networks.
func (g *Graph) TotalLength() float64 {
	total := 0.0
	for n := range g.adj {
		for _, e := range g.adj[n] {
			total += e.Length
		}
	}
	return total / 2
}

// NearestNode returns the node closest to p (linear scan; used only during
// setup, never on the monitoring fast path).
func (g *Graph) NearestNode(p geom.Point) NodeID {
	best := NodeID(-1)
	bestD := math.Inf(1)
	for i, np := range g.nodes {
		if d := geom.DistSq(np, p); d < bestD {
			bestD = d
			best = NodeID(i)
		}
	}
	return best
}
