package network

import (
	"math"

	"cpm/internal/geom"
	"cpm/internal/qheap"
)

// Router computes shortest paths over a Graph with A*: since edge lengths
// are Euclidean distances between node positions, the straight-line
// distance to the destination is an admissible and consistent heuristic,
// so A* returns exact shortest paths while expanding a fraction of the
// nodes plain Dijkstra would (the workload generator issues one path query
// per spawned object, making this the simulation's hottest loop).
//
// A Router owns reusable scratch buffers; one Router per goroutine
// amortizes allocations across the millions of path queries of a long
// simulation.
type Router struct {
	g    *Graph
	dist []float64
	prev []NodeID
	seen []bool
	heap *qheap.Heap
}

// NewRouter creates a router for g.
func NewRouter(g *Graph) *Router {
	n := g.NumNodes()
	return &Router{
		g:    g,
		dist: make([]float64, n),
		prev: make([]NodeID, n),
		seen: make([]bool, n),
		heap: qheap.New(n),
	}
}

// ShortestPath returns the node sequence of a shortest path from src to dst
// (inclusive of both) and its length. ok is false when dst is unreachable.
// The returned slice is owned by the caller.
func (r *Router) ShortestPath(src, dst NodeID) (path []NodeID, length float64, ok bool) {
	if !r.g.valid(src) || !r.g.valid(dst) {
		return nil, 0, false
	}
	if src == dst {
		return []NodeID{src}, 0, true
	}
	for i := range r.dist {
		r.dist[i] = math.Inf(1)
		r.seen[i] = false
		r.prev[i] = -1
	}
	r.heap.Reset()
	goal := r.g.nodes[dst]
	r.dist[src] = 0
	r.heap.Push(geom.Dist(r.g.nodes[src], goal), uint64(src))
	for {
		top, okPop := r.heap.Pop()
		if !okPop {
			return nil, 0, false // frontier exhausted: unreachable
		}
		n := NodeID(top.Payload)
		if r.seen[n] {
			continue // stale heap entry
		}
		r.seen[n] = true
		if n == dst {
			break
		}
		d := r.dist[n]
		for _, e := range r.g.Neighbors(n) {
			if nd := d + e.Length; nd < r.dist[e.To] {
				r.dist[e.To] = nd
				r.prev[e.To] = n
				// Heap key = g + h: the Euclidean remainder keeps the
				// search aimed at the destination.
				r.heap.Push(nd+geom.Dist(r.g.nodes[e.To], goal), uint64(e.To))
			}
		}
	}
	// Reconstruct.
	for n := dst; n != -1; n = r.prev[n] {
		path = append(path, n)
	}
	reverse(path)
	return path, r.dist[dst], true
}

func reverse(p []NodeID) {
	for i, j := 0, len(p)-1; i < j; i, j = i+1, j-1 {
		p[i], p[j] = p[j], p[i]
	}
}
