package bench

import (
	"encoding/json"
	"os"
	"runtime"
)

// MethodResult is the machine-readable outcome of running one method over
// the default-setting workload: wall-clock in nanoseconds, the paper's work
// counters, and allocation counts, for BENCH_*.json trajectory tracking
// across commits.
type MethodResult struct {
	Method       string `json:"method"`
	TotalNs      int64  `json:"total_ns"`
	NsPerCycle   int64  `json:"ns_per_cycle"`
	RegisterNs   int64  `json:"register_ns"`
	CellAccesses int64  `json:"cell_accesses"`
	ObjectsProc  int64  `json:"objects_processed"`
	HeapOps      int64  `json:"heap_ops"`
	Recomputes   int64  `json:"recomputations"`
	FullSearches int64  `json:"full_searches"`
	ShortCircs   int64  `json:"short_circuits"`
	Mallocs      uint64 `json:"mallocs"`
	AllocBytes   uint64 `json:"alloc_bytes"`
	MemoryUnits  int64  `json:"memory_units"`
	// MemHeapBytes is the measured Go live-heap growth of building and
	// warming one monitor — set by the mem-footprint rows only, which pin
	// the shared-grid memory story (footprint flat across shard counts).
	MemHeapBytes int64 `json:"mem_heap_bytes,omitempty"`
	Queries      int   `json:"queries"`
	Timestamps   int   `json:"timestamps"`

	// Latency-distribution columns, set by open-loop load runs
	// (cmd/cpmload): per-op end-to-end latency percentiles and the number
	// of completed operations. Zero (and omitted) for closed-loop
	// benchmark rows, where per-op latency is not measured; the comparison
	// gate skips them when absent from both reports.
	Ops    int64 `json:"ops,omitempty"`
	P50Ns  int64 `json:"p50_ns,omitempty"`
	P99Ns  int64 `json:"p99_ns,omitempty"`
	P999Ns int64 `json:"p999_ns,omitempty"`
}

// Report is the top-level structure of cpmbench's -json output.
type Report struct {
	Scale      float64        `json:"scale"`
	Timestamps int            `json:"timestamps"`
	GridSize   int            `json:"grid_size"`
	Seed       int64          `json:"seed"`
	Shards     int            `json:"shards"`
	GOMAXPROCS int            `json:"gomaxprocs"`
	Methods    []MethodResult `json:"methods"`
}

// RunReport executes every method over the default-setting workload
// (Table 6.1 at the chosen scale) and collects machine-readable results.
// Allocation counters are process-wide deltas around each method's
// registration + monitoring loop (workload generation excluded), so run
// it in a quiet process (cmd/cpmbench does).
func RunReport(o Options, methods []Method) (Report, error) {
	o.defaults()
	cfg := baseConfig(o)
	cfg.MeasureAllocs = true
	rep := Report{
		Scale:      o.Scale,
		Timestamps: o.Timestamps,
		GridSize:   o.GridSize,
		Seed:       o.Seed,
		Shards:     ResolveShards(cfg.Shards),
		GOMAXPROCS: runtime.GOMAXPROCS(0),
	}
	for _, method := range methods {
		meas, err := RunMethod(method, cfg)
		if err != nil {
			return Report{}, err
		}
		rep.Methods = append(rep.Methods, MethodResult{
			Method:       method.String(),
			TotalNs:      meas.Elapsed.Nanoseconds(),
			NsPerCycle:   meas.PerCycle().Nanoseconds(),
			RegisterNs:   meas.Registered.Nanoseconds(),
			CellAccesses: meas.Stats.CellAccesses,
			ObjectsProc:  meas.Stats.ObjectsProcessed,
			HeapOps:      meas.Stats.HeapOps,
			Recomputes:   meas.Stats.Recomputations,
			FullSearches: meas.Stats.FullSearches,
			ShortCircs:   meas.Stats.ShortCircuits,
			Mallocs:      meas.Mallocs,
			AllocBytes:   meas.AllocBytes,
			MemoryUnits:  meas.Memory,
			Queries:      meas.Queries,
			Timestamps:   meas.Timestamps,
		})
	}
	// The serving layer's hot path rides along as a pseudo-method, so the
	// trajectory gate watches the wire encoder like any monitor: its diff
	// stream is the one a CPM run over this very workload produces.
	wireRes, err := wireEncodeResult(cfg)
	if err != nil {
		return Report{}, err
	}
	rep.Methods = append(rep.Methods, wireRes)
	// The online-rebalancing rows: the hotspot-drift workload run with the
	// auto-rebalancing policy on ("rebalance") and on a frozen grid
	// ("rebalance-frozen"), so every report records the cycle-time recovery
	// a resize buys and the gate tracks both trajectories.
	rebRes, err := rebalanceResults(o.Seed)
	if err != nil {
		return Report{}, err
	}
	rep.Methods = append(rep.Methods, rebRes...)
	// The distributed serving path: a loopback coordinator over two
	// workers ("cluster"), so coordinator tick latency has a tracked
	// trajectory next to the in-process methods.
	cluRes, err := clusterResult(cfg)
	if err != nil {
		return Report{}, err
	}
	rep.Methods = append(rep.Methods, cluRes)
	// The mem-footprint rows: the same workload at 1 and 8 shards, in
	// Section 4.1 units and measured heap bytes — flat across shard counts
	// now that the grid is shared, and gated so it stays that way.
	memRes, err := memoryResults(cfg)
	if err != nil {
		return Report{}, err
	}
	rep.Methods = append(rep.Methods, memRes...)
	// The update-heavy/query-light row: the sharded monitor with an
	// intra-shard scan pool on the scan-dominated preset, so the
	// cell-range parallelism keeps a tracked trajectory.
	uhRes, err := updateHeavyResult(o)
	if err != nil {
		return Report{}, err
	}
	rep.Methods = append(rep.Methods, uhRes)
	return rep, nil
}

// updateHeavyResult runs the updateheavy preset (see runUpdateHeavy) with
// the sharded monitor and a 4-way intra-shard scan pool, as one JSON row.
func updateHeavyResult(o Options) (MethodResult, error) {
	cfg := updateHeavyConfig(o)
	cfg.ScanWorkers = 4
	cfg.MeasureAllocs = true
	meas, err := RunMethod(CPMSharded, cfg)
	if err != nil {
		return MethodResult{}, err
	}
	return MethodResult{
		Method:       "updateheavy",
		TotalNs:      meas.Elapsed.Nanoseconds(),
		NsPerCycle:   meas.PerCycle().Nanoseconds(),
		RegisterNs:   meas.Registered.Nanoseconds(),
		CellAccesses: meas.Stats.CellAccesses,
		ObjectsProc:  meas.Stats.ObjectsProcessed,
		HeapOps:      meas.Stats.HeapOps,
		Recomputes:   meas.Stats.Recomputations,
		FullSearches: meas.Stats.FullSearches,
		ShortCircs:   meas.Stats.ShortCircuits,
		Mallocs:      meas.Mallocs,
		AllocBytes:   meas.AllocBytes,
		MemoryUnits:  meas.Memory,
		Queries:      meas.Queries,
		Timestamps:   meas.Timestamps,
	}, nil
}

// WriteReport runs RunReport and writes the result as indented JSON.
func WriteReport(path string, o Options, methods []Method) error {
	rep, err := RunReport(o, methods)
	if err != nil {
		return err
	}
	data, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(data, '\n'), 0o644)
}
