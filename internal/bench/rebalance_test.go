package bench

import "testing"

// TestRebalanceBeatsFrozen pins the point of the drift rows on the
// deterministic work counters (wall-clock assertions would flake on shared
// CI runners): over the identical hotspot-drift stream, the
// auto-rebalancing monitor must actually resize, end on a finer grid, and
// do substantially less post-drift result-maintenance work — fewer objects
// processed through cell scans — than the frozen grid whose cells the
// hotspot saturated.
func TestRebalanceBeatsFrozen(t *testing.T) {
	p := driftParams{N: 1200, Queries: 12, K: 8, GridSize: 32, Cycles: 20, Seed: 7}
	frozen, auto, err := runDriftPair(p)
	if err != nil {
		t.Fatal(err)
	}
	if auto.Rebalances == 0 {
		t.Fatal("auto monitor never rebalanced on the drift workload")
	}
	if frozen.Rebalances != 0 || frozen.GridSize != p.GridSize {
		t.Fatalf("frozen monitor resized: %d rebalances, grid %d", frozen.Rebalances, frozen.GridSize)
	}
	if auto.GridSize <= p.GridSize {
		t.Fatalf("auto monitor grid %d after hotspot collapse, want > %d", auto.GridSize, p.GridSize)
	}
	fWork, aWork := frozen.HalfStats.ObjectsProcessed, auto.HalfStats.ObjectsProcessed
	if aWork*2 >= fWork {
		t.Fatalf("post-drift objects processed: auto %d, frozen %d — want at least a 2x recovery",
			aWork, fWork)
	}
	t.Logf("post-drift work: frozen %d objects processed, auto %d (grid %d -> %d, %d resizes); post-drift cycle time frozen %v, auto %v",
		fWork, aWork, p.GridSize, auto.GridSize, auto.Rebalances,
		frozen.SecondHalf/10, auto.SecondHalf/10)
}

// TestRebalanceRowsInReport checks the report plumbing: both drift rows
// ride in every JSON report, so the CI trajectory gate watches them.
func TestRebalanceRowsInReport(t *testing.T) {
	rows, err := rebalanceResults(3)
	if err != nil {
		t.Fatal(err)
	}
	if len(rows) != 2 || rows[0].Method != RebalanceMethod || rows[1].Method != RebalanceFrozenMethod {
		t.Fatalf("rebalance rows = %+v", rows)
	}
	for _, r := range rows {
		if r.TotalNs <= 0 || r.NsPerCycle <= 0 || r.Queries != smokeDriftParams.Queries {
			t.Fatalf("degenerate row %+v", r)
		}
	}
}
