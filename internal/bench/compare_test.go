package bench

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func reportWith(totals map[string]int64) Report {
	r := Report{Scale: 0.01, Timestamps: 5, GridSize: 128, Shards: 2}
	for method, total := range totals {
		r.Methods = append(r.Methods, MethodResult{
			Method:     method,
			TotalNs:    total,
			NsPerCycle: total / 5,
			RegisterNs: total / 10,
		})
	}
	return r
}

func TestCompareNoRegression(t *testing.T) {
	base := reportWith(map[string]int64{"CPM": 10_000_000, "YPK-CNN": 40_000_000})
	cur := reportWith(map[string]int64{"CPM": 11_000_000, "YPK-CNN": 38_000_000})
	c := Compare(base, cur, 0.25)
	if c.Regressed() {
		t.Fatalf("+10%% flagged as regression: %+v", c.Deltas)
	}
	if len(c.Deltas) != 10 {
		t.Fatalf("deltas = %d, want 2 methods × 5 metrics", len(c.Deltas))
	}
}

func reportWithAllocs(mallocs, bytes uint64) Report {
	r := reportWith(map[string]int64{"CPM": 10_000_000})
	r.Methods[0].Mallocs = mallocs
	r.Methods[0].AllocBytes = bytes
	return r
}

// TestCompareDetectsAllocRegression: the gate watches allocation counters
// the same way it watches time, so an allocation-heavy change fails CI even
// when wall time is inside the threshold.
func TestCompareDetectsAllocRegression(t *testing.T) {
	base := reportWithAllocs(100_000, 10<<20)
	cur := reportWithAllocs(150_000, 10<<20) // +50% mallocs
	c := Compare(base, cur, 0.25)
	if !c.Regressed() {
		t.Fatal("+50% mallocs not detected")
	}
	for _, d := range c.Deltas {
		if d.Regressed && d.Metric != "mallocs" {
			t.Fatalf("wrong metric flagged: %s", d.Metric)
		}
	}
	if !strings.Contains(c.Markdown(), "mallocs") {
		t.Fatalf("markdown missing alloc column:\n%s", c.Markdown())
	}
}

func TestCompareAllocNoiseFloor(t *testing.T) {
	// A jump from 500 to 5000 mallocs is 10× but under the floor: counts
	// this small are warm-up effects, not a hot-path regression.
	base := reportWithAllocs(500, 64<<10)
	cur := reportWithAllocs(5_000, 128<<10)
	if c := Compare(base, cur, 0.25); c.Regressed() {
		t.Fatalf("sub-floor alloc reading gated: %+v", c.Deltas)
	}
}

// TestCompareDetectsInjectedRegression is the acceptance check: an
// injected >25% slowdown in one method column must fail the gate.
func TestCompareDetectsInjectedRegression(t *testing.T) {
	base := reportWith(map[string]int64{"CPM": 10_000_000, "YPK-CNN": 40_000_000})
	cur := reportWith(map[string]int64{"CPM": 13_000_000, "YPK-CNN": 40_000_000}) // +30%
	c := Compare(base, cur, 0.25)
	if !c.Regressed() {
		t.Fatal("+30% regression not detected")
	}
	var flagged []string
	for _, d := range c.Deltas {
		if d.Regressed {
			flagged = append(flagged, d.Method+"/"+d.Metric)
		}
	}
	for _, f := range flagged {
		if !strings.HasPrefix(f, "CPM/") {
			t.Fatalf("wrong method flagged: %v", flagged)
		}
	}
	if len(flagged) == 0 {
		t.Fatal("no delta flagged")
	}
	md := c.Markdown()
	if !strings.Contains(md, "❌ regression") || !strings.Contains(md, "**Regression detected.**") {
		t.Fatalf("markdown missing regression marks:\n%s", md)
	}
}

func TestCompareNoiseFloor(t *testing.T) {
	// 50µs -> 500µs is 10× but under the floor: benchmarks this small are
	// all noise on shared runners.
	base := reportWith(map[string]int64{"CPM": 50_000})
	cur := reportWith(map[string]int64{"CPM": 500_000})
	if c := Compare(base, cur, 0.25); c.Regressed() {
		t.Fatalf("sub-floor reading gated: %+v", c.Deltas)
	}
}

func TestCompareZeroBaseline(t *testing.T) {
	base := reportWith(map[string]int64{"CPM": 0})
	cur := reportWith(map[string]int64{"CPM": 5_000_000})
	c := Compare(base, cur, 0.25)
	if c.Regressed() {
		t.Fatalf("zero baseline gated: %+v", c.Deltas)
	}
	if !strings.Contains(c.Markdown(), "| n/a |") {
		t.Fatalf("zero-baseline delta not rendered as n/a:\n%s", c.Markdown())
	}
}

func TestCompareMissingMethods(t *testing.T) {
	base := reportWith(map[string]int64{"CPM": 10_000_000, "SEA-CNN": 20_000_000})
	cur := reportWith(map[string]int64{"CPM": 10_000_000, "CPM-shard": 5_000_000})
	c := Compare(base, cur, 0.25)
	if c.Regressed() {
		t.Fatalf("missing methods gated: %+v", c.Deltas)
	}
	if len(c.Missing) != 2 {
		t.Fatalf("Missing = %v, want the new and the retired method", c.Missing)
	}
}

func TestReadReportRoundTrip(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "BENCH_test.json")
	rep := reportWith(map[string]int64{"CPM": 1_000_000})
	data := `{"scale":0.01,"timestamps":5,"grid_size":128,"seed":0,"shards":2,"gomaxprocs":0,` +
		`"methods":[{"method":"CPM","total_ns":1000000,"ns_per_cycle":200000,"register_ns":100000}]}`
	if err := os.WriteFile(path, []byte(data), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := ReadReport(path)
	if err != nil {
		t.Fatal(err)
	}
	if got.Methods[0] != rep.Methods[0] || got.GridSize != 128 {
		t.Fatalf("round trip = %+v", got)
	}
	if _, err := ReadReport(filepath.Join(dir, "missing.json")); err == nil {
		t.Fatal("missing file read succeeded")
	}
}

func reportWithLatency(p99 int64) Report {
	r := Report{Scale: 0.01}
	r.Methods = append(r.Methods, MethodResult{
		Method: "load-ingest",
		Ops:    10_000,
		P50Ns:  p99 / 4,
		P99Ns:  p99,
		P999Ns: p99 * 2,
	})
	return r
}

// TestCompareLatencyGate: open-loop load rows carry latency percentiles,
// and the gate treats a p99 blow-up like any other time regression.
func TestCompareLatencyGate(t *testing.T) {
	base := reportWithLatency(2_000_000)
	cur := reportWithLatency(4_000_000) // p99 doubled
	c := Compare(base, cur, 0.25)
	if !c.Regressed() {
		t.Fatal("doubled p99 not detected")
	}
	var flagged []string
	for _, d := range c.Deltas {
		if d.Regressed {
			flagged = append(flagged, d.Metric)
		}
	}
	for _, m := range flagged {
		if m != "p50_ns" && m != "p99_ns" && m != "p999_ns" {
			t.Fatalf("non-latency metric flagged: %s", m)
		}
	}
	if len(flagged) == 0 {
		t.Fatal("no latency metric flagged")
	}
	if !strings.Contains(c.Markdown(), "p99_ns") {
		t.Fatalf("markdown missing latency column:\n%s", c.Markdown())
	}
}

// TestCompareLatencySkippedWhenAbsent: closed-loop rows have no latency
// columns; comparing two such reports must not produce latency deltas (or
// spurious regressions against a zero baseline).
func TestCompareLatencySkippedWhenAbsent(t *testing.T) {
	base := reportWith(map[string]int64{"CPM": 10_000_000})
	cur := reportWith(map[string]int64{"CPM": 11_000_000})
	c := Compare(base, cur, 0.25)
	for _, d := range c.Deltas {
		switch d.Metric {
		case "p50_ns", "p99_ns", "p999_ns":
			t.Fatalf("latency delta emitted for closed-loop row: %+v", d)
		}
	}
	// A latency column appearing on one side only still shows up (ratio
	// n/a) rather than being silently dropped.
	cur.Methods[0].P99Ns = 5_000_000
	c = Compare(base, cur, 0.25)
	found := false
	for _, d := range c.Deltas {
		if d.Metric == "p99_ns" {
			found = true
			if d.Regressed {
				t.Fatalf("new latency column gated against zero baseline: %+v", d)
			}
		}
	}
	if !found {
		t.Fatal("newly recorded latency column missing from deltas")
	}
}
