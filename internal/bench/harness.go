// Package bench is the experiment harness that regenerates the paper's
// evaluation (Section 6): it runs CPM, YPK-CNN and SEA-CNN over identical
// generated workloads, measures per-cycle CPU time, cell accesses and
// memory, sweeps the parameters of Table 6.1, and renders one table per
// figure. cmd/cpmbench is the command-line front end; bench_test.go at the
// module root exposes the same experiments as testing.B benchmarks.
package bench

import (
	"fmt"
	"runtime"
	"time"

	"cpm/internal/baseline"
	"cpm/internal/core"
	"cpm/internal/generator"
	"cpm/internal/model"
	"cpm/internal/network"
	"cpm/internal/shard"
)

// Method selects a monitoring algorithm (or an ablated CPM variant).
type Method uint8

// The monitoring methods under evaluation.
const (
	CPM Method = iota
	YPK
	SEA
	// CPMPerUpdate is ablation X2: Section 3.2 per-update handling
	// instead of batched cycles.
	CPMPerUpdate
	// CPMDropBookkeeping is ablation X1: the memory-pressure fallback
	// that recomputes from scratch instead of replaying the visit list.
	CPMDropBookkeeping
	// CPMSharded is the parallel monitor of internal/shard: queries
	// hash-partitioned across Config.Shards worker shards, results exact.
	CPMSharded
)

// String returns the method's display name.
func (m Method) String() string {
	switch m {
	case CPM:
		return "CPM"
	case YPK:
		return "YPK-CNN"
	case SEA:
		return "SEA-CNN"
	case CPMPerUpdate:
		return "CPM-perupd"
	case CPMDropBookkeeping:
		return "CPM-nobook"
	case CPMSharded:
		return "CPM-shard"
	default:
		return fmt.Sprintf("method(%d)", uint8(m))
	}
}

// AllMethods is the comparison set of the paper's figures, extended with
// the sharded monitor so every table reports the parallel speedup next to
// CPM and the baselines.
var AllMethods = []Method{CPM, CPMSharded, YPK, SEA}

// New constructs a fresh monitor of the method over a unit-square grid,
// with CPMSharded at its default worker count (all usable cores).
func (m Method) New(gridSize int) model.Monitor { return m.NewMonitor(gridSize, 0) }

// NewMonitor constructs a fresh monitor of the method over a unit-square
// grid. shards applies to CPMSharded only (0 = all usable cores).
func (m Method) NewMonitor(gridSize, shards int) model.Monitor {
	switch m {
	case CPM:
		return core.NewUnitEngine(gridSize, core.Options{})
	case YPK:
		return baseline.NewUnitYPK(gridSize)
	case SEA:
		return baseline.NewUnitSEA(gridSize)
	case CPMPerUpdate:
		return core.NewUnitEngine(gridSize, core.Options{PerUpdate: true})
	case CPMDropBookkeeping:
		return core.NewUnitEngine(gridSize, core.Options{DropBookkeeping: true})
	case CPMSharded:
		return shard.NewUnit(ResolveShards(shards), gridSize, core.Options{})
	default:
		panic(fmt.Sprintf("bench: unknown method %d", m))
	}
}

// newMonitorFor constructs the method's monitor for cfg, threading the
// intra-shard scan-worker count through to the CPM variants (the baselines
// have no scan phase to parallelize).
func newMonitorFor(method Method, cfg Config) model.Monitor {
	if cfg.ScanWorkers > 1 {
		switch method {
		case CPM:
			return core.NewUnitEngine(cfg.GridSize, core.Options{ScanWorkers: cfg.ScanWorkers})
		case CPMSharded:
			return shard.NewUnit(ResolveShards(cfg.Shards), cfg.GridSize,
				core.Options{ScanWorkers: cfg.ScanWorkers})
		}
	}
	return method.NewMonitor(cfg.GridSize, cfg.Shards)
}

// ResolveShards applies the "0 means all usable cores" default.
func ResolveShards(shards int) int {
	if shards > 0 {
		return shards
	}
	return runtime.GOMAXPROCS(0)
}

// Config describes one simulation run.
type Config struct {
	GridSize   int
	K          int
	Timestamps int
	// Shards is the CPMSharded worker count (0 = all usable cores); the
	// other methods ignore it.
	Shards int
	// ScanWorkers is the intra-shard influence-scan worker count for the
	// CPM and CPMSharded methods (values < 2 keep the serial scan); the
	// baselines ignore it.
	ScanWorkers int
	// MeasureAllocs fills Measurement.Mallocs/AllocBytes. It pre-generates
	// the whole update stream (so the allocation window excludes the
	// generator) at the price of holding every cycle's batch in memory at
	// once; leave it off for table sweeps, which stream one batch at a
	// time and don't report allocations.
	MeasureAllocs bool
	Net           network.GenOptions
	Gen           generator.Params
}

// Validate reports whether the configuration is runnable.
func (c Config) Validate() error {
	if c.GridSize <= 0 {
		return fmt.Errorf("bench: grid size %d", c.GridSize)
	}
	if c.K <= 0 {
		return fmt.Errorf("bench: k %d", c.K)
	}
	if c.Timestamps <= 0 {
		return fmt.Errorf("bench: timestamps %d", c.Timestamps)
	}
	return c.Gen.Validate()
}

// Measurement is the outcome of running one method over one config.
type Measurement struct {
	Method     Method
	Elapsed    time.Duration // total ProcessBatch time across the run
	Registered time.Duration // initial query evaluation time (not in Elapsed)
	Stats      model.Stats   // work-counter deltas across the cycles
	Memory     int64         // end-of-run footprint in Section 4.1 units
	Mallocs    uint64        // heap allocations by registration + monitoring
	AllocBytes uint64        // bytes allocated by registration + monitoring

	Queries, Timestamps int
}

// PerCycle returns the mean processing time per cycle.
func (m Measurement) PerCycle() time.Duration {
	if m.Timestamps == 0 {
		return 0
	}
	return m.Elapsed / time.Duration(m.Timestamps)
}

// CellsPerQueryPerCycle is Figure 6.3b's metric.
func (m Measurement) CellsPerQueryPerCycle() float64 {
	denom := float64(m.Queries * m.Timestamps)
	if denom == 0 {
		return 0
	}
	return float64(m.Stats.CellAccesses) / denom
}

// footprinter is implemented by all three monitors.
type footprinter interface {
	MemoryFootprint() int64
}

// RunMethod executes one method over the configured workload. The workload
// is regenerated deterministically from its seeds, so every method sees an
// identical stream. Initial query registration is timed separately: the
// paper's figures measure the monitoring cost.
func RunMethod(method Method, cfg Config) (Measurement, error) {
	if err := cfg.Validate(); err != nil {
		return Measurement{}, err
	}
	net, err := network.Generate(cfg.Net)
	if err != nil {
		return Measurement{}, err
	}
	w, err := generator.New(net, cfg.Gen)
	if err != nil {
		return Measurement{}, err
	}
	mon := newMonitorFor(method, cfg)
	// A sharded monitor owns persistent worker goroutines; release them
	// when the measurement is done so table sweeps don't accumulate idle
	// workers across dozens of discarded monitors.
	if c, ok := mon.(interface{ Close() }); ok {
		defer c.Close()
	}
	mon.Bootstrap(w.InitialObjects())

	// With MeasureAllocs the whole update stream is generated up front, so
	// the allocation window covers registration and monitoring only:
	// workload generation allocates an identical (and much larger)
	// constant for every method, which would drown the per-method signal
	// the JSON trajectory report tracks.
	queries := w.InitialQueries()
	var batches []model.Batch
	if cfg.MeasureAllocs {
		batches = make([]model.Batch, cfg.Timestamps)
		for ts := range batches {
			batches[ts] = w.Advance()
		}
	}

	// Mallocs/TotalAlloc are monotonic, so no GC barrier is needed.
	var msBefore runtime.MemStats
	if cfg.MeasureAllocs {
		runtime.ReadMemStats(&msBefore)
	}

	regStart := time.Now()
	for i, q := range queries {
		if err := mon.RegisterQuery(model.QueryID(i), q, cfg.K); err != nil {
			return Measurement{}, fmt.Errorf("bench: %s register: %w", method, err)
		}
	}
	registered := time.Since(regStart)

	statsBase := mon.Stats()
	var elapsed time.Duration
	for ts := 0; ts < cfg.Timestamps; ts++ {
		var b model.Batch
		if cfg.MeasureAllocs {
			b = batches[ts]
		} else {
			b = w.Advance()
		}
		start := time.Now()
		mon.ProcessBatch(b)
		elapsed += time.Since(start)
	}

	meas := Measurement{
		Method:     method,
		Elapsed:    elapsed,
		Registered: registered,
		Stats:      mon.Stats().Sub(statsBase),
		Queries:    len(queries),
		Timestamps: cfg.Timestamps,
	}
	if cfg.MeasureAllocs {
		var msAfter runtime.MemStats
		runtime.ReadMemStats(&msAfter)
		meas.Mallocs = msAfter.Mallocs - msBefore.Mallocs
		meas.AllocBytes = msAfter.TotalAlloc - msBefore.TotalAlloc
	}
	if fp, ok := mon.(footprinter); ok {
		meas.Memory = fp.MemoryFootprint()
	}
	return meas, nil
}

// timeCycles drives a core engine through the workload's remaining
// timestamps, returning the summed ProcessBatch time in milliseconds. Used
// by experiments that install queries the model.Monitor interface cannot
// express (aggregate queries).
func timeCycles(e *core.Engine, w *generator.Workload, timestamps int) float64 {
	var elapsed time.Duration
	for ts := 0; ts < timestamps; ts++ {
		b := w.Advance()
		start := time.Now()
		e.ProcessBatch(b)
		elapsed += time.Since(start)
	}
	return float64(elapsed.Microseconds()) / 1000
}

// RunMethods runs several methods over the same config.
func RunMethods(methods []Method, cfg Config) ([]Measurement, error) {
	out := make([]Measurement, 0, len(methods))
	for _, m := range methods {
		meas, err := RunMethod(m, cfg)
		if err != nil {
			return nil, err
		}
		out = append(out, meas)
	}
	return out, nil
}
