package bench

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"cpm/internal/generator"
	"cpm/internal/network"
)

func tinyOptions() Options {
	return Options{Scale: 0.004, Timestamps: 4, Seed: 3, GridSize: 32}
}

func tinyConfig() Config {
	gen := generator.Defaults(0.004) // N=400, n=20
	gen.Seed = 5
	return Config{
		GridSize:   32,
		K:          4,
		Timestamps: 4,
		Net:        network.GenOptions{Width: 8, Height: 8, Seed: 2},
		Gen:        gen,
	}
}

func TestMethodNamesAndConstruction(t *testing.T) {
	for _, m := range []Method{CPM, YPK, SEA, CPMPerUpdate, CPMDropBookkeeping, CPMSharded} {
		if m.String() == "" || strings.HasPrefix(m.String(), "method(") {
			t.Errorf("method %d has no name", m)
		}
		mon := m.New(16)
		if mon == nil {
			t.Errorf("%s: New returned nil", m)
		}
	}
	if Method(99).String() != "method(99)" {
		t.Error("unknown method name wrong")
	}
	defer func() {
		if recover() == nil {
			t.Error("New of unknown method did not panic")
		}
	}()
	Method(99).New(16)
}

func TestConfigValidate(t *testing.T) {
	good := tinyConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	bad := []func(*Config){
		func(c *Config) { c.GridSize = 0 },
		func(c *Config) { c.K = 0 },
		func(c *Config) { c.Timestamps = 0 },
		func(c *Config) { c.Gen.N = 0 },
	}
	for i, mutate := range bad {
		c := tinyConfig()
		mutate(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d: invalid config accepted", i)
		}
	}
}

func TestRunMethodProducesWork(t *testing.T) {
	for _, m := range AllMethods {
		meas, err := RunMethod(m, tinyConfig())
		if err != nil {
			t.Fatalf("%s: %v", m, err)
		}
		if meas.Stats.CellAccesses < 0 {
			t.Errorf("%s: negative cell accesses", m)
		}
		if meas.Memory <= 0 {
			t.Errorf("%s: no memory footprint", m)
		}
		if meas.Queries != 20 || meas.Timestamps != 4 {
			t.Errorf("%s: run shape wrong: %+v", m, meas)
		}
		if meas.PerCycle() < 0 {
			t.Errorf("%s: negative per-cycle time", m)
		}
		_ = meas.CellsPerQueryPerCycle()
	}
}

func TestRunMethodsDeterministicWorkload(t *testing.T) {
	// Two runs of the same method over the same config must do identical
	// work (time differs; counters must not).
	a, err := RunMethod(CPM, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMethod(CPM, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats != b.Stats {
		t.Errorf("replays diverged: %+v vs %+v", a.Stats, b.Stats)
	}
}

func TestExperimentRegistry(t *testing.T) {
	all := All()
	if len(all) < 14 {
		t.Fatalf("only %d experiments registered", len(all))
	}
	seen := map[string]bool{}
	for _, e := range all {
		if seen[e.ID] {
			t.Errorf("duplicate experiment id %s", e.ID)
		}
		seen[e.ID] = true
		if e.Title == "" || e.Run == nil {
			t.Errorf("experiment %s incomplete", e.ID)
		}
	}
	if _, ok := ByID("fig6.3b"); !ok {
		t.Error("ByID failed for fig6.3b")
	}
	if _, ok := ByID("nope"); ok {
		t.Error("ByID invented an experiment")
	}
}

// TestSmallExperimentsRun exercises representative experiment
// implementations end to end at minuscule scale.
func TestSmallExperimentsRun(t *testing.T) {
	o := tinyOptions()
	for _, id := range []string{"fig6.3b", "fig6.4a", "space", "model", "ann", "ablation.batch"} {
		e, ok := ByID(id)
		if !ok {
			t.Fatalf("experiment %s missing", id)
		}
		tbl, err := e.Run(o)
		if err != nil {
			t.Fatalf("%s: %v", id, err)
		}
		if len(tbl.Rows) == 0 || len(tbl.Header) < 2 {
			t.Fatalf("%s: empty table", id)
		}
		var sb strings.Builder
		if err := tbl.Render(&sb); err != nil {
			t.Fatalf("%s render: %v", id, err)
		}
		if !strings.Contains(sb.String(), tbl.ID) {
			t.Errorf("%s: render missing id", id)
		}
		csv := tbl.CSV()
		if !strings.Contains(csv, ",") || len(strings.Split(csv, "\n")) < len(tbl.Rows)+1 {
			t.Errorf("%s: CSV malformed", id)
		}
	}
}

// TestShardedMatchesCPMCounters pins the harness-level equivalence: the
// sharded method does exactly the work of single-engine CPM on the same
// workload (wall-clock differs; counters must not).
func TestShardedMatchesCPMCounters(t *testing.T) {
	a, err := RunMethod(CPM, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	b, err := RunMethod(CPMSharded, tinyConfig())
	if err != nil {
		t.Fatal(err)
	}
	if a.Stats != b.Stats {
		t.Errorf("sharded work diverged from CPM: %+v vs %+v", b.Stats, a.Stats)
	}
}

func TestWriteReport(t *testing.T) {
	path := filepath.Join(t.TempDir(), "bench.json")
	if err := WriteReport(path, tinyOptions(), []Method{CPM, CPMSharded}); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	var rep Report
	if err := json.Unmarshal(data, &rep); err != nil {
		t.Fatalf("output is not JSON: %v", err)
	}
	// The two requested methods plus the always-on pseudo-method rows: the
	// serving layer's wire-encode row, the two hotspot-drift rebalance
	// rows, the loopback-cluster row, the two mem-footprint rows and the
	// update-heavy scan-parallelism row.
	if len(rep.Methods) != 9 {
		t.Fatalf("report holds %d methods, want 9", len(rep.Methods))
	}
	seen := map[string]bool{}
	for _, mr := range rep.Methods {
		seen[mr.Method] = true
		if strings.HasPrefix(mr.Method, "mem-") {
			// The mem-footprint rows record resident cost, not timings.
			if mr.MemoryUnits <= 0 || mr.MemHeapBytes <= 0 {
				t.Errorf("implausible mem-footprint result: %+v", mr)
			}
			continue
		}
		if mr.Method == WireEncodeMethod {
			// The wire hot path is allocation-free by design; the counter
			// only ever sees stray background allocations, so it must stay
			// far below the gate's noise floor. No work counters here.
			if mr.TotalNs <= 0 || mr.Mallocs >= NoiseFloorMallocs || mr.MemoryUnits <= 0 {
				t.Errorf("implausible wire-encode result: %+v", mr)
			}
			continue
		}
		if mr.Method == ClusterMethod {
			// The cluster row measures coordination cost around remote
			// workers: the engine work counters live in the workers, so
			// only the timing/allocation columns carry signal.
			if mr.TotalNs <= 0 || mr.RegisterNs <= 0 || mr.Mallocs == 0 || mr.MemoryUnits != clusterWorkers {
				t.Errorf("implausible cluster result: %+v", mr)
			}
			continue
		}
		if mr.Method == "" || mr.TotalNs <= 0 || mr.CellAccesses <= 0 || mr.Mallocs == 0 {
			t.Errorf("implausible method result: %+v", mr)
		}
	}
	for _, want := range []string{WireEncodeMethod, RebalanceMethod, RebalanceFrozenMethod,
		ClusterMethod, "mem-1shard", "mem-8shard", "updateheavy"} {
		if !seen[want] {
			t.Errorf("%s row missing: %+v", want, rep.Methods)
		}
	}
	// The shared-grid memory story, as the report records it: the 8-shard
	// monitor's abstract footprint must EQUAL the 1-shard monitor's — the
	// grid term is counted once.
	var mem1, mem8 MethodResult
	for _, mr := range rep.Methods {
		switch mr.Method {
		case "mem-1shard":
			mem1 = mr
		case "mem-8shard":
			mem8 = mr
		}
	}
	if mem1.MemoryUnits != mem8.MemoryUnits {
		t.Errorf("memory units differ across shard counts: 1-shard %d, 8-shard %d",
			mem1.MemoryUnits, mem8.MemoryUnits)
	}
	// Measured heap is not asserted as a ratio here: at test scale the
	// per-shard influence cell arrays dominate, so the column is tracked
	// by the benchdiff trajectory gate instead (mem_heap_bytes).
	if rep.GOMAXPROCS <= 0 || rep.Shards <= 0 {
		t.Errorf("environment fields missing: %+v", rep)
	}
}

func TestTableRendering(t *testing.T) {
	tbl := Table{
		ID:     "t",
		Title:  "demo",
		Note:   "a note",
		Header: []string{"x", "longcolumn"},
		Rows:   [][]string{{"1", "2"}, {"333", "4"}},
	}
	var sb strings.Builder
	if err := tbl.Render(&sb); err != nil {
		t.Fatal(err)
	}
	out := sb.String()
	for _, want := range []string{"t — demo", "a note", "longcolumn", "333"} {
		if !strings.Contains(out, want) {
			t.Errorf("render missing %q:\n%s", want, out)
		}
	}
	if got := tbl.CSV(); got != "x,longcolumn\n1,2\n333,4\n" {
		t.Errorf("CSV = %q", got)
	}
}

func TestFmtFloat(t *testing.T) {
	cases := map[float64]string{
		0:       "0",
		0.001:   "0.0010",
		0.5:     "0.500",
		12.3456: "12.35",
		1234.5:  "1234", // %.0f rounds half to even
	}
	for v, want := range cases {
		if got := fmtFloat(v); got != want {
			t.Errorf("fmtFloat(%v) = %q, want %q", v, got, want)
		}
	}
}
