package bench

import (
	"runtime"
	"time"

	"cpm/internal/core"
	"cpm/internal/generator"
	"cpm/internal/model"
	"cpm/internal/network"
	"cpm/internal/wire"
)

// The wire-encode trajectory row: the serving layer's hot path is encoding
// pushed result-diff events (internal/wire.AppendEvent), so the JSON
// report carries a "wire-encode" pseudo-method next to the monitoring
// methods and the CI benchdiff gate watches its timing and allocation
// columns like any other. The measurement replays the exact diff stream a
// CPM run over the default workload produces, encoded into one reused
// buffer — steady state is 0 allocations, and the gate keeps it that way.

// WireEncodeMethod is the method-column name of the wire-encode row.
const WireEncodeMethod = "wire-encode"

// wireEncodePasses is how many times the collected diff stream is encoded;
// enough to lift the timing well over the gate's noise floor at smoke
// scale.
const wireEncodePasses = 32

// wireEncodeResult collects the diff stream of a CPM run over the
// configured workload and measures encoding it into a reused buffer.
//
// The CPM run here is deliberately separate from the CPM method row's:
// collecting diffs during the measured run would inflate that row's
// mallocs/alloc_bytes and timings (diff collection allocates), silently
// shifting every CPM column the trajectory gate compares across commits.
// An unmeasured replay keeps the method rows pristine at the cost of one
// extra simulation per report.
func wireEncodeResult(cfg Config) (MethodResult, error) {
	if err := cfg.Validate(); err != nil {
		return MethodResult{}, err
	}
	net, err := network.Generate(cfg.Net)
	if err != nil {
		return MethodResult{}, err
	}
	w, err := generator.New(net, cfg.Gen)
	if err != nil {
		return MethodResult{}, err
	}
	e := core.NewUnitEngine(cfg.GridSize, core.Options{})
	e.Bootstrap(w.InitialObjects())
	e.EnableDiffs(true)
	queries := w.InitialQueries()
	for i, q := range queries {
		if err := e.RegisterQuery(model.QueryID(i), q, cfg.K); err != nil {
			return MethodResult{}, err
		}
	}
	var diffs []model.ResultDiff
	diffs = append(diffs, e.TakeDiffs()...) // the install events
	for ts := 0; ts < cfg.Timestamps; ts++ {
		e.ProcessBatch(w.Advance())
		diffs = append(diffs, e.TakeDiffs()...)
	}

	// One warm-up pass sizes the buffer; the measured passes then run
	// allocation-free.
	var buf []byte
	var seq uint64
	encodeAll := func() int {
		bytes := 0
		for i := range diffs {
			seq++
			buf = wire.AppendEvent(buf[:0], 1, seq, diffs[i])
			bytes += len(buf)
		}
		return bytes
	}
	encodeAll()

	var msBefore, msAfter runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	start := time.Now()
	bytes := 0
	for pass := 0; pass < wireEncodePasses; pass++ {
		bytes += encodeAll()
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&msAfter)

	perCycle := int64(0)
	if cfg.Timestamps > 0 {
		perCycle = elapsed.Nanoseconds() / int64(wireEncodePasses*cfg.Timestamps)
	}
	return MethodResult{
		Method:     WireEncodeMethod,
		TotalNs:    elapsed.Nanoseconds(),
		NsPerCycle: perCycle,
		Mallocs:    msAfter.Mallocs - msBefore.Mallocs,
		AllocBytes: msAfter.TotalAlloc - msBefore.TotalAlloc,
		// MemoryUnits doubles as the encoded-stream volume indicator: the
		// total bytes one pass produces.
		MemoryUnits: int64(bytes / wireEncodePasses),
		Queries:     len(queries),
		Timestamps:  cfg.Timestamps,
	}, nil
}
