package bench

import (
	"encoding/json"
	"fmt"
	"os"
	"strings"
)

// Bench-trajectory comparison: the CI gate that pins BENCH_*.json reports
// of consecutive runs against each other and fails on large time or
// allocation regressions. cmd/benchdiff is the command-line front end; the
// Makefile's bench-compare target mirrors the gate locally.

// NoiseFloorNs is the baseline value below which a time metric never
// gates: micro-benchmark readings under 100µs are dominated by scheduler
// and timer noise on shared CI runners.
const NoiseFloorNs = 100_000

// Allocation noise floors: counts below these never gate. Allocation
// counters are process-wide deltas, so tiny baselines (a handful of map
// growths, one-off warm-up) would make the ratio meaningless.
const (
	NoiseFloorMallocs    = 1_000
	NoiseFloorAllocBytes = 256 * 1024
)

// Delta is one (method, metric) comparison between two reports.
type Delta struct {
	Method    string  `json:"method"`
	Metric    string  `json:"metric"`
	Base      int64   `json:"base"`
	Current   int64   `json:"current"`
	Ratio     float64 `json:"ratio"` // Current / Base; 0 (undefined) when Base is 0 and Current is not
	Regressed bool    `json:"regressed"`
	// floor is the metric's noise floor, carried from gatedMetrics so the
	// gate and the rendering agree on one value per metric.
	floor int64
}

// Comparison is the outcome of comparing a current report against a
// baseline.
type Comparison struct {
	Threshold float64 `json:"threshold"`
	Deltas    []Delta `json:"deltas"`
	// Missing lists methods present in only one of the two reports (new
	// or retired method columns); they are reported, not gated.
	Missing []string `json:"missing,omitempty"`
}

// gatedMetric is one gated column of MethodResult with its noise floor.
// Optional columns only exist on some rows (the latency percentiles of
// open-loop load runs); they are skipped when absent from both reports,
// so closed-loop rows keep their historical delta set.
type gatedMetric struct {
	Name     string
	Value    int64
	Floor    int64
	Optional bool
}

// NoiseFloorMemoryUnits is the abstract-footprint floor: unit counts below
// it never gate (degenerate tiny-scale runs).
const NoiseFloorMemoryUnits = 1_000

// gatedMetrics are the columns of MethodResult the gate watches: the ns
// timings plus the allocation counters, each with its own noise floor,
// the memory-footprint columns, and — on load rows — the per-op latency
// SLO percentiles.
func gatedMetrics(r MethodResult) []gatedMetric {
	return []gatedMetric{
		{"total_ns", r.TotalNs, NoiseFloorNs, false},
		{"ns_per_cycle", r.NsPerCycle, NoiseFloorNs, false},
		{"register_ns", r.RegisterNs, NoiseFloorNs, false},
		{"mallocs", int64(r.Mallocs), NoiseFloorMallocs, false},
		{"alloc_bytes", int64(r.AllocBytes), NoiseFloorAllocBytes, false},
		// The footprint trajectory: memory_units on every monitor row,
		// mem_heap_bytes on the mem-footprint rows. Both optional so rows
		// that never record them (wire, load) keep their delta set.
		{"memory_units", r.MemoryUnits, NoiseFloorMemoryUnits, true},
		{"mem_heap_bytes", r.MemHeapBytes, NoiseFloorAllocBytes, true},
		{"p50_ns", r.P50Ns, NoiseFloorNs, true},
		{"p99_ns", r.P99Ns, NoiseFloorNs, true},
		{"p999_ns", r.P999Ns, NoiseFloorNs, true},
	}
}

// Compare evaluates every shared method's gated metrics of cur against
// base. A metric regresses when it exceeds the baseline by more than
// threshold (0.25 = +25%) and the baseline is above the metric's noise
// floor.
func Compare(base, cur Report, threshold float64) Comparison {
	c := Comparison{Threshold: threshold}
	baseByMethod := make(map[string]MethodResult, len(base.Methods))
	for _, m := range base.Methods {
		baseByMethod[m.Method] = m
	}
	seen := make(map[string]bool, len(cur.Methods))
	for _, m := range cur.Methods {
		seen[m.Method] = true
		b, ok := baseByMethod[m.Method]
		if !ok {
			c.Missing = append(c.Missing, m.Method+" (not in baseline)")
			continue
		}
		bm, cm := gatedMetrics(b), gatedMetrics(m)
		for i := range bm {
			if bm[i].Optional && bm[i].Value == 0 && cm[i].Value == 0 {
				continue // column not recorded on this row in either report
			}
			d := Delta{
				Method:  m.Method,
				Metric:  bm[i].Name,
				Base:    bm[i].Value,
				Current: cm[i].Value,
				floor:   bm[i].Floor,
			}
			if d.Base > 0 {
				d.Ratio = float64(d.Current) / float64(d.Base)
			} else if d.Current == 0 {
				d.Ratio = 1
			} // else: undefined vs a zero baseline; Ratio stays 0, shown as n/a
			d.Regressed = d.Base > bm[i].Floor && float64(d.Current) > float64(d.Base)*(1+threshold)
			c.Deltas = append(c.Deltas, d)
		}
	}
	for _, m := range base.Methods {
		if !seen[m.Method] {
			c.Missing = append(c.Missing, m.Method+" (not in current)")
		}
	}
	return c
}

// Regressed reports whether any delta breached the threshold.
func (c Comparison) Regressed() bool {
	for _, d := range c.Deltas {
		if d.Regressed {
			return true
		}
	}
	return false
}

// Markdown renders the comparison as a GitHub-flavored table suitable for
// a job step summary.
func (c Comparison) Markdown() string {
	var b strings.Builder
	fmt.Fprintf(&b, "### Bench trajectory (gate: +%.0f%% on any time or allocation metric)\n\n", c.Threshold*100)
	b.WriteString("| Method | Metric | Baseline | Current | Δ | |\n")
	b.WriteString("|---|---|---:|---:|---:|---|\n")
	for _, d := range c.Deltas {
		mark := ""
		switch {
		case d.Regressed:
			mark = "❌ regression"
		case d.Base > d.floor && float64(d.Current) < float64(d.Base)*(1-c.Threshold):
			mark = "🎉 faster"
		}
		delta := "n/a"
		if d.Ratio > 0 {
			delta = fmt.Sprintf("%+.1f%%", (d.Ratio-1)*100)
		}
		fmt.Fprintf(&b, "| %s | %s | %d | %d | %s | %s |\n",
			d.Method, d.Metric, d.Base, d.Current, delta, mark)
	}
	for _, m := range c.Missing {
		fmt.Fprintf(&b, "\n_%s — skipped._\n", m)
	}
	if c.Regressed() {
		b.WriteString("\n**Regression detected.**\n")
	} else {
		b.WriteString("\nNo regression above threshold.\n")
	}
	return b.String()
}

// ReadReport loads a BENCH_*.json report written by WriteReport.
func ReadReport(path string) (Report, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return Report{}, err
	}
	var r Report
	if err := json.Unmarshal(data, &r); err != nil {
		return Report{}, fmt.Errorf("bench: parse %s: %w", path, err)
	}
	return r, nil
}
