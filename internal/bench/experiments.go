package bench

import (
	"fmt"
	"math/rand"

	"cpm/internal/analysis"
	"cpm/internal/core"
	"cpm/internal/generator"
	"cpm/internal/geom"
	"cpm/internal/model"
	"cpm/internal/network"
)

// Options scope an experiment run. Scale multiplies the paper's population
// sizes (Table 6.1); Scale 1 is the full N=100K / n=5K setting.
type Options struct {
	Scale      float64
	Timestamps int
	Seed       int64
	GridSize   int
	// Shards is the CPMSharded worker count (0 = all usable cores).
	Shards int
}

func (o *Options) defaults() {
	if o.Scale <= 0 {
		o.Scale = 0.05
	}
	if o.Timestamps <= 0 {
		o.Timestamps = 20
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
	if o.GridSize <= 0 {
		o.GridSize = 128
	}
}

// baseConfig is the paper's default setting (Table 6.1) at the chosen
// scale: N=100K·scale objects, n=5K·scale queries, k=16, medium speeds,
// f_obj=50%, f_qry=30%, 128×128 grid.
func baseConfig(o Options) Config {
	gen := generator.Defaults(o.Scale)
	gen.Seed = o.Seed + 17
	return Config{
		GridSize:   o.GridSize,
		K:          16,
		Timestamps: o.Timestamps,
		Shards:     o.Shards,
		Net:        network.GenOptions{Width: 32, Height: 32, Seed: o.Seed},
		Gen:        gen,
	}
}

// Experiment regenerates one table/figure of the paper (or one of this
// repository's extension experiments).
type Experiment struct {
	ID    string
	Title string
	Run   func(o Options) (Table, error)
}

// All returns every experiment, in the paper's order. The IDs match
// DESIGN.md §6.
func All() []Experiment {
	return []Experiment{
		{"fig6.1", "CPU time vs grid granularity", runFig61},
		{"space", "memory footprint at the default setting (footnote 6)", runSpace},
		{"fig6.2a", "CPU time vs object population N", runFig62a},
		{"fig6.2b", "CPU time vs number of queries n", runFig62b},
		{"fig6.3a", "CPU time vs number of NNs k", runFig63a},
		{"fig6.3b", "cell accesses per query per timestamp vs k", runFig63b},
		{"fig6.4a", "CPU time vs object speed", runFig64a},
		{"fig6.4b", "CPU time vs query speed", runFig64b},
		{"fig6.5a", "CPU time vs object agility f_obj", runFig65a},
		{"fig6.5b", "CPU time vs query agility f_qry", runFig65b},
		{"fig6.6a", "CPU time vs N, constantly moving queries", runFig66a},
		{"fig6.6b", "CPU time vs N, static queries", runFig66b},
		{"model", "Section 4.1 estimates vs measurement", runModel},
		{"ann", "aggregate NN monitoring throughput (extension)", runANN},
		{"ablation.recompute", "visit-list re-computation vs from-scratch fallback", runAblationRecompute},
		{"ablation.batch", "batched vs per-update handling", runAblationBatch},
		{"updateheavy", "update-heavy/query-light: intra-shard scan parallelism", runUpdateHeavy},
	}
}

// ByID looks an experiment up.
func ByID(id string) (Experiment, bool) {
	for _, e := range All() {
		if e.ID == id {
			return e, true
		}
	}
	return Experiment{}, false
}

type metric uint8

const (
	metricCPU metric = iota
	metricCells
)

// sweepPoint is one x-axis position of a figure.
type sweepPoint struct {
	label string
	cfg   Config
}

func runSweep(id, title, xLabel string, methods []Method, points []sweepPoint, m metric) (Table, error) {
	t := Table{ID: id, Title: title, Header: []string{xLabel}}
	for _, method := range methods {
		t.Header = append(t.Header, method.String())
	}
	for _, pt := range points {
		row := []string{pt.label}
		for _, method := range methods {
			meas, err := RunMethod(method, pt.cfg)
			if err != nil {
				return Table{}, fmt.Errorf("%s %s@%s: %w", id, method, pt.label, err)
			}
			switch m {
			case metricCPU:
				row = append(row, fmtFloat(float64(meas.Elapsed.Microseconds())/1000))
			case metricCells:
				row = append(row, fmtFloat(meas.CellsPerQueryPerCycle()))
			}
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

func note(o Options, cfg Config) string {
	return fmt.Sprintf("N=%d n=%d k=%d grid=%d ts=%d scale=%.3g; CPU in ms total",
		cfg.Gen.N, cfg.Gen.NumQueries, cfg.K, cfg.GridSize, cfg.Timestamps, o.Scale)
}

func runFig61(o Options) (Table, error) {
	o.defaults()
	base := baseConfig(o)
	var points []sweepPoint
	for _, g := range []int{32, 64, 128, 256, 512, 1024} {
		cfg := base
		cfg.GridSize = g
		points = append(points, sweepPoint{fmt.Sprintf("%d^2", g), cfg})
	}
	t, err := runSweep("fig6.1", "CPU time vs grid granularity", "grid", AllMethods, points, metricCPU)
	t.Note = note(o, base)
	return t, err
}

func runSpace(o Options) (Table, error) {
	o.defaults()
	cfg := baseConfig(o)
	t := Table{
		ID:     "space",
		Title:  "memory footprint at the default setting (footnote 6)",
		Note:   note(o, cfg) + "; units per Section 4.1 (one number = one unit)",
		Header: []string{"method", "memory units"},
	}
	for _, method := range AllMethods {
		meas, err := RunMethod(method, cfg)
		if err != nil {
			return Table{}, err
		}
		t.Rows = append(t.Rows, []string{method.String(), fmt.Sprintf("%d", meas.Memory)})
	}
	return t, nil
}

func sweepN(o Options, id, title string, methods []Method, mutate func(*Config)) (Table, error) {
	o.defaults()
	base := baseConfig(o)
	var points []sweepPoint
	for _, frac := range []float64{0.1, 0.5, 1.0, 1.5, 2.0} {
		cfg := base
		cfg.Gen.N = max(1, int(float64(cfg.Gen.N)*frac))
		if mutate != nil {
			mutate(&cfg)
		}
		points = append(points, sweepPoint{fmt.Sprintf("%dK", paperN(frac)), cfg})
	}
	t, err := runSweep(id, title, "N", methods, points, metricCPU)
	t.Note = note(o, base)
	return t, err
}

// paperN converts the N sweep fraction to the paper's axis labels
// (10K..200K around the 100K default).
func paperN(frac float64) int { return int(100 * frac) }

func runFig62a(o Options) (Table, error) {
	return sweepN(o, "fig6.2a", "CPU time vs object population N", AllMethods, nil)
}

func runFig62b(o Options) (Table, error) {
	o.defaults()
	base := baseConfig(o)
	var points []sweepPoint
	for _, frac := range []float64{0.2, 0.4, 1.0, 1.4, 2.0} {
		cfg := base
		cfg.Gen.NumQueries = max(1, int(float64(cfg.Gen.NumQueries)*frac))
		points = append(points, sweepPoint{fmt.Sprintf("%gK", 5*frac), cfg})
	}
	t, err := runSweep("fig6.2b", "CPU time vs number of queries n", "n", AllMethods, points, metricCPU)
	t.Note = note(o, base)
	return t, err
}

func kSweepPoints(o Options) []sweepPoint {
	base := baseConfig(o)
	var points []sweepPoint
	for _, k := range []int{1, 4, 16, 64, 256} {
		cfg := base
		cfg.K = k
		points = append(points, sweepPoint{fmt.Sprintf("%d", k), cfg})
	}
	return points
}

func runFig63a(o Options) (Table, error) {
	o.defaults()
	t, err := runSweep("fig6.3a", "CPU time vs number of NNs k", "k", AllMethods, kSweepPoints(o), metricCPU)
	t.Note = note(o, baseConfig(o))
	return t, err
}

func runFig63b(o Options) (Table, error) {
	o.defaults()
	t, err := runSweep("fig6.3b", "cell accesses per query per timestamp vs k", "k", AllMethods, kSweepPoints(o), metricCells)
	t.Note = note(o, baseConfig(o)) + "; metric: cell accesses/query/timestamp"
	return t, err
}

func speedPoints(o Options, query bool) []sweepPoint {
	base := baseConfig(o)
	var points []sweepPoint
	for _, s := range []generator.Speed{generator.Slow, generator.Medium, generator.Fast} {
		cfg := base
		if query {
			cfg.Gen.QuerySpeed = s
		} else {
			cfg.Gen.ObjectSpeed = s
		}
		points = append(points, sweepPoint{s.String(), cfg})
	}
	return points
}

func runFig64a(o Options) (Table, error) {
	o.defaults()
	t, err := runSweep("fig6.4a", "CPU time vs object speed", "speed", AllMethods, speedPoints(o, false), metricCPU)
	t.Note = note(o, baseConfig(o))
	return t, err
}

func runFig64b(o Options) (Table, error) {
	o.defaults()
	t, err := runSweep("fig6.4b", "CPU time vs query speed", "speed", AllMethods, speedPoints(o, true), metricCPU)
	t.Note = note(o, baseConfig(o))
	return t, err
}

func agilityPoints(o Options, query bool) []sweepPoint {
	base := baseConfig(o)
	var points []sweepPoint
	for _, f := range []float64{0.1, 0.2, 0.3, 0.4, 0.5} {
		cfg := base
		if query {
			cfg.Gen.QueryAgility = f
		} else {
			cfg.Gen.ObjectAgility = f
		}
		points = append(points, sweepPoint{fmt.Sprintf("%.0f%%", f*100), cfg})
	}
	return points
}

func runFig65a(o Options) (Table, error) {
	o.defaults()
	t, err := runSweep("fig6.5a", "CPU time vs object agility f_obj", "f_obj", AllMethods, agilityPoints(o, false), metricCPU)
	t.Note = note(o, baseConfig(o))
	return t, err
}

func runFig65b(o Options) (Table, error) {
	o.defaults()
	t, err := runSweep("fig6.5b", "CPU time vs query agility f_qry", "f_qry", AllMethods, agilityPoints(o, true), metricCPU)
	t.Note = note(o, baseConfig(o))
	return t, err
}

func runFig66a(o Options) (Table, error) {
	// Constantly moving queries isolate the NN computation modules;
	// SEA-CNN is omitted as in the paper (it has no own first-time
	// evaluation).
	return sweepN(o, "fig6.6a", "CPU time vs N, constantly moving queries",
		[]Method{CPM, YPK}, func(c *Config) { c.Gen.QueryAgility = 1.0 })
}

func runFig66b(o Options) (Table, error) {
	return sweepN(o, "fig6.6b", "CPU time vs N, static queries",
		AllMethods, func(c *Config) { c.Gen.QueryAgility = 0 })
}

// runModel compares the Section 4.1 estimates with measurements on
// uniformly distributed objects, per grid granularity.
func runModel(o Options) (Table, error) {
	o.defaults()
	n := max(1000, int(100_000*o.Scale))
	const k = 16
	const trials = 200
	t := Table{
		ID:    "model",
		Title: "Section 4.1 estimates vs measurement (uniform data)",
		Note:  fmt.Sprintf("N=%d k=%d, %d random interior queries per grid", n, k, trials),
		Header: []string{"grid", "Cinf est", "Cinf meas", "CSH est", "CSH meas",
			"Oinf est", "Oinf meas"},
	}
	rng := rand.New(rand.NewSource(o.Seed))
	objs := make(map[model.ObjectID]geom.Point, n)
	for i := 0; i < n; i++ {
		objs[model.ObjectID(i)] = geom.Point{X: rng.Float64(), Y: rng.Float64()}
	}
	for _, gridSize := range []int{32, 64, 128, 256} {
		e := core.NewUnitEngine(gridSize, core.Options{})
		e.Bootstrap(objs)
		mdl := analysis.Model{N: n, NumQ: 1, K: k, Delta: 1.0 / float64(gridSize)}
		var cells, objects, csh float64
		accBase := e.Stats()
		for i := 0; i < trials; i++ {
			q := geom.Point{X: 0.15 + 0.7*rng.Float64(), Y: 0.15 + 0.7*rng.Float64()}
			if err := e.RegisterQuery(model.QueryID(i), q, k); err != nil {
				return Table{}, err
			}
			visit, heap, _ := e.Bookkeeping(model.QueryID(i))
			csh += float64(visit + heap)
			e.RemoveQuery(model.QueryID(i))
		}
		d := e.Stats().Sub(accBase)
		cells = float64(d.CellAccesses) / trials
		objects = float64(d.ObjectsProcessed) / trials
		csh /= trials
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%d^2", gridSize),
			fmtFloat(mdl.CInf()), fmtFloat(cells),
			fmtFloat(mdl.CSH()), fmtFloat(csh),
			fmtFloat(mdl.OInf()), fmtFloat(objects),
		})
	}
	return t, nil
}

// runANN measures CPM's aggregate-NN monitoring cost per aggregate
// function and query-set size — the Section 5 extension, which the paper
// describes but does not benchmark.
func runANN(o Options) (Table, error) {
	o.defaults()
	cfg := baseConfig(o)
	cfg.Gen.NumQueries = 0 // ANN queries are installed directly below
	numQueries := max(1, int(5000*o.Scale))
	t := Table{
		ID:    "ann",
		Title: "aggregate NN monitoring throughput (extension)",
		Note: fmt.Sprintf("N=%d ANN-queries=%d k=%d grid=%d ts=%d; CPU in ms total",
			cfg.Gen.N, numQueries, cfg.K, cfg.GridSize, cfg.Timestamps),
		Header: []string{"m", "sum", "min", "max"},
	}
	for _, m := range []int{2, 4, 8} {
		row := []string{fmt.Sprintf("%d", m)}
		for _, agg := range []geom.Agg{geom.AggSum, geom.AggMin, geom.AggMax} {
			elapsed, err := RunANN(cfg, numQueries, m, agg, o.Seed)
			if err != nil {
				return Table{}, err
			}
			row = append(row, fmtFloat(elapsed))
		}
		t.Rows = append(t.Rows, row)
	}
	return t, nil
}

// RunANN runs one aggregate-NN monitoring simulation: numQueries static
// ANN queries of m clustered points each, under the config's object
// stream. It returns the total ProcessBatch milliseconds.
func RunANN(cfg Config, numQueries, m int, agg geom.Agg, seed int64) (float64, error) {
	net, err := network.Generate(cfg.Net)
	if err != nil {
		return 0, err
	}
	w, err := generator.New(net, cfg.Gen)
	if err != nil {
		return 0, err
	}
	e := core.NewUnitEngine(cfg.GridSize, core.Options{})
	e.Bootstrap(w.InitialObjects())
	rng := rand.New(rand.NewSource(seed + int64(m)*7 + int64(agg)))
	for i := 0; i < numQueries; i++ {
		// m users clustered within a small disk: a realistic meet-up
		// group (query sets spanning the whole workspace would make every
		// cell influential).
		center := geom.Point{X: 0.1 + 0.8*rng.Float64(), Y: 0.1 + 0.8*rng.Float64()}
		pts := make([]geom.Point, m)
		for j := range pts {
			pts[j] = geom.Point{
				X: center.X + (rng.Float64()-0.5)*0.05,
				Y: center.Y + (rng.Float64()-0.5)*0.05,
			}
		}
		if err := e.Register(model.QueryID(i), core.AggQuery(pts, cfg.K, agg)); err != nil {
			return 0, err
		}
	}
	elapsed := timeCycles(e, w, cfg.Timestamps)
	return elapsed, nil
}

func runAblationRecompute(o Options) (Table, error) {
	o.defaults()
	base := baseConfig(o)
	var points []sweepPoint
	for _, k := range []int{4, 16, 64} {
		cfg := base
		cfg.K = k
		points = append(points, sweepPoint{fmt.Sprintf("k=%d", k), cfg})
	}
	t, err := runSweep("ablation.recompute", "visit-list re-computation vs from-scratch fallback",
		"k", []Method{CPM, CPMDropBookkeeping}, points, metricCPU)
	t.Note = note(o, base)
	return t, err
}

func runAblationBatch(o Options) (Table, error) {
	o.defaults()
	base := baseConfig(o)
	var points []sweepPoint
	for _, f := range []float64{0.1, 0.3, 0.5} {
		cfg := base
		cfg.Gen.ObjectAgility = f
		points = append(points, sweepPoint{fmt.Sprintf("%.0f%%", f*100), cfg})
	}
	t, err := runSweep("ablation.batch", "batched vs per-update handling",
		"f_obj", []Method{CPM, CPMPerUpdate}, points, metricCPU)
	t.Note = note(o, base)
	return t, err
}

// updateHeavyConfig is the preset of the updateheavy experiment: nearly
// every object moves fast every timestamp while a small static query set
// watches, so per-tick cost is dominated by the influence-scan phase —
// exactly the work ScanWorkers splits by cell range inside each shard.
func updateHeavyConfig(o Options) Config {
	cfg := baseConfig(o)
	cfg.Gen.ObjectAgility = 0.9
	cfg.Gen.ObjectSpeed = generator.Fast
	cfg.Gen.QueryAgility = 0
	cfg.Gen.NumQueries = max(1, cfg.Gen.NumQueries/5)
	return cfg
}

// runUpdateHeavy sweeps the intra-shard scan-worker count over the
// update-heavy/query-light preset, for the single engine and the sharded
// monitor: the x-axis is where the scan-phase parallelism pays (or stops
// paying) once sharding alone has run out of independent queries.
func runUpdateHeavy(o Options) (Table, error) {
	o.defaults()
	base := updateHeavyConfig(o)
	var points []sweepPoint
	for _, workers := range []int{1, 2, 4} {
		cfg := base
		cfg.ScanWorkers = workers
		points = append(points, sweepPoint{fmt.Sprintf("%d", workers), cfg})
	}
	t, err := runSweep("updateheavy", "update-heavy/query-light: intra-shard scan parallelism",
		"scan workers", []Method{CPM, CPMSharded}, points, metricCPU)
	t.Note = note(o, base) + "; f_obj=90% fast objects, static queries at n/5; ScanWorkers sweeps the per-shard scan pool"
	return t, err
}

func max(a, b int) int {
	if a > b {
		return a
	}
	return b
}
