package bench

import (
	"fmt"
	"io"
	"strings"
)

// Table is a rendered experiment result: one row per x-axis point, one
// column per series (usually per method).
type Table struct {
	ID     string
	Title  string
	Note   string
	Header []string
	Rows   [][]string
}

// Render writes an aligned text table.
func (t Table) Render(w io.Writer) error {
	if _, err := fmt.Fprintf(w, "%s — %s\n", t.ID, t.Title); err != nil {
		return err
	}
	if t.Note != "" {
		if _, err := fmt.Fprintf(w, "  (%s)\n", t.Note); err != nil {
			return err
		}
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) string {
		var b strings.Builder
		for i, cell := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			b.WriteString(fmt.Sprintf("%*s", widths[i], cell))
		}
		return b.String()
	}
	if _, err := fmt.Fprintln(w, line(t.Header)); err != nil {
		return err
	}
	if _, err := fmt.Fprintln(w, strings.Repeat("-", lineWidth(widths))); err != nil {
		return err
	}
	for _, row := range t.Rows {
		if _, err := fmt.Fprintln(w, line(row)); err != nil {
			return err
		}
	}
	_, err := fmt.Fprintln(w)
	return err
}

func lineWidth(widths []int) int {
	total := 0
	for _, w := range widths {
		total += w
	}
	return total + 2*(len(widths)-1)
}

// CSV renders the table as comma-separated values (header first). Cells
// are simple numbers and labels, so no quoting is needed.
func (t Table) CSV() string {
	var b strings.Builder
	b.WriteString(strings.Join(t.Header, ","))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		b.WriteString(strings.Join(row, ","))
		b.WriteByte('\n')
	}
	return b.String()
}

func fmtFloat(v float64) string {
	switch {
	case v == 0:
		return "0"
	case v < 0.01:
		return fmt.Sprintf("%.4f", v)
	case v < 1:
		return fmt.Sprintf("%.3f", v)
	case v < 100:
		return fmt.Sprintf("%.2f", v)
	default:
		return fmt.Sprintf("%.0f", v)
	}
}
