package bench

import (
	"net"
	"runtime"
	"time"

	"cpm"
	"cpm/internal/cluster"
	"cpm/internal/generator"
	"cpm/internal/model"
	"cpm/internal/network"
	"cpm/internal/server"
)

// The cluster trajectory row: the distributed serving path — a
// cluster.Coordinator fanning ticks out to loopback cpmserver workers
// over the real wire protocol and merging their diff streams — rides
// along in the JSON report as a "cluster" pseudo-method, so the CI
// benchdiff gate watches coordinator tick latency (fan-out, encode,
// kernel round trip, decode, merge) like any monitor column. Work
// counters stay zero: the cycle work happens inside the workers, and
// the row measures the coordination overhead around it.

// ClusterMethod is the method-column name of the cluster row.
const ClusterMethod = "cluster"

// clusterWorkers is the row's fleet size: the smallest real cluster, so
// the row tracks per-tick coordination cost rather than scaling.
const clusterWorkers = 2

// clusterResult boots clusterWorkers in-process servers on loopback
// listeners, shards the configured workload's queries across them
// through a coordinator, and measures the tick loop end to end. The
// update stream is pre-generated so the measured region is coordination
// only.
func clusterResult(cfg Config) (MethodResult, error) {
	if err := cfg.Validate(); err != nil {
		return MethodResult{}, err
	}
	netw, err := network.Generate(cfg.Net)
	if err != nil {
		return MethodResult{}, err
	}
	w, err := generator.New(netw, cfg.Gen)
	if err != nil {
		return MethodResult{}, err
	}

	addrs := make([]string, clusterWorkers)
	for i := range addrs {
		mon := cpm.NewMonitor(cpm.Options{GridSize: cfg.GridSize})
		srv := server.New(mon, server.Options{})
		ln, err := net.Listen("tcp", "127.0.0.1:0")
		if err != nil {
			return MethodResult{}, err
		}
		go srv.Serve(ln)
		defer func() { srv.Close(); mon.Close() }()
		addrs[i] = ln.Addr().String()
	}
	coord, err := cluster.New(cluster.Options{Workers: addrs})
	if err != nil {
		return MethodResult{}, err
	}
	defer coord.Close()

	coord.Bootstrap(w.InitialObjects())
	queries := w.InitialQueries()
	regStart := time.Now()
	for i, q := range queries {
		if err := coord.RegisterQuery(model.QueryID(i), q, cfg.K); err != nil {
			return MethodResult{}, err
		}
	}
	registered := time.Since(regStart)

	batches := make([]model.Batch, cfg.Timestamps)
	for i := range batches {
		batches[i] = w.Advance()
	}

	var msBefore, msAfter runtime.MemStats
	runtime.ReadMemStats(&msBefore)
	start := time.Now()
	for _, b := range batches {
		coord.Tick(b)
	}
	elapsed := time.Since(start)
	runtime.ReadMemStats(&msAfter)

	perCycle := int64(0)
	if cfg.Timestamps > 0 {
		perCycle = elapsed.Nanoseconds() / int64(cfg.Timestamps)
	}
	return MethodResult{
		Method:     ClusterMethod,
		TotalNs:    elapsed.Nanoseconds(),
		NsPerCycle: perCycle,
		RegisterNs: registered.Nanoseconds(),
		Mallocs:    msAfter.Mallocs - msBefore.Mallocs,
		AllocBytes: msAfter.TotalAlloc - msBefore.TotalAlloc,
		// MemoryUnits records the fleet size the row ran at.
		MemoryUnits: clusterWorkers,
		Queries:     len(queries),
		Timestamps:  cfg.Timestamps,
	}, nil
}
