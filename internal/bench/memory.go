package bench

import (
	"fmt"
	"runtime"

	"cpm/internal/core"
	"cpm/internal/generator"
	"cpm/internal/model"
	"cpm/internal/network"
	"cpm/internal/shard"
)

// The mem-footprint rows of the JSON report: the same workload loaded into
// a 1-shard and an 8-shard monitor, reporting the Section 4.1 abstract
// units (MemoryUnits) and the measured Go heap growth (MemHeapBytes) of
// each. With the shared grid both columns should be flat across the shard
// counts — the grid term is counted (and allocated) once — so the
// trajectory gate turns any reintroduction of per-shard grid replicas into
// a visible mem_heap_bytes regression on the mem-8shard row.

// memShardCounts are the fixed shard counts of the mem-footprint rows.
var memShardCounts = []int{1, 8}

// memoryResults builds one report row per entry of memShardCounts.
func memoryResults(cfg Config) ([]MethodResult, error) {
	out := make([]MethodResult, 0, len(memShardCounts))
	for _, shards := range memShardCounts {
		res, err := memoryResult(cfg, shards)
		if err != nil {
			return nil, err
		}
		out = append(out, res)
	}
	return out, nil
}

// memoryResult loads the config's workload (bootstrap population, initial
// query set, a few warmed cycles) into a monitor of the given shard count
// and measures its resident cost both ways.
func memoryResult(cfg Config, shards int) (MethodResult, error) {
	net, err := network.Generate(cfg.Net)
	if err != nil {
		return MethodResult{}, err
	}
	w, err := generator.New(net, cfg.Gen)
	if err != nil {
		return MethodResult{}, err
	}
	// Pre-generate everything the run needs so the heap window below
	// contains only the monitor.
	boot := w.InitialObjects()
	queries := w.InitialQueries()
	const warmCycles = 4
	batches := make([]model.Batch, warmCycles)
	for i := range batches {
		batches[i] = w.Advance()
	}

	heapBase := heapBytes()
	mon := shard.NewUnit(shards, cfg.GridSize, core.Options{})
	mon.Bootstrap(boot)
	for i, q := range queries {
		if err := mon.RegisterQuery(model.QueryID(i), q, cfg.K); err != nil {
			return MethodResult{}, fmt.Errorf("bench: mem-%dshard register: %w", shards, err)
		}
	}
	for _, b := range batches {
		mon.ProcessBatch(b)
	}
	heapGrown := heapBytes() - heapBase
	if heapGrown < 0 {
		heapGrown = 0 // unrelated garbage collected out from under the window
	}
	res := MethodResult{
		Method:       fmt.Sprintf("mem-%dshard", shards),
		MemoryUnits:  mon.MemoryFootprint(),
		MemHeapBytes: heapGrown,
		Queries:      len(queries),
		Timestamps:   warmCycles,
	}
	runtime.KeepAlive(batches)
	mon.Close()
	return res, nil
}

// heapBytes returns the live-heap size after a full collection.
func heapBytes() int64 {
	runtime.GC()
	var ms runtime.MemStats
	runtime.ReadMemStats(&ms)
	return int64(ms.HeapAlloc)
}
