package bench

import (
	"math/rand"
	"runtime"
	"time"

	"cpm/internal/core"
	"cpm/internal/geom"
	"cpm/internal/model"
	"cpm/internal/shard"
)

// The rebalance trajectory rows: online grid rebalancing exists to keep
// cycle time flat when the population density drifts away from the density
// δ was sized for, so the JSON report carries a dedicated hotspot-drift
// workload — every object contracts from a uniform spread into a tiny
// hotspot, then keeps churning inside it — run twice over identical
// update streams: once on a frozen grid ("rebalance-frozen", the paper's
// fixed-δ baseline degrading as cells around the hotspot fill up) and once
// with the auto-rebalancing policy on ("rebalance"). The CI benchdiff gate
// watches both like any method column; the pair makes the recovery visible
// in every BENCH_smoke.json: the rebalance row's per-cycle time holds near
// the uniform-density cost while the frozen row's blows up with the
// hotspot. TestRebalanceBeatsFrozen pins the relation on deterministic
// work counters.

// Method-column names of the two drift rows.
const (
	RebalanceMethod       = "rebalance"
	RebalanceFrozenMethod = "rebalance-frozen"
)

// driftParams sizes the hotspot-drift workload.
type driftParams struct {
	N        int   // objects
	Queries  int   // k-NN queries, sprinkled around the hotspot
	K        int   // neighbors per query
	GridSize int   // initial cells per dimension (the frozen grid keeps it)
	Cycles   int   // total processing cycles; the first half is the drift
	Seed     int64 // rng seed
}

// smokeDriftParams is the configuration of the JSON report's rows.
var smokeDriftParams = driftParams{
	N: 3000, Queries: 24, K: 8, GridSize: 64, Cycles: 36, Seed: 1,
}

// driftHotspot is the collapse target: center and radius of the final
// population blob (a handful of cells of the initial grid).
var driftHotspot = struct {
	center geom.Point
	radius float64
}{geom.Point{X: 0.5, Y: 0.5}, 0.02}

// driftWorkload pre-generates the full update stream (identical for both
// monitors): initial positions, per-cycle batches, and the query points.
func driftWorkload(p driftParams) (objs map[model.ObjectID]geom.Point, batches []model.Batch, queries []geom.Point) {
	rng := rand.New(rand.NewSource(p.Seed))
	clamp := func(v float64) float64 {
		if v < 0 {
			return 0
		}
		if v > 1 {
			return 1
		}
		return v
	}
	inHotspot := func() geom.Point {
		return geom.Point{
			X: clamp(driftHotspot.center.X + (rng.Float64()*2-1)*driftHotspot.radius),
			Y: clamp(driftHotspot.center.Y + (rng.Float64()*2-1)*driftHotspot.radius),
		}
	}

	pos := make([]geom.Point, p.N)
	objs = make(map[model.ObjectID]geom.Point, p.N)
	for i := range pos {
		pos[i] = geom.Point{X: rng.Float64(), Y: rng.Float64()}
		objs[model.ObjectID(i)] = pos[i]
	}
	queries = make([]geom.Point, p.Queries)
	for i := range queries {
		queries[i] = inHotspot()
	}

	batches = make([]model.Batch, p.Cycles)
	for c := range batches {
		b := model.Batch{Objects: make([]model.Update, 0, p.N)}
		for i := range pos {
			old := pos[i]
			var to geom.Point
			if c < p.Cycles/2 {
				// Drift: contract 35% of the way toward a point inside the
				// hotspot each cycle — fully collapsed well before halftime.
				target := inHotspot()
				to = geom.Point{
					X: old.X + (target.X-old.X)*0.35,
					Y: old.Y + (target.Y-old.Y)*0.35,
				}
			} else {
				// Post-drift steady state: churn inside the hotspot, keeping
				// the update (and result-maintenance) load high at maximum
				// density.
				to = inHotspot()
			}
			pos[i] = to
			b.Objects = append(b.Objects, model.MoveUpdate(model.ObjectID(i), old, to))
		}
		batches[c] = b
	}
	return objs, batches, queries
}

// driftRun is one monitor's measurement over the drift workload.
type driftRun struct {
	Elapsed    time.Duration // total ProcessBatch time, all cycles
	SecondHalf time.Duration // ProcessBatch time across the post-drift half
	Registered time.Duration
	Stats      model.Stats // whole-run counter deltas
	HalfStats  model.Stats // post-drift-half counter deltas
	Mallocs    uint64
	AllocBytes uint64
	Memory     int64
	GridSize   int   // final cells per dimension
	Rebalances int64 // resizes performed
}

// runDrift drives one monitor through the pre-generated drift stream.
func runDrift(m *shard.Monitor, objs map[model.ObjectID]geom.Point, batches []model.Batch, queries []geom.Point, k int) (driftRun, error) {
	defer m.Close()
	m.Bootstrap(objs)

	var msBefore, msAfter runtime.MemStats
	runtime.ReadMemStats(&msBefore)

	regStart := time.Now()
	for i, q := range queries {
		if err := m.RegisterQuery(model.QueryID(i), q, k); err != nil {
			return driftRun{}, err
		}
	}
	r := driftRun{Registered: time.Since(regStart)}

	base := m.Stats()
	var halfBase model.Stats
	for c, b := range batches {
		start := time.Now()
		m.ProcessBatch(b)
		d := time.Since(start)
		r.Elapsed += d
		if c >= len(batches)/2 {
			r.SecondHalf += d
		}
		if c == len(batches)/2-1 {
			halfBase = m.Stats()
		}
	}
	runtime.ReadMemStats(&msAfter)
	final := m.Stats()
	r.Stats = final.Sub(base)
	r.HalfStats = final.Sub(halfBase)
	r.Mallocs = msAfter.Mallocs - msBefore.Mallocs
	r.AllocBytes = msAfter.TotalAlloc - msBefore.TotalAlloc
	r.Memory = m.MemoryFootprint()
	r.GridSize = m.GridSize()
	r.Rebalances = m.Rebalances()
	return r, nil
}

// runDriftPair runs the identical drift stream on a frozen-grid monitor
// and an auto-rebalancing one.
func runDriftPair(p driftParams) (frozen, auto driftRun, err error) {
	objs, batches, queries := driftWorkload(p)

	frozen, err = runDrift(shard.NewUnit(1, p.GridSize, core.Options{}), objs, batches, queries, p.K)
	if err != nil {
		return driftRun{}, driftRun{}, err
	}

	m := shard.NewUnit(1, p.GridSize, core.Options{})
	m.SetAutoRebalance(shard.AutoRebalance{
		Enabled:    true,
		CheckEvery: 4, // react during the drift, not after it
	})
	auto, err = runDrift(m, objs, batches, queries, p.K)
	if err != nil {
		return driftRun{}, driftRun{}, err
	}
	return frozen, auto, nil
}

// rebalanceResults builds the two drift rows of the JSON report.
func rebalanceResults(seed int64) ([]MethodResult, error) {
	p := smokeDriftParams
	p.Seed = seed
	frozen, auto, err := runDriftPair(p)
	if err != nil {
		return nil, err
	}
	row := func(name string, r driftRun) MethodResult {
		return MethodResult{
			Method:  name,
			TotalNs: r.Elapsed.Nanoseconds(),
			// For the drift rows ns_per_cycle is the POST-drift mean — the
			// recovery metric: at full hotspot density the frozen row pays
			// the collapsed-δ penalty every cycle, the rebalance row does
			// not.
			NsPerCycle: r.SecondHalf.Nanoseconds() / int64(p.Cycles-p.Cycles/2),
			RegisterNs: r.Registered.Nanoseconds(),

			CellAccesses: r.Stats.CellAccesses,
			ObjectsProc:  r.Stats.ObjectsProcessed,
			HeapOps:      r.Stats.HeapOps,
			Recomputes:   r.Stats.Recomputations,
			FullSearches: r.Stats.FullSearches,
			ShortCircs:   r.Stats.ShortCircuits,
			Mallocs:      r.Mallocs,
			AllocBytes:   r.AllocBytes,
			MemoryUnits:  r.Memory,
			Queries:      p.Queries,
			Timestamps:   p.Cycles,
		}
	}
	return []MethodResult{row(RebalanceMethod, auto), row(RebalanceFrozenMethod, frozen)}, nil
}
