package chaos

import (
	"io"
	"net"
	"sync"
	"time"
)

// Proxy is a TCP proxy that forwards every accepted connection to a fixed
// target through a Link — the process-boundary form of WrapConn, used by
// cmd/cpmchaos to run fault drills against a live fleet. Only the
// client-facing conn is wrapped: both relay loops cross it, so one wrap
// point disturbs both directions.
type Proxy struct {
	ln     net.Listener
	target string
	link   *Link

	mu     sync.Mutex
	closed bool
	wg     sync.WaitGroup

	accepted int64
}

// NewProxy listens on listen ("host:port", empty port for ephemeral) and
// forwards connections to target through link.
func NewProxy(listen, target string, link *Link) (*Proxy, error) {
	ln, err := net.Listen("tcp", listen)
	if err != nil {
		return nil, err
	}
	p := &Proxy{ln: ln, target: target, link: link}
	p.wg.Add(1)
	go p.acceptLoop()
	return p, nil
}

// Addr returns the proxy's listen address.
func (p *Proxy) Addr() string { return p.ln.Addr().String() }

// Link returns the fault domain governing this proxy's connections.
func (p *Proxy) Link() *Link { return p.link }

// Close stops accepting and tears down every relayed connection.
func (p *Proxy) Close() error {
	p.mu.Lock()
	p.closed = true
	p.mu.Unlock()
	err := p.ln.Close()
	p.link.Set(Fault{Class: Reset}) // kill live relays
	p.link.Clear()
	p.wg.Wait()
	return err
}

func (p *Proxy) acceptLoop() {
	defer p.wg.Done()
	for {
		in, err := p.ln.Accept()
		if err != nil {
			return
		}
		p.mu.Lock()
		if p.closed {
			p.mu.Unlock()
			in.Close()
			return
		}
		p.accepted++
		p.wg.Add(1)
		p.mu.Unlock()
		go p.relay(in)
	}
}

// relay dials the target and shuttles bytes both ways until either side
// fails; the wrapped client-facing conn injects the faults.
func (p *Proxy) relay(in net.Conn) {
	defer p.wg.Done()
	out, err := net.DialTimeout("tcp", p.target, 10*time.Second)
	if err != nil {
		in.Close()
		return
	}
	wrapped := p.link.WrapConn(in)
	done := make(chan struct{}, 2)
	go func() {
		io.Copy(out, wrapped) // client -> target
		done <- struct{}{}
	}()
	go func() {
		io.Copy(wrapped, out) // target -> client
		done <- struct{}{}
	}()
	<-done
	wrapped.Close()
	out.Close()
	<-done
}
