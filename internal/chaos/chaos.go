// Package chaos is a deterministic fault-injection layer for the CPM
// serving stack: a net.Conn wrapper (plus a dialer hook and a standalone
// TCP proxy) that misbehaves on command — latency spikes, jitter,
// bandwidth throttling, partitions/blackholes, connection resets,
// half-writes (slow-loris), byte corruption and truncation — under a
// seeded RNG so every run of a randomized fault schedule is replayable
// from its seed.
//
// The unit of control is a Link: one shared fault setting plus the set of
// live connections it governs. Tests wrap in-process connections with
// Link.WrapConn or inject Link.Dialer into a client; operators put
// cmd/cpmchaos (a Proxy) in front of a real worker and drive the same
// schedules against a live fleet. Per-class counters record how often
// each fault actually fired, so a drill can assert "the partition was
// exercised" rather than hope it was.
//
// Faults are applied on the wrapped side only — a Proxy therefore wraps
// just its client-facing conn and still disturbs both directions, because
// both pipe loops cross it.
package chaos

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"sync/atomic"
	"time"
)

// Class enumerates the fault families a Link can inject.
type Class uint8

const (
	// None leaves the link healthy (the zero Fault).
	None Class = iota
	// Latency delays every operation by Delay ± Jitter.
	Latency
	// Throttle caps throughput at BytesPerSec.
	Throttle
	// Partition blackholes the link: reads and writes block until the
	// fault changes or the connection is closed.
	Partition
	// Reset tears connections down: Set closes every live conn at once,
	// and new operations fail (probability Prob) with a closed conn.
	Reset
	// SlowLoris half-writes: each write trickles out Chunk bytes at a
	// time with a Stall pause between chunks.
	SlowLoris
	// Corrupt flips random bits of written bytes (probability Prob per
	// write, on a copy — caller buffers are never modified).
	Corrupt
	// Truncate writes a random prefix of the buffer and closes the conn
	// (probability Prob per write).
	Truncate
	numClasses
)

// NumClasses is the number of distinct fault classes (including None).
const NumClasses = int(numClasses)

// String returns the class name used by schedules and counter reports.
func (c Class) String() string {
	switch c {
	case None:
		return "none"
	case Latency:
		return "latency"
	case Throttle:
		return "throttle"
	case Partition:
		return "partition"
	case Reset:
		return "reset"
	case SlowLoris:
		return "slowloris"
	case Corrupt:
		return "corrupt"
	case Truncate:
		return "truncate"
	default:
		return fmt.Sprintf("class(%d)", uint8(c))
	}
}

// Fault is one fault setting. Fields beyond Class apply only where noted
// on the Class constants; zero values pick sane defaults (Prob 0 means
// "always" for the probabilistic classes, Chunk 0 means 1 byte).
type Fault struct {
	Class       Class
	Delay       time.Duration // Latency: base delay per operation
	Jitter      time.Duration // Latency: uniform extra delay in [0, Jitter)
	BytesPerSec int           // Throttle: sustained throughput cap
	Prob        float64       // Reset/Corrupt/Truncate: per-write probability (0 = 1.0)
	Chunk       int           // SlowLoris: bytes per trickle (0 = 1)
	Stall       time.Duration // SlowLoris: pause between trickles
}

// ErrInjected is the base error for failures the chaos layer caused
// itself (as opposed to faults that surface through the wrapped conn).
var ErrInjected = errors.New("chaos: injected fault")

// Link is one controllable fault domain: a current fault, the live
// connections it governs, a seeded RNG for every probabilistic decision,
// and per-class fire counters. All methods are safe for concurrent use.
type Link struct {
	mu      sync.Mutex
	rng     *rand.Rand
	fault   Fault
	changed chan struct{} // closed and replaced on every Set/Clear
	conns   map[*Conn]struct{}

	counts [numClasses]atomic.Int64
}

// NewLink returns a healthy link whose probabilistic decisions (corrupt
// this write? reset now? how much jitter?) replay deterministically from
// seed, given the same operation sequence.
func NewLink(seed int64) *Link {
	return &Link{
		rng:     rand.New(rand.NewSource(seed)),
		changed: make(chan struct{}),
		conns:   make(map[*Conn]struct{}),
	}
}

// Set installs f as the link's active fault, replacing any previous one.
// Installing a Reset fault closes every live connection immediately (the
// classic RST storm); other classes only affect operations from now on.
func (l *Link) Set(f Fault) {
	l.mu.Lock()
	l.fault = f
	close(l.changed)
	l.changed = make(chan struct{})
	var victims []*Conn
	if f.Class == Reset {
		for c := range l.conns {
			victims = append(victims, c)
		}
	}
	l.mu.Unlock()
	for _, c := range victims {
		l.counts[Reset].Add(1)
		c.Close()
	}
}

// Clear heals the link (equivalent to Set(Fault{})).
func (l *Link) Clear() { l.Set(Fault{}) }

// Fault returns the currently active fault.
func (l *Link) Fault() Fault {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.fault
}

// Counters returns how many times each fault class has fired — an
// application of the fault to an operation, not a Set call. Index by
// Class.
func (l *Link) Counters() [NumClasses]int64 {
	var out [NumClasses]int64
	for i := range out {
		out[i] = l.counts[i].Load()
	}
	return out
}

// snapshot returns the active fault and the channel that will be closed
// when it next changes.
func (l *Link) snapshot() (Fault, chan struct{}) {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.fault, l.changed
}

// roll draws a probability decision and a jitter fraction from the seeded
// RNG under the lock, keeping replays deterministic.
func (l *Link) roll() float64 {
	l.mu.Lock()
	defer l.mu.Unlock()
	return l.rng.Float64()
}

// intn draws a bounded int from the seeded RNG.
func (l *Link) intn(n int) int {
	l.mu.Lock()
	defer l.mu.Unlock()
	if n <= 0 {
		return 0
	}
	return l.rng.Intn(n)
}

// hit decides a probabilistic fault application: Prob 0 means always.
func (l *Link) hit(prob float64) bool {
	if prob <= 0 {
		return true
	}
	return l.roll() < prob
}

// forget drops a closed conn from the registry.
func (l *Link) forget(c *Conn) {
	l.mu.Lock()
	delete(l.conns, c)
	l.mu.Unlock()
}

// WrapConn wraps nc so the link's faults apply to its reads and writes.
// The returned conn is registered with the link until closed (so a Reset
// fault can kill it).
func (l *Link) WrapConn(nc net.Conn) *Conn {
	c := &Conn{Conn: nc, link: l, closed: make(chan struct{})}
	l.mu.Lock()
	l.conns[c] = struct{}{}
	l.mu.Unlock()
	return c
}

// DialFunc matches client.Options.Dialer: dial addr within timeout.
type DialFunc func(addr string, timeout time.Duration) (net.Conn, error)

// Dialer returns a DialFunc that dials through next (net.DialTimeout when
// nil) and wraps the result in the link — the in-process hook for
// injecting faults into a client without a proxy between the processes.
// Dialing during a Partition fails immediately (a blackholed SYN), so a
// reconnect loop keeps backing off instead of wedging inside dial.
func (l *Link) Dialer(next DialFunc) DialFunc {
	if next == nil {
		next = func(addr string, timeout time.Duration) (net.Conn, error) {
			return net.DialTimeout("tcp", addr, timeout)
		}
	}
	return func(addr string, timeout time.Duration) (net.Conn, error) {
		if f, _ := l.snapshot(); f.Class == Partition {
			l.counts[Partition].Add(1)
			return nil, fmt.Errorf("%w: partitioned, dial %s blackholed", ErrInjected, addr)
		}
		nc, err := next(addr, timeout)
		if err != nil {
			return nil, err
		}
		return l.WrapConn(nc), nil
	}
}

// Conn is a net.Conn whose reads and writes pass through a Link's active
// fault. It is created by Link.WrapConn.
type Conn struct {
	net.Conn
	link      *Link
	closed    chan struct{}
	closeOnce sync.Once
}

// Close closes the wrapped conn and releases anything blocked on a
// partition.
func (c *Conn) Close() error {
	var err error
	c.closeOnce.Do(func() {
		close(c.closed)
		c.link.forget(c)
		err = c.Conn.Close()
	})
	return err
}

// await blocks while the link is partitioned, returning when the fault
// changes or the conn closes.
func (c *Conn) await() error {
	for {
		f, changed := c.link.snapshot()
		if f.Class != Partition {
			return nil
		}
		c.link.counts[Partition].Add(1)
		select {
		case <-changed:
		case <-c.closed:
			return net.ErrClosed
		}
	}
}

// Read applies read-side faults (partition blackholes; reset with Prob)
// and then reads from the wrapped conn.
func (c *Conn) Read(b []byte) (int, error) {
	f, _ := c.link.snapshot()
	switch f.Class {
	case Partition:
		if err := c.await(); err != nil {
			return 0, err
		}
	case Reset:
		if c.link.hit(f.Prob) {
			c.link.counts[Reset].Add(1)
			c.Close()
			return 0, fmt.Errorf("%w: connection reset", ErrInjected)
		}
	}
	return c.Conn.Read(b)
}

// Write applies the active fault to one write. Corruption and truncation
// operate on a copy; the caller's buffer is never modified.
func (c *Conn) Write(b []byte) (int, error) {
	f, _ := c.link.snapshot()
	switch f.Class {
	case Partition:
		if err := c.await(); err != nil {
			return 0, err
		}
	case Latency:
		d := f.Delay
		if f.Jitter > 0 {
			d += time.Duration(c.link.roll() * float64(f.Jitter))
		}
		c.link.counts[Latency].Add(1)
		if !c.sleep(d) {
			return 0, net.ErrClosed
		}
	case Throttle:
		return c.throttledWrite(b, f)
	case Reset:
		if c.link.hit(f.Prob) {
			c.link.counts[Reset].Add(1)
			c.Close()
			return 0, fmt.Errorf("%w: connection reset", ErrInjected)
		}
	case SlowLoris:
		return c.slowWrite(b, f)
	case Corrupt:
		if c.link.hit(f.Prob) && len(b) > 0 {
			c.link.counts[Corrupt].Add(1)
			mut := append([]byte(nil), b...)
			flips := 1 + c.link.intn(3)
			for i := 0; i < flips; i++ {
				bit := c.link.intn(len(mut) * 8)
				mut[bit/8] ^= 1 << (bit % 8)
			}
			n, err := c.Conn.Write(mut)
			return n, err
		}
	case Truncate:
		if c.link.hit(f.Prob) {
			c.link.counts[Truncate].Add(1)
			n := c.link.intn(len(b) + 1)
			wrote, _ := c.Conn.Write(b[:n])
			c.Close()
			if wrote < n {
				n = wrote
			}
			return n, fmt.Errorf("%w: write truncated at %d/%d bytes", ErrInjected, n, len(b))
		}
	}
	return c.Conn.Write(b)
}

// sleep pauses for d, aborting early (false) if the conn closes.
func (c *Conn) sleep(d time.Duration) bool {
	if d <= 0 {
		return true
	}
	t := time.NewTimer(d)
	defer t.Stop()
	select {
	case <-t.C:
		return true
	case <-c.closed:
		return false
	}
}

// throttledWrite paces b out at f.BytesPerSec.
func (c *Conn) throttledWrite(b []byte, f Fault) (int, error) {
	rate := f.BytesPerSec
	if rate <= 0 {
		rate = 1
	}
	c.link.counts[Throttle].Add(1)
	written := 0
	// Pace in ~10ms quanta so the cap holds for writes of any size.
	quantum := rate / 100
	if quantum < 1 {
		quantum = 1
	}
	for written < len(b) {
		// Clear means heal NOW: a write that started under the cap must
		// not keep crawling after the fault is lifted, or a large frame
		// drags the fault window far past its scheduled end.
		if cur, _ := c.link.snapshot(); cur.Class != Throttle {
			n, err := c.Conn.Write(b[written:])
			return written + n, err
		}
		end := written + quantum
		if end > len(b) {
			end = len(b)
		}
		n, err := c.Conn.Write(b[written:end])
		written += n
		if err != nil {
			return written, err
		}
		if written < len(b) {
			if !c.sleep(time.Duration(float64(end-written+quantum) / float64(rate) * float64(time.Second))) {
				return written, net.ErrClosed
			}
		}
	}
	return written, nil
}

// slowWrite trickles b out Chunk bytes at a time with Stall pauses — the
// half-write ("slow loris") fault.
func (c *Conn) slowWrite(b []byte, f Fault) (int, error) {
	chunk := f.Chunk
	if chunk < 1 {
		chunk = 1
	}
	c.link.counts[SlowLoris].Add(1)
	written := 0
	for written < len(b) {
		// Same heal-NOW rule as throttledWrite: once the fault lifts,
		// flush the remainder at full speed.
		if cur, _ := c.link.snapshot(); cur.Class != SlowLoris {
			n, err := c.Conn.Write(b[written:])
			return written + n, err
		}
		end := written + chunk
		if end > len(b) {
			end = len(b)
		}
		n, err := c.Conn.Write(b[written:end])
		written += n
		if err != nil {
			return written, err
		}
		if written < len(b) && !c.sleep(f.Stall) {
			return written, net.ErrClosed
		}
	}
	return written, nil
}

// CorruptBytes returns a copy of b with flips random bits inverted, drawn
// from a dedicated RNG seeded with seed. It is the same mutation the
// Corrupt fault applies in-line; exported so tests can mint corrupted
// frame corpora reproducibly.
func CorruptBytes(seed int64, b []byte, flips int) []byte {
	out := append([]byte(nil), b...)
	if len(out) == 0 {
		return out
	}
	rng := rand.New(rand.NewSource(seed))
	for i := 0; i < flips; i++ {
		bit := rng.Intn(len(out) * 8)
		out[bit/8] ^= 1 << (bit % 8)
	}
	return out
}
