package chaos

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net"
	"testing"
	"time"
)

// pipe returns a wrapped in-memory conn pair: a is governed by the link.
func pipe(t *testing.T, l *Link) (a net.Conn, b net.Conn) {
	t.Helper()
	p1, p2 := net.Pipe()
	a = l.WrapConn(p1)
	t.Cleanup(func() { a.Close(); p2.Close() })
	return a, p2
}

// drain reads from c into a buffer until EOF/error, on a goroutine.
func drain(c net.Conn) <-chan []byte {
	ch := make(chan []byte, 1)
	go func() {
		var buf bytes.Buffer
		io.Copy(&buf, c)
		ch <- buf.Bytes()
	}()
	return ch
}

func TestHealthyPassThrough(t *testing.T) {
	l := NewLink(1)
	a, b := pipe(t, l)
	got := drain(b)
	msg := []byte("hello chaos")
	if _, err := a.Write(msg); err != nil {
		t.Fatalf("write: %v", err)
	}
	a.Close()
	if !bytes.Equal(<-got, msg) {
		t.Fatal("healthy link altered bytes")
	}
	if c := l.Counters(); c != ([NumClasses]int64{}) {
		t.Fatalf("healthy link fired counters: %v", c)
	}
}

func TestLatencyDelays(t *testing.T) {
	l := NewLink(1)
	l.Set(Fault{Class: Latency, Delay: 50 * time.Millisecond})
	a, b := pipe(t, l)
	got := drain(b)
	start := time.Now()
	a.Write([]byte("x"))
	a.Close()
	<-got
	if el := time.Since(start); el < 45*time.Millisecond {
		t.Fatalf("latency fault delayed only %v", el)
	}
	if l.Counters()[Latency] == 0 {
		t.Fatal("latency counter did not fire")
	}
}

func TestPartitionBlocksUntilHealed(t *testing.T) {
	l := NewLink(1)
	l.Set(Fault{Class: Partition})
	a, b := pipe(t, l)
	got := drain(b)
	wrote := make(chan error, 1)
	go func() {
		_, err := a.Write([]byte("x"))
		wrote <- err
	}()
	select {
	case err := <-wrote:
		t.Fatalf("write completed during partition (err=%v)", err)
	case <-time.After(100 * time.Millisecond):
	}
	l.Clear()
	select {
	case err := <-wrote:
		if err != nil {
			t.Fatalf("write after heal: %v", err)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("write still blocked after heal")
	}
	a.Close()
	<-got
	if l.Counters()[Partition] == 0 {
		t.Fatal("partition counter did not fire")
	}
}

func TestPartitionUnblocksOnClose(t *testing.T) {
	l := NewLink(1)
	l.Set(Fault{Class: Partition})
	a, _ := pipe(t, l)
	wrote := make(chan error, 1)
	go func() {
		_, err := a.Write([]byte("x"))
		wrote <- err
	}()
	time.Sleep(20 * time.Millisecond)
	a.Close()
	select {
	case err := <-wrote:
		if err == nil {
			t.Fatal("write succeeded on closed partitioned conn")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("write still blocked after close")
	}
}

func TestResetClosesLiveConns(t *testing.T) {
	l := NewLink(1)
	a, b := pipe(t, l)
	got := drain(b)
	l.Set(Fault{Class: Reset})
	if _, err := a.Write([]byte("x")); err == nil {
		t.Fatal("write succeeded after reset storm")
	}
	<-got
	if l.Counters()[Reset] == 0 {
		t.Fatal("reset counter did not fire")
	}
}

func TestCorruptFlipsBitsOnCopy(t *testing.T) {
	l := NewLink(42)
	l.Set(Fault{Class: Corrupt}) // Prob 0 = always
	a, b := pipe(t, l)
	got := drain(b)
	msg := []byte("a perfectly innocent frame")
	orig := append([]byte(nil), msg...)
	a.Write(msg)
	a.Close()
	recv := <-got
	if bytes.Equal(recv, orig) {
		t.Fatal("corrupt fault delivered clean bytes")
	}
	if len(recv) != len(orig) {
		t.Fatalf("corrupt changed length %d -> %d", len(orig), len(recv))
	}
	if !bytes.Equal(msg, orig) {
		t.Fatal("corrupt modified the caller's buffer")
	}
	if l.Counters()[Corrupt] == 0 {
		t.Fatal("corrupt counter did not fire")
	}
}

func TestTruncateWritesPrefixAndCloses(t *testing.T) {
	l := NewLink(7)
	l.Set(Fault{Class: Truncate})
	a, b := pipe(t, l)
	got := drain(b)
	msg := bytes.Repeat([]byte("z"), 64)
	n, err := a.Write(msg)
	if !errors.Is(err, ErrInjected) {
		t.Fatalf("truncate write err = %v, want ErrInjected", err)
	}
	recv := <-got
	if len(recv) != n {
		t.Fatalf("peer got %d bytes, writer reported %d", len(recv), n)
	}
	if len(recv) >= len(msg) {
		t.Fatalf("truncate delivered the whole %d-byte message", len(msg))
	}
	if _, err := a.Write([]byte("more")); err == nil {
		t.Fatal("conn still writable after truncate")
	}
}

func TestSlowLorisTrickles(t *testing.T) {
	l := NewLink(1)
	l.Set(Fault{Class: SlowLoris, Chunk: 4, Stall: 10 * time.Millisecond})
	a, b := pipe(t, l)
	got := drain(b)
	msg := bytes.Repeat([]byte("q"), 40) // 10 chunks -> >= 9 stalls
	start := time.Now()
	if _, err := a.Write(msg); err != nil {
		t.Fatalf("write: %v", err)
	}
	a.Close()
	if !bytes.Equal(<-got, msg) {
		t.Fatal("slow loris altered bytes")
	}
	if el := time.Since(start); el < 80*time.Millisecond {
		t.Fatalf("slow loris took only %v for 10 chunks", el)
	}
}

func TestThrottlePacesWrites(t *testing.T) {
	l := NewLink(1)
	l.Set(Fault{Class: Throttle, BytesPerSec: 1000})
	a, b := pipe(t, l)
	got := drain(b)
	msg := bytes.Repeat([]byte("r"), 200) // 200B at 1000B/s ~ 200ms
	start := time.Now()
	if _, err := a.Write(msg); err != nil {
		t.Fatalf("write: %v", err)
	}
	a.Close()
	if !bytes.Equal(<-got, msg) {
		t.Fatal("throttle altered bytes")
	}
	if el := time.Since(start); el < 100*time.Millisecond {
		t.Fatalf("throttle wrote 200B at 1000B/s in %v", el)
	}
}

// TestDeterministicReplay: two links with the same seed make identical
// probabilistic decisions over the same operation sequence.
func TestDeterministicReplay(t *testing.T) {
	run := func(seed int64) []byte {
		l := NewLink(seed)
		l.Set(Fault{Class: Corrupt, Prob: 0.7})
		a, b := pipe(t, l)
		got := drain(b)
		for i := 0; i < 20; i++ {
			a.Write([]byte("deterministic payload 0123456789"))
		}
		a.Close()
		return <-got
	}
	first, second := run(99), run(99)
	if !bytes.Equal(first, second) {
		t.Fatal("same seed produced different corruption")
	}
	if other := run(100); bytes.Equal(first, other) {
		t.Fatal("different seed produced identical corruption (suspicious)")
	}
}

func TestCorruptBytesDeterministic(t *testing.T) {
	in := []byte("some frame bytes to damage")
	a := CorruptBytes(5, in, 3)
	b := CorruptBytes(5, in, 3)
	if !bytes.Equal(a, b) {
		t.Fatal("CorruptBytes not deterministic for same seed")
	}
	if bytes.Equal(a, in) {
		t.Fatal("CorruptBytes returned clean bytes")
	}
	if string(in) != "some frame bytes to damage" {
		t.Fatal("CorruptBytes modified its input")
	}
}

func TestDialerWrapsAndPartitions(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go io.Copy(c, c) // echo
		}
	}()

	l := NewLink(1)
	dial := l.Dialer(nil)
	c, err := dial(ln.Addr().String(), time.Second)
	if err != nil {
		t.Fatalf("dial: %v", err)
	}
	defer c.Close()
	if _, ok := c.(*Conn); !ok {
		t.Fatalf("dialer returned %T, want *chaos.Conn", c)
	}
	c.Write([]byte("ping"))
	buf := make([]byte, 4)
	if _, err := io.ReadFull(c, buf); err != nil || string(buf) != "ping" {
		t.Fatalf("echo through dialer: %q, %v", buf, err)
	}

	l.Set(Fault{Class: Partition})
	if _, err := dial(ln.Addr().String(), time.Second); !errors.Is(err, ErrInjected) {
		t.Fatalf("dial during partition: %v, want ErrInjected", err)
	}
}

func TestProxyRelaysAndInjects(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	defer ln.Close()
	go func() {
		for {
			c, err := ln.Accept()
			if err != nil {
				return
			}
			go io.Copy(c, c)
		}
	}()

	l := NewLink(3)
	p, err := NewProxy("127.0.0.1:0", ln.Addr().String(), l)
	if err != nil {
		t.Fatal(err)
	}
	defer p.Close()

	c, err := net.Dial("tcp", p.Addr())
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	c.Write([]byte("ping"))
	buf := make([]byte, 4)
	if _, err := io.ReadFull(c, buf); err != nil || string(buf) != "ping" {
		t.Fatalf("echo through proxy: %q, %v", buf, err)
	}

	// A reset storm must kill the relayed conn end to end.
	l.Set(Fault{Class: Reset})
	c.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, err := c.Read(buf); err == nil {
		t.Fatal("relayed conn survived reset storm")
	}
	if l.Counters()[Reset] == 0 {
		t.Fatal("reset counter did not fire through proxy")
	}
}

func TestRunSchedule(t *testing.T) {
	l := NewLink(1)
	ws := []Window{
		{After: 0, For: 40 * time.Millisecond, Fault: Fault{Class: Partition}},
		{After: 60 * time.Millisecond, Fault: Fault{Class: Corrupt, Prob: 0.5}},
	}
	done := make(chan struct{})
	go func() {
		RunSchedule(context.Background(), l, ws)
		close(done)
	}()
	time.Sleep(15 * time.Millisecond)
	if f := l.Fault(); f.Class != Partition {
		t.Fatalf("at 15ms fault is %v, want partition", f.Class)
	}
	time.Sleep(35 * time.Millisecond) // t=50ms: window 1 cleared, window 2 not yet
	if f := l.Fault(); f.Class != None {
		t.Fatalf("at 50ms fault is %v, want none", f.Class)
	}
	<-done
	if f := l.Fault(); f.Class != None {
		t.Fatalf("after schedule fault is %v, want none (deferred clear)", f.Class)
	}
}

func TestRunScheduleCancel(t *testing.T) {
	l := NewLink(1)
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan struct{})
	go func() {
		RunSchedule(ctx, l, []Window{{After: time.Hour, Fault: Fault{Class: Partition}}})
		close(done)
	}()
	cancel()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("RunSchedule did not stop on cancel")
	}
}

func TestParseSchedule(t *testing.T) {
	ws, err := ParseSchedule("2s+3s:partition, 8s:latency=150ms~50ms, 12s+1s:corrupt=0.5, 14s:slowloris=3/20ms, 16s:throttle=4096, 18s:reset, 20s:none")
	if err != nil {
		t.Fatal(err)
	}
	if len(ws) != 7 {
		t.Fatalf("parsed %d windows, want 7", len(ws))
	}
	if ws[0].Fault.Class != Partition || ws[0].After != 2*time.Second || ws[0].For != 3*time.Second {
		t.Fatalf("window 0 = %+v", ws[0])
	}
	if ws[1].Fault.Class != Latency || ws[1].Fault.Delay != 150*time.Millisecond || ws[1].Fault.Jitter != 50*time.Millisecond {
		t.Fatalf("window 1 = %+v", ws[1])
	}
	if ws[2].Fault.Class != Corrupt || ws[2].Fault.Prob != 0.5 {
		t.Fatalf("window 2 = %+v", ws[2])
	}
	if ws[3].Fault.Class != SlowLoris || ws[3].Fault.Chunk != 3 || ws[3].Fault.Stall != 20*time.Millisecond {
		t.Fatalf("window 3 = %+v", ws[3])
	}
	if ws[4].Fault.Class != Throttle || ws[4].Fault.BytesPerSec != 4096 {
		t.Fatalf("window 4 = %+v", ws[4])
	}
	if ws[5].Fault.Class != Reset || ws[6].Fault.Class != None {
		t.Fatalf("windows 5/6 = %+v %+v", ws[5], ws[6])
	}

	for _, bad := range []string{
		"", "nonsense", "1s:latency", "1s:warp", "2s:partition, 1s:reset", "x:partition", "1s+y:reset",
		"1s:corrupt=1.5", "1s:throttle=-3", "1s:slowloris=3",
	} {
		if _, err := ParseSchedule(bad); err == nil {
			t.Errorf("ParseSchedule(%q) accepted", bad)
		}
	}
}

func TestFormatCounters(t *testing.T) {
	l := NewLink(1)
	if got := FormatCounters(l.Counters()); got != "none" {
		t.Fatalf("fresh counters = %q", got)
	}
	l.counts[Partition].Add(3)
	l.counts[Reset].Add(1)
	if got := FormatCounters(l.Counters()); got != "partition=3 reset=1" {
		t.Fatalf("counters = %q", got)
	}
}
