package chaos

import (
	"context"
	"fmt"
	"strconv"
	"strings"
	"time"
)

// Window is one step of a fault schedule: at After from schedule start,
// install Fault; For later (0 = until the next window, or until the
// schedule ends), clear it.
type Window struct {
	After time.Duration
	For   time.Duration
	Fault Fault
}

// RunSchedule plays ws against link in real time, clearing the link when
// every window has elapsed or ctx is canceled. Windows must be sorted by
// After; a window whose For overlaps the next window simply gets replaced
// when the next one starts (one active fault per link).
func RunSchedule(ctx context.Context, link *Link, ws []Window) {
	start := time.Now()
	defer link.Clear()
	for i, w := range ws {
		if !sleepUntil(ctx, start.Add(w.After)) {
			return
		}
		link.Set(w.Fault)
		if w.For > 0 {
			end := start.Add(w.After + w.For)
			// A later window may preempt this one's clear.
			if i+1 < len(ws) && ws[i+1].After < w.After+w.For {
				continue
			}
			if !sleepUntil(ctx, end) {
				return
			}
			link.Clear()
		}
	}
}

func sleepUntil(ctx context.Context, t time.Time) bool {
	d := time.Until(t)
	if d <= 0 {
		return ctx.Err() == nil
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return true
	case <-ctx.Done():
		return false
	}
}

// ParseSchedule parses the cmd/cpmchaos schedule DSL: comma-separated
// windows of the form
//
//	AFTER[+DUR]:CLASS[=ARGS]
//
// where AFTER and DUR are Go durations and CLASS is one of none (clear),
// latency=DELAY[~JITTER], throttle=BYTES_PER_SEC, partition, reset[=PROB],
// slowloris=CHUNK/STALL, corrupt[=PROB], truncate[=PROB]. Example:
//
//	2s+3s:partition, 8s:latency=150ms~50ms, 12s+1s:corrupt=0.5
func ParseSchedule(s string) ([]Window, error) {
	var out []Window
	last := time.Duration(-1)
	for _, part := range strings.Split(s, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		timing, spec, ok := strings.Cut(part, ":")
		if !ok {
			return nil, fmt.Errorf("chaos: window %q: want AFTER[+DUR]:CLASS[=ARGS]", part)
		}
		var w Window
		afterStr, durStr, hasDur := strings.Cut(timing, "+")
		after, err := time.ParseDuration(strings.TrimSpace(afterStr))
		if err != nil {
			return nil, fmt.Errorf("chaos: window %q: bad offset: %v", part, err)
		}
		w.After = after
		if hasDur {
			d, err := time.ParseDuration(strings.TrimSpace(durStr))
			if err != nil {
				return nil, fmt.Errorf("chaos: window %q: bad duration: %v", part, err)
			}
			w.For = d
		}
		if w.After <= last {
			return nil, fmt.Errorf("chaos: window %q: offsets must be strictly increasing", part)
		}
		last = w.After
		if w.Fault, err = ParseFault(spec); err != nil {
			return nil, fmt.Errorf("chaos: window %q: %v", part, err)
		}
		out = append(out, w)
	}
	if len(out) == 0 {
		return nil, fmt.Errorf("chaos: empty schedule")
	}
	return out, nil
}

// ParseFault parses one CLASS[=ARGS] fault spec of the schedule DSL.
func ParseFault(spec string) (Fault, error) {
	name, args, hasArgs := strings.Cut(strings.TrimSpace(spec), "=")
	name = strings.TrimSpace(name)
	args = strings.TrimSpace(args)
	var f Fault
	switch name {
	case "none", "clear", "heal":
		return Fault{}, nil
	case "latency":
		f.Class = Latency
		if !hasArgs {
			return f, fmt.Errorf("latency needs =DELAY[~JITTER]")
		}
		base, jit, hasJit := strings.Cut(args, "~")
		d, err := time.ParseDuration(strings.TrimSpace(base))
		if err != nil {
			return f, fmt.Errorf("bad latency delay: %v", err)
		}
		f.Delay = d
		if hasJit {
			j, err := time.ParseDuration(strings.TrimSpace(jit))
			if err != nil {
				return f, fmt.Errorf("bad latency jitter: %v", err)
			}
			f.Jitter = j
		}
		return f, nil
	case "throttle":
		f.Class = Throttle
		if !hasArgs {
			return f, fmt.Errorf("throttle needs =BYTES_PER_SEC")
		}
		n, err := strconv.Atoi(args)
		if err != nil || n <= 0 {
			return f, fmt.Errorf("bad throttle rate %q", args)
		}
		f.BytesPerSec = n
		return f, nil
	case "partition":
		f.Class = Partition
		return f, nil
	case "reset", "corrupt", "truncate":
		switch name {
		case "reset":
			f.Class = Reset
		case "corrupt":
			f.Class = Corrupt
		case "truncate":
			f.Class = Truncate
		}
		if hasArgs {
			p, err := strconv.ParseFloat(args, 64)
			if err != nil || p < 0 || p > 1 {
				return f, fmt.Errorf("bad %s probability %q", name, args)
			}
			f.Prob = p
		}
		return f, nil
	case "slowloris":
		f.Class = SlowLoris
		if !hasArgs {
			return f, fmt.Errorf("slowloris needs =CHUNK/STALL")
		}
		chunkStr, stallStr, ok := strings.Cut(args, "/")
		if !ok {
			return f, fmt.Errorf("slowloris needs =CHUNK/STALL")
		}
		n, err := strconv.Atoi(strings.TrimSpace(chunkStr))
		if err != nil || n < 1 {
			return f, fmt.Errorf("bad slowloris chunk %q", chunkStr)
		}
		f.Chunk = n
		d, err := time.ParseDuration(strings.TrimSpace(stallStr))
		if err != nil {
			return f, fmt.Errorf("bad slowloris stall: %v", err)
		}
		f.Stall = d
		return f, nil
	default:
		return f, fmt.Errorf("unknown fault class %q", name)
	}
}

// FormatCounters renders a Link's counters as "class=N" pairs for logs
// and the cpmchaos report, omitting classes that never fired.
func FormatCounters(counts [NumClasses]int64) string {
	var b strings.Builder
	for c := Class(0); c < numClasses; c++ {
		if counts[c] == 0 {
			continue
		}
		if b.Len() > 0 {
			b.WriteByte(' ')
		}
		fmt.Fprintf(&b, "%s=%d", c, counts[c])
	}
	if b.Len() == 0 {
		return "none"
	}
	return b.String()
}
