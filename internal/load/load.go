// Package load is the open-loop load driver of the CPM serving layer: it
// pushes Poisson-arrival ingest/register/tick traffic from N concurrent
// client connections against a running cpmserver and records end-to-end
// latency histograms per operation type — including the subscribe-to-diff
// delivery latency of the push pipeline — in the coordinated-omission-free
// way a closed-loop benchmark cannot.
//
// # Open loop
//
// A closed-loop driver issues the next request when the previous one
// returns, so a slow server quietly throttles its own load and the
// recorded latencies stay flattering. This driver instead schedules
// arrivals from a Poisson process at Options.Rate and measures every
// operation from its *scheduled* arrival time to completion: when the
// server stalls, queued operations keep accumulating latency exactly as
// queued users would, and the p99/p999 columns show it.
//
// # Delivery probe
//
// Delivery latency is measured end to end through the push pipeline: a
// dedicated range query in an otherwise-quiet corner of the workspace, a
// subscription to just that query, and a probe object that deliver-ops
// toggle into and out of the range. Every toggle causes exactly one diff
// event on the probe stream; the time from the toggle's scheduled arrival
// to the event's delivery on the subscription channel is the
// subscribe-to-diff latency (tick processing + hub publish + wire encode +
// TCP + client dispatch). Bulk traffic stays out of the probe region, so
// the probe stream carries nothing else; gap markers (which under
// overload announce shed events) clear the probe's in-flight queue rather
// than mis-pairing toggles with later events.
//
// cmd/cpmload is the command-line front end; Result.Report emits the
// bench.Report shape, so cmd/benchdiff gates the percentiles like any
// other trajectory metric.
package load

import (
	"fmt"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cpm"
	"cpm/client"
	"cpm/internal/bench"
	"cpm/internal/metrics"
	"cpm/internal/tracing"
)

// Operation mix: cumulative probability thresholds of the scheduler's op
// draw. Ingest dominates (the production traffic shape), deliver-ops pace
// the probe stream.
const (
	mixIngest   = 0.50 // batched object-move Tick (remote ingest)
	mixTick     = 0.65 // empty-batch Tick (pure cycle + RTT)
	mixRegister = 0.80 // ephemeral query install (+ untimed remove)
	// remainder: deliver probe toggles
)

// The probe geometry: a range query in the lower-left corner, bulk
// traffic confined to a region that can never intersect it.
var (
	probeCenter = cpm.Point{X: 0.05, Y: 0.05}
	probeIn     = cpm.Point{X: 0.04, Y: 0.04}
	probeOut    = cpm.Point{X: 0.05, Y: 0.5}
)

const (
	probeRadius = 0.08
	bulkLo      = 0.25
	bulkSpan    = 0.70
)

// Options configure a load run. The zero value of every field gets a
// sensible default.
type Options struct {
	// Addr is the cpmserver address to drive ("host:port"). Required.
	Addr string
	// Conns is the number of concurrent client connections (default 4).
	// Connection 0 additionally owns the delivery probe.
	Conns int
	// Rate is the total scheduled arrival rate in operations per second
	// across all connections (default 200).
	Rate float64
	// Duration bounds the scheduling window (default 5s); queued
	// operations still drain (and are measured) after it ends.
	Duration time.Duration
	// MaxOps, when positive, additionally caps the number of scheduled
	// operations.
	MaxOps int64
	// Objects is the bootstrapped object population (default 2000).
	Objects int
	// Queries is the number of standing k-NN queries registered before
	// the run (default 50).
	Queries int
	// K is the standing queries' neighbor count (default 8).
	K int
	// Batch is the number of object moves per ingest operation
	// (default 16).
	Batch int
	// Seed seeds the workload and the arrival process (default 1).
	Seed int64
	// Trace stamps every driven operation with a fresh trace context
	// before it is sent — the server (and, behind a coordinator, every
	// worker) records spans under that id — and keeps each op's kind,
	// trace id and latency in Result.Traced, so cmd/cpmload -trace can
	// print the slowest ops with their server-side hop and phase
	// breakdowns (fetched into Result.ServerTraces at the end of the
	// run). Degrades silently against a pre-extension server.
	Trace bool
	// Logf, when set, receives progress diagnostics.
	Logf func(format string, args ...any)
}

func (o *Options) defaults() {
	if o.Conns <= 0 {
		o.Conns = 4
	}
	if o.Rate <= 0 {
		o.Rate = 200
	}
	if o.Duration <= 0 {
		o.Duration = 5 * time.Second
	}
	if o.Objects <= 0 {
		o.Objects = 2000
	}
	if o.Queries <= 0 {
		o.Queries = 50
	}
	if o.K <= 0 {
		o.K = 8
	}
	if o.Batch <= 0 {
		o.Batch = 16
	}
	if o.Seed == 0 {
		o.Seed = 1
	}
}

// Result holds one run's latency distributions, one histogram per
// operation type (nanoseconds from scheduled arrival to completion).
type Result struct {
	Opts    Options
	Elapsed time.Duration

	Ingest   metrics.Histogram
	Tick     metrics.Histogram
	Register metrics.Histogram
	Deliver  metrics.Histogram

	// Errors counts failed operations (not recorded in the histograms);
	// Shed counts operations dropped because a connection's queue was
	// full (sustained overload); Gaps counts probe-stream gap markers.
	Errors int64
	Shed   int64
	Gaps   uint64

	// Traced holds every traced operation, slowest first (Options.Trace);
	// ServerTraces is the server's flight recorder, fetched once at the
	// end of the run — correlate the two by trace id.
	Traced       []TracedOp
	ServerTraces []tracing.RecordedTrace
}

// TracedOp is one operation the run stamped with a trace context: its
// kind, the trace id the server recorded under, and the client-observed
// latency from scheduled arrival to completion (queueing included — the
// open-loop measurement; the server-side trace covers service time only,
// so the difference between the two is queueing and the network).
type TracedOp struct {
	Kind    string
	TraceID uint64
	DurNs   int64
}

// Report renders the run as a bench.Report: one method row per operation
// type with the latency-percentile columns set, so cmd/benchdiff can diff
// and gate it against a baseline.
func (r *Result) Report() bench.Report {
	rep := bench.Report{
		Seed:       r.Opts.Seed,
		Timestamps: int(r.Opts.Duration / time.Second),
	}
	rows := []struct {
		name string
		h    *metrics.Histogram
	}{
		{"load-ingest", &r.Ingest},
		{"load-tick", &r.Tick},
		{"load-register", &r.Register},
		{"load-deliver", &r.Deliver},
	}
	for _, row := range rows {
		n := row.h.Count()
		m := bench.MethodResult{
			Method:  row.name,
			TotalNs: row.h.SumNs(),
			Ops:     n,
			P50Ns:   row.h.Quantile(0.50),
			P99Ns:   row.h.Quantile(0.99),
			P999Ns:  row.h.Quantile(0.999),
			Queries: r.Opts.Queries,
		}
		if n > 0 {
			m.NsPerCycle = m.TotalNs / n
		}
		rep.Methods = append(rep.Methods, m)
	}
	return rep
}

// op is one scheduled operation.
type opKind uint8

const (
	opIngest opKind = iota
	opTick
	opRegister
	opDeliver
)

type op struct {
	kind opKind
	at   time.Time // scheduled arrival; latency is measured from here
}

// worker is one connection's sequential executor: it owns a partition of
// the object population (so concurrent ingest never races on an object's
// position) and drains its queue in order.
type worker struct {
	c    *client.Client
	ch   chan op
	rng  *rand.Rand
	objs []cpm.ObjectID
	pos  []cpm.Point
	next int // round-robin cursor over objs

	batch  []cpm.Update // reused ingest batch
	traced []TracedOp   // this connection's traced ops (Options.Trace)
}

// ingest moves the next batchSize owned objects to fresh bulk positions
// in one Tick.
func (w *worker) ingest(batchSize int) error {
	w.batch = w.batch[:0]
	if len(w.objs) == 0 {
		return w.c.Tick(cpm.Batch{})
	}
	for j := 0; j < batchSize; j++ {
		i := w.next % len(w.objs)
		w.next++
		np := bulkPoint(w.rng)
		w.batch = append(w.batch, cpm.MoveUpdate(w.objs[i], w.pos[i], np))
		w.pos[i] = np
	}
	return w.c.Tick(cpm.Batch{Objects: w.batch})
}

// Run drives one open-loop load run against a server and collects the
// per-op latency distributions.
func Run(o Options) (*Result, error) {
	o.defaults()
	if o.Addr == "" {
		return nil, fmt.Errorf("load: Addr is required")
	}
	logf := o.Logf
	if logf == nil {
		logf = func(string, ...any) {}
	}
	res := &Result{Opts: o}
	rng := rand.New(rand.NewSource(o.Seed))

	// Dial the fleet.
	workers := make([]*worker, o.Conns)
	for i := range workers {
		c, err := client.Dial(o.Addr, client.Options{Trace: o.Trace})
		if err != nil {
			for _, w := range workers[:i] {
				w.c.Close()
			}
			return nil, fmt.Errorf("load: dial conn %d: %w", i, err)
		}
		workers[i] = &worker{
			c:   c,
			ch:  make(chan op, 8192),
			rng: rand.New(rand.NewSource(o.Seed + int64(i) + 1)),
		}
		defer c.Close()
	}

	// Bootstrap: the bulk population, partitioned across workers, plus
	// the probe object parked outside the probe range.
	probeObj := cpm.ObjectID(o.Objects)
	objs := make(map[cpm.ObjectID]cpm.Point, o.Objects+1)
	for i := 0; i < o.Objects; i++ {
		id := cpm.ObjectID(i)
		p := bulkPoint(rng)
		objs[id] = p
		w := workers[i%len(workers)]
		w.objs = append(w.objs, id)
		w.pos = append(w.pos, p)
	}
	objs[probeObj] = probeOut
	if err := workers[0].c.Bootstrap(objs); err != nil {
		return nil, fmt.Errorf("load: bootstrap: %w", err)
	}

	// Standing queries in the bulk region; the probe range query after
	// them. Ephemeral register-op queries use ids past the probe's, one
	// reusable id per connection.
	for q := 0; q < o.Queries; q++ {
		if err := workers[0].c.RegisterQuery(cpm.QueryID(q), bulkPoint(rng), o.K); err != nil {
			return nil, fmt.Errorf("load: register standing q%d: %w", q, err)
		}
	}
	probeQuery := cpm.QueryID(o.Queries)
	if err := workers[0].c.RegisterRangeQuery(probeQuery, probeCenter, probeRadius); err != nil {
		return nil, fmt.Errorf("load: register probe query: %w", err)
	}
	sub, err := workers[0].c.Subscribe(probeQuery)
	if err != nil {
		return nil, fmt.Errorf("load: subscribe probe: %w", err)
	}

	// The probe pairing queue: deliver-ops push their scheduled time
	// before ticking the toggle; the subscriber pops one per probe diff.
	// A gap marker means events were shed — drain the queue instead of
	// pairing stale toggles with later events.
	probeTimes := make(chan time.Time, 8192)
	var subWG sync.WaitGroup
	subWG.Add(1)
	go func() {
		defer subWG.Done()
		for ev := range sub.Events() {
			switch ev.Type {
			case client.EventGap:
				atomic.AddUint64(&res.Gaps, 1)
			drain:
				for {
					select {
					case <-probeTimes:
					default:
						break drain
					}
				}
			case client.EventDiff:
				if !probeDiff(ev.ResultDiff, probeObj) {
					continue
				}
				select {
				case at := <-probeTimes:
					res.Deliver.Observe(time.Since(at))
				default:
					// Unpaired event (first diff after a gap drain):
					// nothing sane to measure against.
				}
			}
		}
	}()

	// Executors: one per connection, sequential over its queue.
	var execWG sync.WaitGroup
	for i, w := range workers {
		execWG.Add(1)
		go func(i int, w *worker) {
			defer execWG.Done()
			ephemeralID := probeQuery + 1 + cpm.QueryID(i)
			probePos := probeOut
			for job := range w.ch {
				// Stamp the op with a fresh trace id before it goes out;
				// the executor is sequential over its connection, so the
				// stamp can only pair with this op's request. The rng is
				// executor-owned here, like the register-op draws.
				var tid uint64
				if o.Trace {
					tid = w.rng.Uint64() | 1 // never 0: 0 means "no trace"
					w.c.SetTrace(tid, 0)
				}
				var err error
				switch job.kind {
				case opIngest:
					if err = w.ingest(o.Batch); err == nil {
						res.Ingest.Observe(time.Since(job.at))
					}
				case opTick:
					if err = w.c.Tick(cpm.Batch{}); err == nil {
						res.Tick.Observe(time.Since(job.at))
					}
				case opRegister:
					if err = w.c.RegisterQuery(ephemeralID, bulkPoint(w.rng), o.K); err == nil {
						res.Register.Observe(time.Since(job.at))
						if rmErr := w.c.RemoveQuery(ephemeralID); rmErr != nil {
							atomic.AddInt64(&res.Errors, 1)
						}
					}
				case opDeliver: // routed to worker 0 only
					to := probeIn
					if probePos == probeIn {
						to = probeOut
					}
					// Enqueue the scheduled time before the tick, so the
					// pushed event can never beat its own timestamp.
					select {
					case probeTimes <- job.at:
					default:
						atomic.AddInt64(&res.Shed, 1)
					}
					if err = w.c.Tick(cpm.Batch{Objects: []cpm.Update{
						cpm.MoveUpdate(probeObj, probePos, to),
					}}); err == nil {
						probePos = to
					}
				}
				if err != nil {
					atomic.AddInt64(&res.Errors, 1)
				} else if tid != 0 {
					w.traced = append(w.traced, TracedOp{
						Kind: opName(job.kind), TraceID: tid,
						DurNs: time.Since(job.at).Nanoseconds(),
					})
				}
			}
		}(i, w)
	}

	// The open-loop scheduler: Poisson arrivals at the aggregate rate,
	// each op stamped with its scheduled time. A full worker queue sheds
	// the op (counted) instead of blocking the arrival process.
	start := time.Now()
	deadline := start.Add(o.Duration)
	arrival := start
	var scheduled int64
	rr := 0
	for {
		if o.MaxOps > 0 && scheduled >= o.MaxOps {
			break
		}
		arrival = arrival.Add(time.Duration(rng.ExpFloat64() / o.Rate * float64(time.Second)))
		if arrival.After(deadline) {
			break
		}
		if d := time.Until(arrival); d > 0 {
			time.Sleep(d)
		}
		var kind opKind
		switch u := rng.Float64(); {
		case u < mixIngest:
			kind = opIngest
		case u < mixTick:
			kind = opTick
		case u < mixRegister:
			kind = opRegister
		default:
			kind = opDeliver
		}
		w := workers[0]
		if kind != opDeliver {
			w = workers[rr%len(workers)]
			rr++
		}
		select {
		case w.ch <- op{kind, arrival}:
		default:
			atomic.AddInt64(&res.Shed, 1)
		}
		scheduled++
	}

	// Drain: close the queues, let queued ops finish (still measured
	// from their scheduled times), then stop the probe stream.
	for _, w := range workers {
		close(w.ch)
	}
	execWG.Wait()
	res.Elapsed = time.Since(start)
	sub.Close()
	subWG.Wait()
	res.Gaps = sub.Gaps() // authoritative: counts gaps the drain loop saw too

	if o.Trace {
		for _, w := range workers {
			res.Traced = append(res.Traced, w.traced...)
		}
		sort.Slice(res.Traced, func(i, j int) bool { return res.Traced[i].DurNs > res.Traced[j].DurNs })
		// Pull the server's flight recorder for hop/phase correlation.
		// A server without tracing enabled answers an empty list.
		if doc, err := workers[0].c.ServerTraces(); err == nil {
			if traces, err := tracing.ParseTraces(doc); err == nil {
				res.ServerTraces = traces
			}
		}
	}

	logf("load: %d scheduled over %v: ingest=%d tick=%d register=%d deliver=%d errors=%d shed=%d gaps=%d",
		scheduled, res.Elapsed.Round(time.Millisecond),
		res.Ingest.Count(), res.Tick.Count(), res.Register.Count(), res.Deliver.Count(),
		res.Errors, res.Shed, res.Gaps)
	return res, nil
}

// opName renders an op kind for the traced-op report, matching the
// summary table's row names.
func opName(k opKind) string {
	switch k {
	case opIngest:
		return "ingest"
	case opTick:
		return "tick"
	case opRegister:
		return "register"
	default:
		return "deliver"
	}
}

// probeDiff reports whether a diff is a probe toggle: the probe object
// entering or leaving the probe range.
func probeDiff(d cpm.ResultDiff, id cpm.ObjectID) bool {
	if d.Kind != cpm.DiffUpdate {
		return false
	}
	for _, n := range d.Entered {
		if n.ID == id {
			return true
		}
	}
	for _, x := range d.Exited {
		if x == id {
			return true
		}
	}
	return false
}

// bulkPoint draws a position in the bulk region (never inside the probe
// range).
func bulkPoint(rng *rand.Rand) cpm.Point {
	return cpm.Point{X: bulkLo + rng.Float64()*bulkSpan, Y: bulkLo + rng.Float64()*bulkSpan}
}
