package load

import (
	"encoding/json"
	"net"
	"testing"
	"time"

	"cpm"
	"cpm/internal/bench"
	"cpm/internal/server"
)

// startServer brings up an in-process server on a loopback port.
func startServer(t *testing.T) string {
	t.Helper()
	mon := cpm.NewMonitor(cpm.Options{GridSize: 32})
	srv := server.New(mon, server.Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() {
		srv.Close()
		mon.Close()
	})
	return ln.Addr().String()
}

// TestLoopbackSmoke runs a short open-loop burst against an in-process
// server and checks every op type completed and produced a well-formed
// report.
func TestLoopbackSmoke(t *testing.T) {
	addr := startServer(t)
	res, err := Run(Options{
		Addr:     addr,
		Conns:    2,
		Rate:     400,
		Duration: 1200 * time.Millisecond,
		Objects:  300,
		Queries:  10,
		Batch:    4,
		Seed:     7,
		Logf:     t.Logf,
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Errors > 0 {
		t.Errorf("load run recorded %d op errors", res.Errors)
	}
	counts := map[string]int64{
		"ingest":   res.Ingest.Count(),
		"tick":     res.Tick.Count(),
		"register": res.Register.Count(),
		"deliver":  res.Deliver.Count(),
	}
	for name, n := range counts {
		if n == 0 {
			t.Errorf("no %s operations completed", name)
		}
	}

	rep := res.Report()
	if len(rep.Methods) != 4 {
		t.Fatalf("report has %d method rows, want 4", len(rep.Methods))
	}
	for _, m := range rep.Methods {
		if m.Ops == 0 {
			t.Errorf("%s: zero ops in report", m.Method)
			continue
		}
		if m.P50Ns <= 0 || m.P99Ns < m.P50Ns || m.P999Ns < m.P99Ns {
			t.Errorf("%s: implausible percentiles p50=%d p99=%d p999=%d",
				m.Method, m.P50Ns, m.P99Ns, m.P999Ns)
		}
		if m.TotalNs <= 0 || m.NsPerCycle <= 0 {
			t.Errorf("%s: missing totals: total_ns=%d ns_per_op=%d", m.Method, m.TotalNs, m.NsPerCycle)
		}
	}

	// The report must survive the BENCH_*.json round trip benchdiff reads.
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	var back bench.Report
	if err := json.Unmarshal(data, &back); err != nil {
		t.Fatal(err)
	}
	if len(back.Methods) != 4 || back.Methods[0].P99Ns != rep.Methods[0].P99Ns {
		t.Fatalf("report did not round-trip through JSON: %+v", back)
	}

	// And Compare must gate its latency columns: doubling p99 regresses.
	worse := rep
	worse.Methods = append([]bench.MethodResult(nil), rep.Methods...)
	for i := range worse.Methods {
		worse.Methods[i].P99Ns *= 100
		worse.Methods[i].P999Ns *= 100
	}
	cmp := bench.Compare(rep, worse, 0.25)
	regressed := false
	for _, d := range cmp.Deltas {
		if d.Regressed && d.Metric == "p99_ns" {
			regressed = true
		}
	}
	if !regressed {
		t.Errorf("100x p99 latency did not trip the gate; deltas: %+v", cmp.Deltas)
	}
}

// TestRunRequiresAddr pins the one required option.
func TestRunRequiresAddr(t *testing.T) {
	if _, err := Run(Options{}); err == nil {
		t.Fatal("Run without Addr succeeded")
	}
}
