package generator

import (
	"math"
	"testing"

	"cpm/internal/geom"
	"cpm/internal/model"
	"cpm/internal/network"
)

func testNetwork(t *testing.T) *network.Graph {
	t.Helper()
	g, err := network.Generate(network.GenOptions{Width: 12, Height: 12, Seed: 5})
	if err != nil {
		t.Fatal(err)
	}
	return g
}

func testWorkload(t *testing.T, p Params) *Workload {
	t.Helper()
	w, err := New(testNetwork(t), p)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

func TestSpeedClasses(t *testing.T) {
	if Slow.PerTimestamp() != 2.0/250 {
		t.Errorf("slow = %v", Slow.PerTimestamp())
	}
	if Medium.PerTimestamp() != 5*Slow.PerTimestamp() {
		t.Errorf("medium = %v", Medium.PerTimestamp())
	}
	if Fast.PerTimestamp() != 25*Slow.PerTimestamp() {
		t.Errorf("fast = %v", Fast.PerTimestamp())
	}
	if Slow.String() != "slow" || Medium.String() != "medium" || Fast.String() != "fast" {
		t.Error("speed names wrong")
	}
}

func TestDefaults(t *testing.T) {
	p := Defaults(1)
	if p.N != 100_000 || p.NumQueries != 5_000 {
		t.Errorf("paper defaults wrong: %+v", p)
	}
	if p.ObjectAgility != 0.5 || p.QueryAgility != 0.3 {
		t.Errorf("agility defaults wrong: %+v", p)
	}
	small := Defaults(0.01)
	if small.N != 1000 || small.NumQueries != 50 {
		t.Errorf("scaled defaults wrong: %+v", small)
	}
	tiny := Defaults(-1) // treated as scale 1
	if tiny.N != 100_000 {
		t.Errorf("negative scale not defaulted: %+v", tiny)
	}
}

func TestValidation(t *testing.T) {
	g := testNetwork(t)
	bad := []Params{
		{N: 0, NumQueries: 1},
		{N: 10, NumQueries: -1},
		{N: 10, ObjectAgility: 1.5},
		{N: 10, QueryAgility: -0.1},
	}
	for _, p := range bad {
		if _, err := New(g, p); err == nil {
			t.Errorf("params %+v accepted", p)
		}
	}
	// Degenerate networks rejected.
	lone := network.NewGraph(1)
	lone.AddNode(geom.Point{X: 0.5, Y: 0.5})
	if _, err := New(lone, Params{N: 5}); err == nil {
		t.Error("single-node network accepted")
	}
	split := network.NewGraph(2)
	split.AddNode(geom.Point{X: 0.1, Y: 0.1})
	split.AddNode(geom.Point{X: 0.9, Y: 0.9})
	if _, err := New(split, Params{N: 5}); err == nil {
		t.Error("disconnected network accepted")
	}
}

func TestStreamConsistency(t *testing.T) {
	p := Params{N: 300, NumQueries: 20, ObjectSpeed: Fast, QuerySpeed: Medium,
		ObjectAgility: 0.6, QueryAgility: 0.4, Seed: 9}
	w := testWorkload(t, p)
	pos := w.InitialObjects()
	if len(pos) != 300 {
		t.Fatalf("initial population %d", len(pos))
	}
	if len(w.InitialQueries()) != 20 {
		t.Fatalf("initial queries %d", len(w.InitialQueries()))
	}
	unit := geom.Rect{Lo: geom.Point{X: 0, Y: 0}, Hi: geom.Point{X: 1, Y: 1}}
	for ts := 0; ts < 50; ts++ {
		b := w.Advance()
		seen := map[model.ObjectID]int{}
		for _, u := range b.Objects {
			seen[u.ID]++
			switch u.Kind {
			case model.Move:
				old, ok := pos[u.ID]
				if !ok {
					t.Fatalf("ts %d: move of unknown object %d", ts, u.ID)
				}
				if old != u.Old {
					t.Fatalf("ts %d: move old mismatch for %d: %v vs %v", ts, u.ID, old, u.Old)
				}
				if !unit.Contains(u.New) {
					t.Fatalf("ts %d: object %d left the workspace: %v", ts, u.ID, u.New)
				}
				pos[u.ID] = u.New
			case model.Insert:
				if _, ok := pos[u.ID]; ok {
					t.Fatalf("ts %d: insert of live object %d", ts, u.ID)
				}
				if !unit.Contains(u.New) {
					t.Fatalf("ts %d: insert outside workspace", ts)
				}
				pos[u.ID] = u.New
			case model.Delete:
				old, ok := pos[u.ID]
				if !ok {
					t.Fatalf("ts %d: delete of unknown object %d", ts, u.ID)
				}
				if old != u.Old {
					t.Fatalf("ts %d: delete old mismatch", ts)
				}
				delete(pos, u.ID)
			}
		}
		// One update per object per timestamp — the stream model the
		// baselines rely on. (A delete+insert pair touches two distinct
		// ids.)
		for id, n := range seen {
			if n != 1 {
				t.Fatalf("ts %d: object %d got %d updates", ts, id, n)
			}
		}
		if len(pos) != 300 {
			t.Fatalf("ts %d: population drifted to %d", ts, len(pos))
		}
		for _, qu := range b.Queries {
			if qu.Kind != model.QueryMove || len(qu.NewPoints) != 1 {
				t.Fatalf("ts %d: malformed query update %+v", ts, qu)
			}
			if !unit.Contains(qu.NewPoints[0]) {
				t.Fatalf("ts %d: query left the workspace", ts)
			}
		}
	}
}

func TestAgilityFractions(t *testing.T) {
	p := Params{N: 2000, NumQueries: 500, ObjectAgility: 0.3, QueryAgility: 0.7, Seed: 4}
	w := testWorkload(t, p)
	w.InitialObjects()
	totalObj, totalQry := 0, 0
	const steps = 30
	for ts := 0; ts < steps; ts++ {
		b := w.Advance()
		// Arrivals produce delete+insert pairs; count moved *objects*:
		// deletes+moves each represent one agile object.
		for _, u := range b.Objects {
			if u.Kind != model.Insert {
				totalObj++
			}
		}
		totalQry += len(b.Queries)
	}
	gotObj := float64(totalObj) / float64(steps*p.N)
	gotQry := float64(totalQry) / float64(steps*p.NumQueries)
	if math.Abs(gotObj-0.3) > 0.03 {
		t.Errorf("object agility = %v, want ≈0.3", gotObj)
	}
	if math.Abs(gotQry-0.7) > 0.05 {
		t.Errorf("query agility = %v, want ≈0.7", gotQry)
	}
}

func TestSpeedDisplacement(t *testing.T) {
	// With agility 1, per-timestamp displacement along the network is
	// exactly the speed class distance (unless the mover arrives).
	p := Params{N: 200, NumQueries: 0, ObjectSpeed: Medium, ObjectAgility: 1, Seed: 6}
	w := testWorkload(t, p)
	w.InitialObjects()
	step := Medium.PerTimestamp()
	for ts := 0; ts < 20; ts++ {
		b := w.Advance()
		for _, u := range b.Objects {
			if u.Kind != model.Move {
				continue
			}
			// Euclidean displacement cannot exceed network distance.
			if d := geom.Dist(u.Old, u.New); d > step+1e-9 {
				t.Fatalf("ts %d: object %d jumped %v > step %v", ts, u.ID, d, step)
			}
		}
	}
}

func TestDeterminism(t *testing.T) {
	mk := func() []model.Batch {
		p := Params{N: 100, NumQueries: 10, ObjectAgility: 0.5, QueryAgility: 0.5, Seed: 11}
		w := testWorkload(t, p)
		w.InitialObjects()
		var bs []model.Batch
		for i := 0; i < 10; i++ {
			bs = append(bs, w.Advance())
		}
		return bs
	}
	a, b := mk(), mk()
	for i := range a {
		if len(a[i].Objects) != len(b[i].Objects) || len(a[i].Queries) != len(b[i].Queries) {
			t.Fatalf("ts %d: batch sizes differ", i)
		}
		for j := range a[i].Objects {
			if a[i].Objects[j] != b[i].Objects[j] {
				t.Fatalf("ts %d: object update %d differs", i, j)
			}
		}
	}
}

func TestLifecyclePanics(t *testing.T) {
	w := testWorkload(t, Params{N: 10, Seed: 1})
	for name, f := range map[string]func(){
		"queries before objects": func() { w.InitialQueries() },
		"advance before objects": func() { w.Advance() },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: no panic", name)
				}
			}()
			f()
		}()
	}
	w.InitialObjects()
	defer func() {
		if recover() == nil {
			t.Error("double InitialObjects: no panic")
		}
	}()
	w.InitialObjects()
}

func TestZeroAgilityProducesEmptyBatches(t *testing.T) {
	w := testWorkload(t, Params{N: 50, NumQueries: 5, Seed: 2})
	w.InitialObjects()
	for i := 0; i < 5; i++ {
		b := w.Advance()
		if len(b.Objects) != 0 || len(b.Queries) != 0 {
			t.Fatalf("zero agility produced updates: %+v", b)
		}
	}
}
