// Package generator reproduces the workload of the paper's evaluation
// (Section 6): objects and queries moving on a road network, in the style
// of Brinkhoff's spatiotemporal generator [B02].
//
// An object appears on a network node, follows the shortest path to a
// random destination and disappears on arrival, upon which a replacement
// object spawns — keeping the population at N. Queries move the same way
// but stay in the system for the whole simulation, picking a fresh
// destination whenever they arrive. Per timestamp, a fraction f_obj of the
// objects and f_qry of the queries issue location updates (the paper's
// object/query agility); the distance covered per timestamp is the paper's
// speed classes: slow = 1/250 of the summed workspace extents, medium 5×,
// fast 25× that.
//
// Everything is driven by one seeded RNG over slice-ordered state, so a
// workload is a pure function of (network, Params): two monitors fed the
// same workload observe byte-identical update streams — the property the
// cross-method integration tests and the benchmark harness rely on.
package generator

import (
	"fmt"
	"math/rand"

	"cpm/internal/geom"
	"cpm/internal/model"
	"cpm/internal/network"
)

// Speed is one of the paper's three speed classes.
type Speed uint8

// The speed classes of Table 6.1.
const (
	Slow Speed = iota
	Medium
	Fast
)

// String returns the paper's name for the class.
func (s Speed) String() string {
	switch s {
	case Slow:
		return "slow"
	case Medium:
		return "medium"
	case Fast:
		return "fast"
	default:
		return fmt.Sprintf("speed(%d)", uint8(s))
	}
}

// PerTimestamp returns the distance an object of this class covers per
// timestamp in the unit-square workspace. Slow covers 1/250 of the summed
// workspace extents (2.0 for the unit square); medium and fast are 5× and
// 25× that (Section 6).
func (s Speed) PerTimestamp() float64 {
	base := 2.0 / 250.0
	switch s {
	case Slow:
		return base
	case Medium:
		return 5 * base
	case Fast:
		return 25 * base
	default:
		return base
	}
}

// Params configure a workload. The zero value is not usable; see Defaults.
type Params struct {
	N             int     // object population (kept constant under churn)
	NumQueries    int     // number of continuous queries
	ObjectSpeed   Speed   // speed class of objects
	QuerySpeed    Speed   // speed class of queries
	ObjectAgility float64 // f_obj: fraction of objects updating per timestamp
	QueryAgility  float64 // f_qry: fraction of queries updating per timestamp
	Seed          int64   // RNG seed
}

// Defaults returns the paper's default parameters (Table 6.1): N=100K
// objects, n=5K queries, medium speeds, f_obj=50%, f_qry=30%. Scale shrinks
// N and NumQueries proportionally (scale 1 = paper scale).
func Defaults(scale float64) Params {
	if scale <= 0 {
		scale = 1
	}
	n := int(100_000 * scale)
	if n < 1 {
		n = 1
	}
	q := int(5_000 * scale)
	if q < 1 {
		q = 1
	}
	return Params{
		N:             n,
		NumQueries:    q,
		ObjectSpeed:   Medium,
		QuerySpeed:    Medium,
		ObjectAgility: 0.5,
		QueryAgility:  0.3,
		Seed:          1,
	}
}

// Validate reports whether the parameters are usable.
func (p Params) Validate() error {
	if p.N <= 0 {
		return fmt.Errorf("generator: non-positive N %d", p.N)
	}
	if p.NumQueries < 0 {
		return fmt.Errorf("generator: negative NumQueries %d", p.NumQueries)
	}
	if p.ObjectAgility < 0 || p.ObjectAgility > 1 {
		return fmt.Errorf("generator: object agility %v outside [0,1]", p.ObjectAgility)
	}
	if p.QueryAgility < 0 || p.QueryAgility > 1 {
		return fmt.Errorf("generator: query agility %v outside [0,1]", p.QueryAgility)
	}
	return nil
}

// mover is an entity walking a shortest path across the network.
type mover struct {
	id     model.ObjectID
	pos    geom.Point
	path   []network.NodeID
	seg    int     // index of the segment start node within path
	offset float64 // distance covered along the current segment
}

// Workload generates one update batch per timestamp.
type Workload struct {
	rng     *rand.Rand
	g       *network.Graph
	router  *network.Router
	params  Params
	objects []*mover // slice-ordered for determinism
	queries []*mover // query ids are 0..NumQueries-1 in model.QueryID space
	nextID  model.ObjectID
	booted  bool
}

// New creates a workload over the given network.
func New(g *network.Graph, params Params) (*Workload, error) {
	if err := params.Validate(); err != nil {
		return nil, err
	}
	if g.NumNodes() < 2 {
		return nil, fmt.Errorf("generator: network needs at least 2 nodes, has %d", g.NumNodes())
	}
	if !g.Connected() {
		return nil, fmt.Errorf("generator: network is disconnected")
	}
	return &Workload{
		rng:    rand.New(rand.NewSource(params.Seed)),
		g:      g,
		router: network.NewRouter(g),
		params: params,
	}, nil
}

// Params returns the workload's parameters.
func (w *Workload) Params() Params { return w.params }

// InitialObjects spawns the initial population and returns its positions,
// for bootstrapping monitors. It must be called exactly once, before the
// first Advance.
func (w *Workload) InitialObjects() map[model.ObjectID]geom.Point {
	if w.booted {
		panic("generator: InitialObjects called twice")
	}
	w.booted = true
	out := make(map[model.ObjectID]geom.Point, w.params.N)
	for i := 0; i < w.params.N; i++ {
		m := w.spawn(w.nextID)
		w.nextID++
		w.objects = append(w.objects, m)
		out[m.id] = m.pos
	}
	for i := 0; i < w.params.NumQueries; i++ {
		w.queries = append(w.queries, w.spawn(model.ObjectID(i)))
	}
	return out
}

// InitialQueries returns the starting location of every query; query i in
// the returned slice corresponds to model.QueryID(i).
func (w *Workload) InitialQueries() []geom.Point {
	if !w.booted {
		panic("generator: InitialQueries before InitialObjects")
	}
	pts := make([]geom.Point, len(w.queries))
	for i, m := range w.queries {
		pts[i] = m.pos
	}
	return pts
}

// ObjectCount returns the current population (constant by construction).
func (w *Workload) ObjectCount() int { return len(w.objects) }

// Advance simulates one timestamp and returns the update batch: at most one
// update per object (the stream model of Section 3) plus the query moves.
func (w *Workload) Advance() model.Batch {
	if !w.booted {
		panic("generator: Advance before InitialObjects")
	}
	var b model.Batch
	objStep := w.params.ObjectSpeed.PerTimestamp()
	for i, m := range w.objects {
		if w.rng.Float64() >= w.params.ObjectAgility {
			continue
		}
		old := m.pos
		if arrived := m.advance(w.g, objStep); arrived {
			// The object disappears at its destination and a fresh one
			// spawns to keep the population constant.
			b.Objects = append(b.Objects, model.DeleteUpdate(m.id, old))
			repl := w.spawn(w.nextID)
			w.nextID++
			w.objects[i] = repl
			b.Objects = append(b.Objects, model.InsertUpdate(repl.id, repl.pos))
			continue
		}
		b.Objects = append(b.Objects, model.MoveUpdate(m.id, old, m.pos))
	}
	qryStep := w.params.QuerySpeed.PerTimestamp()
	for i, m := range w.queries {
		if w.rng.Float64() >= w.params.QueryAgility {
			continue
		}
		if arrived := m.advance(w.g, qryStep); arrived {
			w.retarget(m) // queries persist: pick a new destination
		}
		b.Queries = append(b.Queries, model.QueryUpdate{
			ID:        model.QueryID(i),
			Kind:      model.QueryMove,
			NewPoints: []geom.Point{m.pos},
		})
	}
	return b
}

// spawn creates a mover at a random node heading to a random destination.
func (w *Workload) spawn(id model.ObjectID) *mover {
	src := network.NodeID(w.rng.Intn(w.g.NumNodes()))
	m := &mover{id: id, pos: w.g.Node(src), path: []network.NodeID{src}}
	w.retarget(m)
	return m
}

// retarget routes m from its current path node to a fresh random
// destination.
func (w *Workload) retarget(m *mover) {
	at := m.path[len(m.path)-1]
	if m.seg < len(m.path)-1 {
		at = m.path[m.seg] // mid-path retarget (not used by arrivals)
	}
	for {
		dst := network.NodeID(w.rng.Intn(w.g.NumNodes()))
		if dst == at {
			continue
		}
		path, _, ok := w.router.ShortestPath(at, dst)
		if !ok {
			// Unreachable destinations cannot happen on a connected
			// network, but a defensive retry keeps the generator total.
			continue
		}
		m.path = path
		m.seg = 0
		m.offset = 0
		m.pos = w.g.Node(path[0])
		return
	}
}

// advance walks the mover dist units along its path, updating its position.
// It reports whether the destination was reached (position = destination).
func (m *mover) advance(g *network.Graph, dist float64) bool {
	for {
		if m.seg >= len(m.path)-1 {
			m.pos = g.Node(m.path[len(m.path)-1])
			return true
		}
		a := g.Node(m.path[m.seg])
		b := g.Node(m.path[m.seg+1])
		segLen := geom.Dist(a, b)
		if segLen <= 0 {
			m.seg++
			m.offset = 0
			continue
		}
		remain := segLen - m.offset
		if dist < remain {
			m.offset += dist
			m.pos = geom.Lerp(a, b, m.offset/segLen)
			return false
		}
		dist -= remain
		m.seg++
		m.offset = 0
		m.pos = b
	}
}
