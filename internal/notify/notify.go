// Package notify turns the per-cycle result diffs of a CPM monitor into
// push-based delivery: subscribers register interest in some or all queries
// and receive typed events over a channel, decoupled from the processing
// loop by per-subscriber buffers with an explicit slow-consumer policy.
//
// The Hub bridges the two worlds. On the pull side the monitor's
// processing loop calls Publish once after every mutating operation with
// that operation's diffs; Publish never blocks, whatever the subscribers
// are doing. On the push side each subscription owns a pump goroutine that
// moves buffered events to its channel in order. When a subscriber falls
// behind and its buffer fills, its policy decides: DropOldest discards the
// oldest pending event (counted in Dropped, detectable via Event.Seq
// gaps), CoalesceLatest keeps only the newest pending event per query.
// Every event carries the full current result alongside the delta, so a
// subscriber can re-sync from any single event after a loss.
//
// Unsubscribe and shutdown are clean on both paths: Subscription.Close
// discards pending events and closes the stream immediately (safe during
// delivery, safe to call twice), while Hub.Close stops intake and lets
// every pump drain its buffer before closing its stream.
package notify

import (
	"sync"

	"cpm/internal/model"
)

// Policy selects what happens to new events when a subscriber's buffer is
// full.
type Policy uint8

const (
	// DropOldest discards the oldest buffered event to admit the new one.
	// Consumers detect the gap via Event.Seq (and the Dropped counter) and
	// re-sync from the next event's Result, which is always the full
	// current result set.
	DropOldest Policy = iota
	// CoalesceLatest keeps at most one pending event per query: a new
	// event replaces the buffered one for the same query, so a slow
	// consumer always sees the newest state of every query at the price of
	// skipping intermediate steps. A coalesced event's Entered/Exited/
	// Reranked delta describes only the final step (Result remains the
	// exact current set); consumers needing every delta should use
	// DropOldest with an adequate buffer. If the buffer fills with
	// distinct queries, the oldest pending event is dropped as a fallback.
	CoalesceLatest
)

// Event is one delivered result diff. Seq is the subscription's own
// sequence number, assigned after filtering: it increases by exactly one
// per event accepted for this subscriber, so a gap between consecutively
// delivered events means events were dropped or coalesced away — for
// filtered subscriptions just as for full ones. Events are shared between
// subscribers: treat every slice as read-only.
type Event struct {
	Seq uint64
	model.ResultDiff
}

// DefaultBuffer is the per-subscriber buffer capacity when Options.Buffer
// is unset.
const DefaultBuffer = 64

// Options configure a subscription.
type Options struct {
	// Buffer is the per-subscriber buffer capacity in events (default
	// DefaultBuffer). One further event may be in flight inside the pump.
	Buffer int
	// Policy is the slow-consumer policy (default DropOldest).
	Policy Policy
}

// Hub fans result diffs out to subscribers. All methods are safe for
// concurrent use, though the intended publisher is a single processing
// loop.
type Hub struct {
	mu     sync.Mutex
	subs   []*Subscription
	closed bool
}

// NewHub creates an empty hub.
func NewHub() *Hub { return &Hub{} }

// Subscribe registers a subscriber for the given query ids (none means
// every query) and starts its delivery pump. On a closed hub the returned
// subscription is already closed.
func (h *Hub) Subscribe(opts Options, ids ...model.QueryID) *Subscription {
	if opts.Buffer <= 0 {
		opts.Buffer = DefaultBuffer
	}
	s := &Subscription{
		hub:    h,
		policy: opts.Policy,
		limit:  opts.Buffer,
		kick:   make(chan struct{}, 1),
		fin:    make(chan struct{}),
		done:   make(chan struct{}),
		out:    make(chan Event),
	}
	if len(ids) > 0 {
		s.filter = make(map[model.QueryID]struct{}, len(ids))
		for _, id := range ids {
			s.filter[id] = struct{}{}
		}
	}
	if s.policy == CoalesceLatest {
		s.pending = make(map[model.QueryID]uint64, 16)
	}
	h.mu.Lock()
	closed := h.closed
	if !closed {
		h.subs = append(h.subs, s)
	}
	h.mu.Unlock()
	go s.pump()
	if closed {
		s.close()
	}
	return s
}

// Closed returns a subscription that is already closed: its Events channel
// is closed, it accepts no events and Close is a no-op. Monitors hand one
// out when Subscribe is called after Close, so late subscribers observe a
// cleanly terminated stream instead of racing the draining hub.
func Closed() *Subscription {
	s := &Subscription{
		kick:   make(chan struct{}, 1),
		fin:    make(chan struct{}),
		done:   make(chan struct{}),
		out:    make(chan Event),
		closed: true,
	}
	close(s.out)
	s.finOnce.Do(func() { s.finishing = true; close(s.fin) })
	s.doneOnce.Do(func() { close(s.done) })
	return s
}

// SubscriberCount returns the number of open subscriptions.
func (h *Hub) SubscriberCount() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	return len(h.subs)
}

// Publish offers one batch of diffs to every subscriber. It never blocks
// on a slow consumer: full buffers are resolved by each subscription's
// policy.
func (h *Hub) Publish(diffs []model.ResultDiff) {
	if len(diffs) == 0 {
		return
	}
	h.mu.Lock()
	if h.closed || len(h.subs) == 0 {
		h.mu.Unlock()
		return
	}
	subs := append([]*Subscription(nil), h.subs...)
	h.mu.Unlock()
	for i := range diffs {
		for _, s := range subs {
			s.offer(diffs[i])
		}
	}
}

// Gap advances the sequence number of every subscription interested in
// any of the given query ids (none means every subscription) without
// delivering an event. The next event each affected subscriber receives
// therefore arrives with a Seq jump — the same signal as a buffer-full
// drop — so downstream consumers (the server's per-subscription
// forwarders) surface the loss as a Gap and re-sync. The cluster
// coordinator uses this when a worker misses a tick: the subscribers of
// that worker's queries must not silently skip the lost diffs.
func (h *Hub) Gap(ids ...model.QueryID) {
	h.mu.Lock()
	if h.closed || len(h.subs) == 0 {
		h.mu.Unlock()
		return
	}
	subs := append([]*Subscription(nil), h.subs...)
	h.mu.Unlock()
	for _, s := range subs {
		s.skip(ids)
	}
}

// skip bumps the sequence number once if this subscription is interested
// in any of ids (nil = unconditionally), recording a hole in the stream.
func (s *Subscription) skip(ids []model.QueryID) {
	if s.filter != nil {
		hit := len(ids) == 0
		for _, id := range ids {
			if _, ok := s.filter[id]; ok {
				hit = true
				break
			}
		}
		if !hit {
			return
		}
	}
	s.mu.Lock()
	if !s.closed {
		s.seq++
		s.dropped++
	}
	s.mu.Unlock()
}

// Close shuts the hub down: further Publish calls are no-ops and every
// subscription finishes — its pump delivers the events already buffered,
// then closes its Events channel. Close does not wait for the draining; a
// consumer that stops reading mid-drain must Close its subscription.
func (h *Hub) Close() {
	h.mu.Lock()
	subs := h.subs
	h.subs = nil
	h.closed = true
	h.mu.Unlock()
	for _, s := range subs {
		s.finish()
	}
}

// remove detaches a subscription from the hub's fan-out set.
func (h *Hub) remove(target *Subscription) {
	h.mu.Lock()
	for i, s := range h.subs {
		if s == target {
			h.subs = append(h.subs[:i], h.subs[i+1:]...)
			break
		}
	}
	h.mu.Unlock()
}

// Subscription is one subscriber's handle: a buffered, policy-governed
// event stream fed by the hub and consumed via Events.
type Subscription struct {
	hub    *Hub
	filter map[model.QueryID]struct{} // nil = all queries
	policy Policy
	limit  int

	mu        sync.Mutex
	queue     []Event
	seq       uint64                   // events ever accepted past the filter
	popped    uint64                   // events ever removed from the queue front
	pending   map[model.QueryID]uint64 // CoalesceLatest: absolute queue index per query
	dropped   uint64
	closed    bool
	finishing bool

	kick chan struct{} // wakes the pump when the queue goes non-empty
	fin  chan struct{} // closed by finish: drain the queue, then stop
	done chan struct{} // closed by Close: stop immediately

	finOnce  sync.Once
	doneOnce sync.Once
	out      chan Event
}

// Events returns the delivery channel. It yields events in publish order
// and is closed after Close (immediately) or the hub's Close (once the
// buffered events have drained).
func (s *Subscription) Events() <-chan Event { return s.out }

// Dropped returns how many events were discarded because the subscriber
// fell behind its buffer (under either policy; coalesced replacements are
// not counted as drops).
func (s *Subscription) Dropped() uint64 {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.dropped
}

// Close unsubscribes: no further events are accepted, pending undelivered
// events are discarded, and the Events channel is closed. Safe to call
// during delivery and more than once.
func (s *Subscription) Close() {
	if s.hub != nil {
		s.hub.remove(s)
	}
	s.close()
}

func (s *Subscription) close() {
	s.doneOnce.Do(func() {
		s.mu.Lock()
		s.closed = true
		s.mu.Unlock()
		close(s.done)
	})
}

// finish puts the subscription in draining mode: buffered events are still
// delivered, then the stream closes.
func (s *Subscription) finish() {
	s.finOnce.Do(func() {
		s.mu.Lock()
		s.finishing = true
		s.mu.Unlock()
		close(s.fin)
	})
}

// offer enqueues one diff, applying the filter, assigning this
// subscription's sequence number and applying the slow-consumer policy.
// It never blocks: moving events to the channel is the pump's job.
func (s *Subscription) offer(d model.ResultDiff) {
	if s.filter != nil {
		if _, ok := s.filter[d.Query]; !ok {
			return
		}
	}
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return
	}
	s.seq++
	ev := Event{Seq: s.seq, ResultDiff: d}
	if s.pending != nil {
		if abs, ok := s.pending[ev.Query]; ok && abs >= s.popped {
			// Coalesce: retire the stale pending event and enqueue the new
			// one at the tail, keeping delivery in publish order with
			// monotonic Seq (an in-place replace would reorder).
			i := int(abs - s.popped)
			s.queue = append(s.queue[:i], s.queue[i+1:]...)
			for q, a := range s.pending {
				if a > abs {
					s.pending[q] = a - 1
				}
			}
			delete(s.pending, ev.Query)
		}
	}
	if len(s.queue) >= s.limit {
		old := s.queue[0]
		s.queue = s.queue[1:]
		if s.pending != nil && s.pending[old.Query] == s.popped {
			delete(s.pending, old.Query)
		}
		s.popped++
		s.dropped++
	}
	s.queue = append(s.queue, ev)
	if s.pending != nil {
		s.pending[ev.Query] = s.popped + uint64(len(s.queue)) - 1
	}
	s.mu.Unlock()
	select {
	case s.kick <- struct{}{}:
	default:
	}
}

// pump is the delivery goroutine: it moves events from the buffer to the
// out channel in order, blocking on the consumer, never on the publisher.
// It exits — closing the channel — when the subscription is closed, or
// when it is finishing and the buffer has drained.
func (s *Subscription) pump() {
	defer close(s.out)
	for {
		s.mu.Lock()
		for len(s.queue) == 0 {
			fin := s.finishing
			s.mu.Unlock()
			if fin {
				return
			}
			select {
			case <-s.kick:
			case <-s.fin:
			case <-s.done:
				return
			}
			s.mu.Lock()
		}
		ev := s.queue[0]
		s.queue = s.queue[1:]
		if s.pending != nil && s.pending[ev.Query] == s.popped {
			delete(s.pending, ev.Query)
		}
		s.popped++
		s.mu.Unlock()
		select {
		case s.out <- ev:
		case <-s.done:
			return
		}
	}
}
