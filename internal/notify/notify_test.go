package notify

import (
	"sync"
	"testing"
	"time"

	"cpm/internal/model"
)

func diff(q model.QueryID, resultIDs ...model.ObjectID) model.ResultDiff {
	res := make([]model.Neighbor, len(resultIDs))
	for i, id := range resultIDs {
		res[i] = model.Neighbor{ID: id, Dist: float64(i)}
	}
	return model.ResultDiff{Query: q, Kind: model.DiffUpdate, Result: res}
}

// recv reads one event or fails the test after a timeout (a hung stream).
func recv(t *testing.T, s *Subscription) (Event, bool) {
	t.Helper()
	select {
	case ev, ok := <-s.Events():
		return ev, ok
	case <-time.After(5 * time.Second):
		t.Fatal("timed out waiting for event")
		return Event{}, false
	}
}

func TestDeliveryOrderAndSeq(t *testing.T) {
	h := NewHub()
	s := h.Subscribe(Options{})
	h.Publish([]model.ResultDiff{diff(1, 10), diff(2, 20)})
	h.Publish([]model.ResultDiff{diff(1, 11)})
	for i, want := range []struct {
		seq uint64
		q   model.QueryID
	}{{1, 1}, {2, 2}, {3, 1}} {
		ev, ok := recv(t, s)
		if !ok {
			t.Fatalf("stream closed at event %d", i)
		}
		if ev.Seq != want.seq || ev.Query != want.q {
			t.Fatalf("event %d = seq %d q%d, want seq %d q%d", i, ev.Seq, ev.Query, want.seq, want.q)
		}
	}
	s.Close()
	if _, ok := recv(t, s); ok {
		t.Fatal("events after Close")
	}
	if h.SubscriberCount() != 0 {
		t.Fatalf("SubscriberCount after Close = %d", h.SubscriberCount())
	}
}

func TestFilteredSubscription(t *testing.T) {
	h := NewHub()
	s := h.Subscribe(Options{}, 7)
	h.Publish([]model.ResultDiff{diff(1, 10), diff(7, 70), diff(9, 90), diff(7, 71)})
	ev, _ := recv(t, s)
	if ev.Query != 7 || ev.Result[0].ID != 70 {
		t.Fatalf("first filtered event = %+v", ev)
	}
	// Seq is per-subscription and assigned after the filter: no gaps from
	// filtered-out events, so gap-based drop detection stays meaningful.
	if ev.Seq != 1 {
		t.Fatalf("first filtered Seq = %d, want 1", ev.Seq)
	}
	ev, _ = recv(t, s)
	if ev.Query != 7 || ev.Result[0].ID != 71 {
		t.Fatalf("second filtered event = %+v", ev)
	}
	if ev.Seq != 2 {
		t.Fatalf("second filtered Seq = %d, want 2", ev.Seq)
	}
	s.Close()
}

// TestDropOldest checks the slow-consumer drop policy: with a consumer
// that never reads, only the newest events survive; the newest event is
// never dropped, sequence numbers stay monotonic, and received + Dropped
// accounts for every published event.
func TestDropOldest(t *testing.T) {
	h := NewHub()
	s := h.Subscribe(Options{Buffer: 2, Policy: DropOldest})
	const total = 8
	for i := 0; i < total; i++ {
		h.Publish([]model.ResultDiff{diff(model.QueryID(i), model.ObjectID(i))})
	}
	h.Close() // drain-close: delivers what's left, then closes the stream
	var got []Event
	for {
		ev, ok := recv(t, s)
		if !ok {
			break
		}
		got = append(got, ev)
	}
	if len(got) == 0 || len(got) > 3 { // buffer 2 + at most 1 in flight
		t.Fatalf("received %d events, want 1..3", len(got))
	}
	if int(s.Dropped())+len(got) != total {
		t.Fatalf("dropped %d + received %d != published %d", s.Dropped(), len(got), total)
	}
	for i := 1; i < len(got); i++ {
		if got[i].Seq <= got[i-1].Seq {
			t.Fatalf("sequence not monotonic: %d then %d", got[i-1].Seq, got[i].Seq)
		}
	}
	if got[len(got)-1].Seq != total {
		t.Fatalf("newest event dropped: last seq %d, want %d", got[len(got)-1].Seq, total)
	}
}

// TestCoalesceLatest checks the coalescing policy: a blocked consumer sees
// at most one pending event per query, and always that query's newest.
func TestCoalesceLatest(t *testing.T) {
	h := NewHub()
	s := h.Subscribe(Options{Buffer: 8, Policy: CoalesceLatest})
	h.Publish([]model.ResultDiff{diff(1, 100)})
	h.Publish([]model.ResultDiff{diff(1, 101), diff(2, 200)})
	h.Publish([]model.ResultDiff{diff(1, 102), diff(2, 201)})
	h.Close()
	last := make(map[model.QueryID]Event)
	count := make(map[model.QueryID]int)
	var prevSeq uint64
	for {
		ev, ok := recv(t, s)
		if !ok {
			break
		}
		if ev.Seq <= prevSeq {
			t.Fatalf("coalesced delivery out of publish order: seq %d after %d", ev.Seq, prevSeq)
		}
		prevSeq = ev.Seq
		last[ev.Query] = ev
		count[ev.Query]++
	}
	if got := last[1].Result[0].ID; got != 102 {
		t.Fatalf("q1 final state = %d, want 102 (latest)", got)
	}
	if got := last[2].Result[0].ID; got != 201 {
		t.Fatalf("q2 final state = %d, want 201 (latest)", got)
	}
	// At most the in-flight event plus one coalesced slot per query.
	if count[1] > 2 || count[2] > 2 {
		t.Fatalf("coalescing failed: counts %v", count)
	}
	if s.Dropped() != 0 {
		t.Fatalf("coalescing counted as drops: %d", s.Dropped())
	}
}

func TestCoalesceFallsBackToDropWhenFull(t *testing.T) {
	h := NewHub()
	s := h.Subscribe(Options{Buffer: 2, Policy: CoalesceLatest})
	// Four distinct queries: coalescing can't help, the oldest must go.
	for q := model.QueryID(1); q <= 4; q++ {
		h.Publish([]model.ResultDiff{diff(q, model.ObjectID(q))})
	}
	h.Close()
	var got []Event
	for {
		ev, ok := recv(t, s)
		if !ok {
			break
		}
		got = append(got, ev)
	}
	if int(s.Dropped())+len(got) != 4 {
		t.Fatalf("dropped %d + received %d != 4", s.Dropped(), len(got))
	}
	if got[len(got)-1].Query != 4 {
		t.Fatalf("newest event lost: last is q%d", got[len(got)-1].Query)
	}
}

// TestUnsubscribeDuringDelivery closes a subscription while a publisher
// goroutine is mid-stream: publishing must keep working, the stream must
// close promptly, and nothing may deadlock or panic.
func TestUnsubscribeDuringDelivery(t *testing.T) {
	h := NewHub()
	s := h.Subscribe(Options{Buffer: 4})
	stop := make(chan struct{})
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; ; i++ {
			select {
			case <-stop:
				return
			default:
			}
			h.Publish([]model.ResultDiff{diff(model.QueryID(i%3), model.ObjectID(i))})
		}
	}()
	recv(t, s) // at least one delivery happened
	s.Close()
	s.Close() // idempotent
	deadline := time.After(5 * time.Second)
	for {
		select {
		case _, ok := <-s.Events():
			if !ok {
				close(stop)
				wg.Wait()
				if h.SubscriberCount() != 0 {
					t.Fatalf("subscriber still registered after Close")
				}
				return
			}
		case <-deadline:
			t.Fatal("stream did not close")
		}
	}
}

func TestHubCloseDrainsBufferedEvents(t *testing.T) {
	h := NewHub()
	s := h.Subscribe(Options{Buffer: 8})
	h.Publish([]model.ResultDiff{diff(1, 1), diff(2, 2), diff(3, 3)})
	h.Close()
	h.Publish([]model.ResultDiff{diff(4, 4)}) // after close: dropped on the floor
	var got int
	for {
		ev, ok := recv(t, s)
		if !ok {
			break
		}
		got++
		if ev.Query == 4 {
			t.Fatal("event published after hub close was delivered")
		}
	}
	if got != 3 {
		t.Fatalf("drained %d events, want 3", got)
	}
}

func TestSubscribeOnClosedHub(t *testing.T) {
	h := NewHub()
	h.Close()
	s := h.Subscribe(Options{})
	if _, ok := recv(t, s); ok {
		t.Fatal("closed-hub subscription delivered an event")
	}
}
