// Package bruteforce provides the exact k-best scan used as ground truth by
// every correctness test, and the shared k-best selection helper the
// baseline methods use when ranking collected candidates.
package bruteforce

import (
	"math"
	"sort"

	"cpm/internal/geom"
	"cpm/internal/grid"
	"cpm/internal/model"
)

// TopK returns the k best neighbors of the point query q over all live
// objects in g, ordered by (distance, id). Fewer than k neighbors are
// returned when the population is smaller than k.
func TopK(g *grid.Grid, q geom.Point, k int) []model.Neighbor {
	sel := NewSelector(k)
	g.ForEachObject(func(id model.ObjectID, p geom.Point) {
		sel.Offer(id, geom.Dist(p, q))
	})
	return sel.Sorted()
}

// TopKAgg returns the k best neighbors under aggregate distance
// adist(·, qs) with aggregate a.
func TopKAgg(g *grid.Grid, a geom.Agg, qs []geom.Point, k int) []model.Neighbor {
	sel := NewSelector(k)
	g.ForEachObject(func(id model.ObjectID, p geom.Point) {
		sel.Offer(id, geom.AggDist(a, p, qs))
	})
	return sel.Sorted()
}

// TopKConstrained returns the k best neighbors of q among objects inside
// the constraint region.
func TopKConstrained(g *grid.Grid, q geom.Point, k int, region geom.Rect) []model.Neighbor {
	sel := NewSelector(k)
	g.ForEachObject(func(id model.ObjectID, p geom.Point) {
		if region.Contains(p) {
			sel.Offer(id, geom.Dist(p, q))
		}
	})
	return sel.Sorted()
}

// Selector maintains the k best (distance, id) pairs offered so far, with
// the repository-wide (distance, id) tie-break so results are exactly
// comparable across methods. For the small k of the paper's experiments
// (k ≤ 256) a sorted slice with binary-search insertion beats tree
// structures by a wide margin.
type Selector struct {
	k     int
	items []model.Neighbor // sorted ascending by (Dist, ID)
}

// NewSelector creates a selector for the k best entries. k must be
// positive.
func NewSelector(k int) *Selector {
	if k <= 0 {
		panic("bruteforce: non-positive k")
	}
	return &Selector{k: k, items: make([]model.Neighbor, 0, k)}
}

// Offer considers (id, dist) for the top-k.
func (s *Selector) Offer(id model.ObjectID, dist float64) {
	n := model.Neighbor{ID: id, Dist: dist}
	if len(s.items) == s.k && !n.Less(s.items[len(s.items)-1]) {
		return
	}
	pos := sort.Search(len(s.items), func(i int) bool { return n.Less(s.items[i]) })
	if len(s.items) < s.k {
		s.items = append(s.items, model.Neighbor{})
	}
	copy(s.items[pos+1:], s.items[pos:])
	s.items[pos] = n
}

// Full reports whether k entries have been collected.
func (s *Selector) Full() bool { return len(s.items) == s.k }

// KthDist returns the distance of the kth (worst retained) entry, or +Inf
// when fewer than k entries have been offered. It equals the paper's
// best_dist.
func (s *Selector) KthDist() float64 {
	if len(s.items) < s.k {
		return math.Inf(1)
	}
	return s.items[len(s.items)-1].Dist
}

// Sorted returns the selected neighbors ordered by (distance, id). The
// returned slice is owned by the caller.
func (s *Selector) Sorted() []model.Neighbor {
	out := make([]model.Neighbor, len(s.items))
	copy(out, s.items)
	return out
}
