package bruteforce

import (
	"math"
	"math/rand"
	"sort"
	"testing"

	"cpm/internal/geom"
	"cpm/internal/grid"
	"cpm/internal/model"
)

func buildGrid(t *testing.T, rng *rand.Rand, n int) *grid.Grid {
	t.Helper()
	g := grid.NewUnit(8)
	for i := 0; i < n; i++ {
		p := geom.Point{X: rng.Float64(), Y: rng.Float64()}
		if err := g.Insert(model.ObjectID(i), p); err != nil {
			t.Fatal(err)
		}
	}
	return g
}

// referenceTopK is an independent oracle-for-the-oracle: full sort.
func referenceTopK(g *grid.Grid, dist func(geom.Point) float64, k int) []model.Neighbor {
	var all []model.Neighbor
	g.ForEachObject(func(id model.ObjectID, p geom.Point) {
		all = append(all, model.Neighbor{ID: id, Dist: dist(p)})
	})
	sort.Slice(all, func(i, j int) bool { return all[i].Less(all[j]) })
	if len(all) > k {
		all = all[:k]
	}
	return all
}

func sameNeighbors(a, b []model.Neighbor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i].ID != b[i].ID || math.Abs(a[i].Dist-b[i].Dist) > 1e-12 {
			return false
		}
	}
	return true
}

func TestTopKMatchesFullSort(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for trial := 0; trial < 50; trial++ {
		g := buildGrid(t, rng, 1+rng.Intn(100))
		q := geom.Point{X: rng.Float64(), Y: rng.Float64()}
		k := 1 + rng.Intn(10)
		got := TopK(g, q, k)
		want := referenceTopK(g, func(p geom.Point) float64 { return geom.Dist(p, q) }, k)
		if !sameNeighbors(got, want) {
			t.Fatalf("trial %d: TopK=%v want %v", trial, got, want)
		}
	}
}

func TestTopKAgg(t *testing.T) {
	rng := rand.New(rand.NewSource(2))
	for trial := 0; trial < 30; trial++ {
		g := buildGrid(t, rng, 1+rng.Intn(80))
		m := 1 + rng.Intn(4)
		qs := make([]geom.Point, m)
		for i := range qs {
			qs[i] = geom.Point{X: rng.Float64(), Y: rng.Float64()}
		}
		k := 1 + rng.Intn(5)
		for _, a := range []geom.Agg{geom.AggSum, geom.AggMin, geom.AggMax} {
			got := TopKAgg(g, a, qs, k)
			want := referenceTopK(g, func(p geom.Point) float64 { return geom.AggDist(a, p, qs) }, k)
			if !sameNeighbors(got, want) {
				t.Fatalf("agg %v: got %v want %v", a, got, want)
			}
		}
	}
}

func TestTopKConstrained(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	g := buildGrid(t, rng, 200)
	q := geom.Point{X: 0.5, Y: 0.5}
	region := geom.Rect{Lo: geom.Point{X: 0.5, Y: 0.5}, Hi: geom.Point{X: 1, Y: 1}}
	got := TopKConstrained(g, q, 5, region)
	for _, n := range got {
		p, _ := g.Position(n.ID)
		if !region.Contains(p) {
			t.Errorf("constrained result %d at %v outside region", n.ID, p)
		}
	}
	want := referenceTopK(g, func(p geom.Point) float64 {
		if !region.Contains(p) {
			return math.Inf(1)
		}
		return geom.Dist(p, q)
	}, 5)
	// The reference may include Inf entries if fewer than 5 in region; strip them.
	for len(want) > 0 && math.IsInf(want[len(want)-1].Dist, 1) {
		want = want[:len(want)-1]
	}
	if !sameNeighbors(got, want) {
		t.Fatalf("constrained: got %v want %v", got, want)
	}
}

func TestTopKFewerThanK(t *testing.T) {
	rng := rand.New(rand.NewSource(4))
	g := buildGrid(t, rng, 3)
	got := TopK(g, geom.Point{X: 0.5, Y: 0.5}, 10)
	if len(got) != 3 {
		t.Fatalf("got %d results, want 3", len(got))
	}
}

func TestSelector(t *testing.T) {
	s := NewSelector(3)
	if s.Full() {
		t.Error("empty selector reports Full")
	}
	if !math.IsInf(s.KthDist(), 1) {
		t.Error("empty selector KthDist not +Inf")
	}
	s.Offer(1, 0.5)
	s.Offer(2, 0.3)
	s.Offer(3, 0.9)
	if !s.Full() {
		t.Error("selector with k entries not Full")
	}
	if s.KthDist() != 0.9 {
		t.Errorf("KthDist = %v, want 0.9", s.KthDist())
	}
	s.Offer(4, 0.1) // evicts 3
	if s.KthDist() != 0.5 {
		t.Errorf("KthDist after eviction = %v, want 0.5", s.KthDist())
	}
	s.Offer(5, 2.0) // ignored
	got := s.Sorted()
	want := []model.Neighbor{{ID: 4, Dist: 0.1}, {ID: 2, Dist: 0.3}, {ID: 1, Dist: 0.5}}
	if !sameNeighbors(got, want) {
		t.Fatalf("Sorted = %v, want %v", got, want)
	}
}

func TestSelectorTieBreak(t *testing.T) {
	s := NewSelector(2)
	s.Offer(9, 0.5)
	s.Offer(3, 0.5)
	s.Offer(7, 0.5)
	got := s.Sorted()
	want := []model.Neighbor{{ID: 3, Dist: 0.5}, {ID: 7, Dist: 0.5}}
	if !sameNeighbors(got, want) {
		t.Fatalf("tie-break Sorted = %v, want %v", got, want)
	}
}

func TestSelectorPanicsOnBadK(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("NewSelector(0) did not panic")
		}
	}()
	NewSelector(0)
}
