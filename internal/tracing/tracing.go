// Package tracing is a minimal distributed-tracing core for the CPM
// serving path: pooled spans with 64-bit trace/span ids, a probabilistic
// head sampler, a slow-op threshold that force-records outliers even when
// the sampler said no, and a fixed-size ring buffer ("flight recorder") of
// completed traces dumpable as JSON.
//
// The design constraint is the zero-alloc steady state pinned by
// TestSteadyStateAllocs: when an op is not sampled (and no slow-op
// threshold is armed) StartRoot returns a nil *Span, and every method on a
// nil *Span is a no-op — the unsampled hot path costs one RNG draw and no
// allocations. Sampled spans come from a sync.Pool; only the per-trace
// record (which outlives the op) is heap-allocated.
//
// The sampling decision is made once, at the root ("head sampling"). A
// remote hop joins an existing trace with StartRemote and always records:
// whoever stamped the context already decided. Trace context crosses
// process boundaries as a Context{TraceID, SpanID} pair carried by the
// wire protocol's trace-context extension (see internal/wire and
// docs/TRACING.md).
package tracing

import (
	"encoding/json"
	"fmt"
	"math/rand"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"
)

// Context identifies a position in a trace: the trace it belongs to and
// the span that will be the parent of whatever the receiving hop starts.
// A zero TraceID means "no trace" — unsampled ops carry it implicitly.
type Context struct {
	TraceID uint64
	SpanID  uint64
}

// Options configures a Tracer.
type Options struct {
	// SampleRate is the head-sampling probability in [0, 1]. 0 never
	// samples (slow-op force-recording still works), 1 samples every op.
	SampleRate float64
	// SlowOp, when positive, force-records any root op whose duration
	// reaches it even if the sampler skipped it. This is the outlier
	// net: p999 spikes land in the flight recorder regardless of the
	// sample rate. Note that arming it makes every op carry a
	// (speculative, pooled) span, so it trades steady-state allocations
	// for outlier capture — leave it zero on alloc-critical paths.
	SlowOp time.Duration
	// Capacity is the flight-recorder ring size in traces (default 256).
	Capacity int
	// OnSlow, when set, is called synchronously with every recorded
	// trace that crossed SlowOp. Used by the binaries to emit a slow-op
	// log line carrying the trace id.
	OnSlow func(RecordedTrace)
	// Seed seeds the sampler RNG; 0 picks a random seed. Tests pin it.
	Seed int64
}

// Tracer makes sampling decisions, pools spans, and keeps the flight
// recorder. A nil *Tracer is valid and disables tracing entirely.
type Tracer struct {
	opts Options

	mu  sync.Mutex // guards rng
	rng *rand.Rand

	pool sync.Pool // *Span

	ringMu sync.Mutex
	ring   []RecordedTrace // fixed capacity, ringN next write slot
	ringN  int
	total  uint64 // traces ever recorded
}

// New builds a Tracer. Returns nil when opts would never record anything
// (SampleRate <= 0 and SlowOp == 0), so callers can gate on t == nil.
func New(opts Options) *Tracer {
	if opts.SampleRate <= 0 && opts.SlowOp <= 0 {
		return nil
	}
	if opts.SampleRate > 1 {
		opts.SampleRate = 1
	}
	if opts.Capacity <= 0 {
		opts.Capacity = 256
	}
	seed := opts.Seed
	if seed == 0 {
		seed = time.Now().UnixNano()
	}
	t := &Tracer{
		opts: opts,
		rng:  rand.New(rand.NewSource(seed)),
		ring: make([]RecordedTrace, 0, opts.Capacity),
	}
	t.pool.New = func() any { return new(Span) }
	return t
}

// activeTrace is the in-flight accumulation of one trace's spans. It is
// deliberately NOT pooled: a straggler goroutine finishing a child span
// after the root finished appends to a dead activeTrace harmlessly
// instead of corrupting a recycled one.
type activeTrace struct {
	traceID uint64
	start   time.Time
	nextID  atomic.Uint64 // span-id allocator (random base, see newID)

	sampled     bool // head sampler said yes (or remote hop: upstream did)
	speculative bool // created only because SlowOp is armed

	mu    sync.Mutex
	spans []RecordedSpan
	done  bool
}

func (tr *activeTrace) newID() uint64 {
	// Sequential from a random 64-bit base: unique within the process
	// and collision-free across hops with overwhelming probability,
	// without taking the tracer's RNG lock per child span.
	return tr.nextID.Add(1)
}

// Span is one timed operation within a trace. All methods are safe on a
// nil receiver (no-ops), which is how the unsampled path stays free.
// A Span is owned by one goroutine between creation and Finish.
type Span struct {
	t      *Tracer
	tr     *activeTrace
	id     uint64
	parent uint64
	name   string
	start  time.Time
	root   bool
}

// StartRoot opens a root span, making the head-sampling decision. It
// returns nil (trace nothing) unless the sampler fires or SlowOp is
// armed; in the latter case the trace is speculative and is recorded only
// if the root runs long. Safe on a nil Tracer.
func (t *Tracer) StartRoot(name string) *Span {
	if t == nil {
		return nil
	}
	t.mu.Lock()
	sampled := t.opts.SampleRate > 0 && t.rng.Float64() < t.opts.SampleRate
	var base uint64
	if sampled || t.opts.SlowOp > 0 {
		base = t.rng.Uint64() | 1 // never 0: 0 means "no trace" on the wire
	}
	t.mu.Unlock()
	if base == 0 {
		return nil
	}
	tr := &activeTrace{
		traceID:     base,
		start:       time.Now(),
		sampled:     sampled,
		speculative: !sampled,
	}
	tr.nextID.Store(base)
	return t.span(tr, name, 0, tr.start, true)
}

// StartRemote opens a server-side root span joining a trace begun on
// another hop. The upstream made the sampling decision when it stamped
// ctx, so a remote span always records. Safe on a nil Tracer.
func (t *Tracer) StartRemote(name string, ctx Context) *Span {
	if t == nil || ctx.TraceID == 0 {
		return nil
	}
	t.mu.Lock()
	base := t.rng.Uint64() | 1
	t.mu.Unlock()
	tr := &activeTrace{
		traceID: ctx.TraceID,
		start:   time.Now(),
		sampled: true,
	}
	tr.nextID.Store(base)
	return t.span(tr, name, ctx.SpanID, tr.start, true)
}

func (t *Tracer) span(tr *activeTrace, name string, parent uint64, start time.Time, root bool) *Span {
	s := t.pool.Get().(*Span)
	s.t, s.tr, s.name, s.parent, s.start, s.root = t, tr, name, parent, start, root
	s.id = tr.newID()
	return s
}

// Child opens a child span of s. Returns nil on a nil receiver.
func (s *Span) Child(name string) *Span {
	if s == nil {
		return nil
	}
	return s.t.span(s.tr, name, s.id, time.Now(), false)
}

// ChildAt records a child span retroactively from a measured start and
// duration — used where the timing is known after the fact (engine tick
// phases, per-worker round trips observed by the fan-out collector) so no
// span object has to cross goroutines mid-flight.
func (s *Span) ChildAt(name string, start time.Time, d time.Duration) {
	if s == nil {
		return
	}
	c := s.t.span(s.tr, name, s.id, start, false)
	c.finishAt(start.Add(d))
}

// Context returns the propagation context for stamping downstream ops:
// children started remotely against it become children of s.
func (s *Span) Context() Context {
	if s == nil {
		return Context{}
	}
	return Context{TraceID: s.tr.traceID, SpanID: s.id}
}

// TraceID returns the span's trace id, 0 on a nil receiver.
func (s *Span) TraceID() uint64 {
	if s == nil {
		return 0
	}
	return s.tr.traceID
}

// Finish closes the span, appends it to its trace, and recycles it. On
// the root span it also finalizes the trace: the flight recorder keeps it
// if it was head-sampled, or if SlowOp is armed and the op ran long.
func (s *Span) Finish() {
	if s == nil {
		return
	}
	s.finishAt(time.Now())
}

func (s *Span) finishAt(end time.Time) {
	tr, t := s.tr, s.t
	rec := RecordedSpan{
		ID:       s.id,
		Parent:   s.parent,
		Name:     s.name,
		OffsetNs: s.start.Sub(tr.start).Nanoseconds(),
		DurNs:    end.Sub(s.start).Nanoseconds(),
	}
	root := s.root
	s.t, s.tr, s.name = nil, nil, ""
	t.pool.Put(s)

	tr.mu.Lock()
	if tr.done {
		// Straggler after the root finished: the trace is already
		// recorded (or dropped); drop the span rather than mutate it.
		tr.mu.Unlock()
		return
	}
	tr.spans = append(tr.spans, rec)
	if !root {
		tr.mu.Unlock()
		return
	}
	tr.done = true
	spans := tr.spans
	tr.mu.Unlock()

	dur := time.Duration(rec.DurNs)
	slow := t.opts.SlowOp > 0 && dur >= t.opts.SlowOp
	if !tr.sampled && !slow {
		return // speculative trace that stayed fast: forget it
	}
	full := RecordedTrace{
		TraceID: tr.traceID,
		Name:    rec.Name,
		Start:   tr.start,
		DurNs:   rec.DurNs,
		Slow:    slow,
		Spans:   spans,
	}
	t.record(full)
	if slow && t.opts.OnSlow != nil {
		t.opts.OnSlow(full)
	}
}

func (t *Tracer) record(full RecordedTrace) {
	t.ringMu.Lock()
	if len(t.ring) < cap(t.ring) {
		t.ring = append(t.ring, full)
	} else {
		t.ring[t.ringN] = full
		t.ringN = (t.ringN + 1) % cap(t.ring)
	}
	t.total++
	t.ringMu.Unlock()
}

// RecordedSpan is one finished span inside a RecordedTrace. Ids are
// rendered as hex strings in JSON (64-bit values don't survive float64
// JSON consumers).
type RecordedSpan struct {
	ID       uint64 `json:"-"`
	Parent   uint64 `json:"-"`
	Name     string `json:"name"`
	OffsetNs int64  `json:"offset_ns"`
	DurNs    int64  `json:"duration_ns"`
}

type jsonSpan struct {
	ID       string `json:"id"`
	Parent   string `json:"parent,omitempty"`
	Name     string `json:"name"`
	OffsetNs int64  `json:"offset_ns"`
	DurNs    int64  `json:"duration_ns"`
}

// MarshalJSON renders ids as fixed-width hex.
func (s RecordedSpan) MarshalJSON() ([]byte, error) {
	js := jsonSpan{ID: hexID(s.ID), Name: s.Name, OffsetNs: s.OffsetNs, DurNs: s.DurNs}
	if s.Parent != 0 {
		js.Parent = hexID(s.Parent)
	}
	return json.Marshal(js)
}

// UnmarshalJSON parses the hex-id form written by MarshalJSON.
func (s *RecordedSpan) UnmarshalJSON(p []byte) error {
	var js jsonSpan
	if err := json.Unmarshal(p, &js); err != nil {
		return err
	}
	id, err := parseHexID(js.ID)
	if err != nil {
		return err
	}
	var parent uint64
	if js.Parent != "" {
		if parent, err = parseHexID(js.Parent); err != nil {
			return err
		}
	}
	*s = RecordedSpan{ID: id, Parent: parent, Name: js.Name, OffsetNs: js.OffsetNs, DurNs: js.DurNs}
	return nil
}

// RecordedTrace is one completed trace held by the flight recorder.
type RecordedTrace struct {
	TraceID uint64         `json:"-"`
	Name    string         `json:"name"`
	Start   time.Time      `json:"start"`
	DurNs   int64          `json:"duration_ns"`
	Slow    bool           `json:"slow,omitempty"`
	Spans   []RecordedSpan `json:"spans"`
}

type jsonTrace struct {
	TraceID string         `json:"trace_id"`
	Name    string         `json:"name"`
	Start   time.Time      `json:"start"`
	DurNs   int64          `json:"duration_ns"`
	Slow    bool           `json:"slow,omitempty"`
	Spans   []RecordedSpan `json:"spans"`
}

// MarshalJSON renders the trace id as fixed-width hex.
func (tr RecordedTrace) MarshalJSON() ([]byte, error) {
	return json.Marshal(jsonTrace{
		TraceID: hexID(tr.TraceID), Name: tr.Name, Start: tr.Start,
		DurNs: tr.DurNs, Slow: tr.Slow, Spans: tr.Spans,
	})
}

// UnmarshalJSON parses the hex-id form written by MarshalJSON.
func (tr *RecordedTrace) UnmarshalJSON(p []byte) error {
	var jt jsonTrace
	if err := json.Unmarshal(p, &jt); err != nil {
		return err
	}
	id, err := parseHexID(jt.TraceID)
	if err != nil {
		return err
	}
	*tr = RecordedTrace{TraceID: id, Name: jt.Name, Start: jt.Start,
		DurNs: jt.DurNs, Slow: jt.Slow, Spans: jt.Spans}
	return nil
}

func hexID(id uint64) string { return fmt.Sprintf("%016x", id) }
func parseHexID(s string) (uint64, error) {
	var id uint64
	if _, err := fmt.Sscanf(s, "%x", &id); err != nil {
		return 0, fmt.Errorf("tracing: bad id %q: %v", s, err)
	}
	return id, nil
}

// Traces returns the flight recorder's contents, most recent first. Safe
// on a nil Tracer (returns nil).
func (t *Tracer) Traces() []RecordedTrace {
	if t == nil {
		return nil
	}
	t.ringMu.Lock()
	defer t.ringMu.Unlock()
	out := make([]RecordedTrace, 0, len(t.ring))
	// ring[ringN] is the oldest once the ring wrapped; walk backwards.
	for i := len(t.ring) - 1; i >= 0; i-- {
		out = append(out, t.ring[(t.ringN+i)%len(t.ring)])
	}
	return out
}

// Trace looks up a recorded trace by id. Safe on a nil Tracer.
func (t *Tracer) Trace(id uint64) (RecordedTrace, bool) {
	if t == nil {
		return RecordedTrace{}, false
	}
	t.ringMu.Lock()
	defer t.ringMu.Unlock()
	for i := range t.ring {
		if t.ring[i].TraceID == id {
			return t.ring[i], true
		}
	}
	return RecordedTrace{}, false
}

// Recorded returns how many traces have ever been recorded (including
// ones the ring has since evicted). Safe on a nil Tracer.
func (t *Tracer) Recorded() uint64 {
	if t == nil {
		return 0
	}
	t.ringMu.Lock()
	defer t.ringMu.Unlock()
	return t.total
}

// MarshalTraces renders the flight recorder as a JSON array, most recent
// first. Safe on a nil Tracer (renders "[]").
func (t *Tracer) MarshalTraces() []byte {
	traces := t.Traces()
	if traces == nil {
		traces = []RecordedTrace{}
	}
	p, err := json.Marshal(traces)
	if err != nil { // unreachable: the types marshal cleanly
		return []byte("[]")
	}
	return p
}

// ParseTraces parses the JSON array produced by MarshalTraces (and served
// by Handler) — used by cpmload -trace to correlate server-side traces
// with its own.
func ParseTraces(p []byte) ([]RecordedTrace, error) {
	var out []RecordedTrace
	if err := json.Unmarshal(p, &out); err != nil {
		return nil, err
	}
	return out, nil
}

// Handler serves the flight recorder over HTTP: the bare path lists every
// recorded trace as a JSON array; "?id=<hex>" (or a "/<hex>" path suffix)
// returns one trace or 404. Mount it at /debug/traces. Safe on a nil
// Tracer (always serves an empty list / 404).
func (t *Tracer) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		id := r.URL.Query().Get("id")
		if id == "" {
			if i := strings.LastIndexByte(r.URL.Path, '/'); i >= 0 {
				if suffix := r.URL.Path[i+1:]; suffix != "" && suffix != "traces" {
					id = suffix
				}
			}
		}
		w.Header().Set("Content-Type", "application/json")
		if id == "" {
			w.Write(t.MarshalTraces())
			return
		}
		n, err := parseHexID(id)
		if err != nil {
			http.Error(w, "bad trace id", http.StatusBadRequest)
			return
		}
		tr, ok := t.Trace(n)
		if !ok {
			http.Error(w, "trace not found", http.StatusNotFound)
			return
		}
		p, _ := json.Marshal(tr)
		w.Write(p)
	})
}

// Slowest returns the k slowest recorded traces, slowest first — the
// cpmload -trace report. Safe on a nil Tracer.
func (t *Tracer) Slowest(k int) []RecordedTrace {
	traces := t.Traces()
	sort.Slice(traces, func(i, j int) bool { return traces[i].DurNs > traces[j].DurNs })
	if len(traces) > k {
		traces = traces[:k]
	}
	return traces
}
