package tracing

import (
	"encoding/json"
	"net/http/httptest"
	"sync"
	"testing"
	"time"
)

func TestNilSafety(t *testing.T) {
	var tr *Tracer
	s := tr.StartRoot("op")
	if s != nil {
		t.Fatalf("nil tracer StartRoot = %v, want nil", s)
	}
	s = tr.StartRemote("op", Context{TraceID: 7, SpanID: 1})
	if s != nil {
		t.Fatalf("nil tracer StartRemote = %v, want nil", s)
	}
	// Every method must no-op on a nil span.
	var sp *Span
	if c := sp.Child("x"); c != nil {
		t.Fatalf("nil span Child = %v, want nil", c)
	}
	sp.ChildAt("x", time.Now(), time.Millisecond)
	sp.Finish()
	if ctx := sp.Context(); ctx != (Context{}) {
		t.Fatalf("nil span Context = %+v, want zero", ctx)
	}
	if id := sp.TraceID(); id != 0 {
		t.Fatalf("nil span TraceID = %d, want 0", id)
	}
	if got := tr.Traces(); got != nil {
		t.Fatalf("nil tracer Traces = %v, want nil", got)
	}
	if string(tr.MarshalTraces()) != "[]" {
		t.Fatalf("nil tracer MarshalTraces = %s, want []", tr.MarshalTraces())
	}
}

func TestNewDisabled(t *testing.T) {
	if tr := New(Options{}); tr != nil {
		t.Fatalf("New with no sampling and no slow-op = %v, want nil", tr)
	}
	if tr := New(Options{SampleRate: 0.5}); tr == nil {
		t.Fatal("New with sampling = nil")
	}
	if tr := New(Options{SlowOp: time.Millisecond}); tr == nil {
		t.Fatal("New with slow-op = nil")
	}
}

func TestSampleAlways(t *testing.T) {
	tr := New(Options{SampleRate: 1, Seed: 1})
	for i := 0; i < 10; i++ {
		s := tr.StartRoot("tick")
		if s == nil {
			t.Fatal("rate-1 sampler skipped an op")
		}
		c := s.Child("phase")
		c.Finish()
		s.Finish()
	}
	traces := tr.Traces()
	if len(traces) != 10 {
		t.Fatalf("recorded %d traces, want 10", len(traces))
	}
	got := traces[0]
	if got.TraceID == 0 || got.Name != "tick" || len(got.Spans) != 2 {
		t.Fatalf("trace = %+v, want tick with 2 spans", got)
	}
	// Child must parent onto the root span.
	var root, child RecordedSpan
	for _, sp := range got.Spans {
		if sp.Name == "tick" {
			root = sp
		} else {
			child = sp
		}
	}
	if child.Parent != root.ID {
		t.Fatalf("child parent = %x, want root %x", child.Parent, root.ID)
	}
}

func TestSampleRateApproximate(t *testing.T) {
	tr := New(Options{SampleRate: 0.25, Seed: 42})
	const n = 4000
	for i := 0; i < n; i++ {
		tr.StartRoot("op").Finish()
	}
	got := int(tr.Recorded())
	if got < n/8 || got > n/2 {
		t.Fatalf("rate-0.25 sampler recorded %d of %d", got, n)
	}
}

func TestNegativeControlRecordsNothing(t *testing.T) {
	// SampleRate 0 with SlowOp armed: fast ops must leave no trace.
	tr := New(Options{SlowOp: time.Hour, Seed: 1})
	for i := 0; i < 100; i++ {
		s := tr.StartRoot("op")
		if s == nil {
			t.Fatal("slow-op armed but StartRoot returned nil (outliers would be lost)")
		}
		s.Child("phase").Finish()
		s.Finish()
	}
	if n := tr.Recorded(); n != 0 {
		t.Fatalf("unsampled fast run recorded %d traces, want 0", n)
	}
}

func TestSlowOpForceRecords(t *testing.T) {
	var slow []RecordedTrace
	tr := New(Options{SlowOp: time.Millisecond, Seed: 1,
		OnSlow: func(rt RecordedTrace) { slow = append(slow, rt) }})
	s := tr.StartRoot("op")
	time.Sleep(3 * time.Millisecond)
	s.Finish()
	traces := tr.Traces()
	if len(traces) != 1 || !traces[0].Slow {
		t.Fatalf("slow op not force-recorded: %+v", traces)
	}
	if len(slow) != 1 || slow[0].TraceID != traces[0].TraceID {
		t.Fatalf("OnSlow callback got %+v", slow)
	}
}

func TestRemoteJoinsTrace(t *testing.T) {
	up := New(Options{SampleRate: 1, Seed: 1})
	down := New(Options{SampleRate: 1, Seed: 2})
	root := up.StartRoot("client")
	ctx := root.Context()
	srv := down.StartRemote("server", ctx)
	if srv == nil {
		t.Fatal("StartRemote = nil for a live context")
	}
	srv.Child("phase").Finish()
	srv.Finish()
	root.Finish()

	st := down.Traces()
	if len(st) != 1 || st[0].TraceID != ctx.TraceID {
		t.Fatalf("server trace = %+v, want trace id %x", st, ctx.TraceID)
	}
	var srvRoot RecordedSpan
	for _, sp := range st[0].Spans {
		if sp.Name == "server" {
			srvRoot = sp
		}
	}
	if srvRoot.Parent != ctx.SpanID {
		t.Fatalf("server root parent = %x, want client span %x", srvRoot.Parent, ctx.SpanID)
	}
	if s := down.StartRemote("server", Context{}); s != nil {
		t.Fatalf("StartRemote with zero context = %v, want nil", s)
	}
}

func TestChildAt(t *testing.T) {
	tr := New(Options{SampleRate: 1, Seed: 1})
	s := tr.StartRoot("tick")
	base := time.Now()
	s.ChildAt("relocate", base, 5*time.Millisecond)
	s.Finish()
	got := tr.Traces()[0]
	var reloc RecordedSpan
	for _, sp := range got.Spans {
		if sp.Name == "relocate" {
			reloc = sp
		}
	}
	if reloc.DurNs != (5 * time.Millisecond).Nanoseconds() {
		t.Fatalf("ChildAt duration = %d, want 5ms", reloc.DurNs)
	}
}

func TestRingEviction(t *testing.T) {
	tr := New(Options{SampleRate: 1, Seed: 1, Capacity: 4})
	var ids []uint64
	for i := 0; i < 10; i++ {
		s := tr.StartRoot("op")
		ids = append(ids, s.TraceID())
		s.Finish()
	}
	traces := tr.Traces()
	if len(traces) != 4 {
		t.Fatalf("ring holds %d, want 4", len(traces))
	}
	// Most recent first: the last 4 started, newest at index 0.
	for i, want := range []uint64{ids[9], ids[8], ids[7], ids[6]} {
		if traces[i].TraceID != want {
			t.Fatalf("traces[%d] = %x, want %x", i, traces[i].TraceID, want)
		}
	}
	if n := tr.Recorded(); n != 10 {
		t.Fatalf("Recorded = %d, want 10", n)
	}
	// Evicted traces are not findable; retained ones are.
	if _, ok := tr.Trace(ids[0]); ok {
		t.Fatal("evicted trace still findable")
	}
	if _, ok := tr.Trace(ids[9]); !ok {
		t.Fatal("retained trace not findable")
	}
}

func TestJSONRoundTrip(t *testing.T) {
	tr := New(Options{SampleRate: 1, Seed: 1})
	s := tr.StartRoot("tick")
	s.Child("fanout").Finish()
	s.Finish()
	p := tr.MarshalTraces()
	got, err := ParseTraces(p)
	if err != nil {
		t.Fatalf("ParseTraces: %v", err)
	}
	want := tr.Traces()
	if len(got) != 1 || got[0].TraceID != want[0].TraceID || len(got[0].Spans) != 2 {
		t.Fatalf("round trip = %+v, want %+v", got, want)
	}
	for i := range got[0].Spans {
		if got[0].Spans[i] != want[0].Spans[i] {
			t.Fatalf("span %d = %+v, want %+v", i, got[0].Spans[i], want[0].Spans[i])
		}
	}
}

func TestHandler(t *testing.T) {
	tr := New(Options{SampleRate: 1, Seed: 1})
	s := tr.StartRoot("tick")
	id := s.TraceID()
	s.Finish()

	h := tr.Handler()
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces", nil))
	var list []RecordedTrace
	if err := json.Unmarshal(rec.Body.Bytes(), &list); err != nil || len(list) != 1 {
		t.Fatalf("list = %s (err %v), want 1 trace", rec.Body.String(), err)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?id="+hexID(id), nil))
	var one RecordedTrace
	if err := json.Unmarshal(rec.Body.Bytes(), &one); err != nil || one.TraceID != id {
		t.Fatalf("lookup = %s (err %v), want trace %x", rec.Body.String(), err, id)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces/"+hexID(id), nil))
	if err := json.Unmarshal(rec.Body.Bytes(), &one); err != nil || one.TraceID != id {
		t.Fatalf("path lookup = %s (err %v)", rec.Body.String(), err)
	}

	rec = httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", "/debug/traces?id=0000000000000000", nil))
	if rec.Code != 404 {
		t.Fatalf("missing trace = %d, want 404", rec.Code)
	}
}

func TestSlowest(t *testing.T) {
	tr := New(Options{SampleRate: 1, Seed: 1})
	for _, d := range []time.Duration{3, 1, 9, 5} {
		s := tr.StartRoot("op")
		s.finishAt(s.start.Add(d * time.Millisecond))
	}
	top := tr.Slowest(2)
	if len(top) != 2 || top[0].DurNs < top[1].DurNs {
		t.Fatalf("Slowest = %+v", top)
	}
	if top[0].DurNs != (9 * time.Millisecond).Nanoseconds() {
		t.Fatalf("slowest = %d, want 9ms", top[0].DurNs)
	}
}

func TestConcurrentChildren(t *testing.T) {
	tr := New(Options{SampleRate: 1, Seed: 1})
	s := tr.StartRoot("tick")
	var wg sync.WaitGroup
	for i := 0; i < 8; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for j := 0; j < 100; j++ {
				s.ChildAt("w", time.Now(), time.Microsecond)
			}
		}()
	}
	wg.Wait()
	s.Finish()
	got := tr.Traces()[0]
	if len(got.Spans) != 801 {
		t.Fatalf("spans = %d, want 801", len(got.Spans))
	}
	seen := map[uint64]bool{}
	for _, sp := range got.Spans {
		if seen[sp.ID] {
			t.Fatalf("duplicate span id %x", sp.ID)
		}
		seen[sp.ID] = true
	}
}

func TestStragglerAfterRootFinish(t *testing.T) {
	tr := New(Options{SampleRate: 1, Seed: 1})
	s := tr.StartRoot("tick")
	c := s.Child("late")
	s.Finish()
	c.Finish() // must not corrupt the recorded trace
	got := tr.Traces()[0]
	if len(got.Spans) != 1 || got.Spans[0].Name != "tick" {
		t.Fatalf("trace after straggler = %+v, want just the root", got.Spans)
	}
}

func TestUnsampledPathAllocs(t *testing.T) {
	// SampleRate very small, SlowOp off: the miss path must be free.
	tr := New(Options{SampleRate: 1e-18, Seed: 1})
	allocs := testing.AllocsPerRun(1000, func() {
		s := tr.StartRoot("op")
		s.Child("x").Finish()
		s.Finish()
	})
	if allocs != 0 {
		t.Fatalf("unsampled path allocs = %v, want 0", allocs)
	}
}
