// Package metrics is the measurement plane of the CPM serving layer:
// atomic counters, gauges and fixed-bucket latency histograms whose record
// path performs no heap allocation — so the serving hot paths (and
// TestSteadyStateAllocs) can record without disturbing what they measure —
// plus a Registry that names every instrument and renders one plain-text
// exposition page (the /metrics endpoint of cmd/cpmserver) or a flat
// []Stat snapshot (the wire Stats frame).
//
// # Instruments
//
// Counter is a monotonically increasing int64 (events, frames, drops).
// Gauge is a settable int64 (active connections). GaugeFunc reads its
// value from a callback at collection time, for state owned elsewhere
// (object count, grid size). Histogram records durations into fixed
// power-of-two buckets split four ways (≈±12.5% value resolution) and
// extracts p50/p99/p999 on demand; Observe is two atomic adds and one
// atomic increment, nothing more.
//
// # Exposition format
//
// WriteText emits one "name value" line per stat in registration order,
// integers only; histograms expand to name_count, name_sum_ns, name_p50_ns,
// name_p99_ns and name_p999_ns. The format is trivially scrapable
// (curl + awk) and stable: docs/METRICS.md documents every base name, and
// a test cross-checks that table against the registry.
package metrics

import (
	"fmt"
	"io"
	"math/bits"
	"sync"
	"sync/atomic"
	"time"
)

// Counter is a monotonically increasing metric. The zero value is ready to
// use; all methods are safe for concurrent use.
type Counter struct {
	v atomic.Int64
}

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n (negative n is a caller bug; counters only grow).
func (c *Counter) Add(n int64) { c.v.Add(n) }

// Load returns the current value.
func (c *Counter) Load() int64 { return c.v.Load() }

// Gauge is a metric that can go up and down. The zero value is ready to
// use; all methods are safe for concurrent use.
type Gauge struct {
	v atomic.Int64
}

// Set replaces the value.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adjusts the value by n (negative to decrease).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Load returns the current value.
func (g *Gauge) Load() int64 { return g.v.Load() }

// Histogram bucket layout: values 0–7 ns get one bucket each; every
// power-of-two octave above that is split into 4 linear sub-buckets, so
// any recorded duration lands in a bucket whose width is at most 1/4 of
// its magnitude (≈±12.5% quantile resolution). 8 + 61*4 buckets cover the
// full non-negative int64 nanosecond range with no overflow bucket.
const (
	histDirect  = 8 // values < 8ns map index == value
	histBuckets = histDirect + (64-3)*4
)

// Histogram records a latency distribution in fixed buckets with an
// allocation-free, lock-free Observe and on-demand quantile extraction.
// The zero value is ready to use; all methods are safe for concurrent use.
type Histogram struct {
	count   atomic.Int64
	sum     atomic.Int64 // nanoseconds
	buckets [histBuckets]atomic.Int64
}

// bucketIndex maps a non-negative nanosecond value to its bucket.
func bucketIndex(ns int64) int {
	if ns < histDirect {
		return int(ns)
	}
	e := bits.Len64(uint64(ns)) // 2^(e-1) <= ns < 2^e, e >= 4
	return histDirect + (e-4)*4 + int((ns>>(e-3))&3)
}

// bucketMid returns a representative value (the bucket midpoint) for a
// bucket index, used when interpolating quantiles.
func bucketMid(i int) int64 {
	if i < histDirect {
		return int64(i)
	}
	i -= histDirect
	e := i/4 + 4
	sub := int64(i % 4)
	lo := int64(1)<<(e-1) + sub<<(e-3)
	return lo + int64(1)<<(e-3)/2
}

// Observe records one duration. Negative durations clamp to zero. The
// record path is allocation-free: two atomic adds and one atomic
// increment.
func (h *Histogram) Observe(d time.Duration) {
	ns := d.Nanoseconds()
	if ns < 0 {
		ns = 0
	}
	h.buckets[bucketIndex(ns)].Add(1)
	h.sum.Add(ns)
	h.count.Add(1)
}

// ObserveSince is Observe(time.Since(start)) — the usual call site shape.
func (h *Histogram) ObserveSince(start time.Time) { h.Observe(time.Since(start)) }

// Count returns how many durations were recorded.
func (h *Histogram) Count() int64 { return h.count.Load() }

// SumNs returns the total recorded nanoseconds.
func (h *Histogram) SumNs() int64 { return h.sum.Load() }

// Quantile returns the approximate q-quantile (0 < q <= 1) in
// nanoseconds: the midpoint of the bucket holding the q·count-th recorded
// value (resolution ≈±12.5%). It returns 0 when nothing was recorded.
// Concurrent Observes may or may not be included; each bucket is read
// atomically, so the result is always a plausible historical state.
func (h *Histogram) Quantile(q float64) int64 {
	total := h.count.Load()
	if total == 0 {
		return 0
	}
	target := int64(q * float64(total))
	if target < 1 {
		target = 1
	}
	if target > total {
		target = total
	}
	var cum int64
	for i := range h.buckets {
		cum += h.buckets[i].Load()
		if cum >= target {
			return bucketMid(i)
		}
	}
	return bucketMid(histBuckets - 1)
}

// Stat is one named integer reading — the flat unit of both the text
// exposition and the wire Stats frame.
type Stat struct {
	Name  string `json:"name"`
	Value int64  `json:"value"`
}

// kind discriminates registry entries.
type kind uint8

const (
	kindCounter kind = iota
	kindGauge
	kindGaugeFunc
	kindHistogram
)

// entry is one registered instrument.
type entry struct {
	name string
	kind kind
	c    *Counter
	g    *Gauge
	f    func() int64
	h    *Histogram
}

// Registry names instruments and renders them. Registration happens at
// construction time (not on hot paths); collection (Snapshot, WriteText)
// may allocate. All methods are safe for concurrent use.
type Registry struct {
	mu      sync.Mutex
	entries []entry
	names   map[string]bool
}

// NewRegistry creates an empty registry.
func NewRegistry() *Registry {
	return &Registry{names: make(map[string]bool)}
}

// add registers one entry, panicking on a duplicate name: metric names are
// compile-time constants, so a collision is a programming error worth
// failing loudly on.
func (r *Registry) add(e entry) {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.names[e.name] {
		panic(fmt.Sprintf("metrics: duplicate metric %q", e.name))
	}
	r.names[e.name] = true
	r.entries = append(r.entries, e)
}

// Counter registers and returns a new counter.
func (r *Registry) Counter(name string) *Counter {
	c := &Counter{}
	r.add(entry{name: name, kind: kindCounter, c: c})
	return c
}

// Gauge registers and returns a new gauge.
func (r *Registry) Gauge(name string) *Gauge {
	g := &Gauge{}
	r.add(entry{name: name, kind: kindGauge, g: g})
	return g
}

// GaugeFunc registers a gauge whose value is read from f at collection
// time — for state owned by another component (an object count, a grid
// size). f must be safe to call from any goroutine.
func (r *Registry) GaugeFunc(name string, f func() int64) {
	r.add(entry{name: name, kind: kindGaugeFunc, f: f})
}

// Histogram registers and returns a new latency histogram. Its exposition
// expands to name_count, name_sum_ns, name_p50_ns, name_p99_ns and
// name_p999_ns.
func (r *Registry) Histogram(name string) *Histogram {
	h := &Histogram{}
	r.add(entry{name: name, kind: kindHistogram, h: h})
	return h
}

// Names returns every registered base name, in registration order — the
// set docs/METRICS.md must document (histograms count as one name; their
// derived _count/_p99… stats are implied).
func (r *Registry) Names() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.entries))
	for i, e := range r.entries {
		out[i] = e.name
	}
	return out
}

// Snapshot collects every stat as flat (name, value) pairs, histograms
// expanded. It is the payload of the wire Stats frame.
func (r *Registry) Snapshot() []Stat {
	r.mu.Lock()
	entries := append([]entry(nil), r.entries...)
	r.mu.Unlock()
	out := make([]Stat, 0, len(entries)+4*4)
	for _, e := range entries {
		switch e.kind {
		case kindCounter:
			out = append(out, Stat{e.name, e.c.Load()})
		case kindGauge:
			out = append(out, Stat{e.name, e.g.Load()})
		case kindGaugeFunc:
			out = append(out, Stat{e.name, e.f()})
		case kindHistogram:
			out = append(out,
				Stat{e.name + "_count", e.h.Count()},
				Stat{e.name + "_sum_ns", e.h.SumNs()},
				Stat{e.name + "_p50_ns", e.h.Quantile(0.50)},
				Stat{e.name + "_p99_ns", e.h.Quantile(0.99)},
				Stat{e.name + "_p999_ns", e.h.Quantile(0.999)},
			)
		}
	}
	return out
}

// WriteText renders the plain-text exposition page: one "name value" line
// per stat, in registration order.
func (r *Registry) WriteText(w io.Writer) error {
	for _, s := range r.Snapshot() {
		if _, err := fmt.Fprintf(w, "%s %d\n", s.Name, s.Value); err != nil {
			return err
		}
	}
	return nil
}
