package metrics

import (
	"bytes"
	"fmt"
	"math"
	"strings"
	"testing"
	"time"
)

// TestBucketIndexMonotone verifies the bucket mapping is monotone and that
// every bucket's representative midpoint actually falls in the bucket.
func TestBucketIndexMonotone(t *testing.T) {
	prev := -1
	for _, ns := range []int64{0, 1, 7, 8, 9, 15, 16, 100, 1023, 1024, 1e6, 1e9, math.MaxInt64} {
		i := bucketIndex(ns)
		if i < prev {
			t.Fatalf("bucketIndex(%d) = %d < previous %d", ns, i, prev)
		}
		if i < 0 || i >= histBuckets {
			t.Fatalf("bucketIndex(%d) = %d out of range", ns, i)
		}
		prev = i
	}
	// Midpoint lands back in its own bucket for every bucket.
	for i := 0; i < histBuckets; i++ {
		mid := bucketMid(i)
		if mid < 0 {
			// Top buckets overflow int64 midpoints; only reachable for
			// durations near MaxInt64 ns (~292 years), ignore.
			continue
		}
		if got := bucketIndex(mid); got != i {
			t.Fatalf("bucketIndex(bucketMid(%d)=%d) = %d", i, mid, got)
		}
	}
}

// TestHistogramQuantiles records a known distribution and checks the
// extracted percentiles are within the documented ±12.5% resolution.
func TestHistogramQuantiles(t *testing.T) {
	var h Histogram
	// 1000 observations: 1..1000 µs.
	for i := 1; i <= 1000; i++ {
		h.Observe(time.Duration(i) * time.Microsecond)
	}
	if h.Count() != 1000 {
		t.Fatalf("Count = %d, want 1000", h.Count())
	}
	checks := []struct {
		q    float64
		want int64 // exact value in ns
	}{
		{0.50, 500_000},
		{0.99, 990_000},
		{0.999, 999_000},
	}
	for _, c := range checks {
		got := h.Quantile(c.q)
		lo := int64(float64(c.want) * 0.85)
		hi := int64(float64(c.want) * 1.15)
		if got < lo || got > hi {
			t.Errorf("Quantile(%v) = %d ns, want within [%d, %d]", c.q, got, lo, hi)
		}
	}
}

func TestHistogramEmptyAndNegative(t *testing.T) {
	var h Histogram
	if got := h.Quantile(0.99); got != 0 {
		t.Fatalf("empty Quantile = %d, want 0", got)
	}
	h.Observe(-time.Second) // clamps to 0
	if h.Count() != 1 || h.SumNs() != 0 {
		t.Fatalf("negative observe: count=%d sum=%d", h.Count(), h.SumNs())
	}
	if got := h.Quantile(0.5); got != 0 {
		t.Fatalf("Quantile after clamped observe = %d, want 0", got)
	}
}

// TestObserveAllocs pins the record path at zero allocations — the whole
// point of the fixed-bucket design: hot paths can record without heap
// traffic (and without breaking the engine's own alloc gates).
func TestObserveAllocs(t *testing.T) {
	var h Histogram
	var c Counter
	var g Gauge
	start := time.Now()
	allocs := testing.AllocsPerRun(1000, func() {
		h.Observe(123 * time.Microsecond)
		h.ObserveSince(start)
		c.Inc()
		c.Add(3)
		g.Set(7)
		g.Add(-2)
	})
	if allocs != 0 {
		t.Fatalf("record path allocates: %v allocs/op", allocs)
	}
}

func TestRegistrySnapshotAndText(t *testing.T) {
	r := NewRegistry()
	c := r.Counter("test_frames_total")
	g := r.Gauge("test_connections_active")
	r.GaugeFunc("test_objects", func() int64 { return 42 })
	h := r.Histogram("test_handle_ns")

	c.Add(5)
	g.Set(3)
	for i := 0; i < 100; i++ {
		h.Observe(time.Millisecond)
	}

	names := r.Names()
	wantNames := []string{"test_frames_total", "test_connections_active", "test_objects", "test_handle_ns"}
	if fmt.Sprint(names) != fmt.Sprint(wantNames) {
		t.Fatalf("Names = %v, want %v", names, wantNames)
	}

	stats := r.Snapshot()
	byName := map[string]int64{}
	for _, s := range stats {
		byName[s.Name] = s.Value
	}
	if byName["test_frames_total"] != 5 {
		t.Errorf("counter = %d, want 5", byName["test_frames_total"])
	}
	if byName["test_connections_active"] != 3 {
		t.Errorf("gauge = %d, want 3", byName["test_connections_active"])
	}
	if byName["test_objects"] != 42 {
		t.Errorf("gaugefunc = %d, want 42", byName["test_objects"])
	}
	if byName["test_handle_ns_count"] != 100 {
		t.Errorf("hist count = %d, want 100", byName["test_handle_ns_count"])
	}
	for _, suffix := range []string{"_p50_ns", "_p99_ns", "_p999_ns"} {
		v := byName["test_handle_ns"+suffix]
		if v < 800_000 || v > 1_200_000 {
			t.Errorf("hist %s = %d, want ~1ms", suffix, v)
		}
	}

	var buf bytes.Buffer
	if err := r.WriteText(&buf); err != nil {
		t.Fatalf("WriteText: %v", err)
	}
	text := buf.String()
	if !strings.Contains(text, "test_frames_total 5\n") {
		t.Errorf("text missing counter line:\n%s", text)
	}
	if !strings.Contains(text, "test_handle_ns_count 100\n") {
		t.Errorf("text missing histogram count line:\n%s", text)
	}
	for _, line := range strings.Split(strings.TrimSpace(text), "\n") {
		if len(strings.Fields(line)) != 2 {
			t.Errorf("malformed exposition line %q", line)
		}
	}
}

func TestRegistryDuplicatePanics(t *testing.T) {
	r := NewRegistry()
	r.Counter("dup")
	defer func() {
		if recover() == nil {
			t.Fatal("duplicate registration did not panic")
		}
	}()
	r.Gauge("dup")
}
