package model

import "fmt"

// Result diffs — the push-based counterpart of the ChangedQueries polling
// set. Where ChangedQueries tells a client *which* queries changed during a
// processing cycle, a ResultDiff tells it *how*: which objects entered the
// result, which left, which stayed but moved in distance or rank, and what
// the full new result is. The engine computes diffs incrementally while it
// maintains results (internal/core), the sharded monitor merges per-shard
// diff streams into one id-ordered stream (internal/shard), and the notify
// subsystem delivers them to subscribers over channels (internal/notify).

// DiffKind classifies a result-diff event.
type DiffKind uint8

const (
	// DiffUpdate reports an installed query whose result changed during a
	// processing cycle (including a query move, which keeps its identity).
	DiffUpdate DiffKind = iota
	// DiffInstall reports a fresh installation; Entered carries the whole
	// initial result.
	DiffInstall
	// DiffRemove reports a termination; Exited carries the ids of the last
	// reported result and Result is nil.
	DiffRemove
)

// String returns a short name for the kind.
func (k DiffKind) String() string {
	switch k {
	case DiffUpdate:
		return "update"
	case DiffInstall:
		return "install"
	case DiffRemove:
		return "remove"
	default:
		return fmt.Sprintf("diffkind(%d)", uint8(k))
	}
}

// ResultDiff describes how one query's result changed between two
// consecutive reports. Applying Exited, then Entered and Reranked, to the
// previous result set and re-ordering by (Dist, ID) reconstructs Result
// exactly; Result is nonetheless carried in full so that consumers joining
// late (or resuming after a dropped event) can re-sync from any single diff.
//
// Diffs are shared between subscribers: treat every slice as read-only.
type ResultDiff struct {
	// Query is the query this diff concerns.
	Query QueryID
	// Kind classifies the event.
	Kind DiffKind
	// Entered holds the objects that joined the result, with their new
	// distances, in result order.
	Entered []Neighbor
	// Exited holds the ids of objects that left the result, in the order
	// they held in the previous result.
	Exited []ObjectID
	// Reranked holds objects present in both results whose distance or rank
	// changed, with their new distances, in result order.
	Reranked []Neighbor
	// Result is the full new result, ordered by (Dist, ID); nil for
	// DiffRemove.
	Result []Neighbor
}
