package model

import (
	"sort"
	"testing"
	"testing/quick"

	"cpm/internal/geom"
)

func TestUpdateKindString(t *testing.T) {
	cases := map[UpdateKind]string{
		Move:          "move",
		Insert:        "insert",
		Delete:        "delete",
		UpdateKind(9): "kind(9)",
	}
	for k, want := range cases {
		if got := k.String(); got != want {
			t.Errorf("%d.String() = %q, want %q", k, got, want)
		}
	}
}

func TestUpdateConstructors(t *testing.T) {
	a := geom.Point{X: 0.1, Y: 0.2}
	b := geom.Point{X: 0.3, Y: 0.4}
	mv := MoveUpdate(5, a, b)
	if mv.Kind != Move || mv.ID != 5 || mv.Old != a || mv.New != b {
		t.Errorf("MoveUpdate = %+v", mv)
	}
	in := InsertUpdate(6, b)
	if in.Kind != Insert || in.New != b {
		t.Errorf("InsertUpdate = %+v", in)
	}
	del := DeleteUpdate(7, a)
	if del.Kind != Delete || del.Old != a {
		t.Errorf("DeleteUpdate = %+v", del)
	}
}

func TestNeighborLessOrder(t *testing.T) {
	cases := []struct {
		a, b Neighbor
		want bool
	}{
		{Neighbor{1, 0.5}, Neighbor{2, 0.6}, true},
		{Neighbor{1, 0.6}, Neighbor{2, 0.5}, false},
		{Neighbor{1, 0.5}, Neighbor{2, 0.5}, true},  // distance tie: lower id
		{Neighbor{3, 0.5}, Neighbor{2, 0.5}, false}, // distance tie: higher id
		{Neighbor{1, 0.5}, Neighbor{1, 0.5}, false}, // equal: strict order
	}
	for _, c := range cases {
		if got := c.a.Less(c.b); got != c.want {
			t.Errorf("%v.Less(%v) = %v, want %v", c.a, c.b, got, c.want)
		}
	}
}

// TestNeighborLessIsStrictWeakOrder: sorting by Less must be a valid
// total order on (Dist, ID) pairs — asymmetric and transitive.
func TestNeighborLessIsStrictWeakOrder(t *testing.T) {
	f := func(d1, d2, d3 float64, i1, i2, i3 int32) bool {
		ns := []Neighbor{
			{ID: ObjectID(i1), Dist: norm(d1)},
			{ID: ObjectID(i2), Dist: norm(d2)},
			{ID: ObjectID(i3), Dist: norm(d3)},
		}
		// Asymmetry.
		for _, a := range ns {
			for _, b := range ns {
				if a.Less(b) && b.Less(a) {
					return false
				}
			}
		}
		// sort.Slice must not panic and must yield a sorted sequence.
		sort.Slice(ns, func(i, j int) bool { return ns[i].Less(ns[j]) })
		for i := 1; i < len(ns); i++ {
			if ns[i].Less(ns[i-1]) {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func norm(v float64) float64 {
	if v != v || v < 0 {
		return 0
	}
	if v > 1e308 {
		return 1e308
	}
	return v
}

func TestStatsAddSub(t *testing.T) {
	a := Stats{CellAccesses: 10, ObjectsProcessed: 20, HeapOps: 30,
		Recomputations: 1, FullSearches: 2, ShortCircuits: 3}
	b := Stats{CellAccesses: 1, ObjectsProcessed: 2, HeapOps: 3,
		Recomputations: 4, FullSearches: 5, ShortCircuits: 6}
	var acc Stats
	acc.Add(a)
	acc.Add(b)
	if acc.CellAccesses != 11 || acc.ShortCircuits != 9 {
		t.Errorf("Add = %+v", acc)
	}
	d := acc.Sub(b)
	if d != a {
		t.Errorf("Sub = %+v, want %+v", d, a)
	}
}
