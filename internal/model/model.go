// Package model defines the vocabulary shared by the CPM engine, the
// YPK-CNN/SEA-CNN baselines, the workload generator and the benchmark
// harness: object and query identifiers, the location-update stream, result
// neighbors and the Monitor interface every method implements.
//
// Keeping these types in one small package lets the harness swap monitoring
// methods freely and lets integration tests assert that all methods produce
// identical results on identical update streams.
package model

import (
	"fmt"

	"cpm/internal/geom"
)

// ObjectID identifies a moving data object. IDs are dense small integers so
// object state can live in slices rather than maps.
type ObjectID int32

// QueryID identifies an installed continuous query.
type QueryID int32

// UpdateKind distinguishes the three events in the object stream.
type UpdateKind uint8

const (
	// Move is the paper's canonical update tuple
	// <id, x_old, y_old, x_new, y_new>.
	Move UpdateKind = iota
	// Insert introduces a new object (a Brinkhoff object appearing on a
	// network node).
	Insert
	// Delete removes an object (an object reaching its destination and
	// disappearing, or going off-line). CPM treats deleted NNs as outgoing
	// neighbors (paper Section 4.2).
	Delete
)

// String returns a short name for the kind.
func (k UpdateKind) String() string {
	switch k {
	case Move:
		return "move"
	case Insert:
		return "insert"
	case Delete:
		return "delete"
	default:
		return fmt.Sprintf("kind(%d)", uint8(k))
	}
}

// Update is one element of the object location stream.
// Old is meaningful for Move and Delete; New for Move and Insert.
type Update struct {
	ID   ObjectID
	Kind UpdateKind
	Old  geom.Point
	New  geom.Point
}

// MoveUpdate builds the canonical paper update tuple.
func MoveUpdate(id ObjectID, old, new geom.Point) Update {
	return Update{ID: id, Kind: Move, Old: old, New: new}
}

// InsertUpdate builds an object-appearance update.
func InsertUpdate(id ObjectID, at geom.Point) Update {
	return Update{ID: id, Kind: Insert, New: at}
}

// DeleteUpdate builds an object-disappearance update.
func DeleteUpdate(id ObjectID, old geom.Point) Update {
	return Update{ID: id, Kind: Delete, Old: old}
}

// QueryUpdateKind distinguishes events in the query stream.
type QueryUpdateKind uint8

const (
	// QueryMove relocates an installed query. The paper treats it as a
	// termination plus a re-installation at the new location (Section 3.3).
	QueryMove QueryUpdateKind = iota
	// QueryInstall registers a new query.
	QueryInstall
	// QueryTerminate removes a query.
	QueryTerminate
)

// QueryUpdate is one element of the query stream. For QueryInstall the
// monitor has already been told the query definition via its registration
// API; the update only times when the installation takes effect.
type QueryUpdate struct {
	ID   QueryID
	Kind QueryUpdateKind
	// NewPoints holds the new location(s) for QueryMove: one point for a
	// conventional NN query, m points for an aggregate query.
	NewPoints []geom.Point
}

// Batch carries everything that arrives between two consecutive processing
// cycles: the set U_P of object updates and the set U_q of query updates.
type Batch struct {
	Objects []Update
	Queries []QueryUpdate
}

// Neighbor is one entry of a query result: an object and its (aggregate)
// distance from the query.
type Neighbor struct {
	ID   ObjectID
	Dist float64
}

// Less orders neighbors by (distance, id). Every method in this repository
// — including the brute-force oracle — uses this order, so k-NN results are
// comparable exactly even under distance ties.
func (n Neighbor) Less(m Neighbor) bool {
	if n.Dist != m.Dist {
		return n.Dist < m.Dist
	}
	return n.ID < m.ID
}

// Monitor is the contract shared by CPM and the baselines. A Monitor owns an
// object index; objects are fed exclusively through ProcessBatch so that all
// methods observe identical streams.
type Monitor interface {
	// Name identifies the method ("CPM", "YPK-CNN", "SEA-CNN").
	Name() string

	// Bootstrap loads the initial object population before any cycle runs.
	Bootstrap(objs map[ObjectID]geom.Point)

	// RegisterQuery installs a continuous k-NN query and computes its
	// initial result. It returns an error for invalid parameters.
	RegisterQuery(id QueryID, q geom.Point, k int) error

	// RemoveQuery uninstalls a query. Unknown IDs are a no-op.
	RemoveQuery(id QueryID)

	// ProcessBatch runs one processing cycle over the update sets.
	ProcessBatch(b Batch)

	// Result returns the current k best neighbors of the query, ordered by
	// (distance, id). The slice is owned by the caller.
	Result(id QueryID) []Neighbor

	// Stats returns cumulative work counters.
	Stats() Stats
}

// Stats aggregates the work counters the paper reports: cell accesses
// (Figure 6.3b counts one access per complete scan of a cell's object list)
// plus bookkeeping that the qualitative comparison of Section 4.2 discusses.
type Stats struct {
	CellAccesses     int64 // complete scans of a cell's object list
	ObjectsProcessed int64 // objects examined during searches
	HeapOps          int64 // heap pushes + pops
	Recomputations   int64 // NN re-computation invocations (CPM)
	FullSearches     int64 // from-scratch NN computations
	ShortCircuits    int64 // results maintained without any grid access
}

// Add accumulates other into s.
func (s *Stats) Add(other Stats) {
	s.CellAccesses += other.CellAccesses
	s.ObjectsProcessed += other.ObjectsProcessed
	s.HeapOps += other.HeapOps
	s.Recomputations += other.Recomputations
	s.FullSearches += other.FullSearches
	s.ShortCircuits += other.ShortCircuits
}

// Sub returns s minus other; the harness uses it to isolate per-cycle or
// per-experiment deltas from cumulative counters.
func (s Stats) Sub(other Stats) Stats {
	return Stats{
		CellAccesses:     s.CellAccesses - other.CellAccesses,
		ObjectsProcessed: s.ObjectsProcessed - other.ObjectsProcessed,
		HeapOps:          s.HeapOps - other.HeapOps,
		Recomputations:   s.Recomputations - other.Recomputations,
		FullSearches:     s.FullSearches - other.FullSearches,
		ShortCircuits:    s.ShortCircuits - other.ShortCircuits,
	}
}

// PhaseNanos decomposes one processing cycle into the phases the paper's
// Section 4 cost model names: index maintenance (object relocation),
// influence scan / query re-evaluation (the Figure 3.8 resolution pass,
// which includes the heap work of re-computation), query-update
// application, and result-diff derivation. Diff time is accumulated
// inside the other phases (diffs are derived where results change), so
// the first three sum to roughly the cycle and Diff overlaps them.
type PhaseNanos struct {
	Relocate int64 // object updates applied to the grid + influence scans
	Reeval   int64 // resolveDirty: short-circuit merges and re-computations
	QueryUpd int64 // query-stream terminations / moves / installs
	Diff     int64 // result-diff derivation (overlaps the phases above)
}

// MaxOf folds other into s field-wise by maximum. The sharded monitor
// runs shards concurrently, so the critical-path estimate for the fleet
// is the slowest shard per phase, not the sum.
func (s *PhaseNanos) MaxOf(other PhaseNanos) {
	s.Relocate = max(s.Relocate, other.Relocate)
	s.Reeval = max(s.Reeval, other.Reeval)
	s.QueryUpd = max(s.QueryUpd, other.QueryUpd)
	s.Diff = max(s.Diff, other.Diff)
}
