// Package baseline implements the two exact competitors CPM is evaluated
// against in the paper:
//
//   - YPK-CNN (Yu, Pu, Koudas, ICDE 2005): periodic re-evaluation of every
//     query with a two-step grid search and a d_max-bounded refresh
//     (paper Section 2, Figure 2.1).
//   - SEA-CNN (Xiong, Mokbel, Aref, ICDE 2005): incremental maintenance
//     driven by answer-region book-keeping, with circular search regions
//     whose radius depends on the update case (paper Section 2, Figure 2.2).
//
// Both share the grid substrate of internal/grid and the (distance, id)
// result order of internal/model, so integration tests can assert that CPM
// and both baselines produce identical results on identical streams. Both
// support conventional single-point k-NN queries — the query type of the
// paper's experiments; neither extends to aggregate queries.
package baseline

import (
	"math"

	"cpm/internal/bruteforce"
	"cpm/internal/geom"
	"cpm/internal/grid"
	"cpm/internal/model"
)

// twoStepSearch is YPK-CNN's from-scratch NN computation (Figure 2.1a),
// which SEA-CNN borrows for first-time evaluation and for queries whose
// NNs disappear. Step one expands square rings of cells around c_q until k
// objects are found, yielding an upper bound d on the k-NN distance; step
// two scans the square SR of side 2·d+δ centered at c_q, which must contain
// the true k NNs.
func twoStepSearch(g *grid.Grid, q geom.Point, k int) []model.Neighbor {
	col, row := g.ColRow(q)
	sel := bruteforce.NewSelector(k)
	exhausted := true
	for ring := 0; ring < g.Size(); ring++ {
		g.RingCells(col, row, ring, func(c grid.CellIndex) {
			g.ScanObjects(c, func(id model.ObjectID, p geom.Point) {
				sel.Offer(id, geom.Dist(p, q))
			})
		})
		if sel.Full() {
			exhausted = false
			break
		}
	}
	if exhausted {
		// The whole grid was scanned; fewer than k objects exist and the
		// refinement step has nothing left to add.
		return sel.Sorted()
	}
	d := sel.KthDist()
	return rectSearch(g, q, squareAroundCell(g, col, row, 2*d+g.Delta()), k)
}

// squareAroundCell returns the square of the given side length centered at
// the center of cell (col, row) — YPK-CNN's search regions are anchored at
// c_q, not at q itself.
func squareAroundCell(g *grid.Grid, col, row int, side float64) geom.Rect {
	c := g.CellRect(col, row).Center()
	h := side / 2
	return geom.Rect{
		Lo: geom.Point{X: c.X - h, Y: c.Y - h},
		Hi: geom.Point{X: c.X + h, Y: c.Y + h},
	}
}

// rectSearch scans every cell intersecting sr and returns the k best
// neighbors of q among the objects found.
func rectSearch(g *grid.Grid, q geom.Point, sr geom.Rect, k int) []model.Neighbor {
	sel := bruteforce.NewSelector(k)
	g.CellsInRect(sr, func(c grid.CellIndex) {
		g.ScanObjects(c, func(id model.ObjectID, p geom.Point) {
			sel.Offer(id, geom.Dist(p, q))
		})
	})
	return sel.Sorted()
}

// circleSearch scans every cell intersecting the disk (center, r) and
// returns the k best neighbors of q among the objects found — SEA-CNN's
// search primitive.
func circleSearch(g *grid.Grid, center geom.Point, r float64, q geom.Point, k int) []model.Neighbor {
	sel := bruteforce.NewSelector(k)
	g.CellsInCircle(center, r, func(c grid.CellIndex) {
		g.ScanObjects(c, func(id model.ObjectID, p geom.Point) {
			sel.Offer(id, geom.Dist(p, q))
		})
	})
	return sel.Sorted()
}

// kthDist returns the distance of the kth neighbor of a result, or +Inf
// when the result holds fewer than k entries.
func kthDist(res []model.Neighbor, k int) float64 {
	if len(res) < k {
		return math.Inf(1)
	}
	return res[len(res)-1].Dist
}

// resultIndex returns the position of id in res, or -1.
func resultIndex(res []model.Neighbor, id model.ObjectID) int {
	for i := range res {
		if res[i].ID == id {
			return i
		}
	}
	return -1
}

// applyToGrid applies one object update to the grid, returning the old and
// new cells (NoCell when not applicable) and whether the update was
// consistent with the grid state.
func applyToGrid(g *grid.Grid, u model.Update) (oldCell, newCell grid.CellIndex, ok bool) {
	switch u.Kind {
	case model.Move:
		oc, nc, err := g.Move(u.ID, u.New)
		if err != nil {
			return grid.NoCell, grid.NoCell, false
		}
		return oc, nc, true
	case model.Insert:
		if err := g.Insert(u.ID, u.New); err != nil {
			return grid.NoCell, grid.NoCell, false
		}
		return grid.NoCell, g.CellOf(u.New), true
	case model.Delete:
		pos, alive := g.Position(u.ID)
		if !alive {
			return grid.NoCell, grid.NoCell, false
		}
		oc := g.CellOf(pos)
		if err := g.Delete(u.ID); err != nil {
			return grid.NoCell, grid.NoCell, false
		}
		return oc, grid.NoCell, true
	default:
		return grid.NoCell, grid.NoCell, false
	}
}
