package baseline

import (
	"fmt"

	"cpm/internal/geom"
	"cpm/internal/grid"
	"cpm/internal/model"
)

// YPK implements YPK-CNN (paper Section 2, Figure 2.1). Updates are applied
// directly to the grid as they arrive; every installed query is re-evaluated
// once per processing cycle:
//
//   - new and moving queries run the two-step search from scratch;
//   - static queries refresh within a square of side 2·d_max+δ, where d_max
//     is how far the farthest previous NN has drifted — the previous result
//     guarantees at least k objects inside.
//
// YPK-CNN keeps no influence lists: it cannot tell which queries an update
// affects, which is exactly the inefficiency CPM removes (Section 4.2).
type YPK struct {
	g       *grid.Grid
	queries map[model.QueryID]*ypkQuery
	stats   model.Stats
	invalid int64
}

type ypkQuery struct {
	id     model.QueryID
	point  geom.Point
	k      int
	result []model.Neighbor
}

// NewYPK creates a YPK-CNN monitor over a fresh grid.
func NewYPK(gridSize int, workspace geom.Rect) *YPK {
	return &YPK{
		g:       grid.New(gridSize, workspace),
		queries: make(map[model.QueryID]*ypkQuery),
	}
}

// NewUnitYPK creates a YPK-CNN monitor over the unit square.
func NewUnitYPK(gridSize int) *YPK {
	return &YPK{
		g:       grid.NewUnit(gridSize),
		queries: make(map[model.QueryID]*ypkQuery),
	}
}

// Name implements model.Monitor.
func (y *YPK) Name() string { return "YPK-CNN" }

// Grid exposes the underlying index for tests and the harness.
func (y *YPK) Grid() *grid.Grid { return y.g }

// Bootstrap implements model.Monitor.
func (y *YPK) Bootstrap(objs map[model.ObjectID]geom.Point) {
	if y.g.Count() > 0 {
		panic("baseline: Bootstrap on a non-empty YPK monitor")
	}
	for id, p := range objs {
		if err := y.g.Insert(id, p); err != nil {
			panic(fmt.Sprintf("baseline: bootstrap insert: %v", err))
		}
	}
}

// RegisterQuery implements model.Monitor: first-time evaluation runs the
// two-step search.
func (y *YPK) RegisterQuery(id model.QueryID, q geom.Point, k int) error {
	if k <= 0 {
		return fmt.Errorf("baseline: non-positive k %d", k)
	}
	if _, exists := y.queries[id]; exists {
		return fmt.Errorf("baseline: query %d already installed", id)
	}
	qu := &ypkQuery{id: id, point: q, k: k}
	y.stats.FullSearches++
	qu.result = twoStepSearch(y.g, q, k)
	y.queries[id] = qu
	return nil
}

// RemoveQuery implements model.Monitor.
func (y *YPK) RemoveQuery(id model.QueryID) {
	delete(y.queries, id)
}

// ProcessBatch implements model.Monitor: apply all updates to the grid,
// then re-evaluate every query (YPK-CNN has no notion of which queries an
// update influences).
func (y *YPK) ProcessBatch(b model.Batch) {
	for _, u := range b.Objects {
		if _, _, ok := applyToGrid(y.g, u); !ok {
			y.invalid++
		}
	}

	moved := map[model.QueryID]bool{}
	for _, qu := range b.Queries {
		switch qu.Kind {
		case model.QueryTerminate:
			if _, ok := y.queries[qu.ID]; !ok {
				y.invalid++
				continue
			}
			y.RemoveQuery(qu.ID)
		case model.QueryMove:
			entry, ok := y.queries[qu.ID]
			if !ok || len(qu.NewPoints) != 1 {
				y.invalid++
				continue
			}
			entry.point = qu.NewPoints[0]
			moved[qu.ID] = true
		case model.QueryInstall:
			// Installs happen through RegisterQuery.
		default:
			y.invalid++
		}
	}

	for _, qu := range y.queries {
		if moved[qu.id] || len(qu.result) < qu.k {
			// Moving queries are handled as new ones; queries that never
			// had a full result cannot bound d_max and start over too.
			y.stats.FullSearches++
			qu.result = twoStepSearch(y.g, qu.point, qu.k)
			continue
		}
		y.refresh(qu)
	}
}

// refresh is YPK-CNN's update handling for a static query (Figure 2.1b):
// d_max bounds how far the previous NNs have drifted, so the square of side
// 2·d_max+δ around c_q is guaranteed to contain at least k objects.
func (y *YPK) refresh(qu *ypkQuery) {
	dmax := 0.0
	for _, n := range qu.result {
		p, alive := y.g.Position(n.ID)
		if !alive {
			// A previous NN went off-line; YPK-CNN has no bound to search
			// within and starts from scratch.
			y.stats.FullSearches++
			qu.result = twoStepSearch(y.g, qu.point, qu.k)
			return
		}
		if d := geom.Dist(p, qu.point); d > dmax {
			dmax = d
		}
	}
	y.stats.Recomputations++
	col, row := y.g.ColRow(qu.point)
	sr := squareAroundCell(y.g, col, row, 2*dmax+y.g.Delta())
	qu.result = rectSearch(y.g, qu.point, sr, qu.k)
}

// Result implements model.Monitor.
func (y *YPK) Result(id model.QueryID) []model.Neighbor {
	qu, ok := y.queries[id]
	if !ok {
		return nil
	}
	out := make([]model.Neighbor, len(qu.result))
	copy(out, qu.result)
	return out
}

// Stats implements model.Monitor.
func (y *YPK) Stats() model.Stats {
	s := y.stats
	s.CellAccesses = y.g.CellAccesses()
	return s
}

// InvalidUpdates returns the count of dropped inconsistent updates.
func (y *YPK) InvalidUpdates() int64 { return y.invalid }

// MemoryFootprint returns the monitor's size in the abstract units of
// Section 4.1: 3·N for the grid plus, per query, 3 units for id and
// coordinates and 2·k for the result (YPK-CNN keeps no other state).
func (y *YPK) MemoryFootprint() int64 {
	units := y.g.MemoryFootprint()
	for _, qu := range y.queries {
		units += int64(3 + 2*qu.k)
	}
	return units
}

var _ model.Monitor = (*YPK)(nil)
