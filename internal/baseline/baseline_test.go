package baseline

import (
	"fmt"
	"math"
	"math/rand"
	"sort"
	"testing"

	"cpm/internal/bruteforce"
	"cpm/internal/geom"
	"cpm/internal/grid"
	"cpm/internal/model"
)

// world mirrors object state for stream generation, one update per object
// per cycle (the stream model both baselines assume; see package comment).
type world struct {
	rng    *rand.Rand
	pos    map[model.ObjectID]geom.Point
	nextID model.ObjectID
}

func newWorld(seed int64) *world {
	return &world{rng: rand.New(rand.NewSource(seed)), pos: map[model.ObjectID]geom.Point{}}
}

func (w *world) randPoint() geom.Point {
	return geom.Point{X: w.rng.Float64(), Y: w.rng.Float64()}
}

func (w *world) populate(n int) map[model.ObjectID]geom.Point {
	out := make(map[model.ObjectID]geom.Point, n)
	for i := 0; i < n; i++ {
		p := w.randPoint()
		w.pos[w.nextID] = p
		out[w.nextID] = p
		w.nextID++
	}
	return out
}

func (w *world) liveIDs() []model.ObjectID {
	ids := make([]model.ObjectID, 0, len(w.pos))
	for id := range w.pos {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func (w *world) randomBatch(size int) model.Batch {
	var b model.Batch
	touched := map[model.ObjectID]bool{}
	ids := w.liveIDs()
	for i := 0; i < size; i++ {
		r := w.rng.Float64()
		switch {
		case r < 0.75 && len(ids) > 0:
			id := ids[w.rng.Intn(len(ids))]
			if touched[id] {
				continue
			}
			touched[id] = true
			old := w.pos[id]
			var to geom.Point
			if w.rng.Float64() < 0.5 {
				to = w.randPoint()
			} else {
				to = geom.Point{
					X: clampUnit(old.X + (w.rng.Float64()-0.5)*0.2),
					Y: clampUnit(old.Y + (w.rng.Float64()-0.5)*0.2),
				}
			}
			w.pos[id] = to
			b.Objects = append(b.Objects, model.MoveUpdate(id, old, to))
		case r < 0.88:
			id := w.nextID
			w.nextID++
			p := w.randPoint()
			w.pos[id] = p
			b.Objects = append(b.Objects, model.InsertUpdate(id, p))
		case len(ids) > 1:
			id := ids[w.rng.Intn(len(ids))]
			if touched[id] {
				continue
			}
			touched[id] = true
			old := w.pos[id]
			delete(w.pos, id)
			b.Objects = append(b.Objects, model.DeleteUpdate(id, old))
		}
	}
	return b
}

func clampUnit(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v >= 1 {
		return math.Nextafter(1, 0)
	}
	return v
}

func oracleTopK(g *grid.Grid, q geom.Point, k int) []model.Neighbor {
	return bruteforce.TopK(g, q, k)
}

func checkResult(t *testing.T, label string, got, want []model.Neighbor) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("%s: got %v, want %v", label, got, want)
	}
	const eps = 1e-9
	for i := range got {
		if math.Abs(got[i].Dist-want[i].Dist) > eps {
			t.Fatalf("%s: rank %d dist %v, want %v (got %v want %v)",
				label, i, got[i].Dist, want[i].Dist, got, want)
		}
	}
}

// monitorUnderTest builds each baseline for the shared conformance run.
func monitors(gridSize int) []model.Monitor {
	return []model.Monitor{NewUnitYPK(gridSize), NewUnitSEA(gridSize)}
}

func TestBaselinesInitialResults(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		w := newWorld(seed)
		objs := w.populate(1 + w.rng.Intn(250))
		for _, m := range monitors(16) {
			m.Bootstrap(objs)
			for i := 0; i < 10; i++ {
				id := model.QueryID(i)
				q := w.randPoint()
				k := 1 + w.rng.Intn(10)
				if err := m.RegisterQuery(id, q, k); err != nil {
					t.Fatal(err)
				}
				var g *grid.Grid
				switch mm := m.(type) {
				case *YPK:
					g = mm.Grid()
				case *SEA:
					g = mm.Grid()
				}
				checkResult(t, fmt.Sprintf("%s seed %d q%d", m.Name(), seed, i),
					m.Result(id), oracleTopK(g, q, k))
			}
		}
	}
}

func TestBaselinesMonitoring(t *testing.T) {
	for seed := int64(0); seed < 6; seed++ {
		w := newWorld(seed)
		objs := w.populate(120)
		ypk := NewUnitYPK(12)
		sea := NewUnitSEA(12)
		ypk.Bootstrap(objs)
		sea.Bootstrap(objs)

		type qdef struct {
			q geom.Point
			k int
		}
		defs := map[model.QueryID]qdef{}
		for i := 0; i < 6; i++ {
			id := model.QueryID(i)
			d := qdef{q: w.randPoint(), k: 1 + w.rng.Intn(6)}
			defs[id] = d
			if err := ypk.RegisterQuery(id, d.q, d.k); err != nil {
				t.Fatal(err)
			}
			if err := sea.RegisterQuery(id, d.q, d.k); err != nil {
				t.Fatal(err)
			}
		}
		for cycle := 0; cycle < 20; cycle++ {
			b := w.randomBatch(30)
			ypk.ProcessBatch(b)
			sea.ProcessBatch(b)
			for id, d := range defs {
				want := oracleTopK(ypk.Grid(), d.q, d.k)
				checkResult(t, fmt.Sprintf("YPK seed %d cycle %d q%d", seed, cycle, id),
					ypk.Result(id), want)
				checkResult(t, fmt.Sprintf("SEA seed %d cycle %d q%d", seed, cycle, id),
					sea.Result(id), want)
			}
		}
		if ypk.InvalidUpdates() != 0 || sea.InvalidUpdates() != 0 {
			t.Fatal("clean stream flagged invalid")
		}
	}
}

func TestBaselinesQueryMoves(t *testing.T) {
	for seed := int64(10); seed < 14; seed++ {
		w := newWorld(seed)
		objs := w.populate(150)
		ypk := NewUnitYPK(12)
		sea := NewUnitSEA(12)
		ypk.Bootstrap(objs)
		sea.Bootstrap(objs)
		pos := map[model.QueryID]geom.Point{}
		const k = 4
		for i := 0; i < 5; i++ {
			id := model.QueryID(i)
			pos[id] = w.randPoint()
			if err := ypk.RegisterQuery(id, pos[id], k); err != nil {
				t.Fatal(err)
			}
			if err := sea.RegisterQuery(id, pos[id], k); err != nil {
				t.Fatal(err)
			}
		}
		for cycle := 0; cycle < 12; cycle++ {
			b := w.randomBatch(25)
			// Move one query per cycle, terminate another near the end.
			movedID := model.QueryID(cycle % 5)
			to := w.randPoint()
			pos[movedID] = to
			b.Queries = append(b.Queries, model.QueryUpdate{
				ID: movedID, Kind: model.QueryMove, NewPoints: []geom.Point{to},
			})
			ypk.ProcessBatch(b)
			sea.ProcessBatch(b)
			for id, q := range pos {
				want := oracleTopK(ypk.Grid(), q, k)
				checkResult(t, fmt.Sprintf("YPK move seed %d cycle %d q%d", seed, cycle, id),
					ypk.Result(id), want)
				checkResult(t, fmt.Sprintf("SEA move seed %d cycle %d q%d", seed, cycle, id),
					sea.Result(id), want)
			}
		}
	}
}

func TestBaselineTerminate(t *testing.T) {
	w := newWorld(30)
	objs := w.populate(60)
	for _, m := range monitors(8) {
		m.Bootstrap(objs)
		if err := m.RegisterQuery(1, w.randPoint(), 3); err != nil {
			t.Fatal(err)
		}
		m.ProcessBatch(model.Batch{Queries: []model.QueryUpdate{{ID: 1, Kind: model.QueryTerminate}}})
		if m.Result(1) != nil {
			t.Errorf("%s: result after terminate", m.Name())
		}
		// Unknown terminations and installs flagged / ignored.
		m.ProcessBatch(model.Batch{Queries: []model.QueryUpdate{
			{ID: 9, Kind: model.QueryTerminate},
			{ID: 9, Kind: model.QueryInstall},
			{ID: 9, Kind: model.QueryUpdateKind(9)},
		}})
	}
}

func TestBaselineRegistrationErrors(t *testing.T) {
	for _, m := range monitors(8) {
		if err := m.RegisterQuery(1, geom.Point{X: 0.5, Y: 0.5}, 0); err == nil {
			t.Errorf("%s: k=0 accepted", m.Name())
		}
		if err := m.RegisterQuery(1, geom.Point{X: 0.5, Y: 0.5}, 2); err != nil {
			t.Fatal(err)
		}
		if err := m.RegisterQuery(1, geom.Point{X: 0.5, Y: 0.5}, 2); err == nil {
			t.Errorf("%s: duplicate id accepted", m.Name())
		}
	}
}

func TestBaselineKLargerThanPopulation(t *testing.T) {
	w := newWorld(31)
	objs := w.populate(3)
	for _, m := range monitors(8) {
		m.Bootstrap(objs)
		if err := m.RegisterQuery(1, geom.Point{X: 0.5, Y: 0.5}, 10); err != nil {
			t.Fatal(err)
		}
		if got := m.Result(1); len(got) != 3 {
			t.Errorf("%s: got %d results, want 3", m.Name(), len(got))
		}
		// Insert more objects; the result should grow.
		m.ProcessBatch(model.Batch{Objects: []model.Update{
			model.InsertUpdate(100, geom.Point{X: 0.51, Y: 0.5}),
		}})
		if got := m.Result(1); len(got) != 4 {
			t.Errorf("%s: got %d results after insert, want 4", m.Name(), len(got))
		}
	}
}

func TestBaselineDeleteOfNN(t *testing.T) {
	objs := map[model.ObjectID]geom.Point{
		1: {X: 0.52, Y: 0.5},
		2: {X: 0.6, Y: 0.6},
	}
	q := geom.Point{X: 0.5, Y: 0.5}
	for _, m := range monitors(8) {
		m.Bootstrap(objs)
		if err := m.RegisterQuery(1, q, 1); err != nil {
			t.Fatal(err)
		}
		m.ProcessBatch(model.Batch{Objects: []model.Update{
			model.DeleteUpdate(1, objs[1]),
		}})
		got := m.Result(1)
		if len(got) != 1 || got[0].ID != 2 {
			t.Errorf("%s: result after NN delete = %v, want object 2", m.Name(), got)
		}
	}
}

func TestBaselineInvalidUpdates(t *testing.T) {
	for _, m := range monitors(8) {
		m.Bootstrap(map[model.ObjectID]geom.Point{1: {X: 0.5, Y: 0.5}})
		m.ProcessBatch(model.Batch{Objects: []model.Update{
			model.MoveUpdate(99, geom.Point{}, geom.Point{X: 0.1, Y: 0.1}),
			model.DeleteUpdate(98, geom.Point{}),
			model.InsertUpdate(1, geom.Point{X: 0.2, Y: 0.2}),
			{ID: 5, Kind: model.UpdateKind(7)},
		}})
		var invalid int64
		switch mm := m.(type) {
		case *YPK:
			invalid = mm.InvalidUpdates()
		case *SEA:
			invalid = mm.InvalidUpdates()
		}
		if invalid != 4 {
			t.Errorf("%s: invalid = %d, want 4", m.Name(), invalid)
		}
	}
}

// TestSEARegionBookkeeping: after every cycle, the cells carrying a SEA
// query's book-keeping are exactly those intersecting its answer region.
func TestSEARegionBookkeeping(t *testing.T) {
	w := newWorld(41)
	sea := NewUnitSEA(10)
	sea.Bootstrap(w.populate(100))
	if err := sea.RegisterQuery(1, w.randPoint(), 3); err != nil {
		t.Fatal(err)
	}
	for cycle := 0; cycle < 10; cycle++ {
		sea.ProcessBatch(w.randomBatch(20))
		qu := sea.queries[1]
		want := map[grid.CellIndex]bool{}
		sea.g.CellsInCircle(qu.point, qu.bestDist, func(c grid.CellIndex) { want[c] = true })
		got := map[grid.CellIndex]bool{}
		for _, c := range qu.region {
			got[c] = true
			if !sea.g.HasInfluence(c, 1) {
				t.Fatalf("cycle %d: region cell %d lacks influence entry", cycle, c)
			}
		}
		if len(got) != len(want) {
			t.Fatalf("cycle %d: region has %d cells, want %d", cycle, len(got), len(want))
		}
		for c := range want {
			if !got[c] {
				t.Fatalf("cycle %d: cell %d missing from region", cycle, c)
			}
		}
	}
}

// TestYPKAlwaysReevaluates: YPK-CNN touches the grid for every query every
// cycle even when nothing moved — the cost profile CPM avoids.
func TestYPKAlwaysReevaluates(t *testing.T) {
	w := newWorld(42)
	ypk := NewUnitYPK(10)
	ypk.Bootstrap(w.populate(100))
	if err := ypk.RegisterQuery(1, w.randPoint(), 3); err != nil {
		t.Fatal(err)
	}
	before := ypk.Grid().CellAccesses()
	ypk.ProcessBatch(model.Batch{}) // empty cycle
	if ypk.Grid().CellAccesses() == before {
		t.Error("YPK-CNN did not re-evaluate on an empty cycle")
	}
}

func TestBaselineMemoryFootprint(t *testing.T) {
	w := newWorld(43)
	objs := w.populate(50)
	ypk := NewUnitYPK(8)
	sea := NewUnitSEA(8)
	ypk.Bootstrap(objs)
	sea.Bootstrap(objs)
	if err := ypk.RegisterQuery(1, w.randPoint(), 4); err != nil {
		t.Fatal(err)
	}
	if err := sea.RegisterQuery(1, w.randPoint(), 4); err != nil {
		t.Fatal(err)
	}
	if ypk.MemoryFootprint() != 50*3+3+8 {
		t.Errorf("YPK footprint = %d", ypk.MemoryFootprint())
	}
	// SEA additionally pays for answer-region bookkeeping.
	if sea.MemoryFootprint() <= 50*3+3+8 {
		t.Errorf("SEA footprint = %d, expected region overhead", sea.MemoryFootprint())
	}
}
