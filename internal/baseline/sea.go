package baseline

import (
	"fmt"
	"math"

	"cpm/internal/geom"
	"cpm/internal/grid"
	"cpm/internal/model"
)

// SEA implements SEA-CNN (paper Section 2, Figure 2.2). Each query's answer
// region is the disk of radius best_dist around it; the cells intersecting
// the region carry book-keeping (the grid's influence lists) so updates can
// be routed to the queries they may affect. Update handling distinguishes:
//
//	(i)   NNs moving within the region, or outer objects entering it:
//	      search radius r = best_dist;
//	(ii)  NNs exiting the region: r = d_max, the distance of the previous
//	      NN that moved farthest;
//	(iii) the query moving to q': r = best_dist + dist(q,q'), centered at q'.
//
// SEA-CNN has no own first-time evaluation module; per the paper's
// experimental setup it borrows YPK-CNN's two-step search for initial
// results and for queries whose NNs disappear.
type SEA struct {
	g       *grid.Grid
	queries map[model.QueryID]*seaQuery
	stats   model.Stats
	invalid int64
	cycle   int64
	dirty   []*seaQuery
}

type seaQuery struct {
	id       model.QueryID
	point    geom.Point
	k        int
	result   []model.Neighbor
	bestDist float64
	region   []grid.CellIndex // cells currently carrying this query's book-keeping

	// Per-cycle case flags, reset lazily.
	cycleMark int64
	caseI     bool    // incoming object or NN moving within the region
	dmax      float64 // case ii: farthest drift of an outgoing NN
	nnDeleted bool    // an NN went off-line
}

// NewSEA creates a SEA-CNN monitor over a fresh grid.
func NewSEA(gridSize int, workspace geom.Rect) *SEA {
	return &SEA{
		g:       grid.New(gridSize, workspace),
		queries: make(map[model.QueryID]*seaQuery),
	}
}

// NewUnitSEA creates a SEA-CNN monitor over the unit square.
func NewUnitSEA(gridSize int) *SEA {
	return &SEA{
		g:       grid.NewUnit(gridSize),
		queries: make(map[model.QueryID]*seaQuery),
	}
}

// Name implements model.Monitor.
func (s *SEA) Name() string { return "SEA-CNN" }

// Grid exposes the underlying index for tests and the harness.
func (s *SEA) Grid() *grid.Grid { return s.g }

// Bootstrap implements model.Monitor.
func (s *SEA) Bootstrap(objs map[model.ObjectID]geom.Point) {
	if s.g.Count() > 0 {
		panic("baseline: Bootstrap on a non-empty SEA monitor")
	}
	for id, p := range objs {
		if err := s.g.Insert(id, p); err != nil {
			panic(fmt.Sprintf("baseline: bootstrap insert: %v", err))
		}
	}
}

// RegisterQuery implements model.Monitor.
func (s *SEA) RegisterQuery(id model.QueryID, q geom.Point, k int) error {
	if k <= 0 {
		return fmt.Errorf("baseline: non-positive k %d", k)
	}
	if _, exists := s.queries[id]; exists {
		return fmt.Errorf("baseline: query %d already installed", id)
	}
	qu := &seaQuery{id: id, point: q, k: k}
	s.stats.FullSearches++
	qu.result = twoStepSearch(s.g, q, k)
	qu.bestDist = kthDist(qu.result, k)
	s.queries[id] = qu
	s.rebuildRegion(qu)
	return nil
}

// RemoveQuery implements model.Monitor.
func (s *SEA) RemoveQuery(id model.QueryID) {
	qu, ok := s.queries[id]
	if !ok {
		return
	}
	s.clearRegion(qu)
	delete(s.queries, id)
}

// ProcessBatch implements model.Monitor.
func (s *SEA) ProcessBatch(b model.Batch) {
	s.cycle++
	var ignored map[model.QueryID]bool
	if len(b.Queries) > 0 {
		ignored = make(map[model.QueryID]bool, len(b.Queries))
		for _, qu := range b.Queries {
			ignored[qu.ID] = true
		}
	}

	// Classification runs for every query — including those with their own
	// updates this cycle: a moving query needs its NNs' drift (d_max) to
	// size the case-iii circle correctly when objects move in the same
	// cycle. Only the resolution step is skipped for them.
	for _, u := range b.Objects {
		if u.Kind != model.Delete {
			// The grid stores positions clamped onto the workspace; classify
			// against the same point so distances match the stored state.
			u.New = s.g.Clamp(u.New)
		}
		oldCell, newCell, ok := applyToGrid(s.g, u)
		if !ok {
			s.invalid++
			continue
		}
		if oldCell != grid.NoCell {
			s.g.ForEachInfluence(oldCell, func(qid model.QueryID) {
				if qu := s.queries[qid]; qu != nil {
					s.classifyOld(qu, u)
				}
			})
		}
		if newCell != grid.NoCell {
			// Also when newCell == oldCell: an in-cell move can still take
			// an outer object inside the answer region.
			s.g.ForEachInfluence(newCell, func(qid model.QueryID) {
				if qu := s.queries[qid]; qu != nil {
					s.classifyNew(qu, u)
				}
			})
		}
	}

	for _, qu := range s.dirty {
		if ignored != nil && ignored[qu.id] {
			continue // re-evaluated by its own query update below
		}
		s.resolve(qu)
	}
	s.dirty = s.dirty[:0]

	for _, quq := range b.Queries {
		switch quq.Kind {
		case model.QueryTerminate:
			if _, ok := s.queries[quq.ID]; !ok {
				s.invalid++
				continue
			}
			s.RemoveQuery(quq.ID)
		case model.QueryMove:
			qu, ok := s.queries[quq.ID]
			if !ok || len(quq.NewPoints) != 1 {
				s.invalid++
				continue
			}
			s.moveQuery(qu, quq.NewPoints[0])
		case model.QueryInstall:
			// Installs happen through RegisterQuery.
		default:
			s.invalid++
		}
	}
}

func (s *SEA) touch(qu *seaQuery) {
	if qu.cycleMark == s.cycle {
		return
	}
	qu.cycleMark = s.cycle
	qu.caseI = false
	qu.dmax = 0
	qu.nnDeleted = false
	s.dirty = append(s.dirty, qu)
}

// classifyOld inspects an update leaving (or deleting from) a book-kept
// cell of qu and accumulates the update-handling case.
func (s *SEA) classifyOld(qu *seaQuery, u model.Update) {
	idx := resultIndex(qu.result, u.ID)
	if idx < 0 {
		// A non-NN moving out of (or dying inside) the answer region
		// cannot change the k best.
		return
	}
	s.touch(qu)
	if u.Kind == model.Delete {
		qu.nnDeleted = true
		return
	}
	d := geom.Dist(u.New, qu.point)
	if d > qu.bestDist {
		if d > qu.dmax {
			qu.dmax = d // case ii: outgoing NN
		}
	} else {
		qu.caseI = true // NN moved within the answer region
	}
}

// classifyNew inspects an update entering a book-kept cell of qu.
func (s *SEA) classifyNew(qu *seaQuery, u model.Update) {
	if resultIndex(qu.result, u.ID) >= 0 {
		return // handled by classifyOld
	}
	if geom.Dist(u.New, qu.point) <= qu.bestDist {
		s.touch(qu)
		qu.caseI = true // outer object entered the answer region
	}
}

// resolve re-evaluates an affected query with the case-appropriate radius
// and refreshes the answer-region book-keeping.
func (s *SEA) resolve(qu *seaQuery) {
	switch {
	case qu.nnDeleted:
		s.stats.FullSearches++
		qu.result = twoStepSearch(s.g, qu.point, qu.k)
	case qu.dmax > 0:
		s.stats.Recomputations++
		qu.result = circleSearch(s.g, qu.point, qu.dmax, qu.point, qu.k)
	case qu.caseI:
		s.stats.Recomputations++
		qu.result = circleSearch(s.g, qu.point, qu.bestDist, qu.point, qu.k)
	default:
		return
	}
	qu.bestDist = kthDist(qu.result, qu.k)
	s.rebuildRegion(qu)
}

// moveQuery is case iii: search the disk of radius best_dist + dist(q,q')
// around the new location. When objects also moved this cycle the radius
// must additionally absorb the NNs' drift (d_max) — the previous NNs are
// the only guarantee that k objects lie inside the disk, and they may have
// strayed beyond best_dist before the query's own move is processed.
func (s *SEA) moveQuery(qu *seaQuery, to geom.Point) {
	r := qu.bestDist
	nnDeleted := false
	if qu.cycleMark == s.cycle {
		nnDeleted = qu.nnDeleted
		if qu.dmax > r {
			r = qu.dmax
		}
	}
	if nnDeleted || math.IsInf(r, 1) {
		// No usable bound: an NN disappeared, or there never was a full
		// result. Start over at the new location.
		qu.point = to
		s.stats.FullSearches++
		qu.result = twoStepSearch(s.g, to, qu.k)
	} else {
		r += geom.Dist(qu.point, to)
		qu.point = to
		s.stats.Recomputations++
		qu.result = circleSearch(s.g, to, r, to, qu.k)
	}
	qu.bestDist = kthDist(qu.result, qu.k)
	s.rebuildRegion(qu)
}

// rebuildRegion re-derives the cells intersecting the answer region and
// installs the book-keeping entries.
func (s *SEA) rebuildRegion(qu *seaQuery) {
	s.clearRegion(qu)
	s.g.CellsInCircle(qu.point, qu.bestDist, func(c grid.CellIndex) {
		s.g.AddInfluence(c, qu.id)
		qu.region = append(qu.region, c)
	})
}

func (s *SEA) clearRegion(qu *seaQuery) {
	for _, c := range qu.region {
		s.g.RemoveInfluence(c, qu.id)
	}
	qu.region = qu.region[:0]
}

// Result implements model.Monitor.
func (s *SEA) Result(id model.QueryID) []model.Neighbor {
	qu, ok := s.queries[id]
	if !ok {
		return nil
	}
	out := make([]model.Neighbor, len(qu.result))
	copy(out, qu.result)
	return out
}

// Stats implements model.Monitor.
func (s *SEA) Stats() model.Stats {
	st := s.stats
	st.CellAccesses = s.g.CellAccesses()
	return st
}

// InvalidUpdates returns the count of dropped inconsistent updates.
func (s *SEA) InvalidUpdates() int64 { return s.invalid }

// MemoryFootprint returns the monitor's size in the abstract units of
// Section 4.1: the grid term (3·N plus one unit per answer-region cell
// entry) plus 3 + 2·k per query.
func (s *SEA) MemoryFootprint() int64 {
	units := s.g.MemoryFootprint()
	for _, qu := range s.queries {
		units += int64(3 + 2*qu.k)
	}
	return units
}

var _ model.Monitor = (*SEA)(nil)
