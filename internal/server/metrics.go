package server

import (
	"time"

	"cpm/internal/metrics"
	"cpm/internal/model"
	"cpm/internal/wire"
)

// serverMetrics bundles every instrument the server records into. All
// fields are registered on one registry at construction; the names (and
// their meanings) are documented in docs/METRICS.md, and a test
// cross-checks that table against Registry.Names.
type serverMetrics struct {
	reg *metrics.Registry

	connsAccepted     *metrics.Counter
	connsActive       *metrics.Gauge
	connsClosed       *metrics.Counter
	handshakeTimeouts *metrics.Counter
	writeTimeouts     *metrics.Counter
	protocolErrors    *metrics.Counter

	framesIn   *metrics.Counter
	framesOut  *metrics.Counter
	eventsOut  *metrics.Counter
	gapFrames  *metrics.Counter
	hubDropped *metrics.Counter

	subscribes *metrics.Counter
	subsActive *metrics.Gauge

	handleBootstrap *metrics.Histogram
	handleTick      *metrics.Histogram
	handleRegister  *metrics.Histogram
	handleResult    *metrics.Histogram
	handleSubscribe *metrics.Histogram

	cycle *metrics.Histogram

	phaseRelocate *metrics.Histogram
	phaseReeval   *metrics.Histogram
	phaseQueryUpd *metrics.Histogram
	phaseDiff     *metrics.Histogram
}

// newServerMetrics builds the registry. Monitor-state gauges read through
// s.Locked at collection time, so a scrape sees a cycle-consistent view
// without the hot path paying anything for it.
func newServerMetrics(s *Server) *serverMetrics {
	reg := metrics.NewRegistry()
	m := &serverMetrics{
		reg:               reg,
		connsAccepted:     reg.Counter("cpm_server_connections_accepted_total"),
		connsActive:       reg.Gauge("cpm_server_connections_active"),
		connsClosed:       reg.Counter("cpm_server_connections_closed_total"),
		handshakeTimeouts: reg.Counter("cpm_server_handshake_timeouts_total"),
		writeTimeouts:     reg.Counter("cpm_server_write_timeouts_total"),
		protocolErrors:    reg.Counter("cpm_server_protocol_errors_total"),
		framesIn:          reg.Counter("cpm_server_frames_in_total"),
		framesOut:         reg.Counter("cpm_server_frames_out_total"),
		eventsOut:         reg.Counter("cpm_server_events_out_total"),
		gapFrames:         reg.Counter("cpm_server_gap_frames_total"),
		hubDropped:        reg.Counter("cpm_server_hub_dropped_total"),
		subscribes:        reg.Counter("cpm_server_subscribes_total"),
		subsActive:        reg.Gauge("cpm_server_subscriptions_active"),
		handleBootstrap:   reg.Histogram("cpm_server_handle_bootstrap_ns"),
		handleTick:        reg.Histogram("cpm_server_handle_tick_ns"),
		handleRegister:    reg.Histogram("cpm_server_handle_register_ns"),
		handleResult:      reg.Histogram("cpm_server_handle_result_ns"),
		handleSubscribe:   reg.Histogram("cpm_server_handle_subscribe_ns"),
		cycle:             reg.Histogram("cpm_monitor_cycle_ns"),
		phaseRelocate:     reg.Histogram("cpm_tick_phase_relocate_ns"),
		phaseReeval:       reg.Histogram("cpm_tick_phase_reeval_ns"),
		phaseQueryUpd:     reg.Histogram("cpm_tick_phase_queryupd_ns"),
		phaseDiff:         reg.Histogram("cpm_tick_phase_diff_ns"),
	}
	monGauge := func(name string, read func() int64) {
		reg.GaugeFunc(name, func() int64 {
			s.monMu.Lock()
			defer s.monMu.Unlock()
			return read()
		})
	}
	monGauge("cpm_monitor_cycles_total", func() int64 { return s.mon.Cycles() })
	monGauge("cpm_monitor_objects", func() int64 { return int64(s.mon.ObjectCount()) })
	monGauge("cpm_monitor_queries", func() int64 { return int64(s.mon.QueryCount()) })
	monGauge("cpm_monitor_grid_size", func() int64 { return int64(s.mon.GridSize()) })
	monGauge("cpm_monitor_rebalances_total", func() int64 { return s.mon.Rebalances() })
	monGauge("cpm_monitor_objects_scanned_total", func() int64 { return s.mon.Stats().ObjectsProcessed })
	monGauge("cpm_monitor_cell_accesses_total", func() int64 { return s.mon.Stats().CellAccesses })
	monGauge("cpm_monitor_heap_ops_total", func() int64 { return s.mon.Stats().HeapOps })
	monGauge("cpm_monitor_recomputations_total", func() int64 { return s.mon.Stats().Recomputations })
	monGauge("cpm_monitor_full_searches_total", func() int64 { return s.mon.Stats().FullSearches })
	monGauge("cpm_monitor_short_circuits_total", func() int64 { return s.mon.Stats().ShortCircuits })
	monGauge("cpm_monitor_invalid_updates_total", func() int64 { return s.mon.InvalidUpdates() })
	// Backends beyond the Backend contract: *cpm.Monitor reports its
	// Section 4.1 memory units and the shared grid's write epoch, the
	// cluster Coordinator does not (each worker owns a grid of its own).
	// Register the gauges only when the backend can serve them, so a
	// cluster front-end's scrape does not show misleading zeros.
	if mf, ok := s.mon.(interface{ MemoryFootprint() int64 }); ok {
		monGauge("cpm_monitor_memory_units", mf.MemoryFootprint)
	}
	if ge, ok := s.mon.(interface{ GridEpoch() int64 }); ok {
		monGauge("cpm_grid_epoch", ge.GridEpoch)
	}
	return m
}

// observePhases records one tick's phase breakdown into the
// cpm_tick_phase_* histograms.
func (m *serverMetrics) observePhases(ph model.PhaseNanos) {
	m.phaseRelocate.Observe(time.Duration(ph.Relocate))
	m.phaseReeval.Observe(time.Duration(ph.Reeval))
	m.phaseQueryUpd.Observe(time.Duration(ph.QueryUpd))
	m.phaseDiff.Observe(time.Duration(ph.Diff))
}

// snapshotWire collects the registry as wire stats for a Stats frame.
func (m *serverMetrics) snapshotWire() []wire.Stat {
	snap := m.reg.Snapshot()
	out := make([]wire.Stat, len(snap))
	for i, s := range snap {
		out[i] = wire.Stat{Name: s.Name, Value: s.Value}
	}
	return out
}

// Metrics returns the server's metrics registry — the backing store of
// the /metrics endpoint (cmd/cpmserver) and the wire Stats frame. Callers
// must treat it as read-only.
func (s *Server) Metrics() *metrics.Registry { return s.met.reg }

// ObserveCycle records one processing-cycle duration into the
// cpm_monitor_cycle_ns histogram — the hook for in-process drivers that
// tick the monitor through Locked (network ticks record themselves).
func (s *Server) ObserveCycle(d time.Duration) { s.met.cycle.Observe(d) }
