package server

import (
	"net"
	"testing"
	"time"

	"cpm"
	"cpm/internal/wire"
)

// connCount reads the live-connection count race-free.
func connCount(s *Server) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.conns)
}

// waitConnCount polls until the server's live-connection count reaches
// want, failing after the deadline.
func waitConnCount(t *testing.T, s *Server, want int, within time.Duration) {
	t.Helper()
	deadline := time.Now().Add(within)
	for {
		if connCount(s) == want {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("still %d live connections after %v, want %d", connCount(s), within, want)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestWriteTimeoutDropsStalledReader is the stalled-peer regression test:
// a subscriber that stops draining its socket fills the TCP window, the
// writer's next flush blocks, and without a write deadline the writer
// goroutine — and, through send backpressure, the connection's forwarders
// and request handler — would be parked forever. With WriteTimeout set the
// server must instead close the connection shortly after the stall, and
// the monitor must keep ticking throughout.
func TestWriteTimeoutDropsStalledReader(t *testing.T) {
	srv, addr := startServerOpts(t, cpm.Options{GridSize: 16}, Options{
		WriteQueue:        1,
		SocketWriteBuffer: 1,
		WriteTimeout:      200 * time.Millisecond,
	})

	// Raw dial with a minimal receive buffer, so the stalled window fills
	// after a few kilobytes instead of the OS default.
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()
	if tc, ok := nc.(*net.TCPConn); ok {
		tc.SetReadBuffer(1)
	}
	r := wire.NewReader(nc)
	if _, err := nc.Write(wire.AppendHello(nil, 0)); err != nil {
		t.Fatal(err)
	}
	nc.SetReadDeadline(time.Now().Add(10 * time.Second))
	if typ, _, err := r.Next(); err != nil || typ != wire.FrameWelcome {
		t.Fatalf("handshake: %v %v", typ, err)
	}

	// Populate and register a k-32 query, then subscribe with a roomy hub
	// buffer: every tick pushes a ~400-byte event at this k.
	const k = 32
	srv.Locked(func(m Backend) {
		objs := make(map[cpm.ObjectID]cpm.Point, 64)
		for i := 0; i < 64; i++ {
			objs[cpm.ObjectID(i)] = cpm.Point{X: float64(i%8) / 8, Y: float64(i/8) / 8}
		}
		m.Bootstrap(objs)
		if err := m.RegisterQuery(1, cpm.Point{X: 0.5, Y: 0.5}, k); err != nil {
			t.Fatal(err)
		}
	})
	if _, err := nc.Write(wire.AppendSubscribe(nil, 1, wire.Subscribe{SubID: 1, Buffer: 256})); err != nil {
		t.Fatal(err)
	}
	if typ, _, err := r.Next(); err != nil || typ != wire.FrameAck {
		t.Fatalf("subscribe ack: %v %v", typ, err)
	}

	// Stall: stop reading entirely while ticks keep generating events. The
	// processing loop must never block — delivery loss is the hub's
	// problem, the jammed socket is the write deadline's.
	for cycle := 0; cycle < 600; cycle++ {
		srv.Locked(func(m Backend) {
			b := cpm.Batch{}
			for i := 0; i < 64; i++ {
				old, _ := m.ObjectPosition(cpm.ObjectID(i))
				to := cpm.Point{
					X: float64((i+cycle)%8) / 8,
					Y: float64((i*3+cycle)%16) / 16,
				}
				b.Objects = append(b.Objects, cpm.MoveUpdate(cpm.ObjectID(i), old, to))
			}
			m.Tick(b)
		})
	}

	// The stalled connection must be dropped within roughly WriteTimeout
	// (generous slack for slow CI runners), not never.
	waitConnCount(t, srv, 0, 10*time.Second)

	// And the monitor is still serviceable after the drop.
	srv.Locked(func(m Backend) {
		if got := len(m.Result(1)); got != k {
			t.Fatalf("post-drop result has %d neighbors, want %d", got, k)
		}
	})
}

// TestHandshakeTimeoutReapsIdleConn is the never-handshaking-peer
// regression test: a connection that sends no Hello must be reaped after
// HandshakeTimeout instead of pinning a reader goroutine (and its socket)
// forever.
func TestHandshakeTimeoutReapsIdleConn(t *testing.T) {
	srv, addr := startServerOpts(t, cpm.Options{GridSize: 16}, Options{
		HandshakeTimeout: 200 * time.Millisecond,
	})

	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	defer nc.Close()

	// Send nothing. The server must close the connection on its own: the
	// read below unblocks with an error well before its own deadline.
	nc.SetReadDeadline(time.Now().Add(10 * time.Second))
	if _, _, err := wire.NewReader(nc).Next(); err == nil {
		t.Fatal("server answered a connection that never sent hello")
	}
	waitConnCount(t, srv, 0, 10*time.Second)

	// A prompt handshake still works: the deadline is cleared after Hello,
	// so an established connection may idle past HandshakeTimeout.
	tc := dialRaw(t, addr)
	time.Sleep(400 * time.Millisecond) // > HandshakeTimeout, post-handshake
	tc.write(wire.AppendResultReq(nil, 1, 42))
	typ, _, err := tc.next()
	if err != nil || typ != wire.FrameResult {
		t.Fatalf("idle established connection: %v %v", typ, err)
	}
}
