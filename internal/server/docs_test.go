package server

import (
	"os"
	"regexp"
	"strings"
	"testing"

	"cpm"
	"cpm/client"
	"cpm/internal/tracing"
)

// TestMetricsDocsComplete keeps docs/METRICS.md honest: every metric the
// registry exposes must appear in the reference table, and the table must
// not document metrics that no longer exist. Only table rows are parsed
// (lines starting "| `cpm_"), so prose may mention expanded histogram
// names (foo_ns_p99_ns) freely.
func TestMetricsDocsComplete(t *testing.T) {
	data, err := os.ReadFile("../../docs/METRICS.md")
	if err != nil {
		t.Fatalf("docs/METRICS.md unreadable: %v", err)
	}
	row := regexp.MustCompile("(?m)^\\| `(cpm_[a-z0-9_]+)`")
	documented := map[string]bool{}
	for _, m := range row.FindAllStringSubmatch(string(data), -1) {
		documented[m[1]] = true
	}
	if len(documented) == 0 {
		t.Fatal("no metric rows found in docs/METRICS.md")
	}

	s, _ := startServer(t, cpm.Options{GridSize: 16})
	live := map[string]bool{}
	for _, name := range s.Metrics().Names() {
		live[name] = true
	}

	for name := range live {
		if !documented[name] {
			t.Errorf("metric %s exists but is not documented in docs/METRICS.md", name)
		}
	}
	for name := range documented {
		if !live[name] {
			t.Errorf("docs/METRICS.md documents %s, which no registry exposes", name)
		}
	}
}

// TestTracingDocsComplete keeps docs/TRACING.md honest the same way:
// every op span name and engine phase span name the server actually
// emits must appear in the document (in backticks), along with the
// tick-phase metric names, the flag trio, and the HTTP surface.
func TestTracingDocsComplete(t *testing.T) {
	data, err := os.ReadFile("../../docs/TRACING.md")
	if err != nil {
		t.Fatalf("docs/TRACING.md unreadable: %v", err)
	}
	doc := string(data)
	documented := func(name string) bool {
		return regexp.MustCompile("`" + regexp.QuoteMeta(name) + "`").MatchString(doc)
	}

	// Drive a sampled server through every operation type and collect
	// what the recorder actually holds.
	tr := tracing.New(tracing.Options{SampleRate: 1, Seed: 11})
	_, addr := startServerOpts(t, cpm.Options{GridSize: 16}, Options{Tracer: tr})
	c, err := client.Dial(addr, client.Options{Trace: true, SyncDiffs: true})
	if err != nil {
		t.Fatal(err)
	}
	defer c.Close()
	if err := c.Bootstrap(map[cpm.ObjectID]cpm.Point{1: {X: 0.2, Y: 0.2}, 2: {X: 0.6, Y: 0.6}}); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterQuery(1, cpm.Point{X: 0.3, Y: 0.3}, 1); err != nil {
		t.Fatal(err)
	}
	if err := c.Tick(cpm.Batch{Objects: []cpm.Update{
		cpm.MoveUpdate(1, cpm.Point{X: 0.2, Y: 0.2}, cpm.Point{X: 0.25, Y: 0.25}),
	}}); err != nil {
		t.Fatal(err)
	}
	if err := c.MoveQuery(1, cpm.Point{X: 0.35, Y: 0.35}); err != nil {
		t.Fatal(err)
	}
	if _, err := c.Result(1); err != nil {
		t.Fatal(err)
	}
	if err := c.RemoveQuery(1); err != nil {
		t.Fatal(err)
	}

	seen := map[string]bool{}
	for _, rec := range tr.Traces() {
		seen[rec.Name] = true
		for _, s := range rec.Spans {
			seen[s.Name] = true
		}
	}
	if len(seen) < 6 {
		t.Fatalf("drove every op type but recorded only %v", seen)
	}
	for name := range seen {
		if !documented(name) {
			t.Errorf("span name %q is emitted but not documented in docs/TRACING.md", name)
		}
	}

	// The coordinator-side span vocabulary (exercised by the cluster
	// trace tests) and the operator surface must stay documented too.
	for _, name := range []string{
		"worker<N>", "worker<N>/relocate", "worker<N>/reeval",
		"worker<N>/queryupd", "worker<N>/diff", "worker<N>/timeout", "merge",
		"-trace-sample", "-slow-op", "-trace-cap",
	} {
		if !documented(name) {
			t.Errorf("docs/TRACING.md no longer documents %q", name)
		}
	}
	if !regexp.MustCompile(`/debug/traces`).MatchString(doc) {
		t.Error("docs/TRACING.md no longer documents /debug/traces")
	}

	// Every tick-phase histogram must be mentioned by exact name.
	s, _ := startServer(t, cpm.Options{GridSize: 16})
	for _, name := range s.Metrics().Names() {
		if strings.HasPrefix(name, "cpm_tick_phase_") && !documented(name) {
			t.Errorf("metric %s exists but docs/TRACING.md does not mention it", name)
		}
	}
}
