package server

import (
	"os"
	"regexp"
	"testing"

	"cpm"
)

// TestMetricsDocsComplete keeps docs/METRICS.md honest: every metric the
// registry exposes must appear in the reference table, and the table must
// not document metrics that no longer exist. Only table rows are parsed
// (lines starting "| `cpm_"), so prose may mention expanded histogram
// names (foo_ns_p99_ns) freely.
func TestMetricsDocsComplete(t *testing.T) {
	data, err := os.ReadFile("../../docs/METRICS.md")
	if err != nil {
		t.Fatalf("docs/METRICS.md unreadable: %v", err)
	}
	row := regexp.MustCompile("(?m)^\\| `(cpm_[a-z0-9_]+)`")
	documented := map[string]bool{}
	for _, m := range row.FindAllStringSubmatch(string(data), -1) {
		documented[m[1]] = true
	}
	if len(documented) == 0 {
		t.Fatal("no metric rows found in docs/METRICS.md")
	}

	s, _ := startServer(t, cpm.Options{GridSize: 16})
	live := map[string]bool{}
	for _, name := range s.Metrics().Names() {
		live[name] = true
	}

	for name := range live {
		if !documented[name] {
			t.Errorf("metric %s exists but is not documented in docs/METRICS.md", name)
		}
	}
	for name := range documented {
		if !live[name] {
			t.Errorf("docs/METRICS.md documents %s, which no registry exposes", name)
		}
	}
}
