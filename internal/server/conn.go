package server

import (
	"encoding/json"
	"errors"
	"io"
	"net"
	"sync"
	"time"

	"cpm"
	"cpm/internal/model"
	"cpm/internal/tracing"
	"cpm/internal/wire"
)

// outKind discriminates the frames a connection's writer can emit.
type outKind uint8

const (
	outWelcome outKind = iota
	outAck
	outResult
	outEvent
	outSnapshot
	outGap
	outStats
	outDiffs
	outTraces
)

// outFrame is one queued outbound frame. A single struct (instead of
// per-kind types) keeps the writer queue allocation-free: frames travel by
// value through the channel.
type outFrame struct {
	kind  outKind
	reqID uint64
	subID uint32
	seq   uint64 // event seq; server instance for outWelcome
	from  uint64
	to    uint64
	query model.QueryID
	live  bool
	errs  string
	diff  model.ResultDiff
	diffs []model.ResultDiff // outDiffs: a sync-diffs response
	res   []model.Neighbor
	stats []wire.Stat
	// phases is the tick-phase trailer an outDiffs frame carries on a
	// trace-negotiated connection (zero for non-Tick operations).
	phases model.PhaseNanos
	// raw is a pre-encoded payload document (outTraces).
	raw []byte
}

// conn is one client connection: a reader goroutine executing requests, a
// writer goroutine owning the send side, and one forwarder per
// subscription.
type conn struct {
	srv *Server
	nc  net.Conn

	out  chan outFrame
	done chan struct{}

	closeOnce sync.Once

	// sync is set during the handshake when the peer's Hello carried
	// HelloSyncDiffs: successful mutating requests are answered with the
	// operation's diffs instead of a bare ack.
	sync bool
	// checksum is set when the Hello carried HelloChecksum: inbound frames
	// are verified and every outbound frame after the Welcome is sealed
	// with a CRC32-C trailer. Written before the Welcome is queued, so the
	// writer observes it through the channel's happens-before edge.
	checksum bool
	// trace is set when the Hello carried HelloTrace: the Welcome grows a
	// flags byte echoing WelcomeTrace, TraceCtx/TracesReq frames are
	// accepted, and Diffs replies carry the tick-phase trailer. Written
	// before the Welcome is queued (same happens-before as checksum).
	trace bool
	// pendTraceID/pendSpanID hold the context of the last TraceCtx frame,
	// consumed by the next request. Reader-goroutine only: TraceCtx and
	// the request it annotates arrive on the same readLoop.
	pendTraceID uint64
	pendSpanID  uint64

	mu   sync.Mutex
	subs map[uint32]*cpm.Subscription
}

func newConn(s *Server, nc net.Conn) *conn {
	return &conn{
		srv:  s,
		nc:   nc,
		out:  make(chan outFrame, s.opts.WriteQueue),
		done: make(chan struct{}),
		subs: make(map[uint32]*cpm.Subscription),
	}
}

// close tears the connection down from any goroutine: the socket unblocks
// the reader, done unblocks the writer and the forwarders, and closing the
// subscriptions unblocks their hub pumps.
func (c *conn) close() {
	c.closeOnce.Do(func() {
		close(c.done)
		c.nc.Close()
		c.mu.Lock()
		subs := c.subs
		c.subs = nil
		c.mu.Unlock()
		for _, sub := range subs {
			sub.Close()
		}
		c.srv.met.subsActive.Add(-int64(len(subs)))
	})
}

// send queues one outbound frame, blocking while the writer drains —
// that blocking is the backpressure path described in the package comment.
// It reports false once the connection is closing.
func (c *conn) send(f outFrame) bool {
	select {
	case c.out <- f:
		return true
	case <-c.done:
		return false
	}
}

// serve runs the connection to completion.
func (c *conn) serve() {
	defer c.srv.removeConn(c)

	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		c.writeLoop()
	}()

	err := c.readLoop()
	// Close before waiting: the writer (and the forwarders) exit via done.
	c.close()
	wg.Wait()
	c.srv.met.connsActive.Add(-1)
	c.srv.met.connsClosed.Inc()
	if err != nil && !errors.Is(err, io.EOF) && !errors.Is(err, net.ErrClosed) {
		var nerr net.Error
		if !errors.As(err, &nerr) || !nerr.Timeout() {
			c.srv.met.protocolErrors.Inc()
		}
		c.srv.logf("server: %s: %v", c.nc.RemoteAddr(), err)
	}
}

// readLoop decodes and executes request frames until the connection dies.
func (c *conn) readLoop() error {
	r := wire.NewReader(c.nc)

	// The handshake comes first: exactly one Hello, which must arrive
	// within HandshakeTimeout — a connection that never speaks would
	// otherwise pin this goroutine (and its socket) forever.
	if d := c.srv.opts.HandshakeTimeout; d > 0 {
		c.nc.SetReadDeadline(time.Now().Add(d))
	}
	t, payload, err := r.Next()
	if err != nil {
		var nerr net.Error
		if errors.As(err, &nerr) && nerr.Timeout() {
			c.srv.met.handshakeTimeouts.Inc()
		}
		return err
	}
	c.srv.met.framesIn.Inc()
	if t != wire.FrameHello {
		return errors.New("first frame is not hello")
	}
	flags, err := wire.DecodeHello(payload)
	if err != nil {
		return err
	}
	if flags&wire.HelloSyncDiffs != 0 {
		c.sync = true
		// Flip the whole server into sync mode: the monitor buffers every
		// operation's diffs from here on, and every mutating handler
		// drains that buffer (see handle), so it never grows unbounded.
		c.srv.monMu.Lock()
		c.srv.syncMode = true
		c.srv.mon.KeepDiffs(true)
		c.srv.mon.TakeDiffs() // discard anything predating this connection
		c.srv.monMu.Unlock()
	}
	if flags&wire.HelloChecksum != 0 {
		c.checksum = true
		r.EnableChecksum()
	}
	if flags&wire.HelloTrace != 0 {
		c.trace = true
	}
	// Handshake done: established connections may idle indefinitely —
	// but a frame whose header arrived must finish within the handshake
	// bound. The CRC trailer cannot cover the length prefix, so a
	// corrupted length overstating the body would otherwise pin this
	// reader on bytes that never come.
	c.nc.SetReadDeadline(time.Time{})
	if d := c.srv.opts.HandshakeTimeout; d > 0 {
		r.ArmBody(func(owed bool) {
			if owed {
				c.nc.SetReadDeadline(time.Now().Add(d))
			} else {
				c.nc.SetReadDeadline(time.Time{})
			}
		})
	}
	if !c.send(outFrame{kind: outWelcome, seq: c.srv.instance}) {
		return nil
	}
	c.srv.logf("server: %s: connected", c.nc.RemoteAddr())

	for {
		t, payload, err := r.Next()
		if err != nil {
			return err
		}
		c.srv.met.framesIn.Inc()
		if err := c.handle(t, payload); err != nil {
			return err
		}
	}
}

// handle executes one request frame. Monitor errors become error acks (the
// stream stays up); protocol errors are returned and kill the connection.
func (c *conn) handle(t wire.FrameType, payload []byte) error {
	s := c.srv
	switch t {
	case wire.FrameBootstrap:
		reqID, objs, err := wire.DecodeBootstrap(payload)
		if err != nil {
			return err
		}
		m := make(map[model.ObjectID]cpm.Point, len(objs))
		for _, o := range objs {
			m[o.ID] = o.Pos
		}
		errMsg := ""
		var diffs []model.ResultDiff
		sp := c.opSpan("bootstrap")
		start := time.Now()
		func() {
			// Bootstrap panics on a second call by contract; a remote
			// client must not be able to crash the server with it.
			defer func() {
				if r := recover(); r != nil {
					errMsg = "bootstrap rejected: population already loaded"
				}
			}()
			s.monMu.Lock()
			defer s.monMu.Unlock()
			defer func() { diffs = c.drainDiffs() }()
			s.mon.Bootstrap(m)
		}()
		s.met.handleBootstrap.ObserveSince(start)
		sp.Finish()
		c.mutReply(reqID, errMsg, diffs)

	case wire.FrameTick:
		reqID, b, err := wire.DecodeTick(payload)
		if err != nil {
			return err
		}
		sp := c.opSpan("tick")
		start := time.Now()
		s.monMu.Lock()
		opStart := time.Now() // tick proper: lock wait excluded
		s.setOpSpan(sp)
		s.mon.Tick(b)
		s.setOpSpan(nil)
		cycleNs := s.mon.LastCycleNanos()
		ph := s.mon.LastPhases()
		diffs := c.drainDiffs()
		s.monMu.Unlock()
		s.met.handleTick.ObserveSince(start)
		s.met.cycle.Observe(time.Duration(cycleNs))
		s.met.observePhases(ph)
		tickSpans(sp, opStart, ph)
		sp.Finish()
		c.mutReplyPhases(reqID, "", diffs, ph)

	case wire.FrameRegister:
		reqID, reg, err := wire.DecodeRegister(payload)
		if err != nil {
			return err
		}
		sp := c.opSpan("register")
		start := time.Now()
		s.monMu.Lock()
		s.setOpSpan(sp)
		rerr := s.register(reg)
		s.setOpSpan(nil)
		diffs := c.drainDiffs()
		s.monMu.Unlock()
		s.met.handleRegister.ObserveSince(start)
		sp.Finish()
		c.mutReplyErr(reqID, rerr, diffs)

	case wire.FrameMoveQuery:
		reqID, id, pts, err := wire.DecodeMoveQuery(payload)
		if err != nil {
			return err
		}
		sp := c.opSpan("movequery")
		s.monMu.Lock()
		s.setOpSpan(sp)
		rerr := s.mon.MoveQuery(id, pts...)
		s.setOpSpan(nil)
		diffs := c.drainDiffs()
		s.monMu.Unlock()
		sp.Finish()
		c.mutReplyErr(reqID, rerr, diffs)

	case wire.FrameRemoveQuery:
		reqID, id, err := wire.DecodeRemoveQuery(payload)
		if err != nil {
			return err
		}
		sp := c.opSpan("removequery")
		s.monMu.Lock()
		s.setOpSpan(sp)
		s.mon.RemoveQuery(id)
		s.setOpSpan(nil)
		diffs := c.drainDiffs()
		s.monMu.Unlock()
		sp.Finish()
		c.mutReply(reqID, "", diffs)

	case wire.FrameReset:
		reqID, err := wire.DecodeReset(payload)
		if err != nil {
			return err
		}
		s.monMu.Lock()
		s.mon.Reset()
		c.drainDiffs() // discard the terminal removal diffs
		s.monMu.Unlock()
		c.ack(reqID, "")

	case wire.FrameResultReq:
		reqID, id, err := wire.DecodeResultReq(payload)
		if err != nil {
			return err
		}
		sp := c.opSpan("result")
		start := time.Now()
		s.monMu.Lock()
		snap := s.mon.Snapshot(id)
		s.monMu.Unlock()
		s.met.handleResult.ObserveSince(start)
		sp.Finish()
		c.send(outFrame{kind: outResult, reqID: reqID, query: id, live: snap[0].Live, res: snap[0].Result})

	case wire.FrameSubscribe:
		reqID, sub, err := wire.DecodeSubscribe(payload)
		if err != nil {
			return err
		}
		start := time.Now()
		serr := c.subscribe(reqID, sub)
		s.met.handleSubscribe.ObserveSince(start)
		return serr

	case wire.FrameStatsReq:
		reqID, err := wire.DecodeStatsReq(payload)
		if err != nil {
			return err
		}
		c.send(outFrame{kind: outStats, reqID: reqID, stats: s.met.snapshotWire()})

	case wire.FrameUnsubscribe:
		reqID, subID, err := wire.DecodeUnsubscribe(payload)
		if err != nil {
			return err
		}
		c.mu.Lock()
		sub := c.subs[subID]
		delete(c.subs, subID)
		c.mu.Unlock()
		if sub == nil {
			c.ack(reqID, "unknown subscription")
			break
		}
		sub.Close() // the forwarder exits when the events channel closes
		s.met.subsActive.Add(-1)
		c.ack(reqID, "")

	case wire.FrameTraceCtx:
		if !c.trace {
			return errors.New("tracectx on a connection without the tracing extension")
		}
		tid, sid, err := wire.DecodeTraceCtx(payload)
		if err != nil {
			return err
		}
		c.pendTraceID, c.pendSpanID = tid, sid

	case wire.FrameTracesReq:
		if !c.trace {
			return errors.New("tracesreq on a connection without the tracing extension")
		}
		reqID, tid, err := wire.DecodeTracesReq(payload)
		if err != nil {
			return err
		}
		var doc []byte
		if tid == 0 {
			doc = s.tracer.MarshalTraces()
		} else if tr, ok := s.tracer.Trace(tid); ok {
			doc, _ = json.Marshal(tr)
		} else {
			doc = []byte("null")
		}
		c.send(outFrame{kind: outTraces, reqID: reqID, raw: doc})

	default:
		return errors.New("unexpected frame " + t.String())
	}
	return nil
}

// opSpan opens the server-side span for one request: joining the
// client's trace when a TraceCtx frame preceded the request, or making a
// fresh head-sampling decision otherwise. Pending context is consumed
// either way (it applies to exactly one request). Returns nil when
// tracing is off or the op is unsampled — every span method no-ops on
// nil, so handlers use the result unconditionally.
func (c *conn) opSpan(name string) *tracing.Span {
	tid, sid := c.pendTraceID, c.pendSpanID
	c.pendTraceID, c.pendSpanID = 0, 0
	t := c.srv.tracer
	if tid != 0 {
		return t.StartRemote(name, tracing.Context{TraceID: tid, SpanID: sid})
	}
	return t.StartRoot(name)
}

// tickSpans attaches the engine's phase decomposition to a tick span as
// child spans. The phases are durations, not timestamps: relocate, re-eval
// and query-update ran back to back from opStart, and diff derivation
// overlapped them, so the children are laid out sequentially with diff
// anchored at the start.
func tickSpans(sp *tracing.Span, opStart time.Time, ph model.PhaseNanos) {
	if sp == nil {
		return
	}
	at := opStart
	for _, c := range []struct {
		name string
		ns   int64
	}{{"relocate", ph.Relocate}, {"reeval", ph.Reeval}, {"queryupd", ph.QueryUpd}} {
		d := time.Duration(c.ns)
		sp.ChildAt(c.name, at, d)
		at = at.Add(d)
	}
	if ph.Diff > 0 {
		sp.ChildAt("diff", opStart, time.Duration(ph.Diff))
	}
}

// subscribe opens a subscription: under one monitor lock it subscribes to
// the hub and captures the re-sync snapshots, so no processing cycle can
// slip between snapshot state and the first live event. The queue order —
// ack, reset gap, snapshots, live events — is the client's resume
// contract.
func (c *conn) subscribe(reqID uint64, sub wire.Subscribe) error {
	s := c.srv
	c.mu.Lock()
	taken := c.subs != nil && c.subs[sub.SubID] != nil
	c.mu.Unlock()
	if taken {
		c.ack(reqID, "subscription id in use")
		return nil
	}

	reset := sub.Reset || len(sub.Resume) > 0
	opts := cpm.SubscribeOptions{Buffer: int(sub.Buffer), Policy: subscribePolicy(sub.Policy)}
	var (
		nsub  *cpm.Subscription
		snaps []cpm.QuerySnapshot
	)
	s.monMu.Lock()
	nsub = s.mon.SubscribeWith(opts, sub.Queries...)
	if reset || sub.Snapshot {
		snaps = s.resyncSnapshots(sub)
	}
	s.monMu.Unlock()

	c.mu.Lock()
	if c.subs == nil { // connection already closing
		c.mu.Unlock()
		nsub.Close()
		return nil
	}
	c.subs[sub.SubID] = nsub
	c.mu.Unlock()
	s.met.subscribes.Inc()
	s.met.subsActive.Add(1)

	c.ack(reqID, "")
	if reset {
		// The reset marker: sequence numbering restarts, snapshots follow.
		var from uint64
		resumeAt := make(map[model.QueryID]uint64, len(sub.Resume))
		for _, rp := range sub.Resume {
			resumeAt[rp.Query] = rp.Seq
			if rp.Seq > from {
				from = rp.Seq
			}
		}
		c.send(outFrame{kind: outGap, subID: sub.SubID, from: from, to: 0})
		for _, qs := range snaps {
			c.send(outFrame{kind: outSnapshot, subID: sub.SubID, query: qs.Query,
				live: qs.Live, seq: resumeAt[qs.Query], res: qs.Result})
		}
	} else {
		for _, qs := range snaps {
			c.send(outFrame{kind: outSnapshot, subID: sub.SubID, query: qs.Query,
				live: qs.Live, res: qs.Result})
		}
	}
	go c.forward(sub.SubID, nsub)
	return nil
}

// forward pumps one subscription's events into the writer queue, marking
// sequence gaps (the hub dropped or coalesced events past this consumer)
// with an explicit Gap frame.
func (c *conn) forward(subID uint32, sub *cpm.Subscription) {
	var last uint64
	for {
		select {
		case ev, ok := <-sub.Events():
			if !ok {
				return
			}
			if ev.Seq != last+1 {
				// The hub shed events past this consumer: the sequence
				// jump is exactly how many were lost.
				if ev.Seq > last+1 {
					c.srv.met.hubDropped.Add(int64(ev.Seq - last - 1))
				}
				if !c.send(outFrame{kind: outGap, subID: subID, from: last, to: ev.Seq}) {
					return
				}
			}
			last = ev.Seq
			if !c.send(outFrame{kind: outEvent, subID: subID, seq: ev.Seq, diff: ev.ResultDiff}) {
				return
			}
		case <-c.done:
			return
		}
	}
}

// ack queues a response ack; empty msg means success.
func (c *conn) ack(reqID uint64, msg string) { c.send(outFrame{kind: outAck, reqID: reqID, errs: msg}) }

func (c *conn) ackErr(reqID uint64, err error) {
	if err != nil {
		c.ack(reqID, err.Error())
		return
	}
	c.ack(reqID, "")
}

// drainDiffs empties the monitor's sync-diffs buffer (caller holds monMu).
// It drains on every mutating operation once the server is in sync mode —
// whichever connection the operation came from — so the buffer stays
// bounded; the result is only sent back on sync connections.
func (c *conn) drainDiffs() []model.ResultDiff {
	if !c.srv.syncMode {
		return nil
	}
	return c.srv.mon.TakeDiffs()
}

// mutReply answers a mutating request: the operation's diffs on a
// successful sync connection, a plain ack otherwise.
func (c *conn) mutReply(reqID uint64, errMsg string, diffs []model.ResultDiff) {
	c.mutReplyPhases(reqID, errMsg, diffs, model.PhaseNanos{})
}

// mutReplyPhases is mutReply carrying a tick-phase trailer; the trailer
// reaches the wire only on trace-negotiated connections (appendSealed).
func (c *conn) mutReplyPhases(reqID uint64, errMsg string, diffs []model.ResultDiff, ph model.PhaseNanos) {
	if c.sync && errMsg == "" {
		c.send(outFrame{kind: outDiffs, reqID: reqID, diffs: diffs, phases: ph})
		return
	}
	c.ack(reqID, errMsg)
}

func (c *conn) mutReplyErr(reqID uint64, err error, diffs []model.ResultDiff) {
	if err != nil {
		c.mutReply(reqID, err.Error(), diffs)
		return
	}
	c.mutReply(reqID, "", diffs)
}

// writeLoop owns the socket's send side: it encodes queued frames into one
// reused buffer — so steady-state event delivery allocates nothing — and
// coalesces bursts into single writes. Every flush runs under
// WriteTimeout: a peer with a full TCP window (stalled reader) would
// otherwise block Write forever, and the send backpressure behind it would
// wedge the forwarders and the request handler too. On expiry the deferred
// close tears the whole connection down.
func (c *conn) writeLoop() {
	defer c.close()
	met := c.srv.met
	var buf []byte
	for {
		select {
		case f := <-c.out:
			c.countOut(f)
			buf = c.appendSealed(buf[:0], f)
			// Coalesce whatever else is already queued into this write.
		coalesce:
			for len(buf) < 1<<16 {
				select {
				case g := <-c.out:
					c.countOut(g)
					buf = c.appendSealed(buf, g)
				default:
					break coalesce
				}
			}
			if d := c.srv.opts.WriteTimeout; d > 0 {
				c.nc.SetWriteDeadline(time.Now().Add(d))
			}
			if _, err := c.nc.Write(buf); err != nil {
				var nerr net.Error
				if errors.As(err, &nerr) && nerr.Timeout() {
					met.writeTimeouts.Inc()
				}
				return
			}
		case <-c.done:
			return
		}
	}
}

// countOut attributes one outbound frame to the frame/event/gap counters.
func (c *conn) countOut(f outFrame) {
	met := c.srv.met
	met.framesOut.Inc()
	switch f.kind {
	case outEvent:
		met.eventsOut.Inc()
	case outGap:
		met.gapFrames.Inc()
	}
}

// appendSealed encodes one queued frame, adding the CRC trailer on
// checksum connections. The Welcome is exempt: it completes the handshake
// that negotiates the mode.
func (c *conn) appendSealed(buf []byte, f outFrame) []byte {
	mark := len(buf)
	switch {
	case f.kind == outWelcome && c.trace:
		// The flags byte is version-negotiated: only clients that sent
		// HelloTrace get it (an old client would reject trailing bytes).
		buf = wire.AppendWelcomeFlags(buf, f.seq, wire.WelcomeTrace)
	case f.kind == outDiffs && c.trace:
		buf = wire.AppendDiffsPhases(buf, f.reqID, f.diffs, f.phases)
	default:
		buf = appendOut(buf, f)
	}
	if c.checksum && f.kind != outWelcome {
		buf = wire.Seal(buf, mark)
	}
	return buf
}

// appendOut encodes one queued frame.
func appendOut(buf []byte, f outFrame) []byte {
	switch f.kind {
	case outWelcome:
		return wire.AppendWelcome(buf, f.seq)
	case outAck:
		return wire.AppendAck(buf, f.reqID, f.errs)
	case outResult:
		return wire.AppendResult(buf, f.reqID, f.query, f.live, f.res)
	case outEvent:
		return wire.AppendEvent(buf, f.subID, f.seq, f.diff)
	case outSnapshot:
		return wire.AppendSnapshot(buf, wire.Snapshot{
			SubID: f.subID, Query: f.query, Live: f.live, ResumeSeq: f.seq, Result: f.res,
		})
	case outGap:
		return wire.AppendGap(buf, wire.Gap{SubID: f.subID, From: f.from, To: f.to})
	case outStats:
		return wire.AppendStats(buf, f.reqID, f.stats)
	case outDiffs:
		return wire.AppendDiffs(buf, f.reqID, f.diffs)
	case outTraces:
		return wire.AppendTraces(buf, f.reqID, f.raw)
	default:
		return buf
	}
}
