// Package server exposes a cpm.Monitor over TCP using the internal/wire
// protocol: remote clients feed the monitor (bootstrap, update batches,
// query registrations) and consume its results by polling or by
// subscribing to the push-based diff stream — the serving layer that turns
// the library into a deployable service.
//
// # Concurrency model
//
// The monitor itself is single-threaded by contract, so the server
// serializes every monitor operation — from any connection — behind one
// mutex; Locked exposes the same mutex to in-process drivers (for example
// cmd/cpmserver's self-driving workload loop). Each connection runs two
// goroutines: a reader that decodes request frames and executes them
// against the monitor, and a writer that owns the socket's send side,
// encoding every outbound frame from one reused buffer (the wire encoders
// are allocation-free) and coalescing bursts into single writes. Pushed
// events travel a third path: one forwarder goroutine per subscription
// consumes the notify hub's channel and hands events to the writer.
//
// # Flow control and loss
//
// Delivery never blocks the processing loop. When a consumer falls behind,
// backpressure propagates backwards — TCP send buffer, writer queue,
// forwarder — until the notify hub's slow-consumer policy (DropOldest or
// CoalesceLatest, chosen per subscription) sheds events. The forwarder
// detects the resulting sequence gaps and inserts an explicit Gap frame,
// so consumers never miss a loss silently; every diff event carries the
// full current result, so any single event re-syncs them.
//
// Backpressure is bounded in time, not just in space: every socket flush
// runs under Options.WriteTimeout, so a peer that stops draining entirely
// (full TCP window) gets its connection closed instead of parking the
// writer — and, transitively, the forwarders and the request handler —
// forever. Symmetrically, Options.HandshakeTimeout reaps connections that
// never send their Hello.
//
// # Resume
//
// A reconnecting subscriber presents its last-seen sequence number per
// query (wire.Subscribe.Resume). The server cannot replay the missed
// events — the hub keeps no history — so it re-syncs the client instead:
// under one lock it creates the new subscription and snapshots the current
// results (cpm.Monitor.Snapshot), then sends a reset Gap marker, one
// Snapshot frame per query (terminated queries come back Live=false), and
// resumes the live stream. No transition is ever silently lost.
package server

import (
	"errors"
	"fmt"
	"math/rand"
	"net"
	"sync"
	"time"

	"cpm"
	"cpm/internal/geom"
	"cpm/internal/model"
	"cpm/internal/notify"
	"cpm/internal/tracing"
	"cpm/internal/wire"
)

// ErrClosed is returned by Serve after Close.
var ErrClosed = errors.New("server: closed")

// Backend is the monitor-shaped surface a Server exposes over the wire.
// *cpm.Monitor implements it for the ordinary single-process server;
// internal/cluster's Coordinator implements it too, so the same Server
// (and therefore the same unmodified client package) can front a whole
// worker fleet. Like the monitor, a Backend is single-threaded by
// contract: the server serializes every call behind one mutex.
type Backend interface {
	Bootstrap(objs map[model.ObjectID]geom.Point)
	Tick(b model.Batch)
	RegisterQuery(id model.QueryID, q geom.Point, k int) error
	RegisterAggQuery(id model.QueryID, pts []geom.Point, k int, agg geom.Agg) error
	RegisterConstrainedQuery(id model.QueryID, q geom.Point, k int, region geom.Rect) error
	RegisterRangeQuery(id model.QueryID, center geom.Point, radius float64) error
	MoveQuery(id model.QueryID, to ...geom.Point) error
	RemoveQuery(id model.QueryID)
	Snapshot(ids ...model.QueryID) []cpm.QuerySnapshot
	Result(id model.QueryID) []cpm.Neighbor
	ObjectPosition(id model.ObjectID) (geom.Point, bool)
	SubscribeWith(opts cpm.SubscribeOptions, ids ...model.QueryID) *cpm.Subscription
	ChangedQueries() []model.QueryID

	// Sync-diffs collection (wire.HelloSyncDiffs) and cluster re-sync.
	KeepDiffs(on bool)
	TakeDiffs() []model.ResultDiff
	Reset()

	// Observability, read by the monitor-state gauges at scrape time.
	Cycles() int64
	LastCycleNanos() int64
	ObjectCount() int
	QueryCount() int
	GridSize() int
	Rebalances() int64
	Stats() model.Stats
	InvalidUpdates() int64
	LastPhases() model.PhaseNanos
}

var _ Backend = (*cpm.Monitor)(nil)

// Options tune a Server. The zero value is ready for production use.
type Options struct {
	// WriteQueue is the per-connection outbound frame queue capacity
	// (default 256). When it fills, backpressure reaches the notify hub,
	// whose per-subscription policy sheds events.
	WriteQueue int
	// WriteTimeout bounds every socket flush (default 10s). A peer that
	// stops draining its receive buffer would otherwise park the writer
	// goroutine in Write forever; the resulting send backpressure then
	// wedges the connection's forwarders and request handler for good.
	// On expiry the connection is closed. Negative disables the deadline.
	WriteTimeout time.Duration
	// HandshakeTimeout bounds the wait for the client's Hello frame
	// (default 10s); it is cleared once the handshake completes. Without
	// it a connection that never speaks leaks a reader goroutine per
	// socket indefinitely. Negative disables the deadline.
	HandshakeTimeout time.Duration
	// SocketWriteBuffer, when positive, sets each accepted connection's
	// kernel send-buffer size (SetWriteBuffer). Shrinking it makes
	// slow-consumer backpressure (and therefore drop/gap behavior)
	// reproducible in tests; leave 0 for the OS default in production.
	SocketWriteBuffer int
	// Logf, when set, receives connection-level diagnostics (accepted,
	// closed, protocol errors). The server is silent without it.
	Logf func(format string, args ...any)
	// Tracer, when set, records a span per handled operation (joined to
	// the client's trace when the connection negotiated wire.HelloTrace)
	// plus tick-phase child spans. Nil disables tracing entirely — the
	// request path then costs one nil check per op.
	Tracer *tracing.Tracer
}

func (o *Options) defaults() {
	if o.WriteQueue <= 0 {
		o.WriteQueue = 256
	}
	if o.WriteTimeout == 0 {
		o.WriteTimeout = 10 * time.Second
	}
	if o.HandshakeTimeout == 0 {
		o.HandshakeTimeout = 10 * time.Second
	}
}

// Server serves one Backend (usually a cpm.Monitor) to any number of
// network clients.
type Server struct {
	opts   Options
	mon    Backend
	met    *serverMetrics
	tracer *tracing.Tracer // nil when tracing is disabled
	// instance is a random per-Server identifier echoed in every Welcome:
	// a reconnecting peer that sees a different instance knows it is
	// talking to a restarted server whose state is gone.
	instance uint64

	// monMu serializes all monitor access: connection handlers, Locked.
	monMu sync.Mutex
	// syncMode is set (under monMu, permanently) once any sync-diffs
	// connection completes its handshake: from then on every mutating
	// handler drains the monitor's diff buffer so it cannot grow without
	// bound, whichever connection the operation came from.
	syncMode bool

	mu     sync.Mutex
	ln     net.Listener
	conns  map[*conn]struct{}
	closed bool
	wg     sync.WaitGroup
}

// New creates a server around an existing monitor. The caller keeps
// ownership of the monitor (and closes it after the server); all direct
// access must go through Locked once Serve has started.
func New(mon Backend, opts Options) *Server {
	opts.defaults()
	s := &Server{
		opts:     opts,
		mon:      mon,
		tracer:   opts.Tracer,
		instance: rand.Uint64() | 1, // never 0: 0 means "field absent" on the wire
		conns:    make(map[*conn]struct{}),
	}
	s.met = newServerMetrics(s)
	return s
}

// Locked runs f with exclusive access to the served monitor — the hook for
// in-process drivers (a workload loop, a stats dump) that share the
// monitor with the network.
func (s *Server) Locked(f func(m Backend)) {
	s.monMu.Lock()
	defer s.monMu.Unlock()
	f(s.mon)
}

// Serve accepts connections on ln until Close. It always returns a non-nil
// error: ErrClosed after Close, the accept error otherwise.
func (s *Server) Serve(ln net.Listener) error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		ln.Close()
		return ErrClosed
	}
	s.ln = ln
	s.mu.Unlock()
	for {
		nc, err := ln.Accept()
		if err != nil {
			s.mu.Lock()
			closed := s.closed
			s.mu.Unlock()
			if closed {
				return ErrClosed
			}
			return err
		}
		if s.opts.SocketWriteBuffer > 0 {
			if tc, ok := nc.(*net.TCPConn); ok {
				tc.SetWriteBuffer(s.opts.SocketWriteBuffer)
			}
		}
		c := newConn(s, nc)
		s.mu.Lock()
		if s.closed {
			s.mu.Unlock()
			nc.Close()
			return ErrClosed
		}
		s.conns[c] = struct{}{}
		s.wg.Add(1)
		s.mu.Unlock()
		s.met.connsAccepted.Inc()
		s.met.connsActive.Add(1)
		go func() {
			defer s.wg.Done()
			c.serve()
		}()
	}
}

// ListenAndServe listens on addr ("host:port") and serves until Close.
func (s *Server) ListenAndServe(addr string) error {
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		return err
	}
	return s.Serve(ln)
}

// Addr returns the listener's address (useful with ":0"), or nil before
// Serve.
func (s *Server) Addr() net.Addr {
	s.mu.Lock()
	defer s.mu.Unlock()
	if s.ln == nil {
		return nil
	}
	return s.ln.Addr()
}

// Close stops accepting, closes every connection and waits for their
// handlers to finish. The monitor is left untouched (the caller owns it).
func (s *Server) Close() error {
	s.mu.Lock()
	if s.closed {
		s.mu.Unlock()
		return nil
	}
	s.closed = true
	ln := s.ln
	conns := make([]*conn, 0, len(s.conns))
	for c := range s.conns {
		conns = append(conns, c)
	}
	s.mu.Unlock()
	if ln != nil {
		ln.Close()
	}
	for _, c := range conns {
		c.close()
	}
	s.wg.Wait()
	return nil
}

// removeConn detaches a finished connection.
func (s *Server) removeConn(c *conn) {
	s.mu.Lock()
	delete(s.conns, c)
	s.mu.Unlock()
}

func (s *Server) logf(format string, args ...any) {
	if s.opts.Logf != nil {
		s.opts.Logf(format, args...)
	}
}

// setOpSpan hands the current operation's span to backends that can stitch
// their own children under it (the cluster coordinator attaches per-worker
// fan-out spans); plain monitors ignore it. Caller holds monMu.
func (s *Server) setOpSpan(sp *tracing.Span) {
	if os, ok := s.mon.(interface{ SetOpSpan(*tracing.Span) }); ok {
		os.SetOpSpan(sp)
	}
}

// register executes a registration frame against the monitor (caller holds
// monMu).
func (s *Server) register(r wire.Register) error {
	switch r.Kind {
	case wire.KindPoint:
		if len(r.Points) != 1 {
			return fmt.Errorf("point query has %d points", len(r.Points))
		}
		return s.mon.RegisterQuery(r.ID, r.Points[0], r.K)
	case wire.KindAgg:
		return s.mon.RegisterAggQuery(r.ID, r.Points, r.K, r.Agg)
	case wire.KindConstrained:
		if len(r.Points) != 1 {
			return fmt.Errorf("constrained query has %d points", len(r.Points))
		}
		return s.mon.RegisterConstrainedQuery(r.ID, r.Points[0], r.K, r.Region)
	case wire.KindRange:
		if len(r.Points) != 1 {
			return fmt.Errorf("range query has %d points", len(r.Points))
		}
		return s.mon.RegisterRangeQuery(r.ID, r.Points[0], r.Radius)
	default:
		return fmt.Errorf("unknown query kind %d", r.Kind)
	}
}

// subscribePolicy maps a wire policy byte onto the notify policy.
func subscribePolicy(p uint8) notify.Policy {
	if p == 1 {
		return notify.CoalesceLatest
	}
	return notify.DropOldest
}

// resyncSnapshots captures the full results a (re)subscriber must see: its
// filter set when it has one, every installed query otherwise — always
// extended by resumed queries that are gone, so the client learns about
// terminations it missed (those snapshots come back Live=false). Caller
// holds monMu.
func (s *Server) resyncSnapshots(sub wire.Subscribe) []cpm.QuerySnapshot {
	var snaps []cpm.QuerySnapshot
	seen := make(map[model.QueryID]bool, len(sub.Queries)+len(sub.Resume))
	if len(sub.Queries) > 0 {
		snaps = s.mon.Snapshot(sub.Queries...)
	} else {
		snaps = s.mon.Snapshot() // every installed query
	}
	for _, qs := range snaps {
		seen[qs.Query] = true
	}
	for _, rp := range sub.Resume {
		if !seen[rp.Query] {
			seen[rp.Query] = true
			snaps = append(snaps, s.mon.Snapshot(rp.Query)...)
		}
	}
	return snaps
}
