package server

import (
	"testing"
	"time"

	"cpm"
	"cpm/client"
	"cpm/internal/tracing"
)

// traced dials a trace-negotiating client against a server built around a
// fresh monitor and the given tracer.
func traced(t *testing.T, tr *tracing.Tracer) *client.Client {
	t.Helper()
	_, addr := startServerOpts(t, cpm.Options{GridSize: 16}, Options{Tracer: tr})
	c, err := client.Dial(addr, client.Options{Trace: true, SyncDiffs: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

// seedWorkload loads a small population and one query so ticks do real
// engine work in every phase.
func seedWorkload(t *testing.T, c *client.Client) {
	t.Helper()
	objs := map[cpm.ObjectID]cpm.Point{}
	for i := 0; i < 32; i++ {
		objs[cpm.ObjectID(i)] = cpm.Point{X: float64(i%8) / 8, Y: float64(i/8) / 8}
	}
	if err := c.Bootstrap(objs); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterQuery(1, cpm.Point{X: 0.3, Y: 0.3}, 4); err != nil {
		t.Fatal(err)
	}
}

func tickMove(t *testing.T, c *client.Client, i int) {
	t.Helper()
	from := cpm.Point{X: float64(i%8) / 8, Y: float64(i/8) / 8}
	if err := c.Tick(cpm.Batch{Objects: []cpm.Update{
		cpm.MoveUpdate(cpm.ObjectID(i), from, cpm.Point{X: 0.31, Y: 0.31}),
	}}); err != nil {
		t.Fatal(err)
	}
}

// TestTraceSampledTick checks the head-sampled server path end to end: at
// sample rate 1 every op lands in the flight recorder, and a tick's trace
// carries the engine phase decomposition as child spans.
func TestTraceSampledTick(t *testing.T) {
	tr := tracing.New(tracing.Options{SampleRate: 1, Seed: 7})
	c := traced(t, tr)
	seedWorkload(t, c)
	tickMove(t, c, 3)

	byName := map[string]tracing.RecordedTrace{}
	for _, rec := range tr.Traces() {
		byName[rec.Name] = rec
	}
	for _, want := range []string{"bootstrap", "register", "tick"} {
		if _, ok := byName[want]; !ok {
			t.Errorf("no %q trace recorded; have %v", want, names(tr))
		}
	}
	tick := byName["tick"]
	spans := map[string]bool{}
	var root tracing.RecordedSpan
	for _, s := range tick.Spans {
		spans[s.Name] = true
		if s.Name == "tick" {
			root = s
		}
	}
	for _, want := range []string{"relocate", "reeval", "queryupd"} {
		if !spans[want] {
			t.Errorf("tick trace missing %q phase span; spans %v", want, spans)
		}
	}
	if root.ID == 0 {
		t.Fatal("tick trace has no root span")
	}
	for _, s := range tick.Spans {
		if s.Name != "tick" && s.Parent != root.ID {
			t.Errorf("span %q parented to %x, want root %x", s.Name, s.Parent, root.ID)
		}
	}
}

// TestTraceClientStampJoins checks remote joining: a client-stamped op is
// recorded under the client's trace id with the client's span as the root
// parent — even though the server's own sampler would never fire.
func TestTraceClientStampJoins(t *testing.T) {
	// SlowOp-only tracer: nothing is head-sampled, so any recorded trace
	// must have come from the client's stamp.
	tr := tracing.New(tracing.Options{SlowOp: time.Hour})
	c := traced(t, tr)
	seedWorkload(t, c)

	// Negative control first: unstamped ops record nothing at all.
	tickMove(t, c, 4)
	if got := tr.Recorded(); got != 0 {
		t.Fatalf("unstamped ops recorded %d traces, want 0", got)
	}

	c.SetTrace(0xabc, 0xdef)
	tickMove(t, c, 5)
	recs := tr.Traces()
	if len(recs) != 1 {
		t.Fatalf("stamped tick recorded %d traces, want 1", len(recs))
	}
	rec := recs[0]
	if rec.TraceID != 0xabc {
		t.Fatalf("trace id = %x, want abc (the client's)", rec.TraceID)
	}
	for _, s := range rec.Spans {
		if s.Name == "tick" && s.Parent != 0xdef {
			t.Errorf("server root span parented to %x, want the client span def", s.Parent)
		}
	}

	// The stamp applies to exactly one request.
	tickMove(t, c, 6)
	if got := tr.Recorded(); got != 1 {
		t.Fatalf("stamp leaked onto a later op: %d traces recorded, want 1", got)
	}
}

// TestTraceServerTracesWire checks the TracesReq frame: the client pulls
// the flight recorder over the wire and the document round-trips through
// tracing.ParseTraces.
func TestTraceServerTracesWire(t *testing.T) {
	tr := tracing.New(tracing.Options{SampleRate: 1, Seed: 3})
	c := traced(t, tr)
	seedWorkload(t, c)
	tickMove(t, c, 7)

	doc, err := c.ServerTraces()
	if err != nil {
		t.Fatal(err)
	}
	got, err := tracing.ParseTraces(doc)
	if err != nil {
		t.Fatalf("ServerTraces document unparseable: %v", err)
	}
	want := tr.Traces()
	if len(got) != len(want) {
		t.Fatalf("wire returned %d traces, recorder holds %d", len(got), len(want))
	}
	for i := range got {
		if got[i].TraceID != want[i].TraceID || got[i].Name != want[i].Name {
			t.Fatalf("trace %d = (%x, %q), want (%x, %q)",
				i, got[i].TraceID, got[i].Name, want[i].TraceID, want[i].Name)
		}
	}
}

// TestTraceDisabledServer checks graceful degradation: against a server
// with no tracer the client still negotiates the extension, stamped ops
// run normally, and the traces poll answers an empty list.
func TestTraceDisabledServer(t *testing.T) {
	c := traced(t, nil)
	seedWorkload(t, c)
	c.SetTrace(0x123, 0)
	tickMove(t, c, 8)

	doc, err := c.ServerTraces()
	if err != nil {
		t.Fatal(err)
	}
	traces, err := tracing.ParseTraces(doc)
	if err != nil || len(traces) != 0 {
		t.Fatalf("nil-tracer server returned (%v, %v), want an empty list", traces, err)
	}
}

// TestTracePhasesOnWire checks the Diffs phase trailer end to end: a
// trace-negotiated client sees the engine's phase breakdown on its tick
// replies.
func TestTracePhasesOnWire(t *testing.T) {
	c := traced(t, nil)
	seedWorkload(t, c)
	// Move the whole population: one object's relocation can be faster
	// than the monotonic clock granularity, 32 cannot.
	var ups []cpm.Update
	for i := 0; i < 32; i++ {
		from := cpm.Point{X: float64(i%8) / 8, Y: float64(i/8) / 8}
		ups = append(ups, cpm.MoveUpdate(cpm.ObjectID(i), from, cpm.Point{
			X: from.X + 0.01, Y: from.Y + 0.01,
		}))
	}
	_, ph, err := c.TickDiffsPhases(cpm.Batch{Objects: ups})
	if err != nil {
		t.Fatal(err)
	}
	if ph.Relocate <= 0 {
		t.Errorf("relocate phase = %d ns, want > 0 (32 objects moved)", ph.Relocate)
	}
}

func names(tr *tracing.Tracer) []string {
	var out []string
	for _, rec := range tr.Traces() {
		out = append(out, rec.Name)
	}
	return out
}
