package server_test

import (
	"net"
	"testing"

	"cpm"
	"cpm/client"
	"cpm/internal/server"
	"cpm/workload"
)

// BenchmarkLoopbackDelivery measures the serving layer end to end: one
// remote tick (client → TCP → monitor) plus delivery of every resulting
// diff event back over the subscription stream (monitor → hub → forwarder
// → TCP → client). The per-op time is one full cycle of remote ingest and
// push-out at the default small-scale workload.
func BenchmarkLoopbackDelivery(b *testing.B) {
	const k = 8
	mon := cpm.NewMonitor(cpm.Options{GridSize: 64})
	srv := server.New(mon, server.Options{})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		b.Fatal(err)
	}
	go srv.Serve(ln)
	defer func() {
		srv.Close()
		mon.Close()
	}()

	c, err := client.Dial(ln.Addr().String(), client.Options{Buffer: 8192})
	if err != nil {
		b.Fatal(err)
	}
	defer c.Close()

	w, err := workload.New(
		workload.CityOptions{Width: 16, Height: 16, Seed: 9},
		workload.Params{
			N: 2000, NumQueries: 50,
			ObjectSpeed: workload.Medium, QuerySpeed: workload.Medium,
			ObjectAgility: 0.5, QueryAgility: 0.3,
			Seed: 10,
		},
	)
	if err != nil {
		b.Fatal(err)
	}
	if err := c.Bootstrap(w.InitialObjects()); err != nil {
		b.Fatal(err)
	}
	for i, q := range w.InitialQueries() {
		if err := c.RegisterQuery(cpm.QueryID(i), q, k); err != nil {
			b.Fatal(err)
		}
	}
	sub, err := c.SubscribeWith(client.SubscribeOptions{Buffer: 8192})
	if err != nil {
		b.Fatal(err)
	}
	defer sub.Close()

	batches := make([]workload.Batch, b.N)
	for i := range batches {
		batches[i] = w.Advance()
	}

	b.ReportAllocs()
	b.ResetTimer()
	events := 0
	for i := 0; i < b.N; i++ {
		if err := c.Tick(batches[i]); err != nil {
			b.Fatal(err)
		}
		var changed int
		srv.Locked(func(m server.Backend) { changed = len(m.ChangedQueries()) })
		for j := 0; j < changed; j++ {
			ev := <-sub.Events()
			if ev.Type != client.EventDiff {
				b.Fatalf("unexpected %v event mid-stream", ev.Type)
			}
			events++
		}
	}
	b.StopTimer()
	if b.N > 1 && events == 0 {
		b.Fatal("no events delivered")
	}
	b.ReportMetric(float64(events)/float64(b.N), "events/op")
}
