package server

import (
	"net"
	"reflect"
	"testing"
	"time"

	"cpm"
	"cpm/internal/geom"
	"cpm/internal/wire"
)

// startServer serves a fresh monitor on a loopback listener.
func startServer(t *testing.T, opts cpm.Options) (*Server, string) {
	return startServerOpts(t, opts, Options{})
}

// startServerOpts is startServer with explicit server options.
func startServerOpts(t *testing.T, opts cpm.Options, sopts Options) (*Server, string) {
	t.Helper()
	mon := cpm.NewMonitor(opts)
	s := New(mon, sopts)
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go s.Serve(ln)
	t.Cleanup(func() {
		s.Close()
		mon.Close()
	})
	return s, ln.Addr().String()
}

// testConn is a raw protocol client for server tests: it speaks wire
// frames directly, so the server is exercised independently of the client
// package.
type testConn struct {
	t  *testing.T
	nc net.Conn
	r  *wire.Reader
}

func dialRaw(t *testing.T, addr string) *testConn {
	t.Helper()
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { nc.Close() })
	tc := &testConn{t: t, nc: nc, r: wire.NewReader(nc)}
	tc.write(wire.AppendHello(nil, 0))
	typ, _, _ := tc.next()
	if typ != wire.FrameWelcome {
		t.Fatalf("handshake answered with %v", typ)
	}
	return tc
}

func (tc *testConn) write(frame []byte) {
	tc.t.Helper()
	if _, err := tc.nc.Write(frame); err != nil {
		tc.t.Fatal(err)
	}
}

func (tc *testConn) next() (wire.FrameType, []byte, error) {
	tc.t.Helper()
	tc.nc.SetReadDeadline(time.Now().Add(10 * time.Second))
	typ, payload, err := tc.r.Next()
	if err != nil {
		return 0, nil, err
	}
	cp := append([]byte(nil), payload...)
	return typ, cp, nil
}

// expectAck reads frames until the ack for reqID arrives (events may be
// interleaved); it fails on an error ack unless wantErr.
func (tc *testConn) expectAck(reqID uint64, wantErr bool) string {
	tc.t.Helper()
	for {
		typ, payload, err := tc.next()
		if err != nil {
			tc.t.Fatalf("waiting for ack %d: %v", reqID, err)
		}
		if typ != wire.FrameAck {
			continue
		}
		got, msg, err := wire.DecodeAck(payload)
		if err != nil {
			tc.t.Fatal(err)
		}
		if got != reqID {
			tc.t.Fatalf("ack for %d, want %d", got, reqID)
		}
		if (msg != "") != wantErr {
			tc.t.Fatalf("ack %d error %q, wantErr=%v", reqID, msg, wantErr)
		}
		return msg
	}
}

// equalNeighbors compares results treating nil and empty as equal (the
// wire layer canonicalizes empty slices to nil).
func equalNeighbors(a, b []cpm.Neighbor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestServerRoundTrip drives the full request surface over one raw
// connection: bootstrap, registrations of every kind, ticks, result polls,
// move and remove — checking results against an identically driven
// in-process monitor.
func TestServerRoundTrip(t *testing.T) {
	_, addr := startServer(t, cpm.Options{GridSize: 16})
	tc := dialRaw(t, addr)
	local := cpm.NewMonitor(cpm.Options{GridSize: 16})

	objs := map[cpm.ObjectID]cpm.Point{
		1: {X: 0.10, Y: 0.10}, 2: {X: 0.15, Y: 0.12}, 3: {X: 0.80, Y: 0.80},
		4: {X: 0.85, Y: 0.82}, 5: {X: 0.50, Y: 0.50},
	}
	local.Bootstrap(objs)
	wobjs := make([]wire.BootstrapObject, 0, len(objs))
	for id, p := range objs {
		wobjs = append(wobjs, wire.BootstrapObject{ID: id, Pos: p})
	}
	tc.write(wire.AppendBootstrap(nil, 1, wobjs))
	tc.expectAck(1, false)

	// A second bootstrap must come back as an error ack, not kill the
	// server.
	tc.write(wire.AppendBootstrap(nil, 2, wobjs))
	tc.expectAck(2, true)

	regs := []wire.Register{
		{ID: 10, Kind: wire.KindPoint, K: 2, Points: []geom.Point{{X: 0.12, Y: 0.11}}},
		{ID: 11, Kind: wire.KindAgg, K: 2, Agg: geom.AggSum, Points: []geom.Point{{X: 0.1, Y: 0.1}, {X: 0.2, Y: 0.2}}},
		{ID: 12, Kind: wire.KindConstrained, K: 1, Points: []geom.Point{{X: 0.5, Y: 0.5}}, Region: geom.Rect{Lo: geom.Point{X: 0.4, Y: 0.4}, Hi: geom.Point{X: 0.6, Y: 0.6}}},
		{ID: 13, Kind: wire.KindRange, Points: []geom.Point{{X: 0.82, Y: 0.81}}, Radius: 0.1},
	}
	if err := local.RegisterQuery(10, regs[0].Points[0], 2); err != nil {
		t.Fatal(err)
	}
	if err := local.RegisterAggQuery(11, regs[1].Points, 2, cpm.AggSum); err != nil {
		t.Fatal(err)
	}
	if err := local.RegisterConstrainedQuery(12, regs[2].Points[0], 1, regs[2].Region); err != nil {
		t.Fatal(err)
	}
	if err := local.RegisterRangeQuery(13, regs[3].Points[0], 0.1); err != nil {
		t.Fatal(err)
	}
	for i, r := range regs {
		tc.write(wire.AppendRegister(nil, uint64(10+i), r))
		tc.expectAck(uint64(10+i), false)
	}
	// Invalid registration (k <= 0) errors without killing the stream.
	tc.write(wire.AppendRegister(nil, 14, wire.Register{ID: 20, Kind: wire.KindPoint, K: 0, Points: []geom.Point{{X: 0.5, Y: 0.5}}}))
	tc.expectAck(14, true)

	checkResult := func(reqID uint64, q cpm.QueryID) {
		t.Helper()
		tc.write(wire.AppendResultReq(nil, reqID, q))
		for {
			typ, payload, err := tc.next()
			if err != nil {
				t.Fatal(err)
			}
			if typ != wire.FrameResult {
				continue
			}
			got, id, _, res, err := wire.DecodeResult(payload)
			if err != nil {
				t.Fatal(err)
			}
			if got != reqID || id != q {
				t.Fatalf("result for (%d, %d), want (%d, %d)", got, id, reqID, q)
			}
			want := local.Result(q)
			if !equalNeighbors(res, want) {
				t.Fatalf("q%d remote %v, local %v", q, res, want)
			}
			return
		}
	}

	batch := cpm.Batch{Objects: []cpm.Update{
		cpm.MoveUpdate(5, cpm.Point{X: 0.50, Y: 0.50}, cpm.Point{X: 0.13, Y: 0.12}),
		cpm.InsertUpdate(6, cpm.Point{X: 0.81, Y: 0.83}),
		cpm.DeleteUpdate(3, cpm.Point{X: 0.80, Y: 0.80}),
	}}
	local.Tick(batch)
	tc.write(wire.AppendTick(nil, 20, batch))
	tc.expectAck(20, false)
	for i, q := range []cpm.QueryID{10, 11, 12, 13, 99} {
		checkResult(uint64(30+i), q)
	}

	if err := local.MoveQuery(10, cpm.Point{X: 0.82, Y: 0.80}); err != nil {
		t.Fatal(err)
	}
	tc.write(wire.AppendMoveQuery(nil, 40, 10, []geom.Point{{X: 0.82, Y: 0.80}}))
	tc.expectAck(40, false)
	checkResult(41, 10)

	local.RemoveQuery(11)
	tc.write(wire.AppendRemoveQuery(nil, 42, 11))
	tc.expectAck(42, false)
	checkResult(43, 11)
}

// TestServerSubscribeStream subscribes over the raw protocol and checks
// the pushed install + update events against the monitor, including the
// snapshot-on-subscribe path.
func TestServerSubscribeStream(t *testing.T) {
	srv, addr := startServer(t, cpm.Options{GridSize: 16})
	tc := dialRaw(t, addr)

	objs := []wire.BootstrapObject{
		{ID: 1, Pos: geom.Point{X: 0.1, Y: 0.1}},
		{ID: 2, Pos: geom.Point{X: 0.2, Y: 0.2}},
		{ID: 3, Pos: geom.Point{X: 0.9, Y: 0.9}},
	}
	tc.write(wire.AppendBootstrap(nil, 1, objs))
	tc.expectAck(1, false)
	tc.write(wire.AppendRegister(nil, 2, wire.Register{ID: 5, Kind: wire.KindPoint, K: 2, Points: []geom.Point{{X: 0.15, Y: 0.15}}}))
	tc.expectAck(2, false)

	// Subscribe with snapshot: the stream must open with the full current
	// state of query 5.
	tc.write(wire.AppendSubscribe(nil, 3, wire.Subscribe{SubID: 7, Buffer: 64, Snapshot: true}))
	tc.expectAck(3, false)
	typ, payload, err := tc.next()
	if err != nil {
		t.Fatal(err)
	}
	if typ != wire.FrameSnapshot {
		t.Fatalf("first stream frame %v, want snapshot", typ)
	}
	snap, err := wire.DecodeSnapshot(payload)
	if err != nil {
		t.Fatal(err)
	}
	var want []cpm.Neighbor
	srv.Locked(func(m Backend) { want = m.Result(5) })
	if snap.SubID != 7 || snap.Query != 5 || !snap.Live || !reflect.DeepEqual(snap.Result, want) {
		t.Fatalf("snapshot = %+v, want result %v", snap, want)
	}

	// A tick that changes the result must push exactly one event.
	tc.write(wire.AppendTick(nil, 4, cpm.Batch{Objects: []cpm.Update{
		cpm.MoveUpdate(3, cpm.Point{X: 0.9, Y: 0.9}, cpm.Point{X: 0.14, Y: 0.15}),
	}}))
	var ev wire.Event
	gotEvent := false
	for !gotEvent {
		typ, payload, err := tc.next()
		if err != nil {
			t.Fatal(err)
		}
		switch typ {
		case wire.FrameEvent:
			if ev, err = wire.DecodeEvent(payload); err != nil {
				t.Fatal(err)
			}
			gotEvent = true
		case wire.FrameAck: // the tick's ack may arrive first or last
		default:
			t.Fatalf("unexpected %v frame", typ)
		}
	}
	if ev.SubID != 7 || ev.Seq != 1 || ev.Diff.Query != 5 || ev.Diff.Kind != cpm.DiffUpdate {
		t.Fatalf("event = %+v", ev)
	}
	srv.Locked(func(m Backend) { want = m.Result(5) })
	if !reflect.DeepEqual(ev.Diff.Result, want) {
		t.Fatalf("event result %v, want %v", ev.Diff.Result, want)
	}

	// Unsubscribe: stream stops, later ticks push nothing.
	tc.write(wire.AppendUnsubscribe(nil, 5, 7))
	tc.expectAck(5, false)
	tc.write(wire.AppendTick(nil, 6, cpm.Batch{Objects: []cpm.Update{
		cpm.MoveUpdate(3, cpm.Point{X: 0.14, Y: 0.15}, cpm.Point{X: 0.9, Y: 0.9}),
	}}))
	tc.expectAck(6, false)
	tc.write(wire.AppendResultReq(nil, 7, 5))
	typ, _, err = tc.next()
	if err != nil {
		t.Fatal(err)
	}
	if typ != wire.FrameResult {
		t.Fatalf("after unsubscribe got %v frame, want the result poll only", typ)
	}
}

// TestServerProtocolErrors checks that garbage kills only the offending
// connection and duplicate subscription ids are rejected.
func TestServerProtocolErrors(t *testing.T) {
	_, addr := startServer(t, cpm.Options{GridSize: 16})

	// No hello: the connection dies.
	nc, err := net.Dial("tcp", addr)
	if err != nil {
		t.Fatal(err)
	}
	nc.Write(wire.AppendGap(nil, wire.Gap{SubID: 1}))
	nc.SetReadDeadline(time.Now().Add(5 * time.Second))
	if _, _, err := wire.NewReader(nc).Next(); err == nil {
		t.Fatal("server answered a connection that skipped the handshake")
	}
	nc.Close()

	// A healthy connection still works (the bad one did not hurt the
	// server), and a duplicate sub id is refused via error ack.
	tc := dialRaw(t, addr)
	tc.write(wire.AppendSubscribe(nil, 1, wire.Subscribe{SubID: 3, Buffer: 8}))
	tc.expectAck(1, false)
	tc.write(wire.AppendSubscribe(nil, 2, wire.Subscribe{SubID: 3, Buffer: 8}))
	if msg := tc.expectAck(2, true); msg == "" {
		t.Fatal("duplicate sub id accepted")
	}
}
