package server

import (
	"bytes"
	"strings"
	"testing"

	"cpm"
	"cpm/internal/geom"
	"cpm/internal/model"
	"cpm/internal/wire"
)

// TestStatsFrame drives a few operations over the wire and polls the
// server's metrics through a StatsReq frame: the counters must reflect
// the traffic, and the wire snapshot must cover the whole registry.
func TestStatsFrame(t *testing.T) {
	s, addr := startServer(t, cpm.Options{GridSize: 16})
	tc := dialRaw(t, addr)

	tc.write(wire.AppendBootstrap(nil, 1, []wire.BootstrapObject{
		{ID: 1, Pos: geom.Point{X: 0.1, Y: 0.1}},
		{ID: 2, Pos: geom.Point{X: 0.9, Y: 0.9}},
	}))
	tc.expectAck(1, false)
	tc.write(wire.AppendRegister(nil, 2, wire.Register{ID: 7, Kind: wire.KindPoint, K: 1, Points: []geom.Point{{X: 0.1, Y: 0.1}}}))
	tc.expectAck(2, false)
	tc.write(wire.AppendTick(nil, 3, model.Batch{Objects: []model.Update{
		model.MoveUpdate(2, geom.Point{X: 0.9, Y: 0.9}, geom.Point{X: 0.2, Y: 0.2}),
	}}))
	tc.expectAck(3, false)

	tc.write(wire.AppendStatsReq(nil, 4))
	typ, payload, err := tc.next()
	if err != nil {
		t.Fatal(err)
	}
	if typ != wire.FrameStats {
		t.Fatalf("stats answered with %v", typ)
	}
	reqID, stats, err := wire.DecodeStats(payload)
	if err != nil {
		t.Fatal(err)
	}
	if reqID != 4 {
		t.Fatalf("stats reqID = %d, want 4", reqID)
	}

	byName := map[string]int64{}
	for _, st := range stats {
		byName[st.Name] = st.Value
	}
	checks := []struct {
		name string
		min  int64
	}{
		{"cpm_server_connections_accepted_total", 1},
		{"cpm_server_connections_active", 1},
		{"cpm_server_frames_in_total", 5}, // hello + 4 requests
		{"cpm_server_frames_out_total", 4},
		{"cpm_server_handle_tick_ns_count", 1},
		{"cpm_server_handle_register_ns_count", 1},
		{"cpm_server_handle_bootstrap_ns_count", 1},
		{"cpm_monitor_cycle_ns_count", 1},
		{"cpm_monitor_cycles_total", 1},
		{"cpm_monitor_objects", 2},
		{"cpm_monitor_queries", 1},
		{"cpm_monitor_grid_size", 16},
	}
	for _, c := range checks {
		v, ok := byName[c.name]
		if !ok {
			t.Errorf("stat %s missing", c.name)
			continue
		}
		if v < c.min {
			t.Errorf("%s = %d, want >= %d", c.name, v, c.min)
		}
	}

	// The wire snapshot and the registry expose the same stat set.
	if want := len(s.Metrics().Snapshot()); len(stats) != want {
		t.Errorf("wire snapshot has %d stats, registry %d", len(stats), want)
	}
}

// TestSubscriptionMetrics checks the subscription gauge and the event/gap
// counters move with subscribe traffic.
func TestSubscriptionMetrics(t *testing.T) {
	s, addr := startServer(t, cpm.Options{GridSize: 16})
	tc := dialRaw(t, addr)

	tc.write(wire.AppendBootstrap(nil, 1, []wire.BootstrapObject{{ID: 1, Pos: geom.Point{X: 0.5, Y: 0.5}}}))
	tc.expectAck(1, false)
	tc.write(wire.AppendSubscribe(nil, 2, wire.Subscribe{SubID: 1}))
	tc.expectAck(2, false)
	if got := s.met.subsActive.Load(); got != 1 {
		t.Fatalf("subscriptions_active = %d, want 1", got)
	}
	if got := s.met.subscribes.Load(); got != 1 {
		t.Fatalf("subscribes_total = %d, want 1", got)
	}

	// A register publishes a DiffInstall event to the subscriber.
	tc.write(wire.AppendRegister(nil, 3, wire.Register{ID: 9, Kind: wire.KindRange, Points: []geom.Point{{X: 0.5, Y: 0.5}}, Radius: 0.2}))
	tc.expectAck(3, false)
	for {
		typ, _, err := tc.next()
		if err != nil {
			t.Fatal(err)
		}
		if typ == wire.FrameEvent {
			break
		}
	}
	if got := s.met.eventsOut.Load(); got < 1 {
		t.Fatalf("events_out_total = %d, want >= 1", got)
	}

	tc.write(wire.AppendUnsubscribe(nil, 4, 1))
	tc.expectAck(4, false)
	if got := s.met.subsActive.Load(); got != 0 {
		t.Fatalf("subscriptions_active after unsubscribe = %d, want 0", got)
	}
}

// TestMetricsTextEndpointShape renders the registry the way cmd/cpmserver's
// /metrics endpoint does and sanity-checks the exposition format.
func TestMetricsTextEndpointShape(t *testing.T) {
	s, _ := startServer(t, cpm.Options{GridSize: 16})
	var buf bytes.Buffer
	if err := s.Metrics().WriteText(&buf); err != nil {
		t.Fatal(err)
	}
	lines := strings.Split(strings.TrimSpace(buf.String()), "\n")
	if len(lines) < 20 {
		t.Fatalf("expected a full metrics page, got %d lines", len(lines))
	}
	for _, line := range lines {
		f := strings.Fields(line)
		if len(f) != 2 || !strings.HasPrefix(f[0], "cpm_") {
			t.Fatalf("malformed exposition line %q", line)
		}
	}
}
