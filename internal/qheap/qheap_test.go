package qheap

import (
	"math/rand"
	"sort"
	"testing"
	"testing/quick"
)

func TestEmpty(t *testing.T) {
	var h Heap
	if h.Len() != 0 {
		t.Errorf("zero-value heap Len = %d", h.Len())
	}
	if _, ok := h.Pop(); ok {
		t.Error("Pop on empty heap reported ok")
	}
	if _, ok := h.Min(); ok {
		t.Error("Min on empty heap reported ok")
	}
}

func TestPushPopOrdered(t *testing.T) {
	h := New(8)
	keys := []float64{5, 1, 4, 2, 3, 0, 9, 7}
	for i, k := range keys {
		h.Push(k, uint64(i))
	}
	prev := -1.0
	for h.Len() > 0 {
		e, ok := h.Pop()
		if !ok {
			t.Fatal("Pop failed on non-empty heap")
		}
		if e.Key < prev {
			t.Fatalf("Pop out of order: %v after %v", e.Key, prev)
		}
		prev = e.Key
	}
}

func TestTieBreakByPayload(t *testing.T) {
	h := New(4)
	h.Push(1.0, 30)
	h.Push(1.0, 10)
	h.Push(1.0, 20)
	want := []uint64{10, 20, 30}
	for _, w := range want {
		e, _ := h.Pop()
		if e.Payload != w {
			t.Fatalf("tie-break order wrong: got %d, want %d", e.Payload, w)
		}
	}
}

func TestMinMatchesPop(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	h := New(0)
	for i := 0; i < 100; i++ {
		h.Push(rng.Float64(), uint64(i))
	}
	for h.Len() > 0 {
		m, _ := h.Min()
		p, _ := h.Pop()
		if m != p {
			t.Fatalf("Min %v != Pop %v", m, p)
		}
	}
}

// TestHeapSortEquivalence: pushing arbitrary keys and popping yields the
// same order as sorting — the heap invariant property test.
func TestHeapSortEquivalence(t *testing.T) {
	f := func(keys []float64) bool {
		h := New(len(keys))
		for i, k := range keys {
			h.Push(k, uint64(i))
		}
		var popped []Entry
		for {
			e, ok := h.Pop()
			if !ok {
				break
			}
			popped = append(popped, e)
		}
		if len(popped) != len(keys) {
			return false
		}
		want := make([]Entry, len(popped))
		copy(want, popped)
		sort.Slice(want, func(i, j int) bool { return less(want[i], want[j]) })
		for i := range want {
			if !sameEntry(want[i], popped[i]) {
				return false
			}
		}
		return true
	}
	cfg := &quick.Config{MaxCount: 200}
	if err := quick.Check(f, cfg); err != nil {
		t.Error(err)
	}
}

func sameEntry(a, b Entry) bool {
	// NaN keys never occur in CPM (mindists are finite) but the comparison
	// here must not treat two NaN entries as different.
	return a.Payload == b.Payload && (a.Key == b.Key || (a.Key != a.Key && b.Key != b.Key))
}

func TestInterleavedPushPop(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	h := New(0)
	// Mixed workload: the popped sequence must never go backwards relative
	// to the maximum popped so far *among entries present at pop time*.
	var reference []float64
	for op := 0; op < 5000; op++ {
		if rng.Intn(3) != 0 || h.Len() == 0 {
			k := rng.Float64()
			h.Push(k, uint64(op))
			reference = append(reference, k)
		} else {
			e, _ := h.Pop()
			// e must be the minimum of reference.
			minIdx := 0
			for i, k := range reference {
				if k < reference[minIdx] {
					minIdx = i
				}
			}
			if e.Key != reference[minIdx] {
				t.Fatalf("op %d: popped %v, expected min %v", op, e.Key, reference[minIdx])
			}
			reference = append(reference[:minIdx], reference[minIdx+1:]...)
		}
	}
}

func TestReset(t *testing.T) {
	h := New(4)
	h.Push(1, 1)
	h.Push(2, 2)
	h.Reset()
	if h.Len() != 0 {
		t.Errorf("Len after Reset = %d", h.Len())
	}
	h.Push(3, 3)
	if e, _ := h.Pop(); e.Payload != 3 {
		t.Errorf("heap unusable after Reset: %v", e)
	}
}

func TestClone(t *testing.T) {
	h := New(4)
	h.Push(2, 2)
	h.Push(1, 1)
	c := h.Clone()
	h.Pop()
	h.Pop()
	if c.Len() != 2 {
		t.Fatalf("clone affected by mutations of original: Len=%d", c.Len())
	}
	if e, _ := c.Pop(); e.Payload != 1 {
		t.Errorf("clone order wrong: %v", e)
	}
}

func TestItemsLen(t *testing.T) {
	h := New(4)
	for i := 0; i < 5; i++ {
		h.Push(float64(5-i), uint64(i))
	}
	if len(h.Items()) != 5 {
		t.Errorf("Items len = %d, want 5", len(h.Items()))
	}
}

func BenchmarkPushPop(b *testing.B) {
	rng := rand.New(rand.NewSource(1))
	keys := make([]float64, 1024)
	for i := range keys {
		keys[i] = rng.Float64()
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		h := New(len(keys))
		for j, k := range keys {
			h.Push(k, uint64(j))
		}
		for h.Len() > 0 {
			h.Pop()
		}
	}
}
