// Package qheap implements the binary min-heap used as CPM's search heap H.
//
// Entries carry a float64 key (mindist / amindist from the query) and an
// opaque uint64 payload in which the core engine packs either a cell index
// or a conceptual-rectangle descriptor (direction + level). Compared to
// container/heap this avoids interface dispatch and per-push allocations:
// the heap is on the critical path of every NN computation (the paper's
// Section 4.1 cost model attributes the C_SH·log C_SH term to it).
//
// Ties on the key are broken by payload order, which the core engine
// arranges to mean "cells before rectangles, lower cell index first". The
// deterministic order makes search traces reproducible and testable.
package qheap

// Entry is a keyed heap element.
type Entry struct {
	Key     float64
	Payload uint64
}

// Heap is a binary min-heap of Entries ordered by (Key, Payload).
// The zero value is an empty heap ready for use.
type Heap struct {
	items []Entry
}

// New returns a heap with capacity pre-allocated for n entries.
func New(n int) *Heap {
	return &Heap{items: make([]Entry, 0, n)}
}

// Len returns the number of entries in the heap.
func (h *Heap) Len() int { return len(h.items) }

// Reset empties the heap, retaining its storage.
func (h *Heap) Reset() { h.items = h.items[:0] }

// Push inserts an entry.
func (h *Heap) Push(key float64, payload uint64) {
	h.items = append(h.items, Entry{Key: key, Payload: payload})
	h.up(len(h.items) - 1)
}

// Min returns the smallest entry without removing it.
// The second return value is false when the heap is empty.
func (h *Heap) Min() (Entry, bool) {
	if len(h.items) == 0 {
		return Entry{}, false
	}
	return h.items[0], true
}

// Pop removes and returns the smallest entry.
// The second return value is false when the heap is empty.
func (h *Heap) Pop() (Entry, bool) {
	n := len(h.items)
	if n == 0 {
		return Entry{}, false
	}
	top := h.items[0]
	h.items[0] = h.items[n-1]
	h.items = h.items[:n-1]
	if len(h.items) > 0 {
		h.down(0)
	}
	return top, true
}

// Items returns the heap's backing slice in heap order (not sorted).
// Callers must not modify it; it is exposed for snapshotting the leftover
// search heap into the query table and for size accounting.
func (h *Heap) Items() []Entry { return h.items }

// Clone returns a deep copy of the heap.
func (h *Heap) Clone() *Heap {
	c := &Heap{items: make([]Entry, len(h.items))}
	copy(c.items, h.items)
	return c
}

func less(a, b Entry) bool {
	if a.Key != b.Key {
		return a.Key < b.Key
	}
	return a.Payload < b.Payload
}

func (h *Heap) up(i int) {
	for i > 0 {
		parent := (i - 1) / 2
		if !less(h.items[i], h.items[parent]) {
			return
		}
		h.items[i], h.items[parent] = h.items[parent], h.items[i]
		i = parent
	}
}

func (h *Heap) down(i int) {
	n := len(h.items)
	for {
		l, r := 2*i+1, 2*i+2
		smallest := i
		if l < n && less(h.items[l], h.items[smallest]) {
			smallest = l
		}
		if r < n && less(h.items[r], h.items[smallest]) {
			smallest = r
		}
		if smallest == i {
			return
		}
		h.items[i], h.items[smallest] = h.items[smallest], h.items[i]
		i = smallest
	}
}
