package geom

import (
	"math/rand"
	"testing"
)

func randPoints(rng *rand.Rand, n int) []Point {
	pts := make([]Point, n)
	for i := range pts {
		pts[i] = Point{rng.Float64(), rng.Float64()}
	}
	return pts
}

func TestAggString(t *testing.T) {
	cases := map[Agg]string{AggSum: "sum", AggMin: "min", AggMax: "max", Agg(9): "agg(?)"}
	for a, want := range cases {
		if got := a.String(); got != want {
			t.Errorf("Agg(%d).String() = %q, want %q", a, got, want)
		}
	}
	if !AggSum.Valid() || !AggMax.Valid() || Agg(3).Valid() {
		t.Error("Agg.Valid misclassifies")
	}
}

func TestAggDistSinglePointReducesToDist(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	for i := 0; i < 100; i++ {
		p := Point{rng.Float64(), rng.Float64()}
		q := []Point{{rng.Float64(), rng.Float64()}}
		d := Dist(p, q[0])
		for _, a := range []Agg{AggSum, AggMin, AggMax} {
			if got := AggDist(a, p, q); !almostEq(got, d) {
				t.Errorf("%v single-point AggDist = %v, want %v", a, got, d)
			}
		}
	}
}

func TestAggDistKnownValues(t *testing.T) {
	p := Point{0, 0}
	q := []Point{{3, 4}, {0, 1}, {6, 8}}
	if got := AggDist(AggSum, p, q); !almostEq(got, 5+1+10) {
		t.Errorf("sum = %v, want 16", got)
	}
	if got := AggDist(AggMin, p, q); !almostEq(got, 1) {
		t.Errorf("min = %v, want 1", got)
	}
	if got := AggDist(AggMax, p, q); !almostEq(got, 10) {
		t.Errorf("max = %v, want 10", got)
	}
}

// TestAggMinDistLowerBound verifies the ANN pruning bound of Section 5:
// amindist(r, Q) <= adist(p, Q) for every p in r, for every aggregate.
func TestAggMinDistLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(99))
	for i := 0; i < 1000; i++ {
		r := randRect(rng)
		q := randPoints(rng, 1+rng.Intn(6))
		p := Point{
			r.Lo.X + rng.Float64()*r.Width(),
			r.Lo.Y + rng.Float64()*r.Height(),
		}
		for _, a := range []Agg{AggSum, AggMin, AggMax} {
			lb := AggMinDist(a, r, q)
			d := AggDist(a, p, q)
			if d < lb-1e-12 {
				t.Fatalf("%v: adist=%v < amindist=%v (r=%v q=%v p=%v)", a, d, lb, r, q, p)
			}
		}
	}
}

// TestAggMinDistTight verifies that the bound is attained when the rect
// degenerates to a point.
func TestAggMinDistTight(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 200; i++ {
		p := Point{rng.Float64(), rng.Float64()}
		r := Rect{Lo: p, Hi: p}
		q := randPoints(rng, 1+rng.Intn(5))
		for _, a := range []Agg{AggSum, AggMin, AggMax} {
			if lb, d := AggMinDist(a, r, q), AggDist(a, p, q); !almostEq(lb, d) {
				t.Fatalf("%v: degenerate rect amindist=%v != adist=%v", a, lb, d)
			}
		}
	}
}

func TestAggDistMonotoneInQ(t *testing.T) {
	// Adding a query point never decreases sum or max, never increases min.
	rng := rand.New(rand.NewSource(17))
	for i := 0; i < 200; i++ {
		p := Point{rng.Float64(), rng.Float64()}
		q := randPoints(rng, 1+rng.Intn(5))
		more := append(append([]Point{}, q...), Point{rng.Float64(), rng.Float64()})
		if AggDist(AggSum, p, more) < AggDist(AggSum, p, q)-1e-12 {
			t.Fatal("sum decreased when adding a query point")
		}
		if AggDist(AggMax, p, more) < AggDist(AggMax, p, q)-1e-12 {
			t.Fatal("max decreased when adding a query point")
		}
		if AggDist(AggMin, p, more) > AggDist(AggMin, p, q)+1e-12 {
			t.Fatal("min increased when adding a query point")
		}
	}
}

func TestAggEmptyPanics(t *testing.T) {
	for name, f := range map[string]func(){
		"AggDist":    func() { AggDist(AggSum, Point{}, nil) },
		"AggMinDist": func() { AggMinDist(AggSum, Rect{}, nil) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s(empty Q) did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestAggUnknownPanics(t *testing.T) {
	bad := Agg(250)
	q := []Point{{0, 0}}
	for name, f := range map[string]func(){
		"AggDist":    func() { AggDist(bad, Point{}, q) },
		"AggMinDist": func() { AggMinDist(bad, Rect{}, q) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s(bad agg) did not panic", name)
				}
			}()
			f()
		}()
	}
}

func TestAggMinDistInsideRect(t *testing.T) {
	// All query points inside the rect: amindist must be 0 for every agg.
	r := Rect{Lo: Point{0, 0}, Hi: Point{1, 1}}
	q := []Point{{0.2, 0.2}, {0.8, 0.9}}
	for _, a := range []Agg{AggSum, AggMin, AggMax} {
		if got := AggMinDist(a, r, q); got != 0 {
			t.Errorf("%v AggMinDist with Q inside rect = %v, want 0", a, got)
		}
	}
}
