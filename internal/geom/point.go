// Package geom provides the small geometry kernel shared by every module of
// the CPM reproduction: points, axis-aligned rectangles, Euclidean and
// minimum distances, minimum bounding rectangles, and the aggregate distance
// functions (sum, min, max) used by aggregate nearest neighbor queries
// (Mouratidis et al., SIGMOD 2005, Section 5).
//
// All coordinates are float64 and the canonical workspace is the unit square
// [0,1)×[0,1), matching the paper's analysis (Section 4.1). Nothing in the
// package assumes the unit square, however; the grid layer decides the
// workspace extents.
package geom

import "math"

// Point is a location in the two-dimensional workspace.
type Point struct {
	X, Y float64
}

// Dist returns the Euclidean distance between p and q.
//
// CPM's level stepping (Lemma 3.1: mindist(DIR_{l+1}) = mindist(DIR_l) + δ)
// and all best_dist book-keeping are additive in true distance, so the
// library works with real distances rather than squared ones throughout.
func Dist(p, q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return math.Sqrt(dx*dx + dy*dy)
}

// DistSq returns the squared Euclidean distance between p and q. It is used
// where only comparisons are needed and the square root would be waste.
func DistSq(p, q Point) float64 {
	dx := p.X - q.X
	dy := p.Y - q.Y
	return dx*dx + dy*dy
}

// Lerp returns the point a fraction t of the way from p to q. It is the
// motion primitive of the workload generator (objects advance along road
// segments by linear interpolation).
func Lerp(p, q Point, t float64) Point {
	return Point{
		X: p.X + (q.X-p.X)*t,
		Y: p.Y + (q.Y-p.Y)*t,
	}
}

// MBR returns the minimum bounding rectangle of pts. It panics if pts is
// empty: an MBR of nothing is a programming error, not a recoverable state.
func MBR(pts []Point) Rect {
	if len(pts) == 0 {
		panic("geom: MBR of empty point set")
	}
	r := Rect{Lo: pts[0], Hi: pts[0]}
	for _, p := range pts[1:] {
		if p.X < r.Lo.X {
			r.Lo.X = p.X
		}
		if p.Y < r.Lo.Y {
			r.Lo.Y = p.Y
		}
		if p.X > r.Hi.X {
			r.Hi.X = p.X
		}
		if p.Y > r.Hi.Y {
			r.Hi.Y = p.Y
		}
	}
	return r
}
