package geom

import (
	"math"
	"testing"
	"testing/quick"
)

func almostEq(a, b float64) bool {
	return math.Abs(a-b) <= 1e-12*(1+math.Abs(a)+math.Abs(b))
}

func TestDist(t *testing.T) {
	cases := []struct {
		p, q Point
		want float64
	}{
		{Point{0, 0}, Point{0, 0}, 0},
		{Point{0, 0}, Point{3, 4}, 5},
		{Point{1, 1}, Point{1, 2}, 1},
		{Point{-1, -1}, Point{2, 3}, 5},
		{Point{0.5, 0.5}, Point{0.5, 0.5}, 0},
	}
	for _, c := range cases {
		if got := Dist(c.p, c.q); !almostEq(got, c.want) {
			t.Errorf("Dist(%v,%v) = %v, want %v", c.p, c.q, got, c.want)
		}
		if got := Dist(c.q, c.p); !almostEq(got, c.want) {
			t.Errorf("Dist(%v,%v) = %v, want %v (symmetry)", c.q, c.p, got, c.want)
		}
	}
}

func TestDistSqConsistent(t *testing.T) {
	f := func(px, py, qx, qy float64) bool {
		// Workspace-scale inputs: squared distances of astronomically large
		// coordinates overflow float64 and are out of scope for the library.
		p := Point{clamp01(px), clamp01(py)}
		q := Point{clamp01(qx), clamp01(qy)}
		d := Dist(p, q)
		return almostEq(d*d, DistSq(p, q))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistTriangleInequality(t *testing.T) {
	f := func(ax, ay, bx, by, cx, cy float64) bool {
		// Constrain inputs to the workspace scale to avoid overflow noise.
		a := Point{clamp01(ax), clamp01(ay)}
		b := Point{clamp01(bx), clamp01(by)}
		c := Point{clamp01(cx), clamp01(cy)}
		return Dist(a, c) <= Dist(a, b)+Dist(b, c)+1e-12
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func clamp01(v float64) float64 {
	v = math.Mod(math.Abs(v), 1)
	if math.IsNaN(v) {
		return 0
	}
	return v
}

func TestLerp(t *testing.T) {
	p, q := Point{0, 0}, Point{2, 4}
	if got := Lerp(p, q, 0); got != p {
		t.Errorf("Lerp t=0 = %v, want %v", got, p)
	}
	if got := Lerp(p, q, 1); got != q {
		t.Errorf("Lerp t=1 = %v, want %v", got, q)
	}
	if got := Lerp(p, q, 0.5); !almostEq(got.X, 1) || !almostEq(got.Y, 2) {
		t.Errorf("Lerp t=0.5 = %v, want {1 2}", got)
	}
}

func TestMBR(t *testing.T) {
	pts := []Point{{0.5, 0.2}, {0.1, 0.9}, {0.7, 0.4}}
	r := MBR(pts)
	want := Rect{Lo: Point{0.1, 0.2}, Hi: Point{0.7, 0.9}}
	if r != want {
		t.Errorf("MBR = %v, want %v", r, want)
	}
	for _, p := range pts {
		if !r.Contains(p) {
			t.Errorf("MBR %v does not contain %v", r, p)
		}
	}
}

func TestMBRSinglePoint(t *testing.T) {
	p := Point{0.3, 0.3}
	r := MBR([]Point{p})
	if r.Lo != p || r.Hi != p {
		t.Errorf("MBR of single point = %v, want degenerate rect at %v", r, p)
	}
}

func TestMBREmptyPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("MBR(nil) did not panic")
		}
	}()
	MBR(nil)
}
