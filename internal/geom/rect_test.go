package geom

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestRectContains(t *testing.T) {
	r := Rect{Lo: Point{0.2, 0.2}, Hi: Point{0.6, 0.8}}
	in := []Point{{0.2, 0.2}, {0.6, 0.8}, {0.4, 0.5}, {0.2, 0.8}}
	out := []Point{{0.1, 0.5}, {0.7, 0.5}, {0.4, 0.1}, {0.4, 0.9}}
	for _, p := range in {
		if !r.Contains(p) {
			t.Errorf("Contains(%v) = false, want true", p)
		}
	}
	for _, p := range out {
		if r.Contains(p) {
			t.Errorf("Contains(%v) = true, want false", p)
		}
	}
}

func TestRectIntersects(t *testing.T) {
	a := Rect{Lo: Point{0, 0}, Hi: Point{1, 1}}
	cases := []struct {
		b    Rect
		want bool
	}{
		{Rect{Point{0.5, 0.5}, Point{2, 2}}, true},
		{Rect{Point{1, 1}, Point{2, 2}}, true}, // touching corner counts
		{Rect{Point{1.1, 0}, Point{2, 1}}, false},
		{Rect{Point{-1, -1}, Point{-0.1, 2}}, false},
		{Rect{Point{0.2, 0.2}, Point{0.3, 0.3}}, true}, // containment
		{Rect{Point{-1, -1}, Point{2, 2}}, true},       // contained by
	}
	for _, c := range cases {
		if got := a.Intersects(c.b); got != c.want {
			t.Errorf("Intersects(%v) = %v, want %v", c.b, got, c.want)
		}
		if got := c.b.Intersects(a); got != c.want {
			t.Errorf("Intersects symmetric (%v) = %v, want %v", c.b, got, c.want)
		}
	}
}

func TestMinDistExactCases(t *testing.T) {
	r := Rect{Lo: Point{1, 1}, Hi: Point{2, 2}}
	cases := []struct {
		q    Point
		want float64
	}{
		{Point{1.5, 1.5}, 0},      // inside
		{Point{1, 1}, 0},          // on corner
		{Point{0, 1.5}, 1},        // left
		{Point{3, 1.5}, 1},        // right
		{Point{1.5, 0}, 1},        // below
		{Point{1.5, 3.5}, 1.5},    // above
		{Point{0, 0}, math.Sqrt2}, // corner diagonal
		{Point{3, 3}, math.Sqrt2},
	}
	for _, c := range cases {
		if got := r.MinDist(c.q); !almostEq(got, c.want) {
			t.Errorf("MinDist(%v) = %v, want %v", c.q, got, c.want)
		}
	}
}

// TestMinDistLowerBound is the property CPM's pruning rests on:
// for any point p inside r, Dist(p,q) >= r.MinDist(q).
func TestMinDistLowerBound(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	for i := 0; i < 2000; i++ {
		r := randRect(rng)
		q := Point{rng.Float64()*3 - 1, rng.Float64()*3 - 1}
		p := Point{
			r.Lo.X + rng.Float64()*r.Width(),
			r.Lo.Y + rng.Float64()*r.Height(),
		}
		if d, m := Dist(p, q), r.MinDist(q); d < m-1e-12 {
			t.Fatalf("dist(%v,%v)=%v < mindist(%v)=%v", p, q, d, r, m)
		}
		if d, M := Dist(p, q), r.MaxDist(q); d > M+1e-12 {
			t.Fatalf("dist(%v,%v)=%v > maxdist(%v)=%v", p, q, d, r, M)
		}
	}
}

// TestMinDistMatchesSampling cross-checks MinDist against a dense grid
// sample of the rectangle.
func TestMinDistMatchesSampling(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 200; i++ {
		r := randRect(rng)
		q := Point{rng.Float64()*3 - 1, rng.Float64()*3 - 1}
		best := math.Inf(1)
		const steps = 20
		for xi := 0; xi <= steps; xi++ {
			for yi := 0; yi <= steps; yi++ {
				p := Point{
					r.Lo.X + r.Width()*float64(xi)/steps,
					r.Lo.Y + r.Height()*float64(yi)/steps,
				}
				if d := Dist(p, q); d < best {
					best = d
				}
			}
		}
		m := r.MinDist(q)
		if m > best+1e-9 {
			t.Fatalf("MinDist(%v,%v)=%v exceeds sampled min %v", r, q, m, best)
		}
		// The sampled minimum cannot be more than half a diagonal grid step
		// below the true minimum.
		step := hypot(r.Width()/steps, r.Height()/steps)
		if best-m > step {
			t.Fatalf("MinDist(%v,%v)=%v too far below sampled min %v", r, q, m, best)
		}
	}
}

func TestIntersectsCircle(t *testing.T) {
	r := Rect{Lo: Point{1, 1}, Hi: Point{2, 2}}
	cases := []struct {
		c      Point
		radius float64
		want   bool
	}{
		{Point{1.5, 1.5}, 0.01, true}, // center inside
		{Point{0, 1.5}, 1.0, true},    // tangent counts
		{Point{0, 1.5}, 0.99, false},
		{Point{0, 0}, 1.5, true}, // corner within radius
		{Point{0, 0}, 1.0, false},
	}
	for _, c := range cases {
		if got := r.IntersectsCircle(c.c, c.radius); got != c.want {
			t.Errorf("IntersectsCircle(%v, %v) = %v, want %v", c.c, c.radius, got, c.want)
		}
	}
}

func TestRectAccessors(t *testing.T) {
	r := Rect{Lo: Point{0.25, 0.5}, Hi: Point{0.75, 1.5}}
	if !almostEq(r.Width(), 0.5) {
		t.Errorf("Width = %v, want 0.5", r.Width())
	}
	if !almostEq(r.Height(), 1.0) {
		t.Errorf("Height = %v, want 1.0", r.Height())
	}
	if c := r.Center(); !almostEq(c.X, 0.5) || !almostEq(c.Y, 1.0) {
		t.Errorf("Center = %v, want {0.5 1.0}", c)
	}
}

func TestMinDistZeroInsideProperty(t *testing.T) {
	f := func(lox, loy, w, h, fx, fy float64) bool {
		r := Rect{
			Lo: Point{clamp01(lox), clamp01(loy)},
		}
		r.Hi = Point{r.Lo.X + clamp01(w), r.Lo.Y + clamp01(h)}
		p := Point{
			r.Lo.X + clamp01(fx)*r.Width(),
			r.Lo.Y + clamp01(fy)*r.Height(),
		}
		return r.MinDist(p) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func randRect(rng *rand.Rand) Rect {
	lo := Point{rng.Float64(), rng.Float64()}
	return Rect{
		Lo: lo,
		Hi: Point{lo.X + rng.Float64(), lo.Y + rng.Float64()},
	}
}
