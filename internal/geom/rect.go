package geom

// Rect is a closed axis-aligned rectangle [Lo.X, Hi.X] × [Lo.Y, Hi.Y].
//
// Grid cells, conceptual partitioning strips and constraint regions are all
// Rects. A Rect may extend beyond the workspace: conceptual strips around a
// query near the border do, and distance computations remain well defined.
type Rect struct {
	Lo, Hi Point
}

// Contains reports whether p lies inside r (borders inclusive).
func (r Rect) Contains(p Point) bool {
	return p.X >= r.Lo.X && p.X <= r.Hi.X && p.Y >= r.Lo.Y && p.Y <= r.Hi.Y
}

// Intersects reports whether r and s share at least one point
// (touching edges count).
func (r Rect) Intersects(s Rect) bool {
	return r.Lo.X <= s.Hi.X && s.Lo.X <= r.Hi.X &&
		r.Lo.Y <= s.Hi.Y && s.Lo.Y <= r.Hi.Y
}

// Width returns the extent of r along the x axis.
func (r Rect) Width() float64 { return r.Hi.X - r.Lo.X }

// Height returns the extent of r along the y axis.
func (r Rect) Height() float64 { return r.Hi.Y - r.Lo.Y }

// Center returns the midpoint of r.
func (r Rect) Center() Point {
	return Point{X: (r.Lo.X + r.Hi.X) / 2, Y: (r.Lo.Y + r.Hi.Y) / 2}
}

// MinDist returns mindist(r, q): the minimum possible Euclidean distance
// between q and any point of r. It is zero when q lies inside r.
//
// This is the pruning bound at the heart of CPM's search: for every object
// p ∈ c, dist(p,q) ≥ MinDist(c,q), so a cell whose MinDist is not below
// best_dist cannot improve the current result (paper Section 3.1).
func (r Rect) MinDist(q Point) float64 {
	dx := axisDist(q.X, r.Lo.X, r.Hi.X)
	dy := axisDist(q.Y, r.Lo.Y, r.Hi.Y)
	if dx == 0 {
		return dy
	}
	if dy == 0 {
		return dx
	}
	return hypot(dx, dy)
}

// MaxDist returns the maximum possible Euclidean distance between q and any
// point of r (the distance to the farthest corner). It is used by tests and
// by the analysis module.
func (r Rect) MaxDist(q Point) float64 {
	dx := maxAbs(q.X-r.Lo.X, r.Hi.X-q.X)
	dy := maxAbs(q.Y-r.Lo.Y, r.Hi.Y-q.Y)
	return hypot(dx, dy)
}

// IntersectsCircle reports whether r intersects the disk with the given
// center and radius. SEA-CNN's answer regions and CPM's influence regions
// are disks; their cell cover is "cells c with MinDist(c,center) ≤ radius".
func (r Rect) IntersectsCircle(center Point, radius float64) bool {
	return r.MinDist(center) <= radius
}

// axisDist returns the one-dimensional distance from v to the interval
// [lo, hi]; zero when v lies inside it.
func axisDist(v, lo, hi float64) float64 {
	switch {
	case v < lo:
		return lo - v
	case v > hi:
		return v - hi
	default:
		return 0
	}
}

func maxAbs(a, b float64) float64 {
	if a < 0 {
		a = -a
	}
	if b < 0 {
		b = -b
	}
	if a > b {
		return a
	}
	return b
}

func hypot(dx, dy float64) float64 {
	// math.Hypot guards against overflow that cannot occur with workspace
	// coordinates; the direct form is measurably faster on the search path.
	return sqrt(dx*dx + dy*dy)
}
