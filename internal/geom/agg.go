package geom

import "math"

// sqrt is a local alias so rect.go stays free of a math import cycle check;
// it compiles to the same SQRTSD instruction.
func sqrt(x float64) float64 { return math.Sqrt(x) }

// Agg identifies the aggregate function of an aggregate nearest neighbor
// (ANN) query: a monotonically increasing function f over the individual
// distances dist(p, q_i) between a data object p and each query point
// q_i ∈ Q (paper Section 5).
type Agg uint8

const (
	// AggSum minimizes the total distance the |Q| users travel to meet at
	// the reported object: adist(p,Q) = Σ_i dist(p, q_i).
	AggSum Agg = iota
	// AggMin reports the object closest to any single query point:
	// adist(p,Q) = min_i dist(p, q_i).
	AggMin
	// AggMax minimizes the distance of the farthest user, i.e. the earliest
	// time all users can gather: adist(p,Q) = max_i dist(p, q_i).
	AggMax
)

// String returns the paper's name for the aggregate function.
func (a Agg) String() string {
	switch a {
	case AggSum:
		return "sum"
	case AggMin:
		return "min"
	case AggMax:
		return "max"
	default:
		return "agg(?)"
	}
}

// Valid reports whether a is one of the three supported aggregates.
func (a Agg) Valid() bool { return a <= AggMax }

// AggDist returns adist(p, Q) under aggregate a.
// It panics on an empty Q: every ANN query has at least one point.
func AggDist(a Agg, p Point, q []Point) float64 {
	if len(q) == 0 {
		panic("geom: AggDist with empty query set")
	}
	switch a {
	case AggSum:
		s := 0.0
		for _, qi := range q {
			s += Dist(p, qi)
		}
		return s
	case AggMin:
		best := math.Inf(1)
		for _, qi := range q {
			if d := Dist(p, qi); d < best {
				best = d
			}
		}
		return best
	case AggMax:
		worst := 0.0
		for _, qi := range q {
			if d := Dist(p, qi); d > worst {
				worst = d
			}
		}
		return worst
	default:
		panic("geom: unknown aggregate")
	}
}

// AggMinDist returns amindist(r, Q) under aggregate a: the aggregate of the
// per-point minimum distances to rectangle r. Because each mindist lower
// bounds dist(p, q_i) for every p ∈ r and f is monotone, amindist(r, Q)
// lower bounds adist(p, Q) for every p ∈ r — the pruning bound used by the
// ANN search module (paper Section 5).
func AggMinDist(a Agg, r Rect, q []Point) float64 {
	if len(q) == 0 {
		panic("geom: AggMinDist with empty query set")
	}
	switch a {
	case AggSum:
		s := 0.0
		for _, qi := range q {
			s += r.MinDist(qi)
		}
		return s
	case AggMin:
		best := math.Inf(1)
		for _, qi := range q {
			if d := r.MinDist(qi); d < best {
				best = d
			}
		}
		return best
	case AggMax:
		worst := 0.0
		for _, qi := range q {
			if d := r.MinDist(qi); d > worst {
				worst = d
			}
		}
		return worst
	default:
		panic("geom: unknown aggregate")
	}
}
