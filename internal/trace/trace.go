// Package trace reads and writes workload traces: a gob-encoded header
// (generator parameters, initial object positions, initial query points)
// followed by one update batch per timestamp. Traces make experiment
// streams repeatable across processes and let external tooling consume the
// exact streams the harness uses; cmd/wlgen is the command-line front end.
package trace

import (
	"encoding/gob"
	"fmt"
	"io"

	"cpm/internal/generator"
	"cpm/internal/geom"
	"cpm/internal/model"
	"cpm/internal/network"
)

// Header describes a trace.
type Header struct {
	Params     generator.Params
	Net        network.GenOptions
	Timestamps int
	Objects    map[model.ObjectID]geom.Point
	Queries    []geom.Point
}

// Writer streams a trace to an io.Writer.
type Writer struct {
	enc     *gob.Encoder
	left    int
	started bool
}

// NewWriter writes the header immediately and expects exactly
// header.Timestamps batches to follow.
func NewWriter(w io.Writer, header Header) (*Writer, error) {
	if header.Timestamps < 0 {
		return nil, fmt.Errorf("trace: negative timestamp count %d", header.Timestamps)
	}
	enc := gob.NewEncoder(w)
	if err := enc.Encode(header); err != nil {
		return nil, fmt.Errorf("trace: encode header: %w", err)
	}
	return &Writer{enc: enc, left: header.Timestamps, started: true}, nil
}

// WriteBatch appends one timestamp's batch. Writing more batches than the
// header announced is an error.
func (w *Writer) WriteBatch(b model.Batch) error {
	if w.left == 0 {
		return fmt.Errorf("trace: batch count exceeds header timestamps")
	}
	w.left--
	if err := w.enc.Encode(b); err != nil {
		return fmt.Errorf("trace: encode batch: %w", err)
	}
	return nil
}

// Close verifies the announced batch count was written.
func (w *Writer) Close() error {
	if w.left != 0 {
		return fmt.Errorf("trace: %d announced batches missing", w.left)
	}
	return nil
}

// Record generates a complete trace from a workload and writes it.
// It returns the total number of stream elements written.
func Record(w io.Writer, header Header, wl *generator.Workload) (int, error) {
	tw, err := NewWriter(w, header)
	if err != nil {
		return 0, err
	}
	updates := 0
	for i := 0; i < header.Timestamps; i++ {
		b := wl.Advance()
		updates += len(b.Objects) + len(b.Queries)
		if err := tw.WriteBatch(b); err != nil {
			return updates, err
		}
	}
	return updates, tw.Close()
}

// Reader streams a trace from an io.Reader.
type Reader struct {
	dec    *gob.Decoder
	header Header
	left   int
}

// NewReader decodes the header and prepares batch iteration.
func NewReader(r io.Reader) (*Reader, error) {
	dec := gob.NewDecoder(r)
	var hdr Header
	if err := dec.Decode(&hdr); err != nil {
		return nil, fmt.Errorf("trace: decode header: %w", err)
	}
	if hdr.Timestamps < 0 {
		return nil, fmt.Errorf("trace: corrupt header: %d timestamps", hdr.Timestamps)
	}
	return &Reader{dec: dec, header: hdr, left: hdr.Timestamps}, nil
}

// Header returns the trace header.
func (r *Reader) Header() Header { return r.header }

// Next returns the next batch, or io.EOF after the last announced one.
func (r *Reader) Next() (model.Batch, error) {
	if r.left == 0 {
		return model.Batch{}, io.EOF
	}
	var b model.Batch
	if err := r.dec.Decode(&b); err != nil {
		return model.Batch{}, fmt.Errorf("trace: decode batch: %w", err)
	}
	r.left--
	return b, nil
}

// Replay feeds the remaining batches of a trace into a monitor, returning
// the number of cycles processed.
func Replay(r *Reader, mon model.Monitor) (int, error) {
	cycles := 0
	for {
		b, err := r.Next()
		if err == io.EOF {
			return cycles, nil
		}
		if err != nil {
			return cycles, err
		}
		mon.ProcessBatch(b)
		cycles++
	}
}
