package trace

import (
	"bytes"
	"io"
	"testing"

	"cpm/internal/core"
	"cpm/internal/generator"
	"cpm/internal/geom"
	"cpm/internal/model"
	"cpm/internal/network"
)

func buildWorkload(t *testing.T, ts int) (Header, *generator.Workload) {
	t.Helper()
	netOpts := network.GenOptions{Width: 8, Height: 8, Seed: 4}
	net, err := network.Generate(netOpts)
	if err != nil {
		t.Fatal(err)
	}
	params := generator.Params{
		N: 150, NumQueries: 6,
		ObjectSpeed: generator.Fast, QuerySpeed: generator.Medium,
		ObjectAgility: 0.6, QueryAgility: 0.4, Seed: 5,
	}
	w, err := generator.New(net, params)
	if err != nil {
		t.Fatal(err)
	}
	hdr := Header{
		Params:     params,
		Net:        netOpts,
		Timestamps: ts,
		Objects:    w.InitialObjects(),
		Queries:    w.InitialQueries(),
	}
	return hdr, w
}

func TestRoundTrip(t *testing.T) {
	hdr, w := buildWorkload(t, 12)
	var buf bytes.Buffer
	updates, err := Record(&buf, hdr, w)
	if err != nil {
		t.Fatal(err)
	}
	if updates == 0 {
		t.Fatal("trace recorded no updates")
	}

	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	got := r.Header()
	if got.Timestamps != 12 || len(got.Objects) != 150 || len(got.Queries) != 6 {
		t.Fatalf("header round trip: %+v", got)
	}
	count := 0
	readUpdates := 0
	for {
		b, err := r.Next()
		if err == io.EOF {
			break
		}
		if err != nil {
			t.Fatal(err)
		}
		count++
		readUpdates += len(b.Objects) + len(b.Queries)
	}
	if count != 12 || readUpdates != updates {
		t.Fatalf("read %d batches / %d updates, want 12 / %d", count, readUpdates, updates)
	}
	// Reading past EOF keeps returning EOF.
	if _, err := r.Next(); err != io.EOF {
		t.Fatalf("post-EOF Next = %v", err)
	}
}

// TestReplayEquivalence: replaying a recorded trace must leave a monitor in
// exactly the state a live run produces.
func TestReplayEquivalence(t *testing.T) {
	hdr, w := buildWorkload(t, 10)
	var buf bytes.Buffer

	// Live run, recording as we go.
	live := core.NewUnitEngine(16, core.Options{})
	live.Bootstrap(cloneObjects(hdr.Objects))
	for i, q := range hdr.Queries {
		if err := live.RegisterQuery(model.QueryID(i), q, 4); err != nil {
			t.Fatal(err)
		}
	}
	tw, err := NewWriter(&buf, hdr)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < hdr.Timestamps; i++ {
		b := w.Advance()
		if err := tw.WriteBatch(b); err != nil {
			t.Fatal(err)
		}
		live.ProcessBatch(b)
	}
	if err := tw.Close(); err != nil {
		t.Fatal(err)
	}

	// Replay into a fresh monitor.
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	replayed := core.NewUnitEngine(16, core.Options{})
	replayed.Bootstrap(cloneObjects(r.Header().Objects))
	for i, q := range r.Header().Queries {
		if err := replayed.RegisterQuery(model.QueryID(i), q, 4); err != nil {
			t.Fatal(err)
		}
	}
	cycles, err := Replay(r, replayed)
	if err != nil {
		t.Fatal(err)
	}
	if cycles != 10 {
		t.Fatalf("replayed %d cycles, want 10", cycles)
	}
	for i := range hdr.Queries {
		a := live.Result(model.QueryID(i))
		b := replayed.Result(model.QueryID(i))
		if len(a) != len(b) {
			t.Fatalf("q%d: result lengths differ", i)
		}
		for j := range a {
			if a[j] != b[j] {
				t.Fatalf("q%d rank %d: live %v, replayed %v", i, j, a[j], b[j])
			}
		}
	}
}

func cloneObjects(m map[model.ObjectID]geom.Point) map[model.ObjectID]geom.Point {
	out := make(map[model.ObjectID]geom.Point, len(m))
	for k, v := range m {
		out[k] = v
	}
	return out
}

func TestWriterContract(t *testing.T) {
	hdr, w := buildWorkload(t, 2)
	var buf bytes.Buffer
	tw, err := NewWriter(&buf, hdr)
	if err != nil {
		t.Fatal(err)
	}
	// Closing early reports the missing batches.
	if err := tw.Close(); err == nil {
		t.Error("early Close accepted")
	}
	if err := tw.WriteBatch(w.Advance()); err != nil {
		t.Fatal(err)
	}
	if err := tw.WriteBatch(w.Advance()); err != nil {
		t.Fatal(err)
	}
	if err := tw.WriteBatch(w.Advance()); err == nil {
		t.Error("overlong trace accepted")
	}
	if err := tw.Close(); err != nil {
		t.Errorf("complete Close failed: %v", err)
	}
	// Negative timestamp headers rejected.
	if _, err := NewWriter(&buf, Header{Timestamps: -1}); err == nil {
		t.Error("negative timestamps accepted")
	}
}

func TestReaderCorruptInput(t *testing.T) {
	if _, err := NewReader(bytes.NewReader([]byte("garbage"))); err == nil {
		t.Error("garbage header accepted")
	}
	// Truncated stream: header fine, batches missing.
	hdr, _ := buildWorkload(t, 3)
	var buf bytes.Buffer
	if _, err := NewWriter(&buf, hdr); err != nil {
		t.Fatal(err)
	}
	r, err := NewReader(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Next(); err == nil || err == io.EOF {
		t.Errorf("truncated trace Next = %v, want decode error", err)
	}
}
