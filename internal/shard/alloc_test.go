package shard_test

import (
	"fmt"
	"testing"
	"time"

	"cpm/internal/core"
	"cpm/internal/geom"
	"cpm/internal/metrics"
	"cpm/internal/model"
	"cpm/internal/shard"
)

// TestSteadyStateAllocs pins the allocation-free hot path: once a monitor
// is warmed (every pooled buffer — visit lists, heaps, in-lists, the
// per-cycle dirty/changed sets, the shard routing buffers and worker
// channels — has reached its steady capacity), ProcessBatch must perform
// zero heap allocations per tick, at 1 shard (the bare engine path) and at
// 8 shards (the persistent-worker fan-out). Range queries ride along to
// cover the range-monitoring notification path.
//
// The paper's cost model (Section 4.1) charges updates a constant
// Time_ind for index maintenance; this test is the Go-level counterpart —
// no hidden allocator or GC traffic on top of that constant.
func TestSteadyStateAllocs(t *testing.T) {
	if raceEnabled {
		t.Skip("race instrumentation allocates; allocation counts are meaningless")
	}
	for _, shards := range []int{1, 8} {
		t.Run(fmt.Sprintf("shards=%d", shards), func(t *testing.T) {
			w := makeTickWorkload(2048, 64, 8, 8, 0.5, 5)
			m := shard.NewUnit(shards, 64, core.Options{})
			// Auto-rebalancing rides along with a band wide enough that the
			// steady workload never triggers a resize: the per-tick policy
			// check (occupancy read + hysteresis test) must itself be
			// allocation-free between rebalances. The trailing Rebalances
			// assertion turns an unexpected resize into a readable failure
			// instead of a mysterious alloc count.
			m.SetAutoRebalance(shard.AutoRebalance{
				Enabled:              true,
				TargetObjectsPerCell: 2,
				CheckEvery:           1,
				Band:                 4,
			})
			w.mount(t, m)
			// A few standing range queries exercise rangeScan and
			// noteRangeIfChanged alongside the k-NN path.
			for i := 0; i < 4; i++ {
				id := model.QueryID(len(w.queries) + i)
				center := geom.Point{X: 0.2 + 0.2*float64(i), Y: 0.5}
				if err := m.RegisterRange(id, center, 0.05); err != nil {
					t.Fatal(err)
				}
			}
			// Warm: several passes over the batch ring grow every reusable
			// buffer to the capacity the periodic workload needs.
			for c := 0; c < 4*len(w.batches); c++ {
				m.ProcessBatch(w.batches[c%len(w.batches)])
			}
			// Metrics recording rides in the measured loop exactly as the
			// serving layer records it per tick (a cycle-time histogram
			// observation plus counter traffic): instrumentation must stay
			// free on the hot path, not just the engine.
			reg := metrics.NewRegistry()
			cycleHist := reg.Histogram("cpm_test_cycle_ns")
			tickCtr := reg.Counter("cpm_test_ticks_total")
			tick := 0
			avg := testing.AllocsPerRun(100, func() {
				start := time.Now()
				m.ProcessBatch(w.batches[tick%len(w.batches)])
				cycleHist.ObserveSince(start)
				tickCtr.Inc()
				tick++
			})
			if avg != 0 {
				t.Errorf("steady-state ProcessBatch allocates %.2f/op, want 0", avg)
			}
			if got := m.Rebalances(); got != 0 {
				t.Errorf("steady workload triggered %d rebalances; widen the test band", got)
			}
		})
	}
}
