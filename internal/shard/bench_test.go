package shard_test

import (
	"fmt"
	"math/rand"
	"os"
	"runtime"
	"testing"
	"time"

	"cpm/internal/core"
	"cpm/internal/geom"
	"cpm/internal/model"
	"cpm/internal/shard"
)

// tickWorkload is a replayable monitoring load: a fixed object population
// and a ring of pre-generated move-only batches (moves of live ids are
// always valid, so cycling through the ring never desynchronizes a grid).
type tickWorkload struct {
	objs    map[model.ObjectID]geom.Point
	queries []geom.Point
	k       int
	batches []model.Batch
}

func makeTickWorkload(n, numQueries, k, batchCount int, agility float64, seed int64) *tickWorkload {
	rng := rand.New(rand.NewSource(seed))
	w := &tickWorkload{
		objs: make(map[model.ObjectID]geom.Point, n),
		k:    k,
	}
	pos := make([]geom.Point, n)
	for i := range pos {
		pos[i] = geom.Point{X: rng.Float64(), Y: rng.Float64()}
		w.objs[model.ObjectID(i)] = pos[i]
	}
	for i := 0; i < numQueries; i++ {
		w.queries = append(w.queries, geom.Point{X: rng.Float64(), Y: rng.Float64()})
	}
	clamp := func(v float64) float64 {
		if v < 0 {
			return 0
		}
		if v > 1 {
			return 1
		}
		return v
	}
	for c := 0; c < batchCount; c++ {
		var b model.Batch
		for i := range pos {
			if rng.Float64() >= agility {
				continue
			}
			to := geom.Point{
				X: clamp(pos[i].X + (rng.Float64()-0.5)*0.05),
				Y: clamp(pos[i].Y + (rng.Float64()-0.5)*0.05),
			}
			b.Objects = append(b.Objects, model.MoveUpdate(model.ObjectID(i), pos[i], to))
			pos[i] = to
		}
		w.batches = append(w.batches, b)
	}
	return w
}

// mount boots a monitor with the workload's population and queries.
func (w *tickWorkload) mount(tb testing.TB, m monitor) {
	tb.Helper()
	m.Bootstrap(w.objs)
	for i, q := range w.queries {
		if err := m.RegisterQuery(model.QueryID(i), q, w.k); err != nil {
			tb.Fatal(err)
		}
	}
}

// BenchmarkTick compares one monitoring cycle on a single engine against
// the sharded monitor at increasing shard counts, over an identical
// multi-query workload. On a multi-core runner the sharded rows should
// beat the single engine from a few shards on; with GOMAXPROCS=1 they
// instead expose the fan-out overhead.
func BenchmarkTick(b *testing.B) {
	w := makeTickWorkload(8192, 256, 16, 16, 0.5, 3)
	run := func(b *testing.B, m monitor) {
		w.mount(b, m)
		b.ReportAllocs()
		b.ResetTimer()
		for i := 0; i < b.N; i++ {
			m.ProcessBatch(w.batches[i%len(w.batches)])
		}
	}
	b.Run("single", func(b *testing.B) {
		run(b, core.NewUnitEngine(64, core.Options{}))
	})
	for _, n := range []int{1, 2, 4, 8} {
		b.Run(fmt.Sprintf("shards=%d", n), func(b *testing.B) {
			run(b, shard.NewUnit(n, 64, core.Options{}))
		})
	}
}

// TestShardedSpeedup measures the point of the exercise: on a multi-core
// machine, ProcessBatch on ≥4 shards is faster than the single engine for
// a multi-query workload. By default the measurement is logged; set
// CPM_SPEEDUP_STRICT=1 (a quiet multi-core box, not a shared CI runner
// with noisy neighbors) to make a missing speedup fail the test.
func TestShardedSpeedup(t *testing.T) {
	if testing.Short() {
		t.Skip("speedup measurement is not short")
	}
	if raceEnabled {
		t.Skip("race instrumentation serializes the shard goroutines; wall-clock comparison is meaningless")
	}
	if runtime.NumCPU() < 4 {
		t.Skipf("NumCPU = %d; the parallel speedup needs a multi-core runner", runtime.NumCPU())
	}
	const shards = 4
	w := makeTickWorkload(8192, 256, 16, 16, 0.5, 3)
	measure := func(m monitor) time.Duration {
		w.mount(t, m)
		start := time.Now()
		for c := 0; c < 2*len(w.batches); c++ {
			m.ProcessBatch(w.batches[c%len(w.batches)])
		}
		return time.Since(start)
	}
	// Best-of-three damps scheduler noise on shared CI runners.
	best := func(f func() time.Duration) time.Duration {
		b := f()
		for i := 0; i < 2; i++ {
			if d := f(); d < b {
				b = d
			}
		}
		return b
	}
	single := best(func() time.Duration { return measure(core.NewUnitEngine(64, core.Options{})) })
	parallel := best(func() time.Duration { return measure(shard.NewUnit(shards, 64, core.Options{})) })
	t.Logf("single %v, %d shards %v (%.2fx)", single, shards, parallel, float64(single)/float64(parallel))
	if parallel >= single {
		msg := fmt.Sprintf("sharded ProcessBatch (%d shards) took %v, single engine %v — no speedup", shards, parallel, single)
		if os.Getenv("CPM_SPEEDUP_STRICT") != "" {
			t.Error(msg)
		} else {
			// A wall-clock assertion on a shared runner is a flake
			// generator; outside strict mode the number is informational.
			t.Log(msg)
		}
	}
}
