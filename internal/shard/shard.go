// Package shard implements a sharded CPM monitor: continuous queries are
// hash-partitioned across N worker shards, each owning a private
// core.Engine, and every processing cycle fans the update batch out to one
// goroutine per shard and merges the results.
//
// CPM's per-query state — best_NN, visit list, leftover heap (paper
// Figures 3.3a/3.8/3.9) — is independent across queries, so the per-cycle
// monitoring loop is embarrassingly parallel in the query dimension. Each
// shard replicates the grid index (object positions must be exact for any
// query's search), but its influence lists cover only its own queries, so
// the engine's affected-cell pre-filter reduces every update that does not
// intersect one of the shard's influence regions to a bare index mutation.
// The expensive work — influence scans over cell object lists, NN
// re-computations, heap maintenance — happens only in the shard that owns
// the affected query.
//
// The partitioning is exact, not approximate: for identical streams a
// sharded monitor produces byte-for-byte the results, change
// notifications and summed work counters of a single engine (asserted by
// this package's equivalence property test).
package shard

import (
	"fmt"
	"sort"
	"sync"

	"cpm/internal/core"
	"cpm/internal/geom"
	"cpm/internal/model"
)

// Monitor is a sharded CPM monitor. Like core.Engine it is not safe for
// concurrent use by multiple callers: the parallelism is internal to
// ProcessBatch, which owns the worker goroutines.
//
// The workers are persistent: the first multi-shard ProcessBatch starts one
// goroutine per shard, and subsequent cycles feed them batches over
// per-shard channels, so a steady-state cycle spawns no goroutines and
// performs zero heap allocations (a per-cycle `go func` closure would
// allocate once per shard per tick). Close stops the workers; a later
// ProcessBatch transparently restarts them, so Close is only required to
// release the goroutines of a monitor that is being discarded.
type Monitor struct {
	shards []*core.Engine
	// perShard reuses the per-cycle query-update routing buffers.
	perShard [][]model.QueryUpdate

	// feed carries one batch per cycle to each persistent worker; nil until
	// the first multi-shard ProcessBatch. wg counts outstanding workers
	// within one cycle.
	feed []chan model.Batch
	wg   sync.WaitGroup

	// rb is the auto-rebalancing policy (zero value: disabled); ticks
	// counts completed ProcessBatch cycles for its check cadence.
	rb    AutoRebalance
	ticks int64
}

// New creates a monitor of n hash-partitioned shards over gridSize×gridSize
// grids spanning the workspace. n < 1 is clamped to 1; with one shard the
// monitor is a thin pass-through around a single engine.
func New(n, gridSize int, workspace geom.Rect, opts core.Options) *Monitor {
	if n < 1 {
		n = 1
	}
	m := &Monitor{
		shards:   make([]*core.Engine, n),
		perShard: make([][]model.QueryUpdate, n),
	}
	for i := range m.shards {
		m.shards[i] = core.NewEngine(gridSize, workspace, opts)
	}
	return m
}

// NewUnit creates a sharded monitor over the unit-square workspace.
func NewUnit(n, gridSize int, opts core.Options) *Monitor {
	return New(n, gridSize, geom.Rect{Lo: geom.Point{X: 0, Y: 0}, Hi: geom.Point{X: 1, Y: 1}}, opts)
}

// Shards returns the shard count.
func (m *Monitor) Shards() int { return len(m.shards) }

// Name implements model.Monitor.
func (m *Monitor) Name() string { return fmt.Sprintf("CPM-shard%d", len(m.shards)) }

// shardOf maps a query id to its owning shard (Fibonacci hashing, so
// clustered id ranges still spread evenly).
func (m *Monitor) shardOf(id model.QueryID) int {
	return int((uint32(id) * 0x9E3779B1) % uint32(len(m.shards)))
}

// owner returns the engine owning query id.
func (m *Monitor) owner(id model.QueryID) *core.Engine { return m.shards[m.shardOf(id)] }

// Bootstrap loads the initial object population into every shard's grid
// replica. Call once, before registering queries or processing updates.
func (m *Monitor) Bootstrap(objs map[model.ObjectID]geom.Point) {
	for _, e := range m.shards {
		e.Bootstrap(objs)
	}
}

// RegisterQuery installs a conventional k-NN query on its owning shard.
func (m *Monitor) RegisterQuery(id model.QueryID, q geom.Point, k int) error {
	return m.owner(id).RegisterQuery(id, q, k)
}

// Register installs a query of any supported definition on its owning shard.
func (m *Monitor) Register(id model.QueryID, def core.Def) error {
	return m.owner(id).Register(id, def)
}

// RegisterRange installs a continuous range query on its owning shard.
func (m *Monitor) RegisterRange(id model.QueryID, center geom.Point, radius float64) error {
	return m.owner(id).RegisterRange(id, center, radius)
}

// MoveQuery relocates an installed query.
func (m *Monitor) MoveQuery(id model.QueryID, points []geom.Point) error {
	return m.owner(id).MoveQuery(id, points)
}

// MoveRange relocates an installed range query.
func (m *Monitor) MoveRange(id model.QueryID, center geom.Point) error {
	return m.owner(id).MoveRange(id, center)
}

// IsRange reports whether id names an installed range query.
func (m *Monitor) IsRange(id model.QueryID) bool { return m.owner(id).IsRange(id) }

// HasQuery reports whether id names an installed query of either kind.
func (m *Monitor) HasQuery(id model.QueryID) bool { return m.owner(id).HasQuery(id) }

// QueryIDs returns the ids of all installed queries across every shard, in
// ascending order (matching the single engine on identical streams).
func (m *Monitor) QueryIDs() []model.QueryID {
	var ids []model.QueryID
	for _, e := range m.shards {
		ids = append(ids, e.QueryIDs()...)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// RemoveQuery uninstalls a query of either kind. Unknown ids are a no-op.
func (m *Monitor) RemoveQuery(id model.QueryID) { m.owner(id).RemoveQuery(id) }

// ProcessBatch runs one processing cycle: the object stream is shared
// read-only by every shard (each must keep its grid replica exact), query
// updates are routed to their owning shards, and the persistent worker of
// each shard runs the engine's monitoring loop over its partition.
func (m *Monitor) ProcessBatch(b model.Batch) {
	if len(m.shards) == 1 {
		m.shards[0].ProcessBatch(b)
		m.maybeRebalance()
		return
	}
	if m.feed == nil {
		m.start()
	}
	for i := range m.perShard {
		m.perShard[i] = m.perShard[i][:0]
	}
	for _, qu := range b.Queries {
		s := m.shardOf(qu.ID)
		m.perShard[s] = append(m.perShard[s], qu)
	}
	m.wg.Add(len(m.shards))
	for i, ch := range m.feed {
		ch <- model.Batch{Objects: b.Objects, Queries: m.perShard[i]}
	}
	m.wg.Wait()
	m.maybeRebalance()
}

// start launches one persistent worker goroutine per shard. The channel
// send in ProcessBatch happens-before the worker's engine access, and the
// worker's wg.Done happens-before wg.Wait returns, so each cycle's shard
// state is owned by exactly one goroutine at a time.
func (m *Monitor) start() {
	m.feed = make([]chan model.Batch, len(m.shards))
	for i := range m.shards {
		ch := make(chan model.Batch)
		m.feed[i] = ch
		e := m.shards[i]
		go func() {
			for b := range ch {
				e.ProcessBatch(b)
				m.wg.Done()
			}
		}()
	}
}

// Close stops the persistent worker goroutines. It is idempotent, and the
// monitor stays usable: a later ProcessBatch restarts the workers. Closing
// a monitor that never ran a multi-shard cycle is a no-op. Call it when
// discarding a monitor with Shards > 1 so its goroutines do not outlive it.
func (m *Monitor) Close() {
	if m.feed == nil {
		return
	}
	for _, ch := range m.feed {
		close(ch)
	}
	m.feed = nil
}

// Result returns the current result of a k-NN query.
func (m *Monitor) Result(id model.QueryID) []model.Neighbor { return m.owner(id).Result(id) }

// RangeResult returns the current members of a range query.
func (m *Monitor) RangeResult(id model.QueryID) []model.Neighbor {
	return m.owner(id).RangeResult(id)
}

// BestDist returns the query's current best_dist.
func (m *Monitor) BestDist(id model.QueryID) float64 { return m.owner(id).BestDist(id) }

// ObjectPosition returns the current position of a live object (all grid
// replicas are identical; the first shard answers).
func (m *Monitor) ObjectPosition(id model.ObjectID) (geom.Point, bool) {
	return m.shards[0].ObjectPosition(id)
}

// ObjectCount returns the number of live objects.
func (m *Monitor) ObjectCount() int { return m.shards[0].ObjectCount() }

// ChangedQueries merges the shards' per-cycle notification sets, in
// ascending order. Ownership is disjoint, so the merge is duplicate-free.
func (m *Monitor) ChangedQueries() []model.QueryID {
	if len(m.shards) == 1 {
		return m.shards[0].ChangedQueries()
	}
	var out []model.QueryID
	for _, e := range m.shards {
		out = append(out, e.ChangedQueries()...)
	}
	if len(out) == 0 {
		return nil
	}
	sort.Slice(out, func(i, j int) bool { return out[i] < out[j] })
	return out
}

// EnableDiffs switches per-cycle result-diff collection on or off in every
// shard. Disabling discards any diffs not yet taken.
func (m *Monitor) EnableDiffs(on bool) {
	for _, e := range m.shards {
		e.EnableDiffs(on)
	}
}

// TakeDiffs fans the shards' per-cycle diff streams into one stream
// stable-ordered by query id and resets them. Ownership is disjoint, so
// the merge is duplicate-free, and the ordering contract makes the merged
// stream byte-for-byte the single-engine stream for identical workloads
// (asserted by this package's equivalence property test).
func (m *Monitor) TakeDiffs() []model.ResultDiff {
	if len(m.shards) == 1 {
		return m.shards[0].TakeDiffs()
	}
	var out []model.ResultDiff
	for _, e := range m.shards {
		out = append(out, e.TakeDiffs()...)
	}
	if len(out) == 0 {
		return nil
	}
	sort.SliceStable(out, func(i, j int) bool { return out[i].Query < out[j].Query })
	return out
}

// LastPhases returns the cost-model phase decomposition of the most
// recent ProcessBatch. Shards run concurrently, so each phase reports the
// slowest shard (the critical path), not the sum across shards.
func (m *Monitor) LastPhases() model.PhaseNanos {
	var p model.PhaseNanos
	for _, e := range m.shards {
		p.MaxOf(e.LastPhases())
	}
	return p
}

// Stats sums the shards' work counters. Searches, scans and re-computations
// run only in the shard owning the affected query, so the sum equals a
// single engine's counters for the same stream.
func (m *Monitor) Stats() model.Stats {
	var s model.Stats
	for _, e := range m.shards {
		s.Add(e.Stats())
	}
	return s
}

// InvalidUpdates reports how many stream elements were dropped as
// inconsistent. Object updates are validated identically by every replica
// (count them once); query updates are validated only by their routed
// shard (sum them).
func (m *Monitor) InvalidUpdates() int64 {
	total := m.shards[0].InvalidObjectUpdates()
	for _, e := range m.shards {
		total += e.InvalidQueryUpdates()
	}
	return total
}

// MemoryFootprint sums the shards' footprints in the abstract units of the
// paper's Section 4.1. The grid term is replicated per shard — that is the
// space cost of sharding — while the per-query bookkeeping is partitioned.
func (m *Monitor) MemoryFootprint() int64 {
	var total int64
	for _, e := range m.shards {
		total += e.MemoryFootprint()
	}
	return total
}

var _ model.Monitor = (*Monitor)(nil)
