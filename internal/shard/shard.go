// Package shard implements a sharded CPM monitor: continuous queries are
// hash-partitioned across N worker shards, each owning a private
// core.Engine, and every processing cycle applies the object stream once to
// one shared grid, fans the resulting write log out to one goroutine per
// shard and merges the results.
//
// CPM's per-query state — best_NN, visit list, leftover heap (paper
// Figures 3.3a/3.8/3.9) — is independent across queries, so the per-cycle
// monitoring loop is embarrassingly parallel in the query dimension. The
// grid, by contrast, is a pure shared index: it carries no per-query state
// (influence lists live in per-engine grid.Influence indexes), so all
// shards read ONE grid and memory stays O(objects) instead of O(shards ×
// objects). The coordinator applies each tick's object updates exactly once
// (grid.ApplyBatch, inside an epoch-guarded write window), then every shard
// replays the write log against its own influence lists at a stable epoch —
// reads only, so the fan-out needs no locks. Each shard's influence lists
// cover only its own queries, so the engine's affected-cell pre-filter
// reduces every update that does not intersect one of the shard's influence
// regions to a couple of slice-length loads. The expensive work — influence
// scans over cell object lists, NN re-computations, heap maintenance —
// happens only in the shard that owns the affected query.
//
// The partitioning is exact, not approximate: for identical streams a
// sharded monitor produces byte-for-byte the results, change
// notifications and summed work counters of a single engine (asserted by
// this package's equivalence property test).
package shard

import (
	"cmp"
	"fmt"
	"slices"
	"sync"
	"time"

	"cpm/internal/core"
	"cpm/internal/geom"
	"cpm/internal/grid"
	"cpm/internal/model"
)

// Monitor is a sharded CPM monitor. Like core.Engine it is not safe for
// concurrent use by multiple callers: the parallelism is internal to
// ProcessBatch, which owns the worker goroutines.
//
// The workers are persistent: the first multi-shard ProcessBatch starts one
// goroutine per shard, and subsequent cycles feed them the tick's write log
// over per-shard channels, so a steady-state cycle spawns no goroutines and
// performs zero heap allocations (a per-cycle `go func` closure would
// allocate once per shard per tick). Close stops the workers; a later
// ProcessBatch transparently restarts them, so Close is only required to
// release the goroutines of a monitor that is being discarded.
type Monitor struct {
	// g is the single grid shared by all shards, owned (and exclusively
	// mutated) by the coordinator thread running ProcessBatch.
	g      *grid.Grid
	shards []*core.Engine
	// perShard reuses the per-cycle query-update routing buffers.
	perShard [][]model.QueryUpdate
	// applied is the reused per-tick write log produced by grid.ApplyBatch
	// and shared read-only by every worker during the fan-out.
	applied []grid.Applied

	// invalidObjects counts object updates the coordinator dropped while
	// applying the stream — exactly once per element, however many shards
	// exist. Query-update invalids stay with their routed engines.
	invalidObjects int64
	// applyNs is the serial grid-application time of the last tick,
	// reported as part of the relocation phase.
	applyNs int64
	// perUpdate mirrors core.Options.PerUpdate: the ablation's one-at-a-time
	// semantics need the coordinator to interleave grid writes with the
	// engines' scan/resolve rounds, so the monitor drives it.
	perUpdate bool

	// feed carries one work item per cycle to each persistent worker; nil
	// until the first multi-shard ProcessBatch. wg counts outstanding
	// workers within one cycle.
	feed []chan feedItem
	wg   sync.WaitGroup

	// Merge buffers reused across ticks by the serving path; the returned
	// slices are borrowed until the next call.
	mergedIDs   []model.QueryID
	mergedDiffs []model.ResultDiff

	// rb is the auto-rebalancing policy (zero value: disabled); ticks
	// counts completed ProcessBatch cycles for its check cadence;
	// rebalances counts grid resizes (the grid is resized once, not once
	// per shard).
	rb         AutoRebalance
	ticks      int64
	rebalances int64
}

// feedItem is one cycle's work for one shard: the tick's write log (shared,
// read-only) and the query updates routed to the shard.
type feedItem struct {
	applied []grid.Applied
	queries []model.QueryUpdate
}

// New creates a monitor of n hash-partitioned shards over one shared
// gridSize×gridSize grid spanning the workspace. n < 1 is clamped to 1;
// with one shard the monitor still runs the apply-once cycle, just without
// the goroutine fan-out.
func New(n, gridSize int, workspace geom.Rect, opts core.Options) *Monitor {
	if n < 1 {
		n = 1
	}
	g := grid.New(gridSize, workspace)
	// Arm the epoch-guard assertions (race/assert builds): from here on the
	// grid may only be mutated inside a write window.
	g.SetShared(true)
	m := &Monitor{
		g:         g,
		shards:    make([]*core.Engine, n),
		perShard:  make([][]model.QueryUpdate, n),
		perUpdate: opts.PerUpdate,
	}
	for i := range m.shards {
		m.shards[i] = core.NewSharedEngine(g, opts)
	}
	return m
}

// NewUnit creates a sharded monitor over the unit-square workspace.
func NewUnit(n, gridSize int, opts core.Options) *Monitor {
	return New(n, gridSize, geom.Rect{Lo: geom.Point{X: 0, Y: 0}, Hi: geom.Point{X: 1, Y: 1}}, opts)
}

// Shards returns the shard count.
func (m *Monitor) Shards() int { return len(m.shards) }

// Name implements model.Monitor.
func (m *Monitor) Name() string { return fmt.Sprintf("CPM-shard%d", len(m.shards)) }

// shardOf maps a query id to its owning shard (Fibonacci hashing, so
// clustered id ranges still spread evenly).
func (m *Monitor) shardOf(id model.QueryID) int {
	return int((uint32(id) * 0x9E3779B1) % uint32(len(m.shards)))
}

// owner returns the engine owning query id.
func (m *Monitor) owner(id model.QueryID) *core.Engine { return m.shards[m.shardOf(id)] }

// Bootstrap loads the initial object population into the shared grid —
// once, not once per shard. Call before registering queries or processing
// updates; it panics on a non-empty monitor.
func (m *Monitor) Bootstrap(objs map[model.ObjectID]geom.Point) {
	if m.g.Count() > 0 {
		panic("shard: Bootstrap on a non-empty monitor")
	}
	m.g.BeginWrites()
	defer m.g.EndWrites()
	for id, p := range objs {
		if err := m.g.Insert(id, p); err != nil {
			panic(fmt.Sprintf("shard: bootstrap insert: %v", err))
		}
	}
}

// RegisterQuery installs a conventional k-NN query on its owning shard.
func (m *Monitor) RegisterQuery(id model.QueryID, q geom.Point, k int) error {
	return m.owner(id).RegisterQuery(id, q, k)
}

// Register installs a query of any supported definition on its owning shard.
func (m *Monitor) Register(id model.QueryID, def core.Def) error {
	return m.owner(id).Register(id, def)
}

// RegisterRange installs a continuous range query on its owning shard.
func (m *Monitor) RegisterRange(id model.QueryID, center geom.Point, radius float64) error {
	return m.owner(id).RegisterRange(id, center, radius)
}

// MoveQuery relocates an installed query.
func (m *Monitor) MoveQuery(id model.QueryID, points []geom.Point) error {
	return m.owner(id).MoveQuery(id, points)
}

// MoveRange relocates an installed range query.
func (m *Monitor) MoveRange(id model.QueryID, center geom.Point) error {
	return m.owner(id).MoveRange(id, center)
}

// IsRange reports whether id names an installed range query.
func (m *Monitor) IsRange(id model.QueryID) bool { return m.owner(id).IsRange(id) }

// HasQuery reports whether id names an installed query of either kind.
func (m *Monitor) HasQuery(id model.QueryID) bool { return m.owner(id).HasQuery(id) }

// QueryIDs returns the ids of all installed queries across every shard, in
// ascending order (matching the single engine on identical streams). The
// caller owns the slice.
func (m *Monitor) QueryIDs() []model.QueryID {
	var ids []model.QueryID
	for _, e := range m.shards {
		ids = append(ids, e.QueryIDs()...)
	}
	slices.Sort(ids)
	return ids
}

// RemoveQuery uninstalls a query of either kind. Unknown ids are a no-op.
func (m *Monitor) RemoveQuery(id model.QueryID) { m.owner(id).RemoveQuery(id) }

// ProcessBatch runs one processing cycle restructured around the shared
// grid: apply writes (the coordinator thread applies the object stream to
// the grid exactly once, logging each accepted update), then parallel
// monitoring (every shard replays the log against its own influence lists
// at the now-stable epoch and resolves its queries), then merge (the
// accessor methods below). Query updates are routed to their owning shards
// as before.
func (m *Monitor) ProcessBatch(b model.Batch) {
	for i := range m.perShard {
		m.perShard[i] = m.perShard[i][:0]
	}
	for _, qu := range b.Queries {
		s := m.shardOf(qu.ID)
		m.perShard[s] = append(m.perShard[s], qu)
	}
	if m.perUpdate {
		m.processPerUpdate(b)
	} else {
		t0 := time.Now()
		var invalid int64
		m.applied, invalid = m.g.ApplyBatch(b.Objects, m.applied[:0])
		m.invalidObjects += invalid
		m.applyNs = time.Since(t0).Nanoseconds()
		if len(m.shards) == 1 {
			e := m.shards[0]
			e.BeginCycle(m.perShard[0])
			e.ScanApplied(m.applied)
			e.ApplyQueryUpdates(m.perShard[0])
		} else {
			if m.feed == nil {
				m.start()
			}
			m.wg.Add(len(m.shards))
			for i, ch := range m.feed {
				ch <- feedItem{applied: m.applied, queries: m.perShard[i]}
			}
			m.wg.Wait()
		}
	}
	m.maybeRebalance()
}

// processPerUpdate drives the Section 3.2 ablation over the shared grid:
// each object update is applied to the grid on its own and immediately
// classified and resolved by every engine before the next one is applied.
// The interleaving forces sequential engine rounds — the ablation measures
// algorithmic cost, not parallel speedup.
func (m *Monitor) processPerUpdate(b model.Batch) {
	for i, e := range m.shards {
		e.BeginCycle(m.perShard[i])
	}
	m.applyNs = 0
	for i := range b.Objects {
		t0 := time.Now()
		var invalid int64
		m.applied, invalid = m.g.ApplyBatch(b.Objects[i:i+1], m.applied[:0])
		m.invalidObjects += invalid
		m.applyNs += time.Since(t0).Nanoseconds()
		for _, e := range m.shards {
			e.ScanApplied(m.applied)
		}
	}
	for i, e := range m.shards {
		e.ApplyQueryUpdates(m.perShard[i])
	}
}

// start launches one persistent worker goroutine per shard. The channel
// send in ProcessBatch happens-before the worker's engine access, and the
// worker's wg.Done happens-before wg.Wait returns, so each cycle's shard
// state is owned by exactly one goroutine at a time — and the write log it
// replays was fully applied before any send.
func (m *Monitor) start() {
	m.feed = make([]chan feedItem, len(m.shards))
	for i := range m.shards {
		ch := make(chan feedItem)
		m.feed[i] = ch
		e := m.shards[i]
		go func() {
			for it := range ch {
				e.BeginCycle(it.queries)
				e.ScanApplied(it.applied)
				e.ApplyQueryUpdates(it.queries)
				m.wg.Done()
			}
		}()
	}
}

// Close stops the persistent worker goroutines, including any intra-shard
// scan workers the engines started. It is idempotent, and the monitor stays
// usable: a later ProcessBatch restarts the workers. Call it when
// discarding a monitor so its goroutines do not outlive it.
func (m *Monitor) Close() {
	for _, e := range m.shards {
		e.Close()
	}
	if m.feed == nil {
		return
	}
	for _, ch := range m.feed {
		close(ch)
	}
	m.feed = nil
}

// Result returns the current result of a k-NN query.
func (m *Monitor) Result(id model.QueryID) []model.Neighbor { return m.owner(id).Result(id) }

// RangeResult returns the current members of a range query.
func (m *Monitor) RangeResult(id model.QueryID) []model.Neighbor {
	return m.owner(id).RangeResult(id)
}

// BestDist returns the query's current best_dist.
func (m *Monitor) BestDist(id model.QueryID) float64 { return m.owner(id).BestDist(id) }

// ObjectPosition returns the current position of a live object, read from
// the shared grid.
func (m *Monitor) ObjectPosition(id model.ObjectID) (geom.Point, bool) {
	return m.g.Position(id)
}

// ObjectCount returns the number of live objects.
func (m *Monitor) ObjectCount() int { return m.g.Count() }

// GridEpoch returns the shared grid's write epoch — the number of write
// batches (object-stream applications, bootstraps, rebuilds) applied to it.
func (m *Monitor) GridEpoch() int64 { return m.g.Epoch() }

// ChangedQueries merges the shards' per-cycle notification sets, in
// ascending order. Ownership is disjoint, so cross-shard duplicates cannot
// occur (termination duplicates within one shard are compacted, matching
// the single engine). The returned slice is a merge buffer reused across
// ticks: it is borrowed until the next ChangedQueries call.
func (m *Monitor) ChangedQueries() []model.QueryID {
	if len(m.shards) == 1 {
		return m.shards[0].ChangedQueries()
	}
	out := m.mergedIDs[:0]
	for _, e := range m.shards {
		out = e.AppendChangedIDs(out)
	}
	if len(out) == 0 {
		m.mergedIDs = out
		return nil
	}
	slices.Sort(out)
	out = slices.Compact(out)
	m.mergedIDs = out
	return out
}

// EnableDiffs switches per-cycle result-diff collection on or off in every
// shard. Disabling discards any diffs not yet taken.
func (m *Monitor) EnableDiffs(on bool) {
	for _, e := range m.shards {
		e.EnableDiffs(on)
	}
}

// TakeDiffs fans the shards' per-cycle diff streams into one stream
// stable-ordered by query id and resets them. Ownership is disjoint, so
// the merge is duplicate-free, and the ordering contract makes the merged
// stream byte-for-byte the single-engine stream for identical workloads
// (asserted by this package's equivalence property test). The returned
// slice is a merge buffer reused across ticks — borrowed until the next
// TakeDiffs call; the diff values themselves (and the result slices they
// carry) are handed off by the engines and stay valid.
func (m *Monitor) TakeDiffs() []model.ResultDiff {
	if len(m.shards) == 1 {
		return m.shards[0].TakeDiffs()
	}
	out := m.mergedDiffs[:0]
	for _, e := range m.shards {
		out = append(out, e.TakeDiffs()...)
	}
	m.mergedDiffs = out
	if len(out) == 0 {
		return nil
	}
	slices.SortStableFunc(out, func(a, b model.ResultDiff) int {
		return cmp.Compare(a.Query, b.Query)
	})
	return out
}

// LastPhases returns the cost-model phase decomposition of the most
// recent ProcessBatch. Shards run concurrently, so each phase reports the
// slowest shard (the critical path), not the sum across shards; the
// coordinator's serial grid-application time is added to the relocation
// phase, where index maintenance has always been accounted.
func (m *Monitor) LastPhases() model.PhaseNanos {
	var p model.PhaseNanos
	for _, e := range m.shards {
		p.MaxOf(e.LastPhases())
	}
	p.Relocate += m.applyNs
	return p
}

// Stats sums the shards' work counters. Searches, scans and re-computations
// run only in the shard owning the affected query, and every counter —
// including cell accesses — is engine-local, so the sum equals a single
// engine's counters for the same stream.
func (m *Monitor) Stats() model.Stats {
	var s model.Stats
	for _, e := range m.shards {
		s.Add(e.Stats())
	}
	return s
}

// InvalidUpdates reports how many stream elements were dropped as
// inconsistent. Object updates are validated once by the coordinator while
// applying the shared grid's writes; query updates are validated only by
// their routed shard (sum them).
func (m *Monitor) InvalidUpdates() int64 {
	total := m.invalidObjects
	for _, e := range m.shards {
		total += e.InvalidQueryUpdates()
	}
	return total
}

// MemoryFootprint reports the monitor's size in the abstract units of the
// paper's Section 4.1: the shared grid term counted ONCE plus every shard's
// partitioned query book-keeping. Equal to a single engine's footprint for
// the same workload — sharding no longer multiplies the grid term.
func (m *Monitor) MemoryFootprint() int64 {
	total := m.g.MemoryFootprint()
	for _, e := range m.shards {
		total += e.QueryMemoryUnits()
	}
	return total
}

var _ model.Monitor = (*Monitor)(nil)
