//go:build race

package shard_test

// raceEnabled reports that this test binary was built with -race, whose
// happens-before tracking serializes the shard goroutines and voids any
// wall-clock comparison.
const raceEnabled = true
