package shard_test

import (
	"reflect"
	"sort"
	"testing"

	"cpm/internal/core"
	"cpm/internal/geom"
	"cpm/internal/model"
	"cpm/internal/shard"
)

// installExisting registers the world's current query set (at its current
// locations) on a freshly built monitor, in ascending id order.
func installExisting(t *testing.T, w *world, m monitor) {
	t.Helper()
	ids := make([]model.QueryID, 0, len(w.queries))
	for id := range w.queries {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	for _, id := range ids {
		def := w.queries[id]
		var err error
		switch def.kind {
		case qPoint:
			err = m.RegisterQuery(id, def.pts[0], def.k)
		case qConstrained:
			d := core.PointQuery(def.pts[0], def.k)
			d.Constraint = &def.constraint
			err = m.Register(id, d)
		case qAgg:
			err = m.Register(id, core.AggQuery(def.pts, def.k, def.agg))
		case qRange:
			err = m.RegisterRange(id, def.pts[0], def.radius)
		}
		if err != nil {
			t.Fatalf("install q%d on fresh monitor: %v", id, err)
		}
	}
}

// TestRebalanceEquivalence is the resize correctness property: after
// Rebalance(newSize) — growing and shrinking, at 1 and 8 shards — the
// resized monitor's per-query results and its ordered diff stream over all
// subsequent cycles are byte-for-byte those of a monitor freshly built at
// the new size over the same state, and both match the brute-force oracle
// every cycle.
func TestRebalanceEquivalence(t *testing.T) {
	const (
		startSize = 16
		objects   = 220
		initialQ  = 12
	)
	for _, shards := range []int{1, 8} {
		for _, newSize := range []int{37, 6} { // grow and shrink
			for _, seed := range []int64{2, 13} {
				w := newWorld(seed, startSize, objects)
				m := shard.NewUnit(shards, startSize, core.Options{})
				defer m.Close()

				boot := make(map[model.ObjectID]geom.Point, len(w.pos))
				for id, p := range w.pos {
					boot[id] = p
				}
				m.Bootstrap(boot)
				m.EnableDiffs(true)
				for i := 0; i < initialQ; i++ {
					w.install(t, []monitor{m})
				}

				// A few warm-up cycles so the resize hits a lived-in monitor
				// (populated visit lists, trimmed influence prefixes).
				for cycle := 0; cycle < 6; cycle++ {
					b := w.batch()
					w.applyToOracle(b)
					m.ProcessBatch(b)
					m.TakeDiffs()
				}

				before := make(map[model.QueryID][]model.Neighbor, len(w.queries))
				for id, def := range w.queries {
					before[id] = w.result(m, id, def)
				}

				m.Rebalance(newSize)

				if got := m.GridSize(); got != newSize {
					t.Fatalf("GridSize = %d after Rebalance(%d)", got, newSize)
				}
				if got := m.Rebalances(); got != 1 {
					t.Fatalf("Rebalances = %d, want 1", got)
				}
				if diffs := m.TakeDiffs(); len(diffs) != 0 {
					t.Fatalf("Rebalance emitted diffs: %v", diffs)
				}
				for id, def := range w.queries {
					got := w.result(m, id, def)
					if !neighborsEqual(got, before[id]) {
						t.Fatalf("shards=%d newSize=%d seed=%d: Rebalance changed q%d\nbefore %v\nafter  %v",
							shards, newSize, seed, id, before[id], got)
					}
				}

				// The reference: a monitor built directly at the new size
				// over the current object population and query set. Its
				// pending install diffs are drained so both streams start
				// empty.
				fresh := shard.NewUnit(shards, newSize, core.Options{})
				defer fresh.Close()
				curObjs := make(map[model.ObjectID]geom.Point, len(w.pos))
				for id, p := range w.pos {
					curObjs[id] = p
				}
				fresh.Bootstrap(curObjs)
				fresh.EnableDiffs(true)
				installExisting(t, w, fresh)
				fresh.TakeDiffs()

				for id, def := range w.queries {
					got, ref := w.result(m, id, def), w.result(fresh, id, def)
					if !neighborsEqual(got, ref) {
						t.Fatalf("shards=%d newSize=%d seed=%d q%d: resized %v, fresh %v",
							shards, newSize, seed, id, got, ref)
					}
				}

				// Subsequent cycles: identical batches (including churn,
				// query moves and terminations) must produce identical
				// results, change sets and ordered diff streams on the
				// resized and the fresh monitor, and oracle-exact results.
				for cycle := 0; cycle < 10; cycle++ {
					// Mid-stream, rebuild the (shared, at 8 shards) grid
					// again on the resized monitor only: results are
					// δ-independent, so the two monitors must stay
					// byte-identical even at different grid sizes.
					if cycle == 5 {
						m.Rebalance(24)
						if got := m.Rebalances(); got != 2 {
							t.Fatalf("Rebalances = %d after mid-stream resize, want 2", got)
						}
					}
					b := w.batch()
					w.applyToOracle(b)
					m.ProcessBatch(b)
					fresh.ProcessBatch(b)

					for id, def := range w.queries {
						want := w.expect(def)
						got := w.result(m, id, def)
						if !neighborsEqual(got, want) {
							t.Fatalf("shards=%d newSize=%d seed=%d cycle %d q%d: resized monitor diverged from oracle\ngot  %v\nwant %v",
								shards, newSize, seed, cycle, id, got, want)
						}
						if ref := w.result(fresh, id, def); !neighborsEqual(got, ref) {
							t.Fatalf("shards=%d newSize=%d seed=%d cycle %d q%d: resized %v, fresh %v",
								shards, newSize, seed, cycle, id, got, ref)
						}
					}
					if got, ref := m.ChangedQueries(), fresh.ChangedQueries(); !reflect.DeepEqual(got, ref) {
						t.Fatalf("shards=%d newSize=%d seed=%d cycle %d: changed sets\nresized %v\nfresh   %v",
							shards, newSize, seed, cycle, got, ref)
					}
					if got, ref := m.TakeDiffs(), fresh.TakeDiffs(); !reflect.DeepEqual(got, ref) {
						t.Fatalf("shards=%d newSize=%d seed=%d cycle %d: diff streams\nresized %v\nfresh   %v",
							shards, newSize, seed, cycle, got, ref)
					}
					for w.rng.Float64() < 0.3 { // query churn on both monitors
						w.install(t, []monitor{m, fresh})
					}
				}
			}
		}
	}
}

// TestAutoRebalancePolicy checks the density-driven trigger: a population
// collapsing into a hotspot must grow the grid, a dispersing one must
// shrink it back, results staying oracle-exact throughout; and occupancy
// inside the hysteresis band must never trigger at all.
func TestAutoRebalancePolicy(t *testing.T) {
	const n = 1500
	for _, shards := range []int{1, 4} {
		w := newWorld(9, 32, n)
		m := shard.NewUnit(shards, 32, core.Options{})
		defer m.Close()
		m.SetAutoRebalance(shard.AutoRebalance{
			Enabled:              true,
			TargetObjectsPerCell: 6,
			CheckEvery:           2,
			MaxSize:              256,
		})
		boot := make(map[model.ObjectID]geom.Point, len(w.pos))
		for id, p := range w.pos {
			boot[id] = p
		}
		m.Bootstrap(boot)
		for i := 0; i < 8; i++ {
			w.install(t, []monitor{m})
		}

		check := func(label string) {
			t.Helper()
			for id, def := range w.queries {
				got, want := w.result(m, id, def), w.expect(def)
				if !neighborsEqual(got, want) {
					t.Fatalf("shards=%d %s q%d: got %v, want %v", shards, label, id, got, want)
				}
			}
		}

		// Phase 1: collapse everything into a 0.02-radius hotspot over a
		// few cycles. Density explodes, the policy must refine the grid.
		startSize := m.GridSize()
		hotspot := geom.Point{X: 0.31, Y: 0.64}
		ids := make([]model.ObjectID, 0, len(w.pos))
		for id := range w.pos {
			ids = append(ids, id)
		}
		sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
		for cycle := 0; cycle < 8; cycle++ {
			var b model.Batch
			for _, id := range ids {
				old := w.pos[id]
				to := geom.Point{
					X: hotspot.X + (old.X-hotspot.X)*0.4 + (w.rng.Float64()-0.5)*0.004,
					Y: hotspot.Y + (old.Y-hotspot.Y)*0.4 + (w.rng.Float64()-0.5)*0.004,
				}
				w.pos[id] = to
				b.Objects = append(b.Objects, model.MoveUpdate(id, old, to))
			}
			w.applyToOracle(b)
			m.ProcessBatch(b)
			check("collapse")
		}
		grown := m.GridSize()
		if grown <= startSize {
			t.Fatalf("shards=%d: grid did not grow under hotspot density: %d -> %d",
				shards, startSize, grown)
		}
		if m.Rebalances() == 0 {
			t.Fatalf("shards=%d: no rebalance recorded", shards)
		}

		// Phase 2: disperse back to uniform; the policy must coarsen again.
		for cycle := 0; cycle < 8; cycle++ {
			var b model.Batch
			for _, id := range ids {
				old := w.pos[id]
				to := w.randPoint()
				w.pos[id] = to
				b.Objects = append(b.Objects, model.MoveUpdate(id, old, to))
			}
			w.applyToOracle(b)
			m.ProcessBatch(b)
			check("disperse")
		}
		if shrunk := m.GridSize(); shrunk >= grown {
			t.Fatalf("shards=%d: grid did not shrink back after dispersal: %d (was %d)",
				shards, shrunk, grown)
		}

		// Phase 3: steady density. The sqrt correction may need a couple of
		// further checks to converge into the band (each step moves toward
		// the target), so let it settle first; after that the hysteresis
		// band must hold the size absolutely still.
		for cycle := 0; cycle < 12; cycle++ {
			b := w.batch()
			w.applyToOracle(b)
			m.ProcessBatch(b)
			check("settle")
		}
		count, size := m.Rebalances(), m.GridSize()
		for cycle := 0; cycle < 8; cycle++ {
			b := w.batch()
			w.applyToOracle(b)
			m.ProcessBatch(b)
			check("steady")
		}
		if got := m.Rebalances(); got != count {
			t.Fatalf("shards=%d: policy thrashed in steady state: %d extra resizes (size %d -> %d)",
				shards, got-count, size, m.GridSize())
		}
	}
}
