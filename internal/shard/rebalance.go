package shard

import (
	"math"
	"sync"
)

// Coordinated online grid rebalancing.
//
// Every shard replicates the grid (object positions must be exact for any
// query's search), so grid geometry — the cell count, and with it δ — is
// shared state: the merged result and diff streams are only exact while all
// replicas agree on it. The monitor therefore owns both the manual resize
// (Rebalance fans the new size out to every shard engine between cycles)
// and the automatic policy (maybeRebalance, evaluated at the end of every
// ProcessBatch, after the worker fan-in barrier — no worker goroutine can
// be touching an engine while the grids are rebuilt).

// AutoRebalance configures the automatic grid-resizing policy of a
// monitor. The zero value disables it.
type AutoRebalance struct {
	// Enabled switches the policy on.
	Enabled bool
	// TargetObjectsPerCell is the occupancy the policy steers toward:
	// the desired mean number of live objects per non-empty cell (the
	// paper's cost model trades cell-list scan cost against cells-visited
	// cost through exactly this density). Default 8.
	TargetObjectsPerCell float64
	// CheckEvery is the policy cadence in processing cycles. Default 16.
	CheckEvery int
	// Band is the hysteresis factor: a resize triggers only when the
	// observed occupancy leaves [Target/Band, Target·Band], and the resize
	// aims back at Target, so small oscillations never thrash the grid.
	// Default 2 (values <= 1 mean the default).
	Band float64
	// MinSize and MaxSize clamp the chosen grid size (cells per
	// dimension). Defaults 4 and 512.
	MinSize, MaxSize int
}

func (rb *AutoRebalance) defaults() {
	if rb.TargetObjectsPerCell <= 0 {
		rb.TargetObjectsPerCell = 8
	}
	if rb.CheckEvery <= 0 {
		rb.CheckEvery = 16
	}
	if rb.Band <= 1 {
		rb.Band = 2
	}
	if rb.MinSize <= 0 {
		rb.MinSize = 4
	}
	if rb.MaxSize <= 0 {
		rb.MaxSize = 512
	}
	if rb.MaxSize < rb.MinSize {
		rb.MaxSize = rb.MinSize
	}
}

// SetAutoRebalance installs (or disables) the automatic rebalancing
// policy. Like every other method it must not race a ProcessBatch call.
func (m *Monitor) SetAutoRebalance(rb AutoRebalance) {
	rb.defaults()
	m.rb = rb
}

// Rebalance re-partitions every shard's grid replica into
// newSize×newSize cells and reinstalls all query book-keeping, leaving
// every result untouched (see core.Engine.Rebalance). It runs between
// cycles — after ProcessBatch returns, the persistent workers are parked
// on their feed channels, so the engines are exclusively ours — with one
// goroutine per shard: each replica re-buckets the full object population,
// so a serial loop would scale the stop-the-world pause linearly with the
// shard count.
func (m *Monitor) Rebalance(newSize int) {
	if len(m.shards) == 1 {
		m.shards[0].Rebalance(newSize)
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(m.shards))
	for _, e := range m.shards {
		go func() {
			defer wg.Done()
			e.Rebalance(newSize)
		}()
	}
	wg.Wait()
}

// GridSize returns the current cells-per-dimension of the (agreeing)
// shard grids — a runtime property once rebalancing is on.
func (m *Monitor) GridSize() int { return m.shards[0].GridSize() }

// Rebalances returns how many grid resizes the monitor has performed.
// All replicas resize together, so the first shard's count is the
// monitor's.
func (m *Monitor) Rebalances() int64 { return m.shards[0].Rebalances() }

// maybeRebalance runs the policy at a cycle boundary. The occupancy read
// and the decision are pure arithmetic over two grid counters, so the
// steady-state (no resize) path allocates nothing.
func (m *Monitor) maybeRebalance() {
	if !m.rb.Enabled {
		return
	}
	m.ticks++
	if m.ticks%int64(m.rb.CheckEvery) != 0 {
		return
	}
	if ns, ok := m.rebalanceTarget(); ok {
		m.Rebalance(ns)
	}
}

// rebalanceTarget evaluates the policy against the first shard's grid
// replica (all replicas are identical) and returns the new grid size when
// a resize is due.
//
// With mean occupancy L on an S×S grid, the population covers roughly
// L-proportionally many cells at any resolution, so resizing to
// S·sqrt(L/Target) lands the occupancy near Target; the hysteresis band
// around Target keeps the sqrt correction from ping-ponging.
func (m *Monitor) rebalanceTarget() (int, bool) {
	g := m.shards[0].Grid()
	load := g.MeanOccupancy()
	if load == 0 {
		return 0, false // empty grid: nothing to steer by
	}
	target := m.rb.TargetObjectsPerCell
	if load <= target*m.rb.Band && load >= target/m.rb.Band {
		return 0, false
	}
	size := g.Size()
	ns := int(math.Round(float64(size) * math.Sqrt(load/target)))
	if ns < m.rb.MinSize {
		ns = m.rb.MinSize
	}
	if ns > m.rb.MaxSize {
		ns = m.rb.MaxSize
	}
	if ns == size {
		return 0, false
	}
	return ns, true
}
