package shard

import (
	"math"
	"sync"
)

// Coordinated online grid rebalancing.
//
// Grid geometry — the cell count, and with it δ — is shared state: all
// shards read the one shared grid, so the monitor owns both the manual
// resize (Rebalance rebuilds the grid ONCE, then reindexes every engine)
// and the automatic policy (maybeRebalance, evaluated at the end of every
// ProcessBatch, after the worker fan-in barrier — no worker goroutine can
// be touching an engine while the grid is rebuilt).

// AutoRebalance configures the automatic grid-resizing policy of a
// monitor. The zero value disables it.
type AutoRebalance struct {
	// Enabled switches the policy on.
	Enabled bool
	// TargetObjectsPerCell is the occupancy the policy steers toward:
	// the desired mean number of live objects per non-empty cell (the
	// paper's cost model trades cell-list scan cost against cells-visited
	// cost through exactly this density). Default 8.
	TargetObjectsPerCell float64
	// CheckEvery is the policy cadence in processing cycles. Default 16.
	CheckEvery int
	// Band is the hysteresis factor: a resize triggers only when the
	// observed occupancy leaves [Target/Band, Target·Band], and the resize
	// aims back at Target, so small oscillations never thrash the grid.
	// Default 2 (values <= 1 mean the default).
	Band float64
	// MinSize and MaxSize clamp the chosen grid size (cells per
	// dimension). Defaults 4 and 512.
	MinSize, MaxSize int
}

func (rb *AutoRebalance) defaults() {
	if rb.TargetObjectsPerCell <= 0 {
		rb.TargetObjectsPerCell = 8
	}
	if rb.CheckEvery <= 0 {
		rb.CheckEvery = 16
	}
	if rb.Band <= 1 {
		rb.Band = 2
	}
	if rb.MinSize <= 0 {
		rb.MinSize = 4
	}
	if rb.MaxSize <= 0 {
		rb.MaxSize = 512
	}
	if rb.MaxSize < rb.MinSize {
		rb.MaxSize = rb.MinSize
	}
}

// SetAutoRebalance installs (or disables) the automatic rebalancing
// policy. Like every other method it must not race a ProcessBatch call.
func (m *Monitor) SetAutoRebalance(rb AutoRebalance) {
	rb.defaults()
	m.rb = rb
}

// Rebalance re-partitions the shared grid into newSize×newSize cells —
// re-bucketing the object population exactly once, however many shards
// exist — and then reinstalls all query book-keeping, leaving every result
// untouched (see core.Engine.Reindex). A no-op when newSize equals the
// current size. It runs between cycles — after ProcessBatch returns, the
// persistent workers are parked on their feed channels, so the engines are
// exclusively ours — with one goroutine per shard for the reindex half:
// reindexing scans no objects and touches only per-engine state plus the
// (now stable) grid geometry, so it parallelizes cleanly even over the
// shared grid.
func (m *Monitor) Rebalance(newSize int) {
	if newSize == m.g.Size() {
		return
	}
	m.g.Rebuild(newSize)
	m.rebalances++
	if len(m.shards) == 1 {
		m.shards[0].Reindex()
		return
	}
	var wg sync.WaitGroup
	wg.Add(len(m.shards))
	for _, e := range m.shards {
		go func() {
			defer wg.Done()
			e.Reindex()
		}()
	}
	wg.Wait()
}

// GridSize returns the shared grid's current cells-per-dimension — a
// runtime property once rebalancing is on.
func (m *Monitor) GridSize() int { return m.g.Size() }

// Rebalances returns how many grid resizes the monitor has performed.
func (m *Monitor) Rebalances() int64 { return m.rebalances }

// maybeRebalance runs the policy at a cycle boundary. The occupancy read
// and the decision are pure arithmetic over two grid counters, so the
// steady-state (no resize) path allocates nothing.
func (m *Monitor) maybeRebalance() {
	if !m.rb.Enabled {
		return
	}
	m.ticks++
	if m.ticks%int64(m.rb.CheckEvery) != 0 {
		return
	}
	if ns, ok := m.rebalanceTarget(); ok {
		m.Rebalance(ns)
	}
}

// rebalanceTarget evaluates the policy against the shared grid and returns
// the new grid size when a resize is due.
//
// With mean occupancy L on an S×S grid, the population covers roughly
// L-proportionally many cells at any resolution, so resizing to
// S·sqrt(L/Target) lands the occupancy near Target; the hysteresis band
// around Target keeps the sqrt correction from ping-ponging.
func (m *Monitor) rebalanceTarget() (int, bool) {
	load := m.g.MeanOccupancy()
	if load == 0 {
		return 0, false // empty grid: nothing to steer by
	}
	target := m.rb.TargetObjectsPerCell
	if load <= target*m.rb.Band && load >= target/m.rb.Band {
		return 0, false
	}
	size := m.g.Size()
	ns := int(math.Round(float64(size) * math.Sqrt(load/target)))
	if ns < m.rb.MinSize {
		ns = m.rb.MinSize
	}
	if ns > m.rb.MaxSize {
		ns = m.rb.MaxSize
	}
	if ns == size {
		return 0, false
	}
	return ns, true
}
