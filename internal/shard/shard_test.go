package shard_test

import (
	"math"
	"math/rand"
	"reflect"
	"sort"
	"testing"

	"cpm/internal/bruteforce"
	"cpm/internal/core"
	"cpm/internal/geom"
	"cpm/internal/grid"
	"cpm/internal/model"
	"cpm/internal/shard"
)

// shardCounts is the sweep of the equivalence property test.
var shardCounts = []int{1, 2, 4, 8}

// workersFor adds intra-shard scan parallelism to the sweep: each shard
// count runs with a different ScanWorkers setting (including the serial
// default) so the equivalence property also covers the per-shard worker
// pool. The single-engine reference always stays serial.
var workersFor = map[int]int{1: 4, 2: 3, 4: 1, 8: 2}

// qKind enumerates the query shapes the property test mixes.
type qKind uint8

const (
	qPoint qKind = iota
	qConstrained
	qAgg
	qRange
)

// qdef is the test's own record of an installed query, used to drive query
// churn and to compute the brute-force expectation.
type qdef struct {
	kind       qKind
	pts        []geom.Point
	k          int
	agg        geom.Agg
	constraint geom.Rect
	radius     float64
}

// world drives one random monitoring scenario: it owns the ground-truth
// grid, the live object set and the installed query set, and generates one
// random update batch per cycle.
type world struct {
	rng     *rand.Rand
	oracle  *grid.Grid
	pos     map[model.ObjectID]geom.Point
	nextObj model.ObjectID
	dead    []model.ObjectID

	queries map[model.QueryID]*qdef
	nextQID model.QueryID
}

func newWorld(seed int64, gridSize, n int) *world {
	w := &world{
		rng:     rand.New(rand.NewSource(seed)),
		oracle:  grid.NewUnit(gridSize),
		pos:     make(map[model.ObjectID]geom.Point),
		queries: make(map[model.QueryID]*qdef),
	}
	for i := 0; i < n; i++ {
		id := w.nextObj
		w.nextObj++
		p := w.randPoint()
		w.pos[id] = p
		if err := w.oracle.Insert(id, p); err != nil {
			panic(err)
		}
	}
	return w
}

func (w *world) randPoint() geom.Point {
	return geom.Point{X: w.rng.Float64(), Y: w.rng.Float64()}
}

// step produces a random walk step from p, clamped to the unit square.
func (w *world) stepFrom(p geom.Point) geom.Point {
	clamp := func(v float64) float64 { return math.Min(1, math.Max(0, v)) }
	return geom.Point{
		X: clamp(p.X + (w.rng.Float64()-0.5)*0.2),
		Y: clamp(p.Y + (w.rng.Float64()-0.5)*0.2),
	}
}

func (w *world) randDef() *qdef {
	switch w.rng.Intn(4) {
	case 0:
		return &qdef{kind: qPoint, pts: []geom.Point{w.randPoint()}, k: 1 + w.rng.Intn(8)}
	case 1:
		c := w.randPoint()
		lo := geom.Point{X: math.Max(0, c.X-0.2), Y: math.Max(0, c.Y-0.2)}
		hi := geom.Point{X: math.Min(1, c.X+0.2), Y: math.Min(1, c.Y+0.2)}
		return &qdef{
			kind: qConstrained, pts: []geom.Point{c}, k: 1 + w.rng.Intn(6),
			constraint: geom.Rect{Lo: lo, Hi: hi},
		}
	case 2:
		m := 2 + w.rng.Intn(2)
		center := w.randPoint()
		pts := make([]geom.Point, m)
		for i := range pts {
			pts[i] = geom.Point{
				X: math.Min(1, math.Max(0, center.X+(w.rng.Float64()-0.5)*0.1)),
				Y: math.Min(1, math.Max(0, center.Y+(w.rng.Float64()-0.5)*0.1)),
			}
		}
		return &qdef{kind: qAgg, pts: pts, k: 1 + w.rng.Intn(6), agg: geom.Agg(w.rng.Intn(3))}
	default:
		return &qdef{kind: qRange, pts: []geom.Point{w.randPoint()}, radius: 0.03 + 0.12*w.rng.Float64()}
	}
}

// install registers a fresh random query on every monitor.
func (w *world) install(t *testing.T, monitors []monitor) {
	t.Helper()
	id := w.nextQID
	w.nextQID++
	def := w.randDef()
	w.queries[id] = def
	for _, m := range monitors {
		var err error
		switch def.kind {
		case qPoint:
			err = m.RegisterQuery(id, def.pts[0], def.k)
		case qConstrained:
			d := core.PointQuery(def.pts[0], def.k)
			d.Constraint = &def.constraint
			err = m.Register(id, d)
		case qAgg:
			err = m.Register(id, core.AggQuery(def.pts, def.k, def.agg))
		case qRange:
			err = m.RegisterRange(id, def.pts[0], def.radius)
		}
		if err != nil {
			t.Fatalf("%s: register q%d: %v", m.Name(), id, err)
		}
	}
}

// batch generates one random cycle: object moves (including occasional
// duplicate updates per object), churn (inserts and deletes), deliberate
// invalid updates, query moves and terminations.
func (w *world) batch() model.Batch {
	var b model.Batch
	live := make([]model.ObjectID, 0, len(w.pos))
	for id := range w.pos {
		live = append(live, id)
	}
	sort.Slice(live, func(i, j int) bool { return live[i] < live[j] })
	for _, id := range live {
		r := w.rng.Float64()
		switch {
		case r < 0.35: // move
			to := w.stepFrom(w.pos[id])
			b.Objects = append(b.Objects, model.MoveUpdate(id, w.pos[id], to))
			w.pos[id] = to
			if w.rng.Float64() < 0.05 { // second update for the same object
				to2 := w.stepFrom(to)
				b.Objects = append(b.Objects, model.MoveUpdate(id, to, to2))
				w.pos[id] = to2
			}
		case r < 0.39: // delete
			b.Objects = append(b.Objects, model.DeleteUpdate(id, w.pos[id]))
			delete(w.pos, id)
			w.dead = append(w.dead, id)
		}
	}
	for w.rng.Float64() < 0.5 { // inserts: fresh ids, sometimes a dead id reused
		var id model.ObjectID
		if len(w.dead) > 0 && w.rng.Float64() < 0.3 {
			id = w.dead[len(w.dead)-1]
			w.dead = w.dead[:len(w.dead)-1]
		} else {
			id = w.nextObj
			w.nextObj++
		}
		p := w.randPoint()
		b.Objects = append(b.Objects, model.InsertUpdate(id, p))
		w.pos[id] = p
	}
	if w.rng.Float64() < 0.3 { // invalid: move of an unknown object
		b.Objects = append(b.Objects, model.MoveUpdate(100000, geom.Point{}, w.randPoint()))
	}
	if w.rng.Float64() < 0.2 { // invalid: duplicate insert of a live object
		if len(live) > 0 {
			b.Objects = append(b.Objects, model.InsertUpdate(live[0], w.randPoint()))
		}
	}
	if w.rng.Float64() < 0.2 { // invalid: non-finite destination
		id := live[w.rng.Intn(len(live))]
		if _, ok := w.pos[id]; ok {
			b.Objects = append(b.Objects, model.MoveUpdate(id, w.pos[id], geom.Point{X: math.NaN(), Y: 0.5}))
		}
	}

	qids := make([]model.QueryID, 0, len(w.queries))
	for id := range w.queries {
		qids = append(qids, id)
	}
	sort.Slice(qids, func(i, j int) bool { return qids[i] < qids[j] })
	for _, id := range qids {
		def := w.queries[id]
		r := w.rng.Float64()
		switch {
		case r < 0.25: // move
			pts := make([]geom.Point, len(def.pts))
			for i := range pts {
				pts[i] = w.stepFrom(def.pts[i])
			}
			def.pts = pts
			b.Queries = append(b.Queries, model.QueryUpdate{ID: id, Kind: model.QueryMove, NewPoints: pts})
		case r < 0.32: // terminate
			delete(w.queries, id)
			b.Queries = append(b.Queries, model.QueryUpdate{ID: id, Kind: model.QueryTerminate})
		}
	}
	if w.rng.Float64() < 0.25 { // invalid: move of an unknown query
		b.Queries = append(b.Queries, model.QueryUpdate{
			ID: 9999, Kind: model.QueryMove, NewPoints: []geom.Point{w.randPoint()},
		})
	}
	if w.rng.Float64() < 0.15 { // invalid: terminate an unknown query
		b.Queries = append(b.Queries, model.QueryUpdate{ID: 9998, Kind: model.QueryTerminate})
	}
	return b
}

// applyToOracle mirrors the batch's valid object updates into the
// ground-truth grid, dropping exactly what the engines drop.
func (w *world) applyToOracle(b model.Batch) {
	finite := func(p geom.Point) bool {
		return !math.IsNaN(p.X) && !math.IsNaN(p.Y) && !math.IsInf(p.X, 0) && !math.IsInf(p.Y, 0)
	}
	for _, u := range b.Objects {
		switch u.Kind {
		case model.Move:
			if finite(u.New) {
				_, _, _ = w.oracle.Move(u.ID, u.New)
			}
		case model.Insert:
			if finite(u.New) {
				_ = w.oracle.Insert(u.ID, u.New)
			}
		case model.Delete:
			_ = w.oracle.Delete(u.ID)
		}
	}
}

// expect computes the ground-truth result of a query from the oracle grid.
func (w *world) expect(def *qdef) []model.Neighbor {
	switch def.kind {
	case qPoint:
		return bruteforce.TopK(w.oracle, def.pts[0], def.k)
	case qConstrained:
		return bruteforce.TopKConstrained(w.oracle, def.pts[0], def.k, def.constraint)
	case qAgg:
		return bruteforce.TopKAgg(w.oracle, def.agg, def.pts, def.k)
	default: // qRange
		var out []model.Neighbor
		w.oracle.ForEachObject(func(id model.ObjectID, p geom.Point) {
			if d := geom.Dist(p, def.pts[0]); d <= def.radius {
				out = append(out, model.Neighbor{ID: id, Dist: d})
			}
		})
		sort.Slice(out, func(i, j int) bool { return out[i].Less(out[j]) })
		return out
	}
}

// monitor is the method set the property test drives; both core.Engine and
// shard.Monitor satisfy it.
type monitor interface {
	Name() string
	Bootstrap(map[model.ObjectID]geom.Point)
	RegisterQuery(model.QueryID, geom.Point, int) error
	Register(model.QueryID, core.Def) error
	RegisterRange(model.QueryID, geom.Point, float64) error
	ProcessBatch(model.Batch)
	Result(model.QueryID) []model.Neighbor
	RangeResult(model.QueryID) []model.Neighbor
	ChangedQueries() []model.QueryID
	Stats() model.Stats
	InvalidUpdates() int64
	EnableDiffs(bool)
	TakeDiffs() []model.ResultDiff
}

func (w *world) result(m monitor, id model.QueryID, def *qdef) []model.Neighbor {
	if def.kind == qRange {
		return m.RangeResult(id)
	}
	return m.Result(id)
}

// TestShardEquivalenceRandomWorkload is the sharding correctness property:
// for identical random streams — object moves, churn, invalid updates,
// query moves and terminations — sharded monitors at every shard count
// return exactly the per-query results, change notifications, result-diff
// streams, summed work counters and invalid-update counts of a single
// engine, and match the brute-force oracle, every cycle.
func TestShardEquivalenceRandomWorkload(t *testing.T) {
	const (
		gridSize = 16
		objects  = 250
		cycles   = 25
		initialQ = 14
	)
	for _, seed := range []int64{1, 7, 42} {
		w := newWorld(seed, gridSize, objects)

		single := core.NewUnitEngine(gridSize, core.Options{})
		monitors := []monitor{single}
		sharded := make([]*shard.Monitor, 0, len(shardCounts))
		for _, n := range shardCounts {
			s := shard.NewUnit(n, gridSize, core.Options{ScanWorkers: workersFor[n]})
			defer s.Close()
			sharded = append(sharded, s)
			monitors = append(monitors, s)
		}

		boot := make(map[model.ObjectID]geom.Point, len(w.pos))
		for id, p := range w.pos {
			boot[id] = p
		}
		for _, m := range monitors {
			m.Bootstrap(boot)
			m.EnableDiffs(true)
		}
		for i := 0; i < initialQ; i++ {
			w.install(t, monitors)
		}

		for cycle := 0; cycle < cycles; cycle++ {
			b := w.batch()
			w.applyToOracle(b)
			for _, m := range monitors {
				m.ProcessBatch(b)
			}

			for id, def := range w.queries {
				want := w.expect(def)
				ref := w.result(single, id, def)
				if !neighborsEqual(ref, want) {
					t.Fatalf("seed %d cycle %d q%d: single engine diverged from oracle\ngot  %v\nwant %v",
						seed, cycle, id, ref, want)
				}
				for _, s := range sharded {
					got := w.result(s, id, def)
					if !neighborsEqual(got, ref) {
						t.Fatalf("seed %d cycle %d q%d: %s diverged from single engine\ngot  %v\nwant %v",
							seed, cycle, id, s.Name(), got, ref)
					}
				}
			}

			refChanged := single.ChangedQueries()
			refDiffs := single.TakeDiffs()
			refStats := single.Stats()
			refInvalid := single.InvalidUpdates()
			for _, s := range sharded {
				if got := s.ChangedQueries(); !reflect.DeepEqual(got, refChanged) {
					t.Fatalf("seed %d cycle %d: %s changed-query set\ngot  %v\nwant %v",
						seed, cycle, s.Name(), got, refChanged)
				}
				if got := s.TakeDiffs(); !reflect.DeepEqual(got, refDiffs) {
					t.Fatalf("seed %d cycle %d: %s diff stream\ngot  %v\nwant %v",
						seed, cycle, s.Name(), got, refDiffs)
				}
				if got := s.Stats(); got != refStats {
					t.Fatalf("seed %d cycle %d: %s summed stats\ngot  %+v\nwant %+v",
						seed, cycle, s.Name(), got, refStats)
				}
				if got := s.InvalidUpdates(); got != refInvalid {
					t.Fatalf("seed %d cycle %d: %s invalid updates %d, want %d",
						seed, cycle, s.Name(), got, refInvalid)
				}
				// The grid is shared, so the Section 4.1 footprint must
				// EQUAL the single engine's — grid term counted once,
				// query book-keeping partitioned without duplication.
				if got := s.MemoryFootprint(); got != single.MemoryFootprint() {
					t.Fatalf("seed %d cycle %d: %s memory footprint %d, single engine %d",
						seed, cycle, s.Name(), got, single.MemoryFootprint())
				}
			}

			for w.rng.Float64() < 0.4 { // query churn: fresh installations
				w.install(t, monitors)
			}
		}
	}
}

func neighborsEqual(a, b []model.Neighbor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}

// TestShardRoutingDeterministic pins the ownership function: routing the
// same id twice must reach the same shard (results readable after a tick).
func TestShardRoutingDeterministic(t *testing.T) {
	m := shard.NewUnit(4, 8, core.Options{})
	objs := map[model.ObjectID]geom.Point{}
	for i := 0; i < 50; i++ {
		objs[model.ObjectID(i)] = geom.Point{X: float64(i) / 50, Y: float64(i%7) / 7}
	}
	m.Bootstrap(objs)
	for q := model.QueryID(0); q < 32; q++ {
		if err := m.RegisterQuery(q, geom.Point{X: 0.5, Y: 0.5}, 3); err != nil {
			t.Fatal(err)
		}
		if got := m.Result(q); len(got) != 3 {
			t.Fatalf("q%d: result %v", q, got)
		}
	}
	m.ProcessBatch(model.Batch{Objects: []model.Update{
		model.MoveUpdate(0, objs[0], geom.Point{X: 0.5, Y: 0.5}),
	}})
	for q := model.QueryID(0); q < 32; q++ {
		if got := m.Result(q); len(got) != 3 || got[0].ID != 0 {
			t.Fatalf("q%d after move: result %v", q, got)
		}
	}
	for q := model.QueryID(0); q < 32; q++ {
		m.RemoveQuery(q)
		if got := m.Result(q); got != nil {
			t.Fatalf("q%d after removal: result %v", q, got)
		}
	}
}

// TestShardInvalidUpdateAccounting checks that replicated object-stream
// validation is reported once, not once per shard, and that query-stream
// invalids are summed across shards.
func TestShardInvalidUpdateAccounting(t *testing.T) {
	m := shard.NewUnit(4, 8, core.Options{})
	m.Bootstrap(map[model.ObjectID]geom.Point{1: {X: 0.5, Y: 0.5}})
	m.ProcessBatch(model.Batch{
		Objects: []model.Update{model.MoveUpdate(99, geom.Point{}, geom.Point{X: 0.1, Y: 0.1})},
	})
	if got := m.InvalidUpdates(); got != 1 {
		t.Fatalf("invalid object update counted %d times, want 1", got)
	}
	m.ProcessBatch(model.Batch{Queries: []model.QueryUpdate{
		{ID: 7, Kind: model.QueryTerminate},
		{ID: 8, Kind: model.QueryTerminate},
	}})
	if got := m.InvalidUpdates(); got != 3 {
		t.Fatalf("invalid updates = %d, want 3", got)
	}
}

// TestShardChangedQueriesSorted checks the fan-in ordering contract.
func TestShardChangedQueriesSorted(t *testing.T) {
	m := shard.NewUnit(4, 8, core.Options{})
	objs := map[model.ObjectID]geom.Point{}
	for i := 0; i < 30; i++ {
		objs[model.ObjectID(i)] = geom.Point{X: float64(i) / 30, Y: 0.5}
	}
	m.Bootstrap(objs)
	for q := model.QueryID(0); q < 16; q++ {
		if err := m.RegisterQuery(q, geom.Point{X: float64(q) / 16, Y: 0.5}, 2); err != nil {
			t.Fatal(err)
		}
	}
	changed := m.ChangedQueries()
	if len(changed) != 16 {
		t.Fatalf("changed after registration = %v", changed)
	}
	if !sort.SliceIsSorted(changed, func(i, j int) bool { return changed[i] < changed[j] }) {
		t.Fatalf("changed set not sorted: %v", changed)
	}
	m.ProcessBatch(model.Batch{})
	if got := m.ChangedQueries(); got != nil {
		t.Fatalf("changed after empty cycle = %v", got)
	}
}

// TestShardSingleShardPassThrough checks the n=1 fast path.
func TestShardSingleShardPassThrough(t *testing.T) {
	m := shard.NewUnit(1, 8, core.Options{})
	if m.Shards() != 1 {
		t.Fatalf("Shards() = %d", m.Shards())
	}
	m.Bootstrap(map[model.ObjectID]geom.Point{1: {X: 0.2, Y: 0.2}, 2: {X: 0.8, Y: 0.8}})
	if err := m.RegisterQuery(5, geom.Point{X: 0.25, Y: 0.25}, 1); err != nil {
		t.Fatal(err)
	}
	if got := m.Result(5); len(got) != 1 || got[0].ID != 1 {
		t.Fatalf("result = %v", got)
	}
	if m.ObjectCount() != 2 {
		t.Fatalf("ObjectCount = %d", m.ObjectCount())
	}
	if p, ok := m.ObjectPosition(2); !ok || p != (geom.Point{X: 0.8, Y: 0.8}) {
		t.Fatalf("ObjectPosition(2) = %v %v", p, ok)
	}
	if m.MemoryFootprint() <= 0 {
		t.Fatal("MemoryFootprint not positive")
	}
	if m.Name() != "CPM-shard1" {
		t.Fatalf("Name = %q", m.Name())
	}
}

// TestShardClampsCount checks that non-positive shard counts are clamped.
func TestShardClampsCount(t *testing.T) {
	if got := shard.NewUnit(0, 8, core.Options{}).Shards(); got != 1 {
		t.Fatalf("Shards() = %d, want 1", got)
	}
	if got := shard.NewUnit(-3, 8, core.Options{}).Shards(); got != 1 {
		t.Fatalf("Shards() = %d, want 1", got)
	}
}
