package cluster

// DisableGenCheck turns off the re-sync generation staleness check — the
// chaos suite's negative control: with the check gone, a re-sync built
// from a snapshot that missed operations is accepted anyway, and the
// suite must flag the resulting divergence. Test-only.
func (c *Coordinator) DisableGenCheck() { c.skipGenCheck = true }
