package cluster

import (
	"fmt"
	"time"

	"cpm/internal/model"
	"cpm/internal/tracing"
)

// SetOpSpan hands the hosting server's current operation span to the
// coordinator (internal/server calls it under the monitor mutex, around
// each operation). While set, the fan-out stitches per-worker child spans
// into the span's trace and forwards its context to the workers, so one
// trace covers client → coordinator → every worker. Nil detaches.
func (c *Coordinator) SetOpSpan(sp *tracing.Span) { c.opSpan = sp }

// LastPhases reports the fleet's critical-path tick-phase breakdown: the
// per-field maximum of what each synced worker reported with its last
// Tick answer (workers run concurrently, so the slowest phase bounds the
// cycle). Workers that missed the tick — or predate the trace extension —
// contribute zeros.
func (c *Coordinator) LastPhases() model.PhaseNanos { return c.lastPhases }

// stampTrace forwards an operation's trace context to one worker
// immediately before a wire call, so the worker's server span joins the
// coordinator's trace. It runs inside the fan-out closure — an ErrUnsent
// retry re-runs the closure and therefore re-stamps — and degrades
// silently against workers that did not negotiate the trace extension.
//
// It takes the context by value, captured on the coordinator loop while
// the op span is live: a timed-out straggler's closure can still be
// running after the span has finished and been recycled, so the closure
// must never touch the *Span itself.
func stampTrace(ctx tracing.Context, w *worker) {
	if ctx.TraceID != 0 {
		w.cl.SetTrace(ctx.TraceID, ctx.SpanID)
	}
}

// workerPhaseSpans lays one worker's reported tick-phase breakdown under
// the op span as worker<N>/<phase> children, sequentially from the
// request's send time — the coordinator's local view of where that worker
// spent the tick. The diff phase overlaps the others on the worker (it is
// charged from inside them), so its span is anchored at the start rather
// than appended to the sequence.
func workerPhaseSpans(sp *tracing.Span, idx int, start time.Time, ph model.PhaseNanos) {
	if sp == nil {
		return
	}
	at := start
	lay := func(name string, ns int64) {
		if ns <= 0 {
			return
		}
		sp.ChildAt(fmt.Sprintf("worker%d/%s", idx, name), at, time.Duration(ns))
		at = at.Add(time.Duration(ns))
	}
	lay("relocate", ph.Relocate)
	lay("reeval", ph.Reeval)
	lay("queryupd", ph.QueryUpd)
	if ph.Diff > 0 {
		sp.ChildAt(fmt.Sprintf("worker%d/diff", idx), start, time.Duration(ph.Diff))
	}
}
