package cluster_test

import (
	"fmt"
	"net"
	"reflect"
	"sync"
	"testing"
	"time"

	"cpm"
	"cpm/client"
	"cpm/internal/bruteforce"
	"cpm/internal/cluster"
	"cpm/internal/geom"
	"cpm/internal/model"
	"cpm/internal/server"
	"cpm/workload"
)

// workerProc is one worker server under test control: it can be killed
// and restarted on the same address, like a real process.
type workerProc struct {
	addr string
	srv  *server.Server
	mon  *cpm.Monitor
	dead sync.Once
}

// startWorker serves a fresh monitor on addr ("127.0.0.1:0" for a new
// port, an explicit address to restart a killed worker on its old one).
func startWorker(t *testing.T, addr string) *workerProc {
	t.Helper()
	mon := cpm.NewMonitor(cpm.Options{GridSize: 16})
	srv := server.New(mon, server.Options{})
	ln, err := net.Listen("tcp", addr)
	if err != nil {
		t.Fatalf("listen %s: %v", addr, err)
	}
	go srv.Serve(ln)
	p := &workerProc{addr: ln.Addr().String(), srv: srv, mon: mon}
	t.Cleanup(p.kill)
	return p
}

func (p *workerProc) kill() {
	p.dead.Do(func() {
		p.srv.Close()
		p.mon.Close()
	})
}

// startCluster brings up n workers and a coordinator over them, with
// timeouts short enough that failure paths run in test time.
func startCluster(t *testing.T, n int, opTimeout time.Duration) (*cluster.Coordinator, []*workerProc) {
	t.Helper()
	procs := make([]*workerProc, n)
	addrs := make([]string, n)
	for i := range procs {
		procs[i] = startWorker(t, "127.0.0.1:0")
		addrs[i] = procs[i].addr
	}
	coord, err := cluster.New(cluster.Options{
		Workers:   addrs,
		OpTimeout: opTimeout,
		Client: client.Options{
			ReconnectWait: 200 * time.Millisecond,
			MaxBackoff:    100 * time.Millisecond,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	return coord, procs
}

func testWorkload(t *testing.T) *workload.Workload {
	t.Helper()
	w, err := workload.New(
		workload.CityOptions{Width: 16, Height: 16, Seed: 77},
		workload.Params{
			N: 400, NumQueries: 10,
			ObjectSpeed: workload.Medium, QuerySpeed: workload.Medium,
			ObjectAgility: 0.5, QueryAgility: 0.4,
			Seed: 11,
		},
	)
	if err != nil {
		t.Fatal(err)
	}
	return w
}

// owner mirrors the coordinator's (and internal/shard's) partitioning, so
// the tests can pick a victim worker that owns known queries.
func owner(id model.QueryID, n int) int {
	return int((uint32(id) * 0x9E3779B1) % uint32(n))
}

// oracle tracks raw positions and query points for brute-force checks.
type oracle struct {
	objs map[model.ObjectID]geom.Point
	qpts map[model.QueryID]geom.Point
}

func newOracle(objs map[model.ObjectID]geom.Point) *oracle {
	o := &oracle{objs: make(map[model.ObjectID]geom.Point, len(objs)), qpts: make(map[model.QueryID]geom.Point)}
	for id, p := range objs {
		o.objs[id] = p
	}
	return o
}

func (o *oracle) apply(b model.Batch) {
	for _, u := range b.Objects {
		switch u.Kind {
		case model.Move, model.Insert:
			o.objs[u.ID] = u.New
		case model.Delete:
			delete(o.objs, u.ID)
		}
	}
	for _, qu := range b.Queries {
		if qu.Kind == model.QueryMove && len(qu.NewPoints) == 1 {
			if _, ok := o.qpts[qu.ID]; ok {
				o.qpts[qu.ID] = qu.NewPoints[0]
			}
		}
	}
}

func (o *oracle) topK(q geom.Point, k int) []model.Neighbor {
	sel := bruteforce.NewSelector(k)
	for id, p := range o.objs {
		sel.Offer(id, geom.Dist(p, q))
	}
	return sel.Sorted()
}

// TestClusterEquivalence is the acceptance test of the cluster layer: a
// coordinator over N loopback workers, fed a workload, must produce
// byte-for-byte the result sets and ordered diff stream of one in-process
// monitor — including across a worker that is killed and restarted, where
// the loss must surface as an explicit gap followed by re-sync, never as
// silent divergence.
func TestClusterEquivalence(t *testing.T) {
	for _, n := range []int{2, 4} {
		t.Run(fmt.Sprintf("workers=%d", n), func(t *testing.T) { runEquivalence(t, n) })
	}
}

func runEquivalence(t *testing.T, nWorkers int) {
	const k, phase1, phase3 = 4, 6, 5

	coord, procs := startCluster(t, nWorkers, 5*time.Second)
	single := cpm.NewMonitor(cpm.Options{GridSize: 16})
	defer single.Close()

	// Pull both diff streams through the same collection path the sync
	// serving mode uses, so the comparison is exact and ordered.
	single.KeepDiffs(true)
	coord.KeepDiffs(true)

	compareDiffs := func(stage string) ([]model.ResultDiff, []model.ResultDiff) {
		t.Helper()
		want, got := single.TakeDiffs(), coord.TakeDiffs()
		if !reflect.DeepEqual(want, got) {
			t.Fatalf("%s: diff streams diverge:\nsingle: %+v\ncluster: %+v", stage, want, got)
		}
		return want, got
	}

	w := testWorkload(t)
	objs := w.InitialObjects()
	oracle := newOracle(objs)
	single.Bootstrap(objs)
	coord.Bootstrap(objs)
	compareDiffs("bootstrap")

	sub := coord.SubscribeWith(cpm.SubscribeOptions{Buffer: 4096})
	defer sub.Close()

	for i, q := range w.InitialQueries() {
		id := model.QueryID(i)
		oracle.qpts[id] = q
		if err := single.RegisterQuery(id, q, k); err != nil {
			t.Fatal(err)
		}
		if err := coord.RegisterQuery(id, q, k); err != nil {
			t.Fatal(err)
		}
		compareDiffs(fmt.Sprintf("register %d", id))
	}

	checkResults := func(stage string) {
		t.Helper()
		for id, q := range oracle.qpts {
			want := single.Result(id)
			got := coord.Result(id)
			if !reflect.DeepEqual(want, got) {
				t.Fatalf("%s: query %d: cluster result %v, single %v", stage, id, got, want)
			}
			brute := oracle.topK(q, k)
			if !reflect.DeepEqual(got, brute) {
				t.Fatalf("%s: query %d: cluster result %v, brute force %v", stage, id, got, brute)
			}
		}
	}
	checkResults("after registration")

	// Phase 1: healthy cluster, exact stream equality every cycle.
	for cycle := 0; cycle < phase1; cycle++ {
		b := w.Advance()
		oracle.apply(b)
		single.Tick(b)
		coord.Tick(b)
		compareDiffs(fmt.Sprintf("phase1 cycle %d", cycle))
		checkResults(fmt.Sprintf("phase1 cycle %d", cycle))
	}

	// Phase 2: kill the owner of query 0 and keep ticking. The merged
	// stream must carry exactly the surviving workers' diffs, and the
	// victim's queries must gap — visibly — rather than silently stall.
	victim := owner(0, nWorkers)
	procs[victim].kill()
	for cycle := 0; cycle < 2; cycle++ {
		b := w.Advance()
		oracle.apply(b)
		single.Tick(b)
		coord.Tick(b)
		want, got := single.TakeDiffs(), coord.TakeDiffs()
		var surviving []model.ResultDiff
		for _, d := range want {
			if owner(d.Query, nWorkers) != victim {
				surviving = append(surviving, d)
			}
		}
		if !reflect.DeepEqual(surviving, got) {
			t.Fatalf("outage cycle %d: surviving-worker diffs diverge:\nwant %+v\ngot %+v", cycle, surviving, got)
		}
	}
	if coord.SyncedWorkers() != nWorkers-1 {
		t.Fatalf("after kill: %d synced workers, want %d", coord.SyncedWorkers(), nWorkers-1)
	}
	if sub.Dropped() == 0 {
		t.Fatal("worker loss produced no subscriber gap")
	}

	// Phase 2b: restart the worker on its old address and tick until the
	// background re-sync is accepted.
	procs[victim] = startWorker(t, procs[victim].addr)
	deadline := time.Now().Add(15 * time.Second)
	for coord.SyncedWorkers() < nWorkers {
		if time.Now().After(deadline) {
			t.Fatalf("worker %d did not re-sync in time", victim)
		}
		b := w.Advance()
		oracle.apply(b)
		single.Tick(b)
		coord.Tick(b)
		single.TakeDiffs()
		coord.TakeDiffs()
		time.Sleep(20 * time.Millisecond)
	}
	// Re-sync reconciliation must have restored every result exactly.
	checkResults("after re-sync")

	// Phase 3: exact stream equality again, across the healed cluster.
	for cycle := 0; cycle < phase3; cycle++ {
		b := w.Advance()
		oracle.apply(b)
		single.Tick(b)
		coord.Tick(b)
		compareDiffs(fmt.Sprintf("phase3 cycle %d", cycle))
		checkResults(fmt.Sprintf("phase3 cycle %d", cycle))
	}

	// Removal propagates and terminates the stream for that query.
	single.RemoveQuery(3)
	coord.RemoveQuery(3)
	delete(oracle.qpts, 3)
	compareDiffs("remove")
	checkResults("after remove")
}
