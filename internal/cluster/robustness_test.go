package cluster_test

import (
	"testing"
	"time"

	"cpm"
	"cpm/internal/cluster"
	"cpm/internal/model"
	"cpm/internal/server"
	"cpm/workload"
)

// setupSmallCluster boots a 2-worker cluster with a small population and
// a handful of queries, so every worker owns some.
func setupSmallCluster(t *testing.T, opTimeout time.Duration) (*cluster.Coordinator, []*workerProc, *workload.Workload) {
	t.Helper()
	c, p := startCluster(t, 2, opTimeout)
	wl := testWorkload(t)
	c.Bootstrap(wl.InitialObjects())
	for i, q := range wl.InitialQueries() {
		if err := c.RegisterQuery(model.QueryID(i), q, 4); err != nil {
			t.Fatal(err)
		}
	}
	return c, p, wl
}

// wedge grabs a worker's monitor mutex so its request handlers stall —
// the "slow worker" failure mode (a long cycle, a stuck in-process
// driver) as opposed to a dead one.
func wedge(p *workerProc) (release func()) {
	ch := make(chan struct{})
	held := make(chan struct{})
	go p.srv.Locked(func(m server.Backend) {
		close(held)
		<-ch
	})
	<-held
	return func() { close(ch) }
}

// TestSlowWorkerBoundedTick: a wedged worker must cost one tick at most
// OpTimeout — the tick barrier converts the stall into a desync plus
// subscriber gap instead of inheriting it.
func TestSlowWorkerBoundedTick(t *testing.T) {
	coord, procs, wl := setupSmallCluster(t, 150*time.Millisecond)
	sub := coord.SubscribeWith(cpm.SubscribeOptions{Buffer: 1024})
	defer sub.Close()
	coord.Tick(wl.Advance()) // healthy baseline

	release := wedge(procs[0])

	start := time.Now()
	coord.Tick(wl.Advance())
	elapsed := time.Since(start)
	if elapsed > 2*time.Second {
		t.Fatalf("tick with wedged worker took %v, want ~OpTimeout (150ms)", elapsed)
	}
	if got := coord.SyncedWorkers(); got != 1 {
		t.Fatalf("wedged worker still synced: %d synced, want 1", got)
	}
	if sub.Dropped() == 0 {
		t.Fatal("wedged worker produced no subscriber gap")
	}

	// Releasing the wedge lets the abandoned call drain and the
	// background re-sync repair the worker.
	release()
	deadline := time.Now().Add(10 * time.Second)
	for coord.SyncedWorkers() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("wedged worker never re-synced after release")
		}
		coord.Tick(wl.Advance())
		time.Sleep(20 * time.Millisecond)
	}
}

// TestStallWithoutTimeout is the negative control for the tick barrier:
// with the deadline disabled (OpTimeout < 0) a wedged worker must stall
// the tick — proving the timeout, not luck, is what bounds it above.
func TestStallWithoutTimeout(t *testing.T) {
	coord, procs, wl := setupSmallCluster(t, -1)
	release := wedge(procs[0])

	done := make(chan struct{})
	go func() {
		coord.Tick(wl.Advance())
		close(done)
	}()
	select {
	case <-done:
		t.Fatal("tick completed despite wedged worker and no timeout")
	case <-time.After(400 * time.Millisecond):
		// Stalled, as an unbounded barrier must.
	}
	release()
	select {
	case <-done:
	case <-time.After(5 * time.Second):
		t.Fatal("tick did not complete after releasing the wedge")
	}
	if got := coord.SyncedWorkers(); got != 2 {
		t.Fatalf("worker desynced without timeout: %d synced, want 2", got)
	}
}

// TestWorkerKilledMidTick: a worker that dies while holding a tick's
// request must fail that tick over to the gap path promptly — the
// connection teardown, not the full OpTimeout, bounds the wait.
func TestWorkerKilledMidTick(t *testing.T) {
	coord, procs, wl := setupSmallCluster(t, 10*time.Second)
	release := wedge(procs[0])
	// Kill the worker while its tick request is still wedged in the
	// handler: Close drops the connections first (the client sees the
	// disconnect at once) and only then waits for the handler, so the
	// kill goroutine finishes after the wedge lifts.
	killed := make(chan struct{})
	go func() {
		time.Sleep(100 * time.Millisecond)
		procs[0].kill()
		close(killed)
	}()

	start := time.Now()
	coord.Tick(wl.Advance())
	if elapsed := time.Since(start); elapsed > 5*time.Second {
		t.Fatalf("tick with killed worker took %v, want well under OpTimeout (10s)", elapsed)
	}
	if got := coord.SyncedWorkers(); got != 1 {
		t.Fatalf("killed worker still synced: %d synced, want 1", got)
	}
	release()
	<-killed
}
