package cluster_test

import (
	"fmt"
	"math/rand"
	"reflect"
	"testing"
	"time"

	"cpm"
	"cpm/client"
	"cpm/internal/chaos"
	"cpm/internal/cluster"
	"cpm/internal/geom"
	"cpm/internal/model"
)

// chaosCluster is a coordinator whose every worker link runs through a
// chaos proxy: one fault domain per worker, individually scriptable.
type chaosCluster struct {
	coord   *cluster.Coordinator
	procs   []*workerProc
	links   []*chaos.Link
	single  *cpm.Monitor
	queries map[model.QueryID]geom2
	n       int
}

// geom2 avoids importing geom twice under a different name in this file.
type geom2 = struct{ X, Y float64 }

// startChaosCluster boots n workers, each behind a seeded chaos proxy,
// and a coordinator dialing the proxies — plus the single-monitor oracle
// fed the identical operation stream.
func startChaosCluster(t *testing.T, n int, seed int64) *chaosCluster {
	t.Helper()
	cc := &chaosCluster{n: n, queries: make(map[model.QueryID]geom2)}
	addrs := make([]string, n)
	for i := 0; i < n; i++ {
		p := startWorker(t, "127.0.0.1:0")
		link := chaos.NewLink(seed + int64(i))
		proxy, err := chaos.NewProxy("127.0.0.1:0", p.addr, link)
		if err != nil {
			t.Fatal(err)
		}
		t.Cleanup(func() { proxy.Close() })
		cc.procs = append(cc.procs, p)
		cc.links = append(cc.links, link)
		addrs[i] = proxy.Addr()
	}
	coord, err := cluster.New(cluster.Options{
		Workers:   addrs,
		OpTimeout: 250 * time.Millisecond,
		Logf:      func(f string, a ...any) { fmt.Printf(f+"\n", a...) },
		Client: client.Options{
			ReconnectWait: 300 * time.Millisecond,
			Backoff:       5 * time.Millisecond,
			MaxBackoff:    50 * time.Millisecond,
			DialTimeout:   time.Second,
			FrameTimeout:  time.Second,
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(coord.Close)
	cc.coord = coord
	cc.single = cpm.NewMonitor(cpm.Options{GridSize: 16})
	t.Cleanup(cc.single.Close)
	return cc
}

// seedScene bootstraps the population and queries into the coordinator
// and the oracle.
func (cc *chaosCluster) seedScene(t *testing.T, nObjs, nQueries int) {
	t.Helper()
	objs, queries := denseScene(nObjs, nQueries)
	cc.coord.Bootstrap(objs)
	cc.single.Bootstrap(objs)
	for id, q := range queries {
		cc.queries[id] = geom2{q.X, q.Y}
		if err := cc.coord.RegisterQuery(id, q, 4); err != nil {
			t.Fatal(err)
		}
		if err := cc.single.RegisterQuery(id, q, 4); err != nil {
			t.Fatal(err)
		}
	}
}

// rotBatch moves a rotating window of span objects to round-dependent
// positions: deterministic, and successive rounds touch different ids.
func rotBatch(round, nObjs, span int) model.Batch {
	ids := make([]model.ObjectID, span)
	for i := range ids {
		ids[i] = model.ObjectID((round*span + i) % nObjs)
	}
	return nudge(round, ids...)
}

// shiftAll teleports every object to a fresh lattice offset no other
// batch generator uses, so every neighbor distance — and therefore every
// query's result — is guaranteed to change in this one tick.
func shiftAll(nObjs, pass int) model.Batch {
	var b model.Batch
	for i := 0; i < nObjs; i++ {
		b.Objects = append(b.Objects, model.Update{
			ID:   model.ObjectID(i),
			Kind: model.Move,
			New: geom.Point{
				X: (float64(i%12) + 0.45 + 0.001*float64(pass)) / 12,
				Y: (float64(i/12) + 0.55 + 0.001*float64(pass)) / 12,
			},
		})
	}
	return b
}

// tick drives one cycle through both the cluster and the oracle.
func (cc *chaosCluster) tick(b model.Batch) {
	cc.coord.Tick(b)
	cc.single.Tick(b)
}

// verify is the suite's core invariant: a query whose owner the
// coordinator believes is synced must have exactly the single-monitor
// result — any divergence outside an explicit desync window is silent
// corruption. Returned (not fataled) so the negative control can assert
// the harness detects a seeded bug.
func (cc *chaosCluster) verify(stage string) error {
	for id := range cc.queries {
		if !cc.coord.WorkerSynced(owner(id, cc.n)) {
			continue // gap-bracketed: staleness is flagged, not silent
		}
		got, want := cc.coord.Result(id), cc.single.Result(id)
		if !reflect.DeepEqual(got, want) {
			return fmt.Errorf("%s: query %d (owner synced): cluster %v, single %v", stage, id, got, want)
		}
	}
	return nil
}

// reconverge clears every fault and ticks until the whole fleet holds
// exact state again and every result matches the oracle.
func (cc *chaosCluster) reconverge(t *testing.T) {
	t.Helper()
	for _, l := range cc.links {
		l.Clear()
	}
	deadline := time.Now().Add(30 * time.Second)
	round := 10_000
	for {
		cc.tick(rotBatch(round, 120, 4))
		round++
		if cc.coord.SyncedWorkers() == cc.n {
			if err := cc.verify("post-heal"); err == nil {
				return
			} else if time.Now().After(deadline) {
				t.Fatalf("cluster synced but diverged: %v", err)
			}
		}
		if time.Now().After(deadline) {
			t.Fatalf("cluster never reconverged: %d/%d synced", cc.coord.SyncedWorkers(), cc.n)
		}
		time.Sleep(20 * time.Millisecond)
	}
}

// chaosFaults is the fault palette the suite cycles through — the four
// classes the acceptance bar names: partition, reset, corruption, stall.
var chaosFaults = []chaos.Fault{
	{Class: chaos.Partition},
	{Class: chaos.Reset},
	{Class: chaos.Corrupt},
	{Class: chaos.SlowLoris, Chunk: 3, Stall: 40 * time.Millisecond},
}

// TestChaosFaultSchedule is the chaos property suite: replayable
// randomized fault schedules (seeded victim choice, full class coverage
// per run) against a 3-worker cluster, asserting after every tick that
// the cluster is never silently wrong (verify) and never wedged (tick
// wall time bounded), and that after the faults clear the fleet
// reconverges to exact oracle state with every loss bracketed by
// explicit gap accounting.
func TestChaosFaultSchedule(t *testing.T) {
	for _, seed := range []int64{1, 2, 3} {
		t.Run(fmt.Sprintf("seed=%d", seed), func(t *testing.T) {
			runChaosSchedule(t, seed)
		})
	}
}

func runChaosSchedule(t *testing.T, seed int64) {
	const nObjs, nQueries, ticks = 120, 8, 24
	cc := startChaosCluster(t, 3, seed)
	cc.seedScene(t, nObjs, nQueries)
	sub := cc.coord.SubscribeWith(cpm.SubscribeOptions{Buffer: 8192})
	defer sub.Close()

	// The schedule: four windows, one per fault class (rotated by seed so
	// every class meets every position across the suite), each against an
	// rng-chosen victim for two ticks.
	rng := rand.New(rand.NewSource(seed))
	type window struct {
		start, end int
		victim     int
		fault      chaos.Fault
	}
	var plan []window
	for i := 0; i < len(chaosFaults); i++ {
		start := 3 + i*5
		plan = append(plan, window{
			start:  start,
			end:    start + 2,
			victim: rng.Intn(cc.n),
			fault:  chaosFaults[(i+int(seed))%len(chaosFaults)],
		})
	}

	for tk := 0; tk < ticks; tk++ {
		for _, w := range plan {
			if tk == w.start {
				t.Logf("tick %d: worker %d gets %s", tk, w.victim, w.fault.Class)
				cc.links[w.victim].Set(w.fault)
			}
			if tk == w.end {
				cc.links[w.victim].Clear()
			}
		}
		start := time.Now()
		cc.tick(rotBatch(tk, nObjs, 10))
		if d := time.Since(start); d > 5*time.Second {
			t.Fatalf("tick %d took %v — the cluster wedged", tk, d)
		}
		if err := cc.verify(fmt.Sprintf("tick %d", tk)); err != nil {
			t.Fatal(err)
		}
	}

	cc.reconverge(t)

	// Gap accounting: the schedule certainly desynced workers (partition
	// and stall windows outlast the op deadline); every one of those
	// losses must have surfaced as explicit subscriber gaps.
	desyncs := metric(t, cc.coord, "cpm_coord_worker_desyncs_total")
	if desyncs == 0 {
		t.Fatal("fault schedule produced no desyncs — the faults never bit")
	}
	if sub.Dropped() == 0 {
		t.Fatal("workers desynced but subscribers saw no gap — silent loss")
	}

	// The subscriber's folded view must agree with the final results. A
	// gap invalidates subscriber state until the next diff per query, so
	// first teleport every object — forcing a fresh post-gap diff for
	// every query — then fold: the last event per query must equal the
	// current result.
	cc.tick(shiftAll(nObjs, 1))
	if err := cc.verify("final shift"); err != nil {
		t.Fatal(err)
	}
	// Delivery is a pump goroutine, so "drained" means a stretch of
	// silence, not a momentarily empty channel.
	last := make(map[model.QueryID][]model.Neighbor)
drain:
	for {
		select {
		case ev := <-sub.Events():
			if ev.Kind == model.DiffRemove {
				delete(last, ev.Query)
			} else {
				last[ev.Query] = ev.Result
			}
		case <-time.After(300 * time.Millisecond):
			break drain
		}
	}
	if len(last) != nQueries {
		t.Fatalf("folded subscriber state covers %d queries after the all-object shift, want %d", len(last), nQueries)
	}
	for id, res := range last {
		if want := cc.coord.Result(id); !reflect.DeepEqual(res, want) {
			t.Fatalf("query %d: folded subscriber state %v, current result %v", id, res, want)
		}
	}

	// Fired-fault accounting: at least one injected class actually bit.
	total := int64(0)
	for _, l := range cc.links {
		for _, n := range l.Counters() {
			total += n
		}
	}
	if total == 0 {
		t.Fatal("chaos links report zero fired faults")
	}
}

// TestChaosNegativeControl proves the harness catches the bug class it
// exists for: with the re-sync generation check disabled (the seeded
// bug), a rebuild from a stale snapshot is accepted while ticks keep
// moving objects, and the invariant the schedule test enforces at every
// tick MUST now flag a divergence. If it does not, the suite is
// asserting nothing.
func TestChaosNegativeControl(t *testing.T) {
	const nObjs, nQueries = 120, 8
	cc := startChaosCluster(t, 3, 99)
	cc.coord.DisableGenCheck()
	cc.seedScene(t, nObjs, nQueries)
	cc.tick(rotBatch(0, nObjs, 10))
	if err := cc.verify("baseline"); err != nil {
		t.Fatalf("healthy baseline diverged: %v", err)
	}

	victim := owner(0, cc.n)
	// Desync the victim with a partition outlasting the op deadline...
	cc.links[victim].Set(chaos.Fault{Class: chaos.Partition})
	cc.tick(rotBatch(1, nObjs, 10))
	if cc.coord.WorkerSynced(victim) {
		t.Fatal("victim still synced after partitioned tick")
	}
	// ...then heal it into a slow link: the background re-sync crawls
	// while ticks keep advancing the generation and moving objects, so
	// the snapshot it rebuilds from is stale by many operations.
	cc.links[victim].Set(chaos.Fault{Class: chaos.Latency, Delay: 150 * time.Millisecond})

	deadline := time.Now().Add(20 * time.Second)
	round := 2
	for !cc.coord.WorkerSynced(victim) {
		if time.Now().After(deadline) {
			t.Fatal("stale re-sync never accepted — negative control cannot run")
		}
		cc.tick(rotBatch(round, nObjs, 10))
		round++
		time.Sleep(20 * time.Millisecond)
	}
	cc.links[victim].Clear()

	// The seeded bug accepted a rebuild that missed those ticks. The
	// harness invariant must catch the silent divergence.
	if err := cc.verify("after stale accept"); err == nil {
		t.Fatal("generation check disabled yet no divergence detected — the chaos harness is blind")
	} else {
		t.Logf("harness correctly flagged: %v", err)
	}
}
