package cluster_test

import (
	"net"
	"net/http/httptest"
	"strings"
	"testing"
	"time"

	"cpm"
	"cpm/client"
	"cpm/internal/server"
	"cpm/internal/tracing"
)

// startTracedCoord hosts an already-built coordinator behind a wire server
// carrying the given tracer, and dials it with a trace-negotiating client.
func startTracedCoord(t *testing.T, coord server.Backend, tr *tracing.Tracer) *client.Client {
	t.Helper()
	srv := server.New(coord, server.Options{Tracer: tr})
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	go srv.Serve(ln)
	t.Cleanup(func() { srv.Close() })
	c, err := client.Dial(ln.Addr().String(), client.Options{Trace: true, SyncDiffs: true})
	if err != nil {
		t.Fatal(err)
	}
	t.Cleanup(func() { c.Close() })
	return c
}

func seedFleet(t *testing.T, c *client.Client) {
	t.Helper()
	objs := map[cpm.ObjectID]cpm.Point{}
	for i := 0; i < 32; i++ {
		objs[cpm.ObjectID(i)] = cpm.Point{X: float64(i%8) / 8, Y: float64(i/8) / 8}
	}
	if err := c.Bootstrap(objs); err != nil {
		t.Fatal(err)
	}
	if err := c.RegisterQuery(1, cpm.Point{X: 0.3, Y: 0.3}, 4); err != nil {
		t.Fatal(err)
	}
}

// fleetTick moves the whole population by a small step-dependent offset:
// enough relocation work that each worker's phase times clear the
// monotonic clock's granularity.
func fleetTick(t *testing.T, c *client.Client, step int) {
	t.Helper()
	d := 0.001 * float64(step)
	var ups []cpm.Update
	for i := 0; i < 32; i++ {
		base := cpm.Point{X: float64(i%8) / 8, Y: float64(i/8) / 8}
		ups = append(ups, cpm.MoveUpdate(cpm.ObjectID(i), base, cpm.Point{X: base.X + d, Y: base.Y}))
	}
	if err := c.Tick(cpm.Batch{Objects: ups}); err != nil {
		t.Fatal(err)
	}
}

// spanNames collects a trace's span names into a set.
func spanNames(tr tracing.RecordedTrace) map[string]bool {
	out := make(map[string]bool, len(tr.Spans))
	for _, s := range tr.Spans {
		out[s.Name] = true
	}
	return out
}

// TestClusterTraceFanOut is the tracing acceptance test: one sampled Tick
// against a coordinator over two workers yields a single trace holding the
// whole distributed story — the coordinator's fan-out round trips, each
// worker's engine phase decomposition, and the merge — retrievable from
// the /debug/traces surface.
func TestClusterTraceFanOut(t *testing.T) {
	coord, _ := startCluster(t, 2, 2*time.Second)
	tr := tracing.New(tracing.Options{SampleRate: 1, Seed: 5})
	c := startTracedCoord(t, coord, tr)
	seedFleet(t, c)
	fleetTick(t, c, 3)

	var tick tracing.RecordedTrace
	found := false
	for _, rec := range tr.Traces() {
		if rec.Name == "tick" {
			tick, found = rec, true
		}
	}
	if !found {
		t.Fatal("no tick trace recorded")
	}
	names := spanNames(tick)
	// The fan-out: one round-trip span per worker, plus the merge.
	for _, want := range []string{"worker0", "worker1", "merge"} {
		if !names[want] {
			t.Errorf("tick trace missing %q span; have %v", want, names)
		}
	}
	// Each worker's engine phases, stitched in from the Diffs trailer.
	// Only relocate is asserted per worker: the non-owner's reeval and
	// queryupd can run under the clock's granularity and lay no span.
	for _, want := range []string{"worker0/relocate", "worker1/relocate"} {
		if !names[want] {
			t.Errorf("tick trace missing %q phase span; have %v", want, names)
		}
	}
	// The coordinator's own critical-path phase rollup.
	for _, want := range []string{"relocate", "reeval", "queryupd"} {
		if !names[want] {
			t.Errorf("tick trace missing coordinator %q span; have %v", want, names)
		}
	}

	// The same trace must be retrievable from the /debug/traces handler.
	rw := httptest.NewRecorder()
	tr.Handler().ServeHTTP(rw, httptest.NewRequest("GET", "/debug/traces", nil))
	served, err := tracing.ParseTraces(rw.Body.Bytes())
	if err != nil {
		t.Fatalf("/debug/traces unparseable: %v", err)
	}
	found = false
	for _, rec := range served {
		if rec.TraceID == tick.TraceID && len(rec.Spans) == len(tick.Spans) {
			found = true
		}
	}
	if !found {
		t.Fatalf("/debug/traces does not serve the tick trace %016x", tick.TraceID)
	}
}

// TestClusterTraceSurvivesDesync drives the chaos path: a client-stamped
// trace id must survive a worker kill (the op records under the client's
// id, with well-formed spans for the failure) and keep working after the
// worker restarts and re-syncs.
func TestClusterTraceSurvivesDesync(t *testing.T) {
	coord, procs := startCluster(t, 2, 300*time.Millisecond)
	// SlowOp-only: nothing head-sampled, so every recorded trace is one
	// the client stamped.
	tr := tracing.New(tracing.Options{SlowOp: time.Hour})
	c := startTracedCoord(t, coord, tr)
	seedFleet(t, c)

	procs[0].kill()
	c.SetTrace(0x111, 0)
	fleetTick(t, c, 4)

	recs := tr.Traces()
	if len(recs) != 1 {
		t.Fatalf("stamped tick through a dead worker recorded %d traces, want 1", len(recs))
	}
	rec := recs[0]
	if rec.TraceID != 0x111 {
		t.Fatalf("trace id = %x, want 111 (the client's, across the failure)", rec.TraceID)
	}
	names := spanNames(rec)
	if !names["worker1"] {
		t.Errorf("surviving worker's span missing; have %v", names)
	}
	sawDead := false
	for n := range names {
		if strings.HasPrefix(n, "worker0") {
			sawDead = true // either the errored round trip or worker0/timeout
		}
	}
	if !sawDead {
		t.Errorf("dead worker left no span at all; have %v", names)
	}
	// Well-formed: every span inside the trace window, parented to a span
	// of the same trace (or the client's remote root).
	ids := map[uint64]bool{0xdef: true}
	for _, s := range rec.Spans {
		ids[s.ID] = true
	}
	for _, s := range rec.Spans {
		if s.OffsetNs < 0 || s.DurNs < 0 {
			t.Errorf("span %q has negative offset/duration (%d, %d)", s.Name, s.OffsetNs, s.DurNs)
		}
		if s.Parent != 0 && !ids[s.Parent] {
			t.Errorf("span %q parented to unknown id %x", s.Name, s.Parent)
		}
	}

	// Restart the worker on its old address and let re-sync land
	// (acceptance happens at operation boundaries, so keep ticking).
	startWorker(t, procs[0].addr)
	deadline := time.Now().Add(10 * time.Second)
	for coord.SyncedWorkers() < 2 {
		if time.Now().After(deadline) {
			t.Fatal("worker never re-synced")
		}
		fleetTick(t, c, 5) // unstamped: records nothing
		time.Sleep(20 * time.Millisecond)
	}
	if got := tr.Recorded(); got != 1 {
		t.Fatalf("unstamped re-sync ticks leaked %d traces into the recorder", got-1)
	}

	c.SetTrace(0x222, 0)
	fleetTick(t, c, 6)
	recs = tr.Traces()
	if len(recs) != 2 {
		t.Fatalf("stamped tick after re-sync: recorder holds %d traces, want 2", len(recs))
	}
	var after tracing.RecordedTrace
	for _, r := range recs {
		if r.TraceID == 0x222 {
			after = r
		}
	}
	if after.TraceID != 0x222 {
		t.Fatal("post-re-sync stamped tick not recorded under the client's id")
	}
	names = spanNames(after)
	if !names["worker0"] || !names["worker1"] {
		t.Errorf("post-re-sync tick missing a worker span; have %v", names)
	}
}
