// Package cluster distributes a CPM monitor across a fleet of worker
// servers: the Coordinator implements internal/server.Backend, so the
// ordinary serving layer (and therefore the unmodified client package,
// cpmload, cpmsim -connect) fronts a whole cluster exactly as it fronts a
// single in-process monitor.
//
// # Topology and routing
//
// The coordinator speaks internal/wire on both sides. Downstream it holds
// one sync-diffs client connection (wire.HelloSyncDiffs) per worker — an
// ordinary cpmserver process — and partitions the continuous queries
// across them by the same multiplicative hash internal/shard uses for its
// in-process shards: owner(q) = (uint32(q) · 0x9E3779B1) mod N. Every
// query lives on exactly one worker; every worker holds a full replica of
// the object population (object positions must be exact everywhere —
// unlike in-process shards, which share one grid, workers are separate
// processes and each must own its own).
//
// Each mutating operation fans out concurrently: a Tick sends the full
// object-update set to every worker and routes each query update to its
// owner, registrations/moves/removals go to the owning worker only, and
// Bootstrap/Reset go everywhere. Because the worker connections run in
// sync-diffs mode, every successful operation comes back with exactly the
// result diffs it produced on that worker; the coordinator merges the
// per-worker answers by ascending query id — the same order the
// single-engine monitor and internal/shard emit — so the merged stream is
// byte-for-byte the stream one big monitor would have produced.
//
// # State mirror
//
// The coordinator keeps an authoritative mirror of the cluster's logical
// state: every object position (applying the engine's own
// invalid-update rules), every query definition, and every query's
// current result (maintained from the merged diffs). The mirror serves
// reads locally — Result, Snapshot, subscription re-sync snapshots —
// without a network round trip, and is the source from which a lost
// worker is rebuilt.
//
// # Failure, gaps and re-sync
//
// A worker that misses an operation — transport error, or no answer
// within Options.OpTimeout — is marked out of sync: the coordinator stops
// sending it operations, advances its subscribers' sequence numbers past
// the lost diffs via the notify hub's Gap (so downstream consumers see an
// explicit Gap frame, never a silent hole), and starts a background
// re-sync. The re-sync rebuilds the worker from the mirror — Reset,
// Bootstrap of the full object population, re-registration of its owned
// queries — and is accepted only if no further operation ran meanwhile
// and the worker's server instance (from the Welcome frame) did not
// change mid-rebuild; otherwise it retries with a fresh snapshot. On
// acceptance the coordinator publishes one synthetic DiffUpdate, carrying
// the full current result, for each owned query whose result drifted
// while the worker was away, so subscribers re-converge from the very
// next event after the gap.
//
// Restarts are detected, not assumed: every worker connection records the
// server instance id of its latest handshake, and a synced worker whose
// instance changed is re-synced even if no request happened to fail.
//
// All wire traffic to one worker is serialized behind a per-worker mutex:
// an abandoned (timed-out) request can never land between a later
// re-sync's Reset and Bootstrap.
//
// Like the monitor it stands in for, the Coordinator is single-threaded
// by contract — internal/server serializes every call behind its monitor
// mutex. The exceptions are subscriptions (consume their channels from
// anywhere) and the metrics registry (atomic instruments).
package cluster

import (
	"errors"
	"fmt"
	"maps"
	"math"
	"sort"
	"sync"
	"time"

	"cpm"
	"cpm/client"
	"cpm/internal/geom"
	"cpm/internal/metrics"
	"cpm/internal/model"
	"cpm/internal/notify"
	"cpm/internal/tracing"
	"cpm/internal/wire"
)

// Options configure a Coordinator.
type Options struct {
	// Workers are the addresses of the worker servers, one cpmserver per
	// entry. The worker count is fixed for the coordinator's lifetime:
	// query ownership is a pure function of (id, len(Workers)).
	Workers []string
	// OpTimeout bounds how long a fanned-out operation waits for each
	// worker's answer (default 5s). A worker that misses the deadline is
	// marked out of sync and re-synced in the background; the operation
	// itself completes without it. Negative disables the bound — every
	// operation then blocks until all workers answer, so a single stuck
	// worker stalls the cluster (the failure mode the timeout exists to
	// prevent; see the robustness tests).
	OpTimeout time.Duration
	// Client is the base configuration for the per-worker connections.
	// SyncDiffs is forced on and OnConnect is used internally; an unset
	// ReconnectWait defaults to 3s (not the client package's 30s) so a
	// dead worker fails operations quickly instead of holding the
	// fan-out at the timeout bound for every tick.
	Client client.Options
	// Logf, when set, receives worker lifecycle diagnostics (desync,
	// re-sync, reconnect). The coordinator is silent without it.
	Logf func(format string, args ...any)
}

func (o *Options) defaults() {
	if o.OpTimeout == 0 {
		o.OpTimeout = 5 * time.Second
	}
	if o.Client.ReconnectWait <= 0 {
		o.Client.ReconnectWait = 3 * time.Second
	}
}

// Coordinator shards continuous queries across worker servers and merges
// their diff streams back into one. It implements server.Backend; create
// one with New and host it with internal/server.
type Coordinator struct {
	opts    Options
	workers []*worker
	met     *coordMetrics

	// resyncCh carries finished background re-syncs back to the
	// single-threaded coordinator loop, which drains it at the start of
	// every mutating operation.
	resyncCh chan resyncResult

	// gen counts mutating operations. A re-sync snapshot stamped with an
	// older gen is stale — the worker it rebuilt missed operations — and
	// is discarded.
	gen uint64

	// skipGenCheck disables the staleness check above. It exists only as
	// the chaos suite's negative control — a seeded bug proving the
	// harness detects the divergence the check prevents. Never set in
	// production paths.
	skipGenCheck bool

	// The current operation's footprint, stamped by each mutating
	// operation before its fan-out: the object and query ids it touches
	// (opFull for Bootstrap/Reset, which touch everything). desync
	// charges it to a worker's dirty sets so an incremental re-sync can
	// replay exactly what was missed or half-applied.
	opObjIDs   []model.ObjectID
	opQueryIDs []model.QueryID
	opFull     bool

	// The state mirror.
	objs    map[model.ObjectID]geom.Point
	defs    map[model.QueryID]wire.Register
	results map[model.QueryID][]model.Neighbor
	changed []model.QueryID
	invalid int64

	// Streaming plumbing, mirroring cpm.Monitor's.
	hub     *notify.Hub
	keep    bool
	pending []model.ResultDiff
	closed  bool

	// Cycle accounting (Tick fan-out wall time).
	cycles      int64
	lastCycleNs int64
	// lastPhases is the fleet's critical-path phase breakdown from the
	// last Tick (per-field max over the workers' reported phases).
	lastPhases model.PhaseNanos

	// opSpan is the hosting server's span for the operation in flight
	// (SetOpSpan; nil when the op is untraced). Written only by the
	// single-threaded coordinator loop; fan-out goroutines receive it by
	// value through their closures.
	opSpan *tracing.Span

	// Cached fleet-stats aggregation (stats.go). Guarded by its own
	// mutex: reads arrive on the hosting server's scrape path, which the
	// coordinator contract does not otherwise serialize against.
	statsMu    sync.Mutex
	statsAt    time.Time
	statsCache fleetStats
}

// New dials every worker, wipes any state it may hold (Reset) and returns
// a coordinator ready to serve. It fails if any worker is unreachable:
// a cluster must start whole, even though it degrades gracefully later.
func New(opts Options) (*Coordinator, error) {
	if len(opts.Workers) == 0 {
		return nil, errors.New("cluster: no workers")
	}
	opts.defaults()
	c := &Coordinator{
		opts:     opts,
		met:      newCoordMetrics(len(opts.Workers)),
		resyncCh: make(chan resyncResult, 8*len(opts.Workers)),
		objs:     make(map[model.ObjectID]geom.Point),
		defs:     make(map[model.QueryID]wire.Register),
		results:  make(map[model.QueryID][]model.Neighbor),
	}
	for i, addr := range opts.Workers {
		w := &worker{
			idx:        i,
			addr:       addr,
			rtt:        c.met.reg.Histogram(fmt.Sprintf("cpm_coord_worker%d_rtt_ns", i)),
			reconnects: c.met.reg.Counter(fmt.Sprintf("cpm_coord_worker%d_reconnects_total", i)),
			healthG:    c.met.reg.Gauge(fmt.Sprintf("cpm_coord_worker%d_health", i)),
		}
		copts := opts.Client
		copts.SyncDiffs = true
		// Ask for the trace extension: trace context flows downstream and
		// tick-phase breakdowns flow back. Degrades silently against
		// workers running a pre-extension build.
		copts.Trace = true
		// Coordinator↔worker links cross real networks; CRC trailers turn
		// silent in-flight corruption into loud request failures the
		// desync/re-sync machinery already knows how to absorb.
		copts.Checksum = true
		copts.OnConnect = func(instance uint64) {
			if w.seen.Swap(instance) != 0 {
				w.reconnects.Inc()
			}
		}
		cl, err := client.Dial(addr, copts)
		if err != nil {
			for _, prev := range c.workers {
				prev.cl.Close()
			}
			return nil, fmt.Errorf("cluster: worker %d (%s): %w", i, addr, err)
		}
		w.cl = cl
		c.workers = append(c.workers, w)
	}
	// Start from a known-clean fleet: a worker recycled from an earlier
	// run must not leak queries into the merged stream.
	for _, w := range c.workers {
		if err := w.cl.Reset(); err != nil {
			c.Close()
			return nil, fmt.Errorf("cluster: reset worker %d (%s): %w", w.idx, w.addr, err)
		}
		w.instance = w.seen.Load()
		w.synced = true
	}
	c.met.workers.Set(int64(len(c.workers)))
	c.met.workersSynced.Set(int64(len(c.workers)))
	return c, nil
}

// owner returns the index of the worker a query lives on — the same
// multiplicative hash internal/shard partitions with, so a workload's
// balance characteristics carry over between in-process shards and
// cluster workers.
func (c *Coordinator) owner(id model.QueryID) int {
	return int((uint32(id) * 0x9E3779B1) % uint32(len(c.workers)))
}

// WorkerCount returns the (fixed) number of workers.
func (c *Coordinator) WorkerCount() int { return len(c.workers) }

// SyncedWorkers returns how many workers currently hold exact state. A
// value below WorkerCount means some partition's diffs are gapping and
// its results are served from the (possibly stale) mirror.
func (c *Coordinator) SyncedWorkers() int {
	n := 0
	for _, w := range c.workers {
		if w.synced {
			n++
		}
	}
	return n
}

// Metrics returns the coordinator's own registry (cpm_coord_* names; see
// docs/CLUSTER.md). The upstream server's registry is separate.
func (c *Coordinator) Metrics() *metrics.Registry { return c.met.reg }

// Close shuts streaming down and closes every worker connection. Worker
// state is left in place (the processes are owned by the operator).
func (c *Coordinator) Close() {
	c.closed = true
	if c.hub != nil {
		c.hub.Close()
		c.hub = nil
	}
	for _, w := range c.workers {
		if w.cl != nil {
			w.cl.Close()
		}
	}
}

func (c *Coordinator) logf(format string, args ...any) {
	if c.opts.Logf != nil {
		c.opts.Logf(format, args...)
	}
}

// ---- Backend: mutating operations ----------------------------------------

// Bootstrap loads the initial object population into the mirror and every
// worker. Call once, before registering queries, like cpm.Monitor's.
func (c *Coordinator) Bootstrap(objs map[model.ObjectID]geom.Point) {
	c.beginOp()
	c.opFull = true
	c.chargeDesynced()
	c.objs = maps.Clone(objs)
	if c.objs == nil {
		c.objs = make(map[model.ObjectID]geom.Point)
	}
	ctx := c.opSpan.Context()
	c.fanOut(c.synced(), true, func(w *worker) ([]model.ResultDiff, error) {
		stampTrace(ctx, w)
		return nil, w.cl.Bootstrap(objs)
	})
	c.finishOp(nil)
}

// Tick runs one processing cycle: the object updates fan out to every
// worker, each query update is routed to its owner, and the per-worker
// diffs merge back in ascending query id order.
func (c *Coordinator) Tick(b model.Batch) {
	start := time.Now()
	c.beginOp()
	c.stampBatch(b)
	c.chargeDesynced()
	c.applyBatchToMirror(b)
	per := c.partition(b)
	sp := c.opSpan
	ctx := sp.Context()
	// Per-worker phase reports land here from the fan-out goroutines; the
	// mutex (not plain indexed writes) keeps the read below safe against a
	// timed-out straggler still finishing its call. The spans themselves
	// are laid after the fan-out, on this thread, while sp is still live —
	// a straggler completing after sp.Finish would otherwise touch a
	// recycled span.
	var phMu sync.Mutex
	phases := make([]model.PhaseNanos, len(c.workers))
	starts := make([]time.Time, len(c.workers))
	diffs, _ := c.fanOut(c.synced(), true, func(w *worker) ([]model.ResultDiff, error) {
		stampTrace(ctx, w)
		t0 := time.Now()
		d, ph, err := w.cl.TickDiffsPhases(per[w.idx])
		if err == nil {
			phMu.Lock()
			phases[w.idx] = ph
			starts[w.idx] = t0
			phMu.Unlock()
		}
		return d, err
	})
	var agg model.PhaseNanos
	phMu.Lock()
	for i, ph := range phases {
		agg.MaxOf(ph)
		if !starts[i].IsZero() {
			workerPhaseSpans(sp, i, starts[i], ph)
		}
	}
	phMu.Unlock()
	c.lastPhases = agg
	msp := sp.Child("merge")
	c.finishOp(diffs)
	msp.Finish()
	c.cycles++
	c.lastCycleNs = time.Since(start).Nanoseconds()
}

// RegisterQuery installs a conventional k-NN query on its owner worker.
func (c *Coordinator) RegisterQuery(id model.QueryID, q geom.Point, k int) error {
	return c.registerDef(wire.Register{ID: id, Kind: wire.KindPoint, K: k, Points: []geom.Point{q}})
}

// RegisterAggQuery installs an aggregate k-NN query on its owner worker.
func (c *Coordinator) RegisterAggQuery(id model.QueryID, pts []geom.Point, k int, agg geom.Agg) error {
	return c.registerDef(wire.Register{ID: id, Kind: wire.KindAgg, K: k, Agg: agg, Points: pts})
}

// RegisterConstrainedQuery installs a constrained k-NN query on its owner
// worker.
func (c *Coordinator) RegisterConstrainedQuery(id model.QueryID, q geom.Point, k int, region geom.Rect) error {
	return c.registerDef(wire.Register{ID: id, Kind: wire.KindConstrained, K: k, Points: []geom.Point{q}, Region: region})
}

// RegisterRangeQuery installs a continuous range query on its owner
// worker.
func (c *Coordinator) RegisterRangeQuery(id model.QueryID, center geom.Point, radius float64) error {
	return c.registerDef(wire.Register{ID: id, Kind: wire.KindRange, Points: []geom.Point{center}, Radius: radius})
}

// registerDef is the shared registration path. While the owner is out of
// sync the registration is absorbed into the mirror (and installed on the
// worker by the next accepted re-sync); subscribers see a gap for the
// query instead of a DiffInstall, and re-converge from the re-sync's
// synthetic full-result diff.
func (c *Coordinator) registerDef(def wire.Register) error {
	c.beginOp()
	defer c.spawnResyncs()
	if _, ok := c.defs[def.ID]; ok {
		return fmt.Errorf("cluster: query %d already registered", def.ID)
	}
	c.opQueryIDs = []model.QueryID{def.ID}
	w := c.workers[c.owner(def.ID)]
	ctx := c.opSpan.Context()
	var diffs []model.ResultDiff
	if w.synced {
		var appErr error
		diffs, appErr = c.fanOut([]*worker{w}, false, func(w *worker) ([]model.ResultDiff, error) {
			stampTrace(ctx, w)
			return w.cl.RegisterDefDiffs(def)
		})
		if appErr != nil {
			return appErr
		}
	} else {
		c.markDirty(w)
		c.gapQueries(def.ID)
	}
	c.defs[def.ID] = cloneDef(def)
	c.finishDiffs(diffs)
	return nil
}

// MoveQuery relocates an installed query on its owner worker.
func (c *Coordinator) MoveQuery(id model.QueryID, to ...geom.Point) error {
	c.beginOp()
	defer c.spawnResyncs()
	def, ok := c.defs[id]
	if !ok {
		return fmt.Errorf("cluster: move of unknown query %d", id)
	}
	if len(to) != len(def.Points) {
		return fmt.Errorf("cluster: query %d moves with %d points, got %d", id, len(def.Points), len(to))
	}
	c.opQueryIDs = []model.QueryID{id}
	w := c.workers[c.owner(id)]
	ctx := c.opSpan.Context()
	var diffs []model.ResultDiff
	if w.synced {
		var appErr error
		diffs, appErr = c.fanOut([]*worker{w}, false, func(w *worker) ([]model.ResultDiff, error) {
			stampTrace(ctx, w)
			return w.cl.MoveQueryDiffs(id, to...)
		})
		if appErr != nil {
			return appErr
		}
	} else {
		c.markDirty(w)
		c.gapQueries(id)
	}
	def.Points = append([]geom.Point(nil), to...)
	c.defs[id] = def
	c.finishDiffs(diffs)
	return nil
}

// RemoveQuery uninstalls a query. Unknown ids are a no-op, like the
// monitor's. While the owner is out of sync the removal is absorbed into
// the mirror and a synthetic DiffRemove keeps subscribers exact.
func (c *Coordinator) RemoveQuery(id model.QueryID) {
	c.beginOp()
	defer c.spawnResyncs()
	if _, ok := c.defs[id]; !ok {
		return
	}
	c.opQueryIDs = []model.QueryID{id}
	w := c.workers[c.owner(id)]
	ctx := c.opSpan.Context()
	var diffs []model.ResultDiff
	if w.synced {
		diffs, _ = c.fanOut([]*worker{w}, false, func(w *worker) ([]model.ResultDiff, error) {
			stampTrace(ctx, w)
			return w.cl.RemoveQueryDiffs(id)
		})
	} else {
		c.markDirty(w)
	}
	if len(diffs) == 0 {
		diffs = []model.ResultDiff{{Query: id, Kind: model.DiffRemove, Exited: resultIDs(c.results[id])}}
	}
	delete(c.defs, id)
	c.finishDiffs(diffs)
}

// Reset wipes the whole cluster back to empty: every worker is reset,
// the mirror cleared, and subscribers receive the terminal DiffRemove of
// every installed query, matching cpm.Monitor.Reset.
func (c *Coordinator) Reset() {
	c.beginOp()
	c.opFull = true
	c.chargeDesynced()
	ctx := c.opSpan.Context()
	c.fanOut(c.synced(), true, func(w *worker) ([]model.ResultDiff, error) {
		stampTrace(ctx, w)
		return nil, w.cl.Reset()
	})
	removes := make([]model.ResultDiff, 0, len(c.defs))
	for _, id := range sortedIDs(c.defs) {
		removes = append(removes, model.ResultDiff{Query: id, Kind: model.DiffRemove, Exited: resultIDs(c.results[id])})
	}
	c.objs = make(map[model.ObjectID]geom.Point)
	c.defs = make(map[model.QueryID]wire.Register)
	c.results = make(map[model.QueryID][]model.Neighbor)
	c.finishOp(removes)
}

// ---- Backend: reads, served from the mirror ------------------------------

// Result returns a query's current result from the mirror — no network
// round trip. While the owner worker is out of sync this is the last
// exact value (the staleness window the Gap events delimit).
func (c *Coordinator) Result(id model.QueryID) []model.Neighbor {
	r, ok := c.results[id]
	if !ok {
		return nil
	}
	return append([]model.Neighbor(nil), r...)
}

// Snapshot captures the mirror's full results, matching
// cpm.Monitor.Snapshot's contract (no ids = every installed query, in
// ascending id order; unknown ids come back Live false).
func (c *Coordinator) Snapshot(ids ...model.QueryID) []cpm.QuerySnapshot {
	if len(ids) == 0 {
		ids = sortedIDs(c.defs)
	}
	out := make([]cpm.QuerySnapshot, len(ids))
	for i, id := range ids {
		_, live := c.defs[id]
		out[i] = cpm.QuerySnapshot{Query: id, Live: live, Result: c.Result(id)}
	}
	return out
}

// ObjectPosition returns an object's position from the mirror (the raw
// reported position; workers clamp onto their workspace at storage time).
func (c *Coordinator) ObjectPosition(id model.ObjectID) (geom.Point, bool) {
	p, ok := c.objs[id]
	return p, ok
}

// ObjectCount returns the mirrored object population size.
func (c *Coordinator) ObjectCount() int { return len(c.objs) }

// QueryCount returns the number of installed queries.
func (c *Coordinator) QueryCount() int { return len(c.defs) }

// ChangedQueries returns the ids whose results the last operation
// changed, in ascending order (the merged diff set; queries owned by an
// out-of-sync worker are covered by Gap events instead).
func (c *Coordinator) ChangedQueries() []model.QueryID {
	return append([]model.QueryID(nil), c.changed...)
}

// Cycles returns how many Tick fan-outs the coordinator has run.
func (c *Coordinator) Cycles() int64 { return c.cycles }

// LastCycleNanos returns the wall time of the most recent Tick fan-out.
func (c *Coordinator) LastCycleNanos() int64 { return c.lastCycleNs }

// GridSize reports the largest grid any worker currently runs (each
// worker sizes its own grid; the maximum is the honest single number),
// aggregated over the wire Stats frames with a short cache — see
// fleetStats in stats.go.
func (c *Coordinator) GridSize() int { return c.fleetStats().grid }

// Rebalances reports the fleet-wide total of online grid rebalances,
// summed across workers.
func (c *Coordinator) Rebalances() int64 { return c.fleetStats().rebalances }

// Stats reports the fleet-wide engine work counters — cell accesses,
// objects scanned, heap operations and friends, summed across workers.
// The paper's work metrics therefore stay observable on a coordinator's
// metrics page, not just per worker.
func (c *Coordinator) Stats() model.Stats { return c.fleetStats().stats }

// WorkerHealth returns worker i's health state (see Health).
func (c *Coordinator) WorkerHealth(i int) Health { return c.workers[i].health }

// WorkerSynced reports whether worker i currently holds exact state.
func (c *Coordinator) WorkerSynced(i int) bool { return c.workers[i].synced }

// InvalidUpdates counts stream elements the mirror rejected under the
// engine's own rules (unknown ids, duplicate inserts, non-finite
// positions) — each worker additionally counts its own.
func (c *Coordinator) InvalidUpdates() int64 { return c.invalid }

// ---- Backend: streaming ---------------------------------------------------

// SubscribeWith subscribes to the merged diff stream, exactly like
// cpm.Monitor.SubscribeWith.
func (c *Coordinator) SubscribeWith(opts cpm.SubscribeOptions, ids ...model.QueryID) *cpm.Subscription {
	if c.closed {
		return notify.Closed()
	}
	if c.hub == nil {
		c.hub = notify.NewHub()
	}
	return c.hub.Subscribe(opts, ids...)
}

// KeepDiffs toggles pull-based collection of the merged stream for
// TakeDiffs, mirroring cpm.Monitor.KeepDiffs — so a coordinator can
// itself be served in sync-diffs mode.
func (c *Coordinator) KeepDiffs(on bool) {
	c.keep = on
	if !on {
		c.pending = nil
	}
}

// TakeDiffs returns the merged diffs collected since the last TakeDiffs
// and clears the buffer. Nil unless KeepDiffs is on.
func (c *Coordinator) TakeDiffs() []model.ResultDiff {
	out := c.pending
	c.pending = nil
	return out
}

// publish hands one operation's merged diffs to the hub and, with
// KeepDiffs on, the pull buffer.
func (c *Coordinator) publish(diffs []model.ResultDiff) {
	if len(diffs) == 0 {
		return
	}
	if c.keep {
		c.pending = append(c.pending, diffs...)
	}
	if c.hub != nil {
		c.hub.Publish(diffs)
	}
}

// ---- Mirror maintenance ---------------------------------------------------

// stampBatch records one tick's footprint — every object and query id it
// touches — for dirty tracking (see markDirty).
func (c *Coordinator) stampBatch(b model.Batch) {
	for _, u := range b.Objects {
		c.opObjIDs = append(c.opObjIDs, u.ID)
	}
	for _, qu := range b.Queries {
		c.opQueryIDs = append(c.opQueryIDs, qu.ID)
	}
}

// applyBatchToMirror applies one tick's updates to the object mirror and
// the definition mirror, with the engine's invalid-update semantics
// (internal/core/update.go): a re-sync later rebuilds a worker from this
// state, so it must track what the workers actually stored.
func (c *Coordinator) applyBatchToMirror(b model.Batch) {
	for _, u := range b.Objects {
		switch u.Kind {
		case model.Move:
			if !finitePoint(u.New) {
				c.invalid++
				continue
			}
			if _, ok := c.objs[u.ID]; !ok {
				c.invalid++
				continue
			}
			c.objs[u.ID] = u.New
		case model.Insert:
			if !finitePoint(u.New) {
				c.invalid++
				continue
			}
			if _, ok := c.objs[u.ID]; ok {
				c.invalid++
				continue
			}
			c.objs[u.ID] = u.New
		case model.Delete:
			if _, ok := c.objs[u.ID]; !ok {
				c.invalid++
				continue
			}
			delete(c.objs, u.ID)
		default:
			c.invalid++
		}
	}
	for _, qu := range b.Queries {
		switch qu.Kind {
		case model.QueryMove:
			if def, ok := c.defs[qu.ID]; ok && len(qu.NewPoints) == len(def.Points) {
				def.Points = append([]geom.Point(nil), qu.NewPoints...)
				c.defs[qu.ID] = def
			}
		case model.QueryTerminate:
			delete(c.defs, qu.ID)
		}
	}
}

// partition splits a tick batch into per-worker batches: all object
// updates to everyone, each query update to its owner — internal/shard's
// routing, over the wire.
func (c *Coordinator) partition(b model.Batch) []model.Batch {
	per := make([]model.Batch, len(c.workers))
	for i := range per {
		per[i].Objects = b.Objects
	}
	for _, qu := range b.Queries {
		o := c.owner(qu.ID)
		per[o].Queries = append(per[o].Queries, qu)
	}
	return per
}

// finishOp folds one operation's merged diffs into the results mirror,
// records the changed set and publishes — then starts re-syncs for any
// worker the operation lost.
func (c *Coordinator) finishOp(diffs []model.ResultDiff) {
	c.finishDiffs(diffs)
	c.spawnResyncs()
}

// finishDiffs is finishOp without the re-sync spawn (for call sites that
// defer it).
func (c *Coordinator) finishDiffs(diffs []model.ResultDiff) {
	for _, d := range diffs {
		if d.Kind == model.DiffRemove {
			delete(c.results, d.Query)
		} else {
			c.results[d.Query] = d.Result
		}
	}
	c.changed = c.changed[:0]
	for _, d := range diffs {
		c.changed = append(c.changed, d.Query)
	}
	c.publish(diffs)
}

// ---- Helpers --------------------------------------------------------------

func finitePoint(p geom.Point) bool {
	return !math.IsNaN(p.X) && !math.IsInf(p.X, 0) && !math.IsNaN(p.Y) && !math.IsInf(p.Y, 0)
}

func cloneDef(def wire.Register) wire.Register {
	def.Points = append([]geom.Point(nil), def.Points...)
	return def
}

func sortedIDs(defs map[model.QueryID]wire.Register) []model.QueryID {
	ids := make([]model.QueryID, 0, len(defs))
	for id := range defs {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

func resultIDs(r []model.Neighbor) []model.ObjectID {
	if len(r) == 0 {
		return nil
	}
	ids := make([]model.ObjectID, len(r))
	for i, n := range r {
		ids[i] = n.ID
	}
	return ids
}

func neighborsEqual(a, b []model.Neighbor) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
