package cluster_test

import (
	"reflect"
	"testing"
	"time"

	"cpm"
	"cpm/internal/cluster"
	"cpm/internal/geom"
	"cpm/internal/model"
)

// metric reads one value off the coordinator's registry snapshot.
func metric(t *testing.T, c *cluster.Coordinator, name string) int64 {
	t.Helper()
	for _, s := range c.Metrics().Snapshot() {
		if s.Name == name {
			return s.Value
		}
	}
	t.Fatalf("metric %s not registered", name)
	return 0
}

// denseScene builds a deterministic population and query set in the unit
// workspace: n objects on a jittered lattice, q point queries.
func denseScene(n, q int) (map[model.ObjectID]geom.Point, map[model.QueryID]geom.Point) {
	objs := make(map[model.ObjectID]geom.Point, n)
	for i := 0; i < n; i++ {
		objs[model.ObjectID(i)] = geom.Point{
			X: (float64(i%12) + 0.3 + 0.02*float64(i%7)) / 12,
			Y: (float64(i/12) + 0.4 + 0.03*float64(i%5)) / 12,
		}
	}
	queries := make(map[model.QueryID]geom.Point, q)
	for i := 0; i < q; i++ {
		queries[model.QueryID(i)] = geom.Point{
			X: (float64(i%4) + 0.5) / 4,
			Y: (float64(i/4) + 0.5) / 4,
		}
	}
	return objs, queries
}

// nudge builds a small batch moving a handful of known objects — a tick
// whose footprint (and therefore a desynced worker's dirty set) stays far
// below the population size.
func nudge(round int, ids ...model.ObjectID) model.Batch {
	var b model.Batch
	for i, id := range ids {
		b.Objects = append(b.Objects, model.Update{
			ID:   id,
			Kind: model.Move,
			New: geom.Point{
				X: (float64(int(id)%12) + 0.1 + 0.05*float64((round+i)%10)) / 12,
				Y: (float64(int(id)/12) + 0.2 + 0.04*float64((round+2*i)%10)) / 12,
			},
		})
	}
	return b
}

// TestIncrementalResync pins the delta-replay rebuild path and its cost
// accounting: a worker that desyncs without restarting is repaired by
// replaying only its dirty objects — demonstrably cheaper than
// Reset+Bootstrap on the objects-sent counter — while a worker whose
// server instance changed takes the full path. Results must match a
// single in-process monitor either way.
func TestIncrementalResync(t *testing.T) {
	const nObjs, nQueries, k = 120, 8, 4
	coord, procs := startCluster(t, 2, 300*time.Millisecond)
	single := cpm.NewMonitor(cpm.Options{GridSize: 16})
	defer single.Close()

	objs, queries := denseScene(nObjs, nQueries)
	coord.Bootstrap(objs)
	single.Bootstrap(objs)
	for id, q := range queries {
		if err := coord.RegisterQuery(id, q, k); err != nil {
			t.Fatal(err)
		}
		if err := single.RegisterQuery(id, q, k); err != nil {
			t.Fatal(err)
		}
	}

	checkResults := func(stage string) {
		t.Helper()
		for id := range queries {
			if got, want := coord.Result(id), single.Result(id); !reflect.DeepEqual(got, want) {
				t.Fatalf("%s: query %d: cluster %v, single %v", stage, id, got, want)
			}
		}
	}
	tickBoth := func(b model.Batch) {
		coord.Tick(b)
		single.Tick(b)
	}
	repairAndVerify := func(stage string) {
		t.Helper()
		deadline := time.Now().Add(15 * time.Second)
		round := 100
		for coord.SyncedWorkers() < 2 {
			if time.Now().After(deadline) {
				t.Fatalf("%s: cluster never re-synced", stage)
			}
			tickBoth(nudge(round, 7, 8))
			round++
			time.Sleep(20 * time.Millisecond)
		}
		checkResults(stage)
	}

	tickBoth(nudge(0, 1, 2, 3))
	checkResults("baseline")

	// Phase 1 — incremental: wedge a worker past the op deadline. The
	// server instance survives, so the rebuild must be the delta replay.
	release := wedge(procs[0])
	tickBoth(nudge(1, 4, 5, 6))
	if coord.SyncedWorkers() != 1 {
		t.Fatalf("wedged worker still synced")
	}
	if h := coord.WorkerHealth(0); h != cluster.Desynced {
		t.Fatalf("wedged worker health %v, want desynced", h)
	}
	// A tick while the worker is away grows its dirty set.
	tickBoth(nudge(2, 10, 11))
	release()
	repairAndVerify("after incremental repair")

	incr := metric(t, coord, "cpm_coord_resync_incremental_total")
	full := metric(t, coord, "cpm_coord_resync_full_total")
	sent := metric(t, coord, "cpm_coord_resync_objects_sent_total")
	if incr == 0 {
		t.Fatalf("no incremental re-sync ran (incremental=%d full=%d)", incr, full)
	}
	if full != 0 {
		t.Fatalf("full re-sync ran where incremental sufficed (full=%d)", full)
	}
	// The cost bar: the delta must be far below re-shipping the world.
	// Every accepted incremental replayed only dirty objects (≤ the
	// handful the nudges touched), never the nObjs a Bootstrap ships.
	if sent >= nObjs/2 {
		t.Fatalf("incremental re-sync shipped %d objects, want far fewer than population %d", sent, nObjs)
	}

	// The health machine: probation after re-sync, promoted after a
	// streak of clean operations.
	if h := coord.WorkerHealth(0); h != cluster.Degraded {
		t.Fatalf("re-synced worker health %v, want degraded (probation)", h)
	}
	for i := 0; i < 4; i++ {
		tickBoth(nudge(200+i, 20, 21))
	}
	if h := coord.WorkerHealth(0); h != cluster.Healthy {
		t.Fatalf("worker health %v after clean streak, want healthy", h)
	}
	checkResults("after promotion")

	// Phase 2 — full: kill and restart the worker on its old address. The
	// instance id changes, so retained state is gone and the rebuild must
	// take (and be charged as) the full Reset+Bootstrap path.
	procs[0].kill()
	procs[0] = startWorker(t, procs[0].addr)
	tickBoth(nudge(300, 30, 31)) // detect the restart, desync, spawn
	repairAndVerify("after full repair")

	if got := metric(t, coord, "cpm_coord_resync_full_total"); got == 0 {
		t.Fatal("restart repaired without a full re-sync")
	}
	if grew := metric(t, coord, "cpm_coord_resync_objects_sent_total") - sent; grew < nObjs {
		t.Fatalf("full re-sync shipped %d objects, want the whole population (%d)", grew, nObjs)
	}
}

// TestFleetStatsFanIn pins the coordinator's read fan-in: GridSize,
// Rebalances and Stats aggregate the workers' engine counters over the
// wire Stats frame (sum for work counters, max for grid size) instead of
// reporting zero.
func TestFleetStatsFanIn(t *testing.T) {
	coord, procs := startCluster(t, 3, 5*time.Second)
	objs, queries := denseScene(150, 8)
	coord.Bootstrap(objs)
	for id, q := range queries {
		if err := coord.RegisterQuery(id, q, 4); err != nil {
			t.Fatal(err)
		}
	}
	for i := 0; i < 5; i++ {
		coord.Tick(nudge(i, 1, 2, 3, 4, 5))
	}

	var want model.Stats
	wantGrid := 0
	var wantReb int64
	for _, p := range procs {
		want.Add(p.mon.Stats())
		if g := p.mon.GridSize(); g > wantGrid {
			wantGrid = g
		}
		wantReb += p.mon.Rebalances()
	}
	if want.CellAccesses == 0 || want.ObjectsProcessed == 0 {
		t.Fatal("workers recorded no engine work — the scenario is too idle to test aggregation")
	}

	got := coord.Stats()
	if got != want {
		t.Fatalf("aggregated stats %+v, want per-worker sum %+v", got, want)
	}
	if g := coord.GridSize(); g != wantGrid {
		t.Fatalf("GridSize %d, want fleet max %d", g, wantGrid)
	}
	if r := coord.Rebalances(); r != wantReb {
		t.Fatalf("Rebalances %d, want fleet sum %d", r, wantReb)
	}

	// The aggregation is cached: an immediate re-read must serve the same
	// snapshot even though the workers keep running.
	coord.Tick(nudge(9, 6, 7))
	if again := coord.Stats(); again != got {
		t.Fatalf("stats cache missed within TTL: %+v then %+v", got, again)
	}
}
