package cluster

import (
	"errors"
	"maps"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cpm/client"
	"cpm/internal/geom"
	"cpm/internal/metrics"
	"cpm/internal/model"
	"cpm/internal/wire"
)

// worker is one downstream server the coordinator shards onto.
type worker struct {
	idx  int
	addr string
	cl   *client.Client

	// mu serializes every wire call to this worker. An operation the
	// coordinator abandoned at the fan-out deadline may still be in
	// flight; a later re-sync must wait for it to drain, or the stale
	// request could land between the re-sync's Reset and Bootstrap and
	// corrupt the rebuilt state.
	mu sync.Mutex

	// seen is the server instance id from the latest handshake, written
	// by the client's OnConnect callback (dialing goroutine) and read by
	// the coordinator loop.
	seen atomic.Uint64
	// resyncing marks a background re-sync in flight (set by the loop,
	// cleared by the re-sync goroutine).
	resyncing atomic.Bool

	// Coordinator-loop state: synced reports whether the worker's state
	// is exactly the mirror's; instance is the server instance that
	// state was built on — a differing seen means the worker restarted
	// underneath us.
	synced   bool
	instance uint64

	rtt        *metrics.Histogram
	reconnects *metrics.Counter
}

var errOpTimeout = errors.New("cluster: operation timed out")

// synced returns the workers currently holding exact state.
func (c *Coordinator) synced() []*worker {
	out := make([]*worker, 0, len(c.workers))
	for _, w := range c.workers {
		if w.synced {
			out = append(out, w)
		}
	}
	return out
}

// beginOp is the prologue of every mutating operation: accept any
// background re-syncs that finished since the last operation (the mirror
// is unchanged in between, so their snapshots are still exact), demote
// workers whose server instance changed underneath a healthy connection,
// and stamp the operation.
func (c *Coordinator) beginOp() {
	for _, w := range c.workers {
		if w.synced && w.seen.Load() != w.instance {
			c.desync(w, errors.New("server instance changed (worker restart)"))
		}
	}
drain:
	for {
		select {
		case r := <-c.resyncCh:
			c.acceptResync(r)
		default:
			break drain
		}
	}
	c.gen++
}

// fanOut runs f concurrently against the given workers, bounded by
// Options.OpTimeout, and returns the merged diffs in ascending query id
// order — the single-monitor stream order. A worker that fails with a
// transport error or misses the deadline is desynced (its abandoned call,
// if any, drains behind its per-worker mutex). An application error — the
// server processed the request and rejected it — leaves the worker synced
// and is returned; with desyncOnAppErr (fleet-wide operations, where a
// rejection means the worker's state is in question) it desyncs instead.
func (c *Coordinator) fanOut(targets []*worker, desyncOnAppErr bool, f func(*worker) ([]model.ResultDiff, error)) ([]model.ResultDiff, error) {
	if len(targets) == 0 {
		return nil, nil
	}
	start := time.Now()
	type fanResult struct {
		w     *worker
		diffs []model.ResultDiff
		err   error
		rtt   time.Duration
	}
	ch := make(chan fanResult, len(targets))
	for _, w := range targets {
		go func(w *worker) {
			w.mu.Lock()
			defer w.mu.Unlock()
			t0 := time.Now()
			diffs, err := f(w)
			ch <- fanResult{w: w, diffs: diffs, err: err, rtt: time.Since(t0)}
		}(w)
	}
	var deadline <-chan time.Time
	if c.opts.OpTimeout > 0 {
		tm := time.NewTimer(c.opts.OpTimeout)
		defer tm.Stop()
		deadline = tm.C
	}
	answered := make(map[*worker]bool, len(targets))
	var merged []model.ResultDiff
	var appErr error
	for len(answered) < len(targets) {
		select {
		case r := <-ch:
			answered[r.w] = true
			r.w.rtt.Observe(r.rtt)
			switch {
			case r.err == nil:
				merged = append(merged, r.diffs...)
			case isTransportErr(r.err) || desyncOnAppErr:
				c.desync(r.w, r.err)
			default:
				appErr = r.err
			}
		case <-deadline:
			c.met.opTimeouts.Inc()
			for _, w := range targets {
				if !answered[w] {
					c.desync(w, errOpTimeout)
				}
			}
			c.observeFanout(start, merged)
			return merged, appErr
		}
	}
	c.observeFanout(start, merged)
	return merged, appErr
}

func (c *Coordinator) observeFanout(start time.Time, merged []model.ResultDiff) {
	c.met.fanout.ObserveSince(start)
	sort.SliceStable(merged, func(i, j int) bool { return merged[i].Query < merged[j].Query })
}

// isTransportErr separates "the request may not have reached the worker,
// or its fate is unknown" from "the worker processed and rejected it".
func isTransportErr(err error) bool {
	return errors.Is(err, client.ErrDisconnected) || errors.Is(err, client.ErrClosed)
}

// desync marks a worker's state unknown: it stops receiving operations,
// its owned queries' subscribers get an explicit sequence gap, and the
// next operation boundary starts a background re-sync.
func (c *Coordinator) desync(w *worker, err error) {
	if !w.synced {
		return
	}
	w.synced = false
	c.met.desyncs.Inc()
	c.met.workersSynced.Set(int64(c.SyncedWorkers()))
	c.logf("cluster: worker %d (%s) out of sync: %v", w.idx, w.addr, err)
	owned := c.ownedIDs(w.idx)
	if len(owned) > 0 {
		c.gapQueries(owned...)
	}
}

// gapQueries advances interested subscribers' sequence numbers without an
// event, so the loss surfaces downstream as an explicit Gap frame.
func (c *Coordinator) gapQueries(ids ...model.QueryID) {
	c.met.gapQueries.Add(int64(len(ids)))
	if c.hub != nil {
		c.hub.Gap(ids...)
	}
}

// ownedIDs returns the installed queries owned by worker idx, ascending.
func (c *Coordinator) ownedIDs(idx int) []model.QueryID {
	var ids []model.QueryID
	for id := range c.defs {
		if c.owner(id) == idx {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// ---- Background re-sync ---------------------------------------------------

// resyncSnap is everything a re-sync goroutine may touch: an immutable
// copy of the mirror, stamped with the operation generation it reflects.
type resyncSnap struct {
	gen  uint64
	objs map[model.ObjectID]geom.Point
	defs []wire.Register // the worker's owned queries, ascending id
}

// resyncResult reports one finished re-sync back to the coordinator loop.
type resyncResult struct {
	idx      int
	gen      uint64
	instance uint64
	results  map[model.QueryID][]model.Neighbor // fresh owned results
	err      error
}

// spawnResyncs starts a background rebuild for every out-of-sync worker
// that does not have one in flight. It runs at the end of each mutating
// operation, so the snapshot reflects everything the worker missed.
func (c *Coordinator) spawnResyncs() {
	for _, w := range c.workers {
		if w.synced || w.resyncing.Load() {
			continue
		}
		w.resyncing.Store(true)
		snap := resyncSnap{gen: c.gen, objs: maps.Clone(c.objs)}
		for _, id := range c.ownedIDs(w.idx) {
			snap.defs = append(snap.defs, cloneDef(c.defs[id]))
		}
		go func(w *worker) {
			r := runResync(w, snap)
			c.resyncCh <- r
			w.resyncing.Store(false)
		}(w)
	}
}

// runResync rebuilds one worker from a mirror snapshot: Reset, Bootstrap,
// re-register every owned query, collecting each fresh initial result. It
// touches no coordinator state — only the snapshot and the worker's
// client — so it is safe off the single-threaded loop. The per-worker
// mutex makes it wait for any abandoned in-flight call first.
func runResync(w *worker, snap resyncSnap) resyncResult {
	w.mu.Lock()
	defer w.mu.Unlock()
	res := resyncResult{idx: w.idx, gen: snap.gen, results: make(map[model.QueryID][]model.Neighbor, len(snap.defs))}
	res.instance = w.cl.InstanceID()
	if err := w.cl.Reset(); err != nil {
		res.err = err
		return res
	}
	if err := w.cl.Bootstrap(snap.objs); err != nil {
		res.err = err
		return res
	}
	for _, def := range snap.defs {
		diffs, err := w.cl.RegisterDefDiffs(def)
		if err != nil {
			res.err = err
			return res
		}
		for _, d := range diffs {
			if d.Query == def.ID && d.Kind != model.DiffRemove {
				res.results[d.Query] = d.Result
			}
		}
	}
	// The whole rebuild must have landed on one server instance: a
	// restart mid-way would leave later registrations on a worker that
	// never saw the Bootstrap.
	if got := w.cl.InstanceID(); got != res.instance {
		res.err = errors.New("cluster: worker restarted during re-sync")
		return res
	}
	return res
}

// acceptResync folds a finished re-sync back in. It is only valid if no
// operation ran since its snapshot (the worker would have missed it) and
// the worker's instance still matches; otherwise the worker stays out of
// sync and the next operation boundary retries with a fresh snapshot.
func (c *Coordinator) acceptResync(r resyncResult) {
	w := c.workers[r.idx]
	if r.err != nil {
		c.met.resyncFails.Inc()
		c.logf("cluster: re-sync of worker %d (%s) failed: %v", w.idx, w.addr, r.err)
		return
	}
	if r.gen != c.gen || r.instance != w.seen.Load() {
		return // stale snapshot or the worker moved again: retry
	}
	w.synced = true
	w.instance = r.instance
	c.met.resyncs.Inc()
	c.met.workersSynced.Set(int64(c.SyncedWorkers()))
	c.logf("cluster: worker %d (%s) re-synced (%d queries)", w.idx, w.addr, len(r.results))
	// Reconciliation: subscribers saw a gap while the worker was away;
	// one synthetic full-result diff per drifted query re-converges them
	// from the very next event.
	var recon []model.ResultDiff
	for _, id := range c.ownedIDs(w.idx) {
		fresh := r.results[id]
		if !neighborsEqual(c.results[id], fresh) {
			recon = append(recon, synthDiff(id, c.results[id], fresh))
			c.results[id] = fresh
		}
	}
	c.publish(recon)
}

// synthDiff builds the DiffUpdate describing the transition old → new,
// with the delta fields a subscriber expects (entered/exited in order,
// re-ranked survivors with their new distances).
func synthDiff(id model.QueryID, old, new []model.Neighbor) model.ResultDiff {
	oldRank := make(map[model.ObjectID]int, len(old))
	for i, n := range old {
		oldRank[n.ID] = i
	}
	newSet := make(map[model.ObjectID]bool, len(new))
	d := model.ResultDiff{Query: id, Kind: model.DiffUpdate, Result: new}
	for i, n := range new {
		newSet[n.ID] = true
		if j, ok := oldRank[n.ID]; !ok {
			d.Entered = append(d.Entered, n)
		} else if j != i || old[j].Dist != n.Dist {
			d.Reranked = append(d.Reranked, n)
		}
	}
	for _, n := range old {
		if !newSet[n.ID] {
			d.Exited = append(d.Exited, n.ID)
		}
	}
	return d
}
