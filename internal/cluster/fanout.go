package cluster

import (
	"errors"
	"fmt"
	"maps"
	"math/rand"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"cpm/client"
	"cpm/internal/geom"
	"cpm/internal/metrics"
	"cpm/internal/model"
	"cpm/internal/wire"
)

// Health is the coordinator's per-worker health state: Healthy workers
// serve cleanly, Degraded ones are on probation (recent retries, or just
// re-synced — watch them), Desynced ones hold unknown state and receive
// no operations until a re-sync is accepted. Exposed per worker as the
// cpm_coord_worker<N>_health gauge (0/1/2).
type Health int

const (
	Healthy Health = iota
	Degraded
	Desynced
)

// String returns the health state name used in logs and docs.
func (h Health) String() string {
	switch h {
	case Healthy:
		return "healthy"
	case Degraded:
		return "degraded"
	case Desynced:
		return "desynced"
	default:
		return fmt.Sprintf("health(%d)", int(h))
	}
}

// healthyStreak is how many consecutive clean (no-retry) operations a
// degraded worker must serve before it is promoted back to Healthy.
const healthyStreak = 3

// worker is one downstream server the coordinator shards onto.
type worker struct {
	idx  int
	addr string
	cl   *client.Client

	// mu serializes every wire call to this worker. An operation the
	// coordinator abandoned at the fan-out deadline may still be in
	// flight; a later re-sync must wait for it to drain, or the stale
	// request could land between the re-sync's Reset and Bootstrap and
	// corrupt the rebuilt state.
	mu sync.Mutex

	// seen is the server instance id from the latest handshake, written
	// by the client's OnConnect callback (dialing goroutine) and read by
	// the coordinator loop.
	seen atomic.Uint64
	// resyncing marks a background re-sync in flight (set by the loop,
	// cleared by the re-sync goroutine).
	resyncing atomic.Bool

	// Coordinator-loop state: synced reports whether the worker's state
	// is exactly the mirror's; instance is the server instance that
	// state was built on — a differing seen means the worker restarted
	// underneath us.
	synced   bool
	instance uint64

	// Health machine state (coordinator loop only): health is the
	// current state, cleanOps counts consecutive retry-free operations
	// while degraded.
	health   Health
	cleanOps int

	// Dirty tracking for incremental re-sync, maintained only while the
	// worker is out of sync (nil when synced): every object and owned
	// query the worker may have missed or half-applied since it left the
	// fleet. needFull forces the Reset+Bootstrap path (set when a
	// fleet-wide Bootstrap/Reset ran while away, or tracking is
	// otherwise insufficient).
	dirtyObjs    map[model.ObjectID]bool
	dirtyQueries map[model.QueryID]bool
	needFull     bool

	rtt        *metrics.Histogram
	reconnects *metrics.Counter
	healthG    *metrics.Gauge
}

var errOpTimeout = errors.New("cluster: operation timed out")

// synced returns the workers currently holding exact state.
func (c *Coordinator) synced() []*worker {
	out := make([]*worker, 0, len(c.workers))
	for _, w := range c.workers {
		if w.synced {
			out = append(out, w)
		}
	}
	return out
}

// beginOp is the prologue of every mutating operation: accept any
// background re-syncs that finished since the last operation (the mirror
// is unchanged in between, so their snapshots are still exact), demote
// workers whose server instance changed underneath a healthy connection,
// and stamp the operation.
func (c *Coordinator) beginOp() {
	for _, w := range c.workers {
		if w.synced && w.seen.Load() != w.instance {
			c.desync(w, errors.New("server instance changed (worker restart)"))
		}
	}
drain:
	for {
		select {
		case r := <-c.resyncCh:
			c.acceptResync(r)
		default:
			break drain
		}
	}
	c.gen++
	c.opObjIDs, c.opQueryIDs, c.opFull = nil, nil, false
}

// chargeDesynced charges the current operation's footprint to every
// worker already out of sync (desync charges workers lost during this
// very operation) — they are missing this operation too.
func (c *Coordinator) chargeDesynced() {
	for _, w := range c.workers {
		if !w.synced {
			c.markDirty(w)
		}
	}
}

// fanOut runs f concurrently against the given workers, bounded by
// Options.OpTimeout, and returns the merged diffs in ascending query id
// order — the single-monitor stream order. A worker that fails with a
// transport error or misses the deadline is desynced (its abandoned call,
// if any, drains behind its per-worker mutex). An application error — the
// server processed the request and rejected it — leaves the worker synced
// and is returned; with desyncOnAppErr (fleet-wide operations, where a
// rejection means the worker's state is in question) it desyncs instead.
//
// ErrUnsent failures — the request provably never reached the wire, so a
// repeat cannot double-apply — are retried in place with jittered backoff
// until the deadline, instead of desyncing immediately: a worker caught
// mid-reconnect (restart, transient partition) rejoins without paying a
// full re-sync. Retries are counted (cpm_coord_op_retries_total) and
// demote the worker to Degraded; healthyStreak clean operations promote
// it back.
func (c *Coordinator) fanOut(targets []*worker, desyncOnAppErr bool, f func(*worker) ([]model.ResultDiff, error)) ([]model.ResultDiff, error) {
	if len(targets) == 0 {
		return nil, nil
	}
	start := time.Now()
	var until time.Time // zero: no deadline (OpTimeout disabled)
	if c.opts.OpTimeout > 0 {
		until = start.Add(c.opts.OpTimeout)
	}
	type fanResult struct {
		w       *worker
		diffs   []model.ResultDiff
		err     error
		at      time.Time // when the worker's call started (post worker mutex)
		rtt     time.Duration
		retries int
	}
	ch := make(chan fanResult, len(targets))
	for _, w := range targets {
		go func(w *worker) {
			w.mu.Lock()
			defer w.mu.Unlock()
			t0 := time.Now()
			var retries int
			diffs, err := f(w)
			for errors.Is(err, client.ErrUnsent) && retryWait(until, retries) {
				retries++
				diffs, err = f(w)
			}
			ch <- fanResult{w: w, diffs: diffs, err: err, at: t0, rtt: time.Since(t0), retries: retries}
		}(w)
	}
	var deadline <-chan time.Time
	if c.opts.OpTimeout > 0 {
		tm := time.NewTimer(c.opts.OpTimeout)
		defer tm.Stop()
		deadline = tm.C
	}
	answered := make(map[*worker]bool, len(targets))
	var merged []model.ResultDiff
	var appErr error
	for len(answered) < len(targets) {
		select {
		case r := <-ch:
			answered[r.w] = true
			r.w.rtt.Observe(r.rtt)
			// The collector runs on the coordinator loop, so reading
			// c.opSpan here is race-free; the span covers the whole
			// round trip (dial/send/wait/decode) behind the worker mutex.
			c.opSpan.ChildAt(fmt.Sprintf("worker%d", r.w.idx), r.at, r.rtt)
			if r.retries > 0 {
				c.met.opRetries.Add(int64(r.retries))
			}
			switch {
			case r.err == nil:
				c.noteOutcome(r.w, r.retries)
				merged = append(merged, r.diffs...)
			case isTransportErr(r.err) || desyncOnAppErr:
				c.desync(r.w, r.err)
			default:
				appErr = r.err
			}
		case <-deadline:
			c.met.opTimeouts.Inc()
			for _, w := range targets {
				if !answered[w] {
					c.desync(w, errOpTimeout)
					c.opSpan.ChildAt(fmt.Sprintf("worker%d/timeout", w.idx), start, time.Since(start))
				}
			}
			c.observeFanout(start, merged)
			return merged, appErr
		}
	}
	c.observeFanout(start, merged)
	return merged, appErr
}

// retryWait decides whether an ErrUnsent attempt gets another try and, if
// so, sleeps the jittered backoff first. With no deadline the retries are
// capped instead (an unreachable worker must not stall a deadline-less
// operation forever — the pre-retry behavior was to give up at once).
func retryWait(until time.Time, retries int) bool {
	const (
		base       = 2 * time.Millisecond
		maxDelay   = 50 * time.Millisecond
		capNoBound = 2
	)
	if until.IsZero() && retries >= capNoBound {
		return false
	}
	ceil := base << retries
	if ceil > maxDelay || ceil <= 0 {
		ceil = maxDelay
	}
	d := time.Duration(1 + rand.Int63n(int64(ceil)))
	if !until.IsZero() {
		left := time.Until(until)
		if left <= 0 {
			return false
		}
		if d > left {
			d = left
		}
	}
	time.Sleep(d)
	return true
}

// noteOutcome runs the health machine on one successful operation:
// retries demote to Degraded, a streak of clean operations promotes a
// degraded worker back to Healthy.
func (c *Coordinator) noteOutcome(w *worker, retries int) {
	if !w.synced {
		return
	}
	if retries > 0 {
		w.cleanOps = 0
		c.setHealth(w, Degraded)
		return
	}
	w.cleanOps++
	if w.health == Degraded && w.cleanOps >= healthyStreak {
		c.setHealth(w, Healthy)
	}
}

// setHealth moves one worker's health state and its gauge together.
func (c *Coordinator) setHealth(w *worker, h Health) {
	if w.health == h {
		return
	}
	w.health = h
	w.healthG.Set(int64(h))
	c.logf("cluster: worker %d (%s) health: %s", w.idx, w.addr, h)
}

func (c *Coordinator) observeFanout(start time.Time, merged []model.ResultDiff) {
	c.met.fanout.ObserveSince(start)
	sort.SliceStable(merged, func(i, j int) bool { return merged[i].Query < merged[j].Query })
}

// isTransportErr separates "the request may not have reached the worker,
// or its fate is unknown" from "the worker processed and rejected it".
func isTransportErr(err error) bool {
	return errors.Is(err, client.ErrDisconnected) || errors.Is(err, client.ErrClosed)
}

// desync marks a worker's state unknown: it stops receiving operations,
// its owned queries' subscribers get an explicit sequence gap, and the
// next operation boundary starts a background re-sync. Dirty tracking
// begins here, seeded with the in-flight operation's footprint — the
// worker may have half-applied it, so those ids must be replayed even if
// nothing else changes while it is away.
func (c *Coordinator) desync(w *worker, err error) {
	if !w.synced {
		return
	}
	w.synced = false
	w.cleanOps = 0
	c.setHealth(w, Desynced)
	w.dirtyObjs = make(map[model.ObjectID]bool)
	w.dirtyQueries = make(map[model.QueryID]bool)
	w.needFull = false
	c.markDirty(w)
	c.met.desyncs.Inc()
	c.met.workersSynced.Set(int64(c.SyncedWorkers()))
	c.logf("cluster: worker %d (%s) out of sync: %v", w.idx, w.addr, err)
	owned := c.ownedIDs(w.idx)
	if len(owned) > 0 {
		c.gapQueries(owned...)
	}
}

// markDirty charges the current operation's footprint (c.opObjIDs,
// c.opQueryIDs, c.opFull — stamped by each mutating operation before its
// fan-out) to one out-of-sync worker's dirty sets.
func (c *Coordinator) markDirty(w *worker) {
	if c.opFull || w.dirtyObjs == nil {
		w.needFull = true
		return
	}
	for _, id := range c.opObjIDs {
		w.dirtyObjs[id] = true
	}
	for _, id := range c.opQueryIDs {
		if c.owner(id) == w.idx {
			w.dirtyQueries[id] = true
		}
	}
}

// gapQueries advances interested subscribers' sequence numbers without an
// event, so the loss surfaces downstream as an explicit Gap frame.
func (c *Coordinator) gapQueries(ids ...model.QueryID) {
	c.met.gapQueries.Add(int64(len(ids)))
	if c.hub != nil {
		c.hub.Gap(ids...)
	}
}

// ownedIDs returns the installed queries owned by worker idx, ascending.
func (c *Coordinator) ownedIDs(idx int) []model.QueryID {
	var ids []model.QueryID
	for id := range c.defs {
		if c.owner(id) == idx {
			ids = append(ids, id)
		}
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// ---- Background re-sync ---------------------------------------------------

// resyncSnap is everything a re-sync goroutine may touch: an immutable
// copy of the relevant mirror state, stamped with the operation
// generation it reflects. full selects Reset+Bootstrap; otherwise the
// snapshot carries only the delta the worker missed.
type resyncSnap struct {
	gen  uint64
	full bool

	// Full rebuild: the whole object mirror + every owned def.
	objs map[model.ObjectID]geom.Point
	defs []wire.Register // owned queries to (re-)register, ascending id

	// Incremental replay (full == false):
	expect  uint64      // the instance the worker's retained state lives on
	delta   model.Batch // delete/insert pairs correcting the dirty objects
	removed []model.QueryID
	frozen  map[model.QueryID][]model.Neighbor // mirror results of untouched owned queries
}

// resyncResult reports one finished re-sync back to the coordinator loop.
type resyncResult struct {
	idx      int
	gen      uint64
	full     bool
	instance uint64
	objsSent int                                // objects shipped (Bootstrap or delta)
	results  map[model.QueryID][]model.Neighbor // fresh owned results
	err      error
}

// spawnResyncs starts a background rebuild for every out-of-sync worker
// that does not have one in flight. It runs at the end of each mutating
// operation, so the snapshot reflects everything the worker missed.
//
// The rebuild is incremental — a delta replay of just the dirty objects
// and queries — whenever the worker's retained state is still usable:
// the same server instance holds it, no fleet-wide Bootstrap/Reset ran
// while it was away, and the dirty set is smaller than re-shipping the
// world. Otherwise the full Reset+Bootstrap path runs.
func (c *Coordinator) spawnResyncs() {
	for _, w := range c.workers {
		if w.synced || w.resyncing.Load() {
			continue
		}
		w.resyncing.Store(true)
		snap := c.snapshotFor(w)
		go func(w *worker) {
			r := runResync(w, snap)
			c.resyncCh <- r
			w.resyncing.Store(false)
		}(w)
	}
}

// snapshotFor builds the re-sync snapshot for one out-of-sync worker,
// choosing the incremental or full mode.
func (c *Coordinator) snapshotFor(w *worker) resyncSnap {
	full := w.needFull ||
		w.dirtyObjs == nil ||
		w.seen.Load() != w.instance ||
		2*len(w.dirtyObjs) > len(c.objs)
	snap := resyncSnap{gen: c.gen, full: full}
	if full {
		snap.objs = maps.Clone(c.objs)
		for _, id := range c.ownedIDs(w.idx) {
			snap.defs = append(snap.defs, cloneDef(c.defs[id]))
		}
		return snap
	}
	snap.expect = w.instance
	for _, id := range sortedObjIDs(w.dirtyObjs) {
		// Delete+Insert lands on the mirror position whether or not the
		// worker saw the original update; a bare Delete covers objects
		// that vanished while it was away.
		snap.delta.Objects = append(snap.delta.Objects, model.Update{ID: id, Kind: model.Delete})
		if p, ok := c.objs[id]; ok {
			snap.delta.Objects = append(snap.delta.Objects, model.Update{ID: id, Kind: model.Insert, New: p})
		}
	}
	dirtyQ := make([]model.QueryID, 0, len(w.dirtyQueries))
	for id := range w.dirtyQueries {
		dirtyQ = append(dirtyQ, id)
	}
	sort.Slice(dirtyQ, func(i, j int) bool { return dirtyQ[i] < dirtyQ[j] })
	for _, id := range dirtyQ {
		if def, ok := c.defs[id]; ok {
			snap.defs = append(snap.defs, cloneDef(def))
		} else {
			snap.removed = append(snap.removed, id)
		}
	}
	// Untouched owned queries keep the results they froze at — seed them
	// so acceptance can tell "unchanged" from "unknown".
	snap.frozen = make(map[model.QueryID][]model.Neighbor)
	for _, id := range c.ownedIDs(w.idx) {
		if !w.dirtyQueries[id] {
			snap.frozen[id] = c.results[id]
		}
	}
	return snap
}

// sortedObjIDs returns the keys of set in ascending order.
func sortedObjIDs(set map[model.ObjectID]bool) []model.ObjectID {
	ids := make([]model.ObjectID, 0, len(set))
	for id := range set {
		ids = append(ids, id)
	}
	sort.Slice(ids, func(i, j int) bool { return ids[i] < ids[j] })
	return ids
}

// runResync rebuilds one worker from a mirror snapshot. It touches no
// coordinator state — only the snapshot and the worker's client — so it
// is safe off the single-threaded loop. The per-worker mutex makes it
// wait for any abandoned in-flight call first. Both modes are idempotent
// end to end, so a failed attempt retries from scratch safely.
func runResync(w *worker, snap resyncSnap) resyncResult {
	w.mu.Lock()
	defer w.mu.Unlock()
	if snap.full {
		return runResyncFull(w, snap)
	}
	return runResyncIncremental(w, snap)
}

// runResyncFull is the Reset+Bootstrap path: wipe the worker, ship the
// whole object mirror, re-register every owned query.
func runResyncFull(w *worker, snap resyncSnap) resyncResult {
	res := resyncResult{idx: w.idx, gen: snap.gen, full: true, results: make(map[model.QueryID][]model.Neighbor, len(snap.defs))}
	res.instance = w.cl.InstanceID()
	if err := w.cl.Reset(); err != nil {
		res.err = err
		return res
	}
	if err := w.cl.Bootstrap(snap.objs); err != nil {
		res.err = err
		return res
	}
	res.objsSent = len(snap.objs)
	for _, def := range snap.defs {
		diffs, err := w.cl.RegisterDefDiffs(def)
		if err != nil {
			res.err = err
			return res
		}
		for _, d := range diffs {
			if d.Query == def.ID && d.Kind != model.DiffRemove {
				res.results[d.Query] = d.Result
			}
		}
	}
	// The whole rebuild must have landed on one server instance: a
	// restart mid-way would leave later registrations on a worker that
	// never saw the Bootstrap.
	if got := w.cl.InstanceID(); got != res.instance {
		res.err = errors.New("cluster: worker restarted during re-sync")
		return res
	}
	return res
}

// runResyncIncremental replays just the delta the worker missed: one tick
// of delete/insert pairs correcting the dirty objects (the worker's own
// engine then refreshes every affected query), removal of queries that
// died while it was away, and remove+re-register of dirty queries. Valid
// only while the worker's retained state survives — the instance id is
// checked on both ends, and any restart aborts to the full path.
func runResyncIncremental(w *worker, snap resyncSnap) resyncResult {
	res := resyncResult{idx: w.idx, gen: snap.gen, results: make(map[model.QueryID][]model.Neighbor, len(snap.frozen)+len(snap.defs))}
	res.instance = w.cl.InstanceID()
	if res.instance != snap.expect {
		res.err = errors.New("cluster: worker restarted; incremental re-sync impossible")
		return res
	}
	maps.Copy(res.results, snap.frozen)
	fold := func(diffs []model.ResultDiff) {
		for _, d := range diffs {
			if d.Kind == model.DiffRemove {
				delete(res.results, d.Query)
			} else {
				res.results[d.Query] = d.Result
			}
		}
	}
	if len(snap.delta.Objects) > 0 {
		diffs, err := w.cl.TickDiffs(snap.delta)
		if err != nil {
			res.err = err
			return res
		}
		for _, u := range snap.delta.Objects {
			if u.Kind == model.Insert {
				res.objsSent++
			}
		}
		fold(diffs)
	}
	for _, id := range snap.removed {
		if _, err := w.cl.RemoveQueryDiffs(id); err != nil {
			res.err = err
			return res
		}
	}
	for _, def := range snap.defs {
		// Remove-then-register covers moved and newly-registered queries
		// alike (removing an uninstalled query is a no-op).
		if _, err := w.cl.RemoveQueryDiffs(def.ID); err != nil {
			res.err = err
			return res
		}
		diffs, err := w.cl.RegisterDefDiffs(def)
		if err != nil {
			res.err = err
			return res
		}
		for _, d := range diffs {
			if d.Query == def.ID && d.Kind != model.DiffRemove {
				res.results[d.Query] = d.Result
			}
		}
	}
	if got := w.cl.InstanceID(); got != res.instance {
		res.err = errors.New("cluster: worker restarted during re-sync")
		return res
	}
	return res
}

// acceptResync folds a finished re-sync back in. It is only valid if no
// operation ran since its snapshot (the worker would have missed it) and
// the worker's instance still matches; otherwise the worker stays out of
// sync and the next operation boundary retries with a fresh snapshot.
func (c *Coordinator) acceptResync(r resyncResult) {
	w := c.workers[r.idx]
	if r.err != nil {
		c.met.resyncFails.Inc()
		c.logf("cluster: re-sync of worker %d (%s) failed: %v", w.idx, w.addr, r.err)
		return
	}
	if !c.skipGenCheck && r.gen != c.gen {
		return // stale snapshot — the worker missed operations: retry
	}
	if r.instance != w.seen.Load() {
		return // the worker moved again mid-rebuild: retry
	}
	w.synced = true
	w.instance = r.instance
	w.dirtyObjs, w.dirtyQueries = nil, nil
	w.needFull = false
	w.cleanOps = 0
	c.setHealth(w, Degraded) // probation: healthyStreak clean ops promote
	c.met.resyncs.Inc()
	if r.full {
		c.met.resyncFull.Inc()
	} else {
		c.met.resyncIncr.Inc()
	}
	c.met.resyncObjects.Add(int64(r.objsSent))
	c.met.workersSynced.Set(int64(c.SyncedWorkers()))
	mode := "incremental"
	if r.full {
		mode = "full"
	}
	c.logf("cluster: worker %d (%s) re-synced (%s, %d objects, %d queries)", w.idx, w.addr, mode, r.objsSent, len(r.results))
	// Reconciliation: subscribers saw a gap while the worker was away;
	// one synthetic full-result diff per drifted query re-converges them
	// from the very next event.
	var recon []model.ResultDiff
	for _, id := range c.ownedIDs(w.idx) {
		fresh := r.results[id]
		if !neighborsEqual(c.results[id], fresh) {
			recon = append(recon, synthDiff(id, c.results[id], fresh))
			c.results[id] = fresh
		}
	}
	c.publish(recon)
}

// synthDiff builds the DiffUpdate describing the transition old → new,
// with the delta fields a subscriber expects (entered/exited in order,
// re-ranked survivors with their new distances).
func synthDiff(id model.QueryID, old, new []model.Neighbor) model.ResultDiff {
	oldRank := make(map[model.ObjectID]int, len(old))
	for i, n := range old {
		oldRank[n.ID] = i
	}
	newSet := make(map[model.ObjectID]bool, len(new))
	d := model.ResultDiff{Query: id, Kind: model.DiffUpdate, Result: new}
	for i, n := range new {
		newSet[n.ID] = true
		if j, ok := oldRank[n.ID]; !ok {
			d.Entered = append(d.Entered, n)
		} else if j != i || old[j].Dist != n.Dist {
			d.Reranked = append(d.Reranked, n)
		}
	}
	for _, n := range old {
		if !newSet[n.ID] {
			d.Exited = append(d.Exited, n.ID)
		}
	}
	return d
}
