package cluster

import "cpm/internal/metrics"

// coordMetrics is the coordinator's own instrument set, on a registry
// separate from the upstream server's (cmd/cpmcoord exposes both on one
// page). Every name is documented in docs/CLUSTER.md, cross-checked by a
// test; the per-worker instruments (cpm_coord_worker<N>_*) are registered
// in New, one pair per worker.
type coordMetrics struct {
	reg *metrics.Registry

	workers       *metrics.Gauge     // cpm_coord_workers
	workersSynced *metrics.Gauge     // cpm_coord_workers_synced
	fanout        *metrics.Histogram // cpm_coord_fanout_ns
	opTimeouts    *metrics.Counter   // cpm_coord_op_timeouts_total
	opRetries     *metrics.Counter   // cpm_coord_op_retries_total
	desyncs       *metrics.Counter   // cpm_coord_worker_desyncs_total
	resyncs       *metrics.Counter   // cpm_coord_resyncs_total
	resyncFails   *metrics.Counter   // cpm_coord_resync_failures_total
	resyncFull    *metrics.Counter   // cpm_coord_resync_full_total
	resyncIncr    *metrics.Counter   // cpm_coord_resync_incremental_total
	resyncObjects *metrics.Counter   // cpm_coord_resync_objects_sent_total
	gapQueries    *metrics.Counter   // cpm_coord_gap_queries_total
}

func newCoordMetrics(nWorkers int) *coordMetrics {
	reg := metrics.NewRegistry()
	return &coordMetrics{
		reg:           reg,
		workers:       reg.Gauge("cpm_coord_workers"),
		workersSynced: reg.Gauge("cpm_coord_workers_synced"),
		fanout:        reg.Histogram("cpm_coord_fanout_ns"),
		opTimeouts:    reg.Counter("cpm_coord_op_timeouts_total"),
		opRetries:     reg.Counter("cpm_coord_op_retries_total"),
		desyncs:       reg.Counter("cpm_coord_worker_desyncs_total"),
		resyncs:       reg.Counter("cpm_coord_resyncs_total"),
		resyncFails:   reg.Counter("cpm_coord_resync_failures_total"),
		resyncFull:    reg.Counter("cpm_coord_resync_full_total"),
		resyncIncr:    reg.Counter("cpm_coord_resync_incremental_total"),
		resyncObjects: reg.Counter("cpm_coord_resync_objects_sent_total"),
		gapQueries:    reg.Counter("cpm_coord_gap_queries_total"),
	}
}
