package cluster_test

import (
	"os"
	"regexp"
	"testing"
	"time"
)

// TestClusterDocsComplete keeps docs/CLUSTER.md honest the same way the
// server's docs test keeps METRICS.md honest: every metric the
// coordinator registry exposes must appear in the reference table, and
// the table must not document metrics that no longer exist. Per-worker
// instruments (cpm_coord_worker0_rtt_ns, ...) are documented once as
// cpm_coord_worker<N>_*, so live names are normalized before matching.
func TestClusterDocsComplete(t *testing.T) {
	data, err := os.ReadFile("../../docs/CLUSTER.md")
	if err != nil {
		t.Fatalf("docs/CLUSTER.md unreadable: %v", err)
	}
	row := regexp.MustCompile("(?m)^\\| `(cpm_coord_[a-zA-Z0-9_<>]+)`")
	documented := map[string]bool{}
	for _, m := range row.FindAllStringSubmatch(string(data), -1) {
		documented[m[1]] = true
	}
	if len(documented) == 0 {
		t.Fatal("no coordinator metric rows found in docs/CLUSTER.md")
	}

	coord, _ := startCluster(t, 1, 5*time.Second)
	perWorker := regexp.MustCompile(`^cpm_coord_worker\d+_`)
	live := map[string]bool{}
	for _, name := range coord.Metrics().Names() {
		live[perWorker.ReplaceAllString(name, "cpm_coord_worker<N>_")] = true
	}

	for name := range live {
		if !documented[name] {
			t.Errorf("metric %s exists but is not documented in docs/CLUSTER.md", name)
		}
	}
	for name := range documented {
		if !live[name] {
			t.Errorf("docs/CLUSTER.md documents %s, which no registry exposes", name)
		}
	}
}
