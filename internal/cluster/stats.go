package cluster

import (
	"time"

	"cpm/internal/model"
	"cpm/internal/wire"
)

// statsTTL is how long one fleet-stats poll is served from cache. A
// metrics scrape reads GridSize, Rebalances and six Stats fields back to
// back; the cache collapses those into one poll, and bounds how often
// the (network-touching) aggregation can run at all.
const statsTTL = time.Second

// fleetStats is one aggregated engine-stats snapshot across the fleet.
type fleetStats struct {
	grid       int
	rebalances int64
	stats      model.Stats
}

// fleetStats returns the cached aggregation, refreshing it when stale.
func (c *Coordinator) fleetStats() fleetStats {
	c.statsMu.Lock()
	defer c.statsMu.Unlock()
	if c.statsAt.IsZero() || time.Since(c.statsAt) > statsTTL {
		c.statsCache = c.pollFleetStats()
		c.statsAt = time.Now()
	}
	return c.statsCache
}

// pollFleetStats asks every worker for its wire Stats frame concurrently
// and folds the engine counters: work counters and rebalances sum across
// the fleet, the grid size is the fleet maximum. The poll is strictly
// read-only and best-effort — a worker that fails or misses the deadline
// simply contributes nothing (it is NOT desynced; observability must
// never eject a worker). It deliberately bypasses the per-worker op
// mutex: a read racing an in-flight operation or re-sync is harmless,
// and waiting behind one could stall a metrics scrape.
func (c *Coordinator) pollFleetStats() fleetStats {
	timeout := c.opts.OpTimeout
	if timeout <= 0 {
		timeout = 2 * time.Second
	}
	ch := make(chan []wire.Stat, len(c.workers))
	for _, w := range c.workers {
		go func(w *worker) {
			st, err := w.cl.ServerStats()
			if err != nil {
				ch <- nil
				return
			}
			ch <- st
		}(w)
	}
	var out fleetStats
	tm := time.NewTimer(timeout)
	defer tm.Stop()
	for range c.workers {
		select {
		case st := <-ch:
			foldWorkerStats(&out, st)
		case <-tm.C:
			return out
		}
	}
	return out
}

// foldWorkerStats accumulates one worker's stats snapshot into out.
func foldWorkerStats(out *fleetStats, st []wire.Stat) {
	for _, s := range st {
		switch s.Name {
		case "cpm_monitor_grid_size":
			if g := int(s.Value); g > out.grid {
				out.grid = g
			}
		case "cpm_monitor_rebalances_total":
			out.rebalances += s.Value
		case "cpm_monitor_cell_accesses_total":
			out.stats.CellAccesses += s.Value
		case "cpm_monitor_objects_scanned_total":
			out.stats.ObjectsProcessed += s.Value
		case "cpm_monitor_heap_ops_total":
			out.stats.HeapOps += s.Value
		case "cpm_monitor_recomputations_total":
			out.stats.Recomputations += s.Value
		case "cpm_monitor_full_searches_total":
			out.stats.FullSearches += s.Value
		case "cpm_monitor_short_circuits_total":
			out.stats.ShortCircuits += s.Value
		}
	}
}
