package grid

import (
	"testing"

	"cpm/internal/geom"
	"cpm/internal/model"
)

// TestEpochCountsWriteBatches pins the epoch semantics: every completed
// write window — explicit BeginWrites/EndWrites pairs, ApplyBatch calls
// and Rebuilds, which bracket themselves — advances the epoch by exactly
// one, shared or not.
func TestEpochCountsWriteBatches(t *testing.T) {
	g := NewUnit(8)
	if g.Epoch() != 0 {
		t.Fatalf("fresh grid epoch = %d, want 0", g.Epoch())
	}
	if g.Shared() {
		t.Fatal("fresh grid reports shared mode")
	}

	g.BeginWrites()
	if g.Epoch() != 0 {
		t.Fatalf("epoch advanced inside an open window: %d", g.Epoch())
	}
	if err := g.Insert(1, geom.Point{X: 0.5, Y: 0.5}); err != nil {
		t.Fatal(err)
	}
	g.EndWrites()
	if g.Epoch() != 1 {
		t.Fatalf("epoch after bootstrap window = %d, want 1", g.Epoch())
	}

	log, invalid := g.ApplyBatch([]model.Update{
		model.MoveUpdate(1, geom.Point{X: 0.5, Y: 0.5}, geom.Point{X: 0.25, Y: 0.25}),
		model.InsertUpdate(2, geom.Point{X: 0.75, Y: 0.75}),
		model.MoveUpdate(99, geom.Point{}, geom.Point{X: 0.1, Y: 0.1}), // unknown id
	}, nil)
	if g.Epoch() != 2 {
		t.Fatalf("epoch after ApplyBatch = %d, want 2", g.Epoch())
	}
	if invalid != 1 {
		t.Fatalf("ApplyBatch invalid = %d, want 1", invalid)
	}
	if len(log) != 2 {
		t.Fatalf("ApplyBatch logged %d entries, want 2: %+v", len(log), log)
	}
	if log[0].Kind != model.Move || log[0].ID != 1 || log[0].New != g.CellOf(geom.Point{X: 0.25, Y: 0.25}) {
		t.Fatalf("move log entry %+v", log[0])
	}
	if log[1].Kind != model.Insert || log[1].ID != 2 || log[1].Old != NoCell {
		t.Fatalf("insert log entry %+v", log[1])
	}

	g.Rebuild(16)
	if g.Epoch() != 3 {
		t.Fatalf("epoch after Rebuild = %d, want 3", g.Epoch())
	}
	if g.Count() != 2 {
		t.Fatalf("object count after rebuild = %d, want 2", g.Count())
	}
}

// TestApplyBatchDeleteLogsOldCell checks the delete path of the write log:
// the logged entry carries the deceased object's last position and cell so
// shards can route the event through their influence lists.
func TestApplyBatchDeleteLogsOldCell(t *testing.T) {
	g := NewUnit(8)
	p := geom.Point{X: 0.3, Y: 0.9}
	g.BeginWrites()
	if err := g.Insert(7, p); err != nil {
		t.Fatal(err)
	}
	g.EndWrites()
	was := g.CellOf(p)

	log, invalid := g.ApplyBatch([]model.Update{
		model.DeleteUpdate(7, p),
		model.DeleteUpdate(7, p), // second delete of the same id is invalid
	}, nil)
	if invalid != 1 {
		t.Fatalf("invalid = %d, want 1", invalid)
	}
	if len(log) != 1 {
		t.Fatalf("logged %d entries, want 1", len(log))
	}
	e := log[0]
	if e.Kind != model.Delete || e.ID != 7 || e.Old != was || e.New != NoCell || e.Pos != p {
		t.Fatalf("delete log entry %+v (want old cell %d at %v)", e, was, p)
	}
	if g.Count() != 0 {
		t.Fatalf("count after delete = %d", g.Count())
	}
}

// TestApplyBatchReusesLog pins the zero-allocation contract: a warm log
// slice with sufficient capacity is reused, not reallocated.
func TestApplyBatchReusesLog(t *testing.T) {
	g := NewUnit(8)
	g.BeginWrites()
	if err := g.Insert(1, geom.Point{X: 0.1, Y: 0.1}); err != nil {
		t.Fatal(err)
	}
	g.EndWrites()

	buf := make([]Applied, 0, 8)
	u := []model.Update{model.MoveUpdate(1, geom.Point{X: 0.1, Y: 0.1}, geom.Point{X: 0.2, Y: 0.2})}
	log, _ := g.ApplyBatch(u, buf)
	if len(log) != 1 || cap(log) != cap(buf) || &log[:1][0] != &buf[:1][0] {
		t.Fatalf("ApplyBatch reallocated a sufficient log buffer (len %d cap %d)", len(log), cap(log))
	}
}
