package grid

// Shared mode and the write-epoch guard.
//
// A sharded monitor keeps ONE grid for all of its engines: per-query state
// (best_NN, visit list, leftover heap) is what must stay partitioned, the
// object index is a pure shared structure (paper Section 3 — the grid
// carries no per-query information beyond influence lists, which live in
// per-engine grid.Influence indexes precisely so shards never write shared
// cells). The sharing contract is phase-based, not lock-based:
//
//	coordinator: BeginWrites → Insert/Move/Delete/Rebuild… → EndWrites
//	shards:      read freely between EndWrites and the next BeginWrites
//
// EndWrites advances the epoch, so every tick's fan-out observes one stable
// epoch. The contract is enforced by cheap assertions compiled in under the
// `race` (or `cpmassert`) build tag — see guard_on.go: reads during a write
// window and writes outside one panic immediately, instead of surfacing as
// a far-away corrupted result.

// SetShared marks the grid as shared between a writing coordinator and
// concurrent readers, arming the epoch-guard assertions (in race/assert
// builds). A non-shared grid — every engine-private replica — is exempt:
// its single owner interleaves reads and writes freely.
func (g *Grid) SetShared(on bool) { g.shared = on }

// Shared reports whether the grid is in shared (epoch-guarded) mode.
func (g *Grid) Shared() bool { return g.shared }

// Epoch returns the write epoch: the number of completed write windows
// (EndWrites calls). ApplyBatch and Rebuild open and close their own
// window, so on a live monitor the epoch counts applied write batches.
// Read it between windows only (the monitor's scrape lock guarantees that).
func (g *Grid) Epoch() int64 { return g.epoch }

// BeginWrites opens a write window. Until EndWrites, mutations are allowed
// and reads of object data are not (asserted in race/assert builds when the
// grid is shared). Windows do not nest.
func (g *Grid) BeginWrites() { g.writing.Store(true) }

// EndWrites closes the write window and advances the epoch: the state is
// stable again and readers may resume.
func (g *Grid) EndWrites() {
	g.epoch++
	g.writing.Store(false)
}
