package grid

import (
	"math"

	"cpm/internal/geom"
	"cpm/internal/model"
)

// Applied is one entry of a tick's write log: an object-stream element that
// passed validation and was applied to the grid, together with the cell
// transition the grid observed. The sharded monitor applies the object
// stream exactly once (coordinator thread) and fans the log out to every
// shard, whose influence scans need only the logged positions and cells —
// never the grid's object data — so all shards can replay the same log
// against a stable epoch.
type Applied struct {
	ID   model.ObjectID
	Kind model.UpdateKind
	Pos  geom.Point // stored (clamped) position: new for Move/Insert, old for Delete
	Old  CellIndex  // cell left behind (Move/Delete); NoCell for Insert
	New  CellIndex  // cell entered (Move/Insert); NoCell for Delete
}

// ApplyBatch applies an object-update stream to the grid in order,
// appending one Applied entry per accepted update to log (normally
// log[:0] of a buffer reused across ticks) and returning the extended log
// plus the number of invalid updates dropped. Validation — non-finite
// coordinates, inserts of live objects, moves/deletes of unknown ones —
// matches what the engines previously enforced update-by-update, so
// invalid-update accounting is unchanged and charged once per stream, not
// once per shard.
//
// The whole batch runs inside one write window (BeginWrites/EndWrites), so
// the epoch advances by one per call and, on a shared grid, the race-build
// assertions catch any reader overlapping the application.
func (g *Grid) ApplyBatch(updates []model.Update, log []Applied) ([]Applied, int64) {
	g.BeginWrites()
	defer g.EndWrites()
	var invalid int64
	for _, u := range updates {
		switch u.Kind {
		case model.Move:
			if !finite(u.New) {
				invalid++
				continue
			}
			p := g.Clamp(u.New)
			oldCell, newCell, err := g.Move(u.ID, p)
			if err != nil {
				invalid++
				continue
			}
			log = append(log, Applied{ID: u.ID, Kind: model.Move, Pos: p, Old: oldCell, New: newCell})
		case model.Insert:
			if !finite(u.New) {
				invalid++
				continue
			}
			p := g.Clamp(u.New)
			if err := g.Insert(u.ID, p); err != nil {
				invalid++
				continue
			}
			log = append(log, Applied{ID: u.ID, Kind: model.Insert, Pos: p, Old: NoCell, New: g.CellOf(p)})
		case model.Delete:
			// Direct field reads: the accessor Position asserts a stable
			// epoch, and we are inside the write window by design.
			if u.ID < 0 || int(u.ID) >= len(g.alive) || !g.alive[u.ID] {
				invalid++
				continue
			}
			pos := g.positions[u.ID]
			oldCell := g.CellOf(pos)
			if err := g.Delete(u.ID); err != nil {
				invalid++
				continue
			}
			log = append(log, Applied{ID: u.ID, Kind: model.Delete, Pos: pos, Old: oldCell, New: NoCell})
		default:
			invalid++
		}
	}
	return log, invalid
}

func finite(p geom.Point) bool {
	return !math.IsNaN(p.X) && !math.IsNaN(p.Y) && !math.IsInf(p.X, 0) && !math.IsInf(p.Y, 0)
}
