package grid

import (
	"math/rand"
	"testing"

	"cpm/internal/geom"
	"cpm/internal/model"
)

// checkGridConsistency verifies the structural invariants of the object
// store: every live object sits in the cell covering its stored position,
// its intrusive slot points at itself, every stored position lies inside
// the workspace, and the count/non-empty counters match reality.
func checkGridConsistency(t *testing.T, g *Grid) {
	t.Helper()
	live, nonEmpty := 0, 0
	for c := range g.cells {
		if len(g.cells[c].objects) > 0 {
			nonEmpty++
		}
		for s, id := range g.cells[c].objects {
			if !g.Alive(id) {
				t.Fatalf("cell %d holds dead object %d", c, id)
			}
			if g.slots[id] != int32(s) {
				t.Fatalf("object %d slot %d, stored in slot %d", id, g.slots[id], s)
			}
			p := g.Pos(id)
			if want := g.CellOf(p); want != CellIndex(c) {
				t.Fatalf("object %d at %v stored in cell %d, position maps to %d", id, p, c, want)
			}
			if !g.Workspace().Contains(p) {
				t.Fatalf("object %d stored position %v outside workspace", id, p)
			}
			if !g.RectOf(CellIndex(c)).Contains(p) {
				t.Fatalf("object %d position %v outside its cell %d rect %v",
					id, p, c, g.RectOf(CellIndex(c)))
			}
			live++
		}
	}
	if live != g.Count() {
		t.Fatalf("cells hold %d objects, Count() = %d", live, g.Count())
	}
	if nonEmpty != g.NonEmptyCells() {
		t.Fatalf("%d non-empty cells, NonEmptyCells() = %d", nonEmpty, g.NonEmptyCells())
	}
}

// TestRebuildMigratesObjects grows and shrinks a populated grid and checks
// that the object store survives intact and stays fully mutable.
func TestRebuildMigratesObjects(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	g := NewUnit(8)
	randPoint := func() geom.Point {
		// Deliberately over-reach the workspace: Insert/Move must clamp.
		return geom.Point{X: rng.Float64()*3 - 1, Y: rng.Float64()*3 - 1}
	}
	for i := 0; i < 200; i++ {
		if err := g.Insert(model.ObjectID(i), randPoint()); err != nil {
			t.Fatal(err)
		}
	}
	for _, id := range []model.ObjectID{3, 77, 150} {
		if err := g.Delete(id); err != nil {
			t.Fatal(err)
		}
	}
	checkGridConsistency(t, g)
	accesses := g.CellAccesses()

	for _, size := range []int{32, 8, 5, 64} {
		wantCount := g.Count()
		g.Rebuild(size)
		if g.Size() != size {
			t.Fatalf("Size() = %d after Rebuild(%d)", g.Size(), size)
		}
		if want := g.Workspace().Width() / float64(size); g.Delta() != want {
			t.Fatalf("Delta() = %v after Rebuild(%d), want %v", g.Delta(), size, want)
		}
		if g.Count() != wantCount {
			t.Fatalf("Count() = %d after Rebuild(%d), want %d", g.Count(), size, wantCount)
		}
		if g.CellAccesses() != accesses {
			t.Fatalf("Rebuild moved the cell-access counter: %d -> %d", accesses, g.CellAccesses())
		}
		checkGridConsistency(t, g)

		// The store stays fully mutable on the new geometry.
		for i := 0; i < 50; i++ {
			id := model.ObjectID(rng.Intn(200))
			if !g.Alive(id) {
				if err := g.Insert(id, randPoint()); err != nil {
					t.Fatal(err)
				}
				continue
			}
			if rng.Intn(4) == 0 {
				if err := g.Delete(id); err != nil {
					t.Fatal(err)
				}
			} else if _, _, err := g.Move(id, randPoint()); err != nil {
				t.Fatal(err)
			}
		}
		checkGridConsistency(t, g)
	}
}

// TestClampStoredPositions pins the containment invariant the search
// pruning relies on: positions beyond the workspace are stored clamped
// onto the border, never raw.
func TestClampStoredPositions(t *testing.T) {
	g := NewUnit(4)
	cases := []struct{ in, want geom.Point }{
		{geom.Point{X: 2.5, Y: 0.2}, geom.Point{X: 1, Y: 0.2}},
		{geom.Point{X: -0.5, Y: -3}, geom.Point{X: 0, Y: 0}},
		{geom.Point{X: 0.25, Y: 1.75}, geom.Point{X: 0.25, Y: 1}},
		{geom.Point{X: 0.5, Y: 0.5}, geom.Point{X: 0.5, Y: 0.5}},
	}
	for i, c := range cases {
		if err := g.Insert(model.ObjectID(i), c.in); err != nil {
			t.Fatal(err)
		}
		if p, _ := g.Position(model.ObjectID(i)); p != c.want {
			t.Fatalf("insert %v stored as %v, want %v", c.in, p, c.want)
		}
	}
	if _, _, err := g.Move(0, geom.Point{X: 0.1, Y: 9}); err != nil {
		t.Fatal(err)
	}
	if p, _ := g.Position(0); p != (geom.Point{X: 0.1, Y: 1}) {
		t.Fatalf("move stored as %v, want clamped", p)
	}
	checkGridConsistency(t, g)
}

// TestNonEmptyCellsCounter tracks the occupancy counter through inserts,
// in-cell and cross-cell moves, and deletes.
func TestNonEmptyCellsCounter(t *testing.T) {
	g := NewUnit(4)
	if g.NonEmptyCells() != 0 {
		t.Fatalf("fresh grid NonEmptyCells = %d", g.NonEmptyCells())
	}
	g.Insert(1, geom.Point{X: 0.1, Y: 0.1})
	g.Insert(2, geom.Point{X: 0.15, Y: 0.1}) // same cell
	g.Insert(3, geom.Point{X: 0.9, Y: 0.9})
	if g.NonEmptyCells() != 2 {
		t.Fatalf("NonEmptyCells = %d, want 2", g.NonEmptyCells())
	}
	g.Move(2, geom.Point{X: 0.6, Y: 0.6}) // opens a third cell
	if g.NonEmptyCells() != 3 {
		t.Fatalf("NonEmptyCells = %d, want 3", g.NonEmptyCells())
	}
	g.Move(2, geom.Point{X: 0.62, Y: 0.6}) // in-cell move
	if g.NonEmptyCells() != 3 {
		t.Fatalf("NonEmptyCells = %d after in-cell move, want 3", g.NonEmptyCells())
	}
	g.Delete(3)
	if g.NonEmptyCells() != 2 || g.MeanOccupancy() != 1 {
		t.Fatalf("NonEmptyCells = %d, MeanOccupancy = %v; want 2, 1",
			g.NonEmptyCells(), g.MeanOccupancy())
	}
	g.Delete(1)
	g.Delete(2)
	if g.NonEmptyCells() != 0 || g.MeanOccupancy() != 0 {
		t.Fatalf("emptied grid: NonEmptyCells = %d, MeanOccupancy = %v",
			g.NonEmptyCells(), g.MeanOccupancy())
	}
}
