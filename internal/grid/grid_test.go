package grid

import (
	"math/rand"
	"testing"

	"cpm/internal/geom"
	"cpm/internal/model"
)

func TestNewPanics(t *testing.T) {
	cases := map[string]func(){
		"zero size": func() { New(0, unitRect()) },
		"neg size":  func() { New(-3, unitRect()) },
		"empty ws":  func() { New(4, geom.Rect{}) },
		"non-square ws": func() {
			New(4, geom.Rect{Lo: geom.Point{}, Hi: geom.Point{X: 2, Y: 1}})
		},
	}
	for name, f := range cases {
		func() {
			defer func() {
				if recover() == nil {
					t.Errorf("%s: New did not panic", name)
				}
			}()
			f()
		}()
	}
}

func unitRect() geom.Rect {
	return geom.Rect{Lo: geom.Point{X: 0, Y: 0}, Hi: geom.Point{X: 1, Y: 1}}
}

func TestCellMapping(t *testing.T) {
	g := NewUnit(4) // δ = 0.25
	cases := []struct {
		p        geom.Point
		col, row int
	}{
		{geom.Point{X: 0, Y: 0}, 0, 0},
		{geom.Point{X: 0.24, Y: 0.24}, 0, 0},
		{geom.Point{X: 0.25, Y: 0}, 1, 0}, // half-open interval: border belongs to next cell
		{geom.Point{X: 0.99, Y: 0.99}, 3, 3},
		{geom.Point{X: 1.0, Y: 1.0}, 3, 3},   // clamped
		{geom.Point{X: -0.5, Y: 1.7}, 0, 3},  // outside: clamped
		{geom.Point{X: 0.5, Y: 0.749}, 2, 2}, // interior
	}
	for _, c := range cases {
		col, row := g.ColRow(c.p)
		if col != c.col || row != c.row {
			t.Errorf("ColRow(%v) = (%d,%d), want (%d,%d)", c.p, col, row, c.col, c.row)
		}
	}
}

func TestIndexSplitRoundTrip(t *testing.T) {
	g := NewUnit(7)
	for row := 0; row < 7; row++ {
		for col := 0; col < 7; col++ {
			idx := g.Index(col, row)
			if idx == NoCell {
				t.Fatalf("Index(%d,%d) = NoCell", col, row)
			}
			c2, r2 := g.Split(idx)
			if c2 != col || r2 != row {
				t.Fatalf("Split(Index(%d,%d)) = (%d,%d)", col, row, c2, r2)
			}
		}
	}
	for _, bad := range [][2]int{{-1, 0}, {0, -1}, {7, 0}, {0, 7}} {
		if g.Index(bad[0], bad[1]) != NoCell {
			t.Errorf("Index(%d,%d) should be NoCell", bad[0], bad[1])
		}
	}
}

func TestCellRect(t *testing.T) {
	g := NewUnit(4)
	r := g.CellRect(1, 2)
	want := geom.Rect{Lo: geom.Point{X: 0.25, Y: 0.5}, Hi: geom.Point{X: 0.5, Y: 0.75}}
	if r != want {
		t.Errorf("CellRect(1,2) = %v, want %v", r, want)
	}
	// Point inside a cell must map back to that cell's rect.
	p := geom.Point{X: 0.3, Y: 0.6}
	if got := g.RectOf(g.CellOf(p)); !got.Contains(p) {
		t.Errorf("RectOf(CellOf(%v)) = %v does not contain the point", p, got)
	}
}

func TestInsertDeleteMove(t *testing.T) {
	g := NewUnit(8)
	if err := g.Insert(1, geom.Point{X: 0.1, Y: 0.1}); err != nil {
		t.Fatal(err)
	}
	if err := g.Insert(1, geom.Point{X: 0.2, Y: 0.2}); err == nil {
		t.Error("double insert not rejected")
	}
	if err := g.Insert(-1, geom.Point{}); err == nil {
		t.Error("negative id insert not rejected")
	}
	if g.Count() != 1 {
		t.Fatalf("Count = %d, want 1", g.Count())
	}
	if p, ok := g.Position(1); !ok || p != (geom.Point{X: 0.1, Y: 0.1}) {
		t.Fatalf("Position(1) = %v, %v", p, ok)
	}
	old, new_, err := g.Move(1, geom.Point{X: 0.9, Y: 0.9})
	if err != nil {
		t.Fatal(err)
	}
	if old == new_ {
		t.Error("move across cells reported same cell")
	}
	if g.Len(old) != 0 || g.Len(new_) != 1 {
		t.Errorf("cell populations after move: old=%d new=%d", g.Len(old), g.Len(new_))
	}
	// In-cell move.
	o2, n2, err := g.Move(1, geom.Point{X: 0.91, Y: 0.91})
	if err != nil {
		t.Fatal(err)
	}
	if o2 != n2 {
		t.Error("in-cell move reported different cells")
	}
	if err := g.Delete(1); err != nil {
		t.Fatal(err)
	}
	if g.Alive(1) || g.Count() != 0 {
		t.Error("object alive after delete")
	}
	if err := g.Delete(1); err == nil {
		t.Error("double delete not rejected")
	}
	if _, _, err := g.Move(1, geom.Point{}); err == nil {
		t.Error("move of dead object not rejected")
	}
	if _, _, err := g.Move(99, geom.Point{}); err == nil {
		t.Error("move of unknown object not rejected")
	}
	if err := g.Delete(12345); err == nil {
		t.Error("delete of unknown object not rejected")
	}
}

func TestScanObjectsCountsAccesses(t *testing.T) {
	g := NewUnit(2)
	mustInsert(t, g, 1, geom.Point{X: 0.1, Y: 0.1})
	mustInsert(t, g, 2, geom.Point{X: 0.2, Y: 0.2})
	mustInsert(t, g, 3, geom.Point{X: 0.9, Y: 0.9})
	c := g.CellOf(geom.Point{X: 0.1, Y: 0.1})
	seen := map[model.ObjectID]geom.Point{}
	g.ScanObjects(c, func(id model.ObjectID, p geom.Point) { seen[id] = p })
	if len(seen) != 2 {
		t.Errorf("scan saw %d objects, want 2", len(seen))
	}
	if g.CellAccesses() != 1 {
		t.Errorf("CellAccesses = %d, want 1", g.CellAccesses())
	}
	g.ScanObjects(c, func(model.ObjectID, geom.Point) {})
	if g.CellAccesses() != 2 {
		t.Errorf("CellAccesses = %d, want 2", g.CellAccesses())
	}
}

func mustInsert(t *testing.T, g *Grid, id model.ObjectID, p geom.Point) {
	t.Helper()
	if err := g.Insert(id, p); err != nil {
		t.Fatal(err)
	}
}

func TestInfluenceLists(t *testing.T) {
	g := NewUnit(4)
	c := CellIndex(5)
	if g.HasInfluence(c, 7) {
		t.Error("influence on fresh cell")
	}
	g.AddInfluence(c, 7)
	g.AddInfluence(c, 9)
	g.AddInfluence(c, 7) // idempotent
	if !g.HasInfluence(c, 7) || !g.HasInfluence(c, 9) {
		t.Error("influence entries missing")
	}
	if g.InfluenceLen(c) != 2 {
		t.Errorf("InfluenceLen = %d, want 2", g.InfluenceLen(c))
	}
	buf := make([]model.QueryID, 0, 4)
	qs := g.AppendInfluenceQueries(buf[:0], c)
	if len(qs) != 2 {
		t.Errorf("AppendInfluenceQueries len = %d, want 2", len(qs))
	}
	if got := g.Influence(c); len(got) != 2 {
		t.Errorf("Influence len = %d, want 2", len(got))
	}
	count := 0
	g.ForEachInfluence(c, func(model.QueryID) { count++ })
	if count != 2 {
		t.Errorf("ForEachInfluence visited %d, want 2", count)
	}
	g.RemoveInfluence(c, 7)
	g.RemoveInfluence(c, 123) // absent: no-op
	if g.HasInfluence(c, 7) || g.InfluenceLen(c) != 1 {
		t.Error("RemoveInfluence failed")
	}
	if qs := g.AppendInfluenceQueries(nil, CellIndex(0)); len(qs) != 0 {
		t.Error("AppendInfluenceQueries on empty cell should append nothing")
	}
}

// TestPopulationInvariant: after a random workload of inserts, moves and
// deletes, every live object is in exactly the cell its position maps to,
// and cell populations sum to Count().
func TestPopulationInvariant(t *testing.T) {
	rng := rand.New(rand.NewSource(12345))
	g := NewUnit(16)
	live := map[model.ObjectID]geom.Point{}
	nextID := model.ObjectID(0)
	for op := 0; op < 20000; op++ {
		switch {
		case len(live) == 0 || rng.Float64() < 0.3:
			p := geom.Point{X: rng.Float64(), Y: rng.Float64()}
			mustInsert(t, g, nextID, p)
			live[nextID] = p
			nextID++
		case rng.Float64() < 0.2:
			id := anyKey(rng, live)
			if err := g.Delete(id); err != nil {
				t.Fatal(err)
			}
			delete(live, id)
		default:
			id := anyKey(rng, live)
			p := geom.Point{X: rng.Float64(), Y: rng.Float64()}
			if _, _, err := g.Move(id, p); err != nil {
				t.Fatal(err)
			}
			live[id] = p
		}
	}
	if g.Count() != len(live) {
		t.Fatalf("Count = %d, want %d", g.Count(), len(live))
	}
	total := 0
	for idx := range g.cells {
		c := CellIndex(idx)
		rect := g.RectOf(c)
		g.ScanObjects(c, func(id model.ObjectID, p geom.Point) {
			total++
			want, ok := live[id]
			if !ok {
				t.Fatalf("dead object %d in cell %d", id, c)
			}
			if want != p {
				t.Fatalf("object %d position %v, want %v", id, p, want)
			}
			if !rect.Contains(p) {
				t.Fatalf("object %d at %v outside its cell rect %v", id, p, rect)
			}
		})
	}
	if total != len(live) {
		t.Fatalf("cells contain %d objects, want %d", total, len(live))
	}
}

func anyKey(rng *rand.Rand, m map[model.ObjectID]geom.Point) model.ObjectID {
	n := rng.Intn(len(m))
	for id := range m {
		if n == 0 {
			return id
		}
		n--
	}
	panic("unreachable")
}

func TestForEachObject(t *testing.T) {
	g := NewUnit(4)
	for i := 0; i < 10; i++ {
		mustInsert(t, g, model.ObjectID(i), geom.Point{X: float64(i) / 10, Y: 0.5})
	}
	if err := g.Delete(3); err != nil {
		t.Fatal(err)
	}
	n := 0
	g.ForEachObject(func(id model.ObjectID, p geom.Point) {
		n++
		if id == 3 {
			t.Error("deleted object visited")
		}
	})
	if n != 9 {
		t.Errorf("ForEachObject visited %d, want 9", n)
	}
}
