package grid

import "cpm/internal/model"

// Influence is a per-engine influence-list index (paper Figure 3.3b): for
// every cell, the queries whose influence (or answer) region contains it.
//
// In the original layout these lists lived inside the grid cells. With the
// shared-grid sharding refactor the object index is one structure read by
// all shards, while influence lists are query book-keeping — exactly the
// state that stays partitioned. Hoisting them into a per-engine index means
// a shard only ever writes its own Influence, so the parallel monitoring
// fan-out performs no writes at all against the shared grid. (The in-cell
// lists remain for the YPK-CNN/SEA-CNN baselines, which keep private
// grids.)
//
// The representation matches the in-cell original: short dense swap-delete
// slices, nil until first use, plus an O(1) running entry count that backs
// MemoryFootprint without a scan over all cells.
type Influence struct {
	cells   [][]model.QueryID
	entries int64
}

// NewInfluence creates an index over cellCount cells.
func NewInfluence(cellCount int) *Influence {
	return &Influence{cells: make([][]model.QueryID, cellCount)}
}

// Reset drops every list and re-sizes the index to cellCount cells — the
// engine-side companion of Grid.Rebuild. The backing array is reused when
// it is large enough so a rebalance of a warm engine allocates at most the
// new cell directory.
func (x *Influence) Reset(cellCount int) {
	if cellCount <= cap(x.cells) {
		x.cells = x.cells[:cellCount]
		for i := range x.cells {
			x.cells[i] = nil
		}
	} else {
		x.cells = make([][]model.QueryID, cellCount)
	}
	x.entries = 0
}

// AddUnchecked appends q to the list of cell c without a duplicate check —
// O(1) always. The caller must guarantee q is not already present (the CPM
// engine tracks its influence prefix exactly); a duplicate entry would make
// the scans route the same update to a query twice and leave a stale entry
// behind after removal.
func (x *Influence) AddUnchecked(c CellIndex, q model.QueryID) {
	x.cells[c] = append(x.cells[c], q)
	x.entries++
}

// Remove removes q from the list of cell c by swap-delete. Removing an
// absent entry is a no-op.
func (x *Influence) Remove(c CellIndex, q model.QueryID) {
	list := x.cells[c]
	for i, have := range list {
		if have == q {
			last := len(list) - 1
			list[i] = list[last]
			x.cells[c] = list[:last]
			x.entries--
			return
		}
	}
}

// Has reports whether q is in the list of cell c.
func (x *Influence) Has(c CellIndex, q model.QueryID) bool {
	for _, have := range x.cells[c] {
		if have == q {
			return true
		}
	}
	return false
}

// Len returns the size of the list of cell c — the scan pre-filter reads
// this for every update, so it must stay a plain slice-length load.
func (x *Influence) Len(c CellIndex) int { return len(x.cells[c]) }

// List returns the list of cell c as a borrowed slice. The slice is owned
// by the index: callers must not mutate or retain it, and adding or
// removing entries on c invalidates it. Iterating it allocates nothing.
func (x *Influence) List(c CellIndex) []model.QueryID { return x.cells[c] }

// Entries returns the total number of influence entries across all cells,
// maintained incrementally — one term of the Section 6.4 memory model.
func (x *Influence) Entries() int64 { return x.entries }
