package grid

import (
	"fmt"

	"cpm/internal/geom"
	"cpm/internal/model"
)

// ensureID grows the position store to cover id.
func (g *Grid) ensureID(id model.ObjectID) {
	if int(id) < len(g.positions) {
		return
	}
	n := int(id) + 1
	if n < 2*len(g.positions) {
		n = 2 * len(g.positions)
	}
	pos := make([]geom.Point, n)
	copy(pos, g.positions)
	g.positions = pos
	alive := make([]bool, n)
	copy(alive, g.alive)
	g.alive = alive
}

// Insert adds a new object at p. Inserting an id that is already live is an
// error in the update stream and is reported rather than silently merged.
func (g *Grid) Insert(id model.ObjectID, p geom.Point) error {
	if id < 0 {
		return fmt.Errorf("grid: negative object id %d", id)
	}
	g.ensureID(id)
	if g.alive[id] {
		return fmt.Errorf("grid: insert of live object %d", id)
	}
	g.alive[id] = true
	g.positions[id] = p
	c := &g.cells[g.CellOf(p)]
	if c.objects == nil {
		c.objects = make(map[model.ObjectID]struct{})
	}
	c.objects[id] = struct{}{}
	g.count++
	return nil
}

// Delete removes a live object. Deleting an unknown or dead object is
// reported: the monitoring methods rely on the stream being consistent.
func (g *Grid) Delete(id model.ObjectID) error {
	if id < 0 || int(id) >= len(g.alive) || !g.alive[id] {
		return fmt.Errorf("grid: delete of unknown object %d", id)
	}
	c := g.CellOf(g.positions[id])
	delete(g.cells[c].objects, id)
	g.alive[id] = false
	g.count--
	return nil
}

// Move relocates a live object to p and returns the old and new cells.
// When both are the same cell only the stored position changes.
func (g *Grid) Move(id model.ObjectID, p geom.Point) (oldCell, newCell CellIndex, err error) {
	if id < 0 || int(id) >= len(g.alive) || !g.alive[id] {
		return NoCell, NoCell, fmt.Errorf("grid: move of unknown object %d", id)
	}
	oldCell = g.CellOf(g.positions[id])
	newCell = g.CellOf(p)
	g.positions[id] = p
	if oldCell != newCell {
		delete(g.cells[oldCell].objects, id)
		cn := &g.cells[newCell]
		if cn.objects == nil {
			cn.objects = make(map[model.ObjectID]struct{})
		}
		cn.objects[id] = struct{}{}
	}
	return oldCell, newCell, nil
}

// Position returns the current location of a live object.
func (g *Grid) Position(id model.ObjectID) (geom.Point, bool) {
	if id < 0 || int(id) >= len(g.alive) || !g.alive[id] {
		return geom.Point{}, false
	}
	return g.positions[id], true
}

// Alive reports whether id is a live object.
func (g *Grid) Alive(id model.ObjectID) bool {
	return id >= 0 && int(id) < len(g.alive) && g.alive[id]
}

// Len returns the number of objects in cell c without counting an access.
func (g *Grid) Len(c CellIndex) int {
	return len(g.cells[c].objects)
}

// ScanObjects invokes fn for every object in cell c and counts one cell
// access — the unit reported in Figure 6.3b ("a cell visit corresponds to a
// complete scan over the object list in the cell"). All monitoring methods
// must read cell contents through this method so access counts compare
// fairly.
func (g *Grid) ScanObjects(c CellIndex, fn func(id model.ObjectID, p geom.Point)) {
	g.cellAccesses++
	for id := range g.cells[c].objects {
		fn(id, g.positions[id])
	}
}

// ForEachObject iterates over all live objects (no access accounting); the
// brute-force oracle and the harness use it.
func (g *Grid) ForEachObject(fn func(id model.ObjectID, p geom.Point)) {
	for id, ok := range g.alive {
		if ok {
			fn(model.ObjectID(id), g.positions[id])
		}
	}
}

// CellAccesses returns the cumulative cell-access counter.
func (g *Grid) CellAccesses() int64 { return g.cellAccesses }

// AddInfluence records query q in the influence list of cell c
// (paper Figure 3.3b). Adding an existing entry is a no-op.
func (g *Grid) AddInfluence(c CellIndex, q model.QueryID) {
	cell := &g.cells[c]
	if cell.influence == nil {
		cell.influence = make(map[model.QueryID]struct{})
	}
	cell.influence[q] = struct{}{}
}

// RemoveInfluence removes query q from the influence list of cell c.
// Removing an absent entry is a no-op.
func (g *Grid) RemoveInfluence(c CellIndex, q model.QueryID) {
	delete(g.cells[c].influence, q)
}

// HasInfluence reports whether q is in the influence list of c.
func (g *Grid) HasInfluence(c CellIndex, q model.QueryID) bool {
	_, ok := g.cells[c].influence[q]
	return ok
}

// InfluenceLen returns the size of the influence list of c.
func (g *Grid) InfluenceLen(c CellIndex) int {
	return len(g.cells[c].influence)
}

// ForEachInfluence invokes fn for every query in the influence list of c.
// fn must not mutate the influence list of c.
func (g *Grid) ForEachInfluence(c CellIndex, fn func(q model.QueryID)) {
	for q := range g.cells[c].influence {
		fn(q)
	}
}

// InfluenceQueries returns the influence list of c as a fresh slice, for
// callers that must mutate influence lists while iterating.
func (g *Grid) InfluenceQueries(c CellIndex) []model.QueryID {
	cell := &g.cells[c]
	if len(cell.influence) == 0 {
		return nil
	}
	qs := make([]model.QueryID, 0, len(cell.influence))
	for q := range cell.influence {
		qs = append(qs, q)
	}
	return qs
}
