package grid

import (
	"fmt"

	"cpm/internal/geom"
	"cpm/internal/model"
)

// ensureID grows the position store to cover id.
func (g *Grid) ensureID(id model.ObjectID) {
	if int(id) < len(g.positions) {
		return
	}
	n := int(id) + 1
	if n < 2*len(g.positions) {
		n = 2 * len(g.positions)
	}
	pos := make([]geom.Point, n)
	copy(pos, g.positions)
	g.positions = pos
	alive := make([]bool, n)
	copy(alive, g.alive)
	g.alive = alive
	slots := make([]int32, n)
	copy(slots, g.slots)
	g.slots = slots
}

// addObject appends id to cell c's object slice and records its slot in the
// intrusive index, keeping the non-empty-cell counter current.
func (g *Grid) addObject(c CellIndex, id model.ObjectID) {
	cell := &g.cells[c]
	if len(cell.objects) == 0 {
		g.nonEmpty++
	}
	g.slots[id] = int32(len(cell.objects))
	cell.objects = append(cell.objects, id)
}

// removeObject swap-deletes id from cell c's object slice in O(1) via the
// intrusive slot index, fixing the moved object's slot.
func (g *Grid) removeObject(c CellIndex, id model.ObjectID) {
	cell := &g.cells[c]
	s := g.slots[id]
	last := len(cell.objects) - 1
	moved := cell.objects[last]
	cell.objects[s] = moved
	g.slots[moved] = s
	cell.objects = cell.objects[:last]
	if last == 0 {
		g.nonEmpty--
	}
}

// Insert adds a new object at p, clamped onto the workspace (see Clamp).
// Inserting an id that is already live is an error in the update stream and
// is reported rather than silently merged.
func (g *Grid) Insert(id model.ObjectID, p geom.Point) error {
	g.assertWritable()
	if id < 0 {
		return fmt.Errorf("grid: negative object id %d", id)
	}
	g.ensureID(id)
	if g.alive[id] {
		return fmt.Errorf("grid: insert of live object %d", id)
	}
	p = g.Clamp(p)
	g.alive[id] = true
	g.positions[id] = p
	g.addObject(g.CellOf(p), id)
	g.count++
	return nil
}

// Delete removes a live object. Deleting an unknown or dead object is
// reported: the monitoring methods rely on the stream being consistent.
func (g *Grid) Delete(id model.ObjectID) error {
	g.assertWritable()
	if id < 0 || int(id) >= len(g.alive) || !g.alive[id] {
		return fmt.Errorf("grid: delete of unknown object %d", id)
	}
	g.removeObject(g.CellOf(g.positions[id]), id)
	g.alive[id] = false
	g.count--
	return nil
}

// Move relocates a live object to p (clamped onto the workspace, see
// Clamp) and returns the old and new cells. When both are the same cell
// only the stored position changes.
func (g *Grid) Move(id model.ObjectID, p geom.Point) (oldCell, newCell CellIndex, err error) {
	g.assertWritable()
	if id < 0 || int(id) >= len(g.alive) || !g.alive[id] {
		return NoCell, NoCell, fmt.Errorf("grid: move of unknown object %d", id)
	}
	p = g.Clamp(p)
	oldCell = g.CellOf(g.positions[id])
	newCell = g.CellOf(p)
	g.positions[id] = p
	if oldCell != newCell {
		g.removeObject(oldCell, id)
		g.addObject(newCell, id)
	}
	return oldCell, newCell, nil
}

// Position returns the current location of a live object.
func (g *Grid) Position(id model.ObjectID) (geom.Point, bool) {
	g.assertStable()
	if id < 0 || int(id) >= len(g.alive) || !g.alive[id] {
		return geom.Point{}, false
	}
	return g.positions[id], true
}

// Pos returns the location of id without a liveness check — the fast path
// for ids just read from a cell's object list, which are live by invariant.
func (g *Grid) Pos(id model.ObjectID) geom.Point {
	g.assertStable()
	return g.positions[id]
}

// Alive reports whether id is a live object.
func (g *Grid) Alive(id model.ObjectID) bool {
	return id >= 0 && int(id) < len(g.alive) && g.alive[id]
}

// Len returns the number of objects in cell c without counting an access.
func (g *Grid) Len(c CellIndex) int {
	return len(g.cells[c].objects)
}

// CellObjects returns cell c's object list as a borrowed slice and counts
// one cell access — the unit reported in Figure 6.3b ("a cell visit
// corresponds to a complete scan over the object list in the cell"). The
// slice is owned by the grid: callers must not mutate or retain it, and any
// grid mutation invalidates it. Iterating it allocates nothing.
func (g *Grid) CellObjects(c CellIndex) []model.ObjectID {
	g.assertStable()
	g.cellAccesses++
	return g.cells[c].objects
}

// Objects returns cell c's object list as a borrowed slice WITHOUT touching
// the grid's cell-access counter. Engines reading a shared grid use this and
// count the access in their own Stats instead: the grid counter is not
// synchronized, so concurrent shards bumping it would race (and the merged
// count would double-charge a cell both shards scanned). Same ownership
// contract as CellObjects.
func (g *Grid) Objects(c CellIndex) []model.ObjectID {
	g.assertStable()
	return g.cells[c].objects
}

// ScanObjects invokes fn for every object in cell c and counts one cell
// access. All monitoring methods must read cell contents through this
// method or CellObjects so access counts compare fairly. fn must not mutate
// the cell's object set.
func (g *Grid) ScanObjects(c CellIndex, fn func(id model.ObjectID, p geom.Point)) {
	g.assertStable()
	g.cellAccesses++
	for _, id := range g.cells[c].objects {
		fn(id, g.positions[id])
	}
}

// ForEachObject iterates over all live objects (no access accounting); the
// brute-force oracle and the harness use it.
func (g *Grid) ForEachObject(fn func(id model.ObjectID, p geom.Point)) {
	g.assertStable()
	for id, ok := range g.alive {
		if ok {
			fn(model.ObjectID(id), g.positions[id])
		}
	}
}

// CellAccesses returns the cumulative cell-access counter.
func (g *Grid) CellAccesses() int64 { return g.cellAccesses }

// AddInfluence records query q in the influence list of cell c
// (paper Figure 3.3b). Adding an existing entry is a no-op, checked by a
// linear scan; callers that can prove q is absent (the CPM engine tracks
// its influence prefix exactly) should use AddInfluenceUnchecked instead.
func (g *Grid) AddInfluence(c CellIndex, q model.QueryID) {
	cell := &g.cells[c]
	for _, have := range cell.influence {
		if have == q {
			return
		}
	}
	cell.influence = append(cell.influence, q)
}

// AddInfluenceUnchecked appends q to the influence list of c without the
// duplicate check — O(1) always, independent of how many queries influence
// the cell. The caller must guarantee q is not already present: a duplicate
// entry would make the scans route the same update to a query twice and
// leave a stale entry behind after removal.
func (g *Grid) AddInfluenceUnchecked(c CellIndex, q model.QueryID) {
	cell := &g.cells[c]
	cell.influence = append(cell.influence, q)
}

// RemoveInfluence removes query q from the influence list of cell c by
// swap-delete. Removing an absent entry is a no-op.
func (g *Grid) RemoveInfluence(c CellIndex, q model.QueryID) {
	infl := g.cells[c].influence
	for i, have := range infl {
		if have == q {
			last := len(infl) - 1
			infl[i] = infl[last]
			g.cells[c].influence = infl[:last]
			return
		}
	}
}

// HasInfluence reports whether q is in the influence list of c.
func (g *Grid) HasInfluence(c CellIndex, q model.QueryID) bool {
	for _, have := range g.cells[c].influence {
		if have == q {
			return true
		}
	}
	return false
}

// InfluenceLen returns the size of the influence list of c.
func (g *Grid) InfluenceLen(c CellIndex) int {
	return len(g.cells[c].influence)
}

// Influence returns the influence list of c as a borrowed slice. The slice
// is owned by the grid: callers must not mutate or retain it, and adding or
// removing influence entries on c invalidates it. Iterating it allocates
// nothing — this is the zero-allocation replacement for the map-backed
// influence iteration on the update-handling hot path.
func (g *Grid) Influence(c CellIndex) []model.QueryID {
	return g.cells[c].influence
}

// ForEachInfluence invokes fn for every query in the influence list of c.
// fn must not mutate the influence list of c.
func (g *Grid) ForEachInfluence(c CellIndex, fn func(q model.QueryID)) {
	for _, q := range g.cells[c].influence {
		fn(q)
	}
}

// AppendInfluenceQueries appends the influence list of c to buf and returns
// the extended slice — a stable snapshot for callers that cannot honor the
// no-mutation contract of the borrowed-slice Influence accessor (the engine
// itself iterates via Influence; its scans never mutate influence lists).
// The caller owns buf, so a reused buffer makes the snapshot
// allocation-free once warm.
func (g *Grid) AppendInfluenceQueries(buf []model.QueryID, c CellIndex) []model.QueryID {
	return append(buf, g.cells[c].influence...)
}
