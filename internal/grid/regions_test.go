package grid

import (
	"math/rand"
	"testing"

	"cpm/internal/geom"
)

func collectRect(g *Grid, r geom.Rect) map[CellIndex]bool {
	got := map[CellIndex]bool{}
	g.CellsInRect(r, func(c CellIndex) { got[c] = true })
	return got
}

func TestCellsInRect(t *testing.T) {
	g := NewUnit(4) // δ = 0.25
	r := geom.Rect{Lo: geom.Point{X: 0.3, Y: 0.3}, Hi: geom.Point{X: 0.6, Y: 0.6}}
	got := collectRect(g, r)
	// x spans cells 1..2, y spans cells 1..2 → 4 cells.
	if len(got) != 4 {
		t.Fatalf("got %d cells, want 4: %v", len(got), got)
	}
	for _, cr := range [][2]int{{1, 1}, {2, 1}, {1, 2}, {2, 2}} {
		if !got[g.Index(cr[0], cr[1])] {
			t.Errorf("cell (%d,%d) missing", cr[0], cr[1])
		}
	}
}

func TestCellsInRectClamped(t *testing.T) {
	g := NewUnit(4)
	r := geom.Rect{Lo: geom.Point{X: -5, Y: -5}, Hi: geom.Point{X: 5, Y: 5}}
	if got := collectRect(g, r); len(got) != 16 {
		t.Errorf("oversized rect covered %d cells, want 16", len(got))
	}
	tiny := geom.Rect{Lo: geom.Point{X: 0.1, Y: 0.1}, Hi: geom.Point{X: 0.1, Y: 0.1}}
	if got := collectRect(g, tiny); len(got) != 1 {
		t.Errorf("degenerate rect covered %d cells, want 1", len(got))
	}
}

// TestCellsInCircleExact cross-checks the disk cover against a brute-force
// scan of all cells.
func TestCellsInCircleExact(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	g := NewUnit(16)
	for trial := 0; trial < 200; trial++ {
		center := geom.Point{X: rng.Float64()*1.4 - 0.2, Y: rng.Float64()*1.4 - 0.2}
		radius := rng.Float64() * 0.5
		got := map[CellIndex]bool{}
		g.CellsInCircle(center, radius, func(c CellIndex) {
			if got[c] {
				t.Fatalf("cell %d visited twice", c)
			}
			got[c] = true
		})
		for idx := range g.cells {
			c := CellIndex(idx)
			want := g.RectOf(c).MinDist(center) <= radius
			if got[c] != want {
				t.Fatalf("trial %d: cell %d in-circle=%v, want %v (center=%v r=%v)",
					trial, c, got[c], want, center, radius)
			}
		}
	}
}

func TestCellsInCircleNegativeRadius(t *testing.T) {
	g := NewUnit(4)
	called := false
	g.CellsInCircle(geom.Point{X: 0.5, Y: 0.5}, -1, func(CellIndex) { called = true })
	if called {
		t.Error("negative radius visited cells")
	}
}

func TestRingCells(t *testing.T) {
	g := NewUnit(8)
	// Ring 0 is the center cell.
	var cells []CellIndex
	n := g.RingCells(3, 3, 0, func(c CellIndex) { cells = append(cells, c) })
	if n != 1 || len(cells) != 1 || cells[0] != g.Index(3, 3) {
		t.Fatalf("ring 0 = %v (n=%d)", cells, n)
	}
	// Ring 1 around an interior cell has 8 cells.
	seen := map[CellIndex]bool{}
	n = g.RingCells(3, 3, 1, func(c CellIndex) {
		if seen[c] {
			t.Fatalf("cell %d visited twice in ring", c)
		}
		seen[c] = true
	})
	if n != 8 {
		t.Fatalf("ring 1 visited %d cells, want 8", n)
	}
	for _, c := range []CellIndex{g.Index(2, 2), g.Index(4, 4), g.Index(3, 2), g.Index(2, 4)} {
		if !seen[c] {
			t.Errorf("ring 1 missing cell %d", c)
		}
	}
	if seen[g.Index(3, 3)] {
		t.Error("ring 1 contains the center")
	}
	// Ring at the corner is clamped.
	seen = map[CellIndex]bool{}
	n = g.RingCells(0, 0, 1, func(c CellIndex) { seen[c] = true })
	if n != 3 {
		t.Errorf("corner ring 1 visited %d cells, want 3", n)
	}
	// Ring fully outside the grid.
	n = g.RingCells(0, 0, 20, func(CellIndex) {})
	if n != 0 {
		t.Errorf("far ring visited %d cells, want 0", n)
	}
}

// TestRingsTileGrid: rings 0..size cover every cell exactly once.
func TestRingsTileGrid(t *testing.T) {
	g := NewUnit(9)
	counts := map[CellIndex]int{}
	for ring := 0; ring <= 9; ring++ {
		g.RingCells(4, 6, ring, func(c CellIndex) { counts[c]++ })
	}
	if len(counts) != 81 {
		t.Fatalf("rings covered %d cells, want 81", len(counts))
	}
	for c, n := range counts {
		if n != 1 {
			t.Fatalf("cell %d covered %d times", c, n)
		}
	}
}

func TestMemoryFootprint(t *testing.T) {
	g := NewUnit(4)
	if g.MemoryFootprint() != 0 {
		t.Errorf("empty grid footprint = %d", g.MemoryFootprint())
	}
	mustInsert(t, g, 0, geom.Point{X: 0.1, Y: 0.1})
	mustInsert(t, g, 1, geom.Point{X: 0.2, Y: 0.2})
	g.AddInfluence(0, 1)
	g.AddInfluence(3, 1)
	g.AddInfluence(3, 2)
	if got := g.MemoryFootprint(); got != 2*3+3 {
		t.Errorf("footprint = %d, want 9", got)
	}
}
