//go:build !race && !cpmassert

package grid

// Release build: the epoch-guard assertions compile to empty inlined
// methods, so the guarded accessors cost nothing on the hot path.

// guardEnabled reports whether the epoch-guard assertions are compiled in.
const guardEnabled = false

func (g *Grid) assertStable()   {}
func (g *Grid) assertWritable() {}
