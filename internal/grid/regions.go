package grid

import (
	"math"

	"cpm/internal/geom"
)

// CellsInRect invokes fn for every cell intersecting r, clamped to the
// grid. YPK-CNN's square search regions are enumerated with it.
func (g *Grid) CellsInRect(r geom.Rect, fn func(c CellIndex)) {
	iLo, jLo := g.ColRow(r.Lo)
	iHi, jHi := g.ColRow(r.Hi)
	for j := jLo; j <= jHi; j++ {
		for i := iLo; i <= iHi; i++ {
			fn(CellIndex(j*g.size + i))
		}
	}
}

// CellsInCircle invokes fn for every cell c with mindist(c, center) ≤
// radius — the cells intersecting the disk. SEA-CNN's answer and search
// regions and CPM's influence regions are disks.
func (g *Grid) CellsInCircle(center geom.Point, radius float64, fn func(c CellIndex)) {
	if radius < 0 {
		return
	}
	if math.IsInf(radius, 1) {
		// An infinite answer region (a query with fewer than k results)
		// covers the whole grid. Handled explicitly: converting ±Inf
		// coordinates to cell indices is implementation-defined.
		for c := range g.cells {
			fn(CellIndex(c))
		}
		return
	}
	bbox := geom.Rect{
		Lo: geom.Point{X: center.X - radius, Y: center.Y - radius},
		Hi: geom.Point{X: center.X + radius, Y: center.Y + radius},
	}
	iLo, jLo := g.ColRow(bbox.Lo)
	iHi, jHi := g.ColRow(bbox.Hi)
	for j := jLo; j <= jHi; j++ {
		for i := iLo; i <= iHi; i++ {
			if g.CellRect(i, j).MinDist(center) <= radius {
				fn(CellIndex(j*g.size + i))
			}
		}
	}
}

// RingCells invokes fn for the cells of the square ring at L∞ cell-distance
// ring around (col, row), clamped to the grid; ring 0 is the center cell
// itself. YPK-CNN's first search step expands rings until k objects are
// found. It returns the number of in-grid cells visited (0 means the whole
// ring lies outside the grid).
func (g *Grid) RingCells(col, row, ring int, fn func(c CellIndex)) int {
	if ring == 0 {
		if idx := g.Index(col, row); idx != NoCell {
			fn(idx)
			return 1
		}
		return 0
	}
	n := 0
	visit := func(i, j int) {
		if idx := g.Index(i, j); idx != NoCell {
			fn(idx)
			n++
		}
	}
	top, bottom := row+ring, row-ring
	for i := col - ring; i <= col+ring; i++ {
		visit(i, top)
		visit(i, bottom)
	}
	for j := row - ring + 1; j <= row+ring-1; j++ {
		visit(col-ring, j)
		visit(col+ring, j)
	}
	return n
}

// MemoryFootprint estimates the resident size of the grid index in the
// paper's abstract memory units of Section 4.1, where one unit stores one
// number: 3 units per object (id + two coordinates) plus one unit per
// influence-list entry. The benchmark harness uses it for the footnote-6
// space comparison.
func (g *Grid) MemoryFootprint() int64 {
	units := int64(3 * g.count)
	for i := range g.cells {
		units += int64(len(g.cells[i].influence))
	}
	return units
}
