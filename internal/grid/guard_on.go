//go:build race || cpmassert

package grid

// Epoch-guard assertions, compiled in under -race (and the cpmassert tag
// for assert-only builds). The release build pays nothing — see
// guard_off.go. Both assertions read only the shared flag (immutable after
// setup) and the atomic writing flag, so a violation panics deterministically
// before any racy memory access happens.

// guardEnabled reports whether the epoch-guard assertions are compiled in;
// tests use it to know whether a violation must panic.
const guardEnabled = true

// assertStable panics when object data of a shared grid is read inside a
// write window: the reader would observe a half-applied tick.
func (g *Grid) assertStable() {
	if g.shared && g.writing.Load() {
		panic("grid: read of shared grid inside a write window (epoch unstable)")
	}
}

// assertWritable panics when a shared grid is mutated outside a write
// window: concurrent shard readers may be iterating its cells.
func (g *Grid) assertWritable() {
	if g.shared && !g.writing.Load() {
		panic("grid: write to shared grid outside BeginWrites/EndWrites")
	}
}
