// Package grid implements the regular main-memory grid index that all three
// monitoring methods (CPM, YPK-CNN, SEA-CNN) share, following Section 3 and
// Figure 3.3 of the paper.
//
// The workspace is partitioned into Size×Size square cells of side δ =
// extent/Size. Cell c_{i,j} (column i, row j, counted from the low-left
// corner) holds the objects with x ∈ [i·δ, (i+1)·δ) and y ∈ [j·δ, (j+1)·δ);
// conversely an object at (x,y) belongs to c_{⌊x/δ⌋,⌊y/δ⌋}. Each cell keeps
// (i) the set of objects inside it and (ii) the influence list — the queries
// whose influence (or answer) region contains the cell.
//
// The paper prescribes hash tables for both sets so that deletion and
// insertion take expected constant time (Time_ind = 2 in the Section 4.1
// model). This implementation substitutes dense swap-delete slices
// (documented substitution, README "Design notes"): object sets carry an
// intrusive object→slot index so removal stays O(1), influence sets are
// short dense arrays where a linear swap-delete beats hashing in practice.
// Both keep the paper's asymptotics while making the three hot loops —
// relocation, influence scans, cell scans — branch-predictable pointer-free
// slice walks with zero allocation. The grid also owns the object position
// store and the cell-access counter that backs Figure 6.3b.
package grid

import (
	"fmt"
	"math"

	"cpm/internal/geom"
	"cpm/internal/model"
)

// CellIndex addresses a cell as j*Size + i. The value -1 means "no cell".
type CellIndex int32

// NoCell is the sentinel CellIndex.
const NoCell CellIndex = -1

// Cell holds the per-cell book-keeping of Figure 3.3: the object list and
// the influence list. Both are dense swap-delete slices (nil until first
// use); empty cells of a fine grid cost two nil slice headers each.
type Cell struct {
	objects   []model.ObjectID
	influence []model.QueryID
}

// Grid is the object index.
type Grid struct {
	size      int       // cells per dimension
	delta     float64   // cell side length δ
	workspace geom.Rect // indexed area; points outside are clamped to border cells
	cells     []Cell

	positions []geom.Point // dense object position store, indexed by ObjectID
	alive     []bool
	slots     []int32 // intrusive index: object -> slot in its cell's object slice

	count        int   // live objects
	cellAccesses int64 // complete scans of cell object lists
}

// New creates a grid of size×size cells over the given workspace.
// It panics on a non-positive size or an empty workspace: grid geometry is
// fixed at construction and an invalid one is a programming error.
func New(size int, workspace geom.Rect) *Grid {
	if size <= 0 {
		panic(fmt.Sprintf("grid: non-positive size %d", size))
	}
	if workspace.Width() <= 0 || workspace.Height() <= 0 {
		panic(fmt.Sprintf("grid: degenerate workspace %+v", workspace))
	}
	if workspace.Width() != workspace.Height() {
		// The paper's cells are square (δ×δ). Rectangular workspaces would
		// make δ ambiguous; the generator normalizes to the unit square.
		panic(fmt.Sprintf("grid: workspace must be square, got %+v", workspace))
	}
	return &Grid{
		size:      size,
		delta:     workspace.Width() / float64(size),
		workspace: workspace,
		cells:     make([]Cell, size*size),
	}
}

// NewUnit creates a grid over the unit square [0,1]×[0,1], the canonical
// workspace of the paper's analysis and experiments.
func NewUnit(size int) *Grid {
	return New(size, geom.Rect{Lo: geom.Point{X: 0, Y: 0}, Hi: geom.Point{X: 1, Y: 1}})
}

// Size returns the number of cells per dimension.
func (g *Grid) Size() int { return g.size }

// Delta returns the cell side length δ.
func (g *Grid) Delta() float64 { return g.delta }

// Workspace returns the indexed area.
func (g *Grid) Workspace() geom.Rect { return g.workspace }

// Count returns the number of live objects.
func (g *Grid) Count() int { return g.count }

// ColRow returns the column and row of the cell covering p. Points on or
// beyond the workspace border are clamped into the border cells, so every
// point maps to a valid cell.
func (g *Grid) ColRow(p geom.Point) (int, int) {
	i := int(math.Floor((p.X - g.workspace.Lo.X) / g.delta))
	j := int(math.Floor((p.Y - g.workspace.Lo.Y) / g.delta))
	return clamp(i, g.size), clamp(j, g.size)
}

func clamp(v, size int) int {
	if v < 0 {
		return 0
	}
	if v >= size {
		return size - 1
	}
	return v
}

// CellOf returns the index of the cell covering p.
func (g *Grid) CellOf(p geom.Point) CellIndex {
	i, j := g.ColRow(p)
	return g.Index(i, j)
}

// Index converts (col, row) to a CellIndex, or NoCell when out of range.
func (g *Grid) Index(col, row int) CellIndex {
	if col < 0 || col >= g.size || row < 0 || row >= g.size {
		return NoCell
	}
	return CellIndex(row*g.size + col)
}

// Split converts a CellIndex back to (col, row).
func (g *Grid) Split(c CellIndex) (int, int) {
	return int(c) % g.size, int(c) / g.size
}

// CellRect returns the geometric extent of cell (col, row).
func (g *Grid) CellRect(col, row int) geom.Rect {
	lo := geom.Point{
		X: g.workspace.Lo.X + float64(col)*g.delta,
		Y: g.workspace.Lo.Y + float64(row)*g.delta,
	}
	return geom.Rect{Lo: lo, Hi: geom.Point{X: lo.X + g.delta, Y: lo.Y + g.delta}}
}

// RectOf returns the geometric extent of cell c.
func (g *Grid) RectOf(c CellIndex) geom.Rect {
	col, row := g.Split(c)
	return g.CellRect(col, row)
}

// MinDist returns mindist(c, q) for cell c.
func (g *Grid) MinDist(c CellIndex, q geom.Point) float64 {
	return g.RectOf(c).MinDist(q)
}
